package asm

import (
	"os"
	"path/filepath"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/pipeline"
)

// The testdata programs are complete hand-written assembly programs; each is
// assembled, executed functionally, checked against a host-computed
// reference, and then replayed through the timing pipeline as an
// integration smoke test.

func loadTestdata(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func hostFib(n int) uint64 {
	if n <= 1 {
		return uint64(n)
	}
	a, b := uint64(0), uint64(1)
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

func TestFibProgram(t *testing.T) {
	p := mustAssemble(t, loadTestdata(t, "fib.s"))
	m := emu.New(p)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if want := hostFib(18); m.OutValues[0] != want {
		t.Errorf("fib(18) = %d, want %d", m.OutValues[0], want)
	}
}

func hostSieve(n int) uint64 {
	flags := make([]bool, n)
	count := uint64(0)
	for p := 2; p < n; p++ {
		if flags[p] {
			continue
		}
		count++
		for m := 2 * p; m < n; m += p {
			flags[m] = true
		}
	}
	return count
}

func TestSieveProgram(t *testing.T) {
	p := mustAssemble(t, loadTestdata(t, "sieve.s"))
	m := emu.New(p)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if want := hostSieve(4096); m.OutValues[0] != want {
		t.Errorf("sieve count = %d, want %d", m.OutValues[0], want)
	}
}

func TestChecksumProgram(t *testing.T) {
	p := mustAssemble(t, loadTestdata(t, "checksum.s"))
	m := emu.New(p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// Host reference of the same algorithm.
	h := uint64(0)
	for _, c := range []byte("the quick brown fox jumps over the lazy dog") {
		h = (h*33 + uint64(c)) & 0xFFFFFFFF
	}
	root := uint64(isqrt(float64(h)))
	want := h ^ root
	if m.OutValues[0] != want {
		t.Errorf("checksum = %#x, want %#x", m.OutValues[0], want)
	}
}

func isqrt(x float64) int64 {
	lo, hi := int64(0), int64(1<<26)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if float64(mid)*float64(mid) <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Match IEEE sqrt truncation.
	for float64(lo+1)*float64(lo+1) <= x {
		lo++
	}
	return lo
}

func TestTestdataProgramsThroughPipeline(t *testing.T) {
	for _, name := range []string{"fib.s", "sieve.s", "checksum.s"} {
		p := mustAssemble(t, loadTestdata(t, name))
		s := pipeline.RunProgram(p, pipeline.DefaultConfig())
		if s.Retired == 0 || s.Cycles == 0 {
			t.Errorf("%s: pipeline made no progress", name)
		}
		if s.IPC() <= 0 || s.IPC() > 16 {
			t.Errorf("%s: IPC %.2f implausible", name, s.IPC())
		}
	}
}
