// Package cachesim models the CTCP memory-system substrates: set-associative
// caches with LRU replacement, a TLB (a cache of page translations), and a
// nonblocking miss pipeline with a bounded set of MSHRs. Latencies follow
// Table 7 of the paper; the timing pipeline composes these components into
// load/store completion times.
package cachesim

import "fmt"

// Config describes one cache array.
type Config struct {
	Name     string
	Sets     int // number of sets (power of two)
	Ways     int
	LineSize int // bytes (power of two)
}

// KB is a size helper for configuration literals.
const KB = 1024

// Stats holds access counters.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative array with true-LRU replacement. It tracks tags
// only: the simulator never stores data in cache models because the
// functional emulator is the source of truth for values.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways; 0 means empty (tag 0 stored as tag|present)
	present   []bool
	lruStamp  []uint64
	nextStamp uint64
	S         Stats
}

// New builds a cache; it panics on non-power-of-two geometry, which is a
// configuration bug, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s: sets %d not a power of two", cfg.Name, cfg.Sets))
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cachesim: %s: ways %d", cfg.Name, cfg.Ways))
	}
	c := &Cache{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		tags:     make([]uint64, cfg.Sets*cfg.Ways),
		present:  make([]bool, cfg.Sets*cfg.Ways),
		lruStamp: make([]uint64, cfg.Sets*cfg.Ways),
	}
	for c.cfg.LineSize>>c.lineShift > 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.cfg.Sets * c.cfg.Ways * c.cfg.LineSize }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line & c.setMask), line >> uint(log2(c.cfg.Sets))
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Probe reports whether addr currently hits, without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.present[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access performs a reference to addr: on a hit it refreshes LRU order; on a
// miss it fills the line, evicting the LRU way. It returns whether the access
// hit.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	c.S.Accesses++
	c.nextStamp++
	victim, victimStamp := base, c.lruStamp[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.present[i] && c.tags[i] == tag {
			c.lruStamp[i] = c.nextStamp
			return true
		}
		if !c.present[i] {
			victim, victimStamp = i, 0
		} else if c.lruStamp[i] < victimStamp {
			victim, victimStamp = i, c.lruStamp[i]
		}
	}
	c.S.Misses++
	c.tags[victim] = tag
	c.present[victim] = true
	c.lruStamp[victim] = c.nextStamp
	return false
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.present[base+w] && c.tags[base+w] == tag {
			c.present[base+w] = false
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.present {
		c.present[i] = false
		c.lruStamp[i] = 0
	}
	c.nextStamp = 0
	c.S = Stats{}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}
