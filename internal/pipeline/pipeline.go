package pipeline

import (
	"fmt"
	"math/bits"

	"ctcp/internal/bpred"
	"ctcp/internal/cachesim"
	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

const unknown = int64(-1)

// Pipeline is the cycle-level CTCP model. Per-instruction in-flight state
// lives in the struct-of-arrays store (see soa.go); every reference between
// instructions — producer edges, the store-disambiguation chain, queues,
// the rename map — is a generation-checked infID into that store.
type Pipeline struct {
	cfg  Config
	geom cluster.Geometry
	// Flattened Clusters×Clusters tables of geom.Distance and geom.ForwardLat
	// (row producer, column consumer). Distance's bounds guard keeps it above
	// the inlining budget, and the scheduler consults both once or more per
	// forwarded input — a flat indexed load beats the call.
	distTab []uint8
	fwdTab  []int64

	bp     *bpred.Predictor
	tc     *trace.Cache
	fill   *core.FillUnit
	icache *cachesim.Cache
	mem    *cachesim.Hierarchy

	stream emu.Stream
	// streamInto caches stream.(emu.StreamInto) so peek writes each record
	// straight into peekedRec instead of copying it up the stream stack once
	// per frame. Derived lazily (streamIntoKnown) because Run re-wraps the
	// stream in a LimitStream after construction.
	streamInto      emu.StreamInto
	streamIntoKnown bool
	// predictCond is p.bp.PredictCond bound once; creating the method value
	// at every trace cache lookup allocated a closure per fetch.
	predictCond func(uint64) bool
	peekedRec   emu.Committed
	havePeek    bool
	streamDone  bool

	now int64

	st infStore // per-instruction state, indexed by infID

	rob    infQueue // program order; front is oldest
	fetchQ infQueue

	dispatchQ []infQueue // per-cluster in-order queues (slot-based)
	steerQ    []infID    // global in-order queue (issue-time steering)

	// rsEntries is each cluster's reservation-station window in age order;
	// issued entries become noID holes (their mask bits are clear, so the
	// scan skips whole words of them for free) and the array is compacted
	// only when it is mostly holes, keeping compaction cost amortized O(1)
	// per dispatch. readyMask bit i set means rsEntries[c][i] is resolved
	// and unissued; rsLive counts non-hole entries.
	rsEntries [][]infID
	readyMask [][]uint64
	readyHeap []readyHeap // per-cluster resolved-but-not-yet-ready entries
	rsLive    []int
	rsCount   [][]int   // per-cluster per-station occupancy
	fuFree    [][]int64 // per-cluster per-FU next-free cycle

	renameMap  [isa.NumRegs]infID
	lastStore  infID
	loadsInROB int
	renamed    uint64 // total instructions renamed (pool recycling epoch)

	// Store-disambiguation watermark: stores take a sequence number at
	// rename; storeWatermark is the lowest seq not yet known-issued, so
	// "every store older than barrier b has issued" is the single compare
	// storeWatermark > b instead of a prevStore chain walk per cycle.
	// storeRing marks issued seqs ahead of the watermark; loadWaitHead
	// chains loads blocked until the watermark passes their barrier.
	storeSeqNext   uint64
	storeWatermark uint64
	storeRingMask  uint64
	storeRing      []bool
	loadWaitHead   []uint32

	sbDrain   []int64 // store buffer: drain completion times
	lastDrain int64
	ports     portSched

	pendingRedirect infID
	nextFetch       int64
	btbBubble       int64
	groupSeq        uint64

	pcHist pcTable  // per-static-PC producer history (Table 3)
	dec    decTable // per-static-PC decode cache (derived, never serialized)

	lastRetireCycle int64

	// consumed counts committed records pulled from the stream, including
	// the one buffered in peekedRec. fetchLimit, when non-zero, pauses
	// fetch once consumed reaches it: the mechanism behind segmented RunTo
	// execution and drained-boundary snapshots.
	consumed   uint64
	fetchLimit uint64

	// scr groups the transient scratch state — the graveyard and per-cycle
	// buffers — that checkpointing deliberately excludes: a snapshot never
	// serializes it, and a restored pipeline starts with the empty scratch
	// its constructor built.
	scr scratch

	S Stats
}

// scratch holds the pipeline's per-cycle transient state, segregated from
// the architectural and profile state that Snapshot must capture. At a
// drained boundary the graveyard holds only reclaimable slots and the
// per-cycle buffers are stale, so none of it carries information forward.
type scratch struct {
	// graveyard holds retired slots whose references may still be live;
	// reclaim recycles them back into the store's free list.
	graveyard infQueue

	// Per-cycle scratch, reused across cycles. writeUsed is the flattened
	// [cluster][station] write-port usage; fetchBuf collects one fetch
	// group; clusterBudget is the per-cluster steering budget.
	writeUsed     []int
	clusterBudget []int
	fetchBuf      []uint32
}

// New builds a pipeline reading committed instructions from stream. The
// configuration is validated up front: a bad Config panics *core.InvariantError
// immediately (recovered into a *SimError by RunProgramErr) rather than
// failing later inside the model.
func New(stream emu.Stream, cfg Config) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(&core.InvariantError{Msg: err.Error()})
	}
	g := cfg.Geom
	p := &Pipeline{
		cfg:       cfg,
		geom:      g,
		bp:        bpred.New(cfg.BP),
		tc:        trace.NewCache(cfg.Trace),
		icache:    cachesim.New(cfg.ICache),
		mem:       cachesim.NewHierarchy(cfg.Mem),
		stream:    stream,
		ports:     newPortSched(),
		lastDrain: -1,
	}
	p.predictCond = p.bp.PredictCond
	p.fill = core.NewFillUnit(core.Config{
		Strategy:      cfg.Strategy,
		DisableChains: cfg.DisableChains,
		Geom:          g,
		Trace:         cfg.Trace,
	}, p.tc)
	p.dispatchQ = make([]infQueue, g.Clusters)
	p.rsEntries = make([][]infID, g.Clusters)
	p.readyMask = make([][]uint64, g.Clusters)
	p.readyHeap = make([]readyHeap, g.Clusters)
	p.distTab = make([]uint8, g.Clusters*g.Clusters)
	p.fwdTab = make([]int64, g.Clusters*g.Clusters)
	for a := 0; a < g.Clusters; a++ {
		for b := 0; b < g.Clusters; b++ {
			p.distTab[a*g.Clusters+b] = uint8(g.Distance(a, b))
			p.fwdTab[a*g.Clusters+b] = int64(g.ForwardLat(a, b))
		}
	}
	p.rsLive = make([]int, g.Clusters)
	p.rsCount = make([][]int, g.Clusters)
	p.fuFree = make([][]int64, g.Clusters)
	for c := 0; c < g.Clusters; c++ {
		p.rsCount[c] = make([]int, cluster.NumRSKinds)
		p.fuFree[c] = make([]int64, cluster.NumFUKinds)
	}
	// The watermark ring must cover every live store seq: outstanding
	// (renamed, unissued) stores are bounded by ROB occupancy.
	ring := 1
	for ring < 2*(cfg.ROBSize+1) {
		ring <<= 1
	}
	p.storeRing = make([]bool, ring)
	p.loadWaitHead = make([]uint32, ring)
	p.storeRingMask = uint64(ring - 1)
	p.storeSeqNext = 1
	p.storeWatermark = 1
	p.scr.writeUsed = make([]int, g.Clusters*int(cluster.NumRSKinds))
	p.scr.clusterBudget = make([]int, g.Clusters)
	p.scr.fetchBuf = make([]uint32, 0, cfg.FetchWidth)
	return p
}

// FillUnit exposes the fill unit (tests and experiments read its stats).
func (p *Pipeline) FillUnit() *core.FillUnit { return p.fill }

// Run drives the model until the stream is exhausted and the machine drains,
// then returns the collected statistics.
func (p *Pipeline) Run() *Stats {
	if p.cfg.MaxInsts != 0 {
		p.stream = &emu.LimitStream{S: p.stream, Budget: p.cfg.MaxInsts}
		p.streamInto, p.streamIntoKnown = nil, false
	}
	p.runLoop((*Pipeline).done)
	return p.Finish()
}

// runLoop advances the model one cycle at a time until stop reports true.
// Run stops at done (stream exhausted, machine empty); RunTo stops at
// drained (fetch paused at the segment limit, machine empty).
func (p *Pipeline) runLoop(stop func(*Pipeline) bool) {
	for !stop(p) {
		worked := p.cycle()
		if worked && len(p.S.PipeTrace) < p.cfg.TraceCycles {
			p.S.PipeTrace = append(p.S.PipeTrace, p.debugDump())
		}
		if worked {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
		if p.now-p.lastRetireCycle > 2_000_000 {
			panic(&core.InvariantError{Msg: fmt.Sprintf(
				"pipeline: no retirement progress near cycle %d (rob=%d fetchQ=%d)",
				p.now, p.rob.len(), p.fetchQ.len())})
		}
	}
}

// RunTo advances the model until the total number of committed records
// consumed from the stream reaches limit and the in-flight instructions
// drain (limit 0 removes the pause and runs to stream exhaustion, like
// Run but without flushing the fill unit). It reports whether the stream
// is exhausted. Between RunTo calls the pipeline sits at a drained trace
// boundary — ROB, fetch and dispatch queues empty — which is the only
// kind of point Snapshot accepts. Limits are cumulative across calls:
// RunTo(k) then RunTo(2k) simulates 2k records in two segments. A
// segmented run is deterministic for a given segment schedule, and
// continuing after a pause is bit-identical whether the same Pipeline
// value keeps going or a Snapshot of it is Restored elsewhere first.
func (p *Pipeline) RunTo(limit uint64) bool {
	p.fetchLimit = limit
	p.runLoop((*Pipeline).drained)
	if !p.streamDone {
		p.pauseDrain()
	}
	return p.streamDone
}

// Finish completes a segmented run: it flushes the fill unit's partial
// trace and returns the collected statistics. Run calls it internally;
// RunTo callers invoke it once after the last segment.
func (p *Pipeline) Finish() *Stats {
	p.fill.Flush()
	p.S.Cycles = p.now
	p.S.BP = p.bp.S
	p.S.TC = p.tc.S
	p.S.Fill = p.fill.S
	return &p.S
}

// Consumed returns the number of committed records pulled from the stream
// so far (RunTo limits are expressed on this counter).
func (p *Pipeline) Consumed() uint64 { return p.consumed }

// CurrentCycle returns the simulated cycle the model has reached; between
// RunTo segments it is the cycle count Finish would report. Sampled
// simulation uses it to split a detailed window into an unmeasured warmup
// prefix and a measured remainder.
func (p *Pipeline) CurrentCycle() int64 { return p.now }

// Retired returns the number of instructions retired so far.
func (p *Pipeline) Retired() uint64 { return p.S.Retired }

func (p *Pipeline) done() bool {
	return p.streamDone && p.rob.len() == 0 && p.fetchQ.len() == 0
}

// fetchPaused reports whether fetch is paused at a RunTo segment limit.
func (p *Pipeline) fetchPaused() bool {
	return p.fetchLimit != 0 && p.consumed >= p.fetchLimit
}

// drained is the segmented-run stop condition: no further record can enter
// the machine (stream exhausted, or fetch paused with no buffered peek)
// and everything in flight has retired.
func (p *Pipeline) drained() bool {
	return (p.streamDone || p.fetchPaused()) && !p.havePeek &&
		p.rob.len() == 0 && p.fetchQ.len() == 0
}

// pauseDrain normalizes state at a paused segment boundary so that the
// continuation proceeds identically whether this Pipeline value keeps
// running or a snapshot of it is restored into a fresh one: the pending
// fetch redirect — whose instruction has necessarily retired by now — is
// resolved exactly as the next cycle would have resolved it, and
// fully-retired slots are reclaimed into the store's free list (at a
// drained boundary every graveyard slot is reclaimable, so the store is
// equivalent to the restored pipeline's empty store: residual slot contents
// are don't-care either way, since every field is written before its first
// read in a new life — see infStore.alloc).
func (p *Pipeline) pauseDrain() {
	p.clearRedirect()
	p.reclaim()
}

// cycle runs one machine cycle; it reports whether any state changed (used
// to fast-forward through idle periods).
//
//ctcp:hotpath
func (p *Pipeline) cycle() bool {
	worked := false
	if p.retire() {
		worked = true
	}
	p.clearRedirect()
	if p.issue() {
		worked = true
	}
	if p.dispatch() {
		worked = true
	}
	if p.rename() {
		worked = true
	}
	if p.fetch() {
		worked = true
	}
	return worked
}

// nextEvent returns the earliest future cycle at which anything can happen.
func (p *Pipeline) nextEvent() int64 {
	st := &p.st
	best := int64(1 << 62)
	consider := func(t int64) {
		if t > p.now && t < best {
			best = t
		}
	}
	for i := 0; i < p.rob.len(); i++ {
		idx := uint32(p.rob.at(i))
		if f := st.flags[idx]; f&fIssued != 0 && f&fRetired == 0 {
			consider(st.doneAt[idx])
		}
	}
	// Mask-set entries are ready now (or FU-starved, with readyAt in the
	// past), so the earliest future RS wakeup is the root of each cluster's
	// ready heap — no mask scan needed.
	for c := range p.readyHeap {
		if h := p.readyHeap[c]; len(h) > 0 {
			consider(h[0].at)
		}
	}
	if p.fetchQ.len() > 0 {
		consider(st.renameReady[uint32(p.fetchQ.front())])
	}
	for c := range p.dispatchQ {
		if p.dispatchQ[c].len() > 0 {
			consider(st.dispatchReady[uint32(p.dispatchQ[c].front())])
		}
	}
	if len(p.steerQ) > 0 {
		consider(st.dispatchReady[uint32(p.steerQ[0])])
	}
	if p.pendingRedirect == noID && !p.streamDone && (p.havePeek || !p.fetchPaused()) {
		// When fetch is paused with nothing buffered, no fetch event can
		// fire until the next RunTo raises the limit; considering nextFetch
		// here would crawl the idle fast-forward one cycle at a time into
		// the retirement watchdog.
		consider(p.nextFetch)
	}
	if best == int64(1<<62) {
		return p.now + 1
	}
	return best
}

// --- stream helpers ---

// peek returns the next committed record without consuming it; ok is false
// once the stream is exhausted. The record is buffered by value (the old
// implementation heap-allocated a copy per instruction).
func (p *Pipeline) peek() (*emu.Committed, bool) {
	if p.havePeek {
		return &p.peekedRec, true
	}
	if p.streamDone || p.fetchPaused() {
		// A paused fetch is not stream exhaustion: the next RunTo segment
		// resumes pulling records exactly where this one stopped.
		return nil, false
	}
	if !p.streamIntoKnown {
		p.streamInto, _ = p.stream.(emu.StreamInto)
		p.streamIntoKnown = true
	}
	if p.streamInto != nil {
		if !p.streamInto.NextInto(&p.peekedRec) {
			p.streamDone = true
			return nil, false
		}
	} else {
		rec, ok := p.stream.Next()
		if !ok {
			p.streamDone = true
			return nil, false
		}
		p.peekedRec = rec
	}
	p.consumed++
	p.havePeek = true
	return &p.peekedRec, true
}

// take consumes the peeked record; the pointer stays valid until the next
// peek, and newInflight copies it into the store before then.
func (p *Pipeline) take() *emu.Committed {
	p.havePeek = false
	return &p.peekedRec
}

// --- fetch ---

// fetch pulls one fetch group per cycle from the trace cache or icache path.
//
//ctcp:hotpath
func (p *Pipeline) fetch() bool {
	if p.pendingRedirect != noID || p.now < p.nextFetch {
		return false
	}
	if p.fetchQ.len() >= 2*p.cfg.FetchWidth {
		return false
	}
	first, ok := p.peek()
	if !ok {
		return false
	}
	pc := first.PC
	group := p.groupSeq
	p.groupSeq++
	fetchLat := int64(p.cfg.FetchStages)
	consumed := p.scr.fetchBuf[:0]

	if tr := p.tc.Lookup(pc, p.predictCond); tr != nil {
		p.S.TCGroups++
		for i := range tr.Slots {
			s := &tr.Slots[i]
			r, ok := p.peek()
			if !ok || r.PC != s.PC {
				break // stream diverged (only possible after a redirect cut)
			}
			idx := p.newInflight(p.take(), true, group, s.Cluster, s.Profile)
			consumed = append(consumed, idx)
			if p.handleControl(idx, true) {
				break
			}
		}
		p.S.TCGroupInsts += uint64(len(consumed))
	} else {
		p.S.ICGroups++
		if !p.icache.Access(pc) {
			p.S.ICacheMisses++
			fetchLat += int64(p.cfg.ICacheMissLat)
		}
		lineEnd := (pc | uint64(p.cfg.ICache.LineSize-1)) + 1
		expect := pc
		for len(consumed) < p.cfg.FetchWidth {
			r, ok := p.peek()
			if !ok || r.PC != expect || r.PC >= lineEnd {
				break
			}
			slot := len(consumed)
			idx := p.newInflight(p.take(), false, group, p.geom.SlotCluster(slot), trace.Profile{})
			consumed = append(consumed, idx)
			if p.handleControl(idx, false) {
				break
			}
			if p.st.rec[idx].IsTakenControl() {
				break // conventional fetch cannot pass a taken branch
			}
			expect = p.st.rec[idx].NextPC
		}
		p.S.ICGroupInsts += uint64(len(consumed))
	}
	p.scr.fetchBuf = consumed[:0]
	if len(consumed) == 0 {
		// Defensive: should not happen (the first record always matches).
		p.nextFetch = p.now + 1
		return false
	}
	for _, idx := range consumed {
		p.st.renameReady[idx] = p.now + fetchLat + int64(p.cfg.DecodeStages)
		p.fetchQ.push(p.st.id(idx))
	}
	p.nextFetch = p.now + 1 + p.btbBubble
	p.btbBubble = 0
	return true
}

func (p *Pipeline) newInflight(rec *emu.Committed, fromTC bool, group uint64, cl int, prof trace.Profile) uint32 {
	st := &p.st
	idx := st.alloc()
	st.rec[idx] = *rec
	// Whole-word flag store: recycled slots are not zeroed (see alloc), so
	// this is the write that retires the previous life's bits.
	flags := uint16(0)
	if fromTC {
		flags = fFromTC
	}
	st.group[idx] = group
	st.cluster[idx] = int32(cl)
	st.profile[idx] = prof
	st.resultAt[idx] = unknown
	st.doneAt[idx] = unknown
	if p.cfg.Strategy.SteersAtIssue() {
		st.cluster[idx] = -1
	}
	d := p.dec.entryFor(rec.PC)
	if !d.valid {
		*d = decodeInst(rec.Inst)
	}
	class := d.class
	st.class[idx] = class
	st.dest[idx] = d.dest
	st.src[idx] = d.src
	st.ctrl[idx] = d.ctrl
	if class.IsLoad() {
		flags |= fIsLoad
	}
	if class.IsStore() {
		flags |= fIsStore
	}
	st.flags[idx] = flags
	return idx
}

// handleControl performs fetch-time prediction bookkeeping for a just-
// consumed control instruction and reports whether the fetch group must stop
// (misprediction or unpredictable target). The control kind comes from the
// decode cache (stamped by newInflight) instead of re-classifying the
// instruction word per dynamic instance.
func (p *Pipeline) handleControl(idx uint32, fromTC bool) bool {
	ctrl := p.st.ctrl[idx]
	if ctrl == ctrlNone {
		return false
	}
	rec := &p.st.rec[idx]
	switch ctrl {
	case ctrlCond:
		p.S.CondBranches++
		_, correct := p.bp.PredictAndTrainCond(rec.PC, rec.Taken)
		if !correct {
			p.S.Mispredicts++
			p.st.flags[idx] |= fMispredict
			p.pendingRedirect = p.st.id(idx)
			return true
		}
		if rec.Taken && !fromTC {
			// Conventional fetch needs the BTB for the taken target.
			if _, hit := p.bp.BTBLookup(rec.PC); !hit {
				p.S.BTBBubbles++
				p.btbBubble = int64(p.cfg.BTBMissBubble)
			}
			p.bp.BTBInsert(rec.PC, rec.NextPC)
		}
	case ctrlBR:
		if !fromTC {
			if _, hit := p.bp.BTBLookup(rec.PC); !hit {
				p.S.BTBBubbles++
				p.btbBubble = int64(p.cfg.BTBMissBubble)
			}
			p.bp.BTBInsert(rec.PC, rec.NextPC)
		}
	case ctrlJSR, ctrlJMP:
		target, hit := p.bp.BTBLookup(rec.PC)
		p.bp.BTBInsert(rec.PC, rec.NextPC)
		if ctrl == ctrlJSR {
			p.bp.PushReturn(rec.PC + isa.PCStride)
		}
		if !hit || target != rec.NextPC {
			p.S.IndirectMiss++
			p.st.flags[idx] |= fMispredict
			p.pendingRedirect = p.st.id(idx)
			return true
		}
	case ctrlRET:
		target, ok := p.bp.PredictReturn()
		if !ok || target != rec.NextPC {
			p.S.IndirectMiss++
			p.st.flags[idx] |= fMispredict
			p.pendingRedirect = p.st.id(idx)
			return true
		}
	}
	return false
}

func (p *Pipeline) clearRedirect() {
	if p.pendingRedirect == noID {
		return
	}
	idx := p.st.index(p.pendingRedirect)
	if p.st.flags[idx]&fIssued != 0 && p.st.doneAt[idx] <= p.now {
		p.pendingRedirect = noID
		if next := p.now + 1; next > p.nextFetch {
			p.nextFetch = next
		}
		p.S.FetchRedirects++
	}
}

// --- rename ---

// rename maps architectural sources to in-flight producers and admits
// instructions into the ROB.
//
//ctcp:hotpath
func (p *Pipeline) rename() bool {
	st := &p.st
	budget := p.cfg.FetchWidth
	worked := false
	for budget > 0 && p.fetchQ.len() > 0 {
		id := p.fetchQ.front()
		idx := uint32(id) // queue membership implies liveness
		if st.renameReady[idx] > p.now {
			break
		}
		if p.rob.len() >= p.cfg.ROBSize {
			p.S.ROBFullStalls++
			break
		}
		isLoad := st.flags[idx]&fIsLoad != 0
		if isLoad && p.loadsInROB >= p.cfg.LoadQueue {
			p.S.LoadQFullStalls++
			break
		}
		for k, r := range st.src[idx] { // src cached at newInflight (decode cache)
			if r == isa.NoReg {
				continue
			}
			// A value whose producer has already completed by rename time is
			// read from the register file; only still-in-flight results are
			// caught from the bypass/forwarding network.
			if pid := p.renameMap[r]; pid != noID {
				pi := st.index(pid)
				if st.flags[pi]&fRetired == 0 &&
					(st.resultAt[pi] == unknown || st.resultAt[pi] > p.now) {
					st.prod[idx][k] = pid
				}
			}
		}
		st.rfReady[idx] = p.now + int64(p.cfg.RenameStages+p.cfg.RFLat)
		st.dispatchReady[idx] = p.now + int64(p.cfg.RenameStages+p.cfg.SteerStages)
		if d := st.dest[idx]; d != isa.NoReg {
			p.renameMap[d] = id
		}
		st.prevStore[idx] = p.lastStore
		if st.flags[idx]&fIsStore != 0 {
			p.lastStore = id
			seq := p.storeSeqNext
			p.storeSeqNext++
			st.barrier[idx] = seq
			p.storeRing[seq&p.storeRingMask] = false
		} else if isLoad {
			// The newest older store's seq: every store younger than it has
			// a larger seq, so the watermark compare covers the whole chain.
			st.barrier[idx] = p.storeSeqNext - 1
		}
		if isLoad {
			p.loadsInROB++
		}
		p.fetchQ.popFront()
		p.rob.push(id)
		p.renamed++
		if p.cfg.Strategy.SteersAtIssue() {
			p.steerQ = append(p.steerQ, id)
		} else {
			p.dispatchQ[st.cluster[idx]].push(id)
		}
		budget--
		worked = true
	}
	return worked
}

// --- dispatch (into reservation stations) ---

// wu indexes the flattened per-cycle [cluster][station] write-port scratch.
func (p *Pipeline) wu(c int, st cluster.RSKind) *int {
	return &p.scr.writeUsed[c*int(cluster.NumRSKinds)+int(st)]
}

// dispatch moves renamed instructions into reservation stations, applying
// the configured steering strategy and write-port limits.
//
//ctcp:hotpath
func (p *Pipeline) dispatch() bool {
	st := &p.st
	worked := false
	clear(p.scr.writeUsed)
	if p.cfg.Strategy.SteersAtIssue() {
		budget := p.geom.TotalWidth()
		for c := range p.scr.clusterBudget {
			p.scr.clusterBudget[c] = p.geom.Width
		}
		// Scan the steering window in age order; an instruction whose target
		// cluster is saturated does not block younger instructions bound for
		// other clusters.
		kept := p.steerQ[:0]
		scanned := 0
		for i, id := range p.steerQ {
			idx := uint32(id) // queue membership implies liveness
			if budget <= 0 || st.dispatchReady[idx] > p.now || scanned >= 2*p.geom.TotalWidth() {
				kept = append(kept, p.steerQ[i:]...)
				break
			}
			scanned++
			c := p.steerTarget(idx)
			if c >= 0 {
				st.cluster[idx] = int32(c)
				if p.insertRS(idx, c) {
					p.scr.clusterBudget[c]--
					budget--
					worked = true
					continue
				}
				st.cluster[idx] = -1
			}
			kept = append(kept, id)
		}
		for i := len(kept); i < len(p.steerQ); i++ {
			p.steerQ[i] = noID
		}
		p.steerQ = kept
		return worked
	}
	for c := 0; c < p.geom.Clusters; c++ {
		n := 0
		for n < p.geom.Width && p.dispatchQ[c].len() > 0 {
			idx := uint32(p.dispatchQ[c].front())
			if st.dispatchReady[idx] > p.now {
				break
			}
			if !p.insertRS(idx, c) {
				break
			}
			p.dispatchQ[c].popFront()
			n++
			worked = true
		}
	}
	return worked
}

// steerTarget implements issue-time steering: send the instruction to the
// cluster generating one of its in-flight inputs (preferring the input
// expected to arrive last), else balance load; at most Width instructions
// per cluster per cycle.
func (p *Pipeline) steerTarget(idx uint32) int {
	st := &p.st
	usable := func(c int) bool {
		if c < 0 || c >= p.geom.Clusters || p.scr.clusterBudget[c] <= 0 {
			return false
		}
		for _, rs := range cluster.StationsFor(st.class[idx]) {
			if p.rsCount[c][rs] < p.cfg.RS.Entries && *p.wu(c, rs) < p.cfg.RS.WritePorts {
				return true
			}
		}
		return false
	}
	// Prefer the producer whose value arrives later (the likely critical
	// input); both producers' clusters are known because dispatch is
	// in order.
	best := -1
	var bestTime int64 = -1
	for k := 0; k < 2; k++ {
		pid := st.prod[idx][k]
		if pid == noID {
			continue
		}
		pi := st.index(pid)
		if st.flags[pi]&fRetired != 0 || st.cluster[pi] < 0 {
			continue
		}
		t := st.resultAt[pi]
		if t == unknown {
			t = 1 << 60 // not yet issued: latest of all
		}
		if t > bestTime {
			bestTime = t
			best = int(st.cluster[pi])
		}
	}
	if best >= 0 && usable(best) {
		return best
	}
	// Fall back: least-occupied usable cluster.
	target, bestOcc := -1, 1<<30
	for c := 0; c < p.geom.Clusters; c++ {
		if !usable(c) {
			continue
		}
		occ := 0
		for rs := 0; rs < int(cluster.NumRSKinds); rs++ {
			occ += p.rsCount[c][rs]
		}
		if occ < bestOcc {
			bestOcc, target = occ, c
		}
	}
	return target
}

func (p *Pipeline) insertRS(idx uint32, c int) bool {
	st := &p.st
	stations := cluster.StationsFor(st.class[idx])
	best := cluster.RSKind(-1)
	bestCount := 1 << 30
	for _, rs := range stations {
		if p.rsCount[c][rs] >= p.cfg.RS.Entries || *p.wu(c, rs) >= p.cfg.RS.WritePorts {
			continue
		}
		if p.rsCount[c][rs] < bestCount {
			bestCount = p.rsCount[c][rs]
			best = rs
		}
	}
	if best < 0 {
		return false
	}
	st.station[idx] = int32(best)
	st.flags[idx] |= fInRS
	p.rsCount[c][best]++
	*p.wu(c, best)++
	pos := len(p.rsEntries[c])
	p.rsEntries[c] = append(p.rsEntries[c], st.id(idx))
	st.rsSlot[idx] = int32(pos)
	p.rsLive[c]++
	if pos>>6 >= len(p.readyMask[c]) {
		p.readyMask[c] = append(p.readyMask[c], 0)
	}
	p.linkDeps(idx)
	return true
}

// linkDeps registers a just-dispatched RS entry with every dependency whose
// completion it must await: each register producer that has not issued yet
// (an intrusive waiter list on the producer), and — for loads — the
// store-disambiguation watermark if any older store is still unissued.
// When nothing is outstanding the entry resolves immediately.
//
//ctcp:hotpath
func (p *Pipeline) linkDeps(idx uint32) {
	st := &p.st
	wait := int32(0)
	for k := 0; k < 2; k++ {
		pid := st.prod[idx][k]
		if pid == noID {
			continue
		}
		pi := st.index(pid)
		if st.resultAt[pi] == unknown {
			node := idx*2 + uint32(k)
			st.waiterNext[node] = st.waiterHead[pi]
			st.waiterHead[pi] = node + 1
			wait++
		}
	}
	if st.flags[idx]&fIsLoad != 0 {
		if b := st.barrier[idx]; b >= p.storeWatermark {
			slot := b & p.storeRingMask
			st.loadNext[idx] = p.loadWaitHead[slot]
			p.loadWaitHead[slot] = idx + 1
			wait++
		}
	}
	st.waitCount[idx] = wait
	if wait == 0 {
		p.resolve(idx)
	}
}

// --- issue / execute ---

// effFwd returns the forwarding latency from producer to consumer with the
// Figure 5 knobs applied.
func (p *Pipeline) effFwd(prod, cons uint32) int64 {
	if p.cfg.ZeroAllFwdLat {
		return 0
	}
	same := p.st.group[prod] == p.st.group[cons]
	if p.cfg.ZeroIntraTrace && same {
		return 0
	}
	if p.cfg.ZeroInterTrace && !same {
		return 0
	}
	return p.fwdTab[int(p.st.cluster[prod])*p.geom.Clusters+int(p.st.cluster[cons])]
}

// resolve computes an RS entry's final ready cycle, critical source, and
// critical producer once every dependency is known, then sets the entry's
// ready-mask bit. Every term is fixed by now — producer resultAt and
// cluster are set at the producer's issue, rfReady at rename — so this is
// exactly the value the per-entry readiness() recompute used to converge
// on at issue time, computed once instead of per cycle.
//
//ctcp:hotpath
func (p *Pipeline) resolve(idx uint32) {
	st := &p.st
	var t [2]int64
	var fwd [2]bool
	src := st.src[idx]
	present := [2]bool{src[0] != isa.NoReg, src[1] != isa.NoReg}
	for k := 0; k < 2; k++ {
		if !present[k] {
			t[k] = 0
			continue
		}
		pid := st.prod[idx][k]
		if pid == noID {
			t[k] = st.rfReady[idx]
			continue
		}
		pi := st.index(pid)
		t[k] = st.resultAt[pi] + p.effFwd(pi, idx)
		fwd[k] = true
	}
	// Identify the critical (last-arriving) input.
	crit := core.CritNone
	switch {
	case present[0] && present[1]:
		if t[1] > t[0] {
			crit = core.CritRS2
		} else {
			crit = core.CritRS1
		}
	case present[0]:
		crit = core.CritRS1
	case present[1]:
		crit = core.CritRS2
	}
	ready := maxI64(t[0], t[1])
	if crit != core.CritNone {
		k := int(crit) - 1
		if fwd[k] {
			st.flags[idx] |= fCritFwd
			st.critProd[idx] = st.prod[idx][k]
			if p.cfg.ZeroCritFwdLat {
				// Only the last-arriving forward becomes free.
				other := t[1-k]
				if !present[1-k] {
					other = 0
				}
				ready = maxI64(other, st.resultAt[st.index(st.prod[idx][k])])
			}
		}
	}
	st.critSrc[idx] = uint8(crit)
	st.readyAt[idx] = ready
	if ready <= p.now {
		st.flags[idx] |= fResolved | fReady
		pos := int(st.rsSlot[idx])
		p.readyMask[st.cluster[idx]][pos>>6] |= 1 << uint(pos&63)
	} else {
		// Not issuable yet: park in the cluster's ready heap instead of
		// mask-setting, so the issue scan never revisits a known-not-ready
		// entry. issue pops it (and sets the bit) once its cycle arrives.
		st.flags[idx] |= fResolved
		p.readyHeap[st.cluster[idx]].push(readyEvent{at: ready, idx: idx})
	}
}

// wakeWaiters delivers a just-issued producer's resultAt to every RS entry
// waiting on it; entries whose last dependency this was resolve immediately,
// so a consumer later in this cycle's issue scan can still issue this cycle.
//
//ctcp:hotpath
func (p *Pipeline) wakeWaiters(idx uint32) {
	st := &p.st
	for n := st.waiterHead[idx]; n != 0; {
		node := n - 1
		n = st.waiterNext[node]
		st.waiterNext[node] = 0
		ci := node >> 1
		st.waitCount[ci]--
		if st.waitCount[ci] == 0 {
			p.resolve(ci)
		}
	}
	st.waiterHead[idx] = 0
}

// storeIssued marks seq issued and advances the disambiguation watermark,
// waking loads whose barrier the watermark passes.
//
//ctcp:hotpath
func (p *Pipeline) storeIssued(seq uint64) {
	st := &p.st
	p.storeRing[seq&p.storeRingMask] = true
	for p.storeWatermark < p.storeSeqNext && p.storeRing[p.storeWatermark&p.storeRingMask] {
		slot := p.storeWatermark & p.storeRingMask
		p.storeWatermark++
		for n := p.loadWaitHead[slot]; n != 0; {
			li := n - 1
			n = st.loadNext[li]
			st.loadNext[li] = 0
			st.waitCount[li]--
			if st.waitCount[li] == 0 {
				p.resolve(li)
			}
		}
		p.loadWaitHead[slot] = 0
	}
}

func (p *Pipeline) freeFU(c int, class isa.Class) cluster.FUKind {
	for _, fu := range cluster.UnitsFor(class) {
		if p.fuFree[c][fu] <= p.now {
			return fu
		}
	}
	return cluster.FUKind(-1)
}

// issue wakes ready reservation-station entries and dispatches them to free
// functional units. The scan walks each cluster's ready bitmask in age
// order (bit order == age order); unresolved entries cost nothing — whole
// 64-entry words of them are skipped with one load.
//
//ctcp:hotpath
func (p *Pipeline) issue() bool {
	st := &p.st
	worked := false
	for c := 0; c < p.geom.Clusters; c++ {
		entries := p.rsEntries[c]
		mask := p.readyMask[c]
		// Promote heap entries whose ready cycle has arrived: set their mask
		// bits so the age-ordered scan below sees them. Bits and heap pops
		// commute — scan order is mask position order either way.
		h := &p.readyHeap[c]
		for len(*h) > 0 && (*h)[0].at <= p.now {
			idx := (*h).pop().idx
			st.flags[idx] |= fReady
			pos := int(st.rsSlot[idx])
			mask[pos>>6] |= 1 << uint(pos&63)
		}
		// Classes that already failed to find a free unit this cycle: FUs
		// only get busier within a cycle (issuing books one, nothing frees
		// one until the cycle advances), so a miss stays a miss and younger
		// same-class entries can skip the unit scan.
		var noFU uint32
		for w := 0; w < len(mask); w++ {
			m := mask[w]
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				// Mask membership implies liveness; the generation check
				// stays on cross-record references, not ownership reads.
				// Every masked entry is ready (readyAt <= now): unready
				// entries wait in the heap, never in the mask.
				idx := uint32(entries[w<<6|b])
				class := st.class[idx]
				if noFU&(1<<class) != 0 {
					continue
				}
				fu := p.freeFU(c, class)
				if fu < 0 {
					noFU |= 1 << class
					continue
				}
				p.doIssue(idx, c, fu)
				worked = true
				// Re-read the word above the issued bit: issuing may have
				// resolved younger entries in it this very cycle (a store
				// unblocking a load), exactly as the per-entry recompute
				// would have observed on its way down the age order.
				m = mask[w] &^ (1<<(uint(b)+1) - 1)
			}
		}
		// Compact only when the window is mostly holes (compaction preserves
		// age order, so the mask scan's issue order is unaffected by when it
		// happens). The length guard keeps small windows untouched; the 2×
		// guard amortizes the O(len) rebuild to O(1) per dispatch.
		if len(entries) >= 64 && 2*p.rsLive[c] < len(entries) {
			keep := entries[:0]
			for _, id := range entries {
				if id == noID {
					continue
				}
				st.rsSlot[uint32(id)] = int32(len(keep))
				keep = append(keep, id)
			}
			for i := len(keep); i < len(entries); i++ {
				entries[i] = noID
			}
			p.rsEntries[c] = keep
			for i := range mask {
				mask[i] = 0
			}
			for pos, id := range keep {
				if st.flags[uint32(id)]&fReady != 0 {
					mask[pos>>6] |= 1 << uint(pos&63)
				}
			}
		}
	}
	return worked
}

func (p *Pipeline) doIssue(idx uint32, c int, fu cluster.FUKind) {
	st := &p.st
	lat := cluster.LatencyFor(st.class[idx])
	st.flags[idx] = (st.flags[idx] &^ fInRS) | fIssued
	p.rsCount[c][st.station[idx]]--
	// Leave a hole: clear the mask bit and detach the id so the slot skips
	// for free until the next compaction.
	pos := int(st.rsSlot[idx])
	p.readyMask[c][pos>>6] &^= 1 << uint(pos&63)
	p.rsEntries[c][pos] = noID
	p.rsLive[c]--
	p.fuFree[c][fu] = p.now + int64(lat.Issue)

	p.recordInputStats(idx)

	switch {
	case st.flags[idx]&fIsLoad != 0:
		p.S.Loads++
		addrDone := p.now + int64(lat.Exec)
		barrier := addrDone
		fwdStore := uint32(0)
		haveFwd := false
		for sid := st.prevStore[idx]; sid != noID; {
			si := st.index(sid)
			if st.flags[si]&fRetired != 0 {
				break
			}
			if st.resultAt[si] > barrier {
				barrier = st.resultAt[si]
			}
			if !haveFwd && overlaps(&st.rec[si], &st.rec[idx]) {
				fwdStore, haveFwd = si, true
			}
			sid = st.prevStore[si]
		}
		if haveFwd {
			p.S.StoreForwards++
			st.resultAt[idx] = maxI64(barrier, st.resultAt[fwdStore]) + 1
		} else {
			start := p.portTime(barrier)
			st.resultAt[idx] = p.mem.Access(start, st.rec[idx].EA)
		}
		st.doneAt[idx] = st.resultAt[idx]
	case st.flags[idx]&fIsStore != 0:
		p.S.Stores++
		st.resultAt[idx] = p.now + int64(lat.Exec)
		st.doneAt[idx] = st.resultAt[idx]
		p.storeIssued(st.barrier[idx])
	default:
		st.resultAt[idx] = p.now + int64(lat.Exec)
		st.doneAt[idx] = st.resultAt[idx]
	}
	p.wakeWaiters(idx)
}

func overlaps(store, load *emu.Committed) bool {
	sEnd := store.EA + uint64(store.Size)
	lEnd := load.EA + uint64(load.Size)
	return store.EA < lEnd && load.EA < sEnd
}

// portTime books a data-cache port at or after t and returns the cycle used.
func (p *Pipeline) portTime(t int64) int64 {
	if t <= p.now {
		t = p.now
	}
	return p.ports.book(t, p.cfg.Mem.Ports)
}

func (p *Pipeline) recordInputStats(idx uint32) {
	st := &p.st
	critSrc := core.CritSrc(st.critSrc[idx])
	if critSrc == core.CritNone {
		return
	}
	critFwd := st.flags[idx]&fCritFwd != 0
	p.S.WithInputs++
	interTrace := false
	if critFwd {
		p.S.CritForwarded++
		pi := st.index(st.critProd[idx])
		dist := int(p.distTab[int(st.cluster[pi])*p.geom.Clusters+int(st.cluster[idx])])
		p.S.CritDistSum += uint64(dist)
		if dist == 0 {
			p.S.CritIntraCluster++
		}
		if st.group[pi] != st.group[idx] {
			interTrace = true
			p.S.CritInterTrace++
		}
		switch critSrc {
		case core.CritRS1:
			p.S.CritFromRS1++
		case core.CritRS2:
			p.S.CritFromRS2++
		}
	} else {
		p.S.CritFromRF++
	}
	// Producer repeatability (Table 3): all forwarded inputs...
	var hist *pcStats
	prod := st.prod[idx]
	for k := 0; k < 2; k++ {
		pid := prod[k]
		if pid == noID || st.src[idx][k] == isa.NoReg {
			continue
		}
		pi := st.index(pid)
		p.S.FwdInputs++
		d := int(p.distTab[int(st.cluster[pi])*p.geom.Clusters+int(st.cluster[idx])])
		p.S.FwdDistSum += uint64(d)
		if d == 0 {
			p.S.FwdIntraCluster++
		}
		if hist == nil {
			hist = p.pcHist.statsFor(st.rec[idx].PC, isa.PCStride)
		}
		if hist.lastProd[k] != 0 {
			if k == 0 {
				p.S.RS1Seen++
				if hist.lastProd[k] == st.rec[pi].PC {
					p.S.RS1Repeat++
				}
			} else {
				p.S.RS2Seen++
				if hist.lastProd[k] == st.rec[pi].PC {
					p.S.RS2Repeat++
				}
			}
		}
		hist.lastProd[k] = st.rec[pi].PC
	}
	// ...and critical inter-trace inputs only.
	if critFwd && interTrace {
		k := int(critSrc) - 1
		cp := st.index(st.critProd[idx])
		if hist == nil {
			hist = p.pcHist.statsFor(st.rec[idx].PC, isa.PCStride)
		}
		if hist.lastCritInter[k] != 0 {
			if k == 0 {
				p.S.CritRS1InterSeen++
				if hist.lastCritInter[k] == st.rec[cp].PC {
					p.S.CritRS1InterRep++
				}
			} else {
				p.S.CritRS2InterSeen++
				if hist.lastCritInter[k] == st.rec[cp].PC {
					p.S.CritRS2InterRep++
				}
			}
		}
		hist.lastCritInter[k] = st.rec[cp].PC
	}
}

// --- retire ---

func (p *Pipeline) sbOccupied() int {
	keep := p.sbDrain[:0]
	for _, t := range p.sbDrain {
		if t > p.now {
			keep = append(keep, t)
		}
	}
	p.sbDrain = keep
	return len(p.sbDrain)
}

// retire drains completed instructions from the ROB head in program order,
// feeding the fill unit and the store buffer.
//
//ctcp:hotpath
func (p *Pipeline) retire() bool {
	st := &p.st
	budget := p.cfg.RetireWidth
	worked := false
	for budget > 0 && p.rob.len() > 0 {
		id := p.rob.front()
		idx := uint32(id) // ROB membership implies liveness
		if st.flags[idx]&fIssued == 0 || st.doneAt[idx] > p.now {
			break
		}
		if st.flags[idx]&fIsStore != 0 {
			if p.sbOccupied() >= p.cfg.StoreBuffer {
				p.S.SBFullStalls++
				break
			}
			drain := p.lastDrain + 1
			if drain < p.now {
				drain = p.now
			}
			p.lastDrain = drain
			done := p.mem.Access(p.portTime(drain), st.rec[idx].EA)
			p.sbDrain = append(p.sbDrain, done)
		}
		st.flags[idx] |= fRetired
		if st.flags[idx]&fIsLoad != 0 {
			p.loadsInROB--
		}
		p.rob.popFront()
		p.S.Retired++
		if st.flags[idx]&fFromTC != 0 {
			p.S.RetiredFromTC++
		}
		// Compose the ~200-byte RetireInfo directly in the fill unit's
		// pending slot (no scratch-then-copy). The slot stays readable after
		// CommitRetire even when it completes a trace, so the hook sees it.
		info := p.fill.RetireSlot()
		p.retireInfo(idx, info)
		p.fill.CommitRetire()
		if p.cfg.RetireHook != nil {
			p.cfg.RetireHook(*info)
		}
		// Drop outgoing references so retired slots don't chain-retain the
		// whole execution history; fields of *this* slot stay valid for any
		// younger consumers still holding its id. The slot itself is parked
		// in the graveyard until those consumers retire, then recycled with
		// a generation bump (see reclaim). Rename-visible aliases are
		// severed here so no new references can form after retirement.
		st.prod[idx] = [2]infID{}
		st.critProd[idx] = noID
		st.prevStore[idx] = noID
		if d := st.dest[idx]; d != isa.NoReg && p.renameMap[d] == id {
			p.renameMap[d] = noID
		}
		if p.lastStore == id {
			p.lastStore = noID
		}
		st.freeAfter[idx] = p.renamed
		p.scr.graveyard.push(id)
		p.lastRetireCycle = p.now
		budget--
		worked = true
	}
	if worked {
		p.reclaim()
	}
	return worked
}

// retireInfo fills *info (the retire scratch slot) for the fill unit; the
// struct is ~200 bytes and built once per retired instruction, so it is
// written in place instead of returned by value.
func (p *Pipeline) retireInfo(idx uint32, info *core.RetireInfo) {
	st := &p.st
	// Field-by-field stores: *info may be a recycled pending slot holding a
	// stale record, so every field is written, but without the composite-
	// literal temporary (and its second ~200-byte copy) a struct assignment
	// compiles to.
	info.Rec = st.rec[idx]
	info.FromTC = st.flags[idx]&fFromTC != 0
	info.Profile = st.profile[idx]
	info.Cluster = int(st.cluster[idx])
	info.FetchGroup = st.group[idx]
	info.CritSrc = core.CritSrc(st.critSrc[idx])
	if st.flags[idx]&fCritFwd != 0 && st.critProd[idx] != noID {
		cp := st.index(st.critProd[idx])
		info.CritForwarded = true
		info.CritProducerPC = st.rec[cp].PC
		info.CritProducerSeq = st.rec[cp].Seq
		info.CritProducerCluster = int(st.cluster[cp])
		info.CritInterTrace = st.group[cp] != st.group[idx]
		info.CritProducerProfile = st.profile[cp]
	} else {
		info.CritForwarded = false
		info.CritProducerPC = 0
		info.CritProducerSeq = 0
		info.CritProducerCluster = 0
		info.CritInterTrace = false
		info.CritProducerProfile = trace.Profile{}
	}
}

// debugDump renders one cycle's occupancy for Config.TraceCycles. (It was
// named snapshot before the Snapshot/Restore checkpointing contract took
// that name.)
func (p *Pipeline) debugDump() string {
	var sb []byte
	sb = fmt.Appendf(sb, "cyc %6d | fetchQ %2d | rob %3d | rs", p.now, p.fetchQ.len(), p.rob.len())
	for c := 0; c < p.geom.Clusters; c++ {
		occ := 0
		for st := 0; st < int(cluster.NumRSKinds); st++ {
			occ += p.rsCount[c][st]
		}
		sb = fmt.Appendf(sb, " %2d", occ)
	}
	if p.pendingRedirect != noID {
		sb = append(sb, " | redirect"...)
	}
	sb = fmt.Appendf(sb, " | retired %d", p.S.Retired)
	return string(sb)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunProgram is a convenience wrapper: it executes prog on a fresh emulator
// and replays the committed stream through a pipeline with cfg.
func RunProgram(prog *isa.Program, cfg Config) *Stats {
	m := emu.New(prog)
	p := New(m, cfg)
	return p.Run()
}
