// Fixture for the suppression audit: loaded by lint_test.go under the
// ctcp/internal/serve import path, run through maporder + lockheld, then
// audited. The used waivers must stay silent; the stale ones must be
// reported at the waiver's own line.
package fixture

import (
	"os"
	"sync"
)

// A suppression that really covers a finding is kept.
func usedSuppression(m map[string]int) int {
	t := 0
	for _, v := range m { //ctcp:lint-ok maporder -- pure accumulation; order-insensitive
		t += v
	}
	return t
}

// A suppression on a line that no longer produces the finding is stale.
func staleSuppression(s []int) int {
	t := 0
	for _, v := range s { //ctcp:lint-ok maporder -- slices are ordered want:suppressaudit
		t += v
	}
	return t
}

type store struct {
	mu   sync.Mutex
	path string
}

// usedColdlock's mutex exists to serialize the write below, the exact case
// the hatch is for: the annotation exempts a real would-be finding.
//
//ctcp:coldlock dedicated I/O-serialization leaf lock
func (s *store) usedColdlock(b []byte) {
	s.mu.Lock()
	_ = os.WriteFile(s.path, b, 0o644)
	s.mu.Unlock()
}

// staleColdlock guards no blocking work at all; the hatch exempts nothing.
//
//ctcp:coldlock nothing blocks under this lock want:suppressaudit
func (s *store) staleColdlock() {
	s.mu.Lock()
	s.path = ""
	s.mu.Unlock()
}
