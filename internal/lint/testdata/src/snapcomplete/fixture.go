// Fixture for the snapcomplete analyzer: every named field of a type with
// snap-shaped Snapshot/Restore methods must be referenced in the union of
// the two methods' intra-package call paths — serialized, restored, or
// audited with `_ = x.field`. Types with only one of the two methods are
// reported at the type declaration.
package fixture

import "ctcp/internal/snap"

// Core is complete: PC is serialized, seq only in Restore, scratch is
// audited in a helper reached transitively from Snapshot.
type Core struct {
	PC      uint64
	seq     uint64
	scratch []int
}

func (c *Core) Snapshot(w *snap.Writer) {
	w.Begin("core")
	w.U64(c.PC)
	w.U64(c.seq)
	c.auditScratch()
	w.End()
}

func (c *Core) Restore(r *snap.Reader) {
	r.Begin("core")
	c.PC = r.U64()
	c.seq = r.U64()
	c.scratch = c.scratch[:0]
	r.End()
}

func (c *Core) auditScratch() {
	_ = c.scratch // transient: rebuilt as the pipeline refills
}

// Leaky forgot a field: hits is serialized, misses fell through the cracks.
type Leaky struct {
	hits   uint64
	misses uint64 // want:snapcomplete
}

func (l *Leaky) Snapshot(w *snap.Writer) {
	w.Begin("leaky")
	w.U64(l.hits)
	w.End()
}

func (l *Leaky) Restore(r *snap.Reader) {
	r.Begin("leaky")
	l.hits = r.U64()
	r.End()
}

// Orphan has a Snapshot nothing can restore.
type Orphan struct { // want:snapcomplete
	val uint64
}

func (o *Orphan) Snapshot(w *snap.Writer) {
	w.Begin("orphan")
	w.U64(o.val)
	w.End()
}

// Sink has a Restore with no producer.
type Sink struct { // want:snapcomplete
	val uint64
}

func (s *Sink) Restore(r *snap.Reader) {
	r.Begin("sink")
	s.val = r.U64()
	r.End()
}

// NotCheckpointable's Snapshot does not take *snap.Writer, so the analyzer
// leaves it (and its unreferenced field) alone.
type NotCheckpointable struct {
	ignored uint64
}

func (n *NotCheckpointable) Snapshot(out *[]byte) { *out = append(*out, 0) }
