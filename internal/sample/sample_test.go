package sample

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/prog"
	"ctcp/internal/workload"
)

func benchProgram(t testing.TB, name string, insts uint64) *workloadProg {
	t.Helper()
	bm, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return &workloadProg{bm: bm, insts: insts}
}

type workloadProg struct {
	bm    workload.Benchmark
	insts uint64
}

func fdrtConfig() pipeline.Config {
	return pipeline.DefaultConfig().WithStrategy(core.FDRT, false)
}

// TestSampledIPCAccuracy: the sampled estimate must land within 2% of the
// monolithic run's IPC on the longest kernel. The entry region is measured
// exactly (it owns the real warm-up ramp); later regions measure a warmed
// window and scale it over their span. The simulator is deterministic, so
// the observed error is a fixed property of this configuration, not a
// statistical bound.
func TestSampledIPCAccuracy(t *testing.T) {
	const insts = 400_000
	p := benchProgram(t, "mcf", insts)

	cfg := fdrtConfig()
	cfg.MaxInsts = insts
	full := pipeline.RunProgram(p.bm.ProgramFor(insts), cfg)
	fullIPC := full.IPC()

	res, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), Options{
		Interval: 50_000,
		Detail:   25_000,
		Warmup:   12_500,
		Workers:  2,
		MaxInsts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInsts != insts {
		t.Fatalf("sampled run covered %d insts, want %d", res.TotalInsts, insts)
	}
	if len(res.Regions) != 8 {
		t.Fatalf("got %d regions, want 8", len(res.Regions))
	}
	ipc := res.IPC()
	if relErr := math.Abs(ipc-fullIPC) / fullIPC; relErr > 0.02 {
		t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.2f%% exceeds 2%%",
			ipc, fullIPC, 100*relErr)
	}
}

// TestSampledDetailWindow: Detail < Interval scales the estimate over each
// region's span, and only Detail instructions per region run in detail.
func TestSampledDetailWindow(t *testing.T) {
	const insts = 40_000
	p := benchProgram(t, "gzip", insts)
	res, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), Options{
		Interval: 10_000,
		Detail:   2_500,
		Workers:  2,
		MaxInsts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Region 0 runs its whole span in detail; the rest run the 2500-inst
	// window and scale by 4.
	if want := uint64(10_000 + 3*2_500); res.DetailedInsts != want {
		t.Errorf("detailed insts %d, want %d", res.DetailedInsts, want)
	}
	for _, reg := range res.Regions {
		wantInsts := uint64(2_500)
		if reg.Index == 0 {
			wantInsts = 10_000
		}
		if reg.Insts != wantInsts || reg.SpanInsts != 10_000 {
			t.Errorf("region %d: detail %d span %d, want %d/10000", reg.Index, reg.Insts, reg.SpanInsts, wantInsts)
		}
		want := float64(reg.Cycles) * float64(reg.SpanInsts) / float64(reg.Insts)
		if math.Abs(reg.EstCycles-want) > 1e-9 {
			t.Errorf("region %d: estimated %.1f cycles, want %.1f", reg.Index, reg.EstCycles, want)
		}
	}
	if res.Stats.Retired != res.DetailedInsts {
		t.Errorf("summed stats retired %d, want %d", res.Stats.Retired, res.DetailedInsts)
	}
}

// TestSampledDeterministic: worker scheduling must not leak into the
// result — two runs with a full pool are identical.
func TestSampledDeterministic(t *testing.T) {
	const insts = 30_000
	p := benchProgram(t, "mcf", insts)
	opts := Options{Interval: 6_000, Detail: 2_000, Workers: 4, MaxInsts: insts}
	a, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two sampled runs with 4 workers produced different results")
	}
}

// TestSampledOptionValidation: the two required knobs fail loudly.
func TestSampledOptionValidation(t *testing.T) {
	p := benchProgram(t, "gzip", 1_000)
	if _, err := Run(p.bm.ProgramFor(1_000), fdrtConfig(), Options{MaxInsts: 1_000}); err == nil {
		t.Error("Interval 0 accepted")
	}
	if _, err := Run(p.bm.ProgramFor(1_000), fdrtConfig(), Options{Interval: 100}); err == nil {
		t.Error("MaxInsts 0 accepted")
	}
}

// straightLine builds a program with an exactly known committed-instruction
// count (measured with a functional run, so HALT/OUT accounting can never
// drift from the emulator's) and an even count for clean halving.
func straightLine(t *testing.T, ops int) (*isa.Program, uint64) {
	t.Helper()
	build := func(ops int) *isa.Program {
		b := prog.New()
		for i := 0; i < ops; i++ {
			b.OpI(isa.ADD, isa.R(5), 1, isa.R(5))
		}
		b.Out(isa.R(5))
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := build(ops)
	n, err := emu.New(p).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n%2 == 1 {
		p = build(ops + 1)
		if n, err = emu.New(p).Run(0); err != nil {
			t.Fatal(err)
		}
	}
	return p, n
}

// TestSampleHaltOnRegionBoundary: a program that halts exactly at a region
// boundary must not produce a phantom trailing region — the checkpoint taken
// at the boundary stands for zero instructions and is dropped.
func TestSampleHaltOnRegionBoundary(t *testing.T) {
	p, n := straightLine(t, 62)
	res, err := Run(p, fdrtConfig(), Options{
		Interval: n / 2,
		MaxInsts: 2 * n, // the budget outlives the program: it halts first
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 2 {
		t.Fatalf("got %d regions, want 2 (no phantom region after the halt boundary)", len(res.Regions))
	}
	if res.TotalInsts != n {
		t.Errorf("TotalInsts %d, want the program's %d", res.TotalInsts, n)
	}
	for i, reg := range res.Regions {
		if reg.SpanInsts != n/2 {
			t.Errorf("region %d span %d, want %d", i, reg.SpanInsts, n/2)
		}
		if reg.StartInst != uint64(i)*n/2 {
			t.Errorf("region %d starts at %d, want %d", i, reg.StartInst, uint64(i)*n/2)
		}
	}
	// Full-detail regions: the estimate is the measured cycles, unscaled.
	if res.DetailedInsts != n || res.Stats.Retired != n {
		t.Errorf("detailed %d insts (stats %d), want %d", res.DetailedInsts, res.Stats.Retired, n)
	}
	if res.EstimatedCycles != float64(res.DetailedCycles) {
		t.Errorf("EstimatedCycles %.1f, want exactly the measured %d", res.EstimatedCycles, res.DetailedCycles)
	}
	if res.EstimatedCycles <= 0 || res.IPC() <= 0 {
		t.Errorf("degenerate estimate: %.1f cycles, IPC %.3f", res.EstimatedCycles, res.IPC())
	}
}

// TestSampleSingleRegion: an interval at least as long as the program yields
// one region — the entry region — which is always measured whole and cold,
// so the estimate equals the detailed measurement exactly.
func TestSampleSingleRegion(t *testing.T) {
	p, n := straightLine(t, 50)
	res, err := Run(p, fdrtConfig(), Options{
		Interval: 3 * n,
		Warmup:   n, // must be ignored: region 0 is never warmed
		MaxInsts: 2 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("got %d regions, want 1", len(res.Regions))
	}
	reg := res.Regions[0]
	if reg.WarmInsts != 0 || reg.WarmCycles != 0 {
		t.Errorf("entry region warmed (%d insts, %d cycles); it owns the true cold ramp", reg.WarmInsts, reg.WarmCycles)
	}
	if res.TotalInsts != n || reg.SpanInsts != n || reg.Insts != n {
		t.Errorf("insts: total %d span %d detailed %d, all want %d", res.TotalInsts, reg.SpanInsts, reg.Insts, n)
	}
	if res.EstimatedCycles != float64(reg.Cycles) || res.EstimatedCycles != float64(res.DetailedCycles) {
		t.Errorf("single whole region must not scale: est %.1f, measured %d", res.EstimatedCycles, reg.Cycles)
	}
}

// TestSampleWarmupClamped: a Warmup that would leave no measured
// instructions is clamped to half the detailed window, keeping every
// non-entry region's measurement non-empty.
func TestSampleWarmupClamped(t *testing.T) {
	const insts = 20_000
	p := benchProgram(t, "gzip", insts)
	const interval, detail = 5_000, 2_000
	res, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), Options{
		Interval: interval,
		Detail:   detail,
		Warmup:   interval, // >= the window: would consume the whole budget
		MaxInsts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInsts != insts {
		t.Fatalf("TotalInsts %d, want %d", res.TotalInsts, insts)
	}
	for _, reg := range res.Regions {
		if reg.Index == 0 {
			if reg.WarmInsts != 0 || reg.Insts != interval {
				t.Errorf("entry region: warm %d detailed %d, want 0/%d", reg.WarmInsts, reg.Insts, interval)
			}
			continue
		}
		if want := uint64(detail / 2); reg.WarmInsts != want {
			t.Errorf("region %d warmup %d, want clamp to %d", reg.Index, reg.WarmInsts, want)
		}
		if reg.Insts == 0 {
			t.Errorf("region %d has no measured instructions", reg.Index)
		}
		if reg.Insts+reg.WarmInsts != detail {
			t.Errorf("region %d warm %d + measured %d != window %d", reg.Index, reg.WarmInsts, reg.Insts, detail)
		}
	}
	if res.EstimatedCycles <= float64(res.DetailedCycles-res.Regions[0].Cycles) {
		t.Errorf("estimate %.1f does not cover the scaled-up regions", res.EstimatedCycles)
	}
}

// measureSpeedup runs the monolithic and sampled simulations once each and
// returns their wall times.
func measureSpeedup(tb testing.TB, insts uint64, workers int) (monolithic, sampled time.Duration, fullIPC, sampleIPC float64) {
	tb.Helper()
	bm, ok := workload.ByName("mcf")
	if !ok {
		tb.Fatal("mcf missing")
	}
	prog := bm.ProgramFor(insts)

	cfg := fdrtConfig()
	cfg.MaxInsts = insts
	t0 := time.Now()
	full := pipeline.RunProgram(prog, cfg)
	monolithic = time.Since(t0)

	t0 = time.Now()
	res, err := Run(prog, fdrtConfig(), Options{
		Interval: insts / 8,
		Detail:   insts / 16,
		Warmup:   insts / 32,
		Workers:  workers,
		MaxInsts: insts,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sampled = time.Since(t0)
	return monolithic, sampled, full.IPC(), res.IPC()
}

// TestSampledSpeedup asserts the headline acceptance number: sampled mode
// at 4 workers finishes the longest kernel at least 2x faster than the
// monolithic detailed run. Timing assertions need real parallel hardware
// and an uninstrumented build, so the test skips itself on small machines,
// under -race, and in -short runs.
func TestSampledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing test skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("timing test needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	mono, samp, fullIPC, sampleIPC := measureSpeedup(t, 400_000, 4)
	speedup := float64(mono) / float64(samp)
	t.Logf("monolithic %v, sampled %v, speedup %.2fx, IPC %.4f vs %.4f",
		mono, samp, speedup, fullIPC, sampleIPC)
	if speedup < 2 {
		t.Errorf("sampled speedup %.2fx below the 2x bound (monolithic %v, sampled %v)", speedup, mono, samp)
	}
	if relErr := math.Abs(sampleIPC-fullIPC) / fullIPC; relErr > 0.02 {
		t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.2f%% exceeds 2%%",
			sampleIPC, fullIPC, 100*relErr)
	}
}

// BenchmarkSampled reports the sampled-vs-monolithic speedup as a custom
// metric; the microbenchmark harness records it into BENCH_pipeline.json.
func BenchmarkSampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mono, samp, _, _ := measureSpeedup(b, 200_000, 4)
		b.ReportMetric(float64(mono)/float64(samp), "speedup")
	}
}
