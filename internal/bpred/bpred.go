// Package bpred implements the fetch-engine predictors of Table 7: a
// gshare/bimodal hybrid conditional-branch predictor with a selection
// (chooser) table, a set-associative branch target buffer, and a return
// address stack.
//
// The timing model is trace-driven on the committed path, so each branch is
// predicted and then immediately trained with its architectural outcome; the
// global history register is repaired with actual outcomes, which models a
// front end with perfect history checkpointing.
package bpred

// Config sizes the predictor structures.
type Config struct {
	BimodalEntries int // 2-bit counters indexed by PC
	GshareEntries  int // 2-bit counters indexed by PC^history
	ChooserEntries int // 2-bit selectors: >=2 choose gshare
	HistoryBits    int
	BTBEntries     int
	BTBWays        int
	RASEntries     int
}

// Default returns the paper's 16k-entry hybrid, 512-entry 4-way BTB
// configuration.
func Default() Config {
	return Config{
		BimodalEntries: 16 * 1024,
		GshareEntries:  16 * 1024,
		ChooserEntries: 16 * 1024,
		HistoryBits:    12,
		BTBEntries:     512,
		BTBWays:        4,
		RASEntries:     16,
	}
}

// Stats counts prediction outcomes.
type Stats struct {
	CondBranches   uint64
	CondMispredict uint64
	IndirectJumps  uint64
	IndirectMiss   uint64
	BTBLookups     uint64
	BTBMisses      uint64
	Returns        uint64
	ReturnMiss     uint64
}

// CondAccuracy returns the conditional-branch prediction accuracy.
func (s Stats) CondAccuracy() float64 {
	if s.CondBranches == 0 {
		return 1
	}
	return 1 - float64(s.CondMispredict)/float64(s.CondBranches)
}

// Predictor is the full fetch-engine prediction machinery.
type Predictor struct {
	cfg      Config
	bimodal  []uint8
	gshare   []uint8
	chooser  []uint8
	history  uint64
	histMask uint64

	btbTags  []uint64
	btbTgts  []uint64
	btbValid []bool
	btbLRU   []uint64
	btbStamp uint64

	ras    []uint64
	rasTop int

	S Stats
}

// New builds a predictor; table sizes must be powers of two.
func New(cfg Config) *Predictor {
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	if !pow2(cfg.BimodalEntries) || !pow2(cfg.GshareEntries) || !pow2(cfg.ChooserEntries) {
		panic("bpred: table sizes must be powers of two")
	}
	sets := cfg.BTBEntries / cfg.BTBWays
	if !pow2(sets) {
		panic("bpred: BTB sets must be a power of two")
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]uint8, cfg.BimodalEntries),
		gshare:   make([]uint8, cfg.GshareEntries),
		chooser:  make([]uint8, cfg.ChooserEntries),
		histMask: 1<<uint(cfg.HistoryBits) - 1,
		btbTags:  make([]uint64, cfg.BTBEntries),
		btbTgts:  make([]uint64, cfg.BTBEntries),
		btbValid: make([]bool, cfg.BTBEntries),
		btbLRU:   make([]uint64, cfg.BTBEntries),
		ras:      make([]uint64, cfg.RASEntries),
	}
	// Weakly taken start state keeps cold loops from mispredicting twice.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer bimodal
	}
	return p
}

func pcIndex(pc uint64, size int) int {
	return int((pc >> 2) & uint64(size-1))
}

// PredictCond returns the hybrid prediction for the conditional branch at pc
// without updating any state.
func (p *Predictor) PredictCond(pc uint64) bool {
	bi := p.bimodal[pcIndex(pc, p.cfg.BimodalEntries)] >= 2
	gi := p.gshare[int(((pc>>2)^p.history)&uint64(p.cfg.GshareEntries-1))] >= 2
	if p.chooser[pcIndex(pc, p.cfg.ChooserEntries)] >= 2 {
		return gi
	}
	return bi
}

// UpdateCond trains the hybrid with the architectural outcome and shifts the
// (repaired) global history.
func (p *Predictor) UpdateCond(pc uint64, taken bool) {
	biIdx := pcIndex(pc, p.cfg.BimodalEntries)
	gsIdx := int(((pc >> 2) ^ p.history) & uint64(p.cfg.GshareEntries-1))
	chIdx := pcIndex(pc, p.cfg.ChooserEntries)
	biCorrect := (p.bimodal[biIdx] >= 2) == taken
	gsCorrect := (p.gshare[gsIdx] >= 2) == taken
	if gsCorrect != biCorrect {
		if gsCorrect {
			bump(&p.chooser[chIdx], true)
		} else {
			bump(&p.chooser[chIdx], false)
		}
	}
	bump(&p.bimodal[biIdx], taken)
	bump(&p.gshare[gsIdx], taken)
	p.history = (p.history<<1 | b2u(taken)) & p.histMask
}

// PredictAndTrainCond predicts the branch at pc, trains with the actual
// outcome, and returns whether the prediction was correct.
func (p *Predictor) PredictAndTrainCond(pc uint64, actual bool) (predicted, correct bool) {
	predicted = p.PredictCond(pc)
	p.S.CondBranches++
	correct = predicted == actual
	if !correct {
		p.S.CondMispredict++
	}
	p.UpdateCond(pc, actual)
	return predicted, correct
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- BTB ---

func (p *Predictor) btbSet(pc uint64) int {
	sets := p.cfg.BTBEntries / p.cfg.BTBWays
	return int((pc >> 2) & uint64(sets-1))
}

// BTBLookup returns the predicted target for the control instruction at pc.
func (p *Predictor) BTBLookup(pc uint64) (target uint64, hit bool) {
	p.S.BTBLookups++
	base := p.btbSet(pc) * p.cfg.BTBWays
	for w := 0; w < p.cfg.BTBWays; w++ {
		i := base + w
		if p.btbValid[i] && p.btbTags[i] == pc {
			p.btbStamp++
			p.btbLRU[i] = p.btbStamp
			return p.btbTgts[i], true
		}
	}
	p.S.BTBMisses++
	return 0, false
}

// BTBInsert records the taken target of the control instruction at pc.
func (p *Predictor) BTBInsert(pc, target uint64) {
	base := p.btbSet(pc) * p.cfg.BTBWays
	victim := base
	var victimStamp uint64 = 1<<64 - 1
	for w := 0; w < p.cfg.BTBWays; w++ {
		i := base + w
		if p.btbValid[i] && p.btbTags[i] == pc {
			p.btbTgts[i] = target
			return
		}
		if !p.btbValid[i] {
			victim, victimStamp = i, 0
		} else if p.btbLRU[i] < victimStamp {
			victim, victimStamp = i, p.btbLRU[i]
		}
	}
	p.btbStamp++
	p.btbTags[victim] = pc
	p.btbTgts[victim] = target
	p.btbValid[victim] = true
	p.btbLRU[victim] = p.btbStamp
}

// --- RAS ---

// PushReturn records a call's return address.
func (p *Predictor) PushReturn(addr uint64) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

// PredictReturn pops the predicted return target; ok=false on an empty stack.
func (p *Predictor) PredictReturn() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// Reset clears all predictor state and statistics.
func (p *Predictor) Reset() {
	np := New(p.cfg)
	*p = *np
}
