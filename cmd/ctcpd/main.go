// Command ctcpd runs (and talks to) the fingerprint-keyed simulation
// service.
//
// Usage:
//
//	ctcpd -serve -addr :8321 -store results/          # start the service
//	ctcpd -serve ... -ckpt-dir ckpts/                 # allow checkpointed jobs;
//	                                                  # shutdown drains losslessly
//	ctcpd -submit -bm gzip -config fdrt               # submit one job
//	ctcpd -submit ... -timeout 2m                     # ...and wait for the result
//	ctcpd -wait job-3                                 # wait for an earlier job
//
// A submitted job is identified by its run fingerprint (benchmark + full
// config + budget + mode): duplicates join the in-flight job, repeats are
// answered from the server's result store — across restarts — without
// resimulating. SIGINT/SIGTERM drain the server: in-flight checkpointed runs
// stop at the next segment boundary and resume bit-exactly on restart.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctcp/internal/serve"
)

// cliOptions collects every parsed flag.
type cliOptions struct {
	serveMode bool
	submit    bool
	waitID    string
	addr      string

	// -serve
	storeDir string
	ckptDir  string
	workers  int
	queue    int
	drain    time.Duration

	// -submit
	bm             string
	config         string
	insts          uint64
	sampleInterval uint64
	sampleDetail   uint64
	sampleWarmup   uint64
	checkpoint     bool
	ckptEvery      uint64

	// -submit / -wait
	timeout time.Duration
}

func (o *cliOptions) validate() error {
	modes := 0
	for _, on := range []bool{o.serveMode, o.submit, o.waitID != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -serve, -submit, -wait is required")
	}
	if o.serveMode && o.storeDir == "" {
		return fmt.Errorf("-serve requires -store <dir>")
	}
	if o.submit && (o.bm == "" || o.config == "") {
		return fmt.Errorf("-submit requires -bm and -config")
	}
	return nil
}

func main() {
	var o cliOptions
	flag.BoolVar(&o.serveMode, "serve", false, "run the simulation service")
	flag.BoolVar(&o.submit, "submit", false, "submit one job to a running service")
	flag.StringVar(&o.waitID, "wait", "", "wait for the given job ID to finish and print its result")
	flag.StringVar(&o.addr, "addr", "localhost:8321", "listen address (-serve) or server address (-submit/-wait)")
	flag.StringVar(&o.storeDir, "store", "", "result-store directory (required with -serve)")
	flag.StringVar(&o.ckptDir, "ckpt-dir", "", "checkpoint directory: enables checkpointed jobs and lossless shutdown")
	flag.IntVar(&o.workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "accepted-but-not-running job bound; overflow is rejected with 429 (0 = 64)")
	flag.DurationVar(&o.drain, "drain", 60*time.Second, "shutdown drain budget for in-flight simulations")
	flag.StringVar(&o.bm, "bm", "", "benchmark name to submit")
	flag.StringVar(&o.config, "config", "", "strategy configuration name to submit")
	flag.Uint64Var(&o.insts, "insts", 0, "committed instruction budget (0 = server default)")
	flag.Uint64Var(&o.sampleInterval, "sample", 0, "sampled simulation: region interval (0 = full detail)")
	flag.Uint64Var(&o.sampleDetail, "sample-detail", 0, "instructions simulated in detail per region")
	flag.Uint64Var(&o.sampleWarmup, "sample-warmup", 0, "warmup instructions per region")
	flag.BoolVar(&o.checkpoint, "checkpoint", false, "request a checkpoint-segmented (resumable) run")
	flag.Uint64Var(&o.ckptEvery, "checkpoint-every", 0, "instructions between checkpoints (0 = budget/4)")
	flag.DurationVar(&o.timeout, "timeout", 0, "how long -submit/-wait block for the result (0: -submit returns immediately, -wait blocks forever)")
	flag.Parse()
	os.Exit(run(&o))
}

func run(o *cliOptions) int {
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 2
	}
	switch {
	case o.serveMode:
		return runServe(o)
	case o.submit:
		return runSubmit(o)
	default:
		return runWait(o, o.waitID)
	}
}

// runServe hosts the service until SIGINT/SIGTERM, then drains: the HTTP
// front end stops accepting, queued jobs resolve as interrupted, and
// in-flight checkpointed runs stop at their next segment boundary with the
// newest checkpoint on disk.
func runServe(o *cliOptions) int {
	logger := log.New(os.Stderr, "ctcpd: ", log.LstdFlags)
	s, err := serve.New(serve.Config{
		Store:         o.storeDir,
		CheckpointDir: o.ckptDir,
		QueueDepth:    o.queue,
		Workers:       o.workers,
		DefaultBudget: o.insts,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	srv := &http.Server{Addr: o.addr, Handler: s}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (store %s)", o.addr, o.storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		logger.Printf("http server: %v", err)
		return 1
	case got := <-sig:
		logger.Printf("%v: draining (budget %v)", got, o.drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	logger.Printf("drained")
	return 0
}

// jobResp mirrors the service's job JSON; Stats stays raw so the client
// reprints exactly what the server sent.
type jobResp struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	Status      string          `json:"status"`
	Cached      bool            `json:"cached"`
	Error       string          `json:"error"`
	Stats       json.RawMessage `json:"stats"`
}

func terminal(status string) bool {
	switch status {
	case serve.StatusDone, serve.StatusFailed, serve.StatusInterrupted:
		return true
	}
	return false
}

// baseURL normalizes -addr into an http URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

func runSubmit(o *cliOptions) int {
	body, err := json.Marshal(serve.Request{
		Benchmark:       o.bm,
		Config:          o.config,
		Budget:          o.insts,
		SampleInterval:  o.sampleInterval,
		SampleDetail:    o.sampleDetail,
		SampleWarmup:    o.sampleWarmup,
		Checkpoint:      o.checkpoint,
		CheckpointEvery: o.ckptEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 1
	}
	resp, err := http.Post(baseURL(o.addr)+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: submit: %v\n", err)
		return 1
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
		return 1
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "ctcpd: submit rejected (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	var j jobResp
	if err := json.Unmarshal(raw, &j); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: decoding response: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ctcpd: job %s fingerprint %s status %s\n", j.ID, j.Fingerprint, j.Status)
	if terminal(j.Status) || o.timeout == 0 {
		fmt.Printf("%s\n", raw)
		return exitFor(j)
	}
	return runWait(o, j.ID)
}

// runWait long-polls a job until it reaches a terminal status (or -timeout
// elapses) and prints the final job JSON on stdout.
func runWait(o *cliOptions, id string) int {
	var deadline time.Time
	if o.timeout > 0 {
		deadline = time.Now().Add(o.timeout)
	}
	url := baseURL(o.addr) + "/api/v1/jobs/" + id + "?wait=10s"
	for {
		resp, err := http.Get(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: wait: %v\n", err)
			return 1
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "ctcpd: wait (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
			return 1
		}
		var j jobResp
		if err := json.Unmarshal(raw, &j); err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: decoding response: %v\n", err)
			return 1
		}
		if terminal(j.Status) {
			fmt.Printf("%s\n", raw)
			return exitFor(j)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "ctcpd: job %s still %s after %v\n", id, j.Status, o.timeout)
			return 1
		}
	}
}

// exitFor maps a terminal job status to the process exit code.
func exitFor(j jobResp) int {
	switch j.Status {
	case serve.StatusFailed, serve.StatusInterrupted:
		fmt.Fprintf(os.Stderr, "ctcpd: job %s %s: %s\n", j.ID, j.Status, j.Error)
		return 1
	}
	return 0
}
