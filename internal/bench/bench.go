// Package bench measures cycle-model simulation throughput programmatically
// (via testing.Benchmark) so tooling can emit machine-readable numbers
// without parsing `go test -bench` output. `ctcpbench -microbench` uses it
// to write BENCH_pipeline.json, which records the current measurement next
// to the pre-optimization baseline the allocation-free hot path is compared
// against.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/sample"
	"ctcp/internal/workload"
)

// DefaultInsts is the per-run committed-instruction budget; it matches the
// BenchmarkRunProgram budget in internal/pipeline so the JSON numbers and
// `go test -bench` agree.
const DefaultInsts = 30_000

// Kernels lists the workloads the throughput report tracks: two pointer- and
// branch-heavy integer codes, one cache-hostile pointer chaser, and one FP
// kernel. It matches benchKernels in internal/pipeline's bench_test.
var Kernels = []string{"gzip", "mcf", "eon", "perlbmk"}

// Metrics is one kernel's simulation-throughput measurement.
type Metrics struct {
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// Report is one full measurement of every kernel under one toolchain.
type Report struct {
	Label     string             `json:"label"`
	GoVersion string             `json:"go_version"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Insts     uint64             `json:"insts_per_run"`
	Strategy  string             `json:"strategy"`
	Kernels   map[string]Metrics `json:"kernels"`
}

// File is the BENCH_pipeline.json layout: the frozen pre-optimization
// baseline plus the most recent measurement, and — once measured — the
// sampled-simulation speedup record.
type File struct {
	Baseline Report        `json:"baseline"`
	Current  Report        `json:"current"`
	Sample   *SampleReport `json:"sample,omitempty"`
}

// SampleReport records one honest wall-clock comparison between a
// monolithic detailed run and region-parallel sampled simulation of the
// same kernel and budget. Workers and NumCPU are part of the record: the
// speedup is only meaningful relative to the parallelism that produced it.
type SampleReport struct {
	Kernel       string  `json:"kernel"`
	Insts        uint64  `json:"insts"`
	Workers      int     `json:"workers"`
	NumCPU       int     `json:"num_cpu"`
	MonolithicNs int64   `json:"monolithic_ns"`
	SampledNs    int64   `json:"sampled_ns"`
	Speedup      float64 `json:"speedup"`
	FullIPC      float64 `json:"full_ipc"`
	SampledIPC   float64 `json:"sampled_ipc"`
	IPCRelErr    float64 `json:"ipc_rel_err"`
}

// SampleInsts is the budget for the sampled-speedup measurement: large
// enough that region-parallel sampling amortizes its fast-forward pass.
const SampleInsts = 400_000

// RunSample measures the sampled-simulation speedup on the longest kernel
// (mcf) with the configuration the acceptance tests use: regions every
// budget/8 instructions, half of each region simulated in detail, half of
// that as warmup.
func RunSample(insts uint64, workers int) (*SampleReport, error) {
	if insts == 0 {
		insts = SampleInsts
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const kernel = "mcf"
	bm, ok := workload.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("bench: unknown kernel %q", kernel)
	}
	prog := bm.ProgramFor(insts)
	cfg := pipeline.DefaultConfig().WithStrategy(core.FDRT, false)

	monoCfg := cfg
	monoCfg.MaxInsts = insts
	t0 := time.Now()
	full := pipeline.RunProgram(prog, monoCfg)
	monoNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	res, err := sample.Run(prog, cfg, sample.Options{
		Interval: insts / 8,
		Detail:   insts / 16,
		Warmup:   insts / 32,
		Workers:  workers,
		MaxInsts: insts,
	})
	if err != nil {
		return nil, err
	}
	sampNs := time.Since(t0).Nanoseconds()

	rep := &SampleReport{
		Kernel:       kernel,
		Insts:        insts,
		Workers:      workers,
		NumCPU:       runtime.NumCPU(),
		MonolithicNs: monoNs,
		SampledNs:    sampNs,
		FullIPC:      full.IPC(),
		SampledIPC:   res.IPC(),
	}
	if sampNs > 0 {
		rep.Speedup = float64(monoNs) / float64(sampNs)
	}
	if rep.FullIPC > 0 {
		rep.IPCRelErr = (rep.SampledIPC - rep.FullIPC) / rep.FullIPC
	}
	return rep, nil
}

// Run measures simulation throughput for every kernel with the FDRT
// strategy and an insts-instruction budget per op (0 selects DefaultInsts).
func Run(insts uint64) (Report, error) {
	if insts == 0 {
		insts = DefaultInsts
	}
	rep := Report{
		Label:     "current",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Insts:     insts,
		Strategy:  core.FDRT.String(),
		Kernels:   make(map[string]Metrics, len(Kernels)),
	}
	for _, name := range Kernels {
		m, err := runKernel(name, insts)
		if err != nil {
			return rep, err
		}
		rep.Kernels[name] = m
	}
	return rep, nil
}

func runKernel(name string, insts uint64) (Metrics, error) {
	bm, ok := workload.ByName(name)
	if !ok {
		return Metrics{}, fmt.Errorf("bench: unknown kernel %q", name)
	}
	prog := bm.ProgramFor(insts)
	cfg := pipeline.DefaultConfig().WithStrategy(core.FDRT, false)
	cfg.MaxInsts = insts
	var cycles int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			cycles += pipeline.RunProgram(prog, cfg).Cycles
		}
	})
	if cycles <= 0 {
		return Metrics{}, fmt.Errorf("bench: %s simulation made no progress", name)
	}
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	cyclesPerOp := float64(cycles) / float64(r.N)
	return Metrics{
		Iterations:     r.N,
		NsPerOp:        nsPerOp,
		BytesPerOp:     r.AllocedBytesPerOp(),
		AllocsPerOp:    r.AllocsPerOp(),
		NsPerCycle:     nsPerOp / cyclesPerOp,
		CyclesPerSec:   float64(cycles) / r.T.Seconds(),
		AllocsPerCycle: float64(r.AllocsPerOp()) / cyclesPerOp,
	}, nil
}

// Baseline returns the frozen pre-optimization measurement, taken at the
// commit immediately before the allocation-free hot-path rewrite (map-based
// port/producer bookkeeping, per-instruction inflight allocation,
// filtered-append queue drains) on the reference machine recorded in GOOS /
// GOARCH. It seeds BENCH_pipeline.json when no baseline is present.
func Baseline() Report {
	mk := func(iters int, nsPerOp, cyclesPerSec, nsPerCycle float64, bytesPerOp, allocsPerOp int64) Metrics {
		cyclesPerOp := nsPerOp / nsPerCycle
		return Metrics{
			Iterations:     iters,
			NsPerOp:        nsPerOp,
			BytesPerOp:     bytesPerOp,
			AllocsPerOp:    allocsPerOp,
			NsPerCycle:     nsPerCycle,
			CyclesPerSec:   cyclesPerSec,
			AllocsPerCycle: float64(allocsPerOp) / cyclesPerOp,
		}
	}
	return Report{
		Label:     "pre-optimization seed model",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Insts:     DefaultInsts,
		Strategy:  core.FDRT.String(),
		Kernels: map[string]Metrics{
			"gzip":    mk(25, 49253493, 305237, 3276, 37386276, 309651),
			"mcf":     mk(19, 66291668, 953710, 1049, 39430614, 362876),
			"eon":     mk(18, 61842860, 359379, 2783, 40872689, 340086),
			"perlbmk": mk(24, 48134019, 884468, 1131, 45760338, 466881),
		},
	}
}
