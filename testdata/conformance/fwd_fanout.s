; conformance/stress: one producer fanning out to many consumers each
; iteration (inter-cluster forwarding pressure).
        .entry main
main:   movi    r1, 12345
        movi    r9, 0
        movi    r8, 30
fo:     add     r1, 7, r2       ; single producer
        add     r2, 1, r3
        sub     r2, 2, r4
        sll     r2, 1, r5
        srl     r2, 1, r6
        xor     r2, r1, r7
        add     r3, r4, r10
        add     r5, r6, r11
        add     r10, r11, r12
        add     r12, r7, r12
        add     r9, r12, r9
        add     r1, r12, r1
        sub     r8, 1, r8
        bne     r8, fo
        out     r9
        halt
