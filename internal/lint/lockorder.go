package lint

// lockorder: the module-wide lock-acquisition-order graph must be acyclic.
//
// Every function's CFG is walked with the same may-held fixpoint as lockheld,
// but locks are named globally: a mutex field is "pkg.Type.field", a
// package-level mutex is "pkg.name", and a function-local one is
// "pkg.func.name" (locals cannot alias across functions, so the function
// name disambiguates). While lock H is held, acquiring lock D — directly, or
// anywhere in the transitive static call graph of a call made in the region —
// adds edge H→D with the first witness position. Two reports come out of the
// graph:
//
//   - a self-edge H→H ("lock reacquired while already held"): for a
//     non-reentrant sync.Mutex that is self-deadlock, and for an RWMutex a
//     write/read reacquisition is still a deadlock risk under writer
//     starvation;
//   - a cycle among two or more locks: the classic deadlock shape — two
//     goroutines taking the locks in opposite orders can each hold one and
//     wait forever for the other. Each strongly connected component is
//     reported once, at its first edge's witness, listing every edge so the
//     order inversion is readable from the diagnostic alone.
//
// The analysis is conservative in the may direction (a lock "may" be held
// after a join even if one path released it) and ignores locks it cannot
// name, go/defer bodies, and dynamic calls — same blind spots as lockheld,
// documented in DESIGN.md §12.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "cycle in the module-wide lock-acquisition-order graph (potential deadlock)",
	RunModule: runLockOrder,
}

// globalLockKey names a mutex with module-wide identity, or "" when the
// expression cannot be resolved to a stable named lock.
func globalLockKey(pkg *Package, fnName string, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			// Field selection: name by the owning named type, so s.mu and
			// srv.mu are the same lock wherever they appear.
			obj := sel.Obj()
			if owner := recvNamed(sel.Recv()); owner != nil {
				return fmt.Sprintf("%s.%s.%s", ownerPath(owner.Obj()), owner.Obj().Name(), obj.Name())
			}
			return ""
		}
		// Qualified identifier: pkgname.Var.
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return fmt.Sprintf("%s.%s", v.Pkg().Path(), v.Name())
		}
		return ""
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return fmt.Sprintf("%s.%s", v.Pkg().Path(), v.Name())
		}
		// Function-local lock: scope it by the enclosing function.
		return fmt.Sprintf("%s.%s.%s", v.Pkg().Path(), fnName, v.Name())
	}
	return ""
}

func ownerPath(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}

// directAcquires collects the global keys of locks acquired anywhere in a
// function (outside go/defer/function literals).
func directAcquires(pkg *Package, decl *ast.FuncDecl) map[string]token.Pos {
	out := map[string]token.Pos{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if recv, acquire, ok := mutexMethod(pkg, n); ok && acquire {
				if key := globalLockKey(pkg, decl.Name.Name, recv); key != "" {
					if _, dup := out[key]; !dup {
						out[key] = n.Pos()
					}
				}
			}
		}
		return true
	})
	return out
}

// acquiresStar computes, per function, the set of locks acquired by the
// function or anything it (transitively, statically) calls in the module.
func acquiresStar(cg *callGraph) map[*types.Func]map[string]token.Pos {
	direct := map[*types.Func]map[string]token.Pos{}
	callees := map[*types.Func][]*types.Func{}
	for _, f := range cg.order {
		direct[f.fn] = directAcquires(f.pkg, f.decl)
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if callee := resolveCallee(f.pkg, n); callee != nil {
					if _, ok := cg.decls[callee]; ok {
						callees[f.fn] = append(callees[f.fn], callee)
					}
				}
			}
			return true
		})
	}
	star := map[*types.Func]map[string]token.Pos{}
	for fn, d := range direct { // fixpoint seed; map iteration order is irrelevant to the result
		m := map[string]token.Pos{}
		for k, v := range d {
			m[k] = v
		}
		star[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, f := range cg.order {
			m := star[f.fn]
			for _, callee := range callees[f.fn] {
				for k, v := range star[callee] { // set union; order-insensitive
					if _, ok := m[k]; !ok {
						m[k] = v
						changed = true
					}
				}
			}
		}
	}
	return star
}

// lockEdge is one ordered pair in the acquisition graph.
type lockEdge struct {
	from, to string
}

func runLockOrder(mp *ModulePass) {
	cg := buildCallGraph(mp.Pkgs)
	star := acquiresStar(cg)

	// Collect edges: for every function, walk its CFG with globally-named
	// held sets; at each node, held × acquired-here is an edge set. A call
	// node contributes the callee's transitive acquisitions.
	edges := map[lockEdge]token.Pos{}
	edgePkg := map[lockEdge]*Package{}
	addEdge := func(pkg *Package, from, to string, pos token.Pos) {
		e := lockEdge{from, to}
		if _, ok := edges[e]; !ok {
			edges[e] = pos
			edgePkg[e] = pkg
		}
	}
	for _, f := range cg.order {
		pkg, decl := f.pkg, f.decl
		keyFn := func(e ast.Expr) string { return globalLockKey(pkg, decl.Name.Name, e) }
		ops := func(n ast.Node) []lockOp { return nodeLockOps(pkg, n, keyFn) }
		g := BuildCFG(decl.Body)
		lockWalk(g, ops, func(n ast.Node, held heldSet) {
			if len(held) == 0 {
				return
			}
			// Acquisitions at this node: direct lock calls plus everything
			// reachable through module calls made here.
			acquired := map[string]token.Pos{}
			for _, op := range ops(n) {
				if op.acquire {
					acquired[op.key] = op.pos
				}
			}
			var scanRoot ast.Node = n
			switch n := n.(type) {
			case *ast.RangeStmt:
				scanRoot = n.X
			case *ast.SelectStmt:
				scanRoot = nil
			}
			if scanRoot != nil {
				ast.Inspect(scanRoot, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
						return false
					case *ast.CallExpr:
						if callee := resolveCallee(pkg, m); callee != nil {
							for k := range star[callee] { // union into acquired; order-insensitive
								if _, ok := acquired[k]; !ok {
									acquired[k] = m.Pos()
								}
							}
						}
					}
					return true
				})
			}
			for h := range held { // edge emission; dedup map keeps first witness per edge, cycle reporting sorts
				for d, pos := range acquired {
					addEdge(pkg, h, d, pos)
				}
			}
		})
	}

	// Deterministic edge order for reporting.
	sorted := make([]lockEdge, 0, len(edges))
	for e := range edges { // collected and sorted below
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].from != sorted[j].from {
			return sorted[i].from < sorted[j].from
		}
		return sorted[i].to < sorted[j].to
	})

	// Self-edges first: reacquiring a held lock deadlocks immediately.
	adj := map[string][]string{}
	for _, e := range sorted {
		if e.from == e.to {
			pkg := edgePkg[e]
			mp.Reportf(pkg, edges[e], "lock %s reacquired while already held (self-deadlock)", e.from)
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}

	// Cycles: report each strongly connected component with >1 lock once, at
	// the witness of its first (sorted) internal edge.
	for _, scc := range stronglyConnected(adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var cycleEdges []lockEdge
		for _, e := range sorted {
			if e.from != e.to && inSCC[e.from] && inSCC[e.to] {
				cycleEdges = append(cycleEdges, e)
			}
		}
		if len(cycleEdges) == 0 {
			continue
		}
		first := cycleEdges[0]
		pkg := edgePkg[first]
		desc := ""
		for i, e := range cycleEdges {
			if i > 0 {
				desc += ", "
			}
			desc += fmt.Sprintf("%s -> %s (%s)", e.from, e.to, shortPos(pkg.Fset, edges[e]))
		}
		locks := append([]string(nil), scc...)
		sort.Strings(locks)
		mp.Reportf(pkg, edges[first], "lock-order cycle among %v: %s; acquire these locks in one global order", locks, desc)
	}
}

// stronglyConnected returns the SCCs of a string digraph (Tarjan, iterative
// enough for lint-sized graphs via recursion), in a deterministic order.
func stronglyConnected(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for n, outs := range adj { // collected and sorted below
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, m := range outs {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strong(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}
