package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ctcp/internal/cluster"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

func testConfig(k StrategyKind) Config {
	return Config{Strategy: k, Geom: cluster.DefaultGeometry(), Trace: trace.DefaultConfig()}
}

// inst builds a simple committed ALU instruction at pc writing rc and
// reading ra/rb.
func inst(seq, pc uint64, ra, rb, rc isa.Reg) emu.Committed {
	return emu.Committed{
		Seq: seq, PC: pc,
		Inst: isa.Inst{Op: isa.ADD, Ra: ra, Rb: rb, Rc: rc},
	}
}

// retireN feeds n independent single-block instructions (full trace at 16).
func retireN(f *FillUnit, n int, startPC uint64) {
	for i := 0; i < n; i++ {
		pc := startPC + uint64(i*4)
		f.Retire(&RetireInfo{Rec: inst(uint64(i), pc, isa.ZeroReg, isa.ZeroReg, isa.R(1+i%20))})
	}
}

func lookup(tc *trace.Cache, pc uint64) *trace.Trace {
	return tc.Lookup(pc, func(uint64) bool { return true })
}

func TestBaseIdentityPlacement(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(Base), tc)
	retireN(f, 16, 0x1000)
	tr := lookup(tc, 0x1000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	for i, s := range tr.Slots {
		if s.SlotIndex != i || s.Cluster != i/4 {
			t.Fatalf("slot %d: index=%d cluster=%d", i, s.SlotIndex, s.Cluster)
		}
	}
}

func TestFriendlyPullsDependentToProducerCluster(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(Friendly), tc)
	// Logical stream: i0 writes r1; 14 independent fillers; i15 reads r1.
	// Base placement would put i15 in cluster 3, far from i0 in cluster 0.
	f.Retire(&RetireInfo{Rec: inst(0, 0x1000, isa.ZeroReg, isa.ZeroReg, isa.R(1))})
	for i := 1; i < 15; i++ {
		f.Retire(&RetireInfo{Rec: inst(uint64(i), 0x1000+uint64(i*4), isa.ZeroReg, isa.ZeroReg, isa.R(10+i%10))})
	}
	f.Retire(&RetireInfo{Rec: inst(15, 0x1000+60, isa.R(1), isa.ZeroReg, isa.R(2))})
	tr := lookup(tc, 0x1000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	prodCl, consCl := tr.Slots[0].Cluster, tr.Slots[15].Cluster
	if prodCl != consCl {
		t.Errorf("friendly left dependent pair split: producer cluster %d consumer %d", prodCl, consCl)
	}
}

func TestFriendlyMiddleBiasesMiddleClusters(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FriendlyMiddle), tc)
	// 8 independent instructions: all should land in the two middle clusters.
	for i := 0; i < 8; i++ {
		f.Retire(&RetireInfo{Rec: inst(uint64(i), 0x1000+uint64(i*4), isa.ZeroReg, isa.ZeroReg, isa.R(1+i))})
	}
	f.Flush()
	tr := lookup(tc, 0x1000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	for i, s := range tr.Slots {
		if s.Cluster != 1 && s.Cluster != 2 {
			t.Errorf("instruction %d landed in end cluster %d", i, s.Cluster)
		}
	}
}

// fdrtRetire feeds a 2-instruction trace (producer, consumer) where the
// consumer's critical input is the producer, with controllable trace
// boundary and forwarding flags.
func fdrtRetire(f *FillUnit, seq *uint64, pc uint64, interTrace bool, prodCluster int) {
	prodSeq := *seq
	f.Retire(&RetireInfo{
		Rec:     inst(prodSeq, pc, isa.ZeroReg, isa.ZeroReg, isa.R(1)),
		Cluster: prodCluster,
	})
	*seq++
	f.Retire(&RetireInfo{
		Rec:                 inst(*seq, pc+4, isa.R(1), isa.ZeroReg, isa.R(2)),
		Cluster:             prodCluster,
		CritSrc:             CritRS1,
		CritForwarded:       true,
		CritProducerPC:      pc,
		CritProducerSeq:     prodSeq,
		CritProducerCluster: prodCluster,
		CritInterTrace:      interTrace,
	})
	*seq++
}

func TestChainLeaderAndFollowerCreation(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	var seq uint64
	// First occurrence designates the producer a leader; the consumer joins
	// as a follower on the second occurrence (staged growth per Table 4).
	fdrtRetire(f, &seq, 0x2000, true, 3)
	fdrtRetire(f, &seq, 0x2000, true, 3)
	f.Flush()
	// The designations are written into the installed trace line's slots.
	tr := lookup(tc, 0x2000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	prodProf := tr.Slots[0].Profile
	consProf := tr.Slots[1].Profile
	if prodProf.Role != trace.RoleLeader || prodProf.ChainCluster != 3 {
		t.Errorf("producer profile = %+v, want leader@3", prodProf)
	}
	if consProf.Role != trace.RoleFollower || consProf.ChainCluster != 3 {
		t.Errorf("consumer profile = %+v, want follower@3", consProf)
	}
	if f.S.LeadersCreated != 1 || f.S.FollowersCreated != 1 {
		t.Errorf("chain stats: leaders=%d followers=%d", f.S.LeadersCreated, f.S.FollowersCreated)
	}
	// Pending designations were consumed into the line.
	if f.Chains().Has(0x2000) || f.Chains().Has(0x2004) {
		t.Error("pending designations not consumed by trace construction")
	}
}

func TestIntraTraceDependenceDoesNotChain(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	var seq uint64
	fdrtRetire(f, &seq, 0x2000, false /* intra-trace */, 2)
	f.Flush()
	if f.Chains().Get(0x2000).IsMember() || f.Chains().Get(0x2004).IsMember() {
		t.Error("intra-trace dependence created a chain")
	}
}

func TestPinningKeepsChainCluster(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	var seq uint64
	fdrtRetire(f, &seq, 0x2000, true, 3)
	// Same instructions execute again on a different cluster while the
	// designation is still pending: pinning keeps cluster 3.
	fdrtRetire(f, &seq, 0x2000, true, 0)
	f.Flush()
	tr := lookup(tc, 0x2000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	if got := tr.Slots[0].Profile; got.Role != trace.RoleLeader || got.ChainCluster != 3 {
		t.Errorf("pinned leader profile = %+v, want leader@3", got)
	}
}

func TestNoPinningFollowsLatestCluster(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRTNoPin), tc)
	var seq uint64
	fdrtRetire(f, &seq, 0x2000, true, 3)
	fdrtRetire(f, &seq, 0x2000, true, 0)
	f.Flush()
	tr := lookup(tc, 0x2000)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	if got := tr.Slots[0].Profile; got.ChainCluster != 0 {
		t.Errorf("unpinned leader profile = %+v, want cluster 0", got)
	}
}

func TestChainBitsDecayWhenNotCarried(t *testing.T) {
	// An instruction whose trace-line bits were lost (icache fetch / line
	// eviction) and which receives no fresh designation loses membership in
	// the rebuilt line.
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	f.Retire(&RetireInfo{Rec: inst(0, 0x2100, isa.ZeroReg, isa.ZeroReg, isa.R(1))}) // no carried bits
	f.Flush()
	tr := lookup(tc, 0x2100)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	if tr.Slots[0].Profile.IsMember() {
		t.Error("membership survived without carried bits or pending designation")
	}
}

func TestCarriedBitsPropagateToNewLine(t *testing.T) {
	// An instruction fetched with chain bits keeps them in the rebuilt line.
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	prof := trace.Profile{Role: trace.RoleFollower, ChainCluster: 2}
	f.Retire(&RetireInfo{
		Rec:     inst(0, 0x2200, isa.ZeroReg, isa.ZeroReg, isa.R(1)),
		Profile: prof,
		FromTC:  true,
	})
	f.Flush()
	tr := lookup(tc, 0x2200)
	if tr == nil {
		t.Fatal("trace not installed")
	}
	if tr.Slots[0].Profile != prof {
		t.Errorf("carried profile %+v not propagated, got %+v", prof, tr.Slots[0].Profile)
	}
	if tr.Slots[0].Cluster != 2 {
		t.Errorf("chain member placed on cluster %d, want 2", tr.Slots[0].Cluster)
	}
}

func TestFDRTOptionBPlacesChainMemberOnChainCluster(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	cfg := testConfig(FDRT)
	f := NewFillUnit(cfg, tc)
	// Pre-establish a chain: pc 0x3000 is a follower pinned to cluster 2.
	f.Chains().Set(0x3000, trace.Profile{Role: trace.RoleFollower, ChainCluster: 2})
	f.Retire(&RetireInfo{Rec: inst(0, 0x3000, isa.ZeroReg, isa.ZeroReg, isa.R(1))})
	f.Flush()
	tr := lookup(tc, 0x3000)
	if tr == nil {
		t.Fatal("trace missing")
	}
	if tr.Slots[0].Cluster != 2 {
		t.Errorf("chain member placed on cluster %d, want 2", tr.Slots[0].Cluster)
	}
	if f.S.OptionB != 1 {
		t.Errorf("OptionB count = %d", f.S.OptionB)
	}
}

func TestFDRTOptionAPlacesConsumerWithProducer(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	// Producer (no deps, has consumer -> option D, middle cluster), consumer
	// with critical intra-trace dep -> option A, same cluster as producer.
	f.Retire(&RetireInfo{Rec: inst(0, 0x4000, isa.ZeroReg, isa.ZeroReg, isa.R(1))})
	f.Retire(&RetireInfo{
		Rec:             inst(1, 0x4004, isa.R(1), isa.ZeroReg, isa.R(2)),
		CritSrc:         CritRS1,
		CritForwarded:   true,
		CritProducerPC:  0x4000,
		CritProducerSeq: 0,
	})
	f.Flush()
	tr := lookup(tc, 0x4000)
	if tr == nil {
		t.Fatal("trace missing")
	}
	if tr.Slots[0].Cluster != tr.Slots[1].Cluster {
		t.Errorf("A-option pair split: %d vs %d", tr.Slots[0].Cluster, tr.Slots[1].Cluster)
	}
	if c := tr.Slots[0].Cluster; c != 1 && c != 2 {
		t.Errorf("D-option producer not in middle cluster: %d", c)
	}
	if f.S.OptionD != 1 || f.S.OptionA != 1 {
		t.Errorf("option counts: %+v", f.S)
	}
}

func TestFDRTOptionCAdaptivePrecedence(t *testing.T) {
	// Option C (chain member with an intra-trace producer) is arbitrated by
	// the observed critical input: an intra-trace critical input pulls the
	// instruction to its producer; an inter-trace one to its chain cluster.
	run := func(critProducerSeq uint64) *trace.Trace {
		tc := trace.NewCache(trace.DefaultConfig())
		f := NewFillUnit(testConfig(FDRT), tc)
		f.Chains().Set(0x5004, trace.Profile{Role: trace.RoleFollower, ChainCluster: 3})
		f.Retire(&RetireInfo{Rec: inst(0, 0x5000, isa.ZeroReg, isa.ZeroReg, isa.R(1))})
		f.Retire(&RetireInfo{
			Rec:             inst(1, 0x5004, isa.R(1), isa.ZeroReg, isa.R(2)),
			CritSrc:         CritRS1,
			CritForwarded:   true,
			CritProducerPC:  0x5000,
			CritProducerSeq: critProducerSeq,
		})
		f.Flush()
		if f.S.OptionC != 1 {
			t.Fatalf("OptionC = %d", f.S.OptionC)
		}
		return lookup(tc, 0x5000)
	}
	// Critical producer is instruction 0 of this trace (intra): follow it.
	tr := run(0)
	if tr.Slots[1].Cluster != tr.Slots[0].Cluster {
		t.Errorf("intra-critical option C split pair: %d vs %d",
			tr.Slots[1].Cluster, tr.Slots[0].Cluster)
	}
	// Critical producer is an out-of-trace instance (inter): follow chain.
	tr = run(999)
	if tr.Slots[1].Cluster != 3 {
		t.Errorf("inter-critical option C placed on %d, want chain cluster 3",
			tr.Slots[1].Cluster)
	}
}

func TestFDRTOptionEInstructionsFallBack(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	// Instruction with no deps, no consumers, no chain: option E.
	f.Retire(&RetireInfo{Rec: emu.Committed{Seq: 0, PC: 0x6000, Inst: isa.Inst{Op: isa.OUT, Ra: isa.R(9)}}})
	f.Flush()
	if f.S.OptionE != 1 {
		t.Errorf("OptionE = %d", f.S.OptionE)
	}
	tr := lookup(tc, 0x6000)
	if tr == nil || tr.Slots[0].Cluster < 0 || tr.Slots[0].Cluster > 3 {
		t.Fatal("option-E instruction not placed by fallback")
	}
}

func TestFDRTCapacityRespected(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	// 16 chain members all pinned to cluster 1: only 4 fit; 4 go to
	// neighbors; the rest are skipped then fall back.
	for i := 0; i < 16; i++ {
		pc := uint64(0x7000 + i*4)
		f.Chains().Set(pc, trace.Profile{Role: trace.RoleFollower, ChainCluster: 1})
		f.Retire(&RetireInfo{Rec: inst(uint64(i), pc, isa.ZeroReg, isa.ZeroReg, isa.R(1+i%8))})
	}
	tr := lookup(tc, 0x7000)
	if tr == nil {
		t.Fatal("trace missing")
	}
	counts := map[int]int{}
	for _, s := range tr.Slots {
		counts[s.Cluster]++
	}
	for c, n := range counts {
		if n > 4 {
			t.Errorf("cluster %d has %d instructions (capacity 4)", c, n)
		}
	}
	if counts[1] != 4 {
		t.Errorf("chain cluster 1 not filled: %d", counts[1])
	}
	if f.S.Skipped == 0 {
		t.Error("expected some skipped assignments")
	}
}

func TestMigrationStats(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(Base), tc)
	// Same 4 PCs twice: base assignment is deterministic, so no migration.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			f.Retire(&RetireInfo{Rec: inst(uint64(round*4+i), uint64(0x8000+i*4), isa.ZeroReg, isa.ZeroReg, isa.R(1+i))})
		}
		f.Flush()
	}
	if f.S.Seen != 4 || f.S.Migrated != 0 {
		t.Errorf("migration stats: %+v", f.S)
	}
	if f.S.MigrationRate() != 0 {
		t.Error("migration rate nonzero for stable assignment")
	}
}

func TestChainProfileEvictionBound(t *testing.T) {
	cp := NewChainProfile(8)
	for i := 0; i < 100; i++ {
		cp.Set(uint64(i*4), trace.Profile{Role: trace.RoleLeader, ChainCluster: 1})
	}
	if cp.Len() > 8 {
		t.Errorf("table grew to %d entries (cap 8)", cp.Len())
	}
	// The most recent entry must survive.
	if !cp.Get(99 * 4).IsMember() {
		t.Error("most recent entry evicted")
	}
	cp.Reset()
	if cp.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestChainProfileUpdateInPlace(t *testing.T) {
	cp := NewChainProfile(4)
	cp.Set(0x100, trace.Profile{Role: trace.RoleLeader, ChainCluster: 1})
	cp.Set(0x100, trace.Profile{Role: trace.RoleLeader, ChainCluster: 2})
	if cp.Len() != 1 || cp.Get(0x100).ChainCluster != 2 {
		t.Error("in-place update failed")
	}
}

func TestStrategyPredicates(t *testing.T) {
	if Base.ReordersAtRetire() || IssueTime.ReordersAtRetire() {
		t.Error("base/issue-time must not reorder")
	}
	if !Friendly.ReordersAtRetire() || !FDRT.ReordersAtRetire() {
		t.Error("retire-time strategies must reorder")
	}
	if !IssueTime.SteersAtIssue() || FDRT.SteersAtIssue() {
		t.Error("steering predicate wrong")
	}
	if !FDRT.UsesChains() || !FDRTNoPin.UsesChains() || Friendly.UsesChains() {
		t.Error("chain predicate wrong")
	}
	if !FDRT.Pins() || FDRTNoPin.Pins() {
		t.Error("pinning predicate wrong")
	}
	for k := Base; k <= FDRTNoPin; k++ {
		if k.String() == "unknown" {
			t.Errorf("strategy %d has no name", k)
		}
	}
}

// Property: every strategy produces a valid physical placement — injective
// slot indices, per-cluster occupancy within width — for random traces.
func TestAssignmentValidityQuick(t *testing.T) {
	strategies := []StrategyKind{Base, Friendly, FriendlyMiddle, FDRT, FDRTNoPin}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, k := range strategies {
			tc := trace.NewCache(trace.DefaultConfig())
			fu := NewFillUnit(testConfig(k), tc)
			n := 1 + r.Intn(16)
			for i := 0; i < n; i++ {
				pc := uint64(0x9000 + i*4)
				if r.Intn(3) == 0 {
					fu.Chains().Set(pc, trace.Profile{
						Role:         trace.RoleFollower,
						ChainCluster: uint8(r.Intn(4)),
					})
				}
				ra, rb := isa.ZeroReg, isa.ZeroReg
				if i > 0 && r.Intn(2) == 0 {
					ra = isa.R(1 + r.Intn(8))
				}
				info := RetireInfo{Rec: inst(uint64(i), pc, ra, rb, isa.R(1+r.Intn(8)))}
				if i > 0 && r.Intn(2) == 0 {
					info.CritSrc = CritRS1
					info.CritForwarded = true
					info.CritProducerSeq = uint64(r.Intn(i))
					info.CritProducerPC = uint64(0x9000 + int(info.CritProducerSeq)*4)
					info.CritInterTrace = r.Intn(3) == 0
					info.CritProducerCluster = r.Intn(4)
				}
				fu.Retire(&info)
			}
			fu.Flush()
			tr := lookup(tc, 0x9000)
			if tr == nil {
				return false
			}
			tr.CheckSlotIndices(16) // panics on corruption
			counts := map[int]int{}
			for _, s := range tr.Slots {
				if s.Cluster != s.SlotIndex/4 {
					return false
				}
				counts[s.Cluster]++
			}
			for _, c := range counts {
				if c > 4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFillStatsRates(t *testing.T) {
	s := FillStats{Seen: 10, Migrated: 3, ChainSeen: 4, ChainMigrated: 1}
	if s.MigrationRate() != 0.3 {
		t.Errorf("MigrationRate = %v", s.MigrationRate())
	}
	if s.ChainMigrationRate() != 0.25 {
		t.Errorf("ChainMigrationRate = %v", s.ChainMigrationRate())
	}
	var zero FillStats
	if zero.MigrationRate() != 0 || zero.ChainMigrationRate() != 0 {
		t.Error("zero-stat rates nonzero")
	}
}

func TestTraceProfilesRefreshedOnInstall(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	f.Chains().Set(0xA000, trace.Profile{Role: trace.RoleLeader, ChainCluster: 1})
	f.Retire(&RetireInfo{Rec: inst(0, 0xA000, isa.ZeroReg, isa.ZeroReg, isa.R(1))})
	f.Flush()
	tr := lookup(tc, 0xA000)
	if tr.Slots[0].Profile.Role != trace.RoleLeader {
		t.Error("installed trace does not carry chain profile")
	}
}

func ExampleStrategyKind_String() {
	fmt.Println(FDRT, Friendly, Base)
	// Output: fdrt friendly base
}
