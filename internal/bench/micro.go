package bench

// Component microbenchmarks recorded alongside the kernel throughput table:
// the functional emulator's per-instruction dispatch cost (predecoded vs.
// the original switch interpreter) and the fill unit's per-trace assignment
// cost (memo hit vs. full Table-5 walk). `ctcpbench -microbench` embeds the
// result in BENCH_pipeline.json — and in labeled history entries — so the
// predecode and memoization gains stay visible next to the end-to-end
// ns/cycle trajectory they feed.

import (
	"fmt"
	"testing"

	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

// MicroMetrics is the component-level measurement block.
type MicroMetrics struct {
	// Emulator per-instruction cost, predecoded dispatch vs. the generic
	// switch interpreter it replaced (same synthetic kernel).
	EmuNsPerInst        float64 `json:"emu_ns_per_inst"`
	EmuGenericNsPerInst float64 `json:"emu_generic_ns_per_inst"`
	// Fill unit per-trace cost through the public retire path: the same hot
	// line rebuilt unchanged (assignment memo hit) vs. a line whose code
	// changes every build (full assignment walk).
	AssignHitNsPerTrace  float64 `json:"assign_hit_ns_per_trace"`
	AssignMissNsPerTrace float64 `json:"assign_miss_ns_per_trace"`
}

// microKernel mirrors the instruction mix of internal/emu's BenchmarkStep
// kernel: ALU traffic over an induction variable, loads/stores walking a
// buffer, a compare+branch back-edge. count outer iterations, then HALT —
// callers pass a count far beyond any measurement horizon.
func microKernel(count int64) *isa.Program {
	base := isa.DefaultTextBase
	return &isa.Program{
		TextBase: base,
		DataBase: isa.DefaultDataBase,
		Entry:    base,
		Text: []isa.Inst{
			0: {Op: isa.MOVI, Rc: isa.R(1), Imm: count},
			1: {Op: isa.MOVI, Rc: isa.R(2), Imm: int64(isa.DefaultDataBase)},
			2: {Op: isa.MOVI, Rc: isa.R(3), Imm: 0},
			// loop:
			3:  {Op: isa.LDQ, Ra: isa.R(2), Imm: 0, Rc: isa.R(4)},
			4:  {Op: isa.ADD, Ra: isa.R(4), Rb: isa.R(1), Rc: isa.R(4)},
			5:  {Op: isa.XOR, Ra: isa.R(3), Rb: isa.R(4), Rc: isa.R(3)},
			6:  {Op: isa.SLL, Ra: isa.R(4), Imm: 3, UseImm: true, Rc: isa.R(5)},
			7:  {Op: isa.STQ, Ra: isa.R(2), Rb: isa.R(5), Imm: 8},
			8:  {Op: isa.AND, Ra: isa.R(5), Imm: 1023, UseImm: true, Rc: isa.R(6)},
			9:  {Op: isa.ADD, Ra: isa.R(2), Rb: isa.R(6), Rc: isa.R(2)},
			10: {Op: isa.CMPULT, Ra: isa.R(2), Imm: 1 << 20, UseImm: true, Rc: isa.R(7)},
			11: {Op: isa.BNE, Ra: isa.R(7), Imm: int64(base + 13*isa.PCStride)},
			12: {Op: isa.MOVI, Rc: isa.R(2), Imm: int64(isa.DefaultDataBase)},
			13: {Op: isa.SUB, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)},
			14: {Op: isa.BNE, Ra: isa.R(1), Imm: int64(base + 3*isa.PCStride)},
			15: {Op: isa.OUT, Ra: isa.R(3)},
			16: {Op: isa.HALT},
		},
	}
}

// measureStep times one interpreter path over the micro kernel, fastest of
// benchReps repetitions, in ns per instruction.
func measureStep(step func(*emu.Machine, *emu.Committed) error) (float64, error) {
	best := 0.0
	for rep := 0; rep < benchReps; rep++ {
		m := emu.New(microKernel(1 << 40)) // never halts within a run
		var c emu.Committed
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := step(m, &c); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return 0, failed
		}
		if r.N <= 0 {
			return 0, fmt.Errorf("bench: interpreter measurement made no progress")
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// assignTraceLen is the trace length the assignment measurement feeds: full
// lines, matching the default MaxLen.
const assignTraceLen = 16

// measureAssign times the fill unit's retire path per built trace under
// FDRT. With vary=false the same line is rebuilt unchanged every iteration
// (steady-state memo hits); with vary=true the line's code rotates through
// eight variants, so every build misses and runs the full walk.
func measureAssign(vary bool) (float64, error) {
	best := 0.0
	for rep := 0; rep < benchReps; rep++ {
		tc := trace.NewCache(trace.DefaultConfig())
		f := core.NewFillUnit(core.Config{
			Strategy: core.FDRT,
			Geom:     cluster.DefaultGeometry(),
			Trace:    trace.DefaultConfig(),
		}, tc)
		seq := uint64(0)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rcBase := 3
				if vary {
					rcBase = i % 8
				}
				for j := 0; j < assignTraceLen; j++ {
					f.Retire(&core.RetireInfo{Rec: emu.Committed{
						Seq: seq, PC: 0x1000 + uint64(j)*isa.PCStride,
						Inst: isa.Inst{Op: isa.ADD, Rc: isa.R(1 + (rcBase+j)%20)},
					}})
					seq++
				}
			}
		})
		if r.N <= 0 {
			return 0, fmt.Errorf("bench: assignment measurement made no progress")
		}
		hits, misses := f.MemoStats()
		if vary && hits > misses {
			return 0, fmt.Errorf("bench: miss measurement is hitting the memo (%d hits, %d misses)", hits, misses)
		}
		if !vary && misses > hits {
			return 0, fmt.Errorf("bench: hit measurement is missing the memo (%d hits, %d misses)", hits, misses)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// RunMicro measures the component microbenchmarks (fastest of benchReps
// repetitions each, like the kernel table).
func RunMicro() (*MicroMetrics, error) {
	var m MicroMetrics
	var err error
	if m.EmuNsPerInst, err = measureStep((*emu.Machine).StepInto); err != nil {
		return nil, err
	}
	if m.EmuGenericNsPerInst, err = measureStep((*emu.Machine).StepGeneric); err != nil {
		return nil, err
	}
	if m.AssignHitNsPerTrace, err = measureAssign(false); err != nil {
		return nil, err
	}
	if m.AssignMissNsPerTrace, err = measureAssign(true); err != nil {
		return nil, err
	}
	m.EmuNsPerInst = round1(m.EmuNsPerInst)
	m.EmuGenericNsPerInst = round1(m.EmuGenericNsPerInst)
	m.AssignHitNsPerTrace = round1(m.AssignHitNsPerTrace)
	m.AssignMissNsPerTrace = round1(m.AssignMissNsPerTrace)
	return &m, nil
}
