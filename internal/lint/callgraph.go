package lint

// A module-local call graph over every loaded package, plus the two
// transitive properties the concurrency analyzers need from it:
//
//   - blockingFuncs: can calling this function block the caller (file or
//     network I/O, channel operations, time.Sleep, sync.WaitGroup.Wait), and
//     if so, through which witness chain?
//   - joinFuncs: does this function's body reach a goroutine-lifecycle
//     signal (a channel receive/select, a WaitGroup Done/Wait, a Cond.Wait)?
//
// Resolution is static: plain function calls and method calls that
// type-check to a concrete *types.Func. Calls through function values and
// through module-defined interfaces are not resolved and are treated as
// non-blocking — a documented soundness gap that matches the existing
// analyzers' static-call discipline (hotalloc, snapcomplete). Stdlib
// interface methods (e.g. net/http.ResponseWriter.Write) do resolve to a
// *types.Func and are classified by their package's blocking table.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cgFunc is one module function declaration in the call graph.
type cgFunc struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

type callGraph struct {
	decls map[*types.Func]*cgFunc
	order []*cgFunc // deterministic: package path, then declaration order
}

// buildCallGraph indexes every function/method declaration in the packages.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{decls: map[*types.Func]*cgFunc{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgFunc{fn: fn, decl: fd, pkg: pkg}
				cg.decls[fn] = n
				cg.order = append(cg.order, n)
			}
		}
	}
	return cg
}

// resolveCallee statically resolves a call expression to the function object
// it invokes, or nil for dynamic calls (function values, closures) and
// non-function "calls" (conversions, builtins).
func resolveCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// blockCause is the witness for "this operation (or function) can block":
// the terminal reason plus, for transitive causes, the immediate callee the
// blocking behaviour was inherited from.
type blockCause struct {
	root string // terminal op, e.g. "os.OpenFile", "channel send", "time.Sleep"
	via  string // immediate module callee ("" when the cause is direct)
	pos  token.Pos
}

func (c *blockCause) describe() string {
	if c.via == "" {
		return c.root
	}
	return "call to " + c.via + " (reaches " + c.root + ")"
}

// blockingStdlibPkgs are the stdlib packages whose calls are assumed to
// perform file/network I/O or otherwise block.
var blockingStdlibPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"os/exec":  true,
	"syscall":  true,
}

// osNonBlocking are package-level os functions that only touch the process
// environment, not the filesystem.
var osNonBlocking = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Exit": true, "Getpid": true, "Getppid": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true,
	"IsTimeout": true, "IsPathSeparator": true,
}

// httpNonBlocking are net/http methods that only touch in-memory request
// state, keyed by "Recv.Name": header-map accessors and the routing/context
// getters. Everything else in net/http (ResponseWriter.Write, WriteHeader,
// Flusher.Flush, Client.Do, Request.FormValue — which can read the body —
// ...) stays classified as I/O.
var httpNonBlocking = map[string]bool{
	"Header.Get": true, "Header.Set": true, "Header.Add": true,
	"Header.Del": true, "Header.Values": true, "Header.Clone": true,
	"Request.PathValue": true, "Request.SetPathValue": true,
	"Request.Context": true, "Request.UserAgent": true, "Request.Referer": true,
}

// stdlibBlockCause classifies a resolved non-module callee.
func stdlibBlockCause(fn *types.Func, pos token.Pos) *blockCause {
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if path == "net/http" && isMethod {
		if recv := recvNamed(sig.Recv().Type()); recv != nil {
			if httpNonBlocking[recv.Obj().Name()+"."+fn.Name()] {
				return nil
			}
		}
	}
	switch path {
	case "time":
		if !isMethod && fn.Name() == "Sleep" {
			return &blockCause{root: "time.Sleep", pos: pos}
		}
		return nil
	case "sync":
		if !isMethod {
			return nil
		}
		recv := recvNamed(sig.Recv().Type())
		if recv == nil {
			return nil
		}
		// WaitGroup.Wait blocks; Cond.Wait releases the mutex while parked,
		// so the condition-variable idiom (nextJob's cond loop) is exempt.
		if recv.Obj().Name() == "WaitGroup" && fn.Name() == "Wait" {
			return &blockCause{root: "sync.WaitGroup.Wait", pos: pos}
		}
		return nil
	}
	if blockingStdlibPkgs[path] {
		if path == "os" && !isMethod && osNonBlocking[fn.Name()] {
			return nil
		}
		return &blockCause{root: fn.FullName(), pos: pos}
	}
	return nil
}

// displayFunc renders a module function for diagnostics, without the noisy
// module prefix.
func displayFunc(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "ctcp/", "")
}

// selectComms collects the comm statements of every select in the body, so
// scanners can attribute clause comms to the select header instead of
// double-reporting them as bare sends/receives.
func selectComms(body *ast.BlockStmt) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc := clause.(*ast.CommClause); cc.Comm != nil {
				comms[cc.Comm] = true
			}
		}
		return true
	})
	return comms
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// blockScanner finds the first blocking operation in a subtree. It never
// descends into nested function literals (defining a closure does not run
// it), go statements (the spawned goroutine blocks, not the caller), or
// defer statements (deferred work runs at return — a documented granularity
// limit shared with the lock-region analysis).
type blockScanner struct {
	pkg   *Package
	comms map[ast.Node]bool
	// call classifies a resolved call; installed by the caller so the
	// module-transitive behaviour (and coldlock handling) stays theirs.
	call func(call *ast.CallExpr, fn *types.Func) *blockCause
}

// scan walks a full subtree (function body or plain statement).
func (bs *blockScanner) scan(root ast.Node) *blockCause {
	var found *blockCause
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found = &blockCause{root: "select without a default clause", pos: n.Pos()}
				return false
			}
			return true
		case *ast.SendStmt:
			if bs.comms[n] {
				return false // the enclosing select header owns this comm
			}
			found = &blockCause{root: "channel send", pos: n.Pos()}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = &blockCause{root: "channel receive", pos: n.Pos()}
				return false
			}
		case *ast.RangeStmt:
			if t := bs.pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = &blockCause{root: "range over channel", pos: n.Range}
					return false
				}
			}
			return true
		case *ast.AssignStmt, *ast.ExprStmt:
			if bs.comms[n] {
				return false
			}
		case *ast.CallExpr:
			if fn := resolveCallee(bs.pkg, n); fn != nil {
				if c := bs.call(n, fn); c != nil {
					found = c
					return false
				}
			}
		}
		return true
	})
	return found
}

// scanHeader scans a CFG node: header-only for range and select nodes (their
// bodies live in successor blocks), full subtree otherwise.
func (bs *blockScanner) scanHeader(n ast.Node) *blockCause {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if t := bs.pkg.Info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return &blockCause{root: "range over channel", pos: n.Range}
			}
		}
		return bs.scan(n.X)
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			return &blockCause{root: "select without a default clause", pos: n.Pos()}
		}
		return nil
	default:
		return bs.scan(n)
	}
}

// blockingFuncs computes, for every module function, whether calling it can
// block, with a witness chain. Functions in coldOK are treated as
// non-blocking at their call sites (the //ctcp:coldlock escape hatch);
// pass nil to analyze without the hatch.
func (cg *callGraph) blockingFuncs(coldOK map[*types.Func]bool) map[*types.Func]*blockCause {
	result := map[*types.Func]*blockCause{}
	for changed := true; changed; {
		changed = false
		for _, f := range cg.order {
			if result[f.fn] != nil {
				continue
			}
			bs := &blockScanner{
				pkg:   f.pkg,
				comms: selectComms(f.decl.Body),
				call: func(call *ast.CallExpr, fn *types.Func) *blockCause {
					if coldOK[fn] {
						return nil
					}
					if _, isModule := cg.decls[fn]; isModule {
						if c := result[fn]; c != nil {
							return &blockCause{root: c.root, via: displayFunc(fn), pos: call.Pos()}
						}
						return nil
					}
					return stdlibBlockCause(fn, call.Pos())
				},
			}
			if c := bs.scan(f.decl.Body); c != nil {
				result[f.fn] = c
				changed = true
			}
		}
	}
	return result
}

// joinFuncs computes, for every module function, whether its body
// (transitively, through static module calls) reaches a goroutine-lifecycle
// signal: a channel receive, a select, a range over a channel, a
// WaitGroup Done/Wait, or a Cond.Wait. goroleak accepts a goroutine whose
// body reaches one of these.
func (cg *callGraph) joinFuncs() map[*types.Func]bool {
	result := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, f := range cg.order {
			if result[f.fn] {
				continue
			}
			if cg.bodyJoins(f.pkg, f.decl.Body, result) {
				result[f.fn] = true
				changed = true
			}
		}
	}
	return result
}

// bodyJoins reports whether the subtree contains a lifecycle signal. Unlike
// blockScanner it descends into defers (defer wg.Done() is the canonical
// join) and into nested function literals, but not into nested go
// statements: an inner goroutine's signals do not tie the outer one.
func (cg *callGraph) bodyJoins(pkg *Package, root ast.Node, known map[*types.Func]bool) bool {
	joins := false
	ast.Inspect(root, func(n ast.Node) bool {
		if joins || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			joins = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joins = true
				return false
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joins = true
					return false
				}
			}
		case *ast.CallExpr:
			fn := resolveCallee(pkg, n)
			if fn == nil {
				return true
			}
			if known[fn] {
				joins = true
				return false
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					recv := recvNamed(sig.Recv().Type())
					name := fn.Name()
					if recv != nil &&
						((recv.Obj().Name() == "WaitGroup" && (name == "Done" || name == "Wait")) ||
							(recv.Obj().Name() == "Cond" && name == "Wait")) {
						joins = true
						return false
					}
				}
			}
		}
		return true
	})
	return joins
}
