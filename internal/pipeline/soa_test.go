package pipeline

// Tests for the struct-of-arrays inflight store: generation-checked id
// recycling, the incremental bitmask wakeup against the per-entry readiness
// recompute the pooled build performed, and checkpoint-format compatibility
// with a snapshot written by the pooled-record build.

import (
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

// TestStaleInfIDPanicsInvariantError: releasing a slot bumps its generation,
// so a reference created before the release must fail the generation check
// with *core.InvariantError (not a silent read of the slot's next tenant).
func TestStaleInfIDPanicsInvariantError(t *testing.T) {
	var st infStore
	idx := st.alloc()
	id := st.id(idx)
	st.release(idx)

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("index(stale id) did not panic")
		}
		ie, ok := rec.(*core.InvariantError)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *core.InvariantError", rec, rec)
		}
		if ie.Msg == "" {
			t.Fatal("InvariantError carries no message")
		}
	}()
	st.index(id)
}

// TestInfIDSlotReuse: the free list hands the same slot back, but under a
// new generation — the old id is dead, the new one resolves.
func TestInfIDSlotReuse(t *testing.T) {
	var st infStore
	a := st.alloc()
	idA := st.id(a)
	st.release(a)

	b := st.alloc()
	if b != a {
		t.Fatalf("free list did not recycle the slot: got %d, want %d", b, a)
	}
	idB := st.id(b)
	if idA == idB {
		t.Fatal("recycled slot produced an identical id (generation not bumped)")
	}
	if got := st.index(idB); got != b {
		t.Fatalf("fresh id resolved to slot %d, want %d", got, b)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stale id resolved after its slot was recycled")
			}
		}()
		st.index(idA)
	}()
}

// TestStaleInfIDRecoveredAsSimError: the run boundary (RunProgramErr, which
// the experiment runner and ctcpbench use) converts an InvariantError panic
// anywhere inside the model into a *SimError instead of crashing the sweep.
// The panic is provoked through a real invariant breach — a geometry with
// no clusters gives steering no valid target — because a stale id cannot be
// injected from outside the model; TestStaleInfIDPanicsInvariantError above
// pins the panic type the id check raises, and this test pins the recovery.
func TestStaleInfIDRecoveredAsSimError(t *testing.T) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip kernel missing")
	}
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	cfg.MaxInsts = 2000
	cfg.Geom.Clusters = 0
	stats, err := RunProgramErr(bm.ProgramFor(2000), cfg)
	if err == nil {
		t.Fatal("pathological configuration did not abort")
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("run boundary returned %T (%v), want *SimError", err, err)
	}
	if stats != nil {
		t.Fatal("aborted run returned non-nil stats")
	}
}

// readinessRef recomputes an RS entry's ready cycle from first principles —
// the formula the pooled build's per-entry readiness() evaluated on every
// scan: each register input arrives either from the register file (rfReady)
// or from its in-flight producer (resultAt + forward latency), and the
// entry is ready when the last input lands. It mirrors resolve() without
// touching any of resolve's outputs.
func readinessRef(p *Pipeline, idx uint32) int64 {
	st := &p.st
	var t [2]int64
	var fwd [2]bool
	src := st.src[idx]
	present := [2]bool{src[0] != isa.NoReg, src[1] != isa.NoReg}
	for k := 0; k < 2; k++ {
		if !present[k] {
			continue
		}
		pid := st.prod[idx][k]
		if pid == noID {
			t[k] = st.rfReady[idx]
			continue
		}
		pi := st.index(pid)
		t[k] = st.resultAt[pi] + p.effFwd(pi, idx)
		fwd[k] = true
	}
	ready := maxI64(t[0], t[1])
	if p.cfg.ZeroCritFwdLat {
		crit := -1
		switch {
		case present[0] && present[1]:
			if t[1] > t[0] {
				crit = 1
			} else {
				crit = 0
			}
		case present[0]:
			crit = 0
		case present[1]:
			crit = 1
		}
		if crit >= 0 && fwd[crit] {
			other := t[1-crit]
			if !present[1-crit] {
				other = 0
			}
			ready = maxI64(other, st.resultAt[st.index(st.prod[idx][crit])])
		}
	}
	return ready
}

// TestWakeupMatchesReadinessRecompute steps gzip cycle by cycle and
// cross-checks the incremental wakeup machinery against the per-entry
// recompute on the recorded scheduling trace:
//
//	(a) a live RS entry's ready-mask bit is set iff the entry is resolved
//	    AND its ready cycle has arrived (unready entries park in the ready
//	    heap with no mask bit, marked fResolved without fReady),
//	(b) the moment an entry resolves, its readyAt equals the reference
//	    recomputation from its producers' resultAt and the RF time,
//	(c) nothing issues before the cycle it was declared ready for.
func TestWakeupMatchesReadinessRecompute(t *testing.T) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip kernel missing")
	}
	const insts = 8_000
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	cfg.MaxInsts = insts
	p := New(&emu.LimitStream{S: emu.New(bm.ProgramFor(insts)), Budget: insts}, cfg)

	st := &p.st
	pendingReady := map[infID]int64{} // resolved but not yet issued
	checked := 0
	for !p.done() {
		cyc := p.now
		worked := p.cycle()

		// (c) entries that issued this cycle were due: issue clears them out
		// of the RS, so detect the flag transition on still-live slots.
		for id, ready := range pendingReady {
			idx := uint32(id)
			if idx >= uint32(len(st.gen)) || st.gen[idx] != uint32(id>>32) {
				delete(pendingReady, id) // retired and recycled
				continue
			}
			if st.flags[idx]&fIssued != 0 {
				if cyc < ready {
					t.Fatalf("cycle %d: slot %d issued before its ready cycle %d", cyc, idx, ready)
				}
				delete(pendingReady, id)
			}
		}

		for c := range p.rsEntries {
			for pos, id := range p.rsEntries[c] {
				if id == noID {
					continue
				}
				idx := uint32(id)
				bit := p.readyMask[c][pos>>6]&(1<<uint(pos&63)) != 0
				resolved := st.flags[idx]&fResolved != 0
				ready := st.flags[idx]&fReady != 0
				if bit != ready {
					t.Fatalf("cycle %d: cluster %d slot %d mask bit %v but fReady %v",
						cyc, c, idx, bit, ready)
				}
				if ready && !resolved {
					t.Fatalf("cycle %d: cluster %d slot %d fReady without fResolved", cyc, c, idx)
				}
				if !bit && resolved && st.readyAt[idx] <= cyc {
					t.Fatalf("cycle %d: cluster %d slot %d due (readyAt %d) but not mask-set",
						cyc, c, idx, st.readyAt[idx])
				}
				if !resolved {
					continue
				}
				if _, seen := pendingReady[id]; seen {
					continue
				}
				// Newly resolved this cycle: the producers it waited on issued
				// at the latest this cycle and cannot have been recycled yet,
				// so the reference recompute sees exactly what resolve() saw.
				if want := readinessRef(p, idx); want != st.readyAt[idx] {
					t.Fatalf("cycle %d: slot %d readyAt %d, reference readiness %d",
						cyc, idx, st.readyAt[idx], want)
				}
				pendingReady[id] = st.readyAt[idx]
				checked++
			}
		}

		if worked {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
	}
	if checked < 1_000 {
		t.Fatalf("cross-checked only %d resolutions; trace too short to be meaningful", checked)
	}
}

// TestPooledCheckpointCompat restores a checkpoint written by the
// pooled-record build (testdata/pooled_v0.ckpt: mcf, 12000-instruction
// budget, FDRT, paused at the RunTo(6000) drained boundary) into the SoA
// pipeline and finishes the run. Snapshots are only legal at drained
// boundaries where no instruction is in flight, so the inflight
// representation is invisible to the format — the restored run must produce
// exactly the stats the pooled build recorded.
func TestPooledCheckpointCompat(t *testing.T) {
	data, err := os.ReadFile("testdata/pooled_v0.ckpt")
	if err != nil {
		t.Fatalf("reading pooled-build checkpoint: %v", err)
	}
	wantBuf, err := os.ReadFile("testdata/pooled_v0_stats.json")
	if err != nil {
		t.Fatalf("reading pooled-build stats: %v", err)
	}
	var want Stats
	if err := json.Unmarshal(wantBuf, &want); err != nil {
		t.Fatalf("parsing pooled-build stats: %v", err)
	}

	const budget = 12_000
	bm, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf kernel missing")
	}
	m := emu.New(bm.ProgramFor(budget))
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	p := New(&emu.LimitStream{S: m, Budget: budget}, cfg)

	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	p.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := p.Consumed(); got != budget/2 {
		t.Fatalf("restored pipeline consumed %d, want %d", got, budget/2)
	}

	p.RunTo(0)
	got := p.Finish()
	if !reflect.DeepEqual(&want, got) {
		wj, _ := json.Marshal(&want)
		gj, _ := json.Marshal(got)
		t.Errorf("SoA continuation diverged from the pooled build\n pooled %s\n soa    %s", wj, gj)
	}
	const wantMem = uint64(0x22269e311e57baec)
	if sum := m.Mem.Checksum(); sum != wantMem {
		t.Errorf("final memory checksum %#x, want %#x", sum, wantMem)
	}
}
