// Fixture for the nondet analyzer: wall-clock reads, ambient randomness and
// goroutine spawns are banned; seeded generators and their methods are fine.
package fixture

import (
	"math/rand"
	"time"
)

func clock() int64 {
	t := time.Now() // want:nondet
	_ = time.Duration(3) * time.Second
	return t.Unix()
}

func ambient() int {
	return rand.Int() // want:nondet
}

func seeded() int {
	r := rand.New(rand.NewSource(1)) // constructors build a seeded generator
	return r.Intn(4)                 // methods on *rand.Rand are fine
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want:nondet
}

func suppressed() int64 {
	//ctcp:lint-ok nondet -- diagnostic timestamp, not simulation state
	return time.Now().UnixNano()
}
