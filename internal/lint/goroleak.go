package lint

// goroleak: every goroutine launched in a long-lived component must be tied
// to shutdown or drain. A `go` statement in the service tier passes if the
// spawned body (or, for `go fn(...)` on a module function, fn's body,
// transitively) contains a join signal:
//
//   - a select statement (the done/interrupt-channel idiom — any select in a
//     spawned body here is a lifecycle select),
//   - a channel receive or a range over a channel (drains until close),
//   - sync.WaitGroup.Done or .Wait (joined by a waiter),
//   - sync.Cond.Wait (parked under a condition the owner broadcasts on exit).
//
// A goroutine with none of these can outlive Shutdown: it keeps a reference
// to the server or runner alive, races teardown under -race, and — in the
// journal/drain design — can write after the successor process has replayed.
// Dynamic launches (`go f()` where f is a parameter or field) cannot be
// analyzed and are reported too; restructure to a literal or a named module
// function, or suppress with an explanatory //ctcp:lint-ok.

import (
	"go/ast"
)

var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutine in a long-lived component with no done-channel select or WaitGroup join",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath, "internal/serve", "internal/experiment", "internal/sample")
	},
	RunModule: runGoroLeak,
}

func runGoroLeak(mp *ModulePass) {
	cg := buildCallGraph(mp.Pkgs)
	joins := cg.joinFuncs()

	for _, f := range cg.order {
		if !mp.Analyzer.Match(f.pkg.Path) {
			continue
		}
		pkg := f.pkg
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if !cg.bodyJoins(pkg, fun.Body, joins) {
					mp.Reportf(pkg, g.Pos(), "goroutine has no join signal (select on done channel, channel receive, or WaitGroup); tie it to shutdown/drain")
				}
				return true // a nested go inside the literal is its own launch; keep walking
			default:
				if callee := resolveCallee(pkg, g.Call); callee != nil {
					if _, inModule := cg.decls[callee]; inModule {
						if !joins[callee] {
							mp.Reportf(pkg, g.Pos(), "goroutine running %s has no join signal (select on done channel, channel receive, or WaitGroup); tie it to shutdown/drain", displayFunc(callee))
						}
						return true
					}
					// Stdlib/external target: can't see the body.
					mp.Reportf(pkg, g.Pos(), "goroutine target %s is outside the module; cannot verify it joins shutdown — wrap it in a literal with a done-select or WaitGroup", displayFunc(callee))
					return true
				}
				mp.Reportf(pkg, g.Pos(), "goroutine target is dynamic (function value); cannot verify it joins shutdown — launch a literal with a done-select or WaitGroup instead")
				return true
			}
		})
	}
}
