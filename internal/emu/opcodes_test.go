package emu

import (
	"math"
	"testing"

	"ctcp/internal/isa"
)

// opCase runs a tiny program that materializes two operands, applies one
// instruction, and checks the destination register.
type opCase struct {
	name string
	op   isa.Op
	a, b int64
	want uint64
}

func TestIntegerOperateSemantics(t *testing.T) {
	cases := []opCase{
		{"add", isa.ADD, 5, 7, 12},
		{"add-neg", isa.ADD, -5, 3, ^uint64(1)},
		{"sub", isa.SUB, 5, 7, ^uint64(1)},
		{"and", isa.AND, 0xF0F0, 0xFF00, 0xF000},
		{"or", isa.OR, 0xF0F0, 0x0F0F, 0xFFFF},
		{"xor", isa.XOR, 0xFF, 0x0F, 0xF0},
		{"andnot", isa.ANDNOT, 0xFF, 0x0F, 0xF0},
		{"sll", isa.SLL, 1, 12, 4096},
		{"srl", isa.SRL, 4096, 12, 1},
		{"srl-neg", isa.SRL, -1, 60, 0xF},
		{"sra-neg", isa.SRA, -16, 2, ^uint64(3)},
		{"cmpeq-t", isa.CMPEQ, 9, 9, 1},
		{"cmpeq-f", isa.CMPEQ, 9, 8, 0},
		{"cmplt-signed", isa.CMPLT, -1, 0, 1},
		{"cmple", isa.CMPLE, 4, 4, 1},
		{"cmpult-unsigned", isa.CMPULT, -1, 0, 0}, // -1 is max uint64
		{"cmpule", isa.CMPULE, 3, 3, 1},
		{"mul", isa.MUL, -3, 7, ^uint64(20)},
		{"div", isa.DIV, -21, 7, ^uint64(2)},
		{"rem", isa.REM, 22, 7, 1},
		{"rem-neg", isa.REM, -22, 7, ^uint64(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := run(t, prog(nil,
				isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: c.a},
				isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: c.b},
				isa.Inst{Op: c.op, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)},
				isa.Inst{Op: isa.HALT},
			))
			if got := m.Regs[isa.R(3)]; got != c.want {
				t.Errorf("%v(%d,%d) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
			}
		})
	}
}

func TestSignExtensions(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 0x1FF},
		isa.Inst{Op: isa.SEXTB, Ra: isa.R(1), Rc: isa.R(2)},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(3), Imm: 0x18000},
		isa.Inst{Op: isa.SEXTW, Ra: isa.R(3), Rc: isa.R(4)},
		isa.Inst{Op: isa.HALT},
	))
	if int64(m.Regs[isa.R(2)]) != -1 {
		t.Errorf("sextb(0x1FF) = %d", int64(m.Regs[isa.R(2)]))
	}
	if int64(m.Regs[isa.R(4)]) != -32768 {
		t.Errorf("sextw(0x18000) = %d", int64(m.Regs[isa.R(4)]))
	}
}

func TestBranchConditionMatrix(t *testing.T) {
	cases := []struct {
		op    isa.Op
		v     int64
		taken bool
	}{
		{isa.BEQ, 0, true}, {isa.BEQ, 1, false},
		{isa.BNE, 0, false}, {isa.BNE, -1, true},
		{isa.BLT, -1, true}, {isa.BLT, 0, false},
		{isa.BLE, 0, true}, {isa.BLE, 1, false},
		{isa.BGT, 1, true}, {isa.BGT, 0, false},
		{isa.BGE, 0, true}, {isa.BGE, -1, false},
	}
	for _, c := range cases {
		m := New(prog(nil,
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: c.v},
			isa.Inst{Op: c.op, Ra: isa.R(1), Imm: int64(isa.DefaultTextBase + 16), UseImm: true},
			isa.Inst{Op: isa.HALT},
			isa.Inst{Op: isa.NOP},
			isa.Inst{Op: isa.HALT},
		))
		m.Step()
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Taken != c.taken {
			t.Errorf("%v(%d): taken=%v, want %v", c.op, c.v, rec.Taken, c.taken)
		}
	}
}

func TestFPArithmetic(t *testing.T) {
	// f1=7.0 f2=2.0; check sub/div and compares.
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 7},
		isa.Inst{Op: isa.CVTQT, Ra: isa.R(1), Rc: isa.F(1)},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 2},
		isa.Inst{Op: isa.CVTQT, Ra: isa.R(2), Rc: isa.F(2)},
		isa.Inst{Op: isa.SUBT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(3)},
		isa.Inst{Op: isa.DIVT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(4)},
		isa.Inst{Op: isa.CMPTEQ, Ra: isa.F(1), Rb: isa.F(1), Rc: isa.F(5)},
		isa.Inst{Op: isa.CMPTLE, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(6)},
		isa.Inst{Op: isa.HALT},
	))
	if got := math.Float64frombits(m.Regs[isa.F(3)]); got != 5.0 {
		t.Errorf("subt = %v", got)
	}
	if got := math.Float64frombits(m.Regs[isa.F(4)]); got != 3.5 {
		t.Errorf("divt = %v", got)
	}
	if got := math.Float64frombits(m.Regs[isa.F(5)]); got != 2.0 {
		t.Errorf("cmpteq true = %v", got)
	}
	if got := math.Float64frombits(m.Regs[isa.F(6)]); got != 0.0 {
		t.Errorf("cmptle false = %v", got)
	}
}

func TestBitMoves(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 0x3FF},
		isa.Inst{Op: isa.ITOF, Ra: isa.R(1), Rc: isa.F(1)},
		isa.Inst{Op: isa.FTOI, Ra: isa.F(1), Rc: isa.R(2)},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.R(2)] != 0x3FF {
		t.Errorf("itof/ftoi roundtrip = %#x", m.Regs[isa.R(2)])
	}
	if m.Regs[isa.F(1)] != 0x3FF {
		t.Errorf("itof stored %#x", m.Regs[isa.F(1)])
	}
}

func TestBRWithLink(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.BR, Rc: isa.RA, Imm: int64(isa.DefaultTextBase + 8), UseImm: true},
		isa.Inst{Op: isa.NOP}, // skipped
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.RA] != uint64(isa.DefaultTextBase+4) {
		t.Errorf("br link = %#x", m.Regs[isa.RA])
	}
}

func TestCVTTQTruncates(t *testing.T) {
	// 7/2 = 3.5 truncates toward zero -> 3.
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 7},
		isa.Inst{Op: isa.CVTQT, Ra: isa.R(1), Rc: isa.F(1)},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 2},
		isa.Inst{Op: isa.CVTQT, Ra: isa.R(2), Rc: isa.F(2)},
		isa.Inst{Op: isa.DIVT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(3)},
		isa.Inst{Op: isa.CVTTQ, Ra: isa.F(3), Rc: isa.R(3)},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.R(3)] != 3 {
		t.Errorf("cvttq(3.5) = %d", m.Regs[isa.R(3)])
	}
}

func TestImmediateForms(t *testing.T) {
	// Every binary integer op accepts an immediate second operand.
	ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.ANDNOT,
		isa.SLL, isa.SRL, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLE,
		isa.CMPULT, isa.CMPULE, isa.MUL, isa.DIV, isa.REM}
	for _, op := range ops {
		m := run(t, prog(nil,
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 13},
			isa.Inst{Op: op, Ra: isa.R(1), Imm: 3, UseImm: true, Rc: isa.R(2)},
			isa.Inst{Op: isa.HALT},
		))
		_ = m.Regs[isa.R(2)] // value checked per-op above; here: must not fault
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	m := run(t, prog(nil, isa.Inst{Op: isa.HALT}))
	if _, err := m.Step(); err == nil {
		t.Error("Step after halt did not error")
	}
}
