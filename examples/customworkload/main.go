// customworkload shows how to build a new benchmark with the program
// builder API — a string-search kernel over synthetic text — and measure how
// sensitive it is to inter-cluster forwarding latency.
package main

import (
	"fmt"
	"log"

	"ctcp"
	"ctcp/internal/isa"
)

func buildProgram() *ctcp.Program {
	b := ctcp.NewProgramBuilder()

	// Data: a haystack of pseudo-text and a 4-byte needle.
	hay := make([]byte, 16384)
	state := uint64(0x12345)
	for i := range hay {
		state = state*6364136223846793005 + 1442695040888963407
		hay[i] = 'a' + byte(state>>58)%20
	}
	copy(hay[9000:], "deed")
	b.Bytes("hay", hay)
	b.Bytes("needle", []byte("deed"))

	// Search loop with a running rolling hash: the hash is a serial
	// multiply-accumulate chain through every loaded window, which makes the
	// kernel sensitive to data-forwarding latency (the property the paper's
	// six selected benchmarks were chosen for).
	b.MoviAddr(isa.R(1), "hay")
	b.Movi(isa.R(2), int64(len(hay)-4)) // positions to test
	b.MoviAddr(isa.R(3), "needle")
	b.Load(isa.LDL, isa.R(4), isa.R(3), 0) // needle word (4 bytes)
	b.Movi(isa.R(6), 0)                    // match count
	b.Movi(isa.R(10), 1)                   // rolling hash
	b.Label("loop")
	b.Load(isa.LDL, isa.R(5), isa.R(1), 0)
	b.Op3(isa.XOR, isa.R(10), isa.R(5), isa.R(10))
	b.OpI(isa.MUL, isa.R(10), 16777619, isa.R(10))
	b.Op3(isa.SUB, isa.R(5), isa.R(4), isa.R(7))
	b.Branch(isa.BNE, isa.R(7), "next")
	b.OpI(isa.ADD, isa.R(6), 1, isa.R(6))
	b.Label("next")
	b.OpI(isa.ADD, isa.R(1), 1, isa.R(1))
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Op3(isa.AND, isa.R(10), isa.ZeroReg, isa.R(11)) // keep hash live
	b.Out(isa.R(6))
	b.Out(isa.R(10))
	b.Halt()

	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	p := buildProgram()

	// Functional check first: the needle appears exactly once.
	m := ctcp.NewMachine(p)
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional: %d match(es), stream hash %#x, %d instructions\n\n",
		m.OutValues[0], m.OutValues[1], m.InstCount())

	// Forwarding-latency sensitivity sweep. A workload is a candidate for
	// cluster-assignment optimization only if its critical chains actually
	// cross clusters (the paper selected its six benchmarks this way); the
	// intra-cluster share printed below tells you whether hop latency can
	// matter at all for this kernel.
	fmt.Println("hop latency   base cycles   intra-fwd   FDRT cycles   FDRT speedup")
	for _, hop := range []int{1, 2, 4} {
		base := ctcp.DefaultConfig()
		base.Geom.HopLat = hop
		b := ctcp.RunProgram(p, base)
		cfg := base.WithStrategy(ctcp.FDRT, false)
		s := ctcp.RunProgram(p, cfg)
		fmt.Printf("%8d      %10d   %8.1f%%   %10d   %10.3f\n",
			hop, b.Cycles, 100*b.IntraClusterFrac(), s.Cycles,
			float64(b.Cycles)/float64(s.Cycles))
	}
	fmt.Println("\n(a flat column means this kernel's critical chain already stays")
	fmt.Println(" inside one cluster — compare examples/strategycompare on twolf)")
}
