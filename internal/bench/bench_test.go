package bench

import (
	"encoding/json"
	"testing"
)

func TestRunProducesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run")
	}
	rep, err := Run(2_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kernels {
		m, ok := rep.Kernels[k]
		if !ok {
			t.Fatalf("kernel %s missing from report", k)
		}
		if m.Iterations <= 0 || m.NsPerOp <= 0 || m.NsPerCycle <= 0 || m.CyclesPerSec <= 0 {
			t.Errorf("%s: degenerate metrics %+v", k, m)
		}
	}
}

func TestBaselineRoundtrips(t *testing.T) {
	base := Baseline()
	for _, k := range Kernels {
		if _, ok := base.Kernels[k]; !ok {
			t.Fatalf("baseline missing kernel %s", k)
		}
	}
	buf, err := json.Marshal(File{Baseline: base, Current: base})
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatal(err)
	}
	if f.Baseline.Kernels["gzip"].AllocsPerOp != base.Kernels["gzip"].AllocsPerOp {
		t.Fatal("baseline did not roundtrip through JSON")
	}
}

func TestGate(t *testing.T) {
	mk := func(ns float64) Report {
		return Report{Kernels: map[string]Metrics{"gzip": {NsPerCycle: ns}, "mcf": {NsPerCycle: 100}}}
	}
	committed := mk(1000)
	if err := Gate(committed, mk(1100), 0.15); err != nil {
		t.Errorf("10%% regression tripped a 15%% gate: %v", err)
	}
	if err := Gate(committed, mk(1200), 0.15); err == nil {
		t.Error("20%% regression passed a 15%% gate")
	}
	// A kernel only present on one side is not a regression.
	fresh := mk(900)
	fresh.Kernels["new-kernel"] = Metrics{NsPerCycle: 9999}
	if err := Gate(committed, fresh, 0.15); err != nil {
		t.Errorf("unmatched kernel tripped the gate: %v", err)
	}
	// A zero committed record cannot divide-by-zero or trip.
	committed.Kernels["zero"] = Metrics{}
	fresh.Kernels["zero"] = Metrics{NsPerCycle: 5}
	if err := Gate(committed, fresh, 0.15); err != nil {
		t.Errorf("zero committed record tripped the gate: %v", err)
	}
}

// TestGateAllocsPerCycle: the ns tolerance must not shelter a change that
// reintroduces per-cycle allocations — the allocation ceiling is absolute
// and applies even to kernels absent from the committed record.
func TestGateAllocsPerCycle(t *testing.T) {
	committed := Report{Kernels: map[string]Metrics{"gzip": {NsPerCycle: 1000, AllocsPerCycle: 0.1}}}
	ok := Report{Kernels: map[string]Metrics{"gzip": {NsPerCycle: 1000, AllocsPerCycle: 0.1}}}
	if err := Gate(committed, ok, 0.15); err != nil {
		t.Errorf("amortized one-time allocations tripped the gate: %v", err)
	}
	// Faster but allocating: the ns check alone would pass this.
	leak := Report{Kernels: map[string]Metrics{"gzip": {NsPerCycle: 800, AllocsPerCycle: 1.3}}}
	if err := Gate(committed, leak, 0.15); err == nil {
		t.Error("per-cycle allocations rode under the ns gate")
	}
	// A new kernel is exempt from the ns comparison but not the ceiling.
	novel := Report{Kernels: map[string]Metrics{"fresh": {NsPerCycle: 500, AllocsPerCycle: 2}}}
	if err := Gate(committed, novel, 0.15); err == nil {
		t.Error("allocating kernel passed because it was absent from the committed record")
	}
}

// TestRecordHistorySkipsUnchangedRemeasurement: re-running `make bench` on
// an unchanged tree produces the same label and noise-level metric wobble;
// the trajectory must keep the existing entry untouched instead of churning
// its date or duplicating it.
func TestRecordHistorySkipsUnchangedRemeasurement(t *testing.T) {
	rep := Report{
		GoVersion: "go1.24.0",
		Kernels:   map[string]Metrics{"gzip": {NsPerCycle: 950.5}, "eon": {NsPerCycle: 700}},
	}
	var f File
	if !f.RecordHistory(rep, "predecode", "2026-08-08") {
		t.Fatal("first labeled measurement was not recorded")
	}
	// Same tree, remeasured a day later: within tolerance on every kernel.
	wobble := Report{
		GoVersion: "go1.24.0",
		Kernels:   map[string]Metrics{"gzip": {NsPerCycle: 955.1}, "eon": {NsPerCycle: 693}},
	}
	if f.RecordHistory(wobble, "predecode", "2026-08-09") {
		t.Error("noise-level remeasurement was recorded")
	}
	if len(f.History) != 1 || f.History[0].Date != "2026-08-08" ||
		f.History[0].NsPerCycle["gzip"] != 950.5 {
		t.Fatalf("unchanged-tree rerun disturbed the entry: %+v", f.History)
	}
	// A real change under the same label replaces the point in place.
	improved := Report{
		GoVersion: "go1.24.0",
		Kernels:   map[string]Metrics{"gzip": {NsPerCycle: 700}, "eon": {NsPerCycle: 500}},
	}
	if !f.RecordHistory(improved, "predecode", "2026-08-10") {
		t.Error("materially different remeasurement was skipped")
	}
	if len(f.History) != 1 || f.History[0].NsPerCycle["gzip"] != 700 {
		t.Fatalf("same-label update did not replace in place: %+v", f.History)
	}
	// A kernel-set mismatch is never "unchanged".
	extra := Report{
		GoVersion: "go1.24.0",
		Kernels: map[string]Metrics{
			"gzip": {NsPerCycle: 700}, "eon": {NsPerCycle: 500}, "mcf": {NsPerCycle: 300},
		},
	}
	if !f.RecordHistory(extra, "predecode", "2026-08-11") {
		t.Error("kernel-set change was treated as a remeasurement")
	}
}

func TestRecordHistoryReplacesSameLabel(t *testing.T) {
	rep := Report{
		GoVersion: "go1.24.0",
		Kernels:   map[string]Metrics{"gzip": {NsPerCycle: 950.5}},
	}
	var f File
	f.RecordHistory(rep, "soa", "2026-08-08")
	f.RecordHistory(rep, "older", "2026-07-01")
	rep.Kernels["gzip"] = Metrics{NsPerCycle: 900}
	f.RecordHistory(rep, "soa", "2026-08-09")
	if len(f.History) != 2 {
		t.Fatalf("history has %d entries, want 2 (same-label replace)", len(f.History))
	}
	if f.History[0].Label != "soa" || f.History[0].Date != "2026-08-09" ||
		f.History[0].NsPerCycle["gzip"] != 900 {
		t.Errorf("same-label entry not replaced in place: %+v", f.History[0])
	}
}

// TestMicroRoundtripsAndRecordsInHistory: the component measurement block
// must survive the JSON encode/decode cycle and ride along with labeled
// history entries.
func TestMicroRoundtripsAndRecordsInHistory(t *testing.T) {
	var f File
	f.Micro = &MicroMetrics{
		EmuNsPerInst:        6.5,
		EmuGenericNsPerInst: 16.4,
		AssignHitNsPerTrace: 715.4, AssignMissNsPerTrace: 2172.7,
	}
	rep := Report{GoVersion: "go1.24.0", Kernels: map[string]Metrics{"gzip": {NsPerCycle: 700}}}
	if !f.RecordHistory(rep, "predecode", "2026-08-08") {
		t.Fatal("labeled measurement was not recorded")
	}
	buf, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Micro == nil || got.Micro.EmuGenericNsPerInst != 16.4 {
		t.Fatalf("micro block did not roundtrip: %+v", got.Micro)
	}
	if len(got.History) != 1 || got.History[0].Micro == nil ||
		got.History[0].Micro.AssignHitNsPerTrace != 715.4 {
		t.Fatalf("history entry did not carry the micro block: %+v", got.History)
	}
}

func TestEmitRounding(t *testing.T) {
	if got := round1(23554146.888888888); got != 23554146.9 {
		t.Errorf("round1 = %v", got)
	}
	if got := round4(0.10346666); got != 0.1035 {
		t.Errorf("round4 = %v", got)
	}
}
