// Package cluster defines the execution-cluster substrate of the CTCP
// (paper §2.2): the cluster geometry and inter-cluster interconnect with its
// distance-dependent forwarding latencies, and the per-cluster structure of
// five reservation stations feeding eight special-purpose functional units.
package cluster

import (
	"fmt"

	"ctcp/internal/isa"
)

// Topology selects the inter-cluster interconnect.
type Topology int

const (
	// Chain is the baseline point-to-point chain: end clusters do not
	// communicate directly, so the worst-case distance is Clusters-1 hops.
	Chain Topology = iota
	// Ring connects the end clusters directly (the paper's "mesh network"
	// following Parcerisa et al.), eliminating three-cluster communication.
	Ring
)

func (t Topology) String() string {
	if t == Ring {
		return "ring"
	}
	return "chain"
}

// Geometry describes the clustered execution core.
type Geometry struct {
	Clusters int
	Width    int // issue slots per cluster per cycle
	Topology Topology
	HopLat   int // cycles per inter-cluster hop
	IntraLat int // additional cycles for intra-cluster forwarding (0: same cycle)
}

// DefaultGeometry returns the baseline 4x4 chain with 2-cycle hops.
func DefaultGeometry() Geometry {
	return Geometry{Clusters: 4, Width: 4, Topology: Chain, HopLat: 2, IntraLat: 0}
}

// TotalWidth returns the machine issue width.
func (g Geometry) TotalWidth() int { return g.Clusters * g.Width }

// Distance returns the number of interconnect hops between clusters a and b.
// The bounds panic lives out of line so the body stays under the inlining
// budget — the scheduler evaluates this per forwarded input per instruction.
func (g Geometry) Distance(a, b int) int {
	if a < 0 || a >= g.Clusters || b < 0 || b >= g.Clusters {
		badDistance(a, b)
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if g.Topology == Ring {
		if wrap := g.Clusters - d; wrap < d {
			d = wrap
		}
	}
	return d
}

//ctcp:coldpath
//
//go:noinline
func badDistance(a, b int) {
	panic(fmt.Sprintf("cluster: distance between invalid clusters %d,%d", a, b))
}

// ForwardLat returns the data forwarding latency in cycles from a producer
// in cluster a to a consumer in cluster b.
func (g Geometry) ForwardLat(a, b int) int {
	if a == b {
		return g.IntraLat
	}
	return g.Distance(a, b) * g.HopLat
}

// Neighbors returns the clusters at distance 1 from c, middle-most first,
// which is the order FDRT tries spill targets.
func (g Geometry) Neighbors(c int) []int {
	var out []int
	for d := 0; d < g.Clusters; d++ {
		if d != c && g.Distance(c, d) == 1 {
			out = append(out, d)
		}
	}
	// Prefer neighbors closer to the middle of the chain: forwarding out of
	// a middle cluster can reach anywhere in fewer hops.
	mid := float64(g.Clusters-1) / 2
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if centerDist(float64(out[j]), mid) < centerDist(float64(out[i]), mid) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func centerDist(x, mid float64) float64 {
	if x > mid {
		return x - mid
	}
	return mid - x
}

// MiddleClusters returns the clusters nearest the center of the chain,
// nearest first; FDRT funnels producers with no inputs to these.
func (g Geometry) MiddleClusters() []int {
	out := make([]int, 0, g.Clusters)
	for c := 0; c < g.Clusters; c++ {
		out = append(out, c)
	}
	mid := float64(g.Clusters-1) / 2
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if centerDist(float64(out[j]), mid) < centerDist(float64(out[i]), mid) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// SlotCluster maps a physical issue-slot index (0..TotalWidth-1) to its
// cluster: slot-based steering sends slots 4i..4i+3 to cluster i.
func (g Geometry) SlotCluster(slot int) int {
	c := slot / g.Width
	if c >= g.Clusters {
		c = g.Clusters - 1
	}
	return c
}

// RSKind enumerates the five per-cluster reservation stations.
type RSKind int

const (
	RSSimpleA RSKind = iota // simple integer + basic FP
	RSSimpleB               // second simple station
	RSMem                   // integer and FP memory
	RSBr                    // branches
	RSCpx                   // complex integer and complex FP
	NumRSKinds
)

func (k RSKind) String() string {
	return [...]string{"simpleA", "simpleB", "mem", "br", "cpx"}[k]
}

// FUKind enumerates the eight per-cluster functional units.
type FUKind int

const (
	FUALU0 FUKind = iota
	FUALU1
	FUMem
	FUBr
	FUCpx
	FUFPSimple
	FUFPComplex
	FUFPMem
	NumFUKinds
)

func (k FUKind) String() string {
	return [...]string{"alu0", "alu1", "mem", "br", "cpx", "fps", "fpc", "fpm"}[k]
}

// Shared station/unit capability slices. StationsFor and UnitsFor sit on the
// per-instruction steering and issue paths, so they hand out these static
// slices instead of building fresh literals; callers must treat the results
// as read-only.
var (
	simpleStations = []RSKind{RSSimpleA, RSSimpleB}
	memStations    = []RSKind{RSMem}
	brStations     = []RSKind{RSBr}
	cpxStations    = []RSKind{RSCpx}

	aluUnits   = []FUKind{FUALU0, FUALU1}
	fpAddUnits = []FUKind{FUFPSimple}
	memUnits   = []FUKind{FUMem}
	fpMemUnits = []FUKind{FUFPMem}
	brUnits    = []FUKind{FUBr}
	cpxUnits   = []FUKind{FUCpx}
)

// StationsFor returns the reservation stations that can hold an instruction
// of the given class. Simple operations may use either simple station. The
// returned slice is shared and must not be modified.
func StationsFor(class isa.Class) []RSKind {
	switch class {
	case isa.ClassIntALU, isa.ClassFPAdd, isa.ClassNop, isa.ClassHalt:
		return simpleStations
	case isa.ClassLoad, isa.ClassStore, isa.ClassFPLoad, isa.ClassFPStore:
		return memStations
	case isa.ClassBranch, isa.ClassJump, isa.ClassFPBranch:
		return brStations
	case isa.ClassIntMul, isa.ClassIntDiv, isa.ClassFPMul, isa.ClassFPDiv, isa.ClassFPSqrt:
		return cpxStations
	default:
		return simpleStations
	}
}

// UnitsFor returns the functional units that can execute the class. The
// returned slice is shared and must not be modified.
func UnitsFor(class isa.Class) []FUKind {
	switch class {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassHalt:
		return aluUnits
	case isa.ClassFPAdd:
		return fpAddUnits
	case isa.ClassLoad, isa.ClassStore:
		return memUnits
	case isa.ClassFPLoad, isa.ClassFPStore:
		return fpMemUnits
	case isa.ClassBranch, isa.ClassJump, isa.ClassFPBranch:
		return brUnits
	case isa.ClassIntMul, isa.ClassIntDiv, isa.ClassFPMul, isa.ClassFPDiv, isa.ClassFPSqrt:
		return cpxUnits
	default:
		return aluUnits
	}
}

// Latency holds the execution and issue (initiation-interval) latencies of a
// class, per Table 7.
type Latency struct {
	Exec  int // cycles from dispatch to result
	Issue int // cycles the FU is busy (1 = fully pipelined)
}

// LatencyFor returns the Table 7 latencies for a class.
func LatencyFor(class isa.Class) Latency {
	switch class {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassHalt:
		return Latency{1, 1}
	case isa.ClassFPAdd:
		return Latency{2, 1}
	case isa.ClassIntMul:
		return Latency{3, 1}
	case isa.ClassIntDiv:
		return Latency{20, 19}
	case isa.ClassFPMul:
		return Latency{3, 1}
	case isa.ClassFPDiv:
		return Latency{12, 12}
	case isa.ClassFPSqrt:
		return Latency{24, 24}
	case isa.ClassLoad, isa.ClassStore, isa.ClassFPLoad, isa.ClassFPStore:
		return Latency{1, 1} // address generation; cache adds the rest
	case isa.ClassBranch, isa.ClassJump, isa.ClassFPBranch:
		return Latency{1, 1}
	default:
		return Latency{1, 1}
	}
}

// RSConfig sizes the reservation stations (Table 7: five 8-entry stations
// with 2 write ports each).
type RSConfig struct {
	Entries    int // per station
	WritePorts int // dispatches into one station per cycle
}

// DefaultRSConfig returns the Table 7 sizing.
func DefaultRSConfig() RSConfig { return RSConfig{Entries: 8, WritePorts: 2} }
