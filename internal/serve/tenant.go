package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultTenant is the tenant every request belongs to when the server runs
// without an API key file (open access), and the tenant journal entries fall
// back to when their recorded tenant no longer exists at replay time.
const DefaultTenant = "default"

// tenant is one isolated consumer of the service: its own token-bucket
// admission rate, queue quota, fair-share FIFO of pending jobs, and metric
// counters. All fields are guarded by the owning Server's mutex.
type tenant struct {
	name string
	key  string // API key ("" for the open-access default tenant)

	// Token bucket: tokens refill at rate per second up to burst; each
	// accepted submission spends one. rate 0 = unlimited.
	rate, burst float64
	tokens      float64
	lastRefill  time.Time

	// quota bounds this tenant's queued+running jobs (0 = unbounded).
	quota  int
	active int

	// pending is the tenant's FIFO of accepted-but-not-running jobs; the
	// dispatcher round-robins across tenants' FIFOs so one tenant's sweep
	// cannot starve another.
	pending []*Job

	submitted, completed, failed, interrupted uint64
	rejected, throttled, storeHits            uint64
}

// allow spends one token if the bucket has it, refilling for elapsed time
// first. Caller holds s.mu.
func (tn *tenant) allow(now time.Time) bool {
	if tn.rate <= 0 {
		return true
	}
	if !tn.lastRefill.IsZero() {
		tn.tokens += now.Sub(tn.lastRefill).Seconds() * tn.rate
	}
	tn.lastRefill = now
	if tn.tokens > tn.burst {
		tn.tokens = tn.burst
	}
	if tn.tokens < 1 {
		return false
	}
	tn.tokens--
	return true
}

// newTenant builds a tenant with the server's default limits applied.
func (cfg *Config) newTenant(name, key string) *tenant {
	burst := cfg.TenantBurst
	if burst <= 0 {
		burst = cfg.TenantRate
		if burst < 1 {
			burst = 1
		}
	}
	return &tenant{
		name:   name,
		key:    key,
		rate:   cfg.TenantRate,
		burst:  burst,
		tokens: burst,
		quota:  cfg.TenantQuota,
	}
}

// loadKeyFile parses a static API key file into tenants. Each non-comment
// line is
//
//	<key> <tenant-name> [quota=N] [rate=R] [burst=B]
//
// whitespace-separated; '#' starts a comment. The optional k=v fields
// override the server-wide tenant defaults for that tenant. Keys and tenant
// names must both be unique.
func loadKeyFile(cfg *Config, path string) (byKey map[string]*tenant, byName map[string]*tenant, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening key file: %w", err)
	}
	defer f.Close()
	byKey = make(map[string]*tenant)
	byName = make(map[string]*tenant)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("serve: %s:%d: want \"<key> <tenant> [k=v...]\"", path, lineNo)
		}
		key, name := fields[0], fields[1]
		if _, dup := byKey[key]; dup {
			return nil, nil, fmt.Errorf("serve: %s:%d: duplicate API key", path, lineNo)
		}
		if _, dup := byName[name]; dup {
			return nil, nil, fmt.Errorf("serve: %s:%d: duplicate tenant %q", path, lineNo, name)
		}
		tn := cfg.newTenant(name, key)
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, nil, fmt.Errorf("serve: %s:%d: bad field %q (want k=v)", path, lineNo, kv)
			}
			switch k {
			case "quota":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, nil, fmt.Errorf("serve: %s:%d: quota: %w", path, lineNo, err)
				}
				tn.quota = n
			case "rate":
				r, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("serve: %s:%d: rate: %w", path, lineNo, err)
				}
				tn.rate = r
			case "burst":
				b, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("serve: %s:%d: burst: %w", path, lineNo, err)
				}
				tn.burst, tn.tokens = b, b
			default:
				return nil, nil, fmt.Errorf("serve: %s:%d: unknown field %q", path, lineNo, k)
			}
		}
		if tn.rate > 0 && tn.burst < 1 {
			tn.burst, tn.tokens = 1, 1
		}
		byKey[key] = tn
		byName[name] = tn
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("serve: reading key file: %w", err)
	}
	if len(byKey) == 0 {
		return nil, nil, fmt.Errorf("serve: key file %s defines no tenants", path)
	}
	return byKey, byName, nil
}

// apiKey extracts the request's API key from X-API-Key or a bearer token.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
	}
	return ""
}

// tenantFor authenticates an API request. Open-access servers (no key file)
// map every request to the default tenant; keyed servers reject missing or
// unknown keys.
func (s *Server) tenantFor(r *http.Request) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.authRequired {
		return s.tenants[DefaultTenant], nil
	}
	tn, ok := s.keys[apiKey(r)]
	if !ok {
		s.unauthorized++
		return nil, fmt.Errorf("missing or unknown API key")
	}
	return tn, nil
}

// tenantNames returns every tenant name, sorted, for deterministic
// iteration (dispatch order, metrics rendering, shutdown drains).
func tenantNames(tenants map[string]*tenant) []string {
	names := make([]string, 0, len(tenants))
	for name := range tenants { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
