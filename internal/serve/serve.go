// Package serve implements ctcpd, a stdlib-only HTTP/JSON simulation
// service over the experiment runner. Clients submit (benchmark, strategy,
// budget, mode) jobs; the service simulates each distinct job exactly once —
// concurrent duplicates join the in-flight job, repeats are answered from a
// content-addressed result store keyed by the canonical run fingerprint
// (experiment.RunFingerprint) — and exposes its counters in Prometheus text
// form on /metrics. Shutdown drains in-flight simulations cooperatively:
// checkpoint-mode runs stop at the next segment boundary with their newest
// checkpoint already on disk, so a restarted server resumes them bit-exactly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"ctcp/internal/experiment"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// Config configures a Server.
type Config struct {
	// Store is the result-store directory (required).
	Store string
	// CheckpointDir, when set, lets jobs request checkpoint-segmented runs;
	// it is also what makes shutdown lossless for long simulations.
	CheckpointDir string
	// QueueDepth bounds the number of accepted-but-not-running jobs
	// (0 = 64). A full queue rejects submissions with 429 rather than
	// accepting unbounded work.
	QueueDepth int
	// Workers is the number of concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// DefaultBudget is applied to requests that omit a budget
	// (0 = experiment.DefaultBudget).
	DefaultBudget uint64
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
}

// Request is the submission payload of POST /api/v1/jobs.
type Request struct {
	// Benchmark is a workload name (see workload.All).
	Benchmark string `json:"benchmark"`
	// Config is a strategy-configuration name (see experiment.StrategyConfigs).
	Config string `json:"config"`
	// Budget is the committed-instruction budget (0 = server default).
	Budget uint64 `json:"budget,omitempty"`

	// SampleInterval switches the run to region-parallel sampled simulation;
	// SampleDetail and SampleWarmup pass through. Mutually exclusive with
	// Checkpoint.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleDetail   uint64 `json:"sample_detail,omitempty"`
	SampleWarmup   uint64 `json:"sample_warmup,omitempty"`

	// Checkpoint requests a checkpoint-segmented run (requires the server to
	// be configured with a checkpoint directory).
	Checkpoint      bool   `json:"checkpoint,omitempty"`
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// mode names the request's simulation mode for records and logs.
func (req Request) mode() string {
	switch {
	case req.SampleInterval != 0:
		return "sampled"
	case req.Checkpoint:
		return "checkpointed"
	default:
		return "full"
	}
}

// Job statuses, in lifecycle order.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusFailed      = "failed"
	StatusInterrupted = "interrupted"
)

// Job tracks one submitted simulation from acceptance to result. All mutable
// fields are guarded by the owning Server's mutex; done is closed exactly
// once, when the job reaches a terminal status.
type Job struct {
	ID          string
	Fingerprint string
	Request     Request

	seq    int
	bm     workload.Benchmark
	cfg    pipeline.Config
	opts   experiment.Options
	status string
	errMsg string
	stats  *pipeline.Stats
	cached bool // satisfied from the result store, no simulation
	queued time.Time
	begun  time.Time
	done   chan struct{}
}

// jobView is the JSON shape of a job in every API response.
type jobView struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	Benchmark   string          `json:"benchmark"`
	Config      string          `json:"config"`
	Budget      uint64          `json:"budget"`
	Mode        string          `json:"mode"`
	Status      string          `json:"status"`
	Cached      bool            `json:"cached"`
	Error       string          `json:"error,omitempty"`
	Stats       *pipeline.Stats `json:"stats,omitempty"`
}

// Server is the ctcpd HTTP handler plus its worker pool. Create with New,
// serve with net/http, stop with Shutdown.
type Server struct {
	cfg   Config
	store *Store
	mux   *http.ServeMux

	queue     chan *Job
	interrupt chan struct{}
	wg        sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	seq     int
	jobs    map[string]*Job // by ID
	byFP    map[string]*Job // by fingerprint: the service-level dedup index
	runners map[string]*experiment.Runner

	submitted, completed, failed, interrupted, rejected, storeHits uint64
	queueWait, simWall                                             time.Duration
	queueWaitN, simN                                               uint64
}

// New builds a Server, opens (or creates) its result store, and starts its
// worker pool.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating checkpoint directory: %w", err)
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultBudget == 0 {
		cfg.DefaultBudget = experiment.DefaultBudget
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		queue:     make(chan *Job, cfg.QueueDepth),
		interrupt: make(chan struct{}),
		jobs:      make(map[string]*Job),
		byFP:      make(map[string]*Job),
		runners:   make(map[string]*experiment.Runner),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/results/{fp}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// options translates a validated request into the runner options that
// simulate it. Everything here that affects results is covered by
// experiment.RunFingerprint; Parallelism is sized so a runner never throttles
// below the server's own worker pool.
func (s *Server) options(req Request) experiment.Options {
	opts := experiment.Options{
		Budget:         req.Budget,
		Parallelism:    s.cfg.Workers,
		SampleInterval: req.SampleInterval,
		SampleDetail:   req.SampleDetail,
		SampleWarmup:   req.SampleWarmup,
		Interrupt:      s.interrupt,
	}
	if req.Checkpoint {
		opts.CheckpointDir = s.cfg.CheckpointDir
		opts.CheckpointEvery = req.CheckpointEvery
	}
	return opts
}

// profileKey groups jobs that can share one experiment.Runner: the runner
// memoizes by benchmark/config name only, so every result-affecting option
// must be part of the pool key.
func profileKey(opts experiment.Options) string {
	return fmt.Sprintf("b%d|s%d,%d,%d|c%s,%d",
		opts.Budget,
		opts.SampleInterval, opts.SampleDetail, opts.SampleWarmup,
		opts.CheckpointDir, opts.CheckpointEvery)
}

// runnerFor returns the pooled runner for a job's options profile, creating
// it on first use. Caller holds s.mu.
func (s *Server) runnerFor(opts experiment.Options) *experiment.Runner {
	key := profileKey(opts)
	r, ok := s.runners[key]
	if !ok {
		r = experiment.NewRunner(opts)
		s.runners[key] = r
	}
	return r
}

// validate resolves a request against the known benchmarks and strategy
// configurations and applies server defaults. It returns the resolved
// benchmark and config alongside the normalized request.
func (s *Server) validate(req Request) (Request, workload.Benchmark, pipeline.Config, error) {
	bm, ok := workload.ByName(req.Benchmark)
	if !ok {
		return req, bm, pipeline.Config{}, fmt.Errorf("unknown benchmark %q", req.Benchmark)
	}
	cfgs := experiment.StrategyConfigs()
	cfg, ok := cfgs[req.Config]
	if !ok {
		names := make([]string, 0, len(cfgs))
		for name := range cfgs {
			names = append(names, name)
		}
		sort.Strings(names)
		return req, bm, cfg, fmt.Errorf("unknown config %q (have %v)", req.Config, names)
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.SampleInterval != 0 && req.Checkpoint {
		return req, bm, cfg, fmt.Errorf("sampled and checkpointed modes are mutually exclusive")
	}
	if req.Checkpoint && s.cfg.CheckpointDir == "" {
		return req, bm, cfg, fmt.Errorf("checkpoint requested but the server has no checkpoint directory")
	}
	return req, bm, cfg, nil
}

// Submit accepts a job (or joins/answers an equivalent one). The returned
// HTTP status tells the story: 202 for a newly queued simulation, 200 when
// the request was satisfied by an existing job or the result store, 400 for
// an invalid request, 429 when the queue is full, 503 when shutting down.
func (s *Server) Submit(req Request) (*Job, int, error) {
	req, bm, cfg, err := s.validate(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	opts := s.options(req)
	fp := experiment.RunFingerprint(bm.Name, cfg, opts)
	hex := fpHex(fp)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	// Service-level dedup: an equivalent job (queued, running, or already
	// terminal) absorbs the submission. This is what guarantees concurrent
	// duplicate submissions cost one simulation, before the runner's own
	// singleflight even sees them.
	if j, ok := s.byFP[hex]; ok {
		return j, http.StatusOK, nil
	}
	// Durable dedup: a previous process already simulated this fingerprint.
	if rec, ok := s.store.Get(fp); ok {
		j := s.newJobLocked(req, hex, bm, cfg, opts)
		j.status = StatusDone
		j.stats = rec.Stats
		j.cached = true
		close(j.done)
		s.storeHits++
		s.logf("job %s: %s/%s served from store (%s)", j.ID, req.Benchmark, req.Config, hex)
		return j, http.StatusOK, nil
	}
	j := s.newJobLocked(req, hex, bm, cfg, opts)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		delete(s.byFP, hex)
		s.rejected++
		return nil, http.StatusTooManyRequests, fmt.Errorf("job queue is full (depth %d)", s.cfg.QueueDepth)
	}
	s.submitted++
	s.logf("job %s: queued %s/%s budget=%d mode=%s fp=%s",
		j.ID, req.Benchmark, req.Config, req.Budget, req.mode(), hex)
	return j, http.StatusAccepted, nil
}

// newJobLocked allocates and indexes a job. Caller holds s.mu.
func (s *Server) newJobLocked(req Request, hex string, bm workload.Benchmark, cfg pipeline.Config, opts experiment.Options) *Job {
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("job-%d", s.seq),
		Fingerprint: hex,
		Request:     req,
		seq:         s.seq,
		bm:          bm,
		cfg:         cfg,
		opts:        opts,
		status:      StatusQueued,
		queued:      time.Now(),
		done:        make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.byFP[hex] = j
	return j
}

// worker consumes the job queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.interrupt:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one queued job to a terminal status.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.begun = time.Now()
	s.queueWait += j.begun.Sub(j.queued)
	s.queueWaitN++
	r := s.runnerFor(j.opts)
	s.mu.Unlock()

	stats, err := r.RunErr(j.bm, j.Request.Config, j.cfg)
	wall := time.Since(j.begun)

	if err == nil {
		if perr := s.store.Put(&Record{
			Fingerprint: j.Fingerprint,
			Benchmark:   j.Request.Benchmark,
			Config:      j.Request.Config,
			Budget:      j.Request.Budget,
			Mode:        j.Request.mode(),
			Stats:       stats,
		}); perr != nil {
			// The result is valid even if persisting it failed; the job
			// succeeds and only durability is lost.
			s.logf("job %s: result store write failed: %v", j.ID, perr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.simWall += wall
	s.simN++
	switch {
	case err == nil:
		j.status = StatusDone
		j.stats = stats
		s.completed++
		s.logf("job %s: done in %v", j.ID, wall.Round(time.Millisecond))
	case errors.Is(err, experiment.ErrInterrupted):
		j.status = StatusInterrupted
		j.errMsg = err.Error()
		s.interrupted++
		s.logf("job %s: interrupted by shutdown", j.ID)
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		s.failed++
		s.logf("job %s: failed: %v", j.ID, err)
	}
	close(j.done)
}

// Shutdown stops intake, interrupts queued and in-flight simulations, and
// waits (up to ctx) for the workers to drain. Checkpoint-mode runs stop at
// their next segment boundary with the newest checkpoint already persisted,
// so nothing beyond one segment of work is lost.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.interrupt)
	}
	s.mu.Unlock()
	// Jobs still sitting in the queue will never be picked up (workers exit
	// on interrupt); resolve them so waiters unblock. Workers racing this
	// drain are harmless — whichever side receives the job marks it.
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			j.status = StatusInterrupted
			j.errMsg = experiment.ErrInterrupted.Error()
			s.interrupted++
			close(j.done)
			s.mu.Unlock()
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// view renders a job under s.mu.
func (s *Server) view(j *Job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobView{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Benchmark:   j.Request.Benchmark,
		Config:      j.Request.Config,
		Budget:      j.Request.Budget,
		Mode:        j.Request.mode(),
		Status:      j.status,
		Cached:      j.cached,
		Error:       j.errMsg,
		Stats:       j.stats,
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, status, err := s.Submit(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, s.view(j))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration: %w", err))
			return
		}
		if d > 5*time.Minute {
			d = 5 * time.Minute
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = s.view(j)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	fp, err := strconv.ParseUint(r.PathValue("fp"), 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fingerprint must be a 64-bit hex value"))
		return
	}
	rec, ok := s.store.Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for fingerprint %s", fpHex(fp)))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
