package snap

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSample emits one snapshot exercising every scalar and slice type
// plus nested sections.
func writeSample() *Writer {
	w := NewWriter()
	w.Begin("outer")
	w.U64(0xDEADBEEF01234567)
	w.I64(-42)
	w.Int(7)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Begin("inner")
	w.U64Slice([]uint64{9, 8, 7})
	w.I64Slice([]int64{-1, 0, 1})
	w.BoolSlice([]bool{true, false, true})
	w.End()
	w.U64(99)
	w.End()
	return w
}

func readSample(t *testing.T, data []byte) {
	t.Helper()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("outer")
	if got := r.U64(); got != 0xDEADBEEF01234567 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	r.Begin("inner")
	if got := r.U64Slice(); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Errorf("U64Slice = %v", got)
	}
	if got := r.I64Slice(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("I64Slice = %v", got)
	}
	if got := r.BoolSlice(); len(got) != 3 || !got[0] || got[1] {
		t.Errorf("BoolSlice = %v", got)
	}
	r.End()
	if got := r.U64(); got != 99 {
		t.Errorf("trailing U64 = %d", got)
	}
	r.End()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	data, err := writeSample().Finish()
	if err != nil {
		t.Fatal(err)
	}
	readSample(t, data)
}

func TestDeterministicEncoding(t *testing.T) {
	a, err := writeSample().Finish()
	if err != nil {
		t.Fatal(err)
	}
	b, err := writeSample().Finish()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two identical writes produced different bytes")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data, err := writeSample().Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte after the header, one at a time: each corruption must
	// be caught (checksum, bounds, name, or marker failure) — never a clean
	// read of wrong data without any error.
	headerLen := len(magic) + 2
	for i := headerLen; i < len(data); i++ {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 0x40
		r, err := NewReader(mut)
		if err != nil {
			continue // header-adjacent damage
		}
		func() {
			defer func() { recover() }() // any panic is a failure mode we don't allow
			silent := true
			r.Begin("outer")
			r.U64()
			r.I64()
			r.Int()
			r.U8()
			r.Bool()
			r.Bool()
			r.Bytes()
			_ = r.String()
			r.Begin("inner")
			r.U64Slice()
			r.I64Slice()
			r.BoolSlice()
			r.End()
			r.U64()
			r.End()
			if r.Close() != nil {
				silent = false
			}
			if silent {
				t.Errorf("byte %d corrupted: read completed without error", i)
			}
		}()
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader([]byte("NOTASNAP\x01\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	data, err := writeSample().Finish()
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(data))
	copy(mut, data)
	mut[len(magic)]++ // bump the version field
	if _, err := NewReader(mut); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted (err=%v)", err)
	}
}

func TestSectionNameMismatch(t *testing.T) {
	w := NewWriter()
	w.Begin("alpha")
	w.U64(1)
	w.End()
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("beta")
	if r.Err() == nil {
		t.Error("wrong section name accepted")
	}
}

func TestStrictSectionConsumption(t *testing.T) {
	w := NewWriter()
	w.Begin("s")
	w.U64(1)
	w.U64(2)
	w.End()
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("s")
	r.U64() // leave one value unread
	r.End()
	if r.Err() == nil {
		t.Error("unread payload bytes accepted by End")
	}

	// Reading past the payload is also an error, not a read into a sibling.
	r2, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r2.Begin("s")
	r2.U64()
	r2.U64()
	r2.U64()
	if r2.Err() == nil {
		t.Error("read past section end accepted")
	}
}

func TestUnclosedSection(t *testing.T) {
	w := NewWriter()
	w.Begin("open")
	w.U64(1)
	if _, err := w.Finish(); err == nil {
		t.Error("Finish succeeded with an open section")
	}
}

func TestStickyErrors(t *testing.T) {
	w := NewWriter()
	w.Failf("first %s", "failure")
	w.Failf("second")
	if w.Err() == nil || !strings.Contains(w.Err().Error(), "first failure") {
		t.Errorf("writer sticky error = %v", w.Err())
	}
	w.U64(1)
	w.Begin("x")
	if _, err := w.Finish(); err == nil {
		t.Error("Finish ignored sticky error")
	}

	r, err := NewReader(mustBytes(t, writeSample()))
	if err != nil {
		t.Fatal(err)
	}
	r.Failf("boom")
	if r.U64() != 0 || r.Int() != 0 || r.String() != "" || r.Bytes() != nil {
		t.Error("getters returned data after sticky error")
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "boom") {
		t.Errorf("reader sticky error = %v", r.Err())
	}
}

func TestExpect(t *testing.T) {
	w := NewWriter()
	w.Begin("cfg")
	w.U64(4)
	w.Int(16)
	w.End()
	data := mustBytes(t, w)

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("cfg")
	r.Expect("clusters", 4)
	r.ExpectInt("width", 16)
	r.End()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r2.Begin("cfg")
	r2.Expect("clusters", 8)
	if r2.Err() == nil || !strings.Contains(r2.Err().Error(), "clusters") {
		t.Errorf("Expect mismatch not reported: %v", r2.Err())
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub.ckpt")
	if err := WriteFile(path, writeSample()); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the file round-trips through the same reader path.
	r.Begin("outer")
	if got := r.U64(); got != 0xDEADBEEF01234567 {
		t.Errorf("file round-trip U64 = %#x", got)
	}

	// No temp files left behind by the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}

	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("ReadFile on a missing path succeeded")
	}
}

// TestWriteFileBytes: the raw-byte atomic write replaces an existing file in
// one rename (readers never observe a truncated intermediate) and leaves no
// temp files behind.
func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	if err := WriteFileBytes(path, []byte("first version, longer payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content = %q, want the full replacement", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if err := WriteFileBytes(filepath.Join(t.TempDir(), "no/such/dir/x"), []byte("x")); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func mustBytes(t *testing.T, w *Writer) []byte {
	t.Helper()
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJournalRoundTrip: records appended one at a time read back complete and
// in order, and a compaction rewrite reproduces the same image.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	if got, err := ReadFileLines(path); err != nil || got != nil {
		t.Fatalf("missing journal: lines=%v err=%v, want empty, nil", got, err)
	}
	records := []string{`{"op":"accept","fp":"a"}`, `{"op":"done","fp":"a"}`, `{"op":"accept","fp":"b"}`}
	for _, rec := range records {
		if err := AppendFileLine(path, []byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFileLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, want %d", len(got), len(records))
	}
	for i, rec := range records {
		if string(got[i]) != rec {
			t.Errorf("record %d = %q, want %q", i, got[i], rec)
		}
	}
	// Compaction: rewrite with a subset, atomically.
	if err := WriteFileBytes(path, EncodeJournal([][]byte{[]byte(records[2])})); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFileLines(path)
	if err != nil || len(got) != 1 || string(got[0]) != records[2] {
		t.Fatalf("compacted journal = %q err=%v, want just %q", got, err, records[2])
	}
}

// TestJournalTornTail: a crash mid-append leaves a damaged final line; the
// reader must keep every intact record before it and drop the tail, whether
// the damage is a missing newline, a bad checksum, or a malformed prefix.
func TestJournalTornTail(t *testing.T) {
	intact := EncodeJournalLine([]byte(`{"op":"accept","fp":"a"}`))
	for name, tail := range map[string]string{
		"no-newline":   `0123456789abcdef {"op":"acce`,
		"bad-checksum": "0000000000000000 {\"op\":\"accept\",\"fp\":\"b\"}\n",
		"short-line":   "xyz\n",
		"no-separator": "0123456789abcdefX{\"op\":\"accept\"}\n",
		"bad-hex":      "zzzzzzzzzzzzzzzz {\"op\":\"accept\"}\n",
	} {
		path := filepath.Join(t.TempDir(), name+".journal")
		if err := os.WriteFile(path, append(append([]byte{}, intact...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFileLines(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || string(got[0]) != `{"op":"accept","fp":"a"}` {
			t.Errorf("%s: kept %q, want exactly the intact first record", name, got)
		}
	}
}
