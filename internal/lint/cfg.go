package lint

// An intraprocedural control-flow graph over one function body, built at
// statement granularity. The flow-aware analyzers (lockheld, lockorder) run
// a may-analysis fixpoint over it: a basic block's entry state is the union
// of its predecessors' exit states, so "the lock may still be held here"
// survives joins, which is the conservative direction for both checks.
//
// Granularity and structure:
//
//   - Plain statements (assignments, expression statements, sends, defers,
//     go statements, declarations) are nodes appended to the current block.
//   - Control headers contribute only their own evaluation to the block that
//     executes them: an if/for/switch condition is added as a bare ast.Expr
//     node, a range statement and a select statement are added as themselves
//     (the analyzers treat those two node kinds header-only and never
//     descend into their bodies, which live in successor blocks).
//   - break/continue honor labels; goto is not modeled — a goto conservatively
//     ends the block with an edge to the synthetic exit (no analyzer in this
//     module inspects code that uses goto).
//   - A select's comm clauses become successor blocks whose first node is the
//     comm statement itself; blockScanner attributes the blocking behaviour
//     of the comms to the select header, so clause-level sends/receives are
//     not double-counted.
//
// Unreachable code (statements after return/break) still gets blocks, but no
// entry edge ever reaches them, so a may-analysis keeps them at the empty
// state and never reports from them.

import "go/ast"

// Block is one basic block: a run of nodes with single-entry evaluation
// order and a set of successor blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Exit is a synthetic
// empty block every return (and the fall-off-the-end path) flows into.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, exit: &Block{Index: -1}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.exit
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.exit)
	}
	b.exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.exit)
	return b.g
}

// target is one entry of the break/continue resolution stacks.
type target struct {
	label string
	block *Block
}

type cfgBuilder struct {
	g    *CFG
	exit *Block
	cur  *Block // nil after a terminator (return/break/continue/goto)

	breaks    []target
	continues []target
	fall      *Block // fallthrough target inside a switch body
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, reviving a dead (unreachable)
// block if a terminator just ended the previous one.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable: no entry edge
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findTarget resolves a break/continue target: the innermost entry for an
// unlabeled branch, the matching entry for a labeled one.
func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].block == nil {
			continue
		}
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, target{label, after})
		b.continues = append(b.continues, target{label, post})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		head.Nodes = append(head.Nodes, s) // header-only node: analyzers scan s.X, never s.Body
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, target{label, after})
		b.continues = append(b.continues, target{label, head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.add(s) // header-only node: blockScanner classifies it by default-presence
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, target{label, after})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if t := findTarget(b.breaks, labelName(s)); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
		case "continue":
			if t := findTarget(b.continues, labelName(s)); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
		case "fallthrough":
			if b.fall != nil && b.cur != nil {
				b.edge(b.cur, b.fall)
			}
		case "goto":
			if b.cur != nil {
				b.edge(b.cur, b.exit) // unmodeled; conservative function exit
			}
		}
		b.cur = nil

	default:
		// ExprStmt, AssignStmt, SendStmt, IncDecStmt, DeclStmt, DeferStmt,
		// GoStmt, EmptyStmt: plain nodes.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch body shape: every case
// branches from the header block; fallthrough (expression switches only)
// links a body to the next case's entry.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.breaks = append(b.breaks, target{label, after})
	b.continues = append(b.continues, target{label, nil}) // continue skips switches
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		entries[i] = b.newBlock()
		b.edge(head, entries[i])
		for _, e := range cc.List {
			entries[i].Nodes = append(entries[i].Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		prevFall := b.fall
		b.fall = nil
		if allowFallthrough && i+1 < len(entries) {
			b.fall = entries[i+1]
		}
		b.cur = entries[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		b.fall = prevFall
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}
