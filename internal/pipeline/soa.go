package pipeline

// Struct-of-arrays inflight store. The cycle model used to chase *inflight
// pointers through prod/critProd/prevStore links and recompute readiness()
// per reservation-station entry per cycle; the store here keeps the same
// per-instruction state in dense parallel slices indexed by a compact id, so
// the scheduler's inner loop walks a few cache lines and a bitmask instead
// of a scattered linked structure.
//
// Identity. An infID packs a uint32 slot index with a uint32 generation
// (gen<<32 | idx). Slot 0's zero value is never a valid id because
// generations start at 1, so infID(0) doubles as the nil reference. Slots
// are recycled through the same freeAfter/graveyard discipline the pooled
// records used; recycling bumps the slot's generation, so any reference
// that illegally outlives its record fails the generation check loudly
// (*core.InvariantError, recovered into *SimError at the run boundary)
// instead of silently reading a younger instruction's state.
//
// Wakeup. Readiness is no longer recomputed per scan: an entry entering a
// reservation station registers with each still-unissued producer (an
// intrusive list threaded through the store, one node per (consumer, source)
// pair) and, for loads, with the store-disambiguation watermark ring. When
// the last dependency resolves, the entry's ready cycle — identical to what
// the old readiness() would have computed at issue time, because every term
// is fixed once the producers have issued — is computed once and the entry's
// bit is set in its cluster's ready mask. Issue scans the mask with
// bits.TrailingZeros64 in age order (mask bit order == age order within a
// cluster) and re-reads the scanned word after every issue so a store
// issuing earlier in the scan can unblock a younger load in the same cycle,
// exactly as the per-entry recompute allowed.

import (
	"fmt"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

// infID is a generation-checked reference to an inflight store slot.
// 0 is the nil reference (generations start at 1).
type infID uint64

const noID infID = 0

// flag bits of infStore.flags.
const (
	fFromTC uint16 = 1 << iota
	fInRS
	fIssued
	fRetired
	fIsLoad
	fIsStore
	fMispredict
	fCritFwd
	// fResolved marks an RS entry whose dependencies are all known: its
	// readyAt/critSrc fields are final. If readyAt is still in the future
	// the entry waits in its cluster's ready heap; otherwise it is mask-set.
	fResolved
	// fReady marks a resolved entry whose ready-mask bit is set (readyAt has
	// arrived): the issue scan sees it. fResolved without fReady means the
	// entry is parked in the ready heap.
	fReady
)

// infStore holds every in-flight instruction's state in parallel slices
// indexed by slot. The hot block is what issue/nextEvent/retire scan every
// cycle; the cold block is touched once per pipeline stage per instruction.
// The store itself is transient machine state: snapshots are only legal at
// drained boundaries where no slot is live, so none of it is serialized.
type infStore struct {
	gen []uint32 // current generation per slot; bumped on release

	// Hot: scanned every cycle.
	flags    []uint16
	class    []isa.Class // cached rec.Inst.Op.Class(); read per issue-scan hit
	cluster  []int32
	resultAt []int64
	doneAt   []int64
	readyAt  []int64 // final ready cycle once fResolved

	// Wakeup bookkeeping.
	waitCount  []int32  // unresolved dependencies while in RS
	rsSlot     []int32  // position in rsEntries[cluster] while in RS
	waiterHead []uint32 // head of this producer's waiter list (node+1; 0 = none)
	waiterNext []uint32 // per node (slot*2+src): next node+1
	loadNext   []uint32 // store-barrier wait list links (slot+1; 0 = none)
	barrier    []uint64 // stores: own disambiguation seq; loads: newest older store seq

	// Cold: touched at rename/dispatch/issue/retire only.
	rec           []emu.Committed
	profile       []trace.Profile
	group         []uint64
	ctrl          []uint8 // cached decode-cache control kind; read at fetch
	station       []int32
	renameReady   []int64
	dispatchReady []int64
	rfReady       []int64
	src           [][2]isa.Reg
	dest          []isa.Reg // cached rec.Inst.Dest(); read at rename and retire
	prod          [][2]infID
	prevStore     []infID
	critProd      []infID
	critSrc       []uint8
	freeAfter     []uint64

	free []uint32 // recycled slots
}

// id returns the current reference for a live slot.
func (s *infStore) id(idx uint32) infID {
	return infID(uint64(s.gen[idx])<<32 | uint64(idx))
}

// index resolves id to its slot, panicking *core.InvariantError when the
// slot has been recycled since id was created (use-after-free detection).
func (s *infStore) index(id infID) uint32 {
	idx := uint32(id)
	if idx >= uint32(len(s.gen)) || uint32(id>>32) != s.gen[idx] {
		s.stale(id)
	}
	return idx
}

// stale reports a generation-check failure out of line so the check itself
// stays allocation-free on the hot path.
//
//ctcp:coldpath
func (s *infStore) stale(id infID) {
	idx := uint32(id)
	gen := uint32(0)
	if idx < uint32(len(s.gen)) {
		gen = s.gen[idx]
	}
	panic(&core.InvariantError{Msg: fmt.Sprintf(
		"pipeline: stale inflight id %#x (slot %d, generation %d, store generation %d)",
		uint64(id), idx, uint32(id>>32), gen)})
}

// alloc hands out a slot. Steady state pops the free list; the store only
// grows while the in-flight window ramps up (bounded by ROB size plus
// graveyard slack), so the grow path is cold.
//
// Recycled slots are NOT zeroed: every field is either fully written before
// its first read in the new life, or provably zero at release time. The
// discipline, field by field:
//
//   - rec, class, dest, src, ctrl, cluster, group, profile, resultAt,
//     doneAt, flags: fully assigned in newInflight (flags as one whole-word
//     store, never |= on a recycled slot).
//   - renameReady: written by fetch for every consumed slot before the id
//     enters fetchQ.
//   - rfReady, dispatchReady, prevStore: fully assigned at rename.
//   - barrier: assigned at rename for loads and stores, and only ever read
//     under fIsLoad/fIsStore.
//   - station, rsSlot: assigned at insertRS before any read.
//   - waitCount: assigned (not accumulated) in linkDeps.
//   - readyAt, critSrc: assigned in resolve, which every instruction passes
//     through before its ready-mask bit (the only gate to reading them) is
//     set.
//   - critProd: assigned in resolve when fCritFwd is set, read only under
//     fCritFwd, and severed at retire.
//   - prod: per-source entries are written at rename only for in-flight
//     producers, but retire zeroes the whole pair, so a recycled slot always
//     starts from [noID, noID].
//   - waiterHead/waiterNext/loadNext: self-cleaning. This model fetches the
//     committed stream only (no wrong-path work is ever discarded), so every
//     instruction issues before it retires: wakeWaiters drains and zeroes the
//     producer's waiter list at issue, and the store watermark drains and
//     zeroes every registered load link. A slot can only be released retired,
//     hence with all three at zero.
//   - freeAfter: assigned at retire before reclaim reads it.
func (s *infStore) alloc() uint32 {
	n := len(s.free)
	if n == 0 {
		return s.grow()
	}
	idx := s.free[n-1]
	s.free = s.free[:n-1]
	return idx
}

// grow appends one zeroed slot to every parallel slice while the window
// ramps up to its steady-state population.
//
//ctcp:coldpath
func (s *infStore) grow() uint32 {
	idx := uint32(len(s.gen))
	s.gen = append(s.gen, 1)
	s.flags = append(s.flags, 0)
	s.class = append(s.class, 0)
	s.cluster = append(s.cluster, 0)
	s.resultAt = append(s.resultAt, 0)
	s.doneAt = append(s.doneAt, 0)
	s.readyAt = append(s.readyAt, 0)
	s.waitCount = append(s.waitCount, 0)
	s.rsSlot = append(s.rsSlot, 0)
	s.waiterHead = append(s.waiterHead, 0)
	s.waiterNext = append(s.waiterNext, 0, 0)
	s.loadNext = append(s.loadNext, 0)
	s.barrier = append(s.barrier, 0)
	s.rec = append(s.rec, emu.Committed{})
	s.profile = append(s.profile, trace.Profile{})
	s.group = append(s.group, 0)
	s.ctrl = append(s.ctrl, 0)
	s.station = append(s.station, 0)
	s.renameReady = append(s.renameReady, 0)
	s.dispatchReady = append(s.dispatchReady, 0)
	s.rfReady = append(s.rfReady, 0)
	s.src = append(s.src, [2]isa.Reg{})
	s.dest = append(s.dest, isa.NoReg)
	s.prod = append(s.prod, [2]infID{})
	s.prevStore = append(s.prevStore, noID)
	s.critProd = append(s.critProd, noID)
	s.critSrc = append(s.critSrc, 0)
	s.freeAfter = append(s.freeAfter, 0)
	return idx
}

// release recycles a slot: the generation bump invalidates every outstanding
// reference to the record that lived there.
func (s *infStore) release(idx uint32) {
	s.gen[idx]++
	s.free = append(s.free, idx)
}

// live reports how many slots are currently allocated (tests).
func (s *infStore) live() int { return len(s.gen) - len(s.free) }
