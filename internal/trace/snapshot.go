package trace

import (
	"ctcp/internal/snap"
)

// snapshotSlot / restoreSlot encode one instruction slot, including the
// per-instruction FDRT Profile fields — the feedback state that makes
// retire-time assignment reproducible mid-run.
func snapshotSlot(w *snap.Writer, s *Slot) {
	w.U64(s.PC)
	s.Inst.Snapshot(w)
	w.Bool(s.Taken)
	w.Int(s.SlotIndex)
	w.Int(s.Cluster)
	w.U8(s.Profile.Role)
	w.U8(s.Profile.ChainCluster)
}

func restoreSlot(r *snap.Reader, s *Slot) {
	s.PC = r.U64()
	s.Inst.Restore(r)
	s.Taken = r.Bool()
	s.SlotIndex = r.Int()
	s.Cluster = r.Int()
	s.Profile.Role = r.U8()
	s.Profile.ChainCluster = r.U8()
}

// snapshotTrace encodes one trace cache line.
func snapshotTrace(w *snap.Writer, t *Trace) {
	w.U64(t.StartPC)
	w.Int(len(t.Slots))
	for i := range t.Slots {
		snapshotSlot(w, &t.Slots[i])
	}
	w.Int(t.Blocks)
	w.Bool(t.EndsIndirect)
	w.U64(t.Fetches)
}

// restoreTrace decodes one trace cache line into a fresh Trace whose slot
// array is sized maxLen, matching what Builder.finish would have produced.
func restoreTrace(r *snap.Reader, maxLen int) *Trace {
	t := &Trace{StartPC: r.U64()}
	n := r.Int()
	if r.Err() != nil {
		return t
	}
	if n < 0 || n > maxLen {
		r.Failf("trace line has %d slots (max %d)", n, maxLen)
		return t
	}
	t.Slots = make([]Slot, n, maxLen)
	for i := range t.Slots {
		restoreSlot(r, &t.Slots[i])
	}
	t.Blocks = r.Int()
	t.EndsIndirect = r.Bool()
	t.Fetches = r.U64()
	return t
}

// Snapshot serializes the trace cache: geometry fingerprint, every line
// (including per-slot Profile feedback state), per-way LRU stamps, and the
// activity counters.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.Begin("tracecache")
	w.Int(c.cfg.Lines)
	w.Int(c.cfg.Ways)
	w.Int(c.cfg.MaxLen)
	w.Int(c.cfg.MaxBlocks)
	w.Int(c.sets)
	for set := 0; set < c.sets; set++ {
		for way := 0; way < c.cfg.Ways; way++ {
			t := c.lines[set][way]
			w.Bool(t != nil)
			if t != nil {
				snapshotTrace(w, t)
			}
			w.U64(c.lru[set][way])
		}
	}
	w.U64(c.stamp)
	w.U64(c.S.Lookups)
	w.U64(c.S.Hits)
	w.U64(c.S.Installs)
	w.U64(c.S.Replaced)
	w.U64(c.S.Updated)
	w.U64(c.S.Evictions)
	w.End()
}

// Restore rebuilds the trace cache contents from r into a cache
// constructed with the same configuration. Restored lines are fresh
// allocations; the builder's recycling pools start empty after a restore
// and refill as lines are displaced.
func (c *Cache) Restore(r *snap.Reader) {
	r.Begin("tracecache")
	r.ExpectInt("trace cache lines", c.cfg.Lines)
	r.ExpectInt("trace cache ways", c.cfg.Ways)
	r.ExpectInt("trace cache max length", c.cfg.MaxLen)
	r.ExpectInt("trace cache max blocks", c.cfg.MaxBlocks)
	r.ExpectInt("trace cache sets", c.sets)
	if r.Err() != nil {
		return
	}
	for set := 0; set < c.sets; set++ {
		for way := 0; way < c.cfg.Ways; way++ {
			if r.Bool() {
				c.lines[set][way] = restoreTrace(r, c.cfg.MaxLen)
			} else {
				c.lines[set][way] = nil
			}
			c.lru[set][way] = r.U64()
			if r.Err() != nil {
				return
			}
		}
	}
	c.stamp = r.U64()
	c.S.Lookups = r.U64()
	c.S.Hits = r.U64()
	c.S.Installs = r.U64()
	c.S.Replaced = r.U64()
	c.S.Updated = r.U64()
	c.S.Evictions = r.U64()
	r.End()
}

// Snapshot serializes the trace under construction: the pending slots and
// block/terminator state. The recycled-line pools (reuse, free) are scratch
// and are excluded — after a restore they start empty and refill from
// Install displacements.
func (b *Builder) Snapshot(w *snap.Writer) {
	w.Begin("tracebuilder")
	w.Int(b.cfg.MaxLen)
	w.Int(b.cfg.MaxBlocks)
	w.Int(len(b.slots))
	for i := range b.slots {
		snapshotSlot(w, &b.slots[i])
	}
	w.Int(b.blocks)
	w.Bool(b.indirect)
	_ = b.reuse // scratch: recycled line storage, rebuilt empty on restore
	_ = b.free  // scratch: recycled line pool, rebuilt empty on restore
	w.End()
}

// Restore rebuilds the in-progress trace from r.
func (b *Builder) Restore(r *snap.Reader) {
	r.Begin("tracebuilder")
	r.ExpectInt("trace builder max length", b.cfg.MaxLen)
	r.ExpectInt("trace builder max blocks", b.cfg.MaxBlocks)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 || n > b.cfg.MaxLen {
		r.Failf("trace builder has %d pending slots (max %d)", n, b.cfg.MaxLen)
		return
	}
	if cap(b.slots) < b.cfg.MaxLen {
		b.slots = make([]Slot, 0, b.cfg.MaxLen)
	}
	b.slots = b.slots[:n]
	for i := range b.slots {
		restoreSlot(r, &b.slots[i])
	}
	b.blocks = r.Int()
	b.indirect = r.Bool()
	b.reuse = nil
	b.free = nil
	r.End()
}
