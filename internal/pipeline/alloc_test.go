package pipeline

// Zero-allocation regression test for the cycle-model hot path. The hotalloc
// lint rule pins the property structurally (no allocating constructs reachable
// from //ctcp:hotpath); this test pins it dynamically: after warm-up, whole
// simulated cycles must perform no heap allocation at all. Together they catch
// both what the analyzer models and what it cannot (e.g. allocations inside
// cross-package callees).

import (
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/workload"
)

func TestCycleLoopZeroAlloc(t *testing.T) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip kernel missing")
	}
	prog := bm.ProgramFor(500_000)
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	p := New(emu.New(prog), cfg)

	// Warm up past pool ramp-up, pcTable growth and trace-cache fill: the
	// amortized //ctcp:coldpath sites are allowed to allocate here.
	for i := 0; i < 20_000 && !p.done(); i++ {
		step(p)
	}
	if p.done() {
		t.Fatal("stream exhausted during warm-up; enlarge the program")
	}

	const cyclesPerRun = 200
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < cyclesPerRun && !p.done(); i++ {
			step(p)
		}
	})
	if p.done() {
		t.Fatal("stream exhausted during measurement; enlarge the program")
	}
	if allocs != 0 {
		t.Fatalf("steady-state cycle loop allocated: %.1f allocs per %d cycles (want 0)", allocs, cyclesPerRun)
	}
}

// step advances the model exactly as Run does, minus the pipetrace and
// watchdog bookkeeping.
func step(p *Pipeline) {
	if p.cycle() {
		p.now++
	} else {
		p.now = p.nextEvent()
	}
}
