package sample

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

func benchProgram(t testing.TB, name string, insts uint64) *workloadProg {
	t.Helper()
	bm, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return &workloadProg{bm: bm, insts: insts}
}

type workloadProg struct {
	bm    workload.Benchmark
	insts uint64
}

func fdrtConfig() pipeline.Config {
	return pipeline.DefaultConfig().WithStrategy(core.FDRT, false)
}

// TestSampledIPCAccuracy: the sampled estimate must land within 2% of the
// monolithic run's IPC on the longest kernel. The entry region is measured
// exactly (it owns the real warm-up ramp); later regions measure a warmed
// window and scale it over their span. The simulator is deterministic, so
// the observed error is a fixed property of this configuration, not a
// statistical bound.
func TestSampledIPCAccuracy(t *testing.T) {
	const insts = 400_000
	p := benchProgram(t, "mcf", insts)

	cfg := fdrtConfig()
	cfg.MaxInsts = insts
	full := pipeline.RunProgram(p.bm.ProgramFor(insts), cfg)
	fullIPC := full.IPC()

	res, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), Options{
		Interval: 50_000,
		Detail:   25_000,
		Warmup:   12_500,
		Workers:  2,
		MaxInsts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInsts != insts {
		t.Fatalf("sampled run covered %d insts, want %d", res.TotalInsts, insts)
	}
	if len(res.Regions) != 8 {
		t.Fatalf("got %d regions, want 8", len(res.Regions))
	}
	ipc := res.IPC()
	if relErr := math.Abs(ipc-fullIPC) / fullIPC; relErr > 0.02 {
		t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.2f%% exceeds 2%%",
			ipc, fullIPC, 100*relErr)
	}
}

// TestSampledDetailWindow: Detail < Interval scales the estimate over each
// region's span, and only Detail instructions per region run in detail.
func TestSampledDetailWindow(t *testing.T) {
	const insts = 40_000
	p := benchProgram(t, "gzip", insts)
	res, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), Options{
		Interval: 10_000,
		Detail:   2_500,
		Workers:  2,
		MaxInsts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Region 0 runs its whole span in detail; the rest run the 2500-inst
	// window and scale by 4.
	if want := uint64(10_000 + 3*2_500); res.DetailedInsts != want {
		t.Errorf("detailed insts %d, want %d", res.DetailedInsts, want)
	}
	for _, reg := range res.Regions {
		wantInsts := uint64(2_500)
		if reg.Index == 0 {
			wantInsts = 10_000
		}
		if reg.Insts != wantInsts || reg.SpanInsts != 10_000 {
			t.Errorf("region %d: detail %d span %d, want %d/10000", reg.Index, reg.Insts, reg.SpanInsts, wantInsts)
		}
		want := float64(reg.Cycles) * float64(reg.SpanInsts) / float64(reg.Insts)
		if math.Abs(reg.EstCycles-want) > 1e-9 {
			t.Errorf("region %d: estimated %.1f cycles, want %.1f", reg.Index, reg.EstCycles, want)
		}
	}
	if res.Stats.Retired != res.DetailedInsts {
		t.Errorf("summed stats retired %d, want %d", res.Stats.Retired, res.DetailedInsts)
	}
}

// TestSampledDeterministic: worker scheduling must not leak into the
// result — two runs with a full pool are identical.
func TestSampledDeterministic(t *testing.T) {
	const insts = 30_000
	p := benchProgram(t, "mcf", insts)
	opts := Options{Interval: 6_000, Detail: 2_000, Workers: 4, MaxInsts: insts}
	a, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p.bm.ProgramFor(insts), fdrtConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two sampled runs with 4 workers produced different results")
	}
}

// TestSampledOptionValidation: the two required knobs fail loudly.
func TestSampledOptionValidation(t *testing.T) {
	p := benchProgram(t, "gzip", 1_000)
	if _, err := Run(p.bm.ProgramFor(1_000), fdrtConfig(), Options{MaxInsts: 1_000}); err == nil {
		t.Error("Interval 0 accepted")
	}
	if _, err := Run(p.bm.ProgramFor(1_000), fdrtConfig(), Options{Interval: 100}); err == nil {
		t.Error("MaxInsts 0 accepted")
	}
}

// measureSpeedup runs the monolithic and sampled simulations once each and
// returns their wall times.
func measureSpeedup(tb testing.TB, insts uint64, workers int) (monolithic, sampled time.Duration, fullIPC, sampleIPC float64) {
	tb.Helper()
	bm, ok := workload.ByName("mcf")
	if !ok {
		tb.Fatal("mcf missing")
	}
	prog := bm.ProgramFor(insts)

	cfg := fdrtConfig()
	cfg.MaxInsts = insts
	t0 := time.Now()
	full := pipeline.RunProgram(prog, cfg)
	monolithic = time.Since(t0)

	t0 = time.Now()
	res, err := Run(prog, fdrtConfig(), Options{
		Interval: insts / 8,
		Detail:   insts / 16,
		Warmup:   insts / 32,
		Workers:  workers,
		MaxInsts: insts,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sampled = time.Since(t0)
	return monolithic, sampled, full.IPC(), res.IPC()
}

// TestSampledSpeedup asserts the headline acceptance number: sampled mode
// at 4 workers finishes the longest kernel at least 2x faster than the
// monolithic detailed run. Timing assertions need real parallel hardware
// and an uninstrumented build, so the test skips itself on small machines,
// under -race, and in -short runs.
func TestSampledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing test skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("timing test needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	mono, samp, fullIPC, sampleIPC := measureSpeedup(t, 400_000, 4)
	speedup := float64(mono) / float64(samp)
	t.Logf("monolithic %v, sampled %v, speedup %.2fx, IPC %.4f vs %.4f",
		mono, samp, speedup, fullIPC, sampleIPC)
	if speedup < 2 {
		t.Errorf("sampled speedup %.2fx below the 2x bound (monolithic %v, sampled %v)", speedup, mono, samp)
	}
	if relErr := math.Abs(sampleIPC-fullIPC) / fullIPC; relErr > 0.02 {
		t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.2f%% exceeds 2%%",
			sampleIPC, fullIPC, 100*relErr)
	}
}

// BenchmarkSampled reports the sampled-vs-monolithic speedup as a custom
// metric; the microbenchmark harness records it into BENCH_pipeline.json.
func BenchmarkSampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mono, samp, _, _ := measureSpeedup(b, 200_000, 4)
		b.ReportMetric(float64(mono)/float64(samp), "speedup")
	}
}
