// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: harmonic-mean speedups (the paper's averaging
// convention), percentage formatting, and plain-text table rendering for
// regenerated tables and figures.
package stats

import (
	"fmt"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs (the paper's convention for
// averaging speedups; footnote 3). Zero or negative entries are rejected by
// returning 0, which keeps a broken experiment visible rather than silently
// plausible.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a fraction as a percentage with two decimals ("61.61%").
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats a float with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Table is a plain-text table with a title and optional trailing notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces an aligned, monospace rendering.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				if i == 0 {
					sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
				} else {
					sb.WriteString(fmt.Sprintf("%*s", widths[i], c))
				}
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	// Separator width = column widths + one 2-space gap between each
	// adjacent pair (column 0 has no gap before it).
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}
