// Fixture for the configvalidate analyzer's missing-method case: a Config
// struct with no Validate method is itself a diagnostic, reported at the type
// declaration.
package fixture

type Config struct { // want:configvalidate
	ROBSize int
}

func use(c Config) int { return c.ROBSize }
