; conformance/stress: long serial dependence chains (forwarding latency is
; on the critical path for every instruction).
        .entry main
main:   movi    r1, 1
        movi    r2, 0
        movi    r3, 50
ch:     add     r1, r1, r4
        add     r4, 3, r5
        sub     r5, r1, r6
        add     r6, r4, r7
        xor     r7, r5, r8
        add     r8, 1, r1
        add     r2, r1, r2
        sub     r3, 1, r3
        bne     r3, ch
        out     r2
        halt
