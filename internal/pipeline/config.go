// Package pipeline is the cycle-level timing model of the clustered trace
// cache processor. It consumes the committed instruction stream produced by
// the functional emulator (the paper's sim-fast interface), models the
// front end (trace cache + instruction cache fetch, hybrid branch
// prediction, decode/rename), slot-based or issue-time cluster steering,
// per-cluster reservation stations and special-purpose functional units,
// distance-dependent inter-cluster data forwarding, the data-memory system
// (store buffer with load forwarding, conservative load disambiguation,
// nonblocking caches), and in-order retirement feeding the fill unit.
package pipeline

import (
	"fmt"

	"ctcp/internal/bpred"
	"ctcp/internal/cachesim"
	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/trace"
)

// Config collects every architectural parameter of Table 7 plus the latency
// experiment knobs of Figure 5.
type Config struct {
	Strategy core.StrategyKind
	// DisableChains ablates FDRT's inter-trace chain feedback (§5.3).
	DisableChains bool
	Geom          cluster.Geometry
	RS            cluster.RSConfig

	ROBSize     int
	FetchWidth  int // also decode/rename/retire width (Table 7: 16)
	RetireWidth int

	FetchStages  int // trace cache / icache access depth (3)
	DecodeStages int
	RenameStages int
	// SteerStages is the extra issue-time dependency-analysis/steering/
	// routing latency charged when Strategy.SteersAtIssue() (0 = ideal,
	// 4 = realistic; §2.3).
	SteerStages int
	RFLat       int // register file read latency (2)

	Trace trace.Config
	BP    bpred.Config
	Mem   cachesim.HierarchyConfig

	ICache        cachesim.Config
	ICacheMissLat int // extra fetch cycles on an L1I miss (unified L2 service)
	BTBMissBubble int // fetch bubble when a taken branch misses the BTB

	StoreBuffer int // entries (32)
	LoadQueue   int // entries (32)

	// Figure 5 latency-removal experiment knobs.
	ZeroAllFwdLat  bool // all data forwarding is same-cycle
	ZeroCritFwdLat bool // only the last-arriving (critical) forward is free
	ZeroIntraTrace bool // intra-trace (same fetch group) forwards are free
	ZeroInterTrace bool // inter-trace forwards are free
	// MaxInsts bounds the committed instructions consumed (0 = run the
	// stream dry).
	MaxInsts uint64
	// TraceCycles records a per-cycle occupancy snapshot for the first N
	// active cycles into Stats.PipeTrace (0 = disabled); a debugging and
	// teaching aid exposed through ctcpsim -pipetrace.
	TraceCycles int
	// RetireHook, when non-nil, observes every retired instruction in
	// program order with the same record the fill unit receives. It exists
	// for differential testing and external tracing; it must not retain the
	// RetireInfo's pointers beyond the call. internal/conformance builds the
	// retirement-stream half of the ISA conformance contract on this hook:
	// the observed records must be byte-identical to the emulator's own
	// committed stream under every strategy (see DESIGN.md §11).
	RetireHook func(core.RetireInfo)
}

// Validate audits every exported field before a Config reaches the cycle
// model, so a zero ROB size or a negative latency fails as a named
// configuration error instead of a mid-run invariant panic. New calls it and
// panics *core.InvariantError on failure; the run boundary (RunProgramErr)
// recovers that into a typed error. The configvalidate lint rule enforces
// that every exported field is referenced here — fields with genuinely no
// invariant carry an explicit `_ = c.Field` audit so additions cannot be
// silently skipped.
func (c Config) Validate() error {
	if c.Strategy < core.Base || c.Strategy > core.FDRTNoPin {
		return fmt.Errorf("config: unknown strategy %d", int(c.Strategy))
	}
	if c.DisableChains && !c.Strategy.UsesChains() {
		return fmt.Errorf("config: DisableChains is meaningless for strategy %v (no chain feedback to ablate)", c.Strategy)
	}
	if err := validateGeometry(c.Geom); err != nil {
		return err
	}
	if c.RS.Entries <= 0 || c.RS.WritePorts <= 0 {
		return fmt.Errorf("config: reservation stations need positive Entries and WritePorts (got %d, %d)", c.RS.Entries, c.RS.WritePorts)
	}
	if c.ROBSize <= 0 {
		return fmt.Errorf("config: ROBSize %d must be positive", c.ROBSize)
	}
	if c.FetchWidth <= 0 {
		return fmt.Errorf("config: FetchWidth %d must be positive", c.FetchWidth)
	}
	if c.RetireWidth <= 0 {
		return fmt.Errorf("config: RetireWidth %d must be positive", c.RetireWidth)
	}
	if c.FetchStages < 0 || c.DecodeStages < 0 || c.RenameStages < 0 || c.SteerStages < 0 {
		return fmt.Errorf("config: negative stage count (fetch %d, decode %d, rename %d, steer %d)",
			c.FetchStages, c.DecodeStages, c.RenameStages, c.SteerStages)
	}
	if c.RFLat < 0 {
		return fmt.Errorf("config: RFLat %d must be non-negative", c.RFLat)
	}
	if err := validateTrace(c.Trace); err != nil {
		return err
	}
	if err := validateBP(c.BP); err != nil {
		return err
	}
	if err := validateHierarchy(c.Mem); err != nil {
		return err
	}
	if err := validateCache("ICache", c.ICache); err != nil {
		return err
	}
	if c.ICacheMissLat < 0 {
		return fmt.Errorf("config: ICacheMissLat %d must be non-negative", c.ICacheMissLat)
	}
	if c.BTBMissBubble < 0 {
		return fmt.Errorf("config: BTBMissBubble %d must be non-negative", c.BTBMissBubble)
	}
	if c.StoreBuffer <= 0 {
		return fmt.Errorf("config: StoreBuffer %d must be positive", c.StoreBuffer)
	}
	if c.LoadQueue <= 0 {
		return fmt.Errorf("config: LoadQueue %d must be positive", c.LoadQueue)
	}
	if c.ZeroAllFwdLat && (c.ZeroCritFwdLat || c.ZeroIntraTrace || c.ZeroInterTrace) {
		return fmt.Errorf("config: ZeroAllFwdLat subsumes the selective forwarding knobs; set one or the other")
	}
	if c.TraceCycles < 0 {
		return fmt.Errorf("config: TraceCycles %d must be non-negative", c.TraceCycles)
	}
	// No invariant: any committed-instruction budget and any hook (or none)
	// are legal.
	_ = c.MaxInsts
	_ = c.RetireHook
	return nil
}

func validateGeometry(g cluster.Geometry) error {
	if g.Clusters <= 0 || g.Width <= 0 {
		return fmt.Errorf("config: geometry needs positive Clusters and Width (got %d, %d)", g.Clusters, g.Width)
	}
	if g.HopLat < 0 || g.IntraLat < 0 {
		return fmt.Errorf("config: geometry latencies must be non-negative (hop %d, intra %d)", g.HopLat, g.IntraLat)
	}
	return nil
}

func validateTrace(t trace.Config) error {
	if t.Lines <= 0 || t.Ways <= 0 || t.MaxLen <= 0 || t.MaxBlocks <= 0 {
		return fmt.Errorf("config: trace cache needs positive Lines/Ways/MaxLen/MaxBlocks (got %d/%d/%d/%d)",
			t.Lines, t.Ways, t.MaxLen, t.MaxBlocks)
	}
	if t.AccessLat < 0 {
		return fmt.Errorf("config: trace cache AccessLat %d must be non-negative", t.AccessLat)
	}
	return nil
}

func validateBP(b bpred.Config) error {
	if b.BimodalEntries <= 0 || b.GshareEntries <= 0 || b.ChooserEntries <= 0 {
		return fmt.Errorf("config: branch predictor tables need positive sizes (bimodal %d, gshare %d, chooser %d)",
			b.BimodalEntries, b.GshareEntries, b.ChooserEntries)
	}
	if b.HistoryBits <= 0 || b.HistoryBits > 32 {
		return fmt.Errorf("config: HistoryBits %d out of range (1..32)", b.HistoryBits)
	}
	if b.BTBEntries <= 0 || b.BTBWays <= 0 || b.BTBEntries%b.BTBWays != 0 {
		return fmt.Errorf("config: BTB needs positive entries divisible by ways (got %d entries, %d ways)", b.BTBEntries, b.BTBWays)
	}
	if b.RASEntries <= 0 {
		return fmt.Errorf("config: RASEntries %d must be positive", b.RASEntries)
	}
	return nil
}

func validateHierarchy(h cachesim.HierarchyConfig) error {
	if err := validateCache("L1D", h.L1); err != nil {
		return err
	}
	if err := validateCache("L2", h.L2); err != nil {
		return err
	}
	if err := validateCache("TLB", h.TLB); err != nil {
		return err
	}
	if h.L1HitLat < 0 || h.TLBHitLat < 0 || h.TLBMissLat < 0 || h.L2Lat < 0 || h.MemLat < 0 {
		return fmt.Errorf("config: memory latencies must be non-negative")
	}
	if h.MSHRs <= 0 || h.Ports <= 0 {
		return fmt.Errorf("config: hierarchy needs positive MSHRs and Ports (got %d, %d)", h.MSHRs, h.Ports)
	}
	return nil
}

// validateCache mirrors cachesim.New's panics as errors so a bad geometry is
// reported before any model state is built.
func validateCache(name string, cfg cachesim.Config) error {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return fmt.Errorf("config: %s sets %d not a positive power of two", name, cfg.Sets)
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return fmt.Errorf("config: %s line size %d not a positive power of two", name, cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return fmt.Errorf("config: %s ways %d must be positive", name, cfg.Ways)
	}
	return nil
}

// DefaultConfig returns the paper's baseline CTCP (Table 7): 16-wide, four
// four-wide clusters on a chain interconnect with 2-cycle hops.
func DefaultConfig() Config {
	return Config{
		Strategy:     core.Base,
		Geom:         cluster.DefaultGeometry(),
		RS:           cluster.DefaultRSConfig(),
		ROBSize:      128,
		FetchWidth:   16,
		RetireWidth:  16,
		FetchStages:  3,
		DecodeStages: 1,
		RenameStages: 1,
		SteerStages:  0,
		RFLat:        2,
		Trace:        trace.DefaultConfig(),
		BP:           bpred.Default(),
		Mem:          cachesim.DefaultHierarchy(),
		ICache: cachesim.Config{
			Name: "L1I", Sets: 4 * cachesim.KB / 64 / 4, Ways: 4, LineSize: 64,
		},
		ICacheMissLat: 8,
		BTBMissBubble: 2,
		StoreBuffer:   32,
		LoadQueue:     32,
	}
}

// WithStrategy returns a copy configured for the given strategy, charging
// the realistic steering latency for issue-time steering unless idealLatency
// is requested.
func (c Config) WithStrategy(k core.StrategyKind, idealIssueLatency bool) Config {
	c.Strategy = k
	if k.SteersAtIssue() && !idealIssueLatency {
		// Four cycles of dependency analysis, steering and routing for a
		// 16-wide machine; halved for the 8-wide two-cluster variant.
		c.SteerStages = 4
		if c.Geom.TotalWidth() <= 8 {
			c.SteerStages = 2
		}
	} else {
		c.SteerStages = 0
	}
	return c
}
