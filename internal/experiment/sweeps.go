package experiment

import (
	"fmt"

	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/stats"
	"ctcp/internal/workload"
)

// SweepResult holds one structural-parameter sweep: for each parameter value,
// the harmonic-mean base IPC and FDRT speedup over that point's own base,
// across the six selected benchmarks.
type SweepResult struct {
	Param  string
	Points []SweepPoint
}

// SweepPoint is one parameter setting's aggregate result.
type SweepPoint struct {
	Label       string
	BaseIPC     float64 // mean base IPC
	FDRTSpeedup float64 // HM speedup of FDRT over base at this point
}

// sweep evaluates FDRT against base across parameter points.
func sweep(r *Runner, param string, points []struct {
	label string
	mod   func(*pipeline.Config)
}) *SweepResult {
	res := &SweepResult{Param: param}
	for _, pt := range points {
		base := BaseConfig()
		pt.mod(&base)
		fdrt := base.WithStrategy(core.FDRT, false)
		keyB := fmt.Sprintf("sweep/%s/%s/base", param, pt.label)
		keyF := fmt.Sprintf("sweep/%s/%s/fdrt", param, pt.label)
		r.Prefetch(workload.Selected(), map[string]pipeline.Config{keyB: base, keyF: fdrt})
		var ipcs, speeds []float64
		for _, bm := range workload.Selected() {
			b := r.Run(bm, keyB, base)
			f := r.Run(bm, keyF, fdrt)
			if !statsOK(b, f) {
				continue
			}
			ipcs = append(ipcs, b.IPC())
			speeds = append(speeds, speedup(b, f))
		}
		res.Points = append(res.Points, SweepPoint{
			Label:       pt.label,
			BaseIPC:     stats.Mean(ipcs),
			FDRTSpeedup: stats.HarmonicMean(speeds),
		})
	}
	return res
}

// SweepTraceCache varies the trace cache capacity (the paper's 1K-entry
// design point in context): a smaller cache loses chain profile bits with
// the evicted lines, weakening the feedback loop.
func SweepTraceCache(r *Runner) *SweepResult {
	return sweep(r, "trace-cache-lines", []struct {
		label string
		mod   func(*pipeline.Config)
	}{
		{"128", func(c *pipeline.Config) { c.Trace.Lines = 128 }},
		{"512", func(c *pipeline.Config) { c.Trace.Lines = 512 }},
		{"1024", func(c *pipeline.Config) { c.Trace.Lines = 1024 }},
		{"4096", func(c *pipeline.Config) { c.Trace.Lines = 4096 }},
	})
}

// SweepROB varies the instruction window (Table 7: 128 entries).
func SweepROB(r *Runner) *SweepResult {
	return sweep(r, "rob-entries", []struct {
		label string
		mod   func(*pipeline.Config)
	}{
		{"64", func(c *pipeline.Config) { c.ROBSize = 64 }},
		{"128", func(c *pipeline.Config) { c.ROBSize = 128 }},
		{"256", func(c *pipeline.Config) { c.ROBSize = 256 }},
	})
}

// SweepHopLatency varies the inter-cluster forwarding cost (Table 7:
// 2 cycles/hop): assignment matters more as hops get more expensive.
func SweepHopLatency(r *Runner) *SweepResult {
	return sweep(r, "hop-latency", []struct {
		label string
		mod   func(*pipeline.Config)
	}{
		{"1", func(c *pipeline.Config) { c.Geom.HopLat = 1 }},
		{"2", func(c *pipeline.Config) { c.Geom.HopLat = 2 }},
		{"4", func(c *pipeline.Config) { c.Geom.HopLat = 4 }},
	})
}

// Render formats the sweep.
func (s *SweepResult) Render() string {
	tab := &stats.Table{
		Title:  "Sweep: " + s.Param + " (six selected benchmarks)",
		Header: []string{s.Param, "base IPC", "FDRT speedup"},
	}
	for _, p := range s.Points {
		tab.AddRow(p.Label, stats.F3(p.BaseIPC), stats.F3(p.FDRTSpeedup))
	}
	return tab.Render()
}
