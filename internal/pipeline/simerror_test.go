package pipeline

import (
	"errors"
	"strings"
	"testing"

	"ctcp/internal/workload"
)

func TestRunProgramErrSuccess(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	cfg := DefaultConfig()
	cfg.MaxInsts = 10_000
	s, err := RunProgramErr(bm.ProgramFor(10_000), cfg)
	if err != nil {
		t.Fatalf("RunProgramErr failed on a healthy config: %v", err)
	}
	if s == nil || s.Retired != 10_000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRunProgramErrRecoversPanic(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	cfg := DefaultConfig()
	cfg.Geom.Clusters = 0 // no valid steering target: the model panics
	cfg.MaxInsts = 5_000
	s, err := RunProgramErr(bm.ProgramFor(5_000), cfg)
	if s != nil {
		t.Errorf("stats = %+v, want nil on aborted run", s)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *SimError", err, err)
	}
	if se.Reason == "" || se.Stack == "" {
		t.Errorf("SimError missing context: %+v", se)
	}
	if !strings.Contains(se.Error(), "simulation aborted") {
		t.Errorf("Error() = %q", se.Error())
	}
}

// TestRunProgramStillPanics pins the low-level contract: RunProgram itself
// does not swallow invariant violations — only the Err boundary does.
func TestRunProgramStillPanics(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	cfg := DefaultConfig()
	cfg.Geom.Clusters = 0
	cfg.MaxInsts = 5_000
	defer func() {
		if recover() == nil {
			t.Error("RunProgram did not panic on a pathological config")
		}
	}()
	RunProgram(bm.ProgramFor(5_000), cfg)
}
