package ctcp

import (
	"errors"
	"strings"
	"testing"
)

func TestFacadeAssembleAndRun(t *testing.T) {
	p, err := Assemble(`
        movi r1, 6
        movi r2, 7
        mul  r1, r2, r3
        out  r3
        halt`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(m.OutValues) != 1 || m.OutValues[0] != 42 {
		t.Fatalf("out = %v", m.OutValues)
	}
	if dis := Disassemble(p); !strings.Contains(dis, "mul r1, r2, r3") {
		t.Error("disassembly missing instruction")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(SPECint()) != 12 || len(MediaBench()) != 14 || len(AllBenchmarks()) != 26 {
		t.Error("suite sizes wrong")
	}
	if len(SelectedBenchmarks()) != 6 {
		t.Error("selected size wrong")
	}
	if _, ok := BenchmarkByName("twolf"); !ok {
		t.Error("BenchmarkByName failed")
	}
}

func TestFacadeRunBenchmark(t *testing.T) {
	bm, _ := BenchmarkByName("gzip")
	s := Run(bm, DefaultConfig().WithStrategy(FDRT, false), 20_000)
	if s.Retired != 20_000 {
		t.Errorf("retired %d", s.Retired)
	}
	if s.IPC() <= 0 {
		t.Error("no progress")
	}
}

func TestFacadeProgramBuilder(t *testing.T) {
	b := NewProgramBuilder()
	b.Movi(2, 5) // r2 = 5
	b.Out(2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.OutValues[0] != 5 {
		t.Errorf("out = %v", m.OutValues)
	}
}

func TestFacadeExperiments(t *testing.T) {
	e := NewExperiments(15_000)
	out := e.Table1().Render()
	if !strings.Contains(out, "Trace Cache Characteristics") {
		t.Error("experiment render missing title")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{Base, IssueTime, Friendly, FriendlyMiddle, FDRT, FDRTNoPin} {
		if s.String() == "unknown" {
			t.Errorf("strategy %d unnamed", s)
		}
	}
}

func TestFacadeRunErr(t *testing.T) {
	bm, _ := BenchmarkByName("gzip")
	s, err := RunErr(bm, DefaultConfig(), 10_000)
	if err != nil || s == nil || s.Retired != 10_000 {
		t.Fatalf("RunErr = %v, %v", s, err)
	}
	bad := DefaultConfig()
	bad.Geom.Clusters = 0
	s, err = RunErr(bm, bad, 5_000)
	if s != nil {
		t.Errorf("stats = %+v, want nil", s)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *SimError", err, err)
	}
}

func TestFacadeExperimentsObservability(t *testing.T) {
	e := NewExperiments(15_000)
	_ = e.Table1().Render()
	st := e.RunnerStats()
	if st.Started == 0 || st.Completed == 0 {
		t.Errorf("runner stats empty after an experiment: %+v", st)
	}
	if len(e.Failures()) != 0 || e.FailureSummary() != "" {
		t.Errorf("unexpected failures: %v", e.Failures())
	}
}
