package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
)

// Record is one persisted simulation result. The file is named by the run
// fingerprint (content addressing: the name *is* the identity of what was
// simulated), and the fingerprint is repeated inside the record so a renamed
// or hand-copied file can never impersonate a different run. Everything a
// human needs to audit the entry — benchmark, config name, budget, mode —
// rides along; the stats are the exact bytes-for-bytes JSON round-trip of
// the run's pipeline.Stats.
type Record struct {
	Fingerprint string          `json:"fingerprint"`
	Benchmark   string          `json:"benchmark"`
	Config      string          `json:"config"`
	Budget      uint64          `json:"budget"`
	Mode        string          `json:"mode"` // "full", "sampled", or "checkpointed"
	Stats       *pipeline.Stats `json:"stats"`
}

// Store is a content-addressed, crash-safe result store: one JSON record per
// run fingerprint, written atomically (temp+rename via snap.WriteFileBytes),
// so concurrent writers of the same fingerprint — which by construction hold
// identical payloads — and readers racing a write both observe a complete
// record or none. It is the durable layer that lets a restarted ctcpd serve
// repeated requests without resimulating.
type Store struct {
	dir string

	hits, misses, puts atomic.Uint64
}

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func fpHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }

func (st *Store) path(fp uint64) string {
	return filepath.Join(st.dir, fpHex(fp)+".json")
}

// Get returns the persisted record for fp, if a valid one exists. A missing,
// corrupt, or mislabeled (internal fingerprint disagreeing with the file
// name) record reads as a miss: the worst outcome is a redundant
// resimulation, never a wrong result.
func (st *Store) Get(fp uint64) (*Record, bool) {
	buf, err := os.ReadFile(st.path(fp))
	if err != nil {
		st.misses.Add(1)
		return nil, false
	}
	var rec Record
	if json.Unmarshal(buf, &rec) != nil || rec.Stats == nil || rec.Fingerprint != fpHex(fp) {
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	return &rec, true
}

// Put persists rec under its fingerprint, atomically replacing any previous
// record for the same fingerprint.
func (st *Store) Put(rec *Record) error {
	if rec.Stats == nil {
		return fmt.Errorf("serve: refusing to persist a record without stats")
	}
	var fp uint64
	if _, err := fmt.Sscanf(rec.Fingerprint, "%016x", &fp); err != nil {
		return fmt.Errorf("serve: record fingerprint %q is not a 64-bit hex value", rec.Fingerprint)
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := snap.WriteFileBytes(st.path(fp), buf); err != nil {
		return err
	}
	st.puts.Add(1)
	return nil
}

// Len counts the records currently on disk (a /metrics gauge; the store has
// no in-memory index to keep consistent).
func (st *Store) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
