; conformance: aliasing stress — narrow stores punched into a wide store's
; bytes, overlapping reloads, store-to-load forwarding distances of 1.
        .entry main
main:   movi    r10, buf
        movi    r1, -1
        stq     r1, 0(r10)      ; all-ones quadword
        movi    r2, 0
        stb     r2, 3(r10)      ; zero one byte inside it
        ldq     r3, 0(r10)      ; overlapping reload sees the merge
        movi    r4, 0x7777
        stw     r4, 4(r10)
        ldl     r5, 4(r10)
        ldbu    r6, 3(r10)
        stq     r3, 8(r10)
        ldq     r7, 8(r10)
        xor     r3, r7, r8      ; must be zero
        add     r5, r6, r9
        out     r3
        out     r9
        out     r8
        halt
        .data
buf:    .space  32
