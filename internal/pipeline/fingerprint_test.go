package pipeline

import (
	"testing"

	"ctcp/internal/core"
)

// TestFingerprintStable: equal configs hash equal, and the hash ignores the
// RetireHook observer (two processes installing different hooks must share
// cached results).
func TestFingerprintStable(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	b.RetireHook = func(core.RetireInfo) {}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("RetireHook changed the fingerprint; observers must be excluded")
	}
}

// TestFingerprintSensitive: every class of result-determining field moves the
// hash — top-level ints, nested struct fields, bools, strings, and the
// budget.
func TestFingerprintSensitive(t *testing.T) {
	base := DefaultConfig()
	fp := base.Fingerprint()
	mutate := []struct {
		name string
		f    func(*Config)
	}{
		{"strategy", func(c *Config) { *c = c.WithStrategy(core.FDRT, false) }},
		{"rob", func(c *Config) { c.ROBSize++ }},
		{"geometry", func(c *Config) { c.Geom.HopLat++ }},
		{"bpred", func(c *Config) { c.BP.HistoryBits++ }},
		{"mem", func(c *Config) { c.Mem.L2Lat++ }},
		{"cache-name", func(c *Config) { c.ICache.Name = "L1I'" }},
		{"flag", func(c *Config) { c.ZeroAllFwdLat = true }},
		{"budget", func(c *Config) { c.MaxInsts = 12345 }},
		{"trace-maxlen", func(c *Config) { c.Trace.MaxLen++ }},
	}
	seen := map[uint64]string{fp: "base"}
	for _, m := range mutate {
		c := base
		m.f(&c)
		got := c.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("mutation %q collides with %q (fingerprint %016x)", m.name, prev, got)
		}
		seen[got] = m.name
	}
}
