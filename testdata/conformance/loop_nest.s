; conformance: nested counted loops with an invariant-free body.
        .entry main
main:   movi    r1, 0           ; i
        movi    r5, 0           ; acc
outer:  movi    r2, 0           ; j
inner:  mul     r1, 10, r3
        add     r3, r2, r3
        add     r5, r3, r5
        add     r2, 1, r2
        cmplt   r2, 8, r4
        bne     r4, inner
        add     r1, 1, r1
        cmplt   r1, 12, r4
        bne     r4, outer
        out     r5
        halt
