package ctcp

// One testing.B benchmark per paper artifact: each regenerates the table or
// figure end to end (workload generation, full-matrix simulation, baseline
// comparison, rendering). Budgets are reduced relative to cmd/ctcpbench so
// `go test -bench=.` completes in minutes; pass -benchtime=1x for a single
// regeneration per artifact.

import (
	"testing"

	"ctcp/internal/experiment"
)

const benchBudget = 25_000

// newBenchRunner returns a fresh (uncached) harness per benchmark so each
// iteration measures full regeneration work.
func newBenchRunner() *experiment.Runner {
	return experiment.NewRunner(experiment.Options{Budget: benchBudget})
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table1(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Figure4(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table2(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table3(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if hm := experiment.Figure5(r).HM(); hm[0] <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if hm := experiment.Figure6(r).HM(); hm[2] <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Figure7(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table8(r).IntraRows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table9(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Table10(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Figure8(r).Configs) != 3 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(experiment.Options{Budget: 15_000})
		if len(experiment.Figure9(r).Suites) != 2 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.Ablation(r).Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkPipelineThroughput measures raw simulation speed (committed
// instructions per wall-clock second) of the baseline configuration.
func BenchmarkPipelineThroughput(b *testing.B) {
	bm, _ := BenchmarkByName("gzip")
	prog := bm.ProgramFor(benchBudget)
	cfg := DefaultConfig()
	cfg.MaxInsts = benchBudget
	b.ResetTimer()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		s := RunProgram(prog, cfg)
		total += int64(s.Retired)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

func BenchmarkSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		if len(experiment.SweepHopLatency(r).Points) != 3 {
			b.Fatal("bad result")
		}
	}
}
