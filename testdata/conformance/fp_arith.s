; conformance: FP add/sub with int<->float conversions; all values stay
; exactly representable.
        .entry main
main:   movi    r1, 3
        cvtqt   r1, f1          ; 3.0
        movi    r2, 7
        cvtqt   r2, f2          ; 7.0
        addt    f1, f2, f3      ; 10.0
        subt    f3, f1, f4      ; 7.0
        movi    r3, 0
        movi    r4, 6
fl:     addt    f4, f3, f4
        subt    f4, f1, f4
        cvttq   f4, r5
        add     r3, r5, r3
        sub     r4, 1, r4
        bne     r4, fl
        cvttq   f3, r6
        add     r3, r6, r3
        out     r3
        halt
