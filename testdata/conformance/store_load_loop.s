; conformance/stress: a memory-carried loop dependence — every iteration
; loads what the previous iteration stored to the same address.
        .entry main
main:   movi    r10, cell
        movi    r1, 1
        stq     r1, 0(r10)
        movi    r3, 40
sl:     ldq     r2, 0(r10)
        add     r2, r2, r2
        add     r2, 1, r2
        stq     r2, 0(r10)
        sub     r3, 1, r3
        bne     r3, sl
        ldq     r4, 0(r10)
        srl     r4, 20, r5
        xor     r4, r5, r4
        out     r4
        halt
        .data
cell:   .space  8
