package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// reachable returns the set of block indices reachable from the entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	g := buildTestCFG(t, "x := 1\n_ = x\nreturn")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("exit not reachable from entry")
	}
}

func TestCFGIfJoin(t *testing.T) {
	// Both arms must flow into a join block that reaches the exit.
	g := buildTestCFG(t, "x := 0\nif x > 0 {\n\tx = 1\n} else {\n\tx = 2\n}\n_ = x")
	cond := g.Entry
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then/else)", len(cond.Succs))
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("exit not reachable")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := buildTestCFG(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}")
	// Some block must have a back edge: a successor with an index <= its own.
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("for loop produced no back edge")
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("exit not reachable (loop must be exitable via its condition)")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := buildTestCFG(t, "return\n_ = 1")
	reach := reachable(g)
	// The statement after return lives in a block with no entry edge.
	found := false
	for _, b := range g.Blocks {
		if len(b.Nodes) == 1 && !reach[b.Index] {
			found = true
		}
	}
	if !found {
		t.Fatal("statement after return should be in an unreachable block")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := buildTestCFG(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n\t_ = v\ncase ch <- 1:\n}")
	// The select header's block must have one successor per comm clause (the
	// after-block is reached through the clause bodies, not directly: no
	// default means no fallthrough edge).
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no block contains the select statement")
	}
	if len(header.Succs) != 2 {
		t.Fatalf("select header has %d successors, want 2 (one per clause)", len(header.Succs))
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("exit not reachable")
	}
}

func TestCFGRangeHeaderOnly(t *testing.T) {
	g := buildTestCFG(t, "xs := []int{1}\nfor _, x := range xs {\n\t_ = x\n}")
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no block contains the range statement")
	}
	if len(header.Succs) != 2 {
		t.Fatalf("range header has %d successors, want 2 (body and after)", len(header.Succs))
	}
	// The body statement must not share the header block (header-only node).
	if len(header.Nodes) != 1 {
		t.Fatalf("range header block has %d nodes, want only the RangeStmt", len(header.Nodes))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n\tfallthrough\ncase 2:\n\tx = 3\n}\n_ = x")
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("exit not reachable")
	}
	// Every block except unreachable ones must be on a path to the exit.
	reach := reachable(g)
	if !reach[g.Exit.Index] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\n_ = 1")
	if !reachable(g)[g.Exit.Index] {
		t.Fatal("labeled break must make the code after the loop (and so the exit) reachable")
	}
}
