package experiment

// Named save-state slots: the user-facing product surface over the
// drained-boundary checkpoint machinery. A slot is a mid-flight simulation
// frozen under a name — savable from ctcpsim, listable/inspectable/forkable
// from ctcpsim and ctcpd — that can be resumed bit-exactly or forked into
// what-if configurations.
//
// A slot file is a snap container with a leading "slot" section holding the
// JSON metadata (benchmark, named config + deltas, budget, progress,
// lineage, fingerprints), followed by the pipeline snapshot itself. The
// fingerprints carry PR 5's stale-reuse discipline to slots: restore
// re-resolves the config from the metadata and refuses the file if the
// resolved config or run fingerprint no longer matches what was saved, so a
// slot can never be silently reinterpreted under drifted configuration
// tables. Forking re-fingerprints the delta configuration, and the pipeline
// snapshot's own Expect fields reject deltas that change restore-relevant
// geometry (strategy, cluster count/width, fetch width, ROB size) — only
// latency what-ifs (hop latency, forwarding-latency knobs) are forkable,
// which is exactly the class of questions a mid-run fork can answer.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

// SlotConfig names a pipeline configuration as a base from StrategyConfigs
// plus restore-compatible what-if deltas. The zero deltas mean "inherit the
// base value".
type SlotConfig struct {
	// Base is a StrategyConfigs name: base, friendly, friendly-mid, fdrt,
	// fdrt-nopin, issue0, issue4.
	Base string `json:"base"`
	// Hop overrides the inter-cluster hop latency when > 0.
	Hop int `json:"hop,omitempty"`
	// The Figure-5 forwarding-latency knobs.
	ZeroAllFwd     bool `json:"zero_all_fwd,omitempty"`
	ZeroCritFwd    bool `json:"zero_crit_fwd,omitempty"`
	ZeroIntraTrace bool `json:"zero_intra_trace,omitempty"`
	ZeroInterTrace bool `json:"zero_inter_trace,omitempty"`
}

// Resolve materializes the full pipeline configuration, validating both the
// base name and the combined knobs (e.g. ZeroAllFwd excludes the selective
// knobs — an invalid delta fails here, before any file is touched).
func (sc SlotConfig) Resolve() (pipeline.Config, error) {
	cfgs := StrategyConfigs()
	cfg, ok := cfgs[sc.Base]
	if !ok {
		names := make([]string, 0, len(cfgs))
		for name := range cfgs { //ctcp:lint-ok maporder -- keys are collected and sorted before use
			names = append(names, name)
		}
		sort.Strings(names)
		return pipeline.Config{}, fmt.Errorf("slot: unknown base config %q (one of: %s)", sc.Base, strings.Join(names, ", "))
	}
	if sc.Hop < 0 {
		return pipeline.Config{}, fmt.Errorf("slot: negative hop latency %d", sc.Hop)
	}
	if sc.Hop > 0 {
		cfg.Geom.HopLat = sc.Hop
	}
	cfg.ZeroAllFwdLat = sc.ZeroAllFwd
	cfg.ZeroCritFwdLat = sc.ZeroCritFwd
	cfg.ZeroIntraTrace = sc.ZeroIntraTrace
	cfg.ZeroInterTrace = sc.ZeroInterTrace
	if err := cfg.Validate(); err != nil {
		return pipeline.Config{}, fmt.Errorf("slot: invalid config delta: %w", err)
	}
	return cfg, nil
}

// SlotMeta describes one saved slot. RunFP/CfgFP are the stale-reuse
// guards: hex fingerprints of the run identity (benchmark + config +
// budget, via RunFingerprint) and of the resolved pipeline configuration.
type SlotMeta struct {
	Name      string     `json:"name"`
	Benchmark string     `json:"benchmark"`
	Config    SlotConfig `json:"config"`
	Budget    uint64     `json:"budget"`
	// Consumed/Cycle locate the save point: committed instructions consumed
	// and the pipeline cycle at the drained boundary.
	Consumed uint64 `json:"consumed"`
	Cycle    int64  `json:"cycle"`
	// Segments counts the drained boundaries this lineage has paused at.
	Segments uint64 `json:"segments"`
	// Parent names the slot this one was forked from ("" for a root save).
	Parent string `json:"parent,omitempty"`
	RunFP  string `json:"run_fingerprint"`
	CfgFP  string `json:"config_fingerprint"`
}

// fingerprints computes the canonical fingerprint pair for the metadata.
func (m SlotMeta) fingerprints() (runFP, cfgFP string, err error) {
	cfg, err := m.Config.Resolve()
	if err != nil {
		return "", "", err
	}
	fp := RunFingerprint(m.Benchmark, cfg, Options{Budget: m.Budget})
	return fmt.Sprintf("%016x", fp), fmt.Sprintf("%016x", cfg.Fingerprint()), nil
}

// SlotStore manages named slots in one directory (one <name>.slot file
// each, written atomically through snap.WriteFile).
//
// Forks serialize per destination name through a reservation (busy set)
// rather than a lock held across the work: the mutex only guards the
// reservation bookkeeping, never the restore/resimulate/save I/O, so List,
// Inspect, and forks of other destinations stay responsive while a fork is
// in flight.
type SlotStore struct {
	dir string

	mu   sync.Mutex
	busy map[string]bool // destination names reserved by in-flight forks

	// forkHook, when set (tests only), runs after the destination is
	// reserved and checked but before the restore begins.
	forkHook func()
}

// OpenSlots opens (creating if needed) a slot directory.
func OpenSlots(dir string) (*SlotStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("slot: empty slot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &SlotStore{dir: dir, busy: make(map[string]bool)}, nil
}

// Dir returns the store's directory.
func (st *SlotStore) Dir() string { return st.dir }

// validSlotName restricts names to path-safe tokens so a slot name can
// never escape the store directory.
func validSlotName(name string) error {
	if name == "" || len(name) > 100 {
		return fmt.Errorf("slot: name must be 1..100 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return fmt.Errorf("slot: name %q contains %q (allowed: letters, digits, - _ .)", name, c)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("slot: name %q must not start with a dot", name)
	}
	return nil
}

func (st *SlotStore) path(name string) (string, error) {
	if err := validSlotName(name); err != nil {
		return "", err
	}
	return filepath.Join(st.dir, name+".slot"), nil
}

// Save freezes p — which must be paused at a drained RunTo boundary — into
// the named slot, overwriting any previous save under that name. The
// caller's meta supplies identity (Name, Benchmark, Config, Budget,
// lineage); Save stamps progress from the pipeline and recomputes both
// fingerprints from the metadata, and requires the pipeline to actually
// match the declared config (same resolved fingerprint class), since the
// restore path will rebuild the pipeline from the metadata alone.
func (st *SlotStore) Save(meta SlotMeta, p *pipeline.Pipeline) (SlotMeta, error) {
	path, err := st.path(meta.Name)
	if err != nil {
		return SlotMeta{}, err
	}
	if _, ok := workload.ByName(meta.Benchmark); !ok {
		return SlotMeta{}, fmt.Errorf("slot: unknown benchmark %q", meta.Benchmark)
	}
	meta.Consumed = p.Consumed()
	meta.Cycle = p.CurrentCycle()
	if meta.Segments == 0 {
		meta.Segments = 1
	}
	meta.RunFP, meta.CfgFP, err = meta.fingerprints()
	if err != nil {
		return SlotMeta{}, err
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return SlotMeta{}, err
	}
	w := snap.NewWriter()
	w.Begin("slot")
	w.String(string(blob))
	w.End()
	p.Snapshot(w)
	if err := snap.WriteFile(path, w); err != nil {
		return SlotMeta{}, fmt.Errorf("slot: saving %q: %w", meta.Name, err)
	}
	return meta, nil
}

// readMeta decodes the leading metadata section. When rest is false the
// remainder of the container is discarded and the reader closed.
func readMeta(path string, rest bool) (SlotMeta, *snap.Reader, error) {
	r, err := snap.ReadFile(path)
	if err != nil {
		return SlotMeta{}, nil, err
	}
	r.Begin("slot")
	blob := r.String()
	r.End()
	if err := r.Err(); err != nil {
		return SlotMeta{}, nil, fmt.Errorf("slot: reading %s: %w", path, err)
	}
	var meta SlotMeta
	if err := json.Unmarshal([]byte(blob), &meta); err != nil {
		return SlotMeta{}, nil, fmt.Errorf("slot: metadata in %s: %w", path, err)
	}
	if !rest {
		return meta, nil, r.DiscardRest()
	}
	return meta, r, nil
}

// List returns the metadata of every slot in the store, sorted by name.
func (st *SlotStore) List() ([]SlotMeta, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, "*.slot"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]SlotMeta, 0, len(paths))
	for _, path := range paths {
		meta, _, err := readMeta(path, false)
		if err != nil {
			return nil, err
		}
		out = append(out, meta)
	}
	return out, nil
}

// Inspect returns one slot's metadata.
func (st *SlotStore) Inspect(name string) (SlotMeta, error) {
	path, err := st.path(name)
	if err != nil {
		return SlotMeta{}, err
	}
	meta, _, err := readMeta(path, false)
	if err != nil {
		return SlotMeta{}, err
	}
	return meta, nil
}

// verifyFingerprints re-derives the fingerprint pair from the metadata and
// refuses a slot whose identity no longer reproduces — the slot-level
// instance of the stale-reuse guard: a drifted config registry or changed
// fingerprint schema must force an error, never a silent reinterpretation.
func verifyFingerprints(meta SlotMeta) error {
	runFP, cfgFP, err := meta.fingerprints()
	if err != nil {
		return err
	}
	if meta.CfgFP != cfgFP {
		return fmt.Errorf("slot %q: config fingerprint %s does not reproduce (now %s): refusing stale reuse", meta.Name, meta.CfgFP, cfgFP)
	}
	if meta.RunFP != runFP {
		return fmt.Errorf("slot %q: run fingerprint %s does not reproduce (now %s): refusing stale reuse", meta.Name, meta.RunFP, runFP)
	}
	return nil
}

// VerifySlot re-derives the fingerprint pair from a slot's metadata and
// returns the stale-reuse error when the identity no longer reproduces.
// Exported so API layers can distinguish a stale source slot from an invalid
// fork delta when reporting errors.
func VerifySlot(meta SlotMeta) error { return verifyFingerprints(meta) }

// restoreInto rebuilds a pipeline for meta under cfg and restores the slot
// image into it. Incompatible configurations surface as snap Expect errors.
func restoreInto(path string, meta SlotMeta, cfg pipeline.Config) (m *emu.Machine, p *pipeline.Pipeline, err error) {
	bm, ok := workload.ByName(meta.Benchmark)
	if !ok {
		return nil, nil, fmt.Errorf("slot %q: unknown benchmark %q", meta.Name, meta.Benchmark)
	}
	defer func() {
		if r := recover(); r != nil {
			ie, isInv := r.(*core.InvariantError)
			if !isInv {
				panic(r)
			}
			m, p, err = nil, nil, fmt.Errorf("slot %q: %w", meta.Name, ie)
		}
	}()
	cfg.MaxInsts = 0
	m = emu.New(bm.ProgramFor(meta.Budget))
	p = pipeline.New(&emu.LimitStream{S: m, Budget: meta.Budget}, cfg)
	_, r, err := readMeta(path, true)
	if err != nil {
		return nil, nil, err
	}
	p.Restore(r)
	if err := r.Close(); err != nil {
		return nil, nil, fmt.Errorf("slot %q: restoring: %w", meta.Name, err)
	}
	return m, p, nil
}

// Restore rebuilds the named slot's pipeline, ready to continue via
// RunTo/Finish exactly where Save left it. The returned machine is the
// pipeline's functional emulator (its architectural end state belongs to
// the continuation). Restore can be called any number of times; each call
// yields an independent continuation.
func (st *SlotStore) Restore(name string) (SlotMeta, *emu.Machine, *pipeline.Pipeline, error) {
	path, err := st.path(name)
	if err != nil {
		return SlotMeta{}, nil, nil, err
	}
	meta, _, err := readMeta(path, false)
	if err != nil {
		return SlotMeta{}, nil, nil, err
	}
	if err := verifyFingerprints(meta); err != nil {
		return SlotMeta{}, nil, nil, err
	}
	cfg, err := meta.Config.Resolve()
	if err != nil {
		return SlotMeta{}, nil, nil, err
	}
	m, p, err := restoreInto(path, meta, cfg)
	if err != nil {
		return SlotMeta{}, nil, nil, err
	}
	return meta, m, p, nil
}

// Fork branches the named slot into dst under a what-if configuration
// delta: the checkpoint image is restored under the delta's resolved
// configuration (the pipeline snapshot's Expect fields reject deltas that
// change restore-relevant geometry such as the strategy), re-fingerprinted,
// and saved as a new slot with Parent lineage. The source slot is
// untouched; Fork refuses to overwrite an existing destination.
func (st *SlotStore) Fork(src, dst string, delta SlotConfig) (SlotMeta, error) {
	if src == dst {
		return SlotMeta{}, fmt.Errorf("slot: fork source and destination are both %q", src)
	}
	dstPath, err := st.path(dst)
	if err != nil {
		return SlotMeta{}, err
	}
	// Reserve the destination name before touching the disk. The
	// reservation — not a lock held across the restore — is what makes two
	// concurrent forks of the same destination race-free: exactly one
	// reserves, the other is refused immediately, and the exists-check below
	// runs off-lock under the reservation's protection.
	st.mu.Lock()
	if st.busy == nil {
		st.busy = make(map[string]bool)
	}
	if st.busy[dst] {
		st.mu.Unlock()
		return SlotMeta{}, fmt.Errorf("slot: destination %q already being forked", dst)
	}
	st.busy[dst] = true
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		delete(st.busy, dst)
		st.mu.Unlock()
	}()
	if _, err := os.Stat(dstPath); err == nil {
		return SlotMeta{}, fmt.Errorf("slot: destination %q already exists", dst)
	}
	if st.forkHook != nil {
		st.forkHook()
	}
	srcPath, err := st.path(src)
	if err != nil {
		return SlotMeta{}, err
	}
	meta, _, err := readMeta(srcPath, false)
	if err != nil {
		return SlotMeta{}, err
	}
	if err := verifyFingerprints(meta); err != nil {
		return SlotMeta{}, err
	}
	cfg, err := delta.Resolve()
	if err != nil {
		return SlotMeta{}, err
	}
	_, p, err := restoreInto(srcPath, meta, cfg)
	if err != nil {
		return SlotMeta{}, fmt.Errorf("incompatible config delta for fork: %w", err)
	}
	fork := SlotMeta{
		Name:      dst,
		Benchmark: meta.Benchmark,
		Config:    delta,
		Budget:    meta.Budget,
		Segments:  meta.Segments,
		Parent:    src,
	}
	return st.Save(fork, p)
}

// Remove deletes the named slot.
func (st *SlotStore) Remove(name string) error {
	path, err := st.path(name)
	if err != nil {
		return err
	}
	return os.Remove(path)
}

// ParseFP parses a slot fingerprint hex string (the inverse of the %016x
// formatting used in SlotMeta).
func ParseFP(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}
