package workload

import (
	"encoding/binary"
	"math"

	"ctcp/internal/prog"
)

// rng is a deterministic xorshift64* generator used to synthesize benchmark
// input data. Every benchmark seeds its own instance, so inputs are stable
// across runs and machines.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float1to2() float64 { // uniform in [1,2)
	return 1 + float64(r.next()>>11)/float64(1<<53)
}

// randBytes returns n uniformly random bytes.
func randBytes(r *rng, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// smallBytes returns n bytes limited to values < limit (MTF inputs,
// bytecode streams).
func smallBytes(r *rng, n, limit int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.intn(limit))
	}
	return out
}

// runnyBytes returns n bytes forming runs (RLE-friendly compressible data);
// values stay below 64 so they can double as MTF input.
func runnyBytes(r *rng, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		v := byte(r.intn(64))
		runLen := 1 + r.intn(12)
		for k := 0; k < runLen && len(out) < n; k++ {
			out = append(out, v)
		}
	}
	return out
}

// textBytes returns n bytes of space-separated pseudo-words (lexer input).
func textBytes(r *rng, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		wordLen := 2 + r.intn(9)
		for k := 0; k < wordLen && len(out) < n; k++ {
			out = append(out, byte('a'+r.intn(26)))
		}
		if len(out) < n {
			out = append(out, ' ')
		}
	}
	return out
}

// quadBytes encodes 64-bit values little-endian.
func quadBytes(vals []uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

// randQuads returns n random quads masked to the given range.
func randQuads(r *rng, n int, mask uint64) []byte {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = r.next() & mask
	}
	return quadBytes(vals)
}

// sortedQuads returns n increasing quads with random gaps (binary-search
// tables).
func sortedQuads(r *rng, n int) []byte {
	vals := make([]uint64, n)
	v := uint64(0)
	for i := range vals {
		v += 1 + uint64(r.intn(4))
		vals[i] = v
	}
	return quadBytes(vals)
}

// doubleBytes encodes float64 values little-endian.
func doubleBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// randDoubles returns n doubles uniform in [lo, lo+span).
func randDoubles(r *rng, n int, lo, span float64) []byte {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = lo + span*(r.float1to2()-1)
	}
	return doubleBytes(vals)
}

// sampleBytes returns n 16-bit audio-like samples: a sine carrier plus
// noise (ADPCM/GSM input).
func sampleBytes(r *rng, n int) []byte {
	out := make([]byte, 2*n)
	for i := 0; i < n; i++ {
		v := int16(6000*math.Sin(float64(i)/9.7) + float64(r.intn(2048)-1024))
		binary.LittleEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

// placeList lays out a randomly-permuted circular linked list of n 16-byte
// nodes (next pointer, value) under name, plus a head-pointer symbol
// nameHead. Random permutation defeats any spatial locality, as in mcf.
func placeList(b *prog.Builder, r *rng, name string, n int) {
	base := b.Space(name, 16*n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	content := make([]byte, 16*n)
	for k := 0; k < n; k++ {
		cur, next := perm[k], perm[(k+1)%n]
		binary.LittleEndian.PutUint64(content[16*cur:], base+uint64(16*next))
		binary.LittleEndian.PutUint64(content[16*cur+8:], r.next()&0xFFFF)
	}
	b.Patch(base, content)
	b.Quads(name+"_head", base+uint64(16*perm[0]))
	b.Quads(name+"_head2", base+uint64(16*perm[n/2]))
}

// stepTable returns the 80-entry quad step-size table for the ADPCM kernel.
func stepTable() []uint64 {
	tab := make([]uint64, 80)
	v := 7.0
	for i := range tab {
		tab[i] = uint64(v)
		v *= 1.1
	}
	return tab
}
