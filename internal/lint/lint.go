// Package lint is a from-scratch static analysis framework for this module,
// built only on the standard library's go/parser, go/ast and go/types (the
// repo is stdlib-only, so x/tools is off limits). It exists to turn the
// simulator's load-bearing but otherwise unenforced properties — determinism
// of every rendered artifact, the allocation-free cycle-model hot path, the
// absence of wall-clock and unseeded randomness in the timing model — into
// machine-checked rules, the way the differential and golden-stats tests pin
// cycle-exactness.
//
// Conventions understood by the framework and its analyzers:
//
//   - //ctcp:hotpath on a function declaration marks it as part of the
//     steady-state cycle loop; the hotalloc analyzer checks it and every
//     intra-package function it (transitively) calls for allocating
//     constructs.
//   - //ctcp:coldpath on a function declaration marks a deliberate amortized
//     or warm-up allocation site (pool refill, table growth); hotalloc does
//     not descend into it.
//   - //ctcp:lint-ok <rule>[,<rule>...] [reason] suppresses the named rules
//     on the comment's own line and on the line immediately below it.
//
// The cmd/ctcplint driver loads every package in the module, type-checks it,
// runs the registry returned by All, and reports file:line diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a concrete source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the driver's one-line plain-text form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("ctcp/internal/pipeline")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// suppressions: filename -> line -> rules suppressed on that line.
	suppress map[string]map[int][]string
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the analyzer applies to a package path; a nil
	// Match means every package.
	Match func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass is the per-(analyzer, package) run context handed to Analyzer.Run.
type Pass struct {
	Pkg      *Package
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //ctcp:lint-ok suppression
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// suppressOkPrefix introduces a suppression comment.
const suppressOkPrefix = "ctcp:lint-ok"

// buildSuppressions scans every comment in the package once and records, per
// file and line, which rules are suppressed there. A suppression covers the
// comment's own line (trailing-comment form) and the next line (the
// comment-above form).
func (pkg *Package) buildSuppressions() {
	pkg.suppress = make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, suppressOkPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, suppressOkPrefix))
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				m := pkg.suppress[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					pkg.suppress[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], rules...)
				m[pos.Line+1] = append(m[pos.Line+1], rules...)
			}
		}
	}
}

func (pkg *Package) suppressed(pos token.Position, rule string) bool {
	for _, r := range pkg.suppress[pos.Filename][pos.Line] {
		if r == rule {
			return true
		}
	}
	return false
}

// All returns the full analyzer registry in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		HotAlloc,
		NonDet,
		FloatEq,
		ConfigValidate,
		SnapComplete,
		WriteCheck,
	}
}

// Run executes the given analyzers over the given packages and returns the
// surviving (unsuppressed) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.suppress == nil {
			pkg.buildSuppressions()
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Analyzer: a, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// pathIn reports whether pkgPath denotes one of the named module-relative
// packages (e.g. "internal/pipeline"), regardless of the module prefix.
func pathIn(pkgPath string, names ...string) bool {
	for _, n := range names {
		if pkgPath == n || strings.HasSuffix(pkgPath, "/"+n) {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether a function declaration's doc comment carries
// the given //ctcp:<marker> line.
func funcAnnotated(d *ast.FuncDecl, marker string) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if f := strings.Fields(text); len(f) > 0 && f[0] == marker {
			return true
		}
	}
	return false
}
