// Package ctcp is the public API of the clustered trace cache processor
// (CTCP) simulator — a from-scratch Go reproduction of Bhargava & John,
// "Improving Dynamic Cluster Assignment for Clustered Trace Cache
// Processors" (ISCA 2003).
//
// The package re-exports the stable surface of the internal packages:
//
//   - building and assembling TRISC-64 programs (Assemble, NewProgramBuilder),
//   - functional execution (NewMachine),
//   - cycle-level simulation of the clustered trace cache processor under a
//     chosen cluster-assignment strategy (Run, DefaultConfig),
//   - the benchmark suite of SPECint2000 and MediaBench analogs
//     (SPECint, MediaBench, SelectedBenchmarks), and
//   - the experiment harness that regenerates every table and figure of the
//     paper's evaluation (NewExperiments and the methods of Experiments).
//
// A minimal session:
//
//	bm, _ := ctcp.BenchmarkByName("gzip")
//	cfg := ctcp.DefaultConfig().WithStrategy(ctcp.FDRT, false)
//	stats := ctcp.Run(bm, cfg, 200_000)
//	fmt.Printf("IPC %.2f, %.0f%% intra-cluster forwarding\n",
//	    stats.IPC(), 100*stats.IntraClusterFrac())
package ctcp

import (
	"ctcp/internal/asm"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/experiment"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/prog"
	"ctcp/internal/workload"
)

// Strategy selects a dynamic cluster assignment scheme.
type Strategy = core.StrategyKind

// The assignment strategies of the paper (§2.3, §4).
const (
	// Base is slot-based issue of unreordered trace lines.
	Base = core.Base
	// IssueTime steers instructions at issue based on in-flight producers.
	IssueTime = core.IssueTime
	// Friendly is the prior retire-time intra-trace reordering scheme.
	Friendly = core.Friendly
	// FriendlyMiddle biases Friendly toward the middle clusters.
	FriendlyMiddle = core.FriendlyMiddle
	// FDRT is the paper's feedback-directed retire-time assignment.
	FDRT = core.FDRT
	// FDRTNoPin is FDRT without pinning chain members to one cluster.
	FDRTNoPin = core.FDRTNoPin
)

// Config is the full architectural configuration (Table 7 defaults).
type Config = pipeline.Config

// Stats is the complete statistics record of one simulation.
type Stats = pipeline.Stats

// SimError is the typed error returned when a simulation aborts on an
// internal invariant failure and is recovered at the run boundary
// (RunErr, RunProgramErr, the experiment harness).
type SimError = pipeline.SimError

// Program is a loadable TRISC-64 image.
type Program = isa.Program

// Benchmark is one workload of the synthetic SPECint/MediaBench suite.
type Benchmark = workload.Benchmark

// Machine is the architectural (functional) TRISC-64 emulator.
type Machine = emu.Machine

// ProgramBuilder constructs TRISC-64 programs from Go code.
type ProgramBuilder = prog.Builder

// DefaultConfig returns the paper's baseline CTCP: 16-wide, four four-wide
// clusters, chain interconnect with 2-cycle hops, Table 7 memory system.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Run simulates the benchmark for maxInsts committed instructions under cfg
// and returns the statistics.
func Run(bm Benchmark, cfg Config, maxInsts uint64) *Stats {
	cfg.MaxInsts = maxInsts
	return pipeline.RunProgram(bm.ProgramFor(maxInsts), cfg)
}

// RunErr is Run with graceful degradation: a simulation aborted by an
// internal invariant failure returns a *SimError instead of panicking.
func RunErr(bm Benchmark, cfg Config, maxInsts uint64) (*Stats, error) {
	cfg.MaxInsts = maxInsts
	return pipeline.RunProgramErr(bm.ProgramFor(maxInsts), cfg)
}

// RunProgram simulates an arbitrary program under cfg.
func RunProgram(p *Program, cfg Config) *Stats { return pipeline.RunProgram(p, cfg) }

// RunProgramErr simulates an arbitrary program under cfg, converting an
// internal invariant panic into a *SimError instead of crashing.
func RunProgramErr(p *Program, cfg Config) (*Stats, error) {
	return pipeline.RunProgramErr(p, cfg)
}

// NewMachine returns a functional emulator loaded with p.
func NewMachine(p *Program) *Machine { return emu.New(p) }

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder() *ProgramBuilder { return prog.New() }

// Assemble translates TRISC-64 text assembly into a program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders a program listing.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// SPECint returns the 12 SPEC CPU2000 integer benchmark analogs.
func SPECint() []Benchmark { return workload.SPECint() }

// MediaBench returns the 14 MediaBench analogs.
func MediaBench() []Benchmark { return workload.MediaBench() }

// AllBenchmarks returns the full 26-program suite.
func AllBenchmarks() []Benchmark { return workload.All() }

// SelectedBenchmarks returns the six forwarding-sensitive SPECint programs
// the paper studies in depth.
func SelectedBenchmarks() []Benchmark { return workload.Selected() }

// BenchmarkByName looks a benchmark up across both suites.
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// Experiments regenerates the paper's tables and figures. Results are
// memoized across experiments, so regenerating everything simulates each
// benchmark/configuration pair once.
type Experiments struct {
	r *experiment.Runner
}

// NewExperiments returns an experiment harness with the given per-run
// instruction budget (0 = the default 200k).
func NewExperiments(budget uint64) *Experiments {
	return &Experiments{r: experiment.NewRunner(experiment.Options{Budget: budget})}
}

// Table1 regenerates Table 1 (trace cache characteristics).
func (e *Experiments) Table1() *experiment.Table1Result { return experiment.Table1(e.r) }

// Table2 regenerates Table 2 (critical forwarding dependencies).
func (e *Experiments) Table2() *experiment.Table2Result { return experiment.Table2(e.r) }

// Table3 regenerates Table 3 (repeated forwarding producers).
func (e *Experiments) Table3() *experiment.Table3Result { return experiment.Table3(e.r) }

// Figure4 regenerates Figure 4 (critical input sources).
func (e *Experiments) Figure4() *experiment.Figure4Result { return experiment.Figure4(e.r) }

// Figure5 regenerates Figure 5 (latency-removal speedups).
func (e *Experiments) Figure5() *experiment.Figure5Result { return experiment.Figure5(e.r) }

// Figure6 regenerates Figure 6 (strategy speedups, six benchmarks).
func (e *Experiments) Figure6() *experiment.Figure6Result { return experiment.Figure6(e.r) }

// Figure7 regenerates Figure 7 (FDRT option distribution).
func (e *Experiments) Figure7() *experiment.Figure7Result { return experiment.Figure7(e.r) }

// Table8 regenerates Table 8 (forwarding locality by strategy).
func (e *Experiments) Table8() *experiment.Table8Result { return experiment.Table8(e.r) }

// Table9 regenerates Table 9 (cluster migration vs. pinning).
func (e *Experiments) Table9() *experiment.Table9Result { return experiment.Table9(e.r) }

// Table10 regenerates Table 10 (forwarding locality vs. pinning).
func (e *Experiments) Table10() *experiment.Table10Result { return experiment.Table10(e.r) }

// Figure8 regenerates Figure 8 (alternate cluster configurations).
func (e *Experiments) Figure8() *experiment.Figure8Result { return experiment.Figure8(e.r) }

// Figure9 regenerates Figure 9 (full-suite speedups).
func (e *Experiments) Figure9() *experiment.Figure9Result { return experiment.Figure9(e.r) }

// Ablation regenerates the §5.3 strategy decomposition (Friendly-middle,
// intra-only FDRT, pinning).
func (e *Experiments) Ablation() *experiment.AblationResult { return experiment.Ablation(e.r) }

// RunnerStats snapshots the harness's execution counters: simulations
// started/completed/failed, duplicate requests deduplicated, cache hits,
// and per-key wall times.
func (e *Experiments) RunnerStats() experiment.RunnerStats { return e.r.Stats() }

// Failures returns the per-key errors of simulations that aborted
// (empty when everything succeeded). Artifacts whose runs failed render
// without those rows rather than crashing.
func (e *Experiments) Failures() map[string]error { return e.r.Errors() }

// FailureSummary renders the recorded failures for display; "" when all
// runs succeeded.
func (e *Experiments) FailureSummary() string { return e.r.FailureSummary() }
