; conformance: FP compares (Alpha-style 0.0/2.0 results) driving FP branches.
        .entry main
main:   movi    r1, 4
        cvtqt   r1, f1
        movi    r2, 4
        cvtqt   r2, f2
        movi    r3, 9
        cvtqt   r3, f3
        movi    r10, 0
        cmpteq  f1, f2, f4      ; 2.0
        fbne    f4, eq1         ; taken
        add     r10, 100, r10
eq1:    add     r10, 1, r10
        cmptlt  f1, f3, f5      ; 2.0
        fbeq    f5, lt1         ; not taken
        add     r10, 2, r10
lt1:    cmptle  f3, f1, f6      ; 0.0
        fbeq    f6, le1         ; taken
        add     r10, 400, r10
le1:    add     r10, 4, r10
        cvttq   f4, r4
        cvttq   f5, r5
        cvttq   f6, r6
        add     r4, r5, r4
        add     r4, r6, r4
        out     r10
        out     r4
        halt
