package conformance

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctcp/internal/asm"
	"ctcp/internal/core"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
)

// fuzzBudget bounds how long the emulator chases a mutant before rejecting
// it as non-halting. Mutated branches routinely produce infinite loops;
// rejection keeps fuzz throughput high.
const fuzzBudget = 30_000

// reproDir returns where divergence repros are written: $CTCP_REPRO_DIR when
// set (CI points this at a workspace path and uploads it as an artifact),
// else a stable subdirectory of the system temp dir.
func reproDir() string {
	if dir := os.Getenv("CTCP_REPRO_DIR"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "ctcp-divergence")
}

// writeRepro persists a minimized diverging program as reassemblable source
// with a header describing how it was derived.
func writeRepro(t *testing.T, src string, seed uint64, strategy core.StrategyKind, muts []Mutation) string {
	t.Helper()
	dir := reproDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create repro dir %s: %v", dir, err)
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", src, seed)
	names := make([]string, 0, len(muts))
	for _, m := range muts {
		names = append(names, m.String())
	}
	header := fmt.Sprintf("; divergence repro: strategy=%v seed=%d mutations=[%s]\n; replay: go test ./internal/conformance -run TestReproDir\n",
		strategy, seed, strings.Join(names, " "))
	path := filepath.Join(dir, fmt.Sprintf("divergence-%016x.s", h.Sum64()))
	if err := os.WriteFile(path, []byte(header+src), 0o644); err != nil {
		t.Logf("cannot write repro %s: %v", path, err)
		return ""
	}
	return path
}

// FuzzDifferential mutates corpus programs through the assembler-level
// mutator and cross-checks the emulator against the timing model. The seed
// selects both the mutation list and the assignment strategy, so a corpus
// entry fans out across the whole strategy matrix as the fuzzer explores.
// Programs the emulator rejects (fault, no halt within budget) are skipped;
// any divergence is minimized to the smallest still-diverging mutation
// subset and written to reproDir() as a replayable .s file.
func FuzzDifferential(f *testing.F) {
	corpus, err := LoadCorpus()
	if err != nil {
		f.Fatal(err)
	}
	for i, p := range corpus {
		f.Add(p.Source, uint64(i))
		f.Add(p.Source, uint64(0x9e3779b9)+uint64(i)*13)
	}
	strategies := core.Strategies()
	f.Fuzz(func(t *testing.T, src string, seed uint64) {
		base, err := asm.Assemble(src)
		if err != nil || len(base.Text) == 0 || len(base.Text) > 4096 {
			t.Skip()
		}
		muts := Mutations(base, seed)
		mutant := Apply(base, muts)
		strategy := strategies[int(seed%uint64(len(strategies)))]
		cfg := pipeline.DefaultConfig().WithStrategy(strategy, seed&(1<<16) != 0)
		check := func(p2 *isa.Program) error { return Diff(p2, fuzzBudget, cfg) }
		err = check(mutant)
		if err == nil {
			return
		}
		if isReject(err) {
			t.Skip()
		}
		minimized := Minimize(base, muts, check)
		minProg := Apply(base, minimized)
		reproSrc, werr := WriteSource(minProg)
		path := ""
		if werr == nil {
			path = writeRepro(t, reproSrc, seed, strategy, minimized)
		}
		t.Fatalf("emulator/pipeline divergence under %v (seed %d, %d mutations minimized to %d, repro %s): %v",
			strategy, seed, len(muts), len(minimized), path, err)
	})
}

// TestReproDir replays every divergence repro previously written by
// FuzzDifferential (if any exist) under all strategies, so a captured
// finding keeps failing until the model bug is fixed.
func TestReproDir(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(reproDir(), "*.s"))
	if err != nil || len(paths) == 0 {
		t.Skipf("no divergence repros in %s", reproDir())
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			t.Errorf("%s: repro does not assemble: %v", path, err)
			continue
		}
		for _, k := range core.Strategies() {
			cfg := pipeline.DefaultConfig().WithStrategy(k, false)
			if err := Diff(prog, fuzzBudget, cfg); err != nil && !isReject(err) {
				t.Errorf("%s under %v: %v", path, k, err)
			}
		}
	}
}
