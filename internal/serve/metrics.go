package serve

import (
	"fmt"
	"net/http"
	"strings"

	"ctcp/internal/experiment"
)

// latencyBounds are the histogram bucket upper bounds (seconds) shared by
// the queue-latency and sim-latency histograms: sub-millisecond cache-ish
// waits through multi-minute full-detail simulations.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 5, 30, 120}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket style. Guarded by the owning Server's mutex.
type histogram struct {
	counts []uint64 // len(latencyBounds)+1; last bucket is +Inf
	sum    float64
	n      uint64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBounds)+1)
	}
	i := 0
	for i < len(latencyBounds) && v > latencyBounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// snapshot deep-copies the histogram so rendering can happen off the lock.
func (h *histogram) snapshot() histogram {
	cp := *h
	cp.counts = append([]uint64(nil), h.counts...)
	return cp
}

// tenantMetrics is one tenant's counter row in /metrics.
type tenantMetrics struct {
	name                                      string
	submitted, completed, failed, interrupted uint64
	rejected, throttled, storeHits            uint64
	active, queued                            int
}

// metricsSnapshot is one consistent read of every counter /metrics exposes:
// the service-level job counters, the queue gauge, per-tenant rows, latency
// histograms, and the pooled runners' execution counters summed into one
// view. The runner sums are the exactly-once witness: after any number of
// duplicate submissions of one job — or a restart over a journal of
// completed fingerprints — runner.started stays 1.
type metricsSnapshot struct {
	submitted, completed, failed, interrupted, rejected, storeHits uint64
	throttled, unauthorized                                        uint64
	queueDepth, queueCap                                           int
	queueWaitSeconds, simSeconds                                   float64
	queueWaitN, simN                                               uint64
	queueHist, simHist                                             histogram
	tenants                                                        []tenantMetrics
	runner                                                         experiment.RunnerStats
	runnerCount                                                    int
	storeRecords                                                   int
	storeHitsDisk, storeMisses, storePuts                          uint64
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	s.mu.Lock()
	m := metricsSnapshot{
		submitted:        s.submitted,
		completed:        s.completed,
		failed:           s.failed,
		interrupted:      s.interrupted,
		rejected:         s.rejected,
		storeHits:        s.storeHits,
		throttled:        s.throttled,
		unauthorized:     s.unauthorized,
		queueDepth:       s.pending,
		queueCap:         s.cfg.QueueDepth,
		queueWaitSeconds: s.queueWait.Seconds(),
		queueWaitN:       s.queueWaitN,
		simSeconds:       s.simWall.Seconds(),
		simN:             s.simN,
		queueHist:        s.queueHist.snapshot(),
		simHist:          s.simHist.snapshot(),
		runner:           s.runnerBase, // evicted runners' counters
		runnerCount:      len(s.runners),
	}
	for _, name := range s.rr {
		tn := s.tenants[name]
		m.tenants = append(m.tenants, tenantMetrics{
			name:        tn.name,
			submitted:   tn.submitted,
			completed:   tn.completed,
			failed:      tn.failed,
			interrupted: tn.interrupted,
			rejected:    tn.rejected,
			throttled:   tn.throttled,
			storeHits:   tn.storeHits,
			active:      tn.active,
			queued:      len(tn.pending),
		})
	}
	runners := make([]*experiment.Runner, 0, len(s.runners))
	for _, pr := range s.runners { //ctcp:lint-ok maporder -- summed into scalar totals; order-insensitive
		runners = append(runners, pr.r)
	}
	s.mu.Unlock()
	// Runner snapshots take each runner's own lock; do it outside ours.
	for _, r := range runners {
		rs := r.Stats()
		m.runner.Started += rs.Started
		m.runner.Completed += rs.Completed
		m.runner.Failed += rs.Failed
		m.runner.Deduped += rs.Deduped
		m.runner.CacheHits += rs.CacheHits
	}
	m.storeRecords = s.store.Len()
	m.storeHitsDisk = s.store.hits.Load()
	m.storeMisses = s.store.misses.Load()
	m.storePuts = s.store.puts.Load()
	return m
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled; the service is stdlib-only by design).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.snapshotMetrics()
	var b strings.Builder
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	hist := func(name, help string, h histogram) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum uint64
		for i, bound := range latencyBounds {
			if h.counts != nil {
				cum += h.counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.n)
		fmt.Fprintf(&b, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.n)
	}
	counter("ctcpd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)
	counter("ctcpd_jobs_completed_total", "Jobs that finished successfully.", m.completed)
	counter("ctcpd_jobs_failed_total", "Jobs that failed with a simulation error.", m.failed)
	counter("ctcpd_jobs_interrupted_total", "Jobs cut short by shutdown.", m.interrupted)
	counter("ctcpd_jobs_rejected_total", "Submissions rejected by queue depth or tenant quota.", m.rejected)
	counter("ctcpd_jobs_throttled_total", "Submissions rejected by a tenant rate limit.", m.throttled)
	counter("ctcpd_unauthorized_total", "API requests with a missing or unknown key.", m.unauthorized)
	counter("ctcpd_store_hits_total", "Submissions answered from the result store.", m.storeHits)
	gauge("ctcpd_queue_depth", "Jobs accepted but not yet running.", m.queueDepth)
	gauge("ctcpd_queue_capacity", "Configured queue bound.", m.queueCap)
	counter("ctcpd_queue_wait_seconds_total", "Total time jobs spent queued.", fmt.Sprintf("%g", m.queueWaitSeconds))
	counter("ctcpd_queue_wait_count_total", "Jobs that left the queue for a worker.", m.queueWaitN)
	counter("ctcpd_sim_seconds_total", "Total wall time spent in simulation calls.", fmt.Sprintf("%g", m.simSeconds))
	counter("ctcpd_sim_count_total", "Simulation calls issued to runners.", m.simN)
	hist("ctcpd_queue_latency_seconds", "Time from acceptance to dispatch.", m.queueHist)
	hist("ctcpd_sim_latency_seconds", "Wall time of each simulation call.", m.simHist)
	counter("ctcpd_runner_started_total", "Distinct simulations begun by the pooled runners.", m.runner.Started)
	counter("ctcpd_runner_completed_total", "Runner simulations that finished successfully.", m.runner.Completed)
	counter("ctcpd_runner_failed_total", "Runner simulations that aborted.", m.runner.Failed)
	counter("ctcpd_runner_deduped_total", "Callers who joined an in-flight runner simulation.", m.runner.Deduped)
	counter("ctcpd_runner_cache_hits_total", "Callers satisfied from a runner's completed-run cache.", m.runner.CacheHits)
	gauge("ctcpd_runner_pool_size", "Pooled runners currently alive.", m.runnerCount)
	gauge("ctcpd_store_records", "Result records currently persisted.", m.storeRecords)
	counter("ctcpd_store_reads_hit_total", "Store reads that returned a valid record.", m.storeHitsDisk)
	counter("ctcpd_store_reads_miss_total", "Store reads that found no valid record.", m.storeMisses)
	counter("ctcpd_store_writes_total", "Records persisted to the store.", m.storePuts)
	// Per-tenant rows, in sorted tenant order for deterministic scrapes.
	fmt.Fprintf(&b, "# HELP ctcpd_tenant_jobs_total Job outcomes per tenant.\n# TYPE ctcpd_tenant_jobs_total counter\n")
	for _, tn := range m.tenants {
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"submitted\"} %d\n", tn.name, tn.submitted)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"completed\"} %d\n", tn.name, tn.completed)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"failed\"} %d\n", tn.name, tn.failed)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"interrupted\"} %d\n", tn.name, tn.interrupted)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"rejected\"} %d\n", tn.name, tn.rejected)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"throttled\"} %d\n", tn.name, tn.throttled)
		fmt.Fprintf(&b, "ctcpd_tenant_jobs_total{tenant=%q,outcome=\"store_hit\"} %d\n", tn.name, tn.storeHits)
	}
	fmt.Fprintf(&b, "# HELP ctcpd_tenant_active Queued plus running jobs per tenant.\n# TYPE ctcpd_tenant_active gauge\n")
	for _, tn := range m.tenants {
		fmt.Fprintf(&b, "ctcpd_tenant_active{tenant=%q} %d\n", tn.name, tn.active)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write([]byte(b.String())); err != nil {
		s.logf("metrics: client hung up mid-scrape: %v", err)
	}
}
