; conformance: every integer load/store width round-tripped through memory,
; plus a table walk over preinitialized .data.
        .entry main
main:   movi    r10, buf
        movi    r1, 0x12345678
        stq     r1, 0(r10)
        ldq     r2, 0(r10)
        stl     r1, 8(r10)
        ldl     r3, 8(r10)
        stw     r1, 16(r10)
        ldw     r4, 16(r10)
        stb     r1, 24(r10)
        ldbu    r5, 24(r10)
        add     r2, r3, r6
        add     r6, r4, r6
        add     r6, r5, r6
        movi    r11, tbl
        movi    r12, 0          ; table sum
        movi    r13, 5
tw:     ldq     r14, 0(r11)
        add     r12, r14, r12
        add     r11, 8, r11
        sub     r13, 1, r13
        bne     r13, tw
        out     r6
        out     r12
        halt
        .data
buf:    .space  64
tbl:    .quad   11, 22, 33, 44, 55
