package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WriteCheck flags fmt.Fprint/Fprintf/Fprintln calls in the cmd/ tools whose
// error result is discarded while writing to a destination that can actually
// fail — an *os.File opened for output, or any io.Writer that is not one of
// the conventionally infallible sinks (os.Stdout, os.Stderr,
// strings.Builder, bytes.Buffer). A full disk or closed pipe must surface as
// a non-zero exit, not a silently truncated artifact file.
var WriteCheck = &Analyzer{
	Name: "writecheck",
	Doc:  "discarded error writing to a fallible destination in cmd/",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/cmd/") || strings.HasPrefix(pkgPath, "cmd/")
	},
	Run: runWriteCheck,
}

func runWriteCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Uses[sel.Sel]
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
				return true
			}
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln":
			default:
				return true
			}
			if infallibleWriter(p, call.Args[0]) {
				return true
			}
			p.Reportf(call.Pos(), "fmt.%s error discarded while writing to a fallible destination; check the error (or write to a buffer and flush once)", obj.Name())
			return true
		})
	}
}

// infallibleWriter reports whether the writer expression is one of the sinks
// whose write errors are conventionally ignorable.
func infallibleWriter(p *Pass, w ast.Expr) bool {
	// os.Stdout / os.Stderr by identity.
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj, ok := p.Pkg.Info.Uses[sel.Sel]; ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	// strings.Builder / bytes.Buffer (possibly behind & or a pointer) by type.
	t := p.TypeOf(w)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		return full == "strings.Builder" || full == "bytes.Buffer"
	}
	return false
}
