GO ?= go

.PHONY: check build vet test race bench

# check is the CI gate: compile everything, vet, then the full suite under
# the race detector (the runner stress tests exercise it meaningfully).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
