package emu

import (
	"math"
	"testing"

	"ctcp/internal/isa"
)

// lockstep runs two machines over the same program — one through the
// predecoded StepInto dispatch, one through the stepGeneric oracle — and
// requires identical Committed records, faults, and architectural state at
// every step. Returns the number of successfully completed steps.
func lockstep(t *testing.T, p *isa.Program, budget int) int {
	t.Helper()
	mf := New(p)
	mg := New(p)
	var cf, cg Committed
	for step := 0; step < budget; step++ {
		errF := mf.StepInto(&cf)
		errG := mg.stepGeneric(&cg)
		if (errF == nil) != (errG == nil) {
			t.Fatalf("step %d: fast err=%v, generic err=%v", step, errF, errG)
		}
		if errF != nil {
			if errF.Error() != errG.Error() {
				t.Fatalf("step %d: fault mismatch: fast %q, generic %q", step, errF, errG)
			}
			return step
		}
		if cf != cg {
			t.Fatalf("step %d: committed mismatch:\nfast    %+v\ngeneric %+v", step, cf, cg)
		}
		if mf.Regs != mg.Regs {
			for i := range mf.Regs {
				if mf.Regs[i] != mg.Regs[i] {
					t.Fatalf("step %d (pc %#x): reg %d = %#x fast, %#x generic",
						step, cf.PC, i, mf.Regs[i], mg.Regs[i])
				}
			}
		}
		if mf.PC != mg.PC || mf.seq != mg.seq || mf.halted != mg.halted {
			t.Fatalf("step %d: control mismatch: fast pc=%#x seq=%d halted=%v, generic pc=%#x seq=%d halted=%v",
				step, mf.PC, mf.seq, mf.halted, mg.PC, mg.seq, mg.halted)
		}
		if mf.OutHash != mg.OutHash || len(mf.OutValues) != len(mg.OutValues) {
			t.Fatalf("step %d: OUT state mismatch", step)
		}
		if mf.halted {
			return step
		}
	}
	return budget
}

// TestPredecodeMatchesGeneric cross-checks the predecoded dispatch against
// the original interpreter on targeted programs covering every uop kind and
// the shapes that lower to uGeneric.
func TestPredecodeMatchesGeneric(t *testing.T) {
	base := isa.DefaultTextBase
	fpImm := func(v float64) int64 { return int64(math.Float64bits(v)) }
	cases := map[string][]isa.Inst{
		"alu-rr-ri": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: -7},
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 13},
			isa.Inst{Op: isa.ADD, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)},
			isa.Inst{Op: isa.ADD, Ra: isa.R(1), Imm: -100, UseImm: true, Rc: isa.R(4)},
			isa.Inst{Op: isa.SUB, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(5)},
			isa.Inst{Op: isa.SUB, Ra: isa.R(1), Imm: 9, UseImm: true, Rc: isa.R(6)},
			isa.Inst{Op: isa.AND, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(7)},
			isa.Inst{Op: isa.OR, Ra: isa.R(1), Imm: 0x0f, UseImm: true, Rc: isa.R(8)},
			isa.Inst{Op: isa.XOR, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(9)},
			isa.Inst{Op: isa.ANDNOT, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(10)},
			isa.Inst{Op: isa.MUL, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(11)},
			isa.Inst{Op: isa.DIV, Ra: isa.R(2), Rb: isa.R(1), Rc: isa.R(12)},
			isa.Inst{Op: isa.REM, Ra: isa.R(2), Imm: 5, UseImm: true, Rc: isa.R(13)},
			isa.Inst{Op: isa.SEXTB, Ra: isa.R(2), Rc: isa.R(14)},
			isa.Inst{Op: isa.SEXTW, Ra: isa.R(1), Rc: isa.R(15)},
			isa.Inst{Op: isa.HALT},
		},
		"shifts-and-compares": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: -1},
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 67}, // shift count > 63 via register
			isa.Inst{Op: isa.SLL, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)},
			isa.Inst{Op: isa.SRL, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(4)},
			isa.Inst{Op: isa.SRA, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(5)},
			isa.Inst{Op: isa.SLL, Ra: isa.R(1), Imm: 65, UseImm: true, Rc: isa.R(6)}, // pre-masked imm count
			isa.Inst{Op: isa.SRL, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(7)},
			isa.Inst{Op: isa.SRA, Ra: isa.R(1), Imm: 63, UseImm: true, Rc: isa.R(8)},
			isa.Inst{Op: isa.CMPEQ, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(9)},
			isa.Inst{Op: isa.CMPLT, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(10)},
			isa.Inst{Op: isa.CMPLE, Ra: isa.R(1), Imm: -1, UseImm: true, Rc: isa.R(11)},
			isa.Inst{Op: isa.CMPULT, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(12)},
			isa.Inst{Op: isa.CMPULE, Ra: isa.R(1), Imm: -1, UseImm: true, Rc: isa.R(13)},
			isa.Inst{Op: isa.HALT},
		},
		"zero-reg-and-nop": {
			isa.Inst{Op: isa.NOP},
			isa.Inst{Op: isa.MOVI, Rc: isa.ZeroReg, Imm: 99},                         // discarded write
			isa.Inst{Op: isa.ADD, Ra: isa.ZeroReg, Rb: isa.ZeroReg, Rc: isa.R(1)},    // zero sources
			isa.Inst{Op: isa.ADD, Ra: isa.NoReg, Imm: 7, UseImm: true, Rc: isa.R(2)}, // absent source
			isa.Inst{Op: isa.SUB, Ra: isa.R(2), Rb: isa.R(2), Rc: isa.ZeroReg},       // discarded op
			isa.Inst{Op: isa.DIV, Ra: isa.R(2), Rb: isa.ZeroReg, Rc: isa.R(3)},       // div by hardwired zero
			isa.Inst{Op: isa.ADDT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.FZeroReg},     // discarded FP op
			isa.Inst{Op: isa.MOVI, Rc: isa.R(4), Imm: int64(isa.DefaultDataBase)},    //
			isa.Inst{Op: isa.LDQ, Ra: isa.R(4), Imm: 0, Rc: isa.ZeroReg},             // discarded load
			isa.Inst{Op: isa.HALT},
		},
		"memory-widths": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: int64(isa.DefaultDataBase)},
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: -2}, // 0xffff_fffe pattern
			isa.Inst{Op: isa.STQ, Ra: isa.R(1), Rb: isa.R(2), Imm: 0},
			isa.Inst{Op: isa.STL, Ra: isa.R(1), Rb: isa.R(2), Imm: 16},
			isa.Inst{Op: isa.STW, Ra: isa.R(1), Rb: isa.R(2), Imm: 24},
			isa.Inst{Op: isa.STB, Ra: isa.R(1), Rb: isa.R(2), Imm: 32},
			isa.Inst{Op: isa.LDQ, Ra: isa.R(1), Imm: 0, Rc: isa.R(3)},
			isa.Inst{Op: isa.LDL, Ra: isa.R(1), Imm: 16, Rc: isa.R(4)}, // sign-extends
			isa.Inst{Op: isa.LDL, Ra: isa.R(1), Imm: 24, Rc: isa.R(5)},
			isa.Inst{Op: isa.LDW, Ra: isa.R(1), Imm: 24, Rc: isa.R(6)},
			isa.Inst{Op: isa.LDBU, Ra: isa.R(1), Imm: 32, Rc: isa.R(7)},
			isa.Inst{Op: isa.STT, Ra: isa.R(1), Rb: isa.F(1), Imm: 40},
			isa.Inst{Op: isa.LDT, Ra: isa.R(1), Imm: 40, Rc: isa.F(2)},
			isa.Inst{Op: isa.LDQ, Ra: isa.R(1), Imm: 4096, Rc: isa.R(8)}, // untouched page reads 0
			isa.Inst{Op: isa.HALT},
		},
		"branches": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 3}, // loop counter
			// loop: decrement, BNE back
			isa.Inst{Op: isa.SUB, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)},
			isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: int64(base + 1*isa.PCStride)},
			isa.Inst{Op: isa.BEQ, Ra: isa.R(1), Imm: int64(base + 5*isa.PCStride)}, // taken
			isa.Inst{Op: isa.HALT},                                                 // skipped
			isa.Inst{Op: isa.BLT, Ra: isa.R(1), Imm: int64(base)},                  // not taken (0)
			isa.Inst{Op: isa.BLE, Ra: isa.R(1), Imm: int64(base + 7*isa.PCStride)}, // taken (0)
			isa.Inst{Op: isa.BGT, Ra: isa.R(1), Imm: int64(base)},                  // not taken
			isa.Inst{Op: isa.BGE, Ra: isa.R(1), Imm: int64(base + 9*isa.PCStride)}, // taken
			isa.Inst{Op: isa.HALT},
		},
		"fp-branches-negzero": {
			// F1 = -0.0: FBEQ must treat it as zero (float compare, not bits).
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: fpImm(math.Copysign(0, -1))},
			isa.Inst{Op: isa.ITOF, Ra: isa.R(1), Rc: isa.F(1)},
			isa.Inst{Op: isa.FBEQ, Ra: isa.F(1), Imm: int64(base + 4*isa.PCStride)}, // taken: -0.0 == 0
			isa.Inst{Op: isa.HALT},                                 // skipped
			isa.Inst{Op: isa.FBNE, Ra: isa.F(1), Imm: int64(base)}, // not taken
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: fpImm(1.5)},
			isa.Inst{Op: isa.ITOF, Ra: isa.R(2), Rc: isa.F(2)},
			isa.Inst{Op: isa.FBNE, Ra: isa.F(2), Imm: int64(base + 9*isa.PCStride)}, // taken
			isa.Inst{Op: isa.HALT},                                                  // skipped
			isa.Inst{Op: isa.FBEQ, Ra: isa.F(2), Imm: int64(base)},                  // not taken
			isa.Inst{Op: isa.HALT},
		},
		"direct-and-indirect-control": {
			isa.Inst{Op: isa.BR, Imm: int64(base + 2*isa.PCStride)}, // plain BR
			isa.Inst{Op: isa.HALT}, // skipped
			isa.Inst{Op: isa.BR, Rc: isa.R(1), Imm: int64(base + 4*isa.PCStride)}, // BR with link
			isa.Inst{Op: isa.HALT}, // skipped
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: int64(base + 7*isa.PCStride)}, //
			isa.Inst{Op: isa.JSR, Rb: isa.R(2), Rc: isa.R(3)},                       // link in R3
			isa.Inst{Op: isa.HALT}, // skipped
			isa.Inst{Op: isa.MOVI, Rc: isa.R(4), Imm: int64(base + 10*isa.PCStride)},
			isa.Inst{Op: isa.JMP, Rb: isa.R(4)},
			isa.Inst{Op: isa.HALT}, // skipped
			isa.Inst{Op: isa.RET, Rb: isa.R(3)},
			isa.Inst{Op: isa.HALT}, // skipped: RET returns past JSR
		},
		"fp-arith": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: fpImm(2.25)},
			isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: fpImm(-4.5)},
			isa.Inst{Op: isa.ITOF, Ra: isa.R(1), Rc: isa.F(1)},
			isa.Inst{Op: isa.ITOF, Ra: isa.R(2), Rc: isa.F(2)},
			isa.Inst{Op: isa.ADDT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(3)},
			isa.Inst{Op: isa.SUBT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(4)},
			isa.Inst{Op: isa.MULT, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(5)},
			isa.Inst{Op: isa.DIVT, Ra: isa.F(2), Rb: isa.F(1), Rc: isa.F(6)},
			isa.Inst{Op: isa.SQRTT, Ra: isa.F(1), Rc: isa.F(7)},
			isa.Inst{Op: isa.CMPTEQ, Ra: isa.F(1), Rb: isa.F(2), Rc: isa.F(8)},
			isa.Inst{Op: isa.CMPTLT, Ra: isa.F(2), Rb: isa.F(1), Rc: isa.F(9)},
			isa.Inst{Op: isa.CMPTLE, Ra: isa.F(1), Rb: isa.F(1), Rc: isa.F(10)},
			isa.Inst{Op: isa.CVTQT, Ra: isa.R(1), Rc: isa.F(11)},
			isa.Inst{Op: isa.CVTTQ, Ra: isa.F(2), Rc: isa.R(3)},
			isa.Inst{Op: isa.FTOI, Ra: isa.F(5), Rc: isa.R(4)},
			isa.Inst{Op: isa.HALT},
		},
		"out-stream": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 0x1234},
			isa.Inst{Op: isa.OUT, Ra: isa.R(1)},
			isa.Inst{Op: isa.ADD, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)},
			isa.Inst{Op: isa.OUT, Ra: isa.R(1)},
			isa.Inst{Op: isa.OUT, Ra: isa.ZeroReg},
			isa.Inst{Op: isa.HALT},
		},
		"misaligned-branch-not-taken": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 1},
			isa.Inst{Op: isa.BEQ, Ra: isa.R(1), Imm: int64(base + 2)}, // misaligned, not taken: no fault
			isa.Inst{Op: isa.HALT},
		},
		"misaligned-branch-taken": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 0},
			isa.Inst{Op: isa.BEQ, Ra: isa.R(1), Imm: int64(base + 2)}, // misaligned, taken: fault
			isa.Inst{Op: isa.HALT},
		},
		"misaligned-br": {
			isa.Inst{Op: isa.BR, Imm: int64(base + 3)}, // always faults
			isa.Inst{Op: isa.HALT},
		},
		"misaligned-jmp": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: int64(base + 5)},
			isa.Inst{Op: isa.JMP, Rb: isa.R(1)},
			isa.Inst{Op: isa.HALT},
		},
		"misaligned-jsr": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: int64(base + 5)},
			isa.Inst{Op: isa.JSR, Rb: isa.R(1), Rc: isa.R(2)},
			isa.Inst{Op: isa.HALT},
		},
		"run-off-text": {
			isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 1}, // falls off the end
		},
		"undefined-opcode": {
			isa.Inst{Op: isa.Op(200)},
			isa.Inst{Op: isa.HALT},
		},
	}
	for name, insts := range cases {
		t.Run(name, func(t *testing.T) {
			lockstep(t, prog(nil, insts...), 10000)
		})
	}
}

// TestPredecodeMatchesGenericRandom cross-checks the two interpreters on
// deterministic pseudo-random programs: every opcode, random operands and
// operand kinds, with control-flow targets kept inside the text segment.
func TestPredecodeMatchesGenericRandom(t *testing.T) {
	const textLen = 256
	base := isa.DefaultTextBase
	for seed := uint64(1); seed <= 8; seed++ {
		s := seed * 0x9e3779b97f4a7c15
		next := func() uint64 { // xorshift64*
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			return s * 0x2545f4914f6cdd1d
		}
		insts := make([]isa.Inst, textLen)
		for i := range insts {
			op := isa.Op(next() % uint64(isa.NumOps))
			inst := isa.Inst{Op: op}
			info := op.Info()
			class := info.Class
			// Random registers; bias toward a small window (incl. R31) so
			// values flow between instructions.
			reg := func() isa.Reg { return isa.R(int(next() % 32)) }
			freg := func() isa.Reg { return isa.F(int(next() % 32)) }
			switch {
			case class == isa.ClassFPAdd || class == isa.ClassFPMul ||
				class == isa.ClassFPDiv || class == isa.ClassFPSqrt:
				inst.Ra, inst.Rb, inst.Rc = freg(), freg(), freg()
				if op == isa.ITOF || op == isa.CVTQT {
					inst.Ra = reg()
				}
				if op == isa.FTOI || op == isa.CVTTQ {
					inst.Rc = reg()
				}
			case class == isa.ClassFPBranch:
				inst.Ra = freg()
				inst.Imm = int64(base + uint64(next()%textLen)*isa.PCStride)
			case class == isa.ClassBranch:
				inst.Ra = reg()
				inst.Imm = int64(base + uint64(next()%textLen)*isa.PCStride)
				if op == isa.BR && next()%2 == 0 {
					inst.Rc = reg()
				}
			case class == isa.ClassJump:
				// Load an in-range aligned target first, then jump through it.
				inst.Rb = reg()
				inst.Rc = reg()
				// Make the register-indirect target usually valid by pointing
				// Rb at R30, which the preamble seeds with a text address.
				inst.Rb = isa.R(30)
			case class.IsMem():
				inst.Ra = isa.R(29) // preamble points R29 at the data segment
				inst.Rb = reg()
				inst.Rc = reg()
				if op == isa.LDT {
					inst.Rc = freg()
				}
				if op == isa.STT {
					inst.Rb = freg()
				}
				inst.Imm = int64(next() % 4096)
			default:
				inst.Ra, inst.Rb, inst.Rc = reg(), reg(), reg()
				if next()%2 == 0 {
					inst.UseImm = true
					inst.Imm = int64(next()) >> (next() % 48)
				}
				if op == isa.MOVI {
					inst.UseImm = false
					inst.Imm = int64(next()) >> (next() % 32)
				}
			}
			insts[i] = inst
		}
		// Preamble: seed R29 (data base) and R30 (aligned text target), then
		// fall into the random body. Entry stays at TextBase.
		pre := []isa.Inst{
			{Op: isa.MOVI, Rc: isa.R(29), Imm: int64(isa.DefaultDataBase)},
			{Op: isa.MOVI, Rc: isa.R(30), Imm: int64(base + uint64(4+next()%textLen)*isa.PCStride)},
			{Op: isa.MOVI, Rc: isa.R(28), Imm: 1000}, // step-down fuel, unused by body
			{Op: isa.NOP},
		}
		p := &isa.Program{
			TextBase: base,
			DataBase: isa.DefaultDataBase,
			Entry:    base,
			Text:     append(pre, insts...),
		}
		// Budget-bounded: random programs rarely halt; 4096 steps of exact
		// agreement (or an identical fault) is the property under test.
		lockstep(t, p, 4096)
	}
}

// TestPredecodeTableSurvivesReset verifies Reset keeps the derived table and
// that stepping after Reset still agrees with a freshly built machine.
func TestPredecodeTableSurvivesReset(t *testing.T) {
	p := prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 5},
		isa.Inst{Op: isa.ADD, Ra: isa.R(1), Rb: isa.R(1), Rc: isa.R(2)},
		isa.Inst{Op: isa.HALT},
	)
	m := New(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.pred == nil {
		t.Fatal("Reset dropped the predecode table")
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.R(2)] != 10 {
		t.Fatalf("after reset: R2 = %d, want 10", m.Regs[isa.R(2)])
	}
}
