; conformance: interleaved integer, FP, and memory traffic in one loop.
        .entry main
main:   movi    r10, mbuf
        movi    r1, 1
        movi    r2, 0
        movi    r3, 20
mx:     cvtqt   r1, f1
        mult    f1, f1, f2      ; i^2
        cvttq   f2, r4
        sll     r1, 3, r5
        add     r10, r5, r5
        stq     r4, 0(r5)
        ldq     r6, 0(r5)
        add     r2, r6, r2
        stt     f2, 0(r10)
        ldt     f3, 0(r10)
        addt    f3, f1, f4
        cvttq   f4, r7
        xor     r2, r7, r2
        add     r1, 1, r1
        sub     r3, 1, r3
        bne     r3, mx
        out     r2
        halt
        .data
mbuf:   .space  256
