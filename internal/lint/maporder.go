package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map in the packages whose outputs feed the
// paper artifacts. Go randomizes map iteration order, so any map range that
// influences rendered tables/figures, steering decisions, or simulation
// order is a reproducibility hazard: the FDRT sweeps must be byte-identical
// across runs. Loops that are genuinely order-insensitive (pure accumulation
// into another map, collect-keys-then-sort) carry an explicit
// //ctcp:lint-ok maporder suppression with a reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map has nondeterministic order; sort keys before iterating",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"internal/pipeline", "internal/core", "internal/emu",
			"internal/trace", "internal/experiment", "internal/stats",
			"internal/serve")
	},
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(rng.Range,
					"range over map %s iterates in nondeterministic order; sort the keys first (or suppress with //ctcp:lint-ok maporder if provably order-insensitive)",
					types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
			}
			return true
		})
	}
}
