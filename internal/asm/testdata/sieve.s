; Sieve of Eratosthenes over 1..4095: byte flags in memory, nested loops.
; OUTs the number of primes found (563).
        .entry main
main:   movi    r1, flags       ; flag array
        movi    r2, 2           ; candidate
outer:  movi    r3, 4096
        cmplt   r2, r3, r4
        beq     r4, count
        add     r1, r2, r5
        ldbu    r6, 0(r5)
        bne     r6, nextc       ; already composite
        ; mark multiples 2p, 3p, ...
        add     r2, r2, r7      ; m = 2p
inner:  cmplt   r7, r3, r4
        beq     r4, nextc
        add     r1, r7, r5
        movi    r6, 1
        stb     r6, 0(r5)
        add     r7, r2, r7
        br      inner
nextc:  add     r2, 1, r2
        br      outer

count:  movi    r2, 2
        movi    r8, 0           ; prime count
cloop:  cmplt   r2, r3, r4
        beq     r4, done
        add     r1, r2, r5
        ldbu    r6, 0(r5)
        bne     r6, notp
        add     r8, 1, r8
notp:   add     r2, 1, r2
        br      cloop
done:   out     r8
        halt

        .data
flags:  .space  4096
