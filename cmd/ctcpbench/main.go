// Command ctcpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ctcpbench                      # everything, default budget
//	ctcpbench -exp fig6,table8     # selected artifacts
//	ctcpbench -insts 500000        # bigger per-run budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ctcp/internal/experiment"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated list: table1,table2,table3,fig4,fig5,fig6,fig7,table8,table9,table10,fig8,fig9,ablation,sweeps or 'all'")
		insts = flag.Uint64("insts", experiment.DefaultBudget, "committed instruction budget per run")
		par   = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	r := experiment.NewRunner(experiment.Options{Budget: *insts, Parallelism: *par})
	all := []struct {
		name string
		run  func() string
	}{
		{"table1", func() string { return experiment.Table1(r).Render() }},
		{"fig4", func() string { return experiment.Figure4(r).Render() }},
		{"table2", func() string { return experiment.Table2(r).Render() }},
		{"fig5", func() string { return experiment.Figure5(r).Render() }},
		{"table3", func() string { return experiment.Table3(r).Render() }},
		{"fig6", func() string { return experiment.Figure6(r).Render() }},
		{"table8", func() string { return experiment.Table8(r).Render() }},
		{"fig7", func() string { return experiment.Figure7(r).Render() }},
		{"table9", func() string { return experiment.Table9(r).Render() }},
		{"table10", func() string { return experiment.Table10(r).Render() }},
		{"fig8", func() string { return experiment.Figure8(r).Render() }},
		{"ablation", func() string { return experiment.Ablation(r).Render() }},
		{"sweeps", func() string {
			return experiment.SweepTraceCache(r).Render() + "\n" +
				experiment.SweepROB(r).Render() + "\n" +
				experiment.SweepHopLatency(r).Render()
		}},
		{"fig9", func() string { return experiment.Figure9(r).Render() }},
	}

	want := map[string]bool{}
	if *exps == "all" {
		for _, e := range all {
			want[e.name] = true
		}
	} else {
		for _, name := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	fmt.Printf("ctcpbench: budget %d instructions per run\n\n", *insts)
	ran := 0
	for _, e := range all {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		out := e.run()
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "ctcpbench: no matching experiments (see -exp)")
		os.Exit(1)
	}
}
