package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLoopConverges(t *testing.T) {
	p := New(Default())
	pc := uint64(0x1000)
	wrong := 0
	for i := 0; i < 1000; i++ {
		if _, correct := p.PredictAndTrainCond(pc, true); !correct {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d times", wrong)
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	p := New(Default())
	pc := uint64(0x2000)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if _, correct := p.PredictAndTrainCond(pc, taken); !correct && i > 200 {
			wrong++
		}
	}
	// gshare sees the alternation in the history register and should lock on.
	if wrong > 10 {
		t.Errorf("alternating branch mispredicted %d times after warmup", wrong)
	}
}

func TestCorrelatedBranchesLearned(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: pure history
	// correlation that bimodal cannot capture.
	p := New(Default())
	r := rand.New(rand.NewSource(42))
	pcA, pcB := uint64(0x3000), uint64(0x3040)
	wrongB := 0
	for i := 0; i < 4000; i++ {
		a := r.Intn(2) == 0
		p.PredictAndTrainCond(pcA, a)
		if _, correct := p.PredictAndTrainCond(pcB, a); !correct && i > 1000 {
			wrongB++
		}
	}
	if acc := 1 - float64(wrongB)/3000; acc < 0.95 {
		t.Errorf("correlated branch accuracy %.3f, want >= 0.95", acc)
	}
}

func TestRandomBranchAccuracyNearHalf(t *testing.T) {
	p := New(Default())
	r := rand.New(rand.NewSource(1))
	pc := uint64(0x4000)
	for i := 0; i < 5000; i++ {
		p.PredictAndTrainCond(pc, r.Intn(2) == 0)
	}
	acc := p.S.CondAccuracy()
	if acc < 0.35 || acc > 0.7 {
		t.Errorf("random branch accuracy %.3f, expected near 0.5", acc)
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(Default())
	p.PredictAndTrainCond(0x100, true)
	p.PredictAndTrainCond(0x100, true)
	if p.S.CondBranches != 2 {
		t.Errorf("CondBranches = %d", p.S.CondBranches)
	}
	if p.S.CondAccuracy() < 0 || p.S.CondAccuracy() > 1 {
		t.Error("accuracy out of range")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	p := New(Default())
	if _, hit := p.BTBLookup(0x1000); hit {
		t.Error("cold BTB hit")
	}
	p.BTBInsert(0x1000, 0x2000)
	if tgt, hit := p.BTBLookup(0x1000); !hit || tgt != 0x2000 {
		t.Errorf("BTB lookup = %#x,%v", tgt, hit)
	}
	// Update in place.
	p.BTBInsert(0x1000, 0x3000)
	if tgt, _ := p.BTBLookup(0x1000); tgt != 0x3000 {
		t.Errorf("BTB update failed: %#x", tgt)
	}
}

func TestBTBEviction(t *testing.T) {
	cfg := Default()
	cfg.BTBEntries = 8
	cfg.BTBWays = 2 // 4 sets
	p := New(cfg)
	// Three branches in the same set (stride = sets*4 bytes = 16).
	p.BTBInsert(0x1000, 1)
	p.BTBInsert(0x1010, 2)
	p.BTBLookup(0x1000) // refresh
	p.BTBInsert(0x1020, 3)
	if _, hit := p.BTBLookup(0x1010); hit {
		t.Error("LRU BTB entry survived")
	}
	if _, hit := p.BTBLookup(0x1000); !hit {
		t.Error("MRU BTB entry evicted")
	}
}

func TestRASMatchesCallStack(t *testing.T) {
	p := New(Default())
	p.PushReturn(0x100)
	p.PushReturn(0x200)
	if a, ok := p.PredictReturn(); !ok || a != 0x200 {
		t.Errorf("first pop = %#x,%v", a, ok)
	}
	if a, ok := p.PredictReturn(); !ok || a != 0x100 {
		t.Errorf("second pop = %#x,%v", a, ok)
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("empty RAS returned a prediction")
	}
}

func TestRASWrapsAtCapacity(t *testing.T) {
	cfg := Default()
	cfg.RASEntries = 4
	p := New(cfg)
	for i := 1; i <= 6; i++ {
		p.PushReturn(uint64(i * 0x10))
	}
	// Deepest two entries were overwritten; the newest four remain.
	for want := 6; want >= 3; want-- {
		if a, ok := p.PredictReturn(); !ok || a != uint64(want*0x10) {
			t.Fatalf("pop = %#x,%v; want %#x", a, ok, want*0x10)
		}
	}
}

func TestReset(t *testing.T) {
	p := New(Default())
	p.PredictAndTrainCond(0x100, true)
	p.BTBInsert(0x100, 0x200)
	p.PushReturn(0x300)
	p.Reset()
	if p.S.CondBranches != 0 {
		t.Error("Reset did not clear stats")
	}
	if _, hit := p.BTBLookup(0x100); hit {
		t.Error("Reset did not clear BTB")
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("Reset did not clear RAS")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cfg := Default()
	cfg.BimodalEntries = 1000 // not a power of two
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted bad config")
		}
	}()
	New(cfg)
}
