package isa

import "fmt"

// Binary instruction encoding. Each instruction packs into one uint64:
//
//	bits  6:0   opcode
//	bits 12:7   Ra
//	bits 18:13  Rb
//	bits 24:19  Rc
//	bit  25     UseImm
//	bits 57:26  Imm (signed 32-bit)
//
// Register fields are 6 bits wide; absent operands (NoReg) are encoded as the
// hardwired zero register of the appropriate file, which is semantically
// identical. Decode therefore yields the canonical form of an instruction
// (see Canon).

const (
	opBits  = 7
	regBits = 6
	immBits = 32

	raShift   = opBits
	rbShift   = raShift + regBits
	rcShift   = rbShift + regBits
	immShift  = rcShift + regBits + 1
	flagShift = rcShift + regBits
)

// ErrBadEncoding is returned by Decode for words that do not decode to a
// defined instruction.
type ErrBadEncoding struct {
	Word   uint64
	Reason string
}

func (e *ErrBadEncoding) Error() string {
	return fmt.Sprintf("isa: bad encoding %#016x: %s", e.Word, e.Reason)
}

func encodeReg(r Reg, fp bool) uint64 {
	if r == NoReg {
		if fp {
			r = FZeroReg
		} else {
			r = ZeroReg
		}
	}
	return uint64(r) & (1<<regBits - 1)
}

// Encode packs the instruction into its binary word. Encode panics if Imm is
// outside the signed 32-bit range; program text produced by the assembler and
// builder always satisfies this.
func (i Inst) Encode() uint64 {
	if i.Imm > 1<<31-1 || i.Imm < -(1<<31) {
		panic(fmt.Sprintf("isa: immediate %d of %q exceeds 32-bit encoding range", i.Imm, i))
	}
	c := i.Canon()
	w := uint64(c.Op) & (1<<opBits - 1)
	w |= encodeReg(c.Ra, false) << raShift
	w |= encodeReg(c.Rb, false) << rbShift
	w |= encodeReg(c.Rc, false) << rcShift
	if c.UseImm {
		w |= 1 << flagShift
	}
	w |= (uint64(uint32(int32(c.Imm)))) << immShift
	return w
}

// Decode unpacks a binary word into the canonical instruction it encodes.
func Decode(w uint64) (Inst, error) {
	op := Op(w & (1<<opBits - 1))
	if int(op) >= NumOps {
		return Inst{}, &ErrBadEncoding{w, "undefined opcode"}
	}
	i := Inst{
		Op:     op,
		Ra:     Reg(w >> raShift & (1<<regBits - 1)),
		Rb:     Reg(w >> rbShift & (1<<regBits - 1)),
		Rc:     Reg(w >> rcShift & (1<<regBits - 1)),
		UseImm: w>>flagShift&1 == 1,
		Imm:    int64(int32(uint32(w >> immShift))),
	}
	return i.Canon(), nil
}

// Canon returns the canonical form of the instruction: operand fields that
// the opcode does not use are forced to the integer zero register, register
// operands land in the correct file (FP ops read/write F-space), and UseImm
// is cleared for formats that carry no register-vs-immediate distinction.
// Canonical instructions survive an Encode/Decode round trip unchanged.
func (i Inst) Canon() Inst {
	c := i
	norm := func(r Reg, want bool) Reg { // want=true → FP file
		if r == NoReg || r.IsZero() {
			if want {
				return FZeroReg
			}
			return ZeroReg
		}
		if want && !r.IsFP() {
			return Reg(uint8(r)%NumIntRegs) + NumIntRegs
		}
		if !want && r.IsFP() {
			return Reg(uint8(r) % NumIntRegs)
		}
		if r >= NumRegs {
			return Reg(uint8(r) % NumRegs)
		}
		return r
	}
	zero := func() Reg { return ZeroReg }
	switch c.Op.Class() {
	case ClassNop, ClassHalt:
		c.Rb, c.Rc = zero(), zero()
		if c.Op == OUT {
			c.Ra = norm(c.Ra, false)
		} else {
			c.Ra = zero()
			c.Imm = 0
		}
		c.UseImm = false
		if c.Op != OUT {
			break
		}
		c.Imm = 0
	case ClassLoad:
		c.Ra, c.Rb, c.Rc = norm(c.Ra, false), zero(), norm(c.Rc, false)
		c.UseImm = true
	case ClassFPLoad:
		c.Ra, c.Rb, c.Rc = norm(c.Ra, false), zero(), norm(c.Rc, true)
		c.UseImm = true
	case ClassStore:
		c.Ra, c.Rb, c.Rc = norm(c.Ra, false), norm(c.Rb, false), zero()
		c.UseImm = true
	case ClassFPStore:
		c.Ra, c.Rb, c.Rc = norm(c.Ra, false), norm(c.Rb, true), zero()
		c.UseImm = true
	case ClassBranch:
		if c.Op == BR {
			c.Ra, c.Rb = zero(), zero()
			c.Rc = norm(c.Rc, false)
		} else {
			c.Ra, c.Rb, c.Rc = norm(c.Ra, false), zero(), zero()
		}
		c.UseImm = true
	case ClassFPBranch:
		c.Ra, c.Rb, c.Rc = norm(c.Ra, true), zero(), zero()
		c.UseImm = true
	case ClassJump:
		c.Ra = zero()
		c.Rb = norm(c.Rb, false)
		if c.Op == JSR {
			c.Rc = norm(c.Rc, false)
		} else {
			c.Rc = zero()
		}
		c.UseImm = false
		c.Imm = 0
	case ClassFPAdd, ClassFPMul, ClassFPDiv, ClassFPSqrt:
		fpA, fpC := true, true
		switch c.Op {
		case ITOF, CVTQT:
			fpA = false
		case FTOI, CVTTQ:
			fpC = false
		}
		c.Ra = norm(c.Ra, fpA)
		c.Rc = norm(c.Rc, fpC)
		if isUnary(c.Op) {
			c.Rb = Reg(FZeroReg)
			if !fpA {
				c.Rb = zero()
			}
		} else {
			c.Rb = norm(c.Rb, true)
		}
		c.UseImm = false
		c.Imm = 0
	default: // integer operate
		if c.Op == MOVI {
			c.Ra, c.Rb = zero(), zero()
			c.Rc = norm(c.Rc, false)
			c.UseImm = true
			break
		}
		c.Ra = norm(c.Ra, false)
		c.Rc = norm(c.Rc, false)
		if isUnary(c.Op) {
			c.Rb = zero()
			c.UseImm = false
			c.Imm = 0
		} else if c.UseImm {
			c.Rb = zero()
		} else {
			c.Rb = norm(c.Rb, false)
			c.Imm = 0
		}
	}
	return c
}

func isUnary(op Op) bool {
	switch op {
	case SEXTB, SEXTW, ITOF, FTOI, CVTQT, CVTTQ, SQRTT:
		return true
	}
	return false
}
