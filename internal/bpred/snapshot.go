package bpred

import "ctcp/internal/snap"

// Snapshot serializes every predictor table: bimodal/gshare/chooser
// counters, global history, the full BTB (tags, targets, valid bits, LRU
// stamps), the return-address stack, and the prediction statistics. The
// histMask field is derived from the configuration and is rebuilt by New,
// not serialized.
func (p *Predictor) Snapshot(w *snap.Writer) {
	w.Begin("bpred")
	w.Int(p.cfg.BimodalEntries)
	w.Int(p.cfg.GshareEntries)
	w.Int(p.cfg.ChooserEntries)
	w.Int(p.cfg.HistoryBits)
	w.Int(p.cfg.BTBEntries)
	w.Int(p.cfg.BTBWays)
	w.Int(p.cfg.RASEntries)
	w.Bytes(p.bimodal)
	w.Bytes(p.gshare)
	w.Bytes(p.chooser)
	w.U64(p.history)
	_ = p.histMask // derived from cfg.HistoryBits in New; never mutated
	w.U64Slice(p.btbTags)
	w.U64Slice(p.btbTgts)
	w.BoolSlice(p.btbValid)
	w.U64Slice(p.btbLRU)
	w.U64(p.btbStamp)
	w.U64Slice(p.ras)
	w.Int(p.rasTop)
	w.U64(p.S.CondBranches)
	w.U64(p.S.CondMispredict)
	w.U64(p.S.IndirectJumps)
	w.U64(p.S.IndirectMiss)
	w.U64(p.S.BTBLookups)
	w.U64(p.S.BTBMisses)
	w.U64(p.S.Returns)
	w.U64(p.S.ReturnMiss)
	w.End()
}

// Restore rebuilds the predictor tables from r. The receiver must have been
// constructed by New with the same configuration, which is enforced by the
// fingerprint at the head of the section.
func (p *Predictor) Restore(r *snap.Reader) {
	r.Begin("bpred")
	r.ExpectInt("bpred bimodal entries", p.cfg.BimodalEntries)
	r.ExpectInt("bpred gshare entries", p.cfg.GshareEntries)
	r.ExpectInt("bpred chooser entries", p.cfg.ChooserEntries)
	r.ExpectInt("bpred history bits", p.cfg.HistoryBits)
	r.ExpectInt("bpred BTB entries", p.cfg.BTBEntries)
	r.ExpectInt("bpred BTB ways", p.cfg.BTBWays)
	r.ExpectInt("bpred RAS entries", p.cfg.RASEntries)
	p.bimodal = r.Bytes()
	p.gshare = r.Bytes()
	p.chooser = r.Bytes()
	p.history = r.U64()
	p.btbTags = r.U64Slice()
	p.btbTgts = r.U64Slice()
	p.btbValid = r.BoolSlice()
	p.btbLRU = r.U64Slice()
	p.btbStamp = r.U64()
	p.ras = r.U64Slice()
	p.rasTop = r.Int()
	p.S.CondBranches = r.U64()
	p.S.CondMispredict = r.U64()
	p.S.IndirectJumps = r.U64()
	p.S.IndirectMiss = r.U64()
	p.S.BTBLookups = r.U64()
	p.S.BTBMisses = r.U64()
	p.S.Returns = r.U64()
	p.S.ReturnMiss = r.U64()
	r.End()
}
