package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc structurally pins the cycle model's 0 allocs/op result. Functions
// annotated //ctcp:hotpath — the steady-state cycle loop — and every
// intra-package function they transitively call are checked for allocating
// constructs:
//
//   - make and new
//   - map and slice composite literals, and &T{} (an escaping heap literal)
//   - append to a non-persistent slice (one not rooted in a struct field,
//     package variable or parameter; appends into reused buffers amortize to
//     zero steady-state allocation, fresh slices allocate every call)
//   - any fmt call (they all allocate)
//   - closure and method-value creation, unless the closure is immediately
//     invoked or bound to a local that is only ever called
//   - boxing a non-pointer value into an interface
//
// Deliberate amortized allocation sites (pool refills, table growth) are
// annotated //ctcp:coldpath: the traversal does not descend into them, which
// keeps the warm-up path honest without scattering suppressions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocating construct inside a //ctcp:hotpath function or its callees",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	decls, order := packageFuncs(p)
	cold := map[*ast.FuncDecl]bool{}
	var roots []*ast.FuncDecl
	for _, d := range order {
		if funcAnnotated(d, "ctcp:coldpath") {
			cold[d] = true
		}
		if funcAnnotated(d, "ctcp:hotpath") {
			if cold[d] {
				p.Reportf(d.Name.Pos(), "%s is annotated both //ctcp:hotpath and //ctcp:coldpath", d.Name.Name)
				continue
			}
			roots = append(roots, d)
		}
	}
	if len(roots) == 0 {
		return
	}

	type item struct {
		decl *ast.FuncDecl
		root string
	}
	visited := map[*ast.FuncDecl]bool{}
	var queue []item
	for _, r := range roots {
		queue = append(queue, item{r, r.Name.Name})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.decl] || cold[it.decl] {
			continue
		}
		visited[it.decl] = true
		checkHotFunc(p, it.decl, it.root)
		for _, callee := range calleeDecls(p, it.decl, decls) {
			queue = append(queue, item{callee, it.root})
		}
	}
}

// checkHotFunc reports every allocating construct in one hot function.
func checkHotFunc(p *Pass, d *ast.FuncDecl, root string) {
	if d.Body == nil {
		return
	}
	rooted := rootedSlices(p, d)

	// Expressions appearing in call position (CallExpr.Fun): closures and
	// method values used here do not outlive the call.
	callFuns := map[ast.Expr]bool{}
	// Closures bound to a local variable: lit -> variable object.
	litVar := map[*ast.FuncLit]types.Object{}
	// All function literals, for locating a ReturnStmt's enclosing signature.
	var lits []*ast.FuncLit
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFuns[ast.Unparen(n.Fun)] = true
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := p.Pkg.Info.Defs[id]; obj != nil {
								litVar[lit] = obj
							}
						}
					}
				}
			}
		case *ast.FuncLit:
			lits = append(lits, n)
		}
		return true
	})

	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, d, n, rooted, root)
		case *ast.CompositeLit:
			t := p.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in the hot path of //ctcp:hotpath %s", root)
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in the hot path of //ctcp:hotpath %s", root)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal heap-allocates in the hot path of //ctcp:hotpath %s", root)
				}
			}
		case *ast.FuncLit:
			if callFuns[ast.Expr(n)] {
				return true // immediately invoked
			}
			if obj, ok := litVar[n]; ok && onlyCalled(p, d, obj, callFuns) {
				return true // bound to a local that is only ever called
			}
			p.Reportf(n.Pos(), "closure creation allocates in the hot path of //ctcp:hotpath %s", root)
		case *ast.SelectorExpr:
			if sel, ok := p.Pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[ast.Expr(n)] {
				p.Reportf(n.Pos(), "method value %s creates a closure in the hot path of //ctcp:hotpath %s; bind it once outside the loop", n.Sel.Name, root)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					reportBoxing(p, n.Rhs[i], p.TypeOf(n.Lhs[i]), root)
				}
			}
		case *ast.ReturnStmt:
			sig := enclosingSignature(p, d, lits, n.Pos())
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					reportBoxing(p, res, sig.Results().At(i).Type(), root)
				}
			}
		}
		return true
	})
}

// checkHotCall handles builtins (make/new/append), fmt calls, interface
// conversions and argument boxing for one call site.
func checkHotCall(p *Pass, d *ast.FuncDecl, call *ast.CallExpr, rooted map[types.Object]bool, root string) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Reportf(call.Pos(), "make allocates in the hot path of //ctcp:hotpath %s", root)
			case "new":
				p.Reportf(call.Pos(), "new allocates in the hot path of //ctcp:hotpath %s", root)
			case "append":
				if len(call.Args) > 0 && !sliceRooted(p, call.Args[0], rooted) {
					p.Reportf(call.Pos(), "append to a non-persistent slice allocates on every call in the hot path of //ctcp:hotpath %s; append into a reused field/parameter buffer", root)
				}
			}
			return
		}
	}

	// Type conversions: only interface targets allocate (boxing).
	if tv, ok := p.Pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			reportBoxing(p, call.Args[0], tv.Type, root)
		}
		return
	}

	// fmt.* always allocates.
	if se, ok := fun.(*ast.SelectorExpr); ok {
		if obj, ok := p.Pkg.Info.Uses[se.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s allocates in the hot path of //ctcp:hotpath %s", obj.Name(), root)
			return
		}
	}

	// Argument boxing against the callee signature.
	sig, ok := p.TypeOf(fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		reportBoxing(p, arg, param, root)
	}
}

// reportBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed destination.
func reportBoxing(p *Pass, src ast.Expr, dst types.Type, root string) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := p.TypeOf(src)
	if st == nil {
		return
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // already an interface, or pointer-shaped: no allocation
	}
	p.Reportf(src.Pos(), "non-pointer %s boxed into interface %s allocates in the hot path of //ctcp:hotpath %s",
		types.TypeString(st, types.RelativeTo(p.Pkg.Types)),
		types.TypeString(dst, types.RelativeTo(p.Pkg.Types)), root)
}

// onlyCalled reports whether every use of obj inside d is in call position.
func onlyCalled(p *Pass, d *ast.FuncDecl, obj types.Object, callFuns map[ast.Expr]bool) bool {
	ok := true
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent && p.Pkg.Info.Uses[id] == obj && !callFuns[ast.Expr(id)] {
			ok = false
		}
		return ok
	})
	return ok
}

// enclosingSignature returns the signature governing a return statement at
// pos: the innermost enclosing function literal, or the declaration itself.
func enclosingSignature(p *Pass, d *ast.FuncDecl, lits []*ast.FuncLit, pos token.Pos) *types.Signature {
	var best *ast.FuncLit
	for _, lit := range lits {
		if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
			if best == nil || (best.Body.Pos() <= lit.Body.Pos() && lit.Body.End() <= best.Body.End()) {
				best = lit
			}
		}
	}
	if best != nil {
		sig, _ := p.TypeOf(best).(*types.Signature)
		return sig
	}
	if fn, ok := p.Pkg.Info.Defs[d.Name].(*types.Func); ok {
		return fn.Type().(*types.Signature)
	}
	return nil
}

// rootedSlices computes, per function, the set of local variables that only
// ever alias persistent storage (struct fields, package variables,
// parameters, or re-slices/appends thereof). Appending to such a variable
// amortizes: after warm-up the backing array has grown to its steady-state
// capacity and append never allocates again. Appending to anything else
// allocates on every call.
func rootedSlices(p *Pass, d *ast.FuncDecl) map[types.Object]bool {
	rooted := map[types.Object]bool{}
	assigns := map[types.Object][]ast.Expr{}
	// Parameters and receivers alias caller-owned storage: seed them rooted
	// (an assignment of fresh storage to one still strikes it below).
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	addFields(d.Recv)
	addFields(d.Type.Params)
	ast.Inspect(d, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})
	collect := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		assigns[obj] = append(assigns[obj], rhs)
	}
	ast.Inspect(d, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					collect(n.Lhs[i], n.Rhs[i])
				}
			} else {
				// Multi-value assignment: conservatively unrooted.
				for i := range n.Lhs {
					collect(n.Lhs[i], nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					collect(name, n.Values[i])
				} else {
					collect(name, nil) // zero-value local: fresh storage
				}
			}
		}
		return true
	})
	// Optimistic fixpoint: assume every assigned variable is rooted, then
	// strike any with an assignment that is not rooted under the current
	// assumption (self-references like v = append(v, x) stay stable).
	for obj := range assigns { // fixpoint over a set; result is order-independent
		rooted[obj] = true
	}
	for changed := true; changed; {
		changed = false
		for obj, rhss := range assigns {
			if !rooted[obj] {
				continue
			}
			for _, rhs := range rhss {
				if rhs == nil || !sliceRooted(p, rhs, rooted) {
					delete(rooted, obj)
					changed = true
					break
				}
			}
		}
	}
	return rooted
}

// sliceRooted reports whether e denotes persistent storage under the rooted
// local-variable assumption.
func sliceRooted(p *Pass, e ast.Expr, rooted map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Pkg.Info.Uses[e]
		if obj == nil {
			obj = p.Pkg.Info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if rooted[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			return v.Parent() == v.Pkg().Scope() // package-level variable
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		if v, ok := p.Pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level variable (possibly qualified)
		}
		return false
	case *ast.IndexExpr:
		return sliceRooted(p, e.X, rooted)
	case *ast.SliceExpr:
		return sliceRooted(p, e.X, rooted)
	case *ast.StarExpr:
		return sliceRooted(p, e.X, rooted)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return sliceRooted(p, e.Args[0], rooted)
			}
		}
		return false
	default:
		return false
	}
}
