package experiment

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

const (
	ckptBudget = uint64(20_000)
	ckptEvery  = uint64(5_000)
)

// segmentedReference runs gzip/base in memory with the same segment
// schedule the checkpointed runner uses (pauses at every multiple of
// ckptEvery), which is the bit-exact baseline a resumed run must match.
func segmentedReference(t *testing.T) *pipeline.Stats {
	t.Helper()
	bm, _ := workload.ByName("gzip")
	cfg := BaseConfig()
	cfg.MaxInsts = 0
	p := pipeline.New(&emu.LimitStream{S: emu.New(bm.ProgramFor(ckptBudget)), Budget: ckptBudget}, cfg)
	for next := ckptEvery; ; next += ckptEvery {
		if next > ckptBudget {
			next = ckptBudget
		}
		if p.RunTo(next) || p.Consumed() >= ckptBudget {
			break
		}
	}
	return p.Finish()
}

// TestCheckpointedRunMatchesSegmented: a checkpointed run writes its
// journal, removes its checkpoint, matches the in-memory segmented
// reference exactly, and a second runner over the same directory returns
// the identical stats straight from the journal.
func TestCheckpointedRunMatchesSegmented(t *testing.T) {
	dir := t.TempDir()
	want := segmentedReference(t)
	bm, _ := workload.ByName("gzip")

	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		t.Errorf("checkpointed run diverged from segmented reference\n want %s\n got  %s", wj, gj)
	}

	stem := filepath.Join(dir, sanitizeKey("gzip/base"))
	if _, err := os.Stat(stem + ".done.json"); err != nil {
		t.Fatalf("stats journal missing: %v", err)
	}
	if _, err := os.Stat(stem + ".ckpt"); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion (err=%v)", err)
	}

	// A fresh runner resumes from the journal without resimulating: hook
	// the default path so any real simulation would be visible.
	r2 := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got2, err := r2.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Error("journal-resumed stats differ from the original run")
	}
}

// TestCheckpointedResumeFromPlantedCheckpoint simulates an interrupted
// sweep: the first segment's checkpoint is on disk (written through the
// public Snapshot path) with no journal, and the runner must pick it up
// and finish bit-identically to the uninterrupted segmented run.
func TestCheckpointedResumeFromPlantedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := segmentedReference(t)
	bm, _ := workload.ByName("gzip")

	cfg := BaseConfig()
	cfg.MaxInsts = 0
	p := pipeline.New(&emu.LimitStream{S: emu.New(bm.ProgramFor(ckptBudget)), Budget: ckptBudget}, cfg)
	if p.RunTo(ckptEvery) {
		t.Fatal("stream exhausted during the first segment")
	}
	opts := Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}
	w := snap.NewWriter()
	w.Begin("run")
	w.U64(RunFingerprint("gzip", BaseConfig(), opts))
	w.End()
	p.Snapshot(w)
	if err := snap.WriteFile(filepath.Join(dir, sanitizeKey("gzip/base")+".ckpt"), w); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		t.Errorf("resumed run diverged from uninterrupted segmented run\n want %s\n got  %s", wj, gj)
	}
}

// TestCheckpointedCorruptCheckpointRestarts: an undecodable checkpoint is
// discarded and the run completes from scratch instead of failing.
func TestCheckpointedCorruptCheckpointRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, sanitizeKey("gzip/base")+".ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	bm, _ := workload.ByName("gzip")
	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := segmentedReference(t); !reflect.DeepEqual(want, got) {
		t.Error("restarted run diverged from segmented reference")
	}
}

// TestCheckpointedBudgetChangeResimulates is the stale-result regression
// test: a completed run's journal must only satisfy reruns with the same
// budget. Rerunning the same key over the same directory at double the
// budget has to produce fresh full-length stats, never the old journal's.
func TestCheckpointedBudgetChangeResimulates(t *testing.T) {
	dir := t.TempDir()
	bm, _ := workload.ByName("gzip")

	first, err := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if first.Retired != ckptBudget {
		t.Fatalf("first run retired %d, want %d", first.Retired, ckptBudget)
	}

	second, err := NewRunner(Options{Budget: 2 * ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if second.Retired != 2*ckptBudget {
		t.Fatalf("rerun at budget %d served stale stats: retired %d", 2*ckptBudget, second.Retired)
	}

	// The journal now records the new budget's run; a third runner at the
	// new budget is satisfied from it, and one at the old budget is not.
	again, err := NewRunner(Options{Budget: 2 * ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, again) {
		t.Error("journal reread at the same budget differs from the run that wrote it")
	}
	back, err := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, back) {
		t.Error("returning to the original budget did not reproduce the original stats")
	}
}

// TestCheckpointedStaleCheckpointDiscarded plants a mid-run checkpoint
// written under a different budget (whose snapshotted LimitStream still
// carries that budget) and checks a run at a new budget discards it and
// restarts from scratch instead of resuming into the wrong budget.
func TestCheckpointedStaleCheckpointDiscarded(t *testing.T) {
	dir := t.TempDir()
	bm, _ := workload.ByName("gzip")

	// Build the stale checkpoint exactly as a killed old-budget run would
	// have left it: fingerprinted for ckptBudget, one segment in.
	oldOpts := Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}
	cfg := BaseConfig()
	cfg.MaxInsts = 0
	p := pipeline.New(&emu.LimitStream{S: emu.New(bm.ProgramFor(ckptBudget)), Budget: ckptBudget}, cfg)
	if p.RunTo(ckptEvery) {
		t.Fatal("stream exhausted during the first segment")
	}
	w := snap.NewWriter()
	w.Begin("run")
	w.U64(RunFingerprint("gzip", BaseConfig(), oldOpts))
	w.End()
	p.Snapshot(w)
	if err := snap.WriteFile(filepath.Join(dir, sanitizeKey("gzip/base")+".ckpt"), w); err != nil {
		t.Fatal(err)
	}

	newBudget := 2 * ckptBudget
	got, err := NewRunner(Options{Budget: newBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Retired != newBudget {
		t.Fatalf("run resumed a stale checkpoint: retired %d, want %d", got.Retired, newBudget)
	}
}

// TestCheckpointedLegacyJournalIgnored: a pre-fingerprint journal (raw stats
// JSON) must be treated as stale and resimulated, not trusted — it cannot
// prove which budget or config produced it.
func TestCheckpointedLegacyJournalIgnored(t *testing.T) {
	dir := t.TempDir()
	bm, _ := workload.ByName("gzip")
	bogus, err := json.Marshal(&pipeline.Stats{Cycles: 42, Retired: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, sanitizeKey("gzip/base")+".done.json"), bogus, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := segmentedReference(t); !reflect.DeepEqual(want, got) {
		t.Error("legacy journal was served instead of resimulating")
	}
}

// TestSanitizeKeyDistinct: keys that collapse to the same character-mapped
// stem must still map to distinct files (the short raw-key hash), and equal
// keys must keep mapping to equal stems across calls.
func TestSanitizeKeyDistinct(t *testing.T) {
	if sanitizeKey("a/b-x") == sanitizeKey("a_b/x") {
		t.Error("distinct keys share a checkpoint file stem")
	}
	if sanitizeKey("gzip/base") != sanitizeKey("gzip/base") {
		t.Error("sanitizeKey is not deterministic")
	}
	keys := []string{"a/b-x", "a_b/x", "a-b/x", "a/b_x", "a/b/x", "a//b-x", "A/b-x"}
	seen := map[string]string{}
	for _, k := range keys {
		stem := sanitizeKey(k)
		if prev, dup := seen[stem]; dup {
			t.Errorf("keys %q and %q collide on stem %q", prev, k, stem)
		}
		seen[stem] = k
	}
}

// TestRunnerInterrupt: a closed Interrupt channel makes pending runs return
// ErrInterrupted instead of simulating, and a checkpointed rerun without the
// interrupt completes normally afterwards.
func TestRunnerInterrupt(t *testing.T) {
	dir := t.TempDir()
	bm, _ := workload.ByName("gzip")
	stop := make(chan struct{})
	close(stop)
	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery, Interrupt: stop})
	if _, err := r.RunErr(bm, "base", BaseConfig()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	got, err := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery}).
		RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := segmentedReference(t); !reflect.DeepEqual(want, got) {
		t.Error("post-interrupt rerun diverged from segmented reference")
	}
}

// TestSampledRunnerDeterministic: the sampled runner path is reproducible
// and reports the estimate over the full budget.
func TestSampledRunnerDeterministic(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	opts := Options{Budget: ckptBudget, SampleInterval: 5_000, SampleDetail: 2_000, SampleWarmup: 1_000, SampleWorkers: 4}
	a, err := NewRunner(opts).RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(opts).RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two sampled runner executions differ")
	}
	if a.Retired != ckptBudget {
		t.Errorf("sampled stats cover %d insts, want %d", a.Retired, ckptBudget)
	}
	if a.Cycles == 0 {
		t.Error("sampled estimate has zero cycles")
	}
}

// TestSampledAndCheckpointedExclusive: configuring both modes is a per-run
// error, not a silent precedence choice.
func TestSampledAndCheckpointedExclusive(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	r := NewRunner(Options{Budget: 1_000, SampleInterval: 500, CheckpointDir: t.TempDir()})
	if _, err := r.RunErr(bm, "base", BaseConfig()); err == nil {
		t.Fatal("mutually exclusive modes accepted")
	}
}
