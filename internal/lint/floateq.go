package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != with a floating-point operand in the statistics
// and experiment packages, where speedups, rates and harmonic means are
// computed: exact float comparison is almost always a rounding-error trap
// that shows up as a one-ULP flicker in a rendered table. Compare against an
// epsilon, restructure to compare the integer inputs, or suppress with a
// reason when exactness is intended (e.g. testing a float that was assigned
// from an integer literal). Constant-folded comparisons are ignored.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= on floating-point values; compare integers or use an epsilon",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath, "internal/stats", "internal/experiment")
	},
	Run: runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if tv, ok := p.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			if isFloat(p.TypeOf(be.X)) || isFloat(p.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "%s on floating-point operands is exact-equality; compare the integer inputs or use an epsilon", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
