//go:build !race

package sample

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are meaningless under its instrumentation overhead.
const raceEnabled = false
