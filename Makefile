GO ?= go

.PHONY: check build vet lint test race bench results serve-check

# check is the CI gate: compile everything, vet, run the module's own static
# analysis suite (cmd/ctcplint), then the full test suite under the race
# detector (the runner stress tests exercise it meaningfully).
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs ctcplint, the stdlib-only analyzer suite in internal/lint that
# enforces the simulator's determinism and hot-path invariants (map iteration
# order, //ctcp:hotpath allocations, wall clock/ambient randomness, float
# equality, Config.Validate coverage, unchecked artifact writes).
lint:
	$(GO) run ./cmd/ctcplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# results regenerates results_full.txt, the checked-in full experiment sweep
# (every table, figure, ablation and sweep at a 200k-instruction budget). The
# simulator is deterministic, so on an unchanged tree every number must
# reproduce exactly (only the wall-clock "[... regenerated in ...]" lines
# vary); a numeric diff after a model change is the change's measured effect
# on the paper-style results and belongs in the same commit.
results:
	$(GO) run ./cmd/ctcpbench -insts 200000 > results_full.txt

# serve-check runs the ctcpd service suite under the race detector: the
# exactly-once dedup guarantee (asserted from the outside via /metrics),
# restart-reuse from the result store, journal restart-replay of queued and
# interrupted jobs, failed-fingerprint retry, tenant auth/quota/rate limits,
# fair-share dispatch, the progress event stream, job retention,
# stale-fingerprint resimulation, backpressure, and the shutdown drain.
serve-check:
	$(GO) test -race -count=1 ./internal/serve/

# bench runs the cycle-model microbenchmarks, then regenerates
# BENCH_pipeline.json (current throughput next to the frozen pre-optimization
# baseline) via the programmatic harness in internal/bench.
bench:
	$(GO) test ./internal/pipeline -run='^$$' -bench=. -benchmem -benchtime=1s
	$(GO) run ./cmd/ctcpbench -microbench -bench-out BENCH_pipeline.json
