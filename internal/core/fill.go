package core

import (
	"fmt"

	"ctcp/internal/cluster"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

// Config parameterizes the fill unit.
type Config struct {
	Strategy StrategyKind
	Geom     cluster.Geometry
	Trace    trace.Config
	// DisableChains turns off inter-trace chain feedback, leaving only the
	// intra-trace dynamic-criticality heuristics (the paper's "isolating the
	// intra-trace heuristics" ablation, §5.3).
	DisableChains bool
	// ChainTableCap bounds the chain profile table; 0 selects the default of
	// 4x the trace cache's instruction capacity.
	ChainTableCap int
}

// FillStats counts fill-unit and assignment activity.
type FillStats struct {
	TracesBuilt uint64
	InstsBuilt  uint64

	// OptionCounts histograms the FDRT policy option applied per instruction
	// (Table 5 / Figure 7): A, B, C, D, E; Skipped counts A–D instructions
	// that found no slot near their target and fell back to Friendly
	// placement.
	OptionA, OptionB, OptionC, OptionD, OptionE uint64
	Skipped                                     uint64

	// Chain bookkeeping.
	LeadersCreated   uint64
	FollowersCreated uint64

	// Cluster migration (Table 9): instructions whose assigned cluster
	// differs from their previous dynamic construction.
	Seen          uint64 // instructions with a previous assignment
	Migrated      uint64
	ChainSeen     uint64
	ChainMigrated uint64
}

// MigrationRate returns Migrated/Seen.
func (s FillStats) MigrationRate() float64 {
	if s.Seen == 0 {
		return 0
	}
	return float64(s.Migrated) / float64(s.Seen)
}

// ChainMigrationRate returns ChainMigrated/ChainSeen.
func (s FillStats) ChainMigrationRate() float64 {
	if s.ChainSeen == 0 {
		return 0
	}
	return float64(s.ChainMigrated) / float64(s.ChainSeen)
}

// FillUnit consumes the retiring instruction stream, maintains cluster-chain
// feedback, constructs traces, assigns clusters per the configured strategy,
// and installs the finished lines into the trace cache.
//
// The fill unit runs once per retired instruction, so its assignment pass is
// part of the simulator's hot path: cluster priority orders that depend only
// on the geometry are computed once at construction, and all per-trace
// working state lives in reusable scratch buffers rather than per-call
// allocations.
type FillUnit struct {
	cfg     Config
	builder *trace.Builder
	tc      *trace.Cache
	chains  *ChainProfile
	pending []RetireInfo

	// lastCluster tracks each static instruction's most recent assignment
	// for the migration statistics of Table 9. It is updated for every slot
	// of every built trace, so it uses the same dense PC-indexed layout as
	// the chain table.
	lastCluster pcMap[clusterSlot]

	// Geometry-derived cluster orders, fixed for the fill unit's lifetime.
	selfFirst [][]int // selfFirst[c] = [c, neighbors of c middle-most first]
	midsTrunc []int   // the Clusters/2 (min 1) middle-most clusters
	natOrder  []int   // slot indices 0..TotalWidth-1
	midOrder  []int   // slot indices grouped by cluster, middle-most first

	// Per-trace scratch, reused across traces.
	assigned  []int
	capacity  []int
	prods     [][2]int
	consumers []bool
	order     []int
	nextSlot  []int

	// memo caches per-line assignment results keyed by trace StartPC,
	// fingerprint-validated against every input the walk reads (see
	// assignmemo.go). Scratch: never serialized, cleared on Flush/Restore.
	memo       pcMap[assignMemoEntry]
	memoHits   uint64
	memoMisses uint64

	S FillStats
}

// NewFillUnit builds a fill unit that installs into tc.
func NewFillUnit(cfg Config, tc *trace.Cache) *FillUnit {
	capLimit := cfg.ChainTableCap
	if capLimit == 0 {
		capLimit = 4 * cfg.Trace.Lines * cfg.Trace.MaxLen
	}
	f := &FillUnit{
		cfg:     cfg,
		builder: trace.NewBuilder(cfg.Trace),
		tc:      tc,
		chains:  NewChainProfile(capLimit),
	}
	g := cfg.Geom
	f.selfFirst = make([][]int, g.Clusters)
	for c := 0; c < g.Clusters; c++ {
		f.selfFirst[c] = append([]int{c}, g.Neighbors(c)...)
	}
	mids := g.MiddleClusters()
	half := g.Clusters / 2
	if half < 1 {
		half = 1
	}
	f.midsTrunc = mids[:half]
	f.natOrder = make([]int, g.TotalWidth())
	for i := range f.natOrder {
		f.natOrder[i] = i
	}
	for _, c := range mids {
		for k := 0; k < g.Width; k++ {
			f.midOrder = append(f.midOrder, c*g.Width+k)
		}
	}
	f.capacity = make([]int, g.Clusters)
	f.nextSlot = make([]int, g.Clusters)
	f.assigned = make([]int, 0, cfg.Trace.MaxLen)
	f.prods = make([][2]int, 0, cfg.Trace.MaxLen)
	f.consumers = make([]bool, 0, cfg.Trace.MaxLen)
	f.order = make([]int, 0, g.Clusters+2)
	f.pending = make([]RetireInfo, 0, cfg.Trace.MaxLen)
	return f
}

// Chains exposes the chain profile table (the pipeline reads it when
// attaching profiles to icache-fetched instructions is not modeled; tests
// inspect it).
func (f *FillUnit) Chains() *ChainProfile { return f.chains }

// Retire feeds one retired instruction to the fill unit. The record is
// copied once (into the pending buffer); it is passed by pointer because
// RetireInfo is ~200 bytes and this is called once per retired instruction.
// Callers building the record field by field can skip even that copy with
// the RetireSlot/CommitRetire pair.
func (f *FillUnit) Retire(info *RetireInfo) {
	*f.RetireSlot() = *info
	f.CommitRetire()
}

// RetireSlot extends the pending buffer by one record and returns it for the
// caller to fill in place — the zero-copy half of the retire path: the
// pipeline composes the ~200-byte RetireInfo directly in the buffer slot it
// will be consumed from instead of building it in scratch and copying it in.
// The slot may hold a stale record from an earlier trace; the caller must
// overwrite it completely, then call CommitRetire.
func (f *FillUnit) RetireSlot() *RetireInfo {
	if n := len(f.pending); n < cap(f.pending) {
		f.pending = f.pending[:n+1]
	} else {
		f.pending = append(f.pending, RetireInfo{})
	}
	return &f.pending[len(f.pending)-1]
}

// CommitRetire processes the record most recently obtained from RetireSlot
// and filled in by the caller. If the record completes a trace, the pending
// buffer is logically truncated, but the committed record's storage is not
// rewritten, so the pointer RetireSlot returned remains readable (not
// writable) until the next RetireSlot call.
func (f *FillUnit) CommitRetire() {
	info := &f.pending[len(f.pending)-1]
	f.updateChains(info)
	if tr := f.builder.AddRec(&info.Rec); tr != nil {
		f.finishTrace(tr)
	}
}

// Flush completes any partial trace (end of simulation) and drops the
// assignment memo.
func (f *FillUnit) Flush() {
	if tr := f.builder.Flush(); tr != nil {
		f.finishTrace(tr)
	}
	f.memo.reset()
}

func (f *FillUnit) finishTrace(tr *trace.Trace) {
	infos := f.pending
	f.S.TracesBuilt++
	f.S.InstsBuilt += uint64(len(tr.Slots))
	f.assign(tr, infos)
	tr.CheckSlotIndices(f.cfg.Trace.MaxLen)
	f.recordMigration(tr)
	// Recycle the displaced line: Install guarantees nothing references it
	// once it returns (the pipeline copies everything out of a trace during
	// the synchronous fetch), so its storage can back a future build.
	if displaced := f.tc.Install(tr); displaced != nil {
		f.builder.Recycle(displaced)
	}
	f.pending = f.pending[:0]
}

// updateChains applies the leader/follower criteria of Table 4 using the
// dynamic critical-input feedback of one retiring consumer. Membership is
// judged from the profile bits the instruction instances actually carried
// (their trace-line bits), overlaid with any still-pending designations;
// new designations go to the pending table until the fill unit next builds
// a trace containing the instruction.
func (f *FillUnit) updateChains(info *RetireInfo) {
	if !f.cfg.Strategy.UsesChains() || f.cfg.DisableChains {
		return
	}
	if info.CritSrc == CritNone || !info.CritForwarded || !info.CritInterTrace {
		return
	}
	pin := f.cfg.Strategy.Pins()
	// Producer side: an instruction that forwards data to an inter-trace
	// consumer and is not yet a chain member becomes a leader, pinned (or
	// not) to the cluster it executed on.
	pPC := info.CritProducerPC
	pProf := info.CritProducerProfile
	if pend, ok := f.chains.peek(pPC); ok {
		pProf = pend
	}
	// Table 4 condition 2 for followers requires the producer to already be
	// a member when the dependence is observed; a producer designated a
	// leader by this very event recruits followers only on later occurrences.
	// This staged growth keeps chains short-lived and bounded, matching the
	// option distribution of Figure 7.
	pMemberBefore := pProf.IsMember()
	if !pProf.IsMember() {
		// The suggested destination cluster for a new leader is the cluster
		// it just executed on: the rest of its dataflow context already
		// lives there, and pinning freezes that affinity.
		pProf = trace.Profile{Role: trace.RoleLeader, ChainCluster: uint8(info.CritProducerCluster)}
		f.chains.Set(pPC, pProf)
		f.S.LeadersCreated++
	} else if !pin {
		// Without pinning a member chases the cluster its producer (or its
		// own execution) most recently used — the instability Table 9
		// quantifies.
		pProf.ChainCluster = uint8(info.CritProducerCluster)
		f.chains.Set(pPC, pProf)
	}
	// Consumer side: joins the producer's chain if it is not yet a member
	// and the producer supplied its last-arriving input from another trace.
	cPC := info.Rec.PC
	cProf := info.Profile
	if pend, ok := f.chains.peek(cPC); ok {
		cProf = pend
	}
	_ = pMemberBefore
	if !cProf.IsMember() {
		f.chains.Set(cPC, trace.Profile{Role: trace.RoleFollower, ChainCluster: pProf.ChainCluster})
		f.S.FollowersCreated++
	} else if !pin && cProf.Role == trace.RoleFollower {
		cProf.ChainCluster = pProf.ChainCluster
		f.chains.Set(cPC, cProf)
	}
}

// clusterSlot is one dense migration-history slot: the most recent cluster
// assignment for a static PC plus its presence bit.
type clusterSlot struct {
	cluster int16
	present bool
}

func (f *FillUnit) recordMigration(tr *trace.Trace) {
	for i := range tr.Slots {
		s := &tr.Slots[i]
		e := f.lastCluster.ensure(s.PC)
		if e.present {
			f.S.Seen++
			isChain := s.Profile.IsMember()
			if isChain {
				f.S.ChainSeen++
			}
			if int(e.cluster) != s.Cluster {
				f.S.Migrated++
				if isChain {
					f.S.ChainMigrated++
				}
			}
		}
		*e = clusterSlot{cluster: int16(s.Cluster), present: true}
	}
}

// assign sets SlotIndex/Cluster/Profile for every slot of tr, replaying a
// memoized result when the line's assignment inputs are unchanged since it
// was last built (assignmemo.go) and running the full walk otherwise.
func (f *FillUnit) assign(tr *trace.Trace, infos []RetireInfo) {
	if !f.memoizable() {
		f.assignCompute(tr, infos)
		return
	}
	fp := f.assignFP(tr, infos)
	e := f.memo.ensure(tr.StartPC)
	if e.present && e.fp == fp && int(e.n) == len(tr.Slots) {
		f.memoHits++
		f.replayAssign(tr, e)
		return
	}
	f.memoMisses++
	before := f.S
	f.assignCompute(tr, infos)
	f.storeAssign(tr, e, fp, &before)
}

// assignCompute runs the full assignment pass.
func (f *FillUnit) assignCompute(tr *trace.Trace, infos []RetireInfo) {
	// The profile written into the new line is the one the retiring
	// instance carried (its old line's bits), unless a pending designation
	// exists, which is consumed here. Instances fetched from the icache
	// carry no bits: designations not refreshed by a pending entry are lost,
	// exactly as when a trace line is evicted.
	for i := range tr.Slots {
		if pend, ok := f.chains.Take(tr.Slots[i].PC); ok {
			tr.Slots[i].Profile = pend
		} else if len(infos) == len(tr.Slots) {
			tr.Slots[i].Profile = infos[i].Profile
		} else {
			tr.Slots[i].Profile = trace.Profile{}
		}
	}
	switch f.cfg.Strategy {
	case Friendly:
		f.resetAssign(len(tr.Slots))
		f.friendlyAssign(tr, f.natOrder, f.intraProducers(tr))
		f.materialize(tr)
	case FriendlyMiddle:
		f.resetAssign(len(tr.Slots))
		f.friendlyAssign(tr, f.midOrder, f.intraProducers(tr))
		f.materialize(tr)
	case FDRT, FDRTNoPin:
		f.fdrtAssign(tr, infos)
		f.materialize(tr)
	default: // Base, IssueTime: identity placement
		for i := range tr.Slots {
			tr.Slots[i].SlotIndex = i
			tr.Slots[i].Cluster = f.cfg.Geom.SlotCluster(i)
		}
	}
}

// resetAssign clears the per-trace assignment scratch: no instruction
// placed, full Width capacity in every cluster.
func (f *FillUnit) resetAssign(n int) {
	f.assigned = f.assigned[:0]
	for i := 0; i < n; i++ {
		f.assigned = append(f.assigned, -1)
	}
	for c := range f.capacity {
		f.capacity[c] = f.cfg.Geom.Width
	}
}

// tryAssign places instruction i into the first cluster of the priority
// order with spare capacity.
func (f *FillUnit) tryAssign(i int, clusters []int) bool {
	for _, c := range clusters {
		if c >= 0 && c < f.cfg.Geom.Clusters && f.capacity[c] > 0 {
			f.assigned[i] = c
			f.capacity[c]--
			return true
		}
	}
	return false
}

// intraProducers fills and returns, for each slot, the logical index of the
// nearest earlier slot writing one of its source registers (-1 if none).
// Index 0 is RS1's producer, index 1 is RS2's. The result aliases the fill
// unit's scratch buffer and is valid until the next trace.
func (f *FillUnit) intraProducers(tr *trace.Trace) [][2]int {
	f.prods = f.prods[:0]
	var lastDef [isa.NumRegs]int
	for i := range lastDef {
		lastDef[i] = -1
	}
	for i := range tr.Slots {
		s1, s2 := tr.Slots[i].Inst.Srcs()
		p := [2]int{-1, -1}
		if s1 != isa.NoReg {
			p[0] = lastDef[s1]
		}
		if s2 != isa.NoReg {
			p[1] = lastDef[s2]
		}
		f.prods = append(f.prods, p)
		if d := tr.Slots[i].Inst.Dest(); d != isa.NoReg {
			lastDef[d] = i
		}
	}
	return f.prods
}

// intraConsumers fills and returns, for each slot, whether a later slot
// reads its destination before it is redefined; prods must be the matching
// intraProducers result.
func (f *FillUnit) intraConsumers(tr *trace.Trace, prods [][2]int) []bool {
	f.consumers = f.consumers[:0]
	for range tr.Slots {
		f.consumers = append(f.consumers, false)
	}
	for i := range prods {
		for _, p := range prods[i] {
			if p >= 0 {
				f.consumers[p] = true
			}
		}
	}
	return f.consumers
}

// friendlyAssign implements the prior retire-time scheme: walk issue slots
// in slotOrder; for each slot, choose the oldest unplaced instruction with a
// static intra-trace input dependence on an instruction already assigned to
// that slot's cluster, else the oldest unplaced instruction. It operates on
// the current f.assigned/f.capacity state, so clusters already fixed by FDRT
// are respected and only unassigned instructions (-1) are placed.
func (f *FillUnit) friendlyAssign(tr *trace.Trace, slotOrder []int, prods [][2]int) {
	g := f.cfg.Geom
	n := len(tr.Slots)
	remaining := 0
	for _, c := range f.assigned {
		if c < 0 {
			remaining++
		}
	}
	for _, slot := range slotOrder {
		if remaining == 0 {
			break
		}
		c := g.SlotCluster(slot)
		if f.capacity[c] <= 0 {
			continue
		}
		pick := -1
		for i := 0; i < n; i++ {
			if f.assigned[i] >= 0 {
				continue
			}
			for _, p := range prods[i] {
				if p >= 0 && f.assigned[p] == c {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := 0; i < n; i++ {
				if f.assigned[i] < 0 {
					pick = i
					break
				}
			}
		}
		f.assigned[pick] = c
		f.capacity[c]--
		remaining--
	}
}

// fdrtAssign implements Table 5. It walks instructions oldest to youngest,
// classifies each by (critical intra-trace producer, chain membership,
// intra-trace consumer), and tries the published cluster priority lists.
// Instructions that cannot be placed are assigned afterwards with Friendly's
// slot scan over the remaining capacity.
func (f *FillUnit) fdrtAssign(tr *trace.Trace, infos []RetireInfo) {
	g := f.cfg.Geom
	n := len(tr.Slots)
	f.resetAssign(n)
	// Dynamic critical-producer identification maps commit sequence numbers
	// to logical indices. The infos are consecutive retired instructions, so
	// their Seqs are contiguous and the index is a subtraction (the equality
	// check below keeps this exact even if a stream ever produced gaps).
	var seqBase uint64
	if len(infos) == n && n > 0 {
		seqBase = infos[0].Rec.Seq
	}
	statics := f.intraProducers(tr)
	consumers := f.intraConsumers(tr, statics)
	const useStaticFallback = true

	for i := 0; i < n; i++ {
		// Critical intra-trace producer: the instruction's last-arriving
		// input was produced by an earlier instruction of this same trace,
		// and that producer has already been placed. When the dynamic
		// critical input was not intra-trace, the nearest static intra-trace
		// producer stands in (the fill unit always has the static analysis).
		prodCl := -1
		critIntra := false
		if len(infos) == n {
			inf := infos[i]
			if inf.CritSrc != CritNone {
				if seq := inf.CritProducerSeq; seq >= seqBase && seq < seqBase+uint64(n) {
					if j := int(seq - seqBase); infos[j].Rec.Seq == seq && j < i && f.assigned[j] >= 0 {
						prodCl = f.assigned[j]
						critIntra = true
					}
				}
			}
		}
		if prodCl < 0 && useStaticFallback {
			for _, j := range statics[i] {
				if j >= 0 && f.assigned[j] >= 0 {
					prodCl = f.assigned[j]
				}
			}
		}
		prof := tr.Slots[i].Profile
		chainCl := -1
		if prof.IsMember() && int(prof.ChainCluster) < g.Clusters {
			chainCl = int(prof.ChainCluster)
		}
		switch {
		case prodCl >= 0 && chainCl < 0: // Option A
			f.S.OptionA++
			if !f.tryAssign(i, f.selfFirst[prodCl]) {
				f.S.Skipped++
			}
		case prodCl < 0 && chainCl >= 0: // Option B
			f.S.OptionB++
			if !f.tryAssign(i, f.selfFirst[chainCl]) {
				f.S.Skipped++
			}
			if f.assigned[i] != chainCl {
				// The member could not be placed on its chain cluster: its
				// profile bits are not rewritten into the new line (the
				// designation decays), so the chain re-forms around current
				// placements instead of chasing a stale pin.
				tr.Slots[i].Profile = trace.Profile{}
			}
		case prodCl >= 0 && chainCl >= 0: // Option C
			f.S.OptionC++
			// The observed critical input arbitrates: an intra-trace critical
			// input pulls toward the producer, an inter-trace one toward the
			// chain cluster.
			f.order = f.order[:0]
			if critIntra {
				f.order = append(f.order, prodCl, chainCl)
				f.order = append(f.order, f.selfFirst[prodCl][1:]...)
			} else {
				f.order = append(f.order, chainCl, prodCl)
				f.order = append(f.order, f.selfFirst[chainCl][1:]...)
			}
			if !f.tryAssign(i, f.order) {
				f.S.Skipped++
			}
			if f.assigned[i] != chainCl {
				tr.Slots[i].Profile = trace.Profile{} // designation decays
			}
		case consumers[i]: // Option D
			f.S.OptionD++
			// Only the true middle clusters are tried ("1. middle 2. skip"):
			// producers that do not fit funnel back through the Friendly
			// fallback instead of displacing option-A consumers.
			if !f.tryAssign(i, f.midsTrunc) {
				f.S.Skipped++
			}
		default: // Option E
			f.S.OptionE++
		}
	}
	// Friendly fallback for everything unassigned.
	f.friendlyAssign(tr, f.natOrder, statics)
}

// materialize turns the per-instruction cluster assignment into physical
// slot indices: instructions assigned to cluster c occupy slots c*W, c*W+1,
// ... in logical order, which preserves oldest-first selection within a
// cluster.
func (f *FillUnit) materialize(tr *trace.Trace) {
	g := f.cfg.Geom
	for c := range f.nextSlot {
		f.nextSlot[c] = 0
	}
	for i := range tr.Slots {
		c := f.assigned[i]
		if c < 0 || c >= g.Clusters {
			panic(&InvariantError{Msg: fmt.Sprintf(
				"core: materialize called with incomplete assignment (slot %d -> cluster %d of %d)",
				i, c, g.Clusters)})
		}
		tr.Slots[i].Cluster = c
		tr.Slots[i].SlotIndex = c*g.Width + f.nextSlot[c]
		f.nextSlot[c]++
	}
}
