package core

// Tests and microbenchmarks for the fill unit's assignment memo: replay
// must be indistinguishable from the fresh walk, invalidation must fire on
// every input the walk reads, and the hit path must be measurably cheaper
// than the walk it replaces (BenchmarkAssign).

import (
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

// feedBlock retires one full 16-instruction block starting at startPC. Dest
// registers follow rcBase so two blocks with different rcBase are different
// static code at the same addresses.
func feedBlock(f *FillUnit, seq *uint64, startPC uint64, rcBase int) {
	for j := 0; j < 16; j++ {
		f.Retire(&RetireInfo{Rec: inst(*seq, startPC+uint64(j)*4, isa.ZeroReg, isa.ZeroReg, isa.R(1+(rcBase+j)%20))})
		*seq++
	}
}

// snapshotAssignment captures the per-slot outputs of the last build of the
// line at startPC.
func snapshotAssignment(tc *trace.Cache, t *testing.T, startPC uint64) []trace.Slot {
	t.Helper()
	tr := lookup(tc, startPC)
	if tr == nil {
		t.Fatalf("no line installed at %#x", startPC)
	}
	out := make([]trace.Slot, len(tr.Slots))
	copy(out, tr.Slots)
	return out
}

// TestAssignMemoReplayMatchesFreshWalk rebuilds the same line twice under
// every memoizable strategy and checks the replayed assignment (second
// build, memo hit) is slot-for-slot identical to the fresh walk (first
// build), including SlotIndex, Cluster, and Profile, and that the
// option-histogram deltas repeat exactly.
func TestAssignMemoReplayMatchesFreshWalk(t *testing.T) {
	for _, k := range []StrategyKind{Friendly, FriendlyMiddle, FDRT, FDRTNoPin} {
		t.Run(k.String(), func(t *testing.T) {
			tc := trace.NewCache(trace.DefaultConfig())
			f := NewFillUnit(testConfig(k), tc)
			var seq uint64

			feedBlock(f, &seq, 0x1000, 3)
			fresh := snapshotAssignment(tc, t, 0x1000)
			statsAfterFirst := f.S

			feedBlock(f, &seq, 0x1000, 3)
			replayed := snapshotAssignment(tc, t, 0x1000)

			hits, misses := f.MemoStats()
			if hits != 1 || misses != 1 {
				t.Fatalf("memo hits=%d misses=%d, want 1 hit (replay) and 1 miss (first build)", hits, misses)
			}
			for i := range fresh {
				a, b := &fresh[i], &replayed[i]
				if a.Cluster != b.Cluster || a.SlotIndex != b.SlotIndex || a.Profile != b.Profile {
					t.Errorf("slot %d: fresh {cl %d slot %d prof %+v} vs replay {cl %d slot %d prof %+v}",
						i, a.Cluster, a.SlotIndex, a.Profile, b.Cluster, b.SlotIndex, b.Profile)
				}
			}
			// The replay applies the same histogram deltas the walk produced.
			firstA := statsAfterFirst.OptionA + statsAfterFirst.OptionB + statsAfterFirst.OptionC +
				statsAfterFirst.OptionD + statsAfterFirst.OptionE + statsAfterFirst.Skipped
			secondA := f.S.OptionA + f.S.OptionB + f.S.OptionC + f.S.OptionD + f.S.OptionE + f.S.Skipped
			if secondA != 2*firstA {
				t.Errorf("option histogram after replay %d, want exactly double the fresh walk's %d", secondA, firstA)
			}
		})
	}
}

// TestAssignMemoInvalidation checks the fingerprint misses whenever an input
// of the walk changes: different static code at the same start PC, and a
// pending chain designation on one of the line's PCs.
func TestAssignMemoInvalidation(t *testing.T) {
	tc := trace.NewCache(trace.DefaultConfig())
	f := NewFillUnit(testConfig(FDRT), tc)
	var seq uint64

	feedBlock(f, &seq, 0x1000, 3)
	feedBlock(f, &seq, 0x1000, 4) // same StartPC, different code
	if hits, misses := f.MemoStats(); hits != 0 || misses != 2 {
		t.Fatalf("changed code replayed a stale assignment: hits=%d misses=%d", hits, misses)
	}

	// A pending designation on one of the line's PCs changes the overlay
	// profile the walk reads, so the next rebuild must miss...
	f.Chains().Set(0x1000+4, trace.Profile{Role: trace.RoleLeader, ChainCluster: 2})
	feedBlock(f, &seq, 0x1000, 4)
	if hits, misses := f.MemoStats(); hits != 0 || misses != 3 {
		t.Fatalf("pending designation did not invalidate: hits=%d misses=%d", hits, misses)
	}
	// ...and the designation must have been consumed by that build.
	if _, ok := f.Chains().Take(0x1000 + 4); ok {
		t.Fatal("assignment left the pending designation unconsumed")
	}

	// The consumed designation is itself an input change: these synthetic
	// instances carry no profile bits, so the next rebuild sees a different
	// overlay (zero profile, not the leader bits) and must miss again. The
	// rebuild after that is steady state and hits.
	feedBlock(f, &seq, 0x1000, 4)
	feedBlock(f, &seq, 0x1000, 4)
	if hits, misses := f.MemoStats(); hits != 1 || misses != 4 {
		t.Fatalf("steady rebuild should hit before the flush: hits=%d misses=%d", hits, misses)
	}

	// Flush drops the memo outright.
	f.Flush()
	feedBlock(f, &seq, 0x1000, 4)
	if hits, misses := f.MemoStats(); hits != 1 || misses != 5 {
		t.Fatalf("flush did not drop the memo: hits=%d misses=%d", hits, misses)
	}
}

// TestAssignShrinkAfterLongTrace: the assignment scratch (assigned,
// capacity, prods, consumers, order, nextSlot, and the memo entry's cached
// vectors) is sized per trace; a shorter trace built right after a full
// 16-slot one must see none of the longer build's state. The audit shows
// every scratch slice is truncated and rebuilt to the exact slot count, and
// this test pins that: the short line's assignment must be identical to
// what a fill unit that never saw the long trace produces, under every
// strategy, on both the fresh-walk and memo-replay paths.
func TestAssignShrinkAfterLongTrace(t *testing.T) {
	buildShort := func(f *FillUnit, seq *uint64) {
		// 6 instructions: 5 ALU plus a register-indirect jump, which always
		// terminates construction (no Flush — Flush would drop the memo and
		// keep the replay path out of round 2).
		for j := 0; j < 5; j++ {
			f.Retire(&RetireInfo{Rec: inst(*seq, 0x2000+uint64(j)*4, isa.ZeroReg, isa.ZeroReg, isa.R(1+j))})
			*seq++
		}
		f.Retire(&RetireInfo{Rec: emu.Committed{
			Seq: *seq, PC: 0x2000 + 5*4,
			Inst:  isa.Inst{Op: isa.JMP, Ra: isa.R(7)},
			Taken: true, NextPC: 0x2000,
		}})
		*seq++
	}
	for _, k := range []StrategyKind{Base, IssueTime, Friendly, FriendlyMiddle, FDRT, FDRTNoPin} {
		t.Run(k.String(), func(t *testing.T) {
			// Control: only ever builds the short trace.
			ctc := trace.NewCache(trace.DefaultConfig())
			cf := NewFillUnit(testConfig(k), ctc)
			var cseq uint64
			buildShort(cf, &cseq)
			want := snapshotAssignment(ctc, t, 0x2000)

			// Subject: a full-length line first, then the same short trace —
			// twice, so the second build exercises the memo replay path for
			// the memoizable strategies.
			tc := trace.NewCache(trace.DefaultConfig())
			f := NewFillUnit(testConfig(k), tc)
			var seq uint64
			feedBlock(f, &seq, 0x1000, 3)
			for round := 0; round < 2; round++ {
				buildShort(f, &seq)
				got := snapshotAssignment(tc, t, 0x2000)
				if len(got) != len(want) {
					t.Fatalf("round %d: short trace has %d slots, control %d", round, len(got), len(want))
				}
				for i := range want {
					a, b := &want[i], &got[i]
					if a.Cluster != b.Cluster || a.SlotIndex != b.SlotIndex || a.Profile != b.Profile {
						t.Errorf("round %d slot %d: control {cl %d slot %d prof %+v}, after-long {cl %d slot %d prof %+v}",
							round, i, a.Cluster, a.SlotIndex, a.Profile, b.Cluster, b.SlotIndex, b.Profile)
					}
				}
			}
			if f.memoizable() {
				if hits, _ := f.MemoStats(); hits == 0 {
					t.Error("second short build did not replay the memo")
				}
			}
		})
	}
}

// BenchmarkAssign measures the fill unit's per-trace cost on the memo hit
// path (the same hot line rebuilt unchanged — the steady state the reuse
// literature predicts) against the miss path (the line's code differs every
// build, forcing the full Table-5 walk each time).
func BenchmarkAssign(b *testing.B) {
	run := func(b *testing.B, vary bool) {
		tc := trace.NewCache(trace.DefaultConfig())
		f := NewFillUnit(testConfig(FDRT), tc)
		var seq uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rcBase := 3
			if vary {
				// Rotate among 8 variants: the memo holds only the previous
				// build, so every rebuild misses.
				rcBase = i % 8
			}
			feedBlock(f, &seq, 0x1000, rcBase)
		}
		b.StopTimer()
		hits, misses := f.MemoStats()
		if vary && hits > uint64(b.N)/10 {
			b.Fatalf("miss benchmark is hitting the memo (%d hits / %d builds)", hits, misses)
		}
		if !vary && misses > 1+uint64(b.N)/10 {
			b.Fatalf("hit benchmark is missing the memo (%d misses / %d builds)", misses, hits)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trace")
	}
	b.Run("hit", func(b *testing.B) { run(b, false) })
	b.Run("miss", func(b *testing.B) { run(b, true) })
}
