; conformance: linking BR, JSR/RET call discipline with a stacked nested
; call, and a register-indirect JMP.
        .entry main
main:   br      r5, after       ; linking unconditional branch
after:  movi    r1, sub1
        jsr     ra, (r1)
        movi    r1, sub2
        jsr     ra, (r1)
        movi    r2, fin
        jmp     (r2)
        movi    r20, 0          ; never executed
fin:    sub     r5, main, r6    ; link offset from text base (4)
        add     r20, r6, r20
        out     r20
        halt
sub1:   add     r20, 111, r20
        ret
sub2:   sub     sp, 16, sp
        stq     ra, 0(sp)
        movi    r1, sub1
        jsr     ra, (r1)        ; nested call
        add     r20, 500, r20
        ldq     ra, 0(sp)
        add     sp, 16, sp
        ret
