; conformance: NOP scheduling holes and the OUT checksum channel.
        .entry main
main:   nop
        movi    r1, 42
        out     r1
        nop
        movi    r2, 7
        add     r1, r2, r3
        out     r3
        nop
        out     r2
        halt
