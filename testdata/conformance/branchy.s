; conformance/stress: data-dependent branching off an LCG (mispredict
; pressure; both directions of both branches are exercised).
        .entry main
main:   movi    r1, 12345       ; LCG state
        movi    r2, 0
        movi    r3, 80          ; iterations
bl:     mul     r1, 1103515245, r1
        add     r1, 12345, r1
        srl     r1, 16, r4
        and     r4, 1, r5
        beq     r5, even
        add     r2, 3, r2
        br      cont
even:   sub     r2, 1, r2
cont:   and     r4, 7, r6
        cmplt   r6, 3, r7
        beq     r7, skip
        xor     r2, r6, r2
skip:   sub     r3, 1, r3
        bne     r3, bl
        out     r2
        halt
