package pipeline

import (
	"fmt"
	"runtime/debug"

	"ctcp/internal/isa"
)

// SimError reports a simulation that aborted on an internal invariant
// failure (forward-progress watchdog, fill-unit assignment completeness,
// structural-parameter validation, ...). The cycle model signals such
// failures by panicking; RunProgramErr converts the panic into a *SimError
// at the run boundary so one pathological configuration cannot take down a
// whole experiment sweep.
type SimError struct {
	// Reason is the rendered panic value.
	Reason string
	// Stack is the goroutine stack captured at the recovery point.
	Stack string
}

// Error implements error.
func (e *SimError) Error() string { return "pipeline: simulation aborted: " + e.Reason }

// RunProgramErr is RunProgram with graceful degradation: a panic raised
// anywhere inside the model is recovered and returned as a *SimError
// instead of crashing the process. Callers running many configurations
// (the experiment Runner, cmd/ctcpbench) use this entry point so completed
// work survives one bad run.
func RunProgramErr(prog *isa.Program, cfg Config) (s *Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s = nil
			err = &SimError{Reason: fmt.Sprint(rec), Stack: string(debug.Stack())}
		}
	}()
	return RunProgram(prog, cfg), nil
}
