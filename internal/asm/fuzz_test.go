package asm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzAssembleRoundtrip feeds arbitrary source through the assembler and,
// for every program that assembles, checks the print/parse fixed point: the
// disassembly listing of the text segment must reassemble to exactly the
// same instructions. This generalizes TestDisassemblyReassembles from
// generated instructions to whatever the assembler itself can be coaxed into
// producing, and doubles as a crash hunt over the parser (panics anywhere in
// Assemble are fuzz findings). Seed corpus: the real programs in testdata/
// plus hand-written sources covering labels, symbol arithmetic, data
// directives, aliases, and negative immediates; on-disk seeds live in
// testdata/fuzz/FuzzAssembleRoundtrip.
func FuzzAssembleRoundtrip(f *testing.F) {
	for _, name := range []string{"checksum.s", "fib.s", "sieve.s"} {
		if src, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(string(src))
		}
	}
	// The conformance corpus: every ISA-op-family program seeds the fuzzer,
	// so mutation coverage starts from sources that exercise all 57 opcodes.
	if paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "conformance", "*.s")); err == nil {
		for _, path := range paths {
			if src, err := os.ReadFile(path); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Add("main:   movi r1, 100\nloop:   sub  r1, 1, r1\n        bne  r1, loop\n        halt\n")
	f.Add("        movi r1, tbl+16\n        ldq  r2, -8(sp)\n        jsr  ra, (r2)\n        ret\n        halt\n        .data\ntbl:    .quad 1, 2, 3\n")
	f.Add("        add sp, 8, sp\n        stt fzero, 0(sp)\n        movi r1, 'a'\n        halt\n")
	f.Add("        .align 8\n        .entry main\nmain:   halt\n        .data\nmsg:    .ascii \"hi\"\n        .space 16\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble(src)
		if err != nil || len(p1.Text) == 0 {
			t.Skip()
		}
		var sb strings.Builder
		for _, in := range p1.Text {
			fmt.Fprintf(&sb, "        %s\n", in)
		}
		listing := sb.String()
		p2, err := Assemble(listing)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, listing)
		}
		if len(p2.Text) != len(p1.Text) {
			t.Fatalf("roundtrip instruction count %d, want %d\n%s", len(p2.Text), len(p1.Text), listing)
		}
		for i := range p1.Text {
			if p2.Text[i] != p1.Text[i] {
				t.Errorf("inst %d: roundtrip %+v, want %+v (printed %q)",
					i, p2.Text[i], p1.Text[i], p1.Text[i].String())
			}
		}
	})
}
