// Package trace implements the trace cache substrate of the CTCP: trace
// construction from the retiring instruction stream (the fill unit's input
// side), the path-associative trace cache array, and the per-instruction
// profile fields that the FDRT assignment scheme stores in trace lines.
//
// A trace is up to MaxLen instructions spanning up to MaxBlocks basic blocks.
// Conditional branches embed their direction in the line; register-indirect
// control (JSR/JMP/RET) and HALT always terminate construction. On a fetch,
// a line hits only if its start PC matches and every embedded conditional
// branch agrees with the current predictions — the paper's multiple-branch
// path associativity.
package trace

import (
	"fmt"
	"math/bits"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
)

// Chain-role values for the FDRT leader/follower profile field.
const (
	RoleNone uint8 = iota
	RoleLeader
	RoleFollower
)

// Profile is the per-instruction execution history the trace cache stores
// for feedback-directed assignment: a two-bit role and a two-bit chain
// cluster (§4.2 of the paper).
type Profile struct {
	Role         uint8
	ChainCluster uint8
}

// IsMember reports whether the instruction belongs to a cluster chain.
func (p Profile) IsMember() bool { return p.Role != RoleNone }

// Slot is one instruction slot of a trace line.
type Slot struct {
	PC   uint64
	Inst isa.Inst
	// Taken records the embedded direction for conditional branches.
	Taken bool
	// SlotIndex is the physical issue-slot position (0..MaxLen-1) the fill
	// unit placed this instruction in. Slots within a Trace are always kept
	// in logical (program) order — retirement order never changes — and the
	// fill unit's physical reordering is expressed by this field: the slot
	// index determines which cluster the instruction issues to.
	SlotIndex int
	// Cluster is the execution cluster the slot index maps to; the fill
	// unit records it when assigning.
	Cluster int
	// Profile carries the FDRT feedback fields stored with the instruction.
	Profile Profile
}

// Trace is one trace cache line.
type Trace struct {
	StartPC uint64
	// Slots in logical (program) order; physical placement is in SlotIndex.
	Slots []Slot
	// Blocks is the number of basic blocks in the trace.
	Blocks int
	// EndsIndirect marks traces terminated by register-indirect control.
	EndsIndirect bool
	// Fetches counts how many times the line was supplied by the cache.
	Fetches uint64

	// condBits caches the slot positions (logical order) holding conditional
	// branches — the slots a Lookup must check against the predictor. Inst
	// never changes after construction, so the mask is derived once on first
	// use (condKnown) and is deliberately not serialized: a restored line
	// recomputes it. Only maintained for lines of <= 64 slots; longer
	// hypothetical lines scan directly.
	condBits  uint64
	condKnown bool
}

// condMask returns the conditional-branch slot mask, deriving it on first
// use. Lines longer than 64 slots report ok=false and must scan.
func (t *Trace) condMask() (mask uint64, ok bool) {
	if t.condKnown {
		return t.condBits, true
	}
	if len(t.Slots) > 64 {
		return 0, false
	}
	for i := range t.Slots {
		if t.Slots[i].Inst.IsCond() {
			mask |= 1 << uint(i)
		}
	}
	t.condBits = mask
	t.condKnown = true
	return mask, true
}

// Len returns the number of instructions in the trace.
func (t *Trace) Len() int { return len(t.Slots) }

// CheckSlotIndices panics if the physical placement is not an injective map
// into the line's slot positions — a corrupted reorder would silently issue
// two instructions to the same slot.
func (t *Trace) CheckSlotIndices(maxLen int) {
	// Lines are at most MaxLen slots, which is <= 64 in every supported
	// configuration, so a bitmask covers the occupancy set; the map path
	// remains for hypothetical wider lines. This check runs once per built
	// trace, on the simulator's hot path.
	if maxLen <= 64 {
		var seen uint64
		for i := range t.Slots {
			idx := t.Slots[i].SlotIndex
			if idx < 0 || idx >= maxLen || seen&(1<<uint(idx)) != 0 {
				panic(fmt.Sprintf("trace: corrupt slot placement in line @%#x", t.StartPC))
			}
			seen |= 1 << uint(idx)
		}
		return
	}
	seen := make(map[int]bool, len(t.Slots))
	for i := range t.Slots {
		idx := t.Slots[i].SlotIndex
		if idx < 0 || idx >= maxLen || seen[idx] {
			panic(fmt.Sprintf("trace: corrupt slot placement in line @%#x", t.StartPC))
		}
		seen[idx] = true
	}
}

// CondBranchPCs returns the PCs and directions of the embedded conditional
// branches in logical order.
func (t *Trace) CondBranchPCs() ([]uint64, []bool) {
	var pcs []uint64
	var dirs []bool
	for i := range t.Slots {
		s := &t.Slots[i]
		if s.Inst.IsCond() {
			pcs = append(pcs, s.PC)
			dirs = append(dirs, s.Taken)
		}
	}
	return pcs, dirs
}

// Config sizes the trace cache and construction rules (Table 7: 2-way,
// 1K-entry, 3-cycle access; traces of up to 16 instructions / 3 blocks).
type Config struct {
	Lines     int // total lines
	Ways      int
	MaxLen    int // instructions per trace
	MaxBlocks int
	AccessLat int // fetch pipeline depth contribution, cycles
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Lines: 1024, Ways: 2, MaxLen: 16, MaxBlocks: 3, AccessLat: 3}
}

// Stats counts trace cache activity.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Installs  uint64
	Replaced  uint64
	Updated   uint64 // installs that refreshed an existing path
	Evictions uint64
}

// HitRate returns hits/lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is the path-associative trace cache.
type Cache struct {
	cfg   Config
	sets  int
	lines [][]*Trace // [set][way]
	lru   [][]uint64
	stamp uint64
	S     Stats
}

// NewCache builds the trace cache.
func NewCache(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("trace: lines %d not divisible by ways %d", cfg.Lines, cfg.Ways))
	}
	sets := cfg.Lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("trace: sets %d not a power of two", sets))
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.lines = make([][]*Trace, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]*Trace, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(pc uint64) int { return int((pc >> 2) & uint64(c.sets-1)) }

// Lookup returns the line starting at pc whose embedded conditional-branch
// directions all agree with pred, or nil on a miss. pred must be a pure
// prediction function (no state updates); the fetch engine trains its
// predictor separately with actual outcomes.
func (c *Cache) Lookup(pc uint64, pred func(branchPC uint64) bool) *Trace {
	c.S.Lookups++
	set := c.set(pc)
	for w, t := range c.lines[set] {
		if t == nil || t.StartPC != pc {
			continue
		}
		match := true
		if m, ok := t.condMask(); ok {
			for ; m != 0; m &= m - 1 {
				if s := &t.Slots[bits.TrailingZeros64(m)]; pred(s.PC) != s.Taken {
					match = false
					break
				}
			}
		} else {
			for i := range t.Slots {
				if s := &t.Slots[i]; s.Inst.IsCond() && pred(s.PC) != s.Taken {
					match = false
					break
				}
			}
		}
		if match {
			c.S.Hits++
			c.stamp++
			c.lru[set][w] = c.stamp
			t.Fetches++
			return t
		}
	}
	return nil
}

// Install places a constructed trace into the cache. A line with the same
// start PC and the same embedded path is replaced in place (the fill unit
// refreshing profile fields and slot order); otherwise the LRU way of the
// set is evicted. The displaced line, if any, is returned so the caller can
// recycle its storage (see Builder.Recycle); nothing else may hold a
// reference to it once Install returns.
func (c *Cache) Install(t *Trace) *Trace {
	c.S.Installs++
	set := c.set(t.StartPC)
	c.stamp++
	// Same-path update.
	for w, old := range c.lines[set] {
		if old != nil && old.StartPC == t.StartPC && samePath(old, t) {
			t.Fetches = old.Fetches
			c.lines[set][w] = t
			c.lru[set][w] = c.stamp
			c.S.Updated++
			return old
		}
	}
	victim, victimStamp := 0, uint64(1<<63)
	for w, old := range c.lines[set] {
		if old == nil {
			victim, victimStamp = w, 0
			break
		}
		if c.lru[set][w] < victimStamp {
			victim, victimStamp = w, c.lru[set][w]
		}
	}
	displaced := c.lines[set][victim]
	if displaced != nil {
		c.S.Evictions++
	}
	c.lines[set][victim] = t
	c.lru[set][victim] = c.stamp
	c.S.Replaced++
	return displaced
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		for w := range c.lines[i] {
			c.lines[i][w] = nil
			c.lru[i][w] = 0
		}
	}
	c.stamp = 0
	c.S = Stats{}
}

func samePath(a, b *Trace) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Slots {
		if a.Slots[i].PC != b.Slots[i].PC || a.Slots[i].Taken != b.Slots[i].Taken {
			return false
		}
	}
	return true
}

// Builder accumulates retiring instructions into traces per the construction
// rules. Add returns a completed trace when the current one terminates.
type Builder struct {
	cfg      Config
	slots    []Slot
	blocks   int
	indirect bool
	// reuse is the recycled line whose storage backs the trace currently
	// under construction; free holds further recycled lines. Together they
	// make steady-state trace construction allocation-free: once the cache
	// is full, every Install displaces one line, which comes back here and
	// supplies the Trace struct and Slots array for a later build.
	reuse *Trace
	free  []*Trace
}

// NewBuilder returns a trace builder.
func NewBuilder(cfg Config) *Builder {
	return &Builder{cfg: cfg}
}

// Pending returns the number of buffered instructions.
func (b *Builder) Pending() int { return len(b.slots) }

// Add appends one retired instruction. When the instruction terminates the
// trace (capacity, block limit, indirect control, or HALT) the completed
// trace is returned with slots in logical order; otherwise Add returns nil.
func (b *Builder) Add(rec emu.Committed) *Trace { return b.AddRec(&rec) }

// AddRec is Add without the by-value record copy; the hot retire path calls
// it once per retired instruction. The record is only read.
func (b *Builder) AddRec(rec *emu.Committed) *Trace {
	if len(b.slots) == 0 {
		if n := len(b.free); n > 0 {
			b.reuse = b.free[n-1]
			b.free[n-1] = nil
			b.free = b.free[:n-1]
			b.slots = b.reuse.Slots[:0]
		} else {
			// One allocation per trace until recycling kicks in: the
			// finished line keeps this backing array (the cache retains
			// it), so size it for the worst case up front instead of
			// growing through append's doubling schedule.
			b.slots = make([]Slot, 0, b.cfg.MaxLen)
		}
		b.blocks = 1
		b.indirect = false
	}
	// One opTable lookup covers the conditional/control/indirect tests below.
	opInfo := rec.Inst.Op.Info()
	b.slots = append(b.slots, Slot{
		PC:        rec.PC,
		Inst:      rec.Inst,
		Taken:     opInfo.Conditional && rec.Taken,
		SlotIndex: len(b.slots),
	})
	terminate := false
	if opInfo.Class.IsControl() {
		switch {
		case opInfo.Class == isa.ClassJump:
			b.indirect = true
			terminate = true
		case rec.Taken && rec.NextPC <= rec.PC:
			// Trace selection: a taken backward branch (loop closing)
			// terminates the trace so the next trace starts at the loop
			// head, keeping trace starts aligned with fetch targets.
			terminate = true
		case b.blocks >= b.cfg.MaxBlocks:
			// The branch ending the MaxBlocks'th block terminates the trace.
			terminate = true
		default:
			b.blocks++
		}
	}
	if rec.Inst.Op == isa.HALT {
		terminate = true
	}
	if len(b.slots) >= b.cfg.MaxLen {
		terminate = true
	}
	if !terminate {
		return nil
	}
	return b.finish()
}

// Flush completes and returns the partial trace, if any.
func (b *Builder) Flush() *Trace {
	if len(b.slots) == 0 {
		return nil
	}
	return b.finish()
}

func (b *Builder) finish() *Trace {
	t := b.reuse
	if t == nil {
		t = new(Trace)
	}
	b.reuse = nil
	*t = Trace{
		StartPC:      b.slots[0].PC,
		Slots:        b.slots,
		Blocks:       b.blocks,
		EndsIndirect: b.indirect,
	}
	b.slots = nil
	b.blocks = 0
	b.indirect = false
	return t
}

// Recycle returns a line displaced by Cache.Install to the builder's free
// pool. The caller must guarantee nothing still references t: the builder
// will overwrite its struct and slot storage wholesale. Lines whose backing
// array is smaller than the configured MaxLen (e.g. built under a different
// configuration) are dropped rather than reused.
func (b *Builder) Recycle(t *Trace) {
	if t == nil || cap(t.Slots) < b.cfg.MaxLen {
		return
	}
	b.free = append(b.free, t)
}

// Dump exposes the raw line array for diagnostics and tests.
func (c *Cache) Dump() [][]*Trace { return c.lines }
