// Fixture for the lockheld analyzer: loaded by lint_test.go under the
// ctcp/internal/serve import path. Marked lines must diagnose; every other
// line must stay silent.
package fixture

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	done chan struct{}
	evs  chan int
	n    int
}

// Direct blocking ops inside a lock region.
func (s *server) directIO(path string) {
	s.mu.Lock()
	_ = os.WriteFile(path, nil, 0o644) // want:lockheld
	s.mu.Unlock()
	_ = os.WriteFile(path, nil, 0o644) // after release: no diagnostic
}

func (s *server) sleepUnderRLock() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want:lockheld
	s.rw.RUnlock()
}

func (s *server) chanOpsUnderLock() {
	s.mu.Lock()
	s.evs <- 1 // want:lockheld
	<-s.done   // want:lockheld
	s.mu.Unlock()
}

// defer mu.Unlock() keeps the region open to function exit.
func (s *server) deferUnlock(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile(path) // want:lockheld
}

// May-analysis: one branch unlocks, the other does not; after the join the
// lock may still be held.
func (s *server) branchy(path string, early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
	}
	_, _ = os.ReadFile(path) // want:lockheld
	if !early {
		s.mu.Unlock()
	}
}

// Transitive: the blocking op is reached through a module call chain.
func (s *server) callsHelper(path string) {
	s.mu.Lock()
	writeState(path) // want:lockheld
	s.mu.Unlock()
}

func writeState(path string) { writeStateInner(path) }

func writeStateInner(path string) { _ = os.WriteFile(path, nil, 0o644) }

// Non-blocking constructs under a lock: no diagnostics.
func (s *server) cleanUnderLock() {
	s.mu.Lock()
	s.n++
	select { // select with default is non-blocking by construction
	case s.evs <- s.n:
	default:
	}
	_ = os.Getenv("HOME") // environment access, not I/O
	s.mu.Unlock()
}

// select without default blocks.
func (s *server) blockingSelect() {
	s.mu.Lock()
	select { // want:lockheld
	case <-s.done:
	case s.evs <- 1:
	}
	s.mu.Unlock()
}

// Cond.Wait releases the mutex while parked: the idiom is allowed.
func (s *server) waitLoop() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Work handed to a goroutine does not block the lock holder.
func (s *server) spawnUnderLock(path string) {
	s.mu.Lock()
	go func() {
		<-s.done
		_ = os.WriteFile(path, nil, 0o644)
	}()
	s.mu.Unlock()
}

// journal mirrors the serve-tier escape hatch: a leaf mutex whose entire
// purpose is serializing the file append.
type journal struct {
	mu   sync.Mutex
	path string
}

// append serializes writers of the journal file.
//
//ctcp:coldlock the mutex exists to serialize this write
func (j *journal) append(line []byte) {
	j.mu.Lock()
	_ = os.WriteFile(j.path, line, 0o644) // exempted by the coldlock hatch
	j.mu.Unlock()
}

// Calls to a coldlock function are non-blocking at the call site.
func (s *server) logViaJournal(j *journal) {
	s.mu.Lock()
	j.append(nil) // coldlock callee: no diagnostic
	s.mu.Unlock()
}

// Suppression still works for deliberate one-offs.
func (s *server) suppressed(path string) {
	s.mu.Lock()
	_ = os.WriteFile(path, nil, 0o644) //ctcp:lint-ok lockheld -- startup-only path, lock uncontended
	s.mu.Unlock()
}

// Range over a channel parks the goroutine while the lock is held.
func (s *server) drainUnderLock() {
	s.mu.Lock()
	for range s.evs { // want:lockheld
		s.n++
	}
	s.mu.Unlock()
}
