package conformance

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"

	"ctcp/internal/asm"
	"ctcp/internal/core"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite testdata/conformance/golden.json from the current emulator")

// goldenEntry is the committed architectural result of one corpus program.
// Registers are stored sparsely (non-zero only) as hex strings so golden
// diffs are reviewable.
type goldenEntry struct {
	Insts       uint64            `json:"insts"`
	OutHash     string            `json:"out_hash"`
	MemChecksum string            `json:"mem_checksum"`
	Regs        map[string]string `json:"regs"`
}

func toEntry(res ArchResult) goldenEntry {
	e := goldenEntry{
		Insts:       res.Insts,
		OutHash:     fmt.Sprintf("%#016x", res.OutHash),
		MemChecksum: fmt.Sprintf("%#016x", res.MemChecksum),
		Regs:        map[string]string{},
	}
	for r := 0; r < isa.NumRegs; r++ {
		if res.Regs[r] != 0 {
			e.Regs[isa.Reg(r).String()] = fmt.Sprintf("%#x", res.Regs[r])
		}
	}
	return e
}

func fromEntry(t *testing.T, name string, e goldenEntry) ArchResult {
	t.Helper()
	parse := func(s string) uint64 {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("%s: bad golden value %q: %v", name, s, err)
		}
		return v
	}
	res := ArchResult{Insts: e.Insts, OutHash: parse(e.OutHash), MemChecksum: parse(e.MemChecksum)}
	names := make(map[string]int, isa.NumRegs)
	for r := 0; r < isa.NumRegs; r++ {
		names[isa.Reg(r).String()] = r
	}
	keys := make([]string, 0, len(e.Regs))
	for k := range e.Regs { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx, ok := names[k]
		if !ok {
			t.Fatalf("%s: unknown register %q in golden entry", name, k)
		}
		res.Regs[idx] = parse(e.Regs[k])
	}
	return res
}

func mustCorpus(t *testing.T) []Program {
	t.Helper()
	corpus, err := LoadCorpus()
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func readGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(GoldenPath())
	if err != nil {
		t.Fatalf("reading golden results (run `go test ./internal/conformance -run TestCorpusGolden -update` to create): %v", err)
	}
	var golden map[string]goldenEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", GoldenPath(), err)
	}
	return golden
}

// TestCorpusGolden pins every corpus program's architectural result (final
// register file, OUT checksum, memory checksum, instruction count) to the
// committed golden.json. Golden updates are an explicit, reviewed act:
// rerun with -update and commit the numeric diff together with the change
// that caused it.
func TestCorpusGolden(t *testing.T) {
	corpus := mustCorpus(t)
	if len(corpus) < 20 {
		t.Fatalf("conformance corpus has %d programs, want >= 20", len(corpus))
	}
	if *update {
		entries := make(map[string]goldenEntry, len(corpus))
		for _, p := range corpus {
			res, _, err := RunRef(p.Prog, 0)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			entries[p.Name] = toEntry(res)
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(GoldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d programs)", GoldenPath(), len(entries))
		return
	}
	golden := readGolden(t)
	if len(golden) != len(corpus) {
		t.Errorf("golden.json has %d entries, corpus has %d programs (rerun -update)", len(golden), len(corpus))
	}
	for _, p := range corpus {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			entry, ok := golden[p.Name]
			if !ok {
				t.Fatalf("no golden entry for %s (rerun -update)", p.Name)
			}
			want := fromEntry(t, p.Name, entry)
			got, _, err := RunRef(p.Prog, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareArch(got, want); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCorpusPipelineAgreement runs every corpus program through the timing
// model under every assignment strategy and asserts the retirement contract:
// byte-identical records in program order via RetireHook, and the golden
// architectural end state.
func TestCorpusPipelineAgreement(t *testing.T) {
	corpus := mustCorpus(t)
	for _, p := range corpus {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ref, recs, err := RunRef(p.Prog, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range core.Strategies() {
				cfg := pipeline.DefaultConfig().WithStrategy(k, false)
				got, err := RunPipeline(p.Prog, 0, cfg, recs)
				if err != nil {
					t.Errorf("%v: %v", k, err)
					continue
				}
				if err := CompareArch(got, ref); err != nil {
					t.Errorf("%v: %v", k, err)
				}
			}
		})
	}
}

// TestOpCoverage asserts that every defined opcode is exercised by at least
// one corpus program, so no instruction the timing model handles escapes
// conformance coverage. There is deliberately no exclusion list: a new
// opcode fails this test until the corpus grows a program for it.
func TestOpCoverage(t *testing.T) {
	corpus := mustCorpus(t)
	seen := make([]bool, isa.NumOps)
	where := make([][]string, isa.NumOps)
	for _, p := range corpus {
		for _, in := range p.Prog.Text {
			if int(in.Op) < isa.NumOps && !seen[in.Op] {
				seen[in.Op] = true
			}
			if int(in.Op) < isa.NumOps && len(where[in.Op]) < 3 {
				where[in.Op] = append(where[in.Op], p.Name)
			}
		}
	}
	for op := 0; op < isa.NumOps; op++ {
		if !seen[op] {
			t.Errorf("opcode %v appears in no corpus program", isa.Op(op))
		}
	}
}

// TestWriteSourceRoundtrip proves the repro writer's output is faithful:
// rendering any corpus program to source and reassembling it reproduces the
// text, data, and entry point exactly. The fuzzer depends on this to write
// replayable divergence repros.
func TestWriteSourceRoundtrip(t *testing.T) {
	corpus := mustCorpus(t)
	for _, p := range corpus {
		src, err := WriteSource(p.Prog)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("%s: rendered source does not assemble: %v\n%s", p.Name, err, src)
		}
		if len(got.Text) != len(p.Prog.Text) {
			t.Fatalf("%s: roundtrip text length %d, want %d", p.Name, len(got.Text), len(p.Prog.Text))
		}
		for i := range got.Text {
			if got.Text[i] != p.Prog.Text[i] {
				t.Errorf("%s: inst %d roundtrip %+v, want %+v", p.Name, i, got.Text[i], p.Prog.Text[i])
			}
		}
		if string(got.Data) != string(p.Prog.Data) {
			t.Errorf("%s: data image does not roundtrip (%d vs %d bytes)", p.Name, len(got.Data), len(p.Prog.Data))
		}
		if got.Entry != p.Prog.Entry {
			t.Errorf("%s: entry %#x, want %#x", p.Name, got.Entry, p.Prog.Entry)
		}
	}
}

// TestMutationsDeterministic pins the seed-driven contract: the same
// (program, seed) always derives the same mutant.
func TestMutationsDeterministic(t *testing.T) {
	corpus := mustCorpus(t)
	for _, p := range corpus[:5] {
		for seed := uint64(0); seed < 16; seed++ {
			a := Mutations(p.Prog, seed)
			b := Mutations(p.Prog, seed)
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: mutation counts differ (%d vs %d)", p.Name, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s seed %d: mutation %d differs (%v vs %v)", p.Name, seed, i, a[i], b[i])
				}
			}
			pa, pb := Apply(p.Prog, a), Apply(p.Prog, b)
			for i := range pa.Text {
				if pa.Text[i] != pb.Text[i] {
					t.Fatalf("%s seed %d: mutants differ at inst %d", p.Name, seed, i)
				}
			}
		}
	}
}

// TestMutantsStillCheckable runs a spread of mutants through the full
// differential check: most should either be rejected (no halt / fault) or
// agree; any divergence here is a real model bug.
func TestMutantsStillCheckable(t *testing.T) {
	corpus := mustCorpus(t)
	strategies := core.Strategies()
	checked, rejected := 0, 0
	for pi, p := range corpus {
		for seed := uint64(0); seed < 4; seed++ {
			mut := Apply(p.Prog, Mutations(p.Prog, seed*7+uint64(pi)))
			cfg := pipeline.DefaultConfig().WithStrategy(strategies[int(seed)%len(strategies)], false)
			err := Diff(mut, 30_000, cfg)
			switch {
			case err == nil:
				checked++
			case isReject(err):
				rejected++
			default:
				src, _ := WriteSource(mut)
				t.Fatalf("%s seed %d: divergence on mutant: %v\n%s", p.Name, seed, err, src)
			}
		}
	}
	if checked == 0 {
		t.Fatalf("every mutant was rejected (%d); mutation yield is broken", rejected)
	}
	t.Logf("mutants checked: %d agreed, %d rejected", checked, rejected)
}
