package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// SnapComplete enforces the checkpoint-completeness contract on every type
// that implements the snap.Checkpointable interface (an exported Snapshot
// method taking *snap.Writer and/or an exported Restore taking *snap.Reader).
// Checkpointing splits simulator state into architectural + profile state
// (serialized) and transient scratch (excluded, rebuilt on restore); a struct
// field added after the Snapshot method was written and silently absent from
// it is how a resumed run diverges from the uninterrupted one, thousands of
// cycles after the restore, with no error at the restore point. The rule:
// every named field of a Checkpointable struct must be referenced somewhere
// in the union of its Snapshot and Restore paths (the two methods plus every
// intra-package function they transitively call). Scratch fields that are
// deliberately excluded are still referenced (`_ = x.field`) so the exclusion
// is a visible, reviewable decision. A type with only one of the two methods
// is reported too — a snapshot nothing can restore is dead weight, and a
// restore with no producer can never have been tested round-trip.
var SnapComplete = &Analyzer{
	Name: "snapcomplete",
	Doc:  "every field of a Checkpointable struct must be referenced in its Snapshot/Restore path",
	Run:  runSnapComplete,
}

// isSnapPtrParam reports whether t is *T for a named type called want
// ("Writer" or "Reader") declared in a package whose import path ends in
// internal/snap. Matching on the parameter type rather than an interface
// assertion keeps the rule structural: any method shaped like the contract
// is held to it.
func isSnapPtrParam(t types.Type, want string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == want && obj.Pkg() != nil && pathIn(obj.Pkg().Path(), "internal/snap")
}

func runSnapComplete(p *Pass) {
	decls, _ := packageFuncs(p)

	// Collect Snapshot/Restore methods keyed by receiver type.
	type snapMethods struct {
		snapshot, restore *ast.FuncDecl
	}
	byType := map[*types.Named]*snapMethods{}
	for fn, d := range decls {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil || sig.Params().Len() != 1 {
			continue
		}
		named := recvNamed(sig.Recv().Type())
		if named == nil {
			continue
		}
		m := byType[named]
		switch {
		case fn.Name() == "Snapshot" && isSnapPtrParam(sig.Params().At(0).Type(), "Writer"):
			if m == nil {
				m = &snapMethods{}
				byType[named] = m
			}
			m.snapshot = d
		case fn.Name() == "Restore" && isSnapPtrParam(sig.Params().At(0).Type(), "Reader"):
			if m == nil {
				m = &snapMethods{}
				byType[named] = m
			}
			m.restore = d
		}
	}
	if len(byType) == 0 {
		return
	}

	// Deterministic reporting order over the map of receiver types.
	typeOrder := make([]*types.Named, 0, len(byType))
	for named := range byType { // keys are sorted by name before use
		typeOrder = append(typeOrder, named)
	}
	sort.Slice(typeOrder, func(i, j int) bool {
		return typeOrder[i].Obj().Name() < typeOrder[j].Obj().Name()
	})

	for _, named := range typeOrder {
		m := byType[named]
		switch {
		case m.snapshot == nil:
			p.Reportf(named.Obj().Pos(), "%s has Restore but no Snapshot; a restore path with no producer cannot be round-trip tested", named.Obj().Name())
			continue
		case m.restore == nil:
			p.Reportf(named.Obj().Pos(), "%s has Snapshot but no Restore; a snapshot nothing can restore is dead state", named.Obj().Name())
			continue
		}

		fieldDecl := structFieldIdents(p, named)
		if fieldDecl == nil {
			continue // non-struct receiver (or struct declared elsewhere)
		}

		// Walk the union of both methods and their intra-package callees,
		// collecting field references on the receiver type.
		referenced := map[types.Object]bool{}
		visited := map[*ast.FuncDecl]bool{}
		queue := []*ast.FuncDecl{m.snapshot, m.restore}
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			if visited[d] {
				continue
			}
			visited[d] = true
			ast.Inspect(d, func(n ast.Node) bool {
				if se, ok := n.(*ast.SelectorExpr); ok {
					if sel, ok := p.Pkg.Info.Selections[se]; ok && sel.Kind() == types.FieldVal &&
						recvNamed(sel.Recv()) == named {
						referenced[sel.Obj()] = true
					}
				}
				return true
			})
			queue = append(queue, calleeDecls(p, d, decls)...)
		}

		for _, ident := range fieldDecl {
			obj := p.Pkg.Info.Defs[ident]
			if !referenced[obj] {
				p.Reportf(ident.Pos(), "field %s.%s is in neither the Snapshot nor the Restore path; serialize it or audit its exclusion with `_ = x.%s`",
					named.Obj().Name(), ident.Name, ident.Name)
			}
		}
	}
}

// structFieldIdents finds the struct declaration of named in the package's
// files and returns its field name identifiers in declaration order (all
// fields, exported or not — checkpoint completeness is about state, not API).
// Embedded fields have no name identifier and are skipped.
func structFieldIdents(p *Pass, named *types.Named) []*ast.Ident {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || p.Pkg.Info.Defs[ts.Name] != named.Obj() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return nil
				}
				var idents []*ast.Ident
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if name.Name != "_" {
							idents = append(idents, name)
						}
					}
				}
				return idents
			}
		}
	}
	return nil
}
