package pipeline

// Allocation-free hot-path substrate. The cycle loop used to allocate on
// every instruction (fresh inflight records, filtered-append queue drains,
// map-based producer/port bookkeeping, per-cycle scratch slices); the types
// here replace all of that with pooled objects, in-place deques, and dense
// epoch-checked arrays so steady-state simulation performs no heap
// allocation at all. Correctness against the original model is pinned by
// the differential, determinism, and golden-stats tests.

import "ctcp/internal/isa"

// infQueue is an in-place FIFO of in-flight instruction ids. popFront
// advances a head index instead of reslicing (the old `q = q[1:]` drains
// leaked the buffer's front and forced append to reallocate); the buffer is
// compacted in place only when an append would otherwise grow it.
type infQueue struct {
	buf  []infID
	head int
}

func (q *infQueue) len() int       { return len(q.buf) - q.head }
func (q *infQueue) at(i int) infID { return q.buf[q.head+i] }
func (q *infQueue) front() infID   { return q.buf[q.head] }

func (q *infQueue) push(id infID) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = noID
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, id)
}

func (q *infQueue) popFront() infID {
	id := q.buf[q.head]
	q.buf[q.head] = noID
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return id
}

// portWindow is the ring size, in cycles, of the data-cache port schedule.
// It only needs to exceed the farthest-future cycle a port can be booked at
// relative to the current cycle (bounded by the memory hierarchy's worst
// round trip plus store-buffer backlog, a few hundred cycles); 8K cycles
// leaves two orders of magnitude of slack.
const portWindow = 1 << 13

// portSched books data-cache ports per absolute cycle on a ring keyed by
// cycle mod portWindow. Each slot remembers which absolute cycle it
// currently represents, so stale bookings from a lapped window read as
// empty without any sweeping or deletion (the old implementation was a
// map[int64]int that was pruned by full iteration).
type portSched struct {
	cycle []int64
	used  []int32
}

func newPortSched() portSched {
	ps := portSched{cycle: make([]int64, portWindow), used: make([]int32, portWindow)}
	for i := range ps.cycle {
		ps.cycle[i] = -1
	}
	return ps
}

// book reserves one port at or after cycle t given ports per cycle, and
// returns the cycle used.
func (ps *portSched) book(t int64, ports int) int64 {
	for {
		idx := t & (portWindow - 1)
		if ps.cycle[idx] != t {
			ps.cycle[idx] = t
			ps.used[idx] = 0
		}
		if int(ps.used[idx]) < ports {
			ps.used[idx]++
			return t
		}
		t++
	}
}

// pcStats is the per-static-instruction producer history behind Table 3
// (last forwarded producer per source, and last critical inter-trace
// producer per source). A zero PC means "not seen yet", as in the original
// map encoding.
type pcStats struct {
	lastProd      [2]uint64
	lastCritInter [2]uint64
}

// maxPCTableEntries bounds the dense table at 1M static instructions
// (32 MB); streams with wilder PC ranges fall back to a map so a synthetic
// stream cannot make the simulator allocate unbounded memory.
const maxPCTableEntries = 1 << 20

// pcTable maps instruction addresses to their pcStats through a dense
// array indexed by (PC-base)/stride. Program text is contiguous, so after
// the first pass over the working set every lookup is a single bounds-
// checked index with no hashing and no allocation.
type pcTable struct {
	base     uint64 // PC/PCStride of entry 0; valid once tab is non-nil
	tab      []pcStats
	overflow map[uint64]*pcStats
}

// statsFor is the steady-state lookup: once the table covers the program's
// working set it is a single bounds-checked index. Anything else — first
// touch, growth in either direction, the overflow map — is the cold path.
func (t *pcTable) statsFor(pc uint64, stride uint64) *pcStats {
	idx := pc / stride
	if t.tab == nil || idx < t.base || idx-t.base >= uint64(len(t.tab)) {
		return t.grow(pc, idx)
	}
	return &t.tab[idx-t.base]
}

// grow extends the dense table to cover idx (doubling toward the back,
// exact-prepending toward the front) or falls back to the overflow map when
// the span would exceed maxPCTableEntries. Growth doubles, so the work
// amortizes to zero per steady-state lookup.
//
//ctcp:coldpath
func (t *pcTable) grow(pc, idx uint64) *pcStats {
	if t.tab == nil {
		t.base = idx
		t.tab = make([]pcStats, 64)
	}
	if idx < t.base {
		if front := t.base - idx; front+uint64(len(t.tab)) <= maxPCTableEntries {
			nt := make([]pcStats, front+uint64(len(t.tab)))
			copy(nt[front:], t.tab)
			t.tab = nt
			t.base = idx
		} else {
			return t.slow(pc)
		}
	}
	off := idx - t.base
	if off >= uint64(len(t.tab)) {
		if off >= maxPCTableEntries {
			return t.slow(pc)
		}
		n := uint64(len(t.tab))
		for n <= off {
			n *= 2
		}
		nt := make([]pcStats, n)
		copy(nt, t.tab)
		t.tab = nt
	}
	return &t.tab[off]
}

// slow is the overflow-map fallback for PC ranges too wild for the dense
// table; each new static instruction allocates once.
//
//ctcp:coldpath
func (t *pcTable) slow(pc uint64) *pcStats {
	if t.overflow == nil {
		t.overflow = make(map[uint64]*pcStats)
	}
	e := t.overflow[pc]
	if e == nil {
		e = new(pcStats)
		t.overflow[pc] = e
	}
	return e
}

// readyEvent queues one resolved RS entry for its future ready cycle.
type readyEvent struct {
	at  int64
	idx uint32
}

// readyHeap is a binary min-heap of readyEvents ordered by cycle. resolve
// parks entries whose ready cycle is still in the future here instead of
// setting their ready-mask bit; issue pops due entries each cycle and sets
// their bits then. The issue scan therefore only ever visits issuable (or
// FU-starved) entries — no per-cycle rescan of known-not-ready entries — and
// nextEvent reads the earliest pending ready cycle straight from the root.
type readyHeap []readyEvent

func (h *readyHeap) push(e readyEvent) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].at <= q[i].at {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

func (h *readyHeap) pop() readyEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && q[r].at < q[l].at {
			l = r
		}
		if q[i].at <= q[l].at {
			break
		}
		q[i], q[l] = q[l], q[i]
		i = l
	}
	*h = q
	return top
}

// decEntry is the cached static decode of one instruction: everything the
// front end re-derived per dynamic instance (source/destination registers,
// functional-unit class, control kind) even though it is a pure function of
// the instruction word. Program text is immutable, so the first dynamic
// instance of a PC fills its entry and every later instance reads 8 bytes.
type decEntry struct {
	src   [2]isa.Reg
	dest  isa.Reg
	class isa.Class
	ctrl  uint8
	valid bool
}

// Control kinds, the exact cases handleControl dispatches on.
const (
	ctrlNone uint8 = iota
	ctrlCond
	ctrlBR
	ctrlJSR
	ctrlJMP
	ctrlRET
)

// decodeInst fills a decode-cache entry from the instruction word.
//
//ctcp:coldpath
func decodeInst(in isa.Inst) decEntry {
	var e decEntry
	e.valid = true
	s1, s2 := in.Srcs()
	e.src = [2]isa.Reg{s1, s2}
	e.dest = in.Dest()
	e.class = in.Op.Class()
	switch {
	case in.IsCond():
		e.ctrl = ctrlCond
	case in.Op == isa.BR:
		e.ctrl = ctrlBR
	case in.Op == isa.JSR:
		e.ctrl = ctrlJSR
	case in.Op == isa.JMP:
		e.ctrl = ctrlJMP
	case in.Op == isa.RET:
		e.ctrl = ctrlRET
	}
	return e
}

// decTable maps instruction addresses to decode-cache entries through the
// same dense (PC-base)/stride array pcTable uses, with the same doubling
// growth and overflow-map fallback. It is derived state: never serialized,
// refilled lazily after restore.
type decTable struct {
	base     uint64
	tab      []decEntry
	overflow map[uint64]*decEntry
}

// entryFor is the steady-state lookup: a single bounds-checked index.
func (t *decTable) entryFor(pc uint64) *decEntry {
	idx := pc / isa.PCStride
	if t.tab == nil || idx < t.base || idx-t.base >= uint64(len(t.tab)) {
		return t.grow(pc, idx)
	}
	return &t.tab[idx-t.base]
}

//ctcp:coldpath
func (t *decTable) grow(pc, idx uint64) *decEntry {
	if t.tab == nil {
		t.base = idx
		t.tab = make([]decEntry, 64)
	}
	if idx < t.base {
		if front := t.base - idx; front+uint64(len(t.tab)) <= maxPCTableEntries {
			nt := make([]decEntry, front+uint64(len(t.tab)))
			copy(nt[front:], t.tab)
			t.tab = nt
			t.base = idx
		} else {
			return t.slow(pc)
		}
	}
	off := idx - t.base
	if off >= uint64(len(t.tab)) {
		if off >= maxPCTableEntries {
			return t.slow(pc)
		}
		n := uint64(len(t.tab))
		for n <= off {
			n *= 2
		}
		nt := make([]decEntry, n)
		copy(nt, t.tab)
		t.tab = nt
	}
	return &t.tab[off]
}

//ctcp:coldpath
func (t *decTable) slow(pc uint64) *decEntry {
	if t.overflow == nil {
		t.overflow = make(map[uint64]*decEntry)
	}
	e := t.overflow[pc]
	if e == nil {
		e = new(decEntry)
		t.overflow[pc] = e
	}
	return e
}

// reclaim releases retired slots whose last possible referencer has itself
// retired from the graveyard back into the store's free list. References to
// a record X are only ever created while X is reachable through
// renameMap/lastStore, i.e. by instructions renamed before X retired; X
// stamps the rename count at its retirement into freeAfter, and once that
// many instructions have retired (retirement is in rename order, and
// retiring clears outgoing references) nothing can still refer to X.
// pendingRedirect is the one non-queue reference and blocks the queue head
// until the redirect clears. Releasing bumps the slot's generation, so any
// id that illegally survives reclamation fails the store's generation check.
func (p *Pipeline) reclaim() {
	for p.scr.graveyard.len() > 0 {
		id := p.scr.graveyard.front()
		idx := uint32(id)
		if p.st.freeAfter[idx] > p.S.Retired || id == p.pendingRedirect {
			return
		}
		p.scr.graveyard.popFront()
		p.st.release(idx)
	}
}
