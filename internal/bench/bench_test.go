package bench

import (
	"encoding/json"
	"testing"
)

func TestRunProducesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run")
	}
	rep, err := Run(2_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kernels {
		m, ok := rep.Kernels[k]
		if !ok {
			t.Fatalf("kernel %s missing from report", k)
		}
		if m.Iterations <= 0 || m.NsPerOp <= 0 || m.NsPerCycle <= 0 || m.CyclesPerSec <= 0 {
			t.Errorf("%s: degenerate metrics %+v", k, m)
		}
	}
}

func TestBaselineRoundtrips(t *testing.T) {
	base := Baseline()
	for _, k := range Kernels {
		if _, ok := base.Kernels[k]; !ok {
			t.Fatalf("baseline missing kernel %s", k)
		}
	}
	buf, err := json.Marshal(File{Baseline: base, Current: base})
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatal(err)
	}
	if f.Baseline.Kernels["gzip"].AllocsPerOp != base.Kernels["gzip"].AllocsPerOp {
		t.Fatal("baseline did not roundtrip through JSON")
	}
}

func TestGate(t *testing.T) {
	mk := func(ns float64) Report {
		return Report{Kernels: map[string]Metrics{"gzip": {NsPerCycle: ns}, "mcf": {NsPerCycle: 100}}}
	}
	committed := mk(1000)
	if err := Gate(committed, mk(1100), 0.15); err != nil {
		t.Errorf("10%% regression tripped a 15%% gate: %v", err)
	}
	if err := Gate(committed, mk(1200), 0.15); err == nil {
		t.Error("20%% regression passed a 15%% gate")
	}
	// A kernel only present on one side is not a regression.
	fresh := mk(900)
	fresh.Kernels["new-kernel"] = Metrics{NsPerCycle: 9999}
	if err := Gate(committed, fresh, 0.15); err != nil {
		t.Errorf("unmatched kernel tripped the gate: %v", err)
	}
	// A zero committed record cannot divide-by-zero or trip.
	committed.Kernels["zero"] = Metrics{}
	fresh.Kernels["zero"] = Metrics{NsPerCycle: 5}
	if err := Gate(committed, fresh, 0.15); err != nil {
		t.Errorf("zero committed record tripped the gate: %v", err)
	}
}

func TestRecordHistoryReplacesSameLabel(t *testing.T) {
	rep := Report{
		GoVersion: "go1.24.0",
		Kernels:   map[string]Metrics{"gzip": {NsPerCycle: 950.5}},
	}
	var f File
	f.RecordHistory(rep, "soa", "2026-08-08")
	f.RecordHistory(rep, "older", "2026-07-01")
	rep.Kernels["gzip"] = Metrics{NsPerCycle: 900}
	f.RecordHistory(rep, "soa", "2026-08-09")
	if len(f.History) != 2 {
		t.Fatalf("history has %d entries, want 2 (same-label replace)", len(f.History))
	}
	if f.History[0].Label != "soa" || f.History[0].Date != "2026-08-09" ||
		f.History[0].NsPerCycle["gzip"] != 900 {
		t.Errorf("same-label entry not replaced in place: %+v", f.History[0])
	}
}

func TestEmitRounding(t *testing.T) {
	if got := round1(23554146.888888888); got != 23554146.9 {
		t.Errorf("round1 = %v", got)
	}
	if got := round4(0.10346666); got != 0.1035 {
		t.Errorf("round4 = %v", got)
	}
}
