package experiment

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// hookRunner returns a Runner whose simulation function is replaced by fn,
// so tests can count executions and inject failures without paying for real
// cycle-level runs.
func hookRunner(opts Options, fn func(cfg pipeline.Config) (*pipeline.Stats, error)) *Runner {
	if opts.Budget == 0 {
		opts.Budget = 1_000
	}
	r := NewRunner(opts)
	r.runFn = func(_ *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
		return fn(cfg)
	}
	return r
}

// TestRunSameKeyExactlyOnce is the duplicate-work regression test: N
// goroutines request the same key concurrently and exactly one underlying
// simulation may execute.
func TestRunSameKeyExactlyOnce(t *testing.T) {
	var runs atomic.Int64
	r := hookRunner(Options{Parallelism: 8}, func(pipeline.Config) (*pipeline.Stats, error) {
		runs.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return &pipeline.Stats{Cycles: 123}, nil
	})
	bm, _ := workload.ByName("gzip")

	const N = 64
	results := make([]*pipeline.Stats, N)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(N)
	for i := 0; i < N; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results[i] = r.Run(bm, "base", BaseConfig())
		}(i)
	}
	start.Done()
	done.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("same key simulated %d times, want exactly 1", n)
	}
	for i, s := range results {
		if s != results[0] || s == nil {
			t.Fatalf("caller %d got a different stats pointer", i)
		}
	}
	st := r.Stats()
	if st.Started != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 started / 1 completed", st)
	}
	if st.Deduped+st.CacheHits != N-1 {
		t.Errorf("deduped %d + hits %d, want %d joiners", st.Deduped, st.CacheHits, N-1)
	}
}

// TestRunDistinctKeysAllExecute checks singleflight does not over-collapse:
// distinct keys each simulate once, concurrently.
func TestRunDistinctKeysAllExecute(t *testing.T) {
	var runs atomic.Int64
	r := hookRunner(Options{Parallelism: 4}, func(pipeline.Config) (*pipeline.Stats, error) {
		runs.Add(1)
		return &pipeline.Stats{Cycles: 1}, nil
	})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for _, bm := range workload.Selected() {
		for _, key := range keys {
			wg.Add(1)
			go func(bm workload.Benchmark, key string) {
				defer wg.Done()
				r.Run(bm, key, BaseConfig())
			}(bm, key)
		}
	}
	wg.Wait()
	want := int64(len(keys) * len(workload.Selected()))
	if n := runs.Load(); n != want {
		t.Fatalf("ran %d simulations, want %d", n, want)
	}
}

// TestRunErrRecordsFailureWithoutPoisoning injects a panicking config and
// checks it yields a SimError for its own key while other keys keep working.
func TestRunErrRecordsFailureWithoutPoisoning(t *testing.T) {
	r := hookRunner(Options{Parallelism: 4}, func(cfg pipeline.Config) (*pipeline.Stats, error) {
		if cfg.ROBSize < 0 {
			panic("injected: pathological configuration")
		}
		return &pipeline.Stats{Cycles: 7}, nil
	})
	bm, _ := workload.ByName("gzip")
	bad := BaseConfig()
	bad.ROBSize = -1

	s, err := r.RunErr(bm, "bad", bad)
	if s != nil {
		t.Errorf("failed run returned stats %+v", s)
	}
	var se *pipeline.SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *pipeline.SimError", err, err)
	}
	if !strings.Contains(se.Reason, "injected") {
		t.Errorf("SimError.Reason = %q, want the panic value", se.Reason)
	}
	if r.Run(bm, "bad", bad) != nil {
		t.Error("cached failure returned non-nil stats")
	}

	// Other keys are unaffected.
	if s := r.Run(bm, "good", BaseConfig()); s == nil || s.Cycles != 7 {
		t.Fatalf("healthy key poisoned by failed neighbor: %+v", s)
	}

	errs := r.Errors()
	if len(errs) != 1 || errs["gzip/bad"] == nil {
		t.Errorf("Errors() = %v, want exactly gzip/bad", errs)
	}
	sum := r.FailureSummary()
	if !strings.Contains(sum, "gzip/bad") || !strings.Contains(sum, "1 simulation(s) failed") {
		t.Errorf("FailureSummary() = %q", sum)
	}
	st := r.Stats()
	if st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 failed / 1 completed", st)
	}
}

// TestPrefetchBoundedConcurrency drives a matrix far larger than the
// parallelism limit and asserts the worker pool never exceeds it.
func TestPrefetchBoundedConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int64
	r := hookRunner(Options{Parallelism: limit}, func(pipeline.Config) (*pipeline.Stats, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return &pipeline.Stats{Cycles: 1}, nil
	})
	cfgs := map[string]pipeline.Config{}
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		cfgs[key] = BaseConfig()
	}
	r.Prefetch(workload.All(), cfgs)
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", p, limit)
	}
	st := r.Stats()
	if want := uint64(len(workload.All()) * len(cfgs)); st.Started != want || st.Completed != want {
		t.Errorf("stats = %+v, want %d started and completed", st, want)
	}
}

// TestProgressEventsEmitted wires a progress callback and checks the event
// stream covers start, completion, failure, and cache hits.
func TestProgressEventsEmitted(t *testing.T) {
	var mu sync.Mutex
	counts := map[ProgressKind]int{}
	opts := Options{Parallelism: 2, Progress: func(ev ProgressEvent) {
		mu.Lock()
		counts[ev.Kind]++
		mu.Unlock()
	}}
	r := hookRunner(opts, func(cfg pipeline.Config) (*pipeline.Stats, error) {
		if cfg.ROBSize < 0 {
			return nil, &pipeline.SimError{Reason: "injected"}
		}
		return &pipeline.Stats{Cycles: 1}, nil
	})
	bm, _ := workload.ByName("gzip")
	bad := BaseConfig()
	bad.ROBSize = -1
	r.Run(bm, "base", BaseConfig())
	r.Run(bm, "base", BaseConfig()) // cache hit
	r.Run(bm, "bad", bad)           // failure

	mu.Lock()
	defer mu.Unlock()
	if counts[RunStarted] != 2 || counts[RunCompleted] != 1 ||
		counts[RunFailed] != 1 || counts[RunCached] != 1 {
		t.Errorf("event counts = %v", counts)
	}
}

// TestRunRealSimulationStillWorks exercises the unhooked path end to end:
// the default runFn must produce real stats and honor the budget.
func TestRunRealSimulationStillWorks(t *testing.T) {
	r := NewRunner(Options{Budget: 20_000})
	bm, _ := workload.ByName("gzip")
	s, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil || s == nil {
		t.Fatalf("RunErr = %v, %v", s, err)
	}
	if s.Retired != r.Budget() {
		t.Errorf("retired %d, want %d", s.Retired, r.Budget())
	}
}

// TestRunRealPathologicalConfigDegrades runs the genuine simulator (no
// hook) under a broken geometry and checks graceful degradation end to end.
func TestRunRealPathologicalConfigDegrades(t *testing.T) {
	r := NewRunner(Options{Budget: 5_000})
	bm, _ := workload.ByName("gzip")
	bad := BaseConfig()
	bad.Geom.Clusters = 0 // slot steering has no valid target cluster
	s, err := r.RunErr(bm, "broken-geom", bad)
	if s != nil {
		t.Errorf("stats = %+v, want nil", s)
	}
	var se *pipeline.SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *pipeline.SimError", err, err)
	}
	// The rest of the sweep proceeds.
	if s := r.Run(bm, "base", BaseConfig()); s == nil {
		t.Fatal("healthy run failed after pathological one")
	}
	if r.FailureSummary() == "" {
		t.Error("failure not surfaced in summary")
	}
}
