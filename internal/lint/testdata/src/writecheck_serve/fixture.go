// Fixture for the writecheck analyzer's serve-tier scope: loaded by
// lint_test.go under the ctcp/internal/serve import path. Marked lines must
// diagnose; every other line must stay silent.
package fixture

import (
	"fmt"
	"net/http"
	"strings"
)

func handler(w http.ResponseWriter, logf func(string, ...any)) {
	w.Write([]byte("hello")) // want:writecheck

	if _, err := w.Write([]byte("hello")); err != nil { // checked: no diagnostic
		logf("client gone: %v", err)
		return
	}

	// The SSE frame-write path: fmt.Fprintf straight to the response.
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", "progress", "{}") // want:writecheck

	if _, err := fmt.Fprintf(w, "retry: %d\n\n", 1000); err != nil { // checked: no diagnostic
		return
	}

	// Infallible sink: building the frame in memory first is the fix idiom.
	var b strings.Builder
	fmt.Fprintf(&b, "event: %s\n", "progress")
	if _, err := w.Write([]byte(b.String())); err != nil {
		logf("client gone: %v", err)
	}
}
