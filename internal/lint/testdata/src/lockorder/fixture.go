// Fixture for the lockorder analyzer: loaded by lint_test.go under the
// ctcp/internal/serve import path. Marked lines must diagnose; every other
// line must stay silent.
package fixture

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
	muG sync.Mutex
	muH sync.Mutex
)

// Direct inversion: f1 takes A then B, f2 takes B then A. The {A,B} cycle is
// reported once, at the first sorted edge's witness (A->B, i.e. here).
func f1() {
	muA.Lock()
	muB.Lock() // want:lockorder
	muB.Unlock()
	muA.Unlock()
}

func f2() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// Transitive inversion: the nested acquisition happens inside helpers, so
// the edges come from the call graph, not the lexical bodies. The {C,E}
// cycle is reported at its first sorted edge's witness (C->E, the lockE call
// below).
func fC() {
	muC.Lock()
	lockE() // want:lockorder
	muC.Unlock()
}

func fE() {
	muE.Lock()
	lockC()
	muE.Unlock()
}

func lockE() {
	muE.Lock()
	muE.Unlock()
}

func lockC() {
	muC.Lock()
	muC.Unlock()
}

// Self-deadlock: reacquiring a held (non-reentrant) mutex.
func fD() {
	muD.Lock()
	muD.Lock() // want:lockorder
	muD.Unlock()
	muD.Unlock()
}

// Consistent one-way nesting is fine: F before G everywhere, no reverse edge.
func fOK() {
	muF.Lock()
	muG.Lock()
	muG.Unlock()
	muF.Unlock()
}

// Sequential (non-nested) acquisition creates no edge at all.
func fSeq() {
	muG.Lock()
	muG.Unlock()
	muF.Lock()
	muF.Unlock()
}

// Suppression works for a deliberate, documented exception.
func fSuppressed() {
	muH.Lock()
	muH.Lock() //ctcp:lint-ok lockorder -- fixture: deliberate double-lock to exercise suppression
	muH.Unlock()
	muH.Unlock()
}
