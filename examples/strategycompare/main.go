// strategycompare runs one benchmark of the synthetic suite under every
// cluster assignment strategy the paper evaluates and prints the speedups
// over the slot-based baseline — a one-benchmark slice of Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"

	"ctcp"
)

func main() {
	bench := flag.String("bench", "twolf", "benchmark name (see cmd/ctcpsim -list)")
	insts := flag.Uint64("insts", 200_000, "instruction budget")
	flag.Parse()

	bm, ok := ctcp.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	fmt.Printf("%s: %s\n\n", bm.Name, bm.Description)

	base := ctcp.Run(bm, ctcp.DefaultConfig(), *insts)
	fmt.Printf("baseline: %d cycles, IPC %.3f, %.1f%% TC instructions, mispredict %.2f%%\n\n",
		base.Cycles, base.IPC(), 100*base.PctFromTC(), 100*base.MispredictRate())

	type entry struct {
		name  string
		strat ctcp.Strategy
		ideal bool
	}
	rows := []entry{
		{"friendly (retire-time, intra-trace)", ctcp.Friendly, false},
		{"friendly-middle", ctcp.FriendlyMiddle, false},
		{"fdrt (paper: pinned chains)", ctcp.FDRT, false},
		{"fdrt-nopin (adaptive chains)", ctcp.FDRTNoPin, false},
		{"issue-time, 4-cycle steering", ctcp.IssueTime, false},
		{"issue-time, ideal latency", ctcp.IssueTime, true},
	}
	fmt.Println("strategy                              speedup  intra-fwd  distance")
	for _, e := range rows {
		cfg := ctcp.DefaultConfig().WithStrategy(e.strat, e.ideal)
		s := ctcp.Run(bm, cfg, *insts)
		fmt.Printf("%-36s  %6.3f   %6.1f%%   %7.3f\n", e.name,
			float64(base.Cycles)/float64(s.Cycles),
			100*s.IntraClusterFrac(), s.AvgFwdDistance())
	}
}
