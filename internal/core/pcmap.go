package core

import "ctcp/internal/isa"

// maxPCMapEntries bounds the dense span of a pcMap (2^20 instruction slots =
// 4 MB of program text at the architectural stride) so a hostile PC stream
// cannot make the fill unit allocate unbounded memory.
const maxPCMapEntries = 1 << 20

// pcMap maps static instruction addresses to entries of type E through a
// dense array indexed by PC/isa.PCStride, mirroring the pipeline's pcTable:
// program text is contiguous, so after the first pass over the working set
// every lookup is a single bounds-checked index with no hashing and no
// allocation. The fill unit runs once per retired instruction, which puts
// its per-PC tables (the chain-designation table and the migration history)
// on the simulator's hot path alongside the pipeline's own.
//
// Presence is the caller's concern: dense slots exist for every covered
// address and the zero E means "absent", so E must carry its own presence
// bit (or an equivalent sentinel).
//
// Misaligned or far-flung addresses fall back to a small linear overflow
// list. Whenever dense growth newly covers an overflow address the entry
// migrates into its dense slot (adopt), so exactly one copy of each key
// exists at any time and lookups never need to consult both.
type pcMap[E any] struct {
	base     uint64 // PC/PCStride of tab[0]; valid once tab is non-nil
	tab      []E
	overflow []pcOverflow[E]
}

// pcOverflow is one entry of the fallback list.
type pcOverflow[E any] struct {
	pc uint64
	e  E
}

// lookup returns the entry for pc, or nil when no slot covers pc. It never
// grows the table.
func (t *pcMap[E]) lookup(pc uint64) *E {
	idx := pc / isa.PCStride
	if pc == idx*isa.PCStride && t.tab != nil && idx >= t.base && idx-t.base < uint64(len(t.tab)) {
		return &t.tab[idx-t.base]
	}
	for i := range t.overflow {
		if t.overflow[i].pc == pc {
			return &t.overflow[i].e
		}
	}
	return nil
}

// ensure returns the entry for pc, creating its slot on first touch.
func (t *pcMap[E]) ensure(pc uint64) *E {
	idx := pc / isa.PCStride
	if pc == idx*isa.PCStride && t.tab != nil && idx >= t.base && idx-t.base < uint64(len(t.tab)) {
		return &t.tab[idx-t.base]
	}
	return t.grow(pc, idx)
}

// grow extends the dense table to cover idx (doubling toward the back,
// exact-prepending toward the front) or falls back to the overflow list when
// the address is misaligned or the span would exceed maxPCMapEntries.
//
//ctcp:coldpath
func (t *pcMap[E]) grow(pc, idx uint64) *E {
	if pc != idx*isa.PCStride {
		return t.slow(pc)
	}
	if t.tab == nil {
		t.base = idx
		t.tab = make([]E, 64)
	}
	if idx < t.base {
		front := t.base - idx
		if front+uint64(len(t.tab)) > maxPCMapEntries {
			return t.slow(pc)
		}
		nt := make([]E, front+uint64(len(t.tab)))
		copy(nt[front:], t.tab)
		t.tab, t.base = nt, idx
		t.adopt()
	}
	off := idx - t.base
	if off >= uint64(len(t.tab)) {
		if off >= maxPCMapEntries {
			return t.slow(pc)
		}
		n := uint64(len(t.tab))
		for n <= off {
			n *= 2
		}
		nt := make([]E, n)
		copy(nt, t.tab)
		t.tab = nt
		t.adopt()
	}
	return &t.tab[off]
}

// slow appends to (or finds in) the overflow list; only misaligned or
// pathologically scattered addresses land here, so linear search is fine.
//
//ctcp:coldpath
func (t *pcMap[E]) slow(pc uint64) *E {
	for i := range t.overflow {
		if t.overflow[i].pc == pc {
			return &t.overflow[i].e
		}
	}
	t.overflow = append(t.overflow, pcOverflow[E]{pc: pc})
	return &t.overflow[len(t.overflow)-1].e
}

// adopt migrates overflow entries that the just-grown dense span now covers
// into their dense slots, preserving the one-copy-per-key invariant.
//
//ctcp:coldpath
func (t *pcMap[E]) adopt() {
	keep := t.overflow[:0]
	for i := range t.overflow {
		pc := t.overflow[i].pc
		idx := pc / isa.PCStride
		if pc == idx*isa.PCStride && idx >= t.base && idx-t.base < uint64(len(t.tab)) {
			t.tab[idx-t.base] = t.overflow[i].e
			continue
		}
		keep = append(keep, t.overflow[i])
	}
	t.overflow = keep
}

// forEach visits every slot (present or not) — dense slots in ascending PC
// order, then overflow entries in insertion order. Snapshot-path only;
// callers filter on their presence bit and sort as needed.
func (t *pcMap[E]) forEach(fn func(pc uint64, e *E)) {
	for i := range t.tab {
		fn((t.base+uint64(i))*isa.PCStride, &t.tab[i])
	}
	for i := range t.overflow {
		fn(t.overflow[i].pc, &t.overflow[i].e)
	}
}

// reset drops all slots.
func (t *pcMap[E]) reset() {
	t.base = 0
	t.tab = nil
	t.overflow = nil
}
