package core

import (
	"sort"

	"ctcp/internal/snap"
	"ctcp/internal/trace"
)

// Snapshot serializes one retired-instruction record (a leaf value: no
// section of its own).
func (ri *RetireInfo) Snapshot(w *snap.Writer) {
	ri.Rec.Snapshot(w)
	w.Bool(ri.FromTC)
	w.U8(ri.Profile.Role)
	w.U8(ri.Profile.ChainCluster)
	w.Int(ri.Cluster)
	w.U64(ri.FetchGroup)
	w.Int(int(ri.CritSrc))
	w.Bool(ri.CritForwarded)
	w.U64(ri.CritProducerPC)
	w.U64(ri.CritProducerSeq)
	w.Int(ri.CritProducerCluster)
	w.Bool(ri.CritInterTrace)
	w.U8(ri.CritProducerProfile.Role)
	w.U8(ri.CritProducerProfile.ChainCluster)
}

// Restore rebuilds one retired-instruction record.
func (ri *RetireInfo) Restore(r *snap.Reader) {
	ri.Rec.Restore(r)
	ri.FromTC = r.Bool()
	ri.Profile.Role = r.U8()
	ri.Profile.ChainCluster = r.U8()
	ri.Cluster = r.Int()
	ri.FetchGroup = r.U64()
	ri.CritSrc = CritSrc(r.Int())
	ri.CritForwarded = r.Bool()
	ri.CritProducerPC = r.U64()
	ri.CritProducerSeq = r.U64()
	ri.CritProducerCluster = r.Int()
	ri.CritInterTrace = r.Bool()
	ri.CritProducerProfile.Role = r.U8()
	ri.CritProducerProfile.ChainCluster = r.U8()
}

// Snapshot serializes the chain-designation table. The FIFO order slice may
// hold stale entries for keys that were taken and later re-designated (Set
// appends a new position; the old one is skipped at eviction time), so the
// encoding walks the order backwards keeping each live key's most recent —
// i.e. current — position, then emits the live entries oldest-first.
// Restoring replays them through Set, which rebuilds an equivalent table:
// same contents and same future eviction order, with the stale positions
// compacted away.
func (c *ChainProfile) Snapshot(w *snap.Writer) {
	w.Begin("chains")
	w.Int(c.capLimit)
	live := make([]uint64, 0, c.count)
	seen := make(map[uint64]bool, c.count)
	for i := len(c.order) - 1; i >= c.head; i-- {
		pc := c.order[i]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		if c.Has(pc) {
			live = append(live, pc)
		}
	}
	// live is newest-first; emit oldest-first.
	for i, j := 0, len(live)-1; i < j; i, j = i+1, j-1 {
		live[i], live[j] = live[j], live[i]
	}
	if len(live) != c.count {
		w.Failf("chain profile: %d live FIFO entries but %d table entries", len(live), c.count)
		return
	}
	w.Int(len(live))
	for _, pc := range live {
		p := c.Get(pc)
		w.U64(pc)
		w.U8(p.Role)
		w.U8(p.ChainCluster)
	}
	w.End()
}

// Restore rebuilds the chain-designation table from r.
func (c *ChainProfile) Restore(r *snap.Reader) {
	r.Begin("chains")
	r.ExpectInt("chain table capacity", c.capLimit)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 || n > c.capLimit {
		r.Failf("chain profile has %d entries (capacity %d)", n, c.capLimit)
		return
	}
	c.Reset()
	for i := 0; i < n; i++ {
		pc := r.U64()
		p := trace.Profile{Role: r.U8(), ChainCluster: r.U8()}
		if r.Err() != nil {
			return
		}
		c.Set(pc, p)
	}
	r.End()
}

// Snapshot serializes the fill unit's persistent state: the chain table,
// the trace under construction, retired instructions pending assignment,
// the per-PC migration history, and the fill statistics. The trace cache
// the unit installs into is owned (and snapshotted) by the pipeline; the
// geometry-derived cluster orders and all per-trace scratch buffers are
// excluded and remain valid/rebuilt on restore.
func (f *FillUnit) Snapshot(w *snap.Writer) {
	w.Begin("fill")
	w.Int(int(f.cfg.Strategy))
	w.Int(f.cfg.Geom.Clusters)
	w.Int(f.cfg.Geom.Width)
	w.Int(f.cfg.Trace.MaxLen)
	w.Bool(f.cfg.DisableChains)
	_ = f.tc // wired at construction; serialized by the pipeline section
	f.chains.Snapshot(w)
	f.builder.Snapshot(w)
	w.Int(len(f.pending))
	for i := range f.pending {
		f.pending[i].Snapshot(w)
	}
	pcs := make([]uint64, 0, 64)
	f.lastCluster.forEach(func(pc uint64, e *clusterSlot) {
		if e.present {
			pcs = append(pcs, pc)
		}
	})
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.Int(len(pcs))
	for _, pc := range pcs {
		w.U64(pc)
		w.Int(int(f.lastCluster.lookup(pc).cluster))
	}
	// Geometry-derived orders, fixed at construction: not serialized.
	_ = f.selfFirst
	_ = f.midsTrunc
	_ = f.natOrder
	_ = f.midOrder
	// Per-trace scratch, reused across traces: not serialized.
	_ = f.assigned
	_ = f.capacity
	_ = f.prods
	_ = f.consumers
	_ = f.order
	_ = f.nextSlot
	// Assignment memo and its diagnostics counters: derived cache, cleared on
	// Restore (assignmemo.go). Keeping them out of the encoding pins snapshot
	// bit-compatibility with pre-memo fixtures.
	_ = f.memo
	_ = f.memoHits
	_ = f.memoMisses
	w.U64(f.S.TracesBuilt)
	w.U64(f.S.InstsBuilt)
	w.U64(f.S.OptionA)
	w.U64(f.S.OptionB)
	w.U64(f.S.OptionC)
	w.U64(f.S.OptionD)
	w.U64(f.S.OptionE)
	w.U64(f.S.Skipped)
	w.U64(f.S.LeadersCreated)
	w.U64(f.S.FollowersCreated)
	w.U64(f.S.Seen)
	w.U64(f.S.Migrated)
	w.U64(f.S.ChainSeen)
	w.U64(f.S.ChainMigrated)
	w.End()
}

// Restore rebuilds the fill unit's persistent state from r into a unit
// constructed by NewFillUnit with the same configuration.
func (f *FillUnit) Restore(r *snap.Reader) {
	r.Begin("fill")
	r.ExpectInt("fill strategy", int(f.cfg.Strategy))
	r.ExpectInt("fill clusters", f.cfg.Geom.Clusters)
	r.ExpectInt("fill cluster width", f.cfg.Geom.Width)
	r.ExpectInt("fill trace max length", f.cfg.Trace.MaxLen)
	if got := r.Bool(); r.Err() == nil && got != f.cfg.DisableChains {
		r.Failf("fill DisableChains mismatch: snapshot has %v, this configuration has %v", got, f.cfg.DisableChains)
	}
	f.chains.Restore(r)
	f.builder.Restore(r)
	f.memo.reset()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 {
		r.Failf("fill unit has negative pending count %d", n)
		return
	}
	f.pending = f.pending[:0]
	for i := 0; i < n; i++ {
		var ri RetireInfo
		ri.Restore(r)
		if r.Err() != nil {
			return
		}
		f.pending = append(f.pending, ri)
	}
	nc := r.Int()
	if r.Err() != nil {
		return
	}
	f.lastCluster.reset()
	for i := 0; i < nc; i++ {
		pc := r.U64()
		*f.lastCluster.ensure(pc) = clusterSlot{cluster: int16(r.Int()), present: true}
	}
	f.S.TracesBuilt = r.U64()
	f.S.InstsBuilt = r.U64()
	f.S.OptionA = r.U64()
	f.S.OptionB = r.U64()
	f.S.OptionC = r.U64()
	f.S.OptionD = r.U64()
	f.S.OptionE = r.U64()
	f.S.Skipped = r.U64()
	f.S.LeadersCreated = r.U64()
	f.S.FollowersCreated = r.U64()
	f.S.Seen = r.U64()
	f.S.Migrated = r.U64()
	f.S.ChainSeen = r.U64()
	f.S.ChainMigrated = r.U64()
	r.End()
}
