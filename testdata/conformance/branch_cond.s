; conformance: all six conditional branches over a -3..3 sweep, encoded
; into a bitmask so every taken/not-taken decision is architectural.
        .entry main
main:   movi    r1, -3          ; v
        movi    r2, 0           ; mask
next:   movi    r3, 0
        beq     r1, is0
        movi    r3, 1
is0:    sll     r2, 1, r2
        or      r2, r3, r2
        movi    r3, 0
        bne     r1, isn0
        movi    r3, 1
isn0:   sll     r2, 1, r2
        or      r2, r3, r2
        movi    r3, 0
        blt     r1, isneg
        movi    r3, 1
isneg:  sll     r2, 1, r2
        or      r2, r3, r2
        movi    r3, 0
        ble     r1, isle
        movi    r3, 1
isle:   sll     r2, 1, r2
        or      r2, r3, r2
        movi    r3, 0
        bgt     r1, isgt
        movi    r3, 1
isgt:   sll     r2, 1, r2
        or      r2, r3, r2
        movi    r3, 0
        bge     r1, isge
        movi    r3, 1
isge:   sll     r2, 1, r2
        or      r2, r3, r2
        add     r1, 1, r1
        cmple   r1, 3, r4
        bne     r4, next
        out     r2
        halt
