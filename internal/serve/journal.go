package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"ctcp/internal/snap"
)

// Journal ops, in lifecycle order. An "accept" makes a submission durable
// before the client sees 202; a "settle" tombstones it once the job has
// answered its acceptance (done or failed). Interrupted jobs are
// deliberately never settled: their acceptance is still owed a simulation,
// so a restart replays them.
const (
	journalAccept = "accept"
	journalSettle = "settle"
)

// journalEntry is one record of the durable queue journal.
type journalEntry struct {
	Op     string `json:"op"`
	FP     string `json:"fp"`
	Tenant string `json:"tenant,omitempty"`
	// Request is the normalized (defaults applied) submission, kept on
	// accepts so a restart can rebuild and re-dispatch the job.
	Request *Request `json:"req,omitempty"`
}

// jobJournal is the append side of the durable queue: one checksummed line
// per event through snap's journal helpers. Appends serialize on their own
// mutex — never the server's — so journaling can stay off the handler
// fast path. The path is empty for journal-less servers (tests that opt
// out); every method is then a no-op.
type jobJournal struct {
	mu   sync.Mutex
	path string
}

// append journals one entry. An error means the acceptance could not be
// made durable and the caller must not act as if it had been.
//
// The append must complete before the 202 response, so the write cannot be
// deferred off-thread; jl.mu is a dedicated leaf lock (never nested under
// Server.mu) whose entire purpose is serializing this file append.
//
//ctcp:coldlock jl.mu is a leaf lock that exists to serialize the journal write itself
func (jl *jobJournal) append(e journalEntry) error {
	if jl.path == "" {
		return nil
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := snap.AppendFileLine(jl.path, buf); err != nil {
		return fmt.Errorf("serve: journaling %s %s: %w", e.Op, e.FP, err)
	}
	return nil
}

// load reads the journal and folds it into the set of outstanding accepts,
// in original acceptance order: an accept enters the set, a settle (or a
// later re-accept of the same fingerprint) supersedes the entry before it.
// A torn trailing line — the only damage the append discipline can leave —
// is dropped by the reader.
func (jl *jobJournal) load() ([]journalEntry, error) {
	if jl.path == "" {
		return nil, nil
	}
	lines, err := snap.ReadFileLines(jl.path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading queue journal: %w", err)
	}
	var live []journalEntry
	index := make(map[string]int) // fp -> position in live, -1 = settled/removed
	for _, line := range lines {
		var e journalEntry
		if json.Unmarshal(line, &e) != nil || e.FP == "" {
			continue // unknown schema: skip, never wedge the restart
		}
		if i, ok := index[e.FP]; ok && i >= 0 {
			live[i].Op = "" // superseded
		}
		switch e.Op {
		case journalAccept:
			if e.Request == nil {
				continue
			}
			index[e.FP] = len(live)
			live = append(live, e)
		case journalSettle:
			index[e.FP] = -1
		}
	}
	out := live[:0]
	for _, e := range live {
		if e.Op == journalAccept {
			out = append(out, e)
		}
	}
	return out, nil
}

// compact atomically rewrites the journal to exactly the given outstanding
// accepts. Restart calls it after replay so the journal never grows without
// bound: settled history is dropped, and what remains is precisely the work
// the new process owes. The rewrite serializes against concurrent appends on
// the same leaf lock; nothing else is ever held across it.
//
//ctcp:coldlock jl.mu is a leaf lock that exists to serialize the journal rewrite itself
func (jl *jobJournal) compact(entries []journalEntry) error {
	if jl.path == "" {
		return nil
	}
	payloads := make([][]byte, 0, len(entries))
	for _, e := range entries {
		buf, err := json.Marshal(e)
		if err != nil {
			return err
		}
		payloads = append(payloads, buf)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := snap.WriteFileBytes(jl.path, snap.EncodeJournal(payloads)); err != nil {
		return fmt.Errorf("serve: compacting queue journal: %w", err)
	}
	return nil
}
