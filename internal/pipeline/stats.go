package pipeline

import (
	"ctcp/internal/bpred"
	"ctcp/internal/core"
	"ctcp/internal/trace"
)

// Stats aggregates everything the paper's tables and figures report.
type Stats struct {
	Cycles  int64
	Retired uint64

	// Fetch-source accounting (Table 1).
	RetiredFromTC  uint64
	TCGroups       uint64 // trace lines delivered by the trace cache
	TCGroupInsts   uint64
	ICGroups       uint64
	ICGroupInsts   uint64
	ICacheMisses   uint64
	FetchRedirects uint64 // cycles groups were cut short by a mispredict

	// Critical-input analysis over instructions with at least one register
	// input (Figure 4, Table 2).
	WithInputs     uint64
	CritFromRF     uint64
	CritFromRS1    uint64
	CritFromRS2    uint64
	CritForwarded  uint64 // critical input arrived by forwarding
	CritInterTrace uint64 // ...from a different fetch group

	// Forwarding geometry for critical inputs (Table 8).
	CritIntraCluster uint64 // distance 0
	CritDistSum      uint64 // total hops over forwarded critical inputs

	// All forwarded register inputs (supporting data).
	FwdInputs       uint64
	FwdIntraCluster uint64
	FwdDistSum      uint64

	// Producer repeatability (Table 3).
	RS1Seen, RS1Repeat                uint64
	RS2Seen, RS2Repeat                uint64
	CritRS1InterSeen, CritRS1InterRep uint64
	CritRS2InterSeen, CritRS2InterRep uint64

	// Control flow.
	CondBranches uint64
	Mispredicts  uint64
	IndirectMiss uint64
	BTBBubbles   uint64

	// Memory behaviour.
	Loads, Stores   uint64
	StoreForwards   uint64 // loads satisfied from the store buffer
	SBFullStalls    uint64
	LoadQFullStalls uint64
	ROBFullStalls   uint64

	// Substructures.
	BP   bpred.Stats
	TC   trace.Stats
	Fill core.FillStats

	// PipeTrace holds per-cycle occupancy snapshots when Config.TraceCycles
	// is set.
	PipeTrace []string
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// PctFromTC returns the fraction of retired instructions fetched from the
// trace cache (Table 1 "% TC Instr").
func (s Stats) PctFromTC() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.RetiredFromTC) / float64(s.Retired)
}

// AvgTraceSize returns the mean instructions per fetched trace line
// (Table 1 "Trace Size").
func (s Stats) AvgTraceSize() float64 {
	if s.TCGroups == 0 {
		return 0
	}
	return float64(s.TCGroupInsts) / float64(s.TCGroups)
}

// CritFwdFrac returns the fraction of instructions-with-inputs whose
// critical input arrived via data forwarding (Table 2, first column).
func (s Stats) CritFwdFrac() float64 {
	if s.WithInputs == 0 {
		return 0
	}
	return float64(s.CritForwarded) / float64(s.WithInputs)
}

// CritInterTraceFrac returns the fraction of forwarded critical inputs whose
// producer was in a different trace (Table 2, second column).
func (s Stats) CritInterTraceFrac() float64 {
	if s.CritForwarded == 0 {
		return 0
	}
	return float64(s.CritInterTrace) / float64(s.CritForwarded)
}

// IntraClusterFrac returns the fraction of forwarded critical inputs
// satisfied within one cluster (Table 8a).
func (s Stats) IntraClusterFrac() float64 {
	if s.CritForwarded == 0 {
		return 0
	}
	return float64(s.CritIntraCluster) / float64(s.CritForwarded)
}

// AvgFwdDistance returns the mean inter-cluster distance of forwarded
// critical inputs (Table 8b).
func (s Stats) AvgFwdDistance() float64 {
	if s.CritForwarded == 0 {
		return 0
	}
	return float64(s.CritDistSum) / float64(s.CritForwarded)
}

// MispredictRate returns mispredicted conditional branches per retired
// conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RepeatRateRS1 returns the producer repeat rate for RS1 inputs (Table 3).
func (s Stats) RepeatRateRS1() float64 { return ratio(s.RS1Repeat, s.RS1Seen) }

// RepeatRateRS2 returns the producer repeat rate for RS2 inputs.
func (s Stats) RepeatRateRS2() float64 { return ratio(s.RS2Repeat, s.RS2Seen) }

// RepeatRateCritRS1Inter returns the repeat rate for critical inter-trace
// RS1 inputs.
func (s Stats) RepeatRateCritRS1Inter() float64 {
	return ratio(s.CritRS1InterRep, s.CritRS1InterSeen)
}

// RepeatRateCritRS2Inter returns the repeat rate for critical inter-trace
// RS2 inputs.
func (s Stats) RepeatRateCritRS2Inter() float64 {
	return ratio(s.CritRS2InterRep, s.CritRS2InterSeen)
}
