// Fixture for the maporder analyzer: loaded by lint_test.go under a scoped
// import path. Marked lines must diagnose; every other line must stay silent.
package fixture

import "sort"

func iterate(m map[string]int, s []int, a [4]int) int {
	total := 0
	for k, v := range m { // want:maporder
		_ = k
		total += v
	}
	for i := range s { // slices are ordered: no diagnostic
		total += s[i]
	}
	for _, v := range a { // arrays are ordered: no diagnostic
		total += v
	}
	return total
}

func sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressedAbove(m map[string]int) int {
	n := 0
	//ctcp:lint-ok maporder -- order-insensitive sum
	for _, v := range m {
		n += v
	}
	return n
}

type wrapper map[int]bool

func named(w wrapper) int {
	n := 0
	for range w { // want:maporder
		n++
	}
	return n
}
