package prog

import (
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
)

func TestBuildAndRunLoop(t *testing.T) {
	b := New()
	arr := b.Quads("arr", 3, 1, 4, 1, 5, 9, 2, 6)
	b.MoviAddr(isa.R(1), "arr")
	if arr != b.DataAddr("arr") {
		t.Fatal("Quads address != DataAddr")
	}
	b.Movi(isa.R(2), 8) // count
	b.Movi(isa.R(3), 0) // sum
	b.Label("loop")
	b.Load(isa.LDQ, isa.R(4), isa.R(1), 0)
	b.Op3(isa.ADD, isa.R(3), isa.R(4), isa.R(3))
	b.OpI(isa.ADD, isa.R(1), 8, isa.R(1))
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Out(isa.R(3))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.R(3)] != 31 {
		t.Errorf("sum = %d, want 31", m.Regs[isa.R(3)])
	}
	if len(m.OutValues) != 1 || m.OutValues[0] != 31 {
		t.Errorf("OutValues = %v", m.OutValues)
	}
}

func TestCallAndRet(t *testing.T) {
	b := New()
	b.Br("main")
	b.Label("double")
	b.Op3(isa.ADD, isa.R(1), isa.R(1), isa.R(1))
	b.Ret()
	b.Label("main")
	b.Movi(isa.R(1), 21)
	b.Call("double", isa.R(9))
	b.Halt()
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry %#x != main %#x", p.Entry, p.Symbols["main"])
	}
	m := emu.New(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.R(1)] != 42 {
		t.Errorf("r1 = %d, want 42", m.Regs[isa.R(1)])
	}
}

func TestUndefinedLabelError(t *testing.T) {
	b := New()
	b.Br("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build succeeded with undefined label")
	}
}

func TestDuplicateLabelError(t *testing.T) {
	b := New()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build succeeded with duplicate label")
	}
}

func TestDuplicateDataSymbolError(t *testing.T) {
	b := New()
	b.Quads("d", 1)
	b.Quads("d", 2)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build succeeded with duplicate data symbol")
	}
}

func TestDataAlignment(t *testing.T) {
	b := New()
	b.Bytes("a", []byte{1, 2, 3}) // 3 bytes, next object must realign
	q := b.Quads("q", 0xDEAD)
	if q%8 != 0 {
		t.Errorf("quad data at unaligned address %#x", q)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if got := m.Mem.Read(q, 8); got != 0xDEAD {
		t.Errorf("quad read = %#x", got)
	}
}

func TestAutoLabelUnique(t *testing.T) {
	b := New()
	l1, l2 := b.AutoLabel("L"), b.AutoLabel("L")
	if l1 == l2 {
		t.Errorf("AutoLabel returned duplicate %q", l1)
	}
}

func TestMovAndUnary(t *testing.T) {
	b := New()
	b.Movi(isa.R(1), -5)
	b.Mov(isa.R(2), isa.R(1))
	b.OpI(isa.AND, isa.R(2), 0xFF, isa.R(3))
	b.Unary(isa.SEXTB, isa.R(3), isa.R(4))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if int64(m.Regs[isa.R(2)]) != -5 || int64(m.Regs[isa.R(4)]) != -5 {
		t.Errorf("mov/sextb: r2=%d r4=%d", int64(m.Regs[isa.R(2)]), int64(m.Regs[isa.R(4)]))
	}
}

func TestLabelAddr(t *testing.T) {
	b := New()
	b.Nop()
	b.Label("here")
	b.Halt()
	if got := b.LabelAddr("here"); got != isa.DefaultTextBase+4 {
		t.Errorf("LabelAddr = %#x", got)
	}
}
