// Package workload provides the benchmark suite: synthetic analogs of the
// 12 SPEC CPU2000 integer benchmarks and 14 MediaBench programs the paper
// evaluates. Each analog is composed from a library of algorithmic kernels
// (this file) that reproduce the dominant dependency structure, branch
// behaviour, memory footprint and functional-unit mix of the original —
// see DESIGN.md substitution #1.
//
// Kernel register conventions: r1 is the benchmark outer-loop counter, r6
// the running checksum; kernels may clobber r8–r28 and f1–f20 freely. Each
// kernel emits a self-contained inner loop with unique labels and folds its
// result into r6.
package workload

import (
	"ctcp/internal/isa"
	"ctcp/internal/prog"
)

// lcgStep emits one pseudo-random step on the state register st, leaving
// masked random bits in out: out = (st >> 16) & mask.
func lcgStep(b *prog.Builder, st, out isa.Reg, mask int64) {
	b.OpI(isa.MUL, st, 1103515245, st)
	b.OpI(isa.ADD, st, 12345, st)
	b.OpI(isa.SRL, st, 16, out)
	b.OpI(isa.AND, out, mask, out)
}

// emitFNV hashes ways independent regions of count elements each (stride
// bytes apart) with FNV-1a. The ways chains are emitted interleaved, as a
// scheduling compiler would, so dependent operations sit ways instructions
// apart (gzip/perlbmk string hashing, vortex object hashing).
func emitFNV(b *prog.Builder, sym string, count, stride int64, ways int) {
	if ways < 1 || ways > 4 {
		panic("emitFNV: ways must be 1..4")
	}
	loop := b.AutoLabel("fnv")
	ptr := func(w int) isa.Reg { return isa.R(8 + w) }
	hash := func(w int) isa.Reg { return isa.R(12 + w) }
	tmp := func(w int) isa.Reg { return isa.R(16 + w) }
	for w := 0; w < ways; w++ {
		b.MoviAddr(ptr(w), sym)
		if w > 0 {
			b.OpI(isa.ADD, ptr(w), int64(w)*count*stride, ptr(w))
		}
		b.Movi(hash(w), 0x811C9DC5+int64(w))
	}
	b.Movi(isa.R(28), count)
	b.Label(loop)
	for w := 0; w < ways; w++ {
		b.Load(isa.LDBU, tmp(w), ptr(w), 0)
	}
	for w := 0; w < ways; w++ {
		b.Op3(isa.XOR, hash(w), tmp(w), hash(w))
	}
	for w := 0; w < ways; w++ {
		b.OpI(isa.MUL, hash(w), 16777619, hash(w))
	}
	for w := 0; w < ways; w++ {
		b.OpI(isa.ADD, ptr(w), stride, ptr(w))
	}
	b.OpI(isa.SUB, isa.R(28), 1, isa.R(28))
	b.Branch(isa.BNE, isa.R(28), loop)
	for w := 0; w < ways; w++ {
		b.Op3(isa.ADD, isa.R(6), hash(w), isa.R(6))
	}
}

// emitSum adds n quads from sym with four parallel accumulators: high-ILP
// streaming reduction (array sweeps everywhere).
func emitSum(b *prog.Builder, sym string, n int64) {
	loop := b.AutoLabel("sum")
	// Four row pointers over four quarters of the array: the four load
	// streams have independent induction variables, as a vectorizing
	// compiler would emit them.
	quarter := (n / 4) * 8
	ptr := []isa.Reg{isa.R(8), isa.R(21), isa.R(22), isa.R(23)}
	b.MoviAddr(ptr[0], sym)
	for k := 1; k < 4; k++ {
		b.OpI(isa.ADD, ptr[0], int64(k)*quarter, ptr[k])
	}
	b.Movi(isa.R(9), n/4)
	for r := 10; r <= 13; r++ {
		b.Movi(isa.R(r), 0)
	}
	b.Label(loop)
	for k := 0; k < 4; k++ {
		b.Load(isa.LDQ, isa.R(14+k), ptr[k], 0)
	}
	for k := 0; k < 4; k++ {
		b.Op3(isa.ADD, isa.R(10+k), isa.R(14+k), isa.R(10+k))
	}
	for k := 0; k < 4; k++ {
		b.OpI(isa.ADD, ptr[k], 8, ptr[k])
	}
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
	b.Op3(isa.ADD, isa.R(10), isa.R(11), isa.R(10))
	b.Op3(isa.ADD, isa.R(12), isa.R(13), isa.R(12))
	b.Op3(isa.ADD, isa.R(10), isa.R(12), isa.R(10))
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
}

// emitPointerChase walks steps nodes down two interleaved cursors of a
// linked list (head pointers at sym and sym2): serial dependent loads with
// two-way memory-level parallelism, as in mcf's arc scans.
func emitPointerChase(b *prog.Builder, sym, sym2 string, steps int64) {
	loop := b.AutoLabel("chase")
	b.MoviAddr(isa.R(8), sym)
	b.Load(isa.LDQ, isa.R(8), isa.R(8), 0)
	b.MoviAddr(isa.R(9), sym2)
	b.Load(isa.LDQ, isa.R(9), isa.R(9), 0)
	b.Movi(isa.R(15), steps)
	b.Label(loop)
	b.Load(isa.LDQ, isa.R(10), isa.R(8), 8)
	b.Load(isa.LDQ, isa.R(11), isa.R(9), 8)
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(11), isa.R(6))
	b.Load(isa.LDQ, isa.R(8), isa.R(8), 0)
	b.Load(isa.LDQ, isa.R(9), isa.R(9), 0)
	b.OpI(isa.SUB, isa.R(15), 1, isa.R(15))
	b.Branch(isa.BNE, isa.R(15), loop)
}

// emitLZMatch performs iters hash-chain style match attempts in a window at
// sym (power-of-two half-size mask): inner byte-compare loop with a
// data-dependent exit (gzip/bzip2 match search).
func emitLZMatch(b *prog.Builder, sym string, iters, mask, lag, maxRun int64) {
	outer := b.AutoLabel("lzo")
	inner := b.AutoLabel("lzi")
	done := b.AutoLabel("lzd")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), iters)
	b.Label(outer)
	lcgStep(b, isa.R(20), isa.R(21), mask)
	b.Op3(isa.ADD, isa.R(8), isa.R(21), isa.R(10)) // p
	b.OpI(isa.ADD, isa.R(10), lag, isa.R(11))      // q
	b.Movi(isa.R(12), maxRun)
	b.Label(inner)
	b.Load(isa.LDBU, isa.R(13), isa.R(10), 0)
	b.Load(isa.LDBU, isa.R(14), isa.R(11), 0)
	b.Op3(isa.SUB, isa.R(13), isa.R(14), isa.R(15))
	b.Branch(isa.BNE, isa.R(15), done)
	b.OpI(isa.ADD, isa.R(10), 1, isa.R(10))
	b.OpI(isa.ADD, isa.R(11), 1, isa.R(11))
	b.OpI(isa.SUB, isa.R(12), 1, isa.R(12))
	b.Branch(isa.BNE, isa.R(12), inner)
	b.Label(done)
	b.Op3(isa.ADD, isa.R(6), isa.R(12), isa.R(6))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}

// emitBitMangle runs ways interleaved branch-free LFSR chains: the low bit
// selects a polynomial xor through a mask, the standard bitboard/CRC idiom
// (crafty, pegwit stream mixing).
func emitBitMangle(b *prog.Builder, iters int64, ways int) {
	if ways < 1 || ways > 3 {
		panic("emitBitMangle: ways must be 1..3")
	}
	loop := b.AutoLabel("bit")
	st := func(w int) isa.Reg { return isa.R(10 + w) }
	msk := func(w int) isa.Reg { return isa.R(14 + w) }
	for w := 0; w < ways; w++ {
		b.OpI(isa.OR, isa.R(6), 0x5A5A+int64(w*77), st(w))
	}
	b.Movi(isa.R(9), iters)
	b.Label(loop)
	for w := 0; w < ways; w++ {
		b.OpI(isa.AND, st(w), 1, msk(w))
	}
	for w := 0; w < ways; w++ {
		b.Op3(isa.SUB, isa.ZeroReg, msk(w), msk(w)) // 0 or all-ones
	}
	for w := 0; w < ways; w++ {
		b.OpI(isa.SRL, st(w), 1, st(w))
	}
	for w := 0; w < ways; w++ {
		b.OpI(isa.AND, msk(w), 0x6DB88320, msk(w))
	}
	for w := 0; w < ways; w++ {
		b.Op3(isa.XOR, st(w), msk(w), st(w))
	}
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
	for w := 0; w < ways; w++ {
		b.Op3(isa.ADD, isa.R(6), st(w), isa.R(6))
	}
}

// emitPopcount counts set bits of n words at sym with the shift-and-test
// loop crafty uses on bitboards: nested loop, data-dependent trip counts.
func emitPopcount(b *prog.Builder, sym string, n int64) {
	outer := b.AutoLabel("pco")
	inner := b.AutoLabel("pci")
	skip := b.AutoLabel("pcs")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), n)
	b.Label(outer)
	b.Load(isa.LDQ, isa.R(10), isa.R(8), 0)
	b.Movi(isa.R(12), 8) // sample 8 bits per word
	b.Label(inner)
	b.OpI(isa.AND, isa.R(10), 1, isa.R(11))
	b.Branch(isa.BEQ, isa.R(11), skip)
	b.OpI(isa.ADD, isa.R(6), 1, isa.R(6))
	b.Label(skip)
	b.OpI(isa.SRL, isa.R(10), 7, isa.R(10))
	b.OpI(isa.SUB, isa.R(12), 1, isa.R(12))
	b.Branch(isa.BNE, isa.R(12), inner)
	b.OpI(isa.ADD, isa.R(8), 8, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}

// emitDispatch interprets count bytecodes from sym through a computed jump
// into a table of 8 uniformly-sized handlers: indirect-branch dispatch
// (perlbmk/gcc interpreter and switch dispatch).
func emitDispatch(b *prog.Builder, sym string, count int64) {
	handlers := b.AutoLabel("handlers")
	start := b.AutoLabel("dstart")
	loop := b.AutoLabel("dloop")
	next := b.AutoLabel("dnext")
	b.Br(start)
	b.Label(handlers)
	// Eight handlers, each exactly 4 instructions (16 bytes); two virtual
	// registers (r10, r24) give each handler two independent chains.
	for h := 0; h < 8; h++ {
		switch h % 4 {
		case 0:
			b.OpI(isa.ADD, isa.R(10), int64(h+1), isa.R(10))
			b.OpI(isa.XOR, isa.R(24), 0x3F, isa.R(24))
		case 1:
			b.OpI(isa.SLL, isa.R(10), 1, isa.R(10))
			b.OpI(isa.ADD, isa.R(24), 7, isa.R(24))
		case 2:
			b.OpI(isa.SRL, isa.R(10), 1, isa.R(10))
			b.OpI(isa.XOR, isa.R(24), int64(h*37), isa.R(24))
		case 3:
			b.OpI(isa.SUB, isa.R(10), int64(h), isa.R(10))
			b.OpI(isa.AND, isa.R(24), 0xFFFFFF, isa.R(24))
		}
		b.Br(next)
		b.Nop()
	}
	b.Label(start)
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), count)
	b.Movi(isa.R(13), int64(b.LabelAddr(handlers)))
	b.Label(loop)
	b.Load(isa.LDBU, isa.R(11), isa.R(8), 0)
	b.OpI(isa.AND, isa.R(11), 7, isa.R(11))
	b.OpI(isa.SLL, isa.R(11), 4, isa.R(12))
	b.Op3(isa.ADD, isa.R(13), isa.R(12), isa.R(14))
	b.Jmp(isa.R(14))
	b.Label(next)
	b.OpI(isa.ADD, isa.R(8), 1, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(24), isa.R(6))
}

// emitCallLeaf performs iters call/return pairs to a small leaf routine:
// exercises JSR/RET and the return address stack (call-heavy codes).
func emitCallLeaf(b *prog.Builder, iters int64) {
	leaf := b.AutoLabel("leaf")
	start := b.AutoLabel("clstart")
	loop := b.AutoLabel("clloop")
	b.Br(start)
	b.Label(leaf)
	b.OpI(isa.ADD, isa.R(10), 3, isa.R(10))
	b.OpI(isa.XOR, isa.R(10), 0x55, isa.R(10))
	b.Ret()
	b.Label(start)
	b.Movi(isa.R(9), iters)
	b.Movi(isa.R(15), int64(b.LabelAddr(leaf)))
	b.Label(loop)
	b.Jsr(isa.RA, isa.R(15))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
}

// emitAnneal performs iters simulated-annealing style swap evaluations on a
// table of n quads at sym: random indexing, a data-dependent accept branch,
// and conditional stores (twolf/vpr placement).
func emitAnneal(b *prog.Builder, sym string, iters, mask int64) {
	loop := b.AutoLabel("ann")
	rej := b.AutoLabel("annrej")
	rej2 := b.AutoLabel("annrej2")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), iters/2)
	b.Movi(isa.R(19), 0x2B5D1) // second rng stream
	b.Label(loop)
	// Two independent swap evaluations per iteration, interleaved as a
	// scheduling compiler would emit them.
	lcgStep(b, isa.R(20), isa.R(21), mask)
	lcgStep(b, isa.R(19), isa.R(25), mask)
	lcgStep(b, isa.R(20), isa.R(22), mask)
	lcgStep(b, isa.R(19), isa.R(26), mask)
	b.OpI(isa.SLL, isa.R(21), 3, isa.R(21))
	b.OpI(isa.SLL, isa.R(25), 3, isa.R(25))
	b.OpI(isa.SLL, isa.R(22), 3, isa.R(22))
	b.OpI(isa.SLL, isa.R(26), 3, isa.R(26))
	b.Op3(isa.ADD, isa.R(8), isa.R(21), isa.R(23))
	b.Op3(isa.ADD, isa.R(8), isa.R(25), isa.R(27))
	b.Op3(isa.ADD, isa.R(8), isa.R(22), isa.R(24))
	b.Op3(isa.ADD, isa.R(8), isa.R(26), isa.R(28))
	b.Load(isa.LDQ, isa.R(10), isa.R(23), 0)
	b.Load(isa.LDQ, isa.R(13), isa.R(27), 0)
	b.Load(isa.LDQ, isa.R(11), isa.R(24), 0)
	b.Load(isa.LDQ, isa.R(14), isa.R(28), 0)
	b.Op3(isa.SUB, isa.R(10), isa.R(11), isa.R(12)) // delta0
	b.Op3(isa.SUB, isa.R(13), isa.R(14), isa.R(15)) // delta1
	b.Op3(isa.ADD, isa.R(6), isa.R(12), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(15), isa.R(6))
	b.Branch(isa.BLE, isa.R(12), rej)
	b.Store(isa.STQ, isa.R(11), isa.R(23), 0) // accept: swap pair 0
	b.Store(isa.STQ, isa.R(10), isa.R(24), 0)
	b.Label(rej)
	b.Branch(isa.BLE, isa.R(15), rej2)
	b.Store(isa.STQ, isa.R(14), isa.R(27), 0) // accept: swap pair 1
	b.Store(isa.STQ, isa.R(13), isa.R(28), 0)
	b.Label(rej2)
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitSAD accumulates a branchless sum of absolute byte differences between
// two blocks (mpeg2 motion estimation): wide ILP, byte loads.
func emitSAD(b *prog.Builder, symA, symB string, n int64) {
	loop := b.AutoLabel("sad")
	// Two row pointers per block (top and bottom halves) so the four load
	// streams have independent induction chains.
	half := n / 2
	b.MoviAddr(isa.R(8), symA)
	b.OpI(isa.ADD, isa.R(8), half, isa.R(28))
	b.MoviAddr(isa.R(9), symB)
	b.OpI(isa.ADD, isa.R(9), half, isa.R(27))
	b.Movi(isa.R(15), n/4)
	b.Label(loop)
	b.Load(isa.LDBU, isa.R(10), isa.R(8), 0)
	b.Load(isa.LDBU, isa.R(11), isa.R(28), 0)
	b.Load(isa.LDBU, isa.R(12), isa.R(8), 1)
	b.Load(isa.LDBU, isa.R(13), isa.R(28), 1)
	b.Load(isa.LDBU, isa.R(16), isa.R(9), 0)
	b.Load(isa.LDBU, isa.R(17), isa.R(27), 0)
	b.Load(isa.LDBU, isa.R(18), isa.R(9), 1)
	b.Load(isa.LDBU, isa.R(19), isa.R(27), 1)
	for k := 0; k < 4; k++ {
		b.Op3(isa.SUB, isa.R(10+k), isa.R(16+k), isa.R(20+k))
	}
	for k := 0; k < 4; k++ {
		b.OpI(isa.SRA, isa.R(20+k), 63, isa.R(24+k))
	}
	for k := 0; k < 4; k++ {
		b.Op3(isa.XOR, isa.R(20+k), isa.R(24+k), isa.R(20+k))
	}
	for k := 0; k < 4; k++ {
		b.Op3(isa.SUB, isa.R(20+k), isa.R(24+k), isa.R(20+k))
	}
	for k := 0; k < 4; k++ {
		b.Op3(isa.ADD, isa.R(6), isa.R(20+k), isa.R(6))
	}
	b.OpI(isa.ADD, isa.R(8), 2, isa.R(8))
	b.OpI(isa.ADD, isa.R(28), 2, isa.R(28))
	b.OpI(isa.ADD, isa.R(9), 2, isa.R(9))
	b.OpI(isa.ADD, isa.R(27), 2, isa.R(27))
	b.OpI(isa.SUB, isa.R(15), 1, isa.R(15))
	b.Branch(isa.BNE, isa.R(15), loop)
}

// emitFIR computes outs outputs of a taps-tap FP filter over doubles at
// dataSym with coefficients at coefSym: a serial FP accumulation chain per
// output (gsm/g721 prediction filters, eon shading sums).
func emitFIR(b *prog.Builder, dataSym, coefSym, outSym string, outs, taps int64) {
	outer := b.AutoLabel("firo")
	inner := b.AutoLabel("firi")
	b.MoviAddr(isa.R(8), dataSym)
	b.MoviAddr(isa.R(15), outSym)
	b.Movi(isa.R(9), outs/2)
	b.Label(outer)
	// Two output points computed together with interleaved accumulators,
	// the way a scheduling compiler pipelines this loop.
	b.MoviAddr(isa.R(10), coefSym)
	b.Mov(isa.R(11), isa.R(8))
	b.OpI(isa.ADD, isa.R(8), 8, isa.R(16)) // second point's data cursor
	b.Movi(isa.R(12), taps)
	b.Movi(isa.R(13), 0)
	b.Unary(isa.CVTQT, isa.R(13), isa.F(1)) // acc0 = 0.0
	b.Unary(isa.CVTQT, isa.R(13), isa.F(8)) // acc1 = 0.0
	b.Label(inner)
	b.Load(isa.LDT, isa.F(2), isa.R(11), 0)
	b.Load(isa.LDT, isa.F(9), isa.R(16), 0)
	b.Load(isa.LDT, isa.F(3), isa.R(10), 0)
	b.Op3(isa.MULT, isa.F(2), isa.F(3), isa.F(4))
	b.Op3(isa.MULT, isa.F(9), isa.F(3), isa.F(10))
	b.Op3(isa.ADDT, isa.F(1), isa.F(4), isa.F(1))
	b.Op3(isa.ADDT, isa.F(8), isa.F(10), isa.F(8))
	b.OpI(isa.ADD, isa.R(11), 8, isa.R(11))
	b.OpI(isa.ADD, isa.R(16), 8, isa.R(16))
	b.OpI(isa.ADD, isa.R(10), 8, isa.R(10))
	b.OpI(isa.SUB, isa.R(12), 1, isa.R(12))
	b.Branch(isa.BNE, isa.R(12), inner)
	b.Unary(isa.CVTTQ, isa.F(1), isa.R(14))
	b.Op3(isa.ADD, isa.R(6), isa.R(14), isa.R(6))
	b.Unary(isa.CVTTQ, isa.F(8), isa.R(17))
	b.Op3(isa.ADD, isa.R(6), isa.R(17), isa.R(6))
	b.Store(isa.STT, isa.F(1), isa.R(15), 0)
	b.Store(isa.STT, isa.F(8), isa.R(15), 8)
	b.OpI(isa.ADD, isa.R(15), 16, isa.R(15))
	b.OpI(isa.ADD, isa.R(8), 16, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}

// emitDCT8 runs reps passes of an 8-point butterfly transform on doubles at
// sym: parallel FP adds/multiplies with a store-back (jpeg/mpeg DCT).
func emitDCT8(b *prog.Builder, sym string, reps int64) {
	loop := b.AutoLabel("dct")
	b.Movi(isa.R(9), reps)
	b.Label(loop)
	b.MoviAddr(isa.R(8), sym)
	for k := 0; k < 8; k++ {
		b.Load(isa.LDT, isa.F(1+k), isa.R(8), int64(8*k))
	}
	// Stage 1: butterflies.
	for k := 0; k < 4; k++ {
		b.Op3(isa.ADDT, isa.F(1+k), isa.F(8-k), isa.F(9+k))
		b.Op3(isa.SUBT, isa.F(1+k), isa.F(8-k), isa.F(13+k))
	}
	// Stage 2: rotations (multiplies by a constant loaded once).
	b.Load(isa.LDT, isa.F(17), isa.R(8), 64) // cos constant stored after block
	for k := 0; k < 4; k++ {
		b.Op3(isa.MULT, isa.F(13+k), isa.F(17), isa.F(13+k))
	}
	for k := 0; k < 4; k++ {
		b.Op3(isa.ADDT, isa.F(9+k), isa.F(13+k), isa.F(9+k))
	}
	for k := 0; k < 8; k++ {
		b.Store(isa.STT, isa.F(9+k%4), isa.R(8), int64(8*k))
	}
	b.Unary(isa.CVTTQ, isa.F(9), isa.R(10))
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitWavelet applies one integer lifting pass over n quads at sym:
// out[i] -= (in[i-1]+in[i+1])>>1, neighbour loads with short dependence
// chains (epic wavelet).
func emitWavelet(b *prog.Builder, sym string, n int64) {
	loop := b.AutoLabel("wav")
	half := (n / 2) * 8
	b.MoviAddr(isa.R(8), sym)
	b.OpI(isa.ADD, isa.R(8), half, isa.R(9)) // second half cursor
	b.Movi(isa.R(15), n/2-2)
	b.Label(loop)
	// Two interleaved lifting chains over the two halves of the signal.
	b.Load(isa.LDQ, isa.R(10), isa.R(8), 0)
	b.Load(isa.LDQ, isa.R(16), isa.R(9), 0)
	b.Load(isa.LDQ, isa.R(11), isa.R(8), 16)
	b.Load(isa.LDQ, isa.R(17), isa.R(9), 16)
	b.Load(isa.LDQ, isa.R(12), isa.R(8), 8)
	b.Load(isa.LDQ, isa.R(18), isa.R(9), 8)
	b.Op3(isa.ADD, isa.R(10), isa.R(11), isa.R(13))
	b.Op3(isa.ADD, isa.R(16), isa.R(17), isa.R(19))
	b.OpI(isa.SRA, isa.R(13), 1, isa.R(13))
	b.OpI(isa.SRA, isa.R(19), 1, isa.R(19))
	b.Op3(isa.SUB, isa.R(12), isa.R(13), isa.R(12))
	b.Op3(isa.SUB, isa.R(18), isa.R(19), isa.R(18))
	b.Store(isa.STQ, isa.R(12), isa.R(8), 8)
	b.Store(isa.STQ, isa.R(18), isa.R(9), 8)
	b.Op3(isa.ADD, isa.R(6), isa.R(12), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(18), isa.R(6))
	b.OpI(isa.ADD, isa.R(8), 8, isa.R(8))
	b.OpI(isa.ADD, isa.R(9), 8, isa.R(9))
	b.OpI(isa.SUB, isa.R(15), 1, isa.R(15))
	b.Branch(isa.BNE, isa.R(15), loop)
}

// emitMTF runs a move-to-front transform of count input bytes against a
// 64-entry table at tableSym: data-dependent scan length plus a prefix
// shift loop with stores (bzip2's MTF stage).
func emitMTF(b *prog.Builder, tableSym, inputSym string, count int64) {
	outer := b.AutoLabel("mtfo")
	scan := b.AutoLabel("mtfscan")
	found := b.AutoLabel("mtff")
	shift := b.AutoLabel("mtfs")
	noshift := b.AutoLabel("mtfn")
	b.MoviAddr(isa.R(8), inputSym)
	b.Movi(isa.R(9), count)
	b.Label(outer)
	b.Load(isa.LDBU, isa.R(10), isa.R(8), 0) // value (0..63)
	b.MoviAddr(isa.R(11), tableSym)
	b.Movi(isa.R(12), 0) // index
	b.Label(scan)
	b.Load(isa.LDBU, isa.R(13), isa.R(11), 0)
	b.Op3(isa.SUB, isa.R(13), isa.R(10), isa.R(14))
	b.Branch(isa.BEQ, isa.R(14), found)
	b.OpI(isa.ADD, isa.R(11), 1, isa.R(11))
	b.OpI(isa.ADD, isa.R(12), 1, isa.R(12))
	b.Br(scan)
	b.Label(found)
	b.Op3(isa.ADD, isa.R(6), isa.R(12), isa.R(6))
	// Shift table[0..idx-1] up by one, then table[0] = value.
	b.Branch(isa.BEQ, isa.R(12), noshift)
	b.Label(shift)
	b.Load(isa.LDBU, isa.R(13), isa.R(11), -1)
	b.Store(isa.STB, isa.R(13), isa.R(11), 0)
	b.OpI(isa.SUB, isa.R(11), 1, isa.R(11))
	b.OpI(isa.SUB, isa.R(12), 1, isa.R(12))
	b.Branch(isa.BNE, isa.R(12), shift)
	b.Label(noshift)
	b.MoviAddr(isa.R(11), tableSym)
	b.Store(isa.STB, isa.R(10), isa.R(11), 0)
	b.OpI(isa.ADD, isa.R(8), 1, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}

// emitRLE scans size bytes at sym counting run boundaries: a compare branch
// that is mostly not taken on runny data (bzip2/gzip run coding).
func emitRLE(b *prog.Builder, sym string, size int64) {
	loop := b.AutoLabel("rle")
	same := b.AutoLabel("rlesame")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), size-1)
	b.Movi(isa.R(12), 0)
	b.Label(loop)
	b.Load(isa.LDBU, isa.R(10), isa.R(8), 0)
	b.Load(isa.LDBU, isa.R(11), isa.R(8), 1)
	b.Op3(isa.SUB, isa.R(10), isa.R(11), isa.R(13))
	b.Branch(isa.BEQ, isa.R(13), same)
	b.OpI(isa.ADD, isa.R(12), 1, isa.R(12))
	b.Label(same)
	b.OpI(isa.ADD, isa.R(8), 1, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
	b.Op3(isa.ADD, isa.R(6), isa.R(12), isa.R(6))
}

// emitTreeSearch performs keys binary searches over n sorted quads at sym:
// dependent loads with hard-to-predict direction branches (gcc symbol
// tables, parser dictionary, vortex indexes).
func emitTreeSearch(b *prog.Builder, sym string, n, keys int64) {
	outer := b.AutoLabel("bso")
	inner := b.AutoLabel("bsi")
	left := b.AutoLabel("bsl")
	stepDone := b.AutoLabel("bsd")
	b.Movi(isa.R(9), keys)
	b.Label(outer)
	lcgStep(b, isa.R(20), isa.R(21), 2*n-1) // random key in ~value range
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(10), 0) // lo
	b.Movi(isa.R(11), n) // hi
	b.Label(inner)
	b.Op3(isa.SUB, isa.R(11), isa.R(10), isa.R(12))
	b.OpI(isa.CMPLE, isa.R(12), 1, isa.R(13))
	b.Branch(isa.BNE, isa.R(13), stepDone)
	b.Op3(isa.ADD, isa.R(10), isa.R(11), isa.R(12))
	b.OpI(isa.SRL, isa.R(12), 1, isa.R(12)) // mid
	b.OpI(isa.SLL, isa.R(12), 3, isa.R(14))
	b.Op3(isa.ADD, isa.R(8), isa.R(14), isa.R(14))
	b.Load(isa.LDQ, isa.R(15), isa.R(14), 0)
	b.Op3(isa.CMPLT, isa.R(21), isa.R(15), isa.R(16))
	b.Branch(isa.BNE, isa.R(16), left)
	b.Mov(isa.R(10), isa.R(12)) // lo = mid
	b.Br(inner)
	b.Label(left)
	b.Mov(isa.R(11), isa.R(12)) // hi = mid
	b.Br(inner)
	b.Label(stepDone)
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}

// emitBignum multiply-accumulates limbs of two little-endian bignums at
// symA/symB into an accumulator with a serial carry chain (gap arithmetic,
// pegwit public-key math): integer multiplier pressure.
func emitBignum(b *prog.Builder, symA, symB string, limbs int64) {
	loop := b.AutoLabel("big")
	b.MoviAddr(isa.R(8), symA)
	b.MoviAddr(isa.R(9), symB)
	b.OpI(isa.ADD, isa.R(8), limbs*8, isa.R(21)) // second half cursors
	b.OpI(isa.ADD, isa.R(9), limbs*8, isa.R(22))
	b.Movi(isa.R(10), limbs)
	b.Movi(isa.R(11), 0) // acc0
	b.Movi(isa.R(12), 0) // carry0
	b.Movi(isa.R(23), 0) // acc1
	b.Movi(isa.R(24), 0) // carry1
	b.Label(loop)
	// Two interleaved multiply-accumulate carry chains.
	b.Load(isa.LDQ, isa.R(13), isa.R(8), 0)
	b.Load(isa.LDQ, isa.R(25), isa.R(21), 0)
	b.Load(isa.LDQ, isa.R(14), isa.R(9), 0)
	b.Load(isa.LDQ, isa.R(26), isa.R(22), 0)
	b.Op3(isa.MUL, isa.R(13), isa.R(14), isa.R(15))
	b.Op3(isa.MUL, isa.R(25), isa.R(26), isa.R(27))
	b.Op3(isa.ADD, isa.R(11), isa.R(15), isa.R(11))
	b.Op3(isa.ADD, isa.R(23), isa.R(27), isa.R(23))
	b.Op3(isa.CMPULT, isa.R(11), isa.R(15), isa.R(16))
	b.Op3(isa.CMPULT, isa.R(23), isa.R(27), isa.R(28))
	b.Op3(isa.ADD, isa.R(12), isa.R(16), isa.R(12))
	b.Op3(isa.ADD, isa.R(24), isa.R(28), isa.R(24))
	b.Store(isa.STQ, isa.R(11), isa.R(8), 0) // result limb writeback
	b.Store(isa.STQ, isa.R(23), isa.R(21), 0)
	b.OpI(isa.ADD, isa.R(8), 8, isa.R(8))
	b.OpI(isa.ADD, isa.R(21), 8, isa.R(21))
	b.OpI(isa.ADD, isa.R(9), 8, isa.R(9))
	b.OpI(isa.ADD, isa.R(22), 8, isa.R(22))
	b.OpI(isa.SUB, isa.R(10), 1, isa.R(10))
	b.Branch(isa.BNE, isa.R(10), loop)
	b.Op3(isa.ADD, isa.R(11), isa.R(12), isa.R(11))
	b.Op3(isa.ADD, isa.R(23), isa.R(24), isa.R(23))
	b.Op3(isa.ADD, isa.R(6), isa.R(11), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(23), isa.R(6))
}

// emitADPCM encodes count 16-bit samples at sym with an IMA-style ADPCM
// step: sign/magnitude branches and a step-size table lookup with
// clamping (adpcm rawcaudio/rawdaudio).
func emitADPCM(b *prog.Builder, sym, stepTab, outSym string, count int64) {
	loop := b.AutoLabel("adp")
	pos := b.AutoLabel("adppos")
	clampLo := b.AutoLabel("adplo")
	clampHi := b.AutoLabel("adphi")
	doneClamp := b.AutoLabel("adpdc")
	b.MoviAddr(isa.R(8), sym)
	b.Mov(isa.R(26), isa.R(8)) // input base (for output offset)
	b.MoviAddr(isa.R(25), outSym)
	b.Movi(isa.R(9), count)
	b.Movi(isa.R(10), 0)  // predicted
	b.Movi(isa.R(11), 40) // step index
	b.Label(loop)
	b.Load(isa.LDW, isa.R(12), isa.R(8), 0)
	b.Unary(isa.SEXTW, isa.R(12), isa.R(12))
	b.Op3(isa.SUB, isa.R(12), isa.R(10), isa.R(13)) // diff (signed)
	b.Branch(isa.BGE, isa.R(13), pos)
	b.OpI(isa.SUB, isa.R(11), 1, isa.R(11)) // step index down
	b.Br(doneClamp)
	b.Label(pos)
	b.OpI(isa.ADD, isa.R(11), 2, isa.R(11)) // step index up
	b.Label(doneClamp)
	b.Branch(isa.BGE, isa.R(11), clampLo)
	b.Movi(isa.R(11), 0)
	b.Label(clampLo)
	b.OpI(isa.CMPLT, isa.R(11), 80, isa.R(14))
	b.Branch(isa.BNE, isa.R(14), clampHi)
	b.Movi(isa.R(11), 79)
	b.Label(clampHi)
	b.MoviAddr(isa.R(15), stepTab)
	b.OpI(isa.SLL, isa.R(11), 3, isa.R(16))
	b.Op3(isa.ADD, isa.R(15), isa.R(16), isa.R(15))
	b.Load(isa.LDQ, isa.R(17), isa.R(15), 0) // step size
	b.OpI(isa.SRA, isa.R(13), 3, isa.R(18))
	b.Op3(isa.MUL, isa.R(18), isa.R(17), isa.R(18))
	b.OpI(isa.SRA, isa.R(18), 8, isa.R(18))
	b.Op3(isa.ADD, isa.R(10), isa.R(18), isa.R(10)) // predicted update
	b.Op3(isa.ADD, isa.R(6), isa.R(10), isa.R(6))
	b.Op3(isa.SUB, isa.R(8), isa.R(26), isa.R(27)) // offset into input
	b.Op3(isa.ADD, isa.R(27), isa.R(25), isa.R(27))
	b.Store(isa.STW, isa.R(10), isa.R(27), 0) // reconstructed output
	b.OpI(isa.ADD, isa.R(8), 2, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitQuantize maps count quads at sym through a 4-region comparison ladder
// (g721 quantizer): short chains of compares and predictable-ish branches.
func emitQuantize(b *prog.Builder, sym string, count int64) {
	loop := b.AutoLabel("qnt")
	r1 := b.AutoLabel("qr1")
	r2 := b.AutoLabel("qr2")
	done := b.AutoLabel("qdn")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), count)
	b.Label(loop)
	b.Load(isa.LDQ, isa.R(10), isa.R(8), 0)
	b.OpI(isa.AND, isa.R(10), 0xFFFF, isa.R(10))
	b.OpI(isa.CMPLT, isa.R(10), 0x2000, isa.R(11))
	b.Branch(isa.BNE, isa.R(11), r1)
	b.OpI(isa.CMPLT, isa.R(10), 0x8000, isa.R(11))
	b.Branch(isa.BNE, isa.R(11), r2)
	b.OpI(isa.ADD, isa.R(6), 3, isa.R(6))
	b.Br(done)
	b.Label(r1)
	b.OpI(isa.ADD, isa.R(6), 1, isa.R(6))
	b.Br(done)
	b.Label(r2)
	b.OpI(isa.ADD, isa.R(6), 2, isa.R(6))
	b.Label(done)
	b.OpI(isa.ADD, isa.R(8), 8, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitMemcpy copies bytes (multiple of 16) from src to dst as quads:
// streaming loads/stores (vortex object copies, mpeg motion compensation).
func emitMemcpy(b *prog.Builder, src, dst string, bytes int64) {
	loop := b.AutoLabel("cpy")
	b.MoviAddr(isa.R(8), src)
	b.MoviAddr(isa.R(9), dst)
	b.Movi(isa.R(10), bytes/16)
	b.Label(loop)
	b.Load(isa.LDQ, isa.R(11), isa.R(8), 0)
	b.Load(isa.LDQ, isa.R(12), isa.R(8), 8)
	b.Store(isa.STQ, isa.R(11), isa.R(9), 0)
	b.Store(isa.STQ, isa.R(12), isa.R(9), 8)
	b.OpI(isa.ADD, isa.R(8), 16, isa.R(8))
	b.OpI(isa.ADD, isa.R(9), 16, isa.R(9))
	b.OpI(isa.SUB, isa.R(10), 1, isa.R(10))
	b.Branch(isa.BNE, isa.R(10), loop)
	b.Op3(isa.ADD, isa.R(6), isa.R(11), isa.R(6))
}

// emitTokenize scans size bytes at sym counting word boundaries (parser's
// lexer): byte loads with a mostly-not-taken delimiter branch.
func emitTokenize(b *prog.Builder, sym string, size int64) {
	loop := b.AutoLabel("tok")
	notdelim := b.AutoLabel("tokn")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), size)
	b.Label(loop)
	b.Load(isa.LDBU, isa.R(10), isa.R(8), 0)
	b.OpI(isa.SUB, isa.R(10), ' ', isa.R(11))
	b.Branch(isa.BNE, isa.R(11), notdelim)
	b.OpI(isa.ADD, isa.R(6), 1, isa.R(6))
	b.Label(notdelim)
	b.OpI(isa.ADD, isa.R(8), 1, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitRaySphere computes reps ray–sphere intersection discriminants with a
// square root and hit test (eon's kernel): FP mul/add chains, SQRT latency,
// data-dependent hit branch.
func emitRaySphere(b *prog.Builder, sym string, reps, mask int64) {
	loop := b.AutoLabel("ray")
	miss := b.AutoLabel("raymiss")
	miss2 := b.AutoLabel("raymiss2")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), reps/2)
	b.Movi(isa.R(19), 0x77A11) // second rng stream
	b.Label(loop)
	// Two rays tested per iteration (packet tracing): interleaved FP chains.
	lcgStep(b, isa.R(20), isa.R(21), mask)
	lcgStep(b, isa.R(19), isa.R(23), mask)
	b.OpI(isa.SLL, isa.R(21), 3, isa.R(21))
	b.OpI(isa.SLL, isa.R(23), 3, isa.R(23))
	b.Op3(isa.ADD, isa.R(8), isa.R(21), isa.R(22))
	b.Op3(isa.ADD, isa.R(8), isa.R(23), isa.R(24))
	b.Load(isa.LDT, isa.F(1), isa.R(22), 0) // b coefficients
	b.Load(isa.LDT, isa.F(11), isa.R(24), 0)
	b.Load(isa.LDT, isa.F(2), isa.R(22), 8) // c coefficients
	b.Load(isa.LDT, isa.F(12), isa.R(24), 8)
	b.Op3(isa.MULT, isa.F(1), isa.F(1), isa.F(3))
	b.Op3(isa.MULT, isa.F(11), isa.F(11), isa.F(13))
	b.Op3(isa.SUBT, isa.F(3), isa.F(2), isa.F(4)) // discriminants
	b.Op3(isa.SUBT, isa.F(13), isa.F(12), isa.F(14))
	b.Unary(isa.CVTTQ, isa.F(4), isa.R(10))
	b.Unary(isa.CVTTQ, isa.F(14), isa.R(12))
	b.Branch(isa.BLT, isa.R(10), miss)
	b.Unary(isa.SQRTT, isa.F(4), isa.F(5))
	b.Op3(isa.SUBT, isa.F(5), isa.F(1), isa.F(6))
	b.Unary(isa.CVTTQ, isa.F(6), isa.R(11))
	b.Op3(isa.ADD, isa.R(6), isa.R(11), isa.R(6))
	b.Label(miss)
	b.Branch(isa.BLT, isa.R(12), miss2)
	b.Unary(isa.SQRTT, isa.F(14), isa.F(15))
	b.Op3(isa.SUBT, isa.F(15), isa.F(11), isa.F(16))
	b.Unary(isa.CVTTQ, isa.F(16), isa.R(13))
	b.Op3(isa.ADD, isa.R(6), isa.R(13), isa.R(6))
	b.Label(miss2)
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitGridCost evaluates iters routing-cost lookups on a 2D grid of quads
// (vpr's maze router): address arithmetic with multiplies and neighbour
// loads.
func emitGridCost(b *prog.Builder, sym string, iters, dimMask int64) {
	loop := b.AutoLabel("grid")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), iters/2)
	b.Movi(isa.R(19), 0x5E3D7) // second rng stream
	b.Label(loop)
	// Two routing-cost cells evaluated per iteration, interleaved.
	lcgStep(b, isa.R(20), isa.R(21), dimMask)
	lcgStep(b, isa.R(19), isa.R(25), dimMask)
	lcgStep(b, isa.R(20), isa.R(22), dimMask)
	lcgStep(b, isa.R(19), isa.R(26), dimMask)
	b.OpI(isa.MUL, isa.R(21), dimMask+1, isa.R(23))
	b.OpI(isa.MUL, isa.R(25), dimMask+1, isa.R(27))
	b.Op3(isa.ADD, isa.R(23), isa.R(22), isa.R(23))
	b.Op3(isa.ADD, isa.R(27), isa.R(26), isa.R(27))
	b.OpI(isa.SLL, isa.R(23), 3, isa.R(23))
	b.OpI(isa.SLL, isa.R(27), 3, isa.R(27))
	b.Op3(isa.ADD, isa.R(8), isa.R(23), isa.R(24))
	b.Op3(isa.ADD, isa.R(8), isa.R(27), isa.R(28))
	b.Load(isa.LDQ, isa.R(10), isa.R(24), 0)
	b.Load(isa.LDQ, isa.R(14), isa.R(28), 0)
	b.Load(isa.LDQ, isa.R(11), isa.R(24), 8)
	b.Load(isa.LDQ, isa.R(15), isa.R(28), 8)
	b.Load(isa.LDQ, isa.R(12), isa.R(24), 16)
	b.Load(isa.LDQ, isa.R(16), isa.R(28), 16)
	b.Op3(isa.ADD, isa.R(10), isa.R(11), isa.R(13))
	b.Op3(isa.ADD, isa.R(14), isa.R(15), isa.R(17))
	b.Op3(isa.ADD, isa.R(13), isa.R(12), isa.R(13))
	b.Op3(isa.ADD, isa.R(17), isa.R(16), isa.R(17))
	b.OpI(isa.SRA, isa.R(13), 2, isa.R(13))
	b.OpI(isa.SRA, isa.R(17), 2, isa.R(17))
	b.Store(isa.STQ, isa.R(13), isa.R(24), 8)
	b.Store(isa.STQ, isa.R(17), isa.R(28), 8)
	b.Op3(isa.ADD, isa.R(6), isa.R(13), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(17), isa.R(6))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), loop)
}

// emitBitUnpack extracts variable-length fields from a bit stream at sym
// (jpeg/epic entropy decode): serial shift/mask chains with a refill
// branch.
func emitBitUnpack(b *prog.Builder, sym string, words int64) {
	outer := b.AutoLabel("bup")
	inner := b.AutoLabel("bupi")
	b.MoviAddr(isa.R(8), sym)
	b.Movi(isa.R(9), words/2)
	b.Label(outer)
	// Two bit buffers decoded with interleaved shift/mask chains.
	b.Load(isa.LDQ, isa.R(10), isa.R(8), 0)
	b.Load(isa.LDQ, isa.R(16), isa.R(8), 8)
	b.Movi(isa.R(12), 12) // fields per word
	b.Movi(isa.R(14), 0)
	b.Movi(isa.R(17), 0)
	b.Label(inner)
	b.OpI(isa.AND, isa.R(10), 0x1F, isa.R(13)) // 5-bit fields
	b.OpI(isa.AND, isa.R(16), 0x1F, isa.R(18))
	b.Op3(isa.ADD, isa.R(14), isa.R(13), isa.R(14))
	b.Op3(isa.ADD, isa.R(17), isa.R(18), isa.R(17))
	b.OpI(isa.SRL, isa.R(10), 5, isa.R(10))
	b.OpI(isa.SRL, isa.R(16), 5, isa.R(16))
	b.OpI(isa.SUB, isa.R(12), 1, isa.R(12))
	b.Branch(isa.BNE, isa.R(12), inner)
	b.Op3(isa.ADD, isa.R(6), isa.R(14), isa.R(6))
	b.Op3(isa.ADD, isa.R(6), isa.R(17), isa.R(6))
	b.Store(isa.STQ, isa.R(14), isa.R(8), 0) // decoded symbols written back
	b.Store(isa.STQ, isa.R(17), isa.R(8), 8)
	b.OpI(isa.ADD, isa.R(8), 16, isa.R(8))
	b.OpI(isa.SUB, isa.R(9), 1, isa.R(9))
	b.Branch(isa.BNE, isa.R(9), outer)
}
