package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ctcp/internal/isa"
)

// The disassembly text of most instructions is itself valid assembly; this
// property test generates random well-formed instructions, prints them,
// reassembles the listing, and checks the binary round trip.
func TestDisassemblyReassembles(t *testing.T) {
	gen := func(r *rand.Rand) isa.Inst {
		for {
			in := isa.Inst{
				Op:     isa.Op(r.Intn(isa.NumOps)),
				Ra:     isa.Reg(r.Intn(isa.NumRegs)),
				Rb:     isa.Reg(r.Intn(isa.NumRegs)),
				Rc:     isa.Reg(r.Intn(isa.NumRegs)),
				Imm:    int64(r.Intn(1 << 16)),
				UseImm: r.Intn(2) == 0,
			}
			in = in.Canon()
			// Branch targets must stay PC-aligned to be printable/parseable
			// as plain numbers.
			if in.Op.Class().IsControl() && !in.IsIndirect() {
				in.Imm &^= 3
			}
			return in
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var insts []isa.Inst
		var src strings.Builder
		for k := 0; k < 24; k++ {
			in := gen(r)
			insts = append(insts, in)
			fmt.Fprintf(&src, "        %s\n", in)
		}
		src.WriteString("        halt\n")
		p, err := Assemble(src.String())
		if err != nil {
			t.Logf("assembling disassembly failed: %v\n%s", err, src.String())
			return false
		}
		if len(p.Text) != len(insts)+1 {
			t.Logf("instruction count %d != %d", len(p.Text), len(insts)+1)
			return false
		}
		for i, want := range insts {
			got := p.Text[i]
			// The printed form of a branch carries an absolute target; the
			// assembler reproduces it in Imm. All other fields must match the
			// canonical original exactly.
			if got != want.Canon() {
				t.Logf("inst %d: %q -> %+v, want %+v", i, want.String(), got, want.Canon())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Assembling the same source twice yields identical programs.
func TestAssembleDeterministic(t *testing.T) {
	src := `
main:   movi r1, 100
loop:   sub  r1, 1, r1
        stq  r1, 0(sp)
        ldq  r2, 0(sp)
        bne  r2, loop
        halt
        .data
x:      .quad 1, 2, 3
`
	a := mustAssemble(t, src)
	b := mustAssemble(t, src)
	if len(a.Text) != len(b.Text) {
		t.Fatal("text lengths differ")
	}
	for i := range a.Text {
		if a.Text[i] != b.Text[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	if string(a.Data) != string(b.Data) {
		t.Error("data differs")
	}
}

func TestSymbolArithmeticBothDirections(t *testing.T) {
	p := mustAssemble(t, `
        movi r1, tbl+16
        movi r2, end-8
        halt
        .data
tbl:    .space 32
end:    .byte 0
`)
	tbl := p.Symbols["tbl"]
	end := p.Symbols["end"]
	if got := uint64(p.Text[0].Imm); got != tbl+16 {
		t.Errorf("tbl+16 = %#x, want %#x", got, tbl+16)
	}
	if got := uint64(p.Text[1].Imm); got != end-8 {
		t.Errorf("end-8 = %#x, want %#x", got, end-8)
	}
}

func TestNegativeImmediates(t *testing.T) {
	p := mustAssemble(t, `
        movi r1, -42
        add  r1, -1, r2
        ldq  r3, -16(sp)
        halt
`)
	if p.Text[0].Imm != -42 || p.Text[1].Imm != -1 || p.Text[2].Imm != -16 {
		t.Errorf("negative immediates parsed as %d %d %d",
			p.Text[0].Imm, p.Text[1].Imm, p.Text[2].Imm)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `
        add sp, 8, sp
        add gp, zero, ra
        stt fzero, 0(sp)
        halt
`)
	if p.Text[0].Ra != isa.SP || p.Text[0].Rc != isa.SP {
		t.Error("sp alias broken")
	}
	if p.Text[1].Ra != isa.GP || p.Text[1].Rc != isa.RA {
		t.Error("gp/ra alias broken")
	}
	if p.Text[2].Rb != isa.FZeroReg {
		t.Error("fzero alias broken")
	}
}
