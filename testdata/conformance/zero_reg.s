; conformance: hardwired-zero register semantics — writes to r31/f31 are
; discarded, reads always produce zero, and mov is the OR-with-zero pseudo.
        .entry main
main:   movi    r31, 999        ; discarded
        add     r31, 5, r1      ; 0 + 5
        mov     r2, r1
        add     r2, r31, r2     ; unchanged
        movi    r3, 17
        cvtqt   r3, f31         ; discarded
        cvttq   f31, r4         ; 0
        add     r2, r4, r2
        sub     zero, 1, r5     ; -1 via alias
        add     r2, r5, r2
        out     r2
        halt
