package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHitAfterFill(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64})
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1038) { // same line
		t.Error("same-line access missed")
	}
	if c.S.Accesses != 3 || c.S.Misses != 1 {
		t.Errorf("stats = %+v", c.S)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set x 2 ways: three distinct lines mapping to the same set.
	c := New(Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64})
	a, b, d := uint64(0x0), uint64(0x40), uint64(0x80)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a was evicted (should be MRU)")
	}
	if c.Probe(b) {
		t.Error("b survived (should be LRU victim)")
	}
	if !c.Probe(d) {
		t.Error("d not filled")
	}
}

func TestProbeDoesNotFill(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 1, LineSize: 64})
	if c.Probe(0x123) {
		t.Error("probe hit cold cache")
	}
	if c.Probe(0x123) {
		t.Error("probe filled the cache")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64})
	c.Access(0x1000)
	c.Invalidate(0x1000)
	if c.Probe(0x1000) {
		t.Error("line survived invalidate")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 3, Ways: 1, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 1, LineSize: 48},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSizeBytes(t *testing.T) {
	c := New(Config{Name: "L1D", Sets: 128, Ways: 4, LineSize: 64})
	if c.SizeBytes() != 32*KB {
		t.Errorf("size = %d, want 32KB", c.SizeBytes())
	}
}

// Property: after accessing a working set no larger than one way's worth per
// set, every line still hits (no conflict evictions with true LRU).
func TestNoEvictionWithinCapacityQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "q", Sets: 8, Ways: 4, LineSize: 64})
		// 8 sets * 4 ways: pick exactly 4 lines per set.
		var lines []uint64
		for set := 0; set < 8; set++ {
			for w := 0; w < 4; w++ {
				tag := uint64(r.Intn(1000)*8 + set) // unique tag per way below
				lines = append(lines, (tag*8+uint64(set))<<6)
			}
		}
		// Dedup by regenerating deterministic distinct tags instead.
		lines = lines[:0]
		for set := 0; set < 8; set++ {
			for w := 0; w < 4; w++ {
				lines = append(lines, (uint64(w*8)<<6)*8+(uint64(set)<<6))
			}
		}
		for _, l := range lines {
			c.Access(l)
		}
		for _, l := range lines {
			if !c.Probe(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	// Cold access: TLB miss + L1 miss + L2 miss.
	done := h.Access(0, 0x10000)
	wantCold := int64(cfg.TLBHitLat + cfg.TLBMissLat + cfg.L1HitLat + cfg.L2Lat + cfg.MemLat)
	if done != wantCold {
		t.Errorf("cold access done=%d, want %d", done, wantCold)
	}
	// Re-access after the fill: everything hits.
	done2 := h.Access(done, 0x10000)
	if done2 != done+int64(cfg.TLBHitLat+cfg.L1HitLat) {
		t.Errorf("warm access done=%d, want %d", done2, done+int64(cfg.TLBHitLat+cfg.L1HitLat))
	}
	if h.L1Misses != 1 || h.TLBMisses != 1 || h.L2Misses != 1 {
		t.Errorf("miss counters: %d %d %d", h.L1Misses, h.TLBMisses, h.L2Misses)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	d1 := h.Access(0, 0x20000)
	// Second access to the same line while the miss is outstanding merges.
	d2 := h.Access(1, 0x20008)
	if d2 > d1 {
		t.Errorf("merged access finished at %d, after the fill %d", d2, d1)
	}
	if h.MSHRMerges != 1 {
		t.Errorf("merges = %d, want 1", h.MSHRMerges)
	}
}

func TestHierarchyMSHRFullBackpressure(t *testing.T) {
	cfg := DefaultHierarchy()
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	d1 := h.Access(0, 0x100000)
	h.Access(0, 0x200000)
	// Third distinct-line miss at cycle 0 must wait for an MSHR.
	d3 := h.Access(0, 0x300000)
	if d3 <= d1 {
		t.Errorf("MSHR-full miss done=%d, expected after first fill %d", d3, d1)
	}
	if h.MSHRStalls != 1 {
		t.Errorf("stalls = %d, want 1", h.MSHRStalls)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Access(0, 0x1234)
	h.Reset()
	if h.Accesses != 0 || h.L1.S.Accesses != 0 {
		t.Error("Reset did not clear stats")
	}
	if h.L1.Probe(0x1234) {
		t.Error("Reset did not clear contents")
	}
}

func TestMissRate(t *testing.T) {
	s := Stats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("idle MissRate != 0")
	}
}
