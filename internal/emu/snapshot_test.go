package emu

import (
	"testing"

	"ctcp/internal/isa"
	"ctcp/internal/snap"
)

// loopProg builds a small store/load loop: it reads a counter cell from the
// data segment, accumulates into it, and halts after iters iterations —
// enough state churn (registers, memory, OUT checksum) to make round-trip
// bugs visible.
func loopProg(iters int64) *isa.Program {
	base := isa.DefaultTextBase
	return prog([]byte{7, 0, 0, 0, 0, 0, 0, 0},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: iters},
		// loop:
		isa.Inst{Op: isa.LDQ, Ra: isa.GP, Imm: 0, Rc: isa.R(3)},
		isa.Inst{Op: isa.ADD, Ra: isa.R(3), Rb: isa.R(1), Rc: isa.R(3)},
		isa.Inst{Op: isa.STQ, Ra: isa.GP, Imm: 0, Rb: isa.R(3)},
		isa.Inst{Op: isa.STB, Ra: isa.GP, Rb: isa.R(1), Imm: 64}, // scribble a second page-distinct address
		isa.Inst{Op: isa.SUB, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)},
		isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: int64(base + isa.PCStride)},
		isa.Inst{Op: isa.OUT, Ra: isa.R(3)},
		isa.Inst{Op: isa.HALT},
	)
}

func snapshotMachine(t *testing.T, m *Machine) []byte {
	t.Helper()
	w := snap.NewWriter()
	m.Snapshot(w)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func restoreMachine(t *testing.T, m *Machine, data []byte) {
	t.Helper()
	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	m.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryChecksumRoundTrip pins the checkpointing contract for memory:
// the checksum is invariant under a snapshot/restore round-trip, and
// changes when any page byte changes.
func TestMemoryChecksumRoundTrip(t *testing.T) {
	m := New(loopProg(100))
	if _, err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	before := m.Mem.Checksum()

	w := snap.NewWriter()
	m.Mem.Snapshot(w)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewMemory()
	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	restored.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := restored.Checksum(); got != before {
		t.Errorf("checksum changed across round-trip: %#x -> %#x", before, got)
	}

	// Any byte change must move the checksum: an existing data byte...
	restored.StoreByte(isa.DefaultDataBase, restored.LoadByte(isa.DefaultDataBase)+1)
	if restored.Checksum() == before {
		t.Error("checksum unchanged after mutating an existing page byte")
	}
	restored.StoreByte(isa.DefaultDataBase, restored.LoadByte(isa.DefaultDataBase)-1)
	if restored.Checksum() != before {
		t.Error("checksum did not return after undoing the mutation")
	}
	// ...and a byte on a never-touched page.
	restored.StoreByte(isa.StackTop+1<<20, 5)
	if restored.Checksum() == before {
		t.Error("checksum unchanged after writing a byte on a fresh page")
	}
}

// TestMachineSnapshotRoundTrip takes a mid-run snapshot, restores it into a
// fresh machine, and checks the restored machine replays the identical
// committed stream to the identical architectural end state.
func TestMachineSnapshotRoundTrip(t *testing.T) {
	p := loopProg(200)
	m := New(p)
	if _, err := m.Run(500); err != nil {
		t.Fatal(err)
	}
	data := snapshotMachine(t, m)

	m2 := New(p)
	restoreMachine(t, m2, data)
	if m2.PC != m.PC || m2.InstCount() != m.InstCount() || m2.Regs != m.Regs {
		t.Fatal("restored machine differs from source before continuing")
	}
	if m2.Mem.Checksum() != m.Mem.Checksum() {
		t.Fatal("restored memory differs from source")
	}

	// Continue both machines in lockstep to completion.
	for i := 0; ; i++ {
		c1, ok1 := m.Next()
		c2, ok2 := m2.Next()
		if ok1 != ok2 {
			t.Fatalf("streams diverge at step %d: ok %v vs %v", i, ok1, ok2)
		}
		if c1 != c2 {
			t.Fatalf("streams diverge at step %d:\n  %+v\n  %+v", i, c1, c2)
		}
		if !ok1 {
			break
		}
	}
	if m.OutHash != m2.OutHash || m.Mem.Checksum() != m2.Mem.Checksum() {
		t.Error("final architectural state differs after identical continuation")
	}
}

// TestMachineSnapshotDeterministic: snapshotting the same state twice must
// produce identical bytes (the codec has no iteration-order leakage).
func TestMachineSnapshotDeterministic(t *testing.T) {
	m := New(loopProg(150))
	if _, err := m.Run(400); err != nil {
		t.Fatal(err)
	}
	a := snapshotMachine(t, m)
	b := snapshotMachine(t, m)
	if string(a) != string(b) {
		t.Error("two snapshots of the same machine differ")
	}
}

// TestRestoreWrongProgram: a snapshot must refuse to restore into a machine
// built over a different program.
func TestRestoreWrongProgram(t *testing.T) {
	m := New(loopProg(100))
	if _, err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	data := snapshotMachine(t, m)

	diff := New(prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 1},
		isa.Inst{Op: isa.HALT},
	))
	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	diff.Restore(r)
	if r.Err() == nil {
		t.Error("restore into a machine with a different program layout succeeded")
	}
}

// TestLimitStreamSnapshot round-trips the budget wrapper around a live
// machine and checks the continuation is identical.
func TestLimitStreamSnapshot(t *testing.T) {
	p := loopProg(300)
	ls := &LimitStream{S: New(p), Budget: 700}
	for i := 0; i < 250; i++ {
		if _, ok := ls.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	w := snap.NewWriter()
	ls.Snapshot(w)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	ls2 := &LimitStream{S: New(p)}
	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	ls2.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if ls2.Budget != 700 {
		t.Errorf("restored budget = %d", ls2.Budget)
	}
	n := 0
	for {
		c1, ok1 := ls.Next()
		c2, ok2 := ls2.Next()
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("limit streams diverge after %d records", n)
		}
		if !ok1 {
			break
		}
		n++
	}
	if n != 700-250 {
		t.Errorf("continued stream yielded %d records, want %d", n, 700-250)
	}
}

// TestSliceStreamSnapshot round-trips the replay cursor.
func TestSliceStreamSnapshot(t *testing.T) {
	recs := make([]Committed, 10)
	for i := range recs {
		recs[i] = Committed{Seq: uint64(i), PC: uint64(0x1000 + 4*i)}
	}
	s := &SliceStream{Recs: recs}
	s.Next()
	s.Next()
	s.Next()

	w := snap.NewWriter()
	s.Snapshot(w)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s2 := &SliceStream{Recs: recs}
	r, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	s2.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if c, ok := s2.Next(); !ok || c.Seq != 3 {
		t.Errorf("restored cursor at seq %d, want 3", c.Seq)
	}

	// Length fingerprint rejects a different record slice.
	s3 := &SliceStream{Recs: recs[:5]}
	r2, err := snap.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	s3.Restore(r2)
	if r2.Err() == nil {
		t.Error("restore into a stream with different record count succeeded")
	}
}
