//go:build !race

package lint

// raceEnabled reports whether the race detector is compiled in; the lint
// wall-clock budget is meaningless under its instrumentation overhead.
const raceEnabled = false
