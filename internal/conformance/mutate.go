package conformance

import (
	"errors"
	"fmt"

	"ctcp/internal/isa"
)

// The mutator derives program variants for the differential fuzzer. Every
// mutation is semantics-changing but structure-preserving: the mutant is a
// well-formed program whose meaning is whatever the emulator says it is, so
// emulator-vs-pipeline agreement is still exactly checkable. Mutations are
// chosen by a deterministic seed-driven PRNG — the same (program, seed) pair
// always yields the same mutant, which is what lets a fuzz finding be
// replayed and minimized.

// MutKind enumerates mutation kinds.
type MutKind uint8

const (
	// MutOpSub substitutes the opcode at index A with Op, staying inside
	// the same operand-format class group (add<->xor, ldq<->ldw, beq<->bgt,
	// ...), so operand roles remain valid.
	MutOpSub MutKind = iota
	// MutSwapOperands swaps Ra and Rb of the binary register-form operate
	// instruction at index A.
	MutSwapOperands
	// MutBlockSwap exchanges the adjacent basic blocks [A,B) and [B,C) and
	// remaps every direct control target into the moved range.
	MutBlockSwap
)

// Mutation is one applied program edit, replayable via Apply.
type Mutation struct {
	Kind    MutKind
	A, B, C int
	Op      isa.Op
}

// String renders the mutation for repro headers and failure messages.
func (m Mutation) String() string {
	switch m.Kind {
	case MutOpSub:
		return fmt.Sprintf("opsub@%d->%v", m.A, m.Op)
	case MutSwapOperands:
		return fmt.Sprintf("swapops@%d", m.A)
	case MutBlockSwap:
		return fmt.Sprintf("blockswap[%d,%d)x[%d,%d)", m.A, m.B, m.B, m.C)
	default:
		return fmt.Sprintf("mut?%d", m.Kind)
	}
}

// prng is splitmix64: tiny, deterministic, and seedable from a fuzz
// argument. The fuzzer must not consult ambient randomness — reproducibility
// of a finding depends on (source, seed) alone.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.next() % uint64(n))
}

// opGroups are the substitution classes: same operand format, same
// functional-unit class family, so a substituted instruction is always
// well-formed and stays on the same reservation-station path.
var opGroups = [][]isa.Op{
	{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.ANDNOT},
	{isa.SLL, isa.SRL, isa.SRA},
	{isa.CMPEQ, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE},
	{isa.SEXTB, isa.SEXTW},
	{isa.DIV, isa.REM},
	{isa.LDQ, isa.LDL, isa.LDW, isa.LDBU},
	{isa.STQ, isa.STL, isa.STW, isa.STB},
	{isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE},
	{isa.ADDT, isa.SUBT},
	{isa.CMPTEQ, isa.CMPTLT, isa.CMPTLE},
	{isa.FBEQ, isa.FBNE},
}

var opGroup = func() map[isa.Op][]isa.Op {
	m := make(map[isa.Op][]isa.Op)
	for _, g := range opGroups {
		for _, op := range g {
			m[op] = g
		}
	}
	return m
}()

// Mutations derives a deterministic list of up to four mutations for prog
// from seed. The list may be empty (seed hit no applicable sites); the
// fuzzer then exercises the unmutated program, which is still a valid
// differential check.
func Mutations(prog *isa.Program, seed uint64) []Mutation {
	r := &prng{s: seed}
	n := 1 + r.intn(4)
	muts := make([]Mutation, 0, n)
	haveBlockSwap := false
	for i := 0; i < n; i++ {
		switch r.intn(3) {
		case 0:
			if m, ok := pickOpSub(prog, r); ok {
				muts = append(muts, m)
			}
		case 1:
			if m, ok := pickSwapOperands(prog, r); ok {
				muts = append(muts, m)
			}
		case 2:
			// At most one block swap: its indices are computed against the
			// original layout and a second swap over moved blocks would
			// scramble targets (a deterministic but near-useless mutant).
			if haveBlockSwap {
				continue
			}
			if m, ok := pickBlockSwap(prog, r); ok {
				muts = append(muts, m)
				haveBlockSwap = true
			}
		}
	}
	return muts
}

func pickOpSub(prog *isa.Program, r *prng) (Mutation, bool) {
	// One bounded scan from a random start, so site choice is O(n) and
	// deterministic.
	n := len(prog.Text)
	start := r.intn(n)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		g, ok := opGroup[prog.Text[i].Op]
		if !ok {
			continue
		}
		alt := g[r.intn(len(g))]
		if alt == prog.Text[i].Op {
			alt = g[(indexOf(g, alt)+1)%len(g)]
		}
		return Mutation{Kind: MutOpSub, A: i, Op: alt}, true
	}
	return Mutation{}, false
}

func indexOf(g []isa.Op, op isa.Op) int {
	for i, o := range g {
		if o == op {
			return i
		}
	}
	return 0
}

func pickSwapOperands(prog *isa.Program, r *prng) (Mutation, bool) {
	n := len(prog.Text)
	start := r.intn(n)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		in := prog.Text[i]
		cl := in.Op.Class()
		binaryOperate := (cl == isa.ClassIntALU || cl == isa.ClassIntMul || cl == isa.ClassIntDiv ||
			cl == isa.ClassFPAdd || cl == isa.ClassFPMul || cl == isa.ClassFPDiv) &&
			!in.UseImm && in.Op != isa.MOVI && !isUnary(in.Op)
		if !binaryOperate || in.Ra == in.Rb {
			continue
		}
		return Mutation{Kind: MutSwapOperands, A: i}, true
	}
	return Mutation{}, false
}

func isUnary(op isa.Op) bool {
	switch op {
	case isa.SEXTB, isa.SEXTW, isa.ITOF, isa.FTOI, isa.CVTQT, isa.CVTTQ, isa.SQRTT:
		return true
	}
	return false
}

// pickBlockSwap finds two adjacent movable basic blocks. A block is movable
// when it ends in an unconditional direct branch or HALT (no fall-through
// out) and the instruction before it cannot fall into it either, so the
// swap only changes code placement, with direct targets fixed up by Apply.
// Programs with register-indirect control or text addresses materialized as
// immediates are skipped entirely: indirect targets cannot be remapped.
func pickBlockSwap(prog *isa.Program, r *prng) (Mutation, bool) {
	text := prog.Text
	lo, hi := prog.TextBase, prog.TextEnd()
	for _, in := range text {
		if in.Op.Class() == isa.ClassJump {
			return Mutation{}, false
		}
		if in.UseImm && !in.IsControl() && uint64(in.Imm) >= lo && uint64(in.Imm) < hi {
			return Mutation{}, false
		}
	}
	// Block starts: instruction 0, every direct-control target, and every
	// successor of a control instruction.
	isStart := make([]bool, len(text)+1)
	isStart[0] = true
	isStart[len(text)] = true
	for i, in := range text {
		if in.IsControl() || in.Op == isa.HALT {
			isStart[i+1] = true
		}
		if in.IsControl() && in.UseImm {
			t := uint64(in.Imm)
			if t >= lo && t < hi {
				isStart[(t-lo)/isa.PCStride] = true
			}
		}
	}
	starts := make([]int, 0, len(text)/2)
	for i := range isStart {
		if isStart[i] {
			starts = append(starts, i)
		}
	}
	// noFallOut reports that the block ending at e-1 never falls through.
	noFallOut := func(e int) bool {
		in := text[e-1]
		return in.Op == isa.HALT || (in.Op == isa.BR && in.UseImm)
	}
	// Candidate pairs: consecutive blocks [A,B) and [B,C), both sealed, with
	// the predecessor of A also sealed (and A not the first block, so the
	// entry block never moves).
	type pair struct{ a, b, c int }
	cands := make([]pair, 0, 8)
	for i := 1; i+2 < len(starts); i++ {
		a, b, c := starts[i], starts[i+1], starts[i+2]
		if noFallOut(a) && noFallOut(b) && noFallOut(c) {
			cands = append(cands, pair{a, b, c})
		}
	}
	if len(cands) == 0 {
		return Mutation{}, false
	}
	p := cands[r.intn(len(cands))]
	return Mutation{Kind: MutBlockSwap, A: p.a, B: p.b, C: p.c}, true
}

// Apply replays muts against prog and returns the mutated program. The
// original is not modified; the result has no symbol table (symbols would be
// stale after block moves).
func Apply(prog *isa.Program, muts []Mutation) *isa.Program {
	text := make([]isa.Inst, len(prog.Text))
	copy(text, prog.Text)
	data := make([]byte, len(prog.Data))
	copy(data, prog.Data)
	out := &isa.Program{
		TextBase: prog.TextBase,
		Text:     text,
		DataBase: prog.DataBase,
		Data:     data,
		Entry:    prog.Entry,
	}
	for _, m := range muts {
		applyOne(out, m)
	}
	return out
}

func applyOne(p *isa.Program, m Mutation) {
	n := len(p.Text)
	switch m.Kind {
	case MutOpSub:
		if m.A < n {
			p.Text[m.A].Op = m.Op
		}
	case MutSwapOperands:
		if m.A < n {
			in := &p.Text[m.A]
			in.Ra, in.Rb = in.Rb, in.Ra
		}
	case MutBlockSwap:
		if !(0 < m.A && m.A < m.B && m.B < m.C && m.C <= n) {
			return
		}
		// New layout: [0,A) [B,C) [A,B) [C,n).
		swapped := make([]isa.Inst, 0, n)
		swapped = append(swapped, p.Text[:m.A]...)
		swapped = append(swapped, p.Text[m.B:m.C]...)
		swapped = append(swapped, p.Text[m.A:m.B]...)
		swapped = append(swapped, p.Text[m.C:]...)
		remap := func(idx int) int {
			switch {
			case idx >= m.A && idx < m.B:
				return idx + (m.C - m.B)
			case idx >= m.B && idx < m.C:
				return idx - (m.B - m.A)
			default:
				return idx
			}
		}
		lo, hi := p.TextBase, p.TextBase+uint64(n)*isa.PCStride
		for i := range swapped {
			in := &swapped[i]
			if !in.IsControl() || !in.UseImm {
				continue
			}
			t := uint64(in.Imm)
			if t < lo || t >= hi {
				continue
			}
			idx := int((t - lo) / isa.PCStride)
			in.Imm = int64(lo + uint64(remap(idx))*isa.PCStride)
		}
		copy(p.Text, swapped)
		// The entry never moves (A > 0 and the entry block is block 0 when
		// Entry == TextBase), but remap it anyway for programs whose entry
		// sits mid-text.
		if p.Entry >= lo && p.Entry < hi {
			p.Entry = lo + uint64(remap(int((p.Entry-lo)/isa.PCStride)))*isa.PCStride
		}
	}
}

// Minimize shrinks a diverging mutation list: it repeatedly tries dropping
// each mutation and keeps any subset that still diverges under check, until
// no single removal preserves the divergence. check must return a non-nil,
// non-ErrReject error for a diverging mutant.
func Minimize(prog *isa.Program, muts []Mutation, check func(*isa.Program) error) []Mutation {
	diverges := func(ms []Mutation) bool {
		err := check(Apply(prog, ms))
		return err != nil && !isReject(err)
	}
	cur := append([]Mutation(nil), muts...)
	for changed := true; changed && len(cur) > 0; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := make([]Mutation, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			if diverges(trial) {
				cur = trial
				changed = true
				break
			}
		}
	}
	return cur
}

func isReject(err error) bool { return errors.Is(err, ErrReject) }
