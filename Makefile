GO ?= go

.PHONY: check build vet test race bench

# check is the CI gate: compile everything, vet, then the full suite under
# the race detector (the runner stress tests exercise it meaningfully).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the cycle-model microbenchmarks, then regenerates
# BENCH_pipeline.json (current throughput next to the frozen pre-optimization
# baseline) via the programmatic harness in internal/bench.
bench:
	$(GO) test ./internal/pipeline -run='^$$' -bench=. -benchmem -benchtime=1s
	$(GO) run ./cmd/ctcpbench -microbench -bench-out BENCH_pipeline.json
