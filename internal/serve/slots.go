package serve

// Named save-state slot endpoints: the service-side surface over
// experiment.SlotStore. A slot-enabled server (Config.SlotDir set) lists and
// inspects slots saved by ctcpsim on the same directory, and forks one
// checkpoint into what-if configurations over HTTP — restore itself stays a
// local (CLI) operation, since a restored pipeline is an interactive object,
// not a job.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ctcp/internal/experiment"
)

// forkRequest is the payload of POST /api/v1/slots/{name}/fork: a
// destination name plus the what-if config delta (experiment.SlotConfig
// semantics; an empty base inherits the source slot's base).
type forkRequest struct {
	As             string `json:"as"`
	Base           string `json:"base,omitempty"`
	Hop            int    `json:"hop,omitempty"`
	ZeroAllFwd     bool   `json:"zero_all_fwd,omitempty"`
	ZeroCritFwd    bool   `json:"zero_crit_fwd,omitempty"`
	ZeroIntraTrace bool   `json:"zero_intra_trace,omitempty"`
	ZeroInterTrace bool   `json:"zero_inter_trace,omitempty"`
}

func (fr forkRequest) delta() experiment.SlotConfig {
	return experiment.SlotConfig{
		Base:           fr.Base,
		Hop:            fr.Hop,
		ZeroAllFwd:     fr.ZeroAllFwd,
		ZeroCritFwd:    fr.ZeroCritFwd,
		ZeroIntraTrace: fr.ZeroIntraTrace,
		ZeroInterTrace: fr.ZeroInterTrace,
	}
}

// slotStore returns the store or the error every slot endpoint reports when
// the server was started without a slot directory. The store serializes
// concurrent forks internally (per-destination reservation), so handlers
// call it directly — no handler-level lock, which would otherwise be held
// across checkpoint restore I/O.
func (s *Server) slotStore() (*experiment.SlotStore, error) {
	if s.slots == nil {
		return nil, fmt.Errorf("server has no slot directory (start with a SlotDir)")
	}
	return s.slots, nil
}

// handleSlots lists every named slot with its fingerprint and segment
// metadata, sorted by name.
func (s *Server) handleSlots(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	st, err := s.slotStore()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	slots, err := st.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, slots)
}

// handleSlot returns one slot's metadata.
func (s *Server) handleSlot(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	st, err := s.slotStore()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	meta, err := st.Inspect(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleSlotFork forks a slot into a what-if configuration. Invalid deltas —
// unknown base, inconsistent knobs, or restore-incompatible geometry changes
// — fail with 400 and leave no destination slot; a stale source slot
// (fingerprints that no longer reproduce) is refused with 409.
func (s *Server) handleSlotFork(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	st, err := s.slotStore()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var fr forkRequest
	if err := json.NewDecoder(r.Body).Decode(&fr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if fr.As == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fork request needs a destination name (\"as\")"))
		return
	}
	src := r.PathValue("name")

	// No handler-level lock: the store's per-destination reservation is what
	// serializes concurrent forks, so this handler never blocks siblings (or
	// /healthz) behind a checkpoint restore.
	srcMeta, err := st.Inspect(src)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	delta := fr.delta()
	if delta.Base == "" {
		delta.Base = srcMeta.Config.Base
	}
	meta, err := st.Fork(src, fr.As, delta)
	if err != nil {
		status := http.StatusBadRequest
		if err := experiment.VerifySlot(srcMeta); err != nil {
			status = http.StatusConflict // stale source, not a bad delta
		}
		writeError(w, status, err)
		return
	}
	s.logf("slot %s: forked to %s (base=%s hop=%d)", src, meta.Name, meta.Config.Base, meta.Config.Hop)
	writeJSON(w, http.StatusCreated, meta)
}
