package emu

import "sort"

// Memory is a sparse, byte-addressable, little-endian memory. Pages are
// allocated on first touch, so the 64-bit address space costs nothing until
// used. Reads of untouched memory return zero, which matches the loader
// zero-filling BSS.
type Memory struct {
	pages map[uint64]*page
	// last-page cache: emulation is extremely local, so a one-entry TLB for
	// the page map removes most map lookups.
	lastIdx  uint64
	lastPage *page
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	idx := addr >> pageShift
	if m.lastPage != nil && m.lastIdx == idx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new(page)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr&pageMask] = b
}

// Read returns size bytes (1, 2, 4 or 8) at addr as a little-endian value.
// Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	if off := addr & pageMask; off+uint64(size) <= pageSize {
		if p := m.pageFor(addr, false); p != nil {
			var v uint64
			for i := size - 1; i >= 0; i-- {
				v = v<<8 | uint64(p[off+uint64(i)])
			}
			return v
		}
		return 0
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.LoadByte(addr+uint64(i)))
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, v uint64, size int) {
	if off := addr & pageMask; off+uint64(size) <= pageSize {
		p := m.pageFor(addr, true)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(v)
			v >>= 8
		}
		return
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v))
		v >>= 8
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.pageFor(addr, true)
		off := addr & pageMask
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// PageCount returns the number of touched pages (test/diagnostic aid).
func (m *Memory) PageCount() int { return len(m.pages) }

// Checksum folds the entire memory contents into one order-insensitive-
// allocation, order-sensitive-content hash: pages are visited in ascending
// address order and all-zero pages are skipped, so two memories with the
// same byte contents hash identically regardless of which zero pages were
// ever touched. Differential tests use it to compare architectural state.
func (m *Memory) Checksum() uint64 {
	idxs := make([]uint64, 0, len(m.pages))
	for idx := range m.pages { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	for _, idx := range idxs {
		p := m.pages[idx]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		h = h*prime + idx
		for _, b := range p {
			h = h*prime + uint64(b)
		}
	}
	return h
}
