GO ?= go

.PHONY: check build vet lint test race bench results serve-check conformance fuzz-smoke

# check is the CI gate: compile everything, vet, run the module's own static
# analysis suite (cmd/ctcplint), then the full test suite under the race
# detector (the runner stress tests exercise it meaningfully). The
# conformance corpus runs inside `race` already (it is a normal test
# package); `conformance` exists as a focused re-run, and `fuzz-smoke` is
# deliberately NOT part of check — a timed fuzz run is too slow and too
# nondeterministic for the commit gate, so CI runs it as its own job.
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs ctcplint, the stdlib-only analyzer suite in internal/lint that
# enforces the simulator's determinism and hot-path invariants (map iteration
# order, //ctcp:hotpath allocations, wall clock/ambient randomness, float
# equality, Config.Validate coverage, unchecked artifact/response writes) and
# the service tier's concurrency invariants on a CFG/call-graph layer:
# lockheld (no blocking I/O while a mutex is held), lockorder (no
# lock-acquisition cycles module-wide), goroleak (every goroutine has a join
# signal). A suppression audit rides along: stale //ctcp:lint-ok and
# //ctcp:coldlock waivers fail the lint like real findings.
lint:
	$(GO) run ./cmd/ctcplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# results regenerates results_full.txt, the checked-in full experiment sweep
# (every table, figure, ablation and sweep at a 200k-instruction budget). The
# simulator is deterministic, so on an unchanged tree every number must
# reproduce exactly (only the wall-clock "[... regenerated in ...]" lines
# vary); a numeric diff after a model change is the change's measured effect
# on the paper-style results and belongs in the same commit.
results:
	$(GO) run ./cmd/ctcpbench -insts 200000 > results_full.txt

# serve-check runs the ctcpd service suite under the race detector: the
# exactly-once dedup guarantee (asserted from the outside via /metrics),
# restart-reuse from the result store, journal restart-replay of queued and
# interrupted jobs, failed-fingerprint retry, tenant auth/quota/rate limits,
# fair-share dispatch, the progress event stream, job retention,
# stale-fingerprint resimulation, backpressure, and the shutdown drain.
serve-check:
	$(GO) test -race -count=1 ./internal/serve/

# conformance runs the ISA conformance corpus under the race detector: every
# corpus program against its golden architectural result, emulator/pipeline
# retirement agreement under all strategies, opcode coverage, and the
# mutation-engine invariants. Golden updates: go test ./internal/conformance
# -run TestCorpusGolden -update (commit the numeric diff with its cause).
conformance:
	$(GO) test -race -count=1 ./internal/conformance/

# fuzz-smoke is the short differential-fuzz pass CI runs on every push: 30s
# of emulator-vs-timing-model cross-checking over mutated corpus programs,
# plus 10s of assembler roundtrip fuzzing. Divergence repros land in
# $$CTCP_REPRO_DIR (default: $$TMPDIR/ctcp-divergence) as replayable .s files.
fuzz-smoke:
	$(GO) test ./internal/conformance/ -run '^$$' -fuzz FuzzDifferential -fuzztime 30s
	$(GO) test ./internal/asm/ -run '^$$' -fuzz FuzzAssembleRoundtrip -fuzztime 10s

# bench runs the cycle-model microbenchmarks, then regenerates
# BENCH_pipeline.json (current throughput next to the frozen pre-optimization
# baseline) via the programmatic harness in internal/bench. Set BENCH_LABEL
# to also record the measurement in the file's history array:
#   make bench BENCH_LABEL=soa-inflight-store
BENCH_LABEL ?=
bench:
	$(GO) test ./internal/pipeline -run='^$$' -bench=. -benchmem -benchtime=1s
	$(GO) run ./cmd/ctcpbench -microbench -bench-out BENCH_pipeline.json $(if $(BENCH_LABEL),-bench-label $(BENCH_LABEL))
