; conformance: recursive call tree over the stack (sum of 1..9), exercising
; JSR/RET with saved/restored link and argument registers.
        .entry main
main:   movi    r1, 9           ; n
        movi    r2, rsum
        jsr     ra, (r2)
        out     r0
        halt
rsum:   bgt     r1, rec         ; r0 = sum(1..r1)
        movi    r0, 0
        ret
rec:    sub     sp, 16, sp
        stq     ra, 0(sp)
        stq     r1, 8(sp)
        sub     r1, 1, r1
        movi    r2, rsum
        jsr     ra, (r2)
        ldq     r1, 8(sp)
        ldq     ra, 0(sp)
        add     sp, 16, sp
        add     r0, r1, r0
        ret
