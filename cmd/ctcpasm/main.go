// Command ctcpasm assembles, disassembles and functionally runs TRISC-64
// programs.
//
// Usage:
//
//	ctcpasm prog.s                 # assemble, report sizes
//	ctcpasm -o prog.tro prog.s     # assemble to an object file
//	ctcpasm -d prog.tro            # disassemble an object file
//	ctcpasm -run prog.s            # assemble and execute functionally
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctcp/internal/asm"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
)

func main() {
	var (
		out    = flag.String("o", "", "write the assembled object to this file")
		dis    = flag.Bool("d", false, "disassemble an object file instead of assembling")
		run    = flag.Bool("run", false, "execute the program functionally after assembling")
		budget = flag.Uint64("insts", 10_000_000, "instruction budget for -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ctcpasm [-o out.tro] [-d] [-run] file")
		os.Exit(2)
	}
	path := flag.Arg(0)

	var p *isa.Program
	if *dis || strings.HasSuffix(path, ".tro") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		p, err = isa.LoadProgram(f)
		if err != nil {
			fatal(err)
		}
		if *dis {
			fmt.Print(asm.Disassemble(p))
			return
		}
	} else {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("text %d instructions, data %d bytes, entry %#x\n",
		len(p.Text), len(p.Data), p.Entry)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := p.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *run {
		m := emu.New(p)
		n, err := m.Run(*budget)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions, halted=%v\n", n, m.Halted())
		if len(m.OutValues) > 0 {
			fmt.Printf("out values: %v (checksum %#x)\n", m.OutValues, m.OutHash)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctcpasm:", err)
	os.Exit(1)
}
