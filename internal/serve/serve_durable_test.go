package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctcp/internal/experiment"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// submitKeyed POSTs a job request with an API key and decodes the response.
func submitKeyed[T any](t *testing.T, base, key string, req Request) (T, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return out, resp.StatusCode
}

// getKeyed GETs an API path with an API key.
func getKeyed(t *testing.T, base, key, path string) *http.Response {
	t.Helper()
	hr, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		hr.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

// waitJobKeyed long-polls a job with an API key until it is terminal.
func waitJobKeyed(t *testing.T, base, key, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp := getKeyed(t, base, key, "/api/v1/jobs/"+id+"?wait=5s")
		var v jobView
		err := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusInterrupted:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q", id, v.Status)
		}
	}
}

// TestServeFailedJobRetry is the headline poisoning regression: a job that
// fails must not wedge its fingerprint. Resubmitting the same request after
// a failure has to run a fresh simulation — through both the service dedup
// index (byFP) and the pooled runner's memo — and succeed.
func TestServeFailedJobRetry(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})
	var calls atomic.Int64
	s.mu.Lock()
	s.testRunFn = func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("injected transient fault")
		}
		return &pipeline.Stats{Cycles: 4242, Retired: testBudget}, nil
	}
	s.mu.Unlock()
	req := Request{Benchmark: "gzip", Config: "base", Budget: testBudget}

	v1, code := submit[jobView](t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	v1 = waitJob(t, hs.URL, v1.ID)
	if v1.Status != StatusFailed || !strings.Contains(v1.Error, "injected transient fault") {
		t.Fatalf("first run: status %q error %q, want injected failure", v1.Status, v1.Error)
	}
	if got := metricValue(t, hs.URL, "ctcpd_jobs_failed_total"); got != 1 {
		t.Errorf("ctcpd_jobs_failed_total = %v, want 1", got)
	}

	// The fix under test: before it, this resubmission was answered with the
	// stale failed job (200) forever; the fingerprint was poisoned.
	v2, code := submit[jobView](t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after failure: status %d, want 202 (fresh simulation)", code)
	}
	if v2.ID == v1.ID {
		t.Fatalf("resubmit was answered with the failed job %s", v1.ID)
	}
	if v2.Fingerprint != v1.Fingerprint {
		t.Fatalf("retry changed the fingerprint: %s vs %s", v2.Fingerprint, v1.Fingerprint)
	}
	v2 = waitJob(t, hs.URL, v2.ID)
	if v2.Status != StatusDone {
		t.Fatalf("retry: status %q error %q, want done", v2.Status, v2.Error)
	}
	if v2.Stats.Cycles != 4242 {
		t.Errorf("retry stats %+v, want the second (successful) simulation's", v2.Stats)
	}
	if got := metricValue(t, hs.URL, "ctcpd_runner_started_total"); got != 2 {
		t.Errorf("ctcpd_runner_started_total = %v, want 2 (failure + retry)", got)
	}
	// A third submission joins the now-successful job.
	v3, code := submit[jobView](t, hs.URL, req)
	if code != http.StatusOK || v3.ID != v2.ID {
		t.Errorf("post-success submit: status %d job %s, want 200 for %s", code, v3.ID, v2.ID)
	}
}

// TestServeRestartReplaysQueue is the durable-queue property: kill a server
// with a running checkpointed job and queued jobs behind it, restart over
// the same directories, and every accepted job reaches done — bit-identical
// to uninterrupted direct runs — while fingerprints the first process
// already completed are answered from the store with zero resimulation.
func TestServeRestartReplaysQueue(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	reqBig := Request{Benchmark: "gzip", Config: "base", Budget: 500_000,
		Checkpoint: true, CheckpointEvery: testEvery}
	reqA := Request{Benchmark: "gzip", Config: "fdrt", Budget: testBudget}
	reqB := Request{Benchmark: "gzip", Config: "base", Budget: testBudget}
	reqs := []Request{reqBig, reqA, reqB}

	// References: the same three runs executed directly, uninterrupted.
	want := make(map[string]string) // config+budget -> stats JSON
	for _, req := range reqs {
		opts := experiment.Options{Budget: req.Budget}
		if req.Checkpoint {
			opts.CheckpointDir = t.TempDir()
			opts.CheckpointEvery = req.CheckpointEvery
		}
		bm, _ := workload.ByName(req.Benchmark)
		stats, err := experiment.NewRunner(opts).RunErr(bm, req.Config, experiment.StrategyConfigs()[req.Config])
		if err != nil {
			t.Fatalf("reference %s/%d: %v", req.Config, req.Budget, err)
		}
		buf, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprintf("%s/%d", req.Config, req.Budget)] = string(buf)
	}

	s1, err := New(Config{Store: storeDir, CheckpointDir: ckptDir, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1)
	fps := make([]string, len(reqs))
	for i, req := range reqs {
		v, code := submit[jobView](t, hs1.URL, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		fps[i] = v.Fingerprint
		if i == 0 {
			// Pin the only worker with the big checkpointed run so the
			// following submissions are still queued at shutdown.
			waitRunning(t, hs1.URL, v.ID)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	hs1.Close()

	// What did the first process finish? Anything already in the store must
	// not be resimulated; everything else must be replayed to completion.
	probe, err := OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, hex := range fps {
		fp, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			t.Fatalf("fingerprint %q: %v", hex, err)
		}
		if _, ok := probe.Get(fp); !ok {
			replayed++
		}
	}
	if replayed == 0 {
		t.Log("first server finished everything before shutdown; replay set is empty")
	}

	// Restart over the same store, checkpoint dir, and journal.
	_, hs2 := newTestServer(t, Config{Store: storeDir, CheckpointDir: ckptDir, Workers: 2})
	for i, req := range reqs {
		v, code := submit[jobView](t, hs2.URL, req)
		if code != http.StatusOK {
			t.Fatalf("post-restart submit %d: status %d, want 200 (replayed job or store hit)", i, code)
		}
		v = waitJob(t, hs2.URL, v.ID)
		if v.Status != StatusDone {
			t.Fatalf("replayed job %d: status %q error %q", i, v.Status, v.Error)
		}
		if v.Fingerprint != fps[i] {
			t.Errorf("job %d fingerprint drifted across restart: %s vs %s", i, v.Fingerprint, fps[i])
		}
		key := fmt.Sprintf("%s/%d", req.Config, req.Budget)
		if got := statsJSON(t, v); got != want[key] {
			t.Errorf("job %d (%s) not bit-identical to uninterrupted run:\n got %s\nwant %s", i, key, got, want[key])
		}
	}
	// The exactly-once witness across the restart: only the unfinished
	// fingerprints were simulated again.
	if got := metricValue(t, hs2.URL, "ctcpd_runner_started_total"); got != float64(replayed) {
		t.Errorf("ctcpd_runner_started_total = %v after restart, want %d (completed fingerprints must not resimulate)", got, replayed)
	}
	// The journal settles as replayed jobs finish; a third process over the
	// same directories owes nothing and starts empty.
	if got := metricValue(t, hs2.URL, "ctcpd_jobs_submitted_total"); got != float64(replayed) {
		t.Errorf("ctcpd_jobs_submitted_total = %v, want %d replayed acceptances", got, replayed)
	}
}

// TestServeTenantAuthQuotaRate: a keyed server rejects unknown keys, and
// enforces per-tenant quotas and rate limits independently.
func TestServeTenantAuthQuotaRate(t *testing.T) {
	keys := filepath.Join(t.TempDir(), "keys.txt")
	content := "# test tenants\n" +
		"key-alpha alpha quota=1\n" +
		"key-beta beta rate=0.0001 burst=1\n"
	if err := os.WriteFile(keys, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Keys: keys, CheckpointDir: t.TempDir()})

	// No key, wrong key: 401.
	if _, code := submit[map[string]string](t, hs.URL, Request{Benchmark: "gzip", Config: "base"}); code != http.StatusUnauthorized {
		t.Fatalf("keyless submit: status %d, want 401", code)
	}
	if _, code := submitKeyed[map[string]string](t, hs.URL, "key-bogus", Request{Benchmark: "gzip", Config: "base"}); code != http.StatusUnauthorized {
		t.Fatalf("bogus-key submit: status %d, want 401", code)
	}
	if got := metricValue(t, hs.URL, "ctcpd_unauthorized_total"); got != 2 {
		t.Errorf("ctcpd_unauthorized_total = %v, want 2", got)
	}

	// Alpha (quota 1) pins the worker with a big checkpointed job; its next
	// distinct submission must bounce on quota, not enqueue.
	big, code := submitKeyed[jobView](t, hs.URL, "key-alpha", Request{Benchmark: "gzip", Config: "base",
		Budget: 50_000_000, Checkpoint: true, CheckpointEvery: testEvery})
	if code != http.StatusAccepted {
		t.Fatalf("alpha submit: status %d", code)
	}
	if big.Tenant != "alpha" {
		t.Errorf("job tenant %q, want alpha", big.Tenant)
	}
	body, code := submitKeyed[map[string]string](t, hs.URL, "key-alpha", Request{
		Benchmark: "gzip", Config: "base", Budget: testBudget})
	if code != http.StatusTooManyRequests || !strings.Contains(body["error"], "quota") {
		t.Fatalf("alpha over quota: status %d error %q, want 429 quota", code, body["error"])
	}
	if got := metricValue(t, hs.URL, `ctcpd_tenant_jobs_total{tenant="alpha",outcome="rejected"}`); got != 1 {
		t.Errorf("alpha rejected counter = %v, want 1", got)
	}

	// Beta (burst 1, negligible refill) gets one submission through, then is
	// throttled — independently of alpha's quota state.
	if _, code := submitKeyed[jobView](t, hs.URL, "key-beta", Request{
		Benchmark: "gzip", Config: "fdrt", Budget: testBudget}); code != http.StatusAccepted {
		t.Fatalf("beta submit: status %d", code)
	}
	body, code = submitKeyed[map[string]string](t, hs.URL, "key-beta", Request{
		Benchmark: "gzip", Config: "fdrt", Budget: testBudget + 64})
	if code != http.StatusTooManyRequests || !strings.Contains(body["error"], "rate-limited") {
		t.Fatalf("beta throttle: status %d error %q, want 429 rate-limited", code, body["error"])
	}
	if got := metricValue(t, hs.URL, "ctcpd_jobs_throttled_total"); got != 1 {
		t.Errorf("ctcpd_jobs_throttled_total = %v, want 1", got)
	}
	if got := metricValue(t, hs.URL, `ctcpd_tenant_jobs_total{tenant="beta",outcome="throttled"}`); got != 1 {
		t.Errorf("beta throttled counter = %v, want 1", got)
	}

	// Each tenant lists only its own jobs.
	resp := getKeyed(t, hs.URL, "key-alpha", "/api/v1/jobs")
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 || views[0].Tenant != "alpha" {
		t.Errorf("alpha listing: %+v, want exactly its own job", views)
	}
}

// TestServeFairShareDispatch: with one worker and a deep backlog from one
// tenant, another tenant's single job is dispatched next rather than
// waiting behind the whole backlog (round-robin fair share).
func TestServeFairShareDispatch(t *testing.T) {
	keys := filepath.Join(t.TempDir(), "keys.txt")
	if err := os.WriteFile(keys, []byte("key-alpha alpha\nkey-beta beta\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Keys: keys})
	release := make(chan struct{})
	var once sync.Once
	free := func() { once.Do(func() { close(release) }) }
	t.Cleanup(free) // never leave the worker pinned if an assertion bails early
	var calls atomic.Int64
	s.mu.Lock()
	s.testRunFn = func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
		if calls.Add(1) == 1 {
			<-release // pin the only worker while the backlog builds
		}
		return &pipeline.Stats{Cycles: 1, Retired: 1}, nil
	}
	s.mu.Unlock()

	mk := func(extra uint64) Request {
		return Request{Benchmark: "gzip", Config: "base", Budget: testBudget + extra}
	}
	pin, code := submitKeyed[jobView](t, hs.URL, "key-alpha", mk(0))
	if code != http.StatusAccepted {
		t.Fatalf("pin submit: status %d", code)
	}
	waitRunning(t, hs.URL, pin.ID)
	a2, _ := submitKeyed[jobView](t, hs.URL, "key-alpha", mk(128))
	a3, _ := submitKeyed[jobView](t, hs.URL, "key-alpha", mk(256))
	b1, code := submitKeyed[jobView](t, hs.URL, "key-beta", mk(512))
	if code != http.StatusAccepted {
		t.Fatalf("beta submit: status %d", code)
	}
	free()
	for _, id := range []string{pin.ID, a2.ID, a3.ID, b1.ID} {
		if v := waitJobKeyed(t, hs.URL, "key-alpha", id); v.Status != StatusDone {
			// alpha can read beta's job by ID; only listings are scoped.
			t.Fatalf("job %s: status %q error %q", id, v.Status, v.Error)
		}
	}
	begun := func(id string) time.Time {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jobs[id].begun
	}
	// Round-robin: beta's lone job — submitted after alpha's whole backlog —
	// is dispatched before alpha's second and third queued jobs.
	if !begun(b1.ID).Before(begun(a2.ID)) || !begun(a2.ID).Before(begun(a3.ID)) {
		t.Errorf("dispatch order not fair-share: beta %v, alpha2 %v, alpha3 %v",
			begun(b1.ID), begun(a2.ID), begun(a3.ID))
	}
}

// readEvents consumes a job's SSE stream until the terminal event,
// returning the event types in order.
func readEvents(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		events = append(events, ev)
		if terminalEvent(ev) {
			return events
		}
	}
	t.Fatalf("stream ended without a terminal event: %v (scan err %v)", events, sc.Err())
	return nil
}

// TestServeEventStream: the SSE endpoint carries the full lifecycle —
// queued, running, per-segment (checkpointed) or per-region (sampled)
// progress, terminal — and ends the stream at the terminal event.
func TestServeEventStream(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, CheckpointDir: t.TempDir()})

	ck, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base",
		Budget: testBudget, Checkpoint: true, CheckpointEvery: testEvery})
	if code != http.StatusAccepted {
		t.Fatalf("checkpointed submit: status %d", code)
	}
	waitJob(t, hs.URL, ck.ID)
	events := readEvents(t, hs.URL, ck.ID)
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type]++
		if ev.Job != ck.ID {
			t.Errorf("event for %q on %s's stream", ev.Job, ck.ID)
		}
	}
	if counts["queued"] != 1 || counts["running"] != 1 || counts[StatusDone] != 1 {
		t.Errorf("lifecycle events %v, want one queued, one running, one done", counts)
	}
	// The final segment finishes the run instead of checkpointing, so a
	// budget of N*every yields N-1 durable segment boundaries.
	wantSegments := int(testBudget/testEvery) - 1
	if counts["segment"] != wantSegments {
		t.Errorf("segment events = %d, want %d (budget/interval - 1)", counts["segment"], wantSegments)
	}
	last := events[len(events)-1]
	if last.Type != StatusDone {
		t.Errorf("stream ended on %q, want done", last.Type)
	}
	for _, ev := range events {
		if ev.Type == "segment" && (ev.Total != testBudget || ev.Done == 0 || ev.Done > ev.Total) {
			t.Errorf("segment event out of range: %+v", ev)
		}
	}

	sm, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base",
		Budget: testBudget, SampleInterval: testEvery, SampleDetail: 2000})
	if code != http.StatusAccepted {
		t.Fatalf("sampled submit: status %d", code)
	}
	waitJob(t, hs.URL, sm.ID)
	counts = map[string]int{}
	for _, ev := range readEvents(t, hs.URL, sm.ID) {
		counts[ev.Type]++
	}
	wantRegions := int(testBudget / testEvery)
	if counts["region"] != wantRegions {
		t.Errorf("region events = %d, want %d", counts["region"], wantRegions)
	}
}

// TestServeJobRetention: terminal jobs beyond RetainJobs are evicted from
// the in-memory index — the listing and job endpoints forget them — but
// their results remain addressable by fingerprint, and a resubmission is
// served from the store rather than resimulated.
func TestServeJobRetention(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, RetainJobs: 2})
	s.mu.Lock()
	s.testRunFn = func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
		return &pipeline.Stats{Cycles: 10, Retired: 10}, nil
	}
	s.mu.Unlock()

	var jobs []jobView
	for i := 0; i < 4; i++ {
		v, code := submit[jobView](t, hs.URL, Request{
			Benchmark: "gzip", Config: "base", Budget: testBudget + uint64(i)*128})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		jobs = append(jobs, waitJob(t, hs.URL, v.ID))
	}

	resp, err := http.Get(hs.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 2 || views[0].ID != jobs[2].ID || views[1].ID != jobs[3].ID {
		t.Fatalf("retained listing %+v, want exactly the last two jobs", views)
	}
	resp, err = http.Get(hs.URL + "/api/v1/jobs/" + jobs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job fetch: status %d, want 404", resp.StatusCode)
	}
	// The store, not the job index, is the system of record.
	resp, err = http.Get(hs.URL + "/api/v1/results/" + jobs[0].Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("evicted job's result: status %d, want 200", resp.StatusCode)
	}
	v, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base", Budget: testBudget})
	if code != http.StatusOK || !v.Cached || v.Status != StatusDone {
		t.Errorf("evicted fingerprint resubmit: status %d cached=%v status=%q, want a store hit", code, v.Cached, v.Status)
	}
	if got := metricValue(t, hs.URL, "ctcpd_runner_started_total"); got != 4 {
		t.Errorf("ctcpd_runner_started_total = %v, want 4 (store answers the resubmit)", got)
	}
}

// TestServeBatchSubmit: one request carries a whole sweep; rows dedup
// against each other and invalid rows fail individually without sinking
// the batch.
func TestServeBatchSubmit(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	payload := map[string]any{"jobs": []Request{
		{Benchmark: "gzip", Config: "base", Budget: testBudget},
		{Benchmark: "gzip", Config: "base", Budget: testBudget}, // duplicate row
		{Benchmark: "no-such-benchmark", Config: "base"},
		{Benchmark: "gzip", Config: "fdrt", Budget: testBudget},
	}}
	buf, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/api/v1/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []batchItem `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 4 {
		t.Fatalf("batch returned %d rows, want 4", len(out.Jobs))
	}
	if out.Jobs[0].Code != http.StatusAccepted {
		t.Errorf("row 0: code %d, want 202", out.Jobs[0].Code)
	}
	if out.Jobs[1].Code != http.StatusOK || out.Jobs[1].ID != out.Jobs[0].ID {
		t.Errorf("row 1 (duplicate): code %d id %s, want 200 joining %s", out.Jobs[1].Code, out.Jobs[1].ID, out.Jobs[0].ID)
	}
	if out.Jobs[2].Code != http.StatusBadRequest || out.Jobs[2].Error == "" {
		t.Errorf("row 2 (invalid): code %d error %q, want 400 with message", out.Jobs[2].Code, out.Jobs[2].Error)
	}
	if out.Jobs[3].Code != http.StatusAccepted {
		t.Errorf("row 3: code %d, want 202", out.Jobs[3].Code)
	}
	for _, row := range []batchItem{out.Jobs[0], out.Jobs[3]} {
		if v := waitJob(t, hs.URL, row.ID); v.Status != StatusDone {
			t.Errorf("batch job %s: status %q error %q", row.ID, v.Status, v.Error)
		}
	}
	if got := metricValue(t, hs.URL, "ctcpd_jobs_submitted_total"); got != 2 {
		t.Errorf("ctcpd_jobs_submitted_total = %v, want 2 distinct acceptances", got)
	}
}
