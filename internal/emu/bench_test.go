package emu

import (
	"testing"

	"ctcp/internal/isa"
)

// stepKernel builds a small synthetic kernel with the instruction mix the
// interpreter actually sees from the workload programs: ALU traffic over a
// loop induction variable, loads/stores walking a buffer, a compare+branch
// loop back-edge. It runs count outer iterations and halts.
func stepKernel(count int64) *isa.Program {
	base := isa.DefaultTextBase
	return &isa.Program{
		TextBase: base,
		DataBase: isa.DefaultDataBase,
		Entry:    base,
		Text: []isa.Inst{
			0: {Op: isa.MOVI, Rc: isa.R(1), Imm: count},                      // i = count
			1: {Op: isa.MOVI, Rc: isa.R(2), Imm: int64(isa.DefaultDataBase)}, // p = data
			2: {Op: isa.MOVI, Rc: isa.R(3), Imm: 0},                          // acc = 0
			// loop:
			3:  {Op: isa.LDQ, Ra: isa.R(2), Imm: 0, Rc: isa.R(4)},                  // v = *p
			4:  {Op: isa.ADD, Ra: isa.R(4), Rb: isa.R(1), Rc: isa.R(4)},            // v += i
			5:  {Op: isa.XOR, Ra: isa.R(3), Rb: isa.R(4), Rc: isa.R(3)},            // acc ^= v
			6:  {Op: isa.SLL, Ra: isa.R(4), Imm: 3, UseImm: true, Rc: isa.R(5)},    //
			7:  {Op: isa.STQ, Ra: isa.R(2), Rb: isa.R(5), Imm: 8},                  // p[1] = v<<3
			8:  {Op: isa.AND, Ra: isa.R(5), Imm: 1023, UseImm: true, Rc: isa.R(6)}, //
			9:  {Op: isa.ADD, Ra: isa.R(2), Rb: isa.R(6), Rc: isa.R(2)},            // p += v&1023
			10: {Op: isa.CMPULT, Ra: isa.R(2), Imm: 1 << 20, UseImm: true, Rc: isa.R(7)},
			11: {Op: isa.BNE, Ra: isa.R(7), Imm: int64(base + 13*isa.PCStride)}, // skip reset
			12: {Op: isa.MOVI, Rc: isa.R(2), Imm: int64(isa.DefaultDataBase)},   // p = data
			13: {Op: isa.SUB, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)}, // i--
			14: {Op: isa.BNE, Ra: isa.R(1), Imm: int64(base + 3*isa.PCStride)},  // loop
			15: {Op: isa.OUT, Ra: isa.R(3)},
			16: {Op: isa.HALT},
		},
	}
}

// BenchmarkStep measures the interpreter's per-instruction cost on the
// predecoded dispatch path; BenchmarkStepGeneric is the pre-predecode
// switch interpreter on the same kernel, kept as the before/after reference.
func BenchmarkStep(b *testing.B) {
	benchStep(b, (*Machine).StepInto)
}

func BenchmarkStepGeneric(b *testing.B) {
	benchStep(b, (*Machine).stepGeneric)
}

func benchStep(b *testing.B, step func(*Machine, *Committed) error) {
	m := New(stepKernel(1 << 40)) // never halts within any benchmark run
	var c Committed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(m, &c); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nsPerInst := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(nsPerInst, "ns/inst")
}
