package experiment

// Slot tests: bit-exact continuation through a named slot, fork lineage and
// what-if deltas, and the fork edge cases (fork at the entry segment, fork
// with an invalid config delta — which must fail fingerprint/Expect
// validation, never silently reuse — and double-restore from one slot).

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

const slotInsts = 8_000

// newSlotPipe builds the machine+pipeline pair for a slot run the same way
// the store's restore path does, so continuations are comparable.
func newSlotPipe(t *testing.T, bench string, sc SlotConfig, budget uint64) (*emu.Machine, *pipeline.Pipeline) {
	t.Helper()
	cfg, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	m := emu.New(bm.ProgramFor(budget))
	return m, pipeline.New(&emu.LimitStream{S: m, Budget: budget}, cfg)
}

func openStore(t *testing.T) *SlotStore {
	t.Helper()
	st, err := OpenSlots(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func finishFrom(t *testing.T, p *pipeline.Pipeline) *pipeline.Stats {
	t.Helper()
	p.RunTo(0)
	return p.Finish()
}

// TestSlotContinuationBitExact: saving a paused run into a named slot and
// restoring it yields a continuation with Stats — every counter — and final
// architectural state identical to the same pipeline simply continuing in
// memory.
func TestSlotContinuationBitExact(t *testing.T) {
	for _, base := range []string{"base", "fdrt", "issue4"} {
		base := base
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			st := openStore(t)
			sc := SlotConfig{Base: base}
			half := uint64(slotInsts / 2)

			mA, pA := newSlotPipe(t, "gzip", sc, slotInsts)
			if pA.RunTo(half) {
				t.Fatalf("stream exhausted before the halfway pause (consumed %d)", pA.Consumed())
			}
			meta, err := st.Save(SlotMeta{Name: "pause-" + base, Benchmark: "gzip", Config: sc, Budget: slotInsts}, pA)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Consumed != half || meta.RunFP == "" || meta.CfgFP == "" {
				t.Fatalf("save metadata incomplete: %+v", meta)
			}
			sA := finishFrom(t, pA)

			rmeta, mB, pB, err := st.Restore("pause-" + base)
			if err != nil {
				t.Fatal(err)
			}
			if rmeta.Consumed != half {
				t.Fatalf("restored slot consumed %d, want %d", rmeta.Consumed, half)
			}
			if got := pB.Consumed(); got != half {
				t.Fatalf("restored pipeline consumed %d, want %d", got, half)
			}
			sB := finishFrom(t, pB)

			if !reflect.DeepEqual(sA, sB) {
				aj, _ := json.Marshal(sA)
				bj, _ := json.Marshal(sB)
				t.Errorf("slot continuation diverged\n continued %s\n restored  %s", aj, bj)
			}
			if mA.Mem.Checksum() != mB.Mem.Checksum() {
				t.Errorf("final memory checksums differ")
			}
			if mA.OutHash != mB.OutHash {
				t.Errorf("final OUT hashes differ")
			}
		})
	}
}

// TestSlotDoubleRestore: one slot restores any number of times, and every
// continuation is independent and identical.
func TestSlotDoubleRestore(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "fdrt"}
	_, p := newSlotPipe(t, "mcf", sc, slotInsts)
	p.RunTo(slotInsts / 2)
	if _, err := st.Save(SlotMeta{Name: "twice", Benchmark: "mcf", Config: sc, Budget: slotInsts}, p); err != nil {
		t.Fatal(err)
	}
	_, _, p1, err := st.Restore("twice")
	if err != nil {
		t.Fatal(err)
	}
	_, _, p2, err := st.Restore("twice")
	if err != nil {
		t.Fatalf("second restore from the same slot: %v", err)
	}
	s1 := finishFrom(t, p1)
	s2 := finishFrom(t, p2)
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("double-restored continuations diverged")
	}
}

// TestSlotForkAtEntry: forking a slot saved before any instruction was
// consumed (the entry segment) works and continues identically to a fresh
// uninterrupted run under the forked config.
func TestSlotForkAtEntry(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "base"}
	_, p := newSlotPipe(t, "gzip", sc, slotInsts)
	meta, err := st.Save(SlotMeta{Name: "entry", Benchmark: "gzip", Config: sc, Budget: slotInsts}, p)
	if err != nil {
		t.Fatalf("saving at the entry segment: %v", err)
	}
	if meta.Consumed != 0 {
		t.Fatalf("entry slot consumed %d, want 0", meta.Consumed)
	}
	delta := SlotConfig{Base: "base", Hop: 1}
	fm, err := st.Fork("entry", "entry-hop1", delta)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Parent != "entry" || fm.Consumed != 0 {
		t.Fatalf("fork metadata: %+v", fm)
	}
	_, _, pf, err := st.Restore("entry-hop1")
	if err != nil {
		t.Fatal(err)
	}
	sFork := finishFrom(t, pf)

	_, pRef := newSlotPipe(t, "gzip", delta, slotInsts)
	sRef := finishFrom(t, pRef)
	if !reflect.DeepEqual(sFork, sRef) {
		t.Errorf("entry-segment fork diverged from a fresh run under the same config")
	}
}

// TestSlotForkWhatIf: a latency what-if fork continues from the saved
// boundary and its continuation is bit-identical to pausing an
// uninterrupted run at the same boundary under... the same delta would
// require re-simulating the prefix, so instead assert the fork (a) carries
// lineage + new fingerprints, (b) completes, and (c) actually changes
// timing while retiring the same instruction count.
func TestSlotForkWhatIf(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "fdrt"}
	_, p := newSlotPipe(t, "twolf", sc, slotInsts)
	p.RunTo(slotInsts / 2)
	meta, err := st.Save(SlotMeta{Name: "mid", Benchmark: "twolf", Config: sc, Budget: slotInsts}, p)
	if err != nil {
		t.Fatal(err)
	}
	sBase := finishFrom(t, p)

	delta := SlotConfig{Base: "fdrt", ZeroAllFwd: true}
	fm, err := st.Fork("mid", "mid-zerofwd", delta)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Parent != "mid" || fm.RunFP == meta.RunFP || fm.CfgFP == meta.CfgFP {
		t.Fatalf("fork must re-fingerprint under the delta: parent %+v fork %+v", meta, fm)
	}
	_, _, pf, err := st.Restore("mid-zerofwd")
	if err != nil {
		t.Fatal(err)
	}
	sFork := finishFrom(t, pf)
	if sFork.Retired != sBase.Retired {
		t.Errorf("what-if fork retired %d, base %d — forks must replay the same stream", sFork.Retired, sBase.Retired)
	}
	if sFork.Cycles == sBase.Cycles {
		t.Logf("note: zero-forwarding fork took the same cycle count (%d); unusual but not an error", sFork.Cycles)
	}
}

// TestSlotForkInvalidDelta: a delta that changes restore-relevant geometry
// (the strategy) must fail the snapshot's fingerprint validation with an
// error; a delta whose knobs are inconsistent must fail Resolve; an unknown
// base must fail by name. None of these may leave a destination slot
// behind.
func TestSlotForkInvalidDelta(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "fdrt"}
	_, p := newSlotPipe(t, "gzip", sc, slotInsts)
	p.RunTo(slotInsts / 2)
	if _, err := st.Save(SlotMeta{Name: "seed", Benchmark: "gzip", Config: sc, Budget: slotInsts}, p); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		delta SlotConfig
	}{
		{"strategy-change", SlotConfig{Base: "issue4"}},
		{"inconsistent-knobs", SlotConfig{Base: "fdrt", ZeroAllFwd: true, ZeroCritFwd: true}},
		{"unknown-base", SlotConfig{Base: "warp-speed"}},
	}
	for _, tc := range cases {
		if _, err := st.Fork("seed", "bad-"+tc.name, tc.delta); err == nil {
			t.Errorf("%s: fork succeeded, want fingerprint/validation error", tc.name)
		} else {
			t.Logf("%s: %v", tc.name, err)
		}
		if _, err := st.Inspect("bad-" + tc.name); err == nil {
			t.Errorf("%s: failed fork left a destination slot behind", tc.name)
		}
	}
}

// TestSlotStaleMetadataRefused: a slot whose recorded fingerprints no
// longer reproduce from its own metadata (here: tampered metadata standing
// in for a drifted config registry) is refused by Restore and Fork.
func TestSlotStaleMetadataRefused(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "base"}
	_, p := newSlotPipe(t, "gzip", sc, slotInsts)
	p.RunTo(slotInsts / 2)
	if _, err := st.Save(SlotMeta{Name: "fresh", Benchmark: "gzip", Config: sc, Budget: slotInsts}, p); err != nil {
		t.Fatal(err)
	}
	// Rewrite the slot with a config that no longer matches the recorded
	// fingerprints, as a registry drift would.
	meta, err := st.Inspect("fresh")
	if err != nil {
		t.Fatal(err)
	}
	meta.Config.Hop = 1 // changes the resolved config but not the stored fingerprints
	_, p2 := newSlotPipe(t, "gzip", sc, slotInsts)
	p2.RunTo(slotInsts / 2)
	blob, _ := json.Marshal(meta)
	w := snap.NewWriter()
	w.Begin("slot")
	w.String(string(blob))
	w.End()
	p2.Snapshot(w)
	if err := snap.WriteFile(st.Dir()+"/fresh.slot", w); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Restore("fresh"); err == nil {
		t.Error("restore of a fingerprint-stale slot succeeded, want refusal")
	}
	if _, err := st.Fork("fresh", "fresh-fork", sc); err == nil {
		t.Error("fork of a fingerprint-stale slot succeeded, want refusal")
	}
}

// TestSlotListInspect: listing returns every slot sorted by name with
// fingerprint and segment metadata intact, and names are validated.
func TestSlotListInspect(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "base"}
	for _, name := range []string{"zeta", "alpha"} {
		_, p := newSlotPipe(t, "gzip", sc, slotInsts)
		p.RunTo(slotInsts / 4)
		if _, err := st.Save(SlotMeta{Name: name, Benchmark: "gzip", Config: sc, Budget: slotInsts}, p); err != nil {
			t.Fatal(err)
		}
	}
	slots, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 || slots[0].Name != "alpha" || slots[1].Name != "zeta" {
		t.Fatalf("list: %+v", slots)
	}
	for _, m := range slots {
		if m.RunFP == "" || m.CfgFP == "" || m.Consumed == 0 || m.Segments == 0 {
			t.Errorf("metadata incomplete: %+v", m)
		}
	}
	if _, err := st.Inspect("../escape"); err == nil {
		t.Error("path-escaping slot name accepted")
	}
	if _, err := st.Inspect("nope"); err == nil {
		t.Error("inspect of a missing slot succeeded")
	}
}

// TestSlotForkConcurrentSameDestination: the fork path serializes on a
// per-destination reservation, not a lock held across the restore. Two
// concurrent forks of one destination must resolve to exactly one winner,
// the store must answer List/Inspect while a fork is mid-flight (the
// regression the lockheld analyzer guards: no disk I/O under a store-wide
// mutex), and the reservation must be released when the fork completes.
func TestSlotForkConcurrentSameDestination(t *testing.T) {
	st := openStore(t)
	sc := SlotConfig{Base: "base"}
	_, p := newSlotPipe(t, "gzip", sc, slotInsts)
	if _, err := st.Save(SlotMeta{Name: "src", Benchmark: "gzip", Config: sc, Budget: slotInsts}, p); err != nil {
		t.Fatal(err)
	}

	// Park the first fork right after it reserves the destination, so the
	// second fork and the read probes provably overlap it. A plain CAS (not
	// sync.Once: Do would block the later, independent fork's hook call until
	// the parked winner returns) makes only the first caller wait.
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookFired atomic.Bool
	st.forkHook = func() {
		if hookFired.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	delta := SlotConfig{Base: "base", Hop: 2}
	firstErr := make(chan error, 1)
	go func() {
		_, err := st.Fork("src", "dst", delta)
		firstErr <- err
	}()
	<-entered

	// Loser: same destination while the winner holds the reservation.
	if _, err := st.Fork("src", "dst", delta); err == nil ||
		!strings.Contains(err.Error(), "already being forked") {
		t.Fatalf("concurrent fork of a reserved destination: err = %v, want 'already being forked'", err)
	}

	// The store stays responsive mid-fork: these would deadlock (and time the
	// test out) if a store-wide lock were held across the restore.
	if _, err := st.List(); err != nil {
		t.Fatalf("List during in-flight fork: %v", err)
	}
	if _, err := st.Inspect("src"); err != nil {
		t.Fatalf("Inspect during in-flight fork: %v", err)
	}
	// A fork of the same source to a different destination is independent.
	if _, err := st.Fork("src", "other", SlotConfig{Base: "base", Hop: 3}); err != nil {
		t.Fatalf("fork to a different destination during in-flight fork: %v", err)
	}

	close(release)
	if err := <-firstErr; err != nil {
		t.Fatalf("winning fork: %v", err)
	}

	// Reservation released, destination on disk: a retry is refused by the
	// exists-check (not the reservation), and the fork restores cleanly.
	if _, err := st.Fork("src", "dst", delta); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("re-fork after completion: err = %v, want 'already exists'", err)
	}
	if _, _, _, err := st.Restore("dst"); err != nil {
		t.Fatalf("restoring the forked slot: %v", err)
	}
}
