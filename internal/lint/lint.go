// Package lint is a from-scratch static analysis framework for this module,
// built only on the standard library's go/parser, go/ast and go/types (the
// repo is stdlib-only, so x/tools is off limits). It exists to turn the
// simulator's load-bearing but otherwise unenforced properties — determinism
// of every rendered artifact, the allocation-free cycle-model hot path, the
// absence of wall-clock and unseeded randomness in the timing model, and the
// service tier's lock-region and goroutine-lifecycle contracts — into
// machine-checked rules, the way the differential and golden-stats tests pin
// cycle-exactness.
//
// Analyzers come in two shapes. Expression-level analyzers implement Run and
// are invoked once per matched package. Flow-aware analyzers (lockheld,
// lockorder, goroleak) implement RunModule and are invoked once with every
// package in the load: they build the module-local call graph and the
// per-function CFGs from cfg.go/callgraph.go and reason across package
// boundaries (a lock-order cycle is only visible globally).
//
// Conventions understood by the framework and its analyzers:
//
//   - //ctcp:hotpath on a function declaration marks it as part of the
//     steady-state cycle loop; the hotalloc analyzer checks it and every
//     intra-package function it (transitively) calls for allocating
//     constructs.
//   - //ctcp:coldpath on a function declaration marks a deliberate amortized
//     or warm-up allocation site (pool refill, table growth); hotalloc does
//     not descend into it.
//   - //ctcp:coldlock on a function declaration exempts its lock regions from
//     lockheld: the annotated function's mutex exists to serialize the I/O
//     itself (a dedicated leaf lock), so "blocking under it" is the contract,
//     not a bug.
//   - //ctcp:lint-ok <rule>[,<rule>...] [reason] suppresses the named rules
//     on the comment's own line and on the line immediately below it.
//
// Suppressions and coldlock annotations are audited: Audit reports any that
// no longer exempt a finding, so stale waivers cannot accumulate as the code
// under them changes. Audit findings ("suppressaudit") are themselves not
// suppressable.
//
// The cmd/ctcplint driver loads every package in the module, type-checks it,
// runs the registry returned by All, then runs the audit, and reports
// file:line diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a concrete source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the driver's one-line plain-text form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// suppression is one //ctcp:lint-ok waiver for one rule. The same value is
// registered at the comment's own line and the line below, so a hit on
// either marks it used; the audit reports the ones that never fire.
type suppression struct {
	rule string
	pos  token.Position // the comment itself
	used bool
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("ctcp/internal/pipeline")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// suppressions: filename -> line -> waivers covering that line.
	suppress map[string]map[int][]*suppression

	// coldUsed tracks //ctcp:coldlock annotations that actually exempted a
	// would-be lockheld finding, for the suppression audit.
	coldUsed map[*types.Func]bool
}

func (pkg *Package) markColdlockUsed(fn *types.Func) {
	if pkg.coldUsed == nil {
		pkg.coldUsed = make(map[*types.Func]bool)
	}
	pkg.coldUsed[fn] = true
}

// Analyzer is one named rule. Exactly one of Run (per-package) or RunModule
// (whole-module, for analyses that need the cross-package call graph) is set.
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the analyzer applies to a package path; a nil
	// Match means every package. Module analyzers see every package via
	// ModulePass.Pkgs regardless and apply Match themselves to scope where
	// they report.
	Match     func(pkgPath string) bool
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass is the per-(analyzer, package) run context handed to Analyzer.Run.
type Pass struct {
	Pkg      *Package
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //ctcp:lint-ok suppression
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.Pkg, p.Analyzer.Name, pos, p.diags, format, args...)
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ModulePass is the run context handed to Analyzer.RunModule: every loaded
// package at once, so the analyzer can build cross-package structures.
type ModulePass struct {
	Pkgs     []*Package
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos in pkg unless a //ctcp:lint-ok
// suppression covers it.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	report(pkg, mp.Analyzer.Name, pos, mp.diags, format, args...)
}

func report(pkg *Package, rule string, pos token.Pos, diags *[]Diagnostic, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if pkg.suppressed(position, rule) {
		return
	}
	*diags = append(*diags, Diagnostic{
		Pos:     position,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// suppressOkPrefix introduces a suppression comment.
const suppressOkPrefix = "ctcp:lint-ok"

// buildSuppressions scans every comment in the package once and records, per
// file and line, which rules are suppressed there. A suppression covers the
// comment's own line (trailing-comment form) and the next line (the
// comment-above form); one shared record backs both lines so the audit sees
// a single used/unused bit per waiver.
func (pkg *Package) buildSuppressions() {
	pkg.suppress = make(map[string]map[int][]*suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, suppressOkPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, suppressOkPrefix))
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				m := pkg.suppress[pos.Filename]
				if m == nil {
					m = make(map[int][]*suppression)
					pkg.suppress[pos.Filename] = m
				}
				for _, r := range rules {
					s := &suppression{rule: r, pos: pos}
					m[pos.Line] = append(m[pos.Line], s)
					m[pos.Line+1] = append(m[pos.Line+1], s)
				}
			}
		}
	}
}

func (pkg *Package) suppressed(pos token.Position, rule string) bool {
	for _, s := range pkg.suppress[pos.Filename][pos.Line] {
		if s.rule == rule {
			s.used = true
			return true
		}
	}
	return false
}

// All returns the full analyzer registry in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		HotAlloc,
		NonDet,
		FloatEq,
		ConfigValidate,
		SnapComplete,
		WriteCheck,
		LockHeld,
		LockOrder,
		GoroLeak,
	}
}

// Run executes the given analyzers over the given packages and returns the
// surviving (unsuppressed) diagnostics sorted by position. Per-package
// analyzers run on each matched package; module analyzers run once with the
// whole load.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.suppress == nil {
			pkg.buildSuppressions()
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Analyzer: a, diags: &diags})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Pkgs: pkgs, Analyzer: a, diags: &diags})
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, then rule — the
// stable reporting order used by the driver and the fixture harness.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// AuditRule is the rule name under which stale waivers are reported.
const AuditRule = "suppressaudit"

// Audit reports stale waivers after a Run over the same packages: every
// //ctcp:lint-ok whose rule was among the analyzers that ran but which
// suppressed nothing, and every //ctcp:coldlock annotation that exempted
// nothing (only when lockheld ran). Audit diagnostics are deliberately not
// suppressable — a waiver cannot waive its own staleness.
func Audit(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	lockheldRan := false
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Name == LockHeld.Name {
			lockheldRan = true
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		seen := make(map[*suppression]bool)
		for _, byLine := range pkg.suppress { // map order irrelevant: diagnostics are sorted before return
			for _, ss := range byLine {
				for _, s := range ss {
					if seen[s] || s.used || !ran[s.rule] {
						continue
					}
					seen[s] = true
					diags = append(diags, Diagnostic{
						Pos:     s.pos,
						Rule:    AuditRule,
						Message: fmt.Sprintf("stale suppression: //ctcp:lint-ok %s matches no finding; remove it", s.rule),
					})
				}
			}
		}
		if !lockheldRan {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !funcAnnotated(fd, coldlockMarker) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || pkg.coldUsed[fn] {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(annotationPos(fd, coldlockMarker)),
					Rule:    AuditRule,
					Message: fmt.Sprintf("stale annotation: //ctcp:coldlock on %s exempts nothing (no blocking work under its locks); remove it", fd.Name.Name),
				})
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// pathIn reports whether pkgPath denotes one of the named module-relative
// packages (e.g. "internal/pipeline"), regardless of the module prefix.
func pathIn(pkgPath string, names ...string) bool {
	for _, n := range names {
		if pkgPath == n || strings.HasSuffix(pkgPath, "/"+n) {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether a function declaration's doc comment carries
// the given //ctcp:<marker> line.
func funcAnnotated(d *ast.FuncDecl, marker string) bool {
	return annotationPos(d, marker) != token.NoPos
}

// annotationPos returns the position of the //ctcp:<marker> line in a
// function's doc comment, or token.NoPos.
func annotationPos(d *ast.FuncDecl, marker string) token.Pos {
	if d.Doc == nil {
		return token.NoPos
	}
	for _, c := range d.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if f := strings.Fields(text); len(f) > 0 && f[0] == marker {
			return c.Pos()
		}
	}
	return token.NoPos
}
