package isa

import "ctcp/internal/snap"

// Snapshot serializes the decoded instruction. Inst is a leaf value: it
// writes raw fields with no section of its own, relying on the enclosing
// component section for checksumming.
func (i *Inst) Snapshot(w *snap.Writer) {
	w.U8(uint8(i.Op))
	w.U8(uint8(i.Ra))
	w.U8(uint8(i.Rb))
	w.U8(uint8(i.Rc))
	w.I64(i.Imm)
	w.Bool(i.UseImm)
}

// Restore rebuilds the instruction from r.
func (i *Inst) Restore(r *snap.Reader) {
	i.Op = Op(r.U8())
	i.Ra = Reg(r.U8())
	i.Rb = Reg(r.U8())
	i.Rc = Reg(r.U8())
	i.Imm = r.I64()
	i.UseImm = r.Bool()
}
