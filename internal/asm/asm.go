// Package asm implements a two-pass assembler for TRISC-64 text assembly.
//
// Syntax overview (semicolon or # starts a comment):
//
//	        .text                 ; switch to text segment (default)
//	        .entry  main          ; set the program entry point
//	main:   movi    r1, 100
//	loop:   sub     r1, 1, r1     ; dest is always the last operand
//	        bne     r1, loop
//	        ldq     r2, 8(r3)     ; load:  rc, disp(ra)
//	        stq     r2, 8(r3)     ; store: rb, disp(ra)
//	        jsr     ra, (r4)      ; indirect call, link register first
//	        ret                   ; return via ra
//	        halt
//	        .data
//	tbl:    .quad   1, 2, 3       ; 64-bit values
//	        .long   7             ; 32-bit
//	        .word   7             ; 16-bit
//	        .byte   1, 2          ; 8-bit
//	msg:    .ascii  "hi"          ; raw bytes
//	buf:    .space  64            ; zero-filled
//	        .align  8
//
// Immediate operands accept decimal, 0x hex, character literals ('a'), and
// symbol references (optionally symbol+offset / symbol-offset). Registers are
// r0–r31 and f0–f31 with aliases zero, ra, sp, gp.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ctcp/internal/isa"
)

// Error describes an assembly failure at a specific source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source text into a loadable program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		symbols:  make(map[string]uint64),
		textBase: isa.DefaultTextBase,
		dataBase: isa.DefaultDataBase,
	}
	// Pass 1: sizes and symbol addresses. Pass 2: encoding.
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	entry := a.textBase
	if a.entryName != "" {
		addr, ok := a.symbols[a.entryName]
		if !ok {
			return nil, &Error{a.entryLine, fmt.Sprintf("undefined entry symbol %q", a.entryName)}
		}
		entry = addr
	}
	return &isa.Program{
		TextBase: a.textBase,
		Text:     a.text,
		DataBase: a.dataBase,
		Data:     a.data,
		Entry:    entry,
		Symbols:  a.symbols,
	}, nil
}

type assembler struct {
	textBase, dataBase uint64
	symbols            map[string]uint64
	entryName          string
	entryLine          int

	// pass state
	pass2   bool
	inData  bool
	textLen int // instructions
	dataLen int // bytes
	text    []isa.Inst
	data    []byte
}

func (a *assembler) pass(src string, n int) error {
	a.pass2 = n == 2
	a.inData = false
	a.textLen = 0
	a.dataLen = 0
	if a.pass2 {
		a.text = a.text[:0]
		a.data = a.data[:0]
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Peel off any labels ("name:") at the start of the line.
		for {
			trimmed := strings.TrimSpace(line)
			idx := strings.Index(trimmed, ":")
			if idx <= 0 || !isIdent(trimmed[:idx]) {
				line = trimmed
				break
			}
			if !a.pass2 {
				name := trimmed[:idx]
				if _, dup := a.symbols[name]; dup {
					return &Error{lineNo + 1, fmt.Sprintf("duplicate symbol %q", name)}
				}
				a.symbols[name] = a.here()
			}
			line = trimmed[idx+1:]
		}
		if line == "" {
			continue
		}
		if err := a.statement(line, lineNo+1); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) here() uint64 {
	if a.inData {
		return a.dataBase + uint64(a.dataLen)
	}
	return a.textBase + uint64(a.textLen)*isa.PCStride
}

func stripComment(s string) string {
	// Respect quotes so ".ascii "a;b"" works.
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) statement(line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(strings.SplitN(fields[0], "\t", 2)[0]))
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		rest = strings.TrimSpace(line[sp:])
	}
	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(mnemonic, rest, lineNo)
	}
	if a.inData {
		return &Error{lineNo, "instruction in data segment"}
	}
	return a.instruction(mnemonic, rest, lineNo)
}

func (a *assembler) directive(name, args string, lineNo int) error {
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".entry":
		a.entryName = strings.TrimSpace(args)
		a.entryLine = lineNo
	case ".quad", ".long", ".word", ".byte":
		if !a.inData {
			return &Error{lineNo, name + " outside .data"}
		}
		size := map[string]int{".quad": 8, ".long": 4, ".word": 2, ".byte": 1}[name]
		for _, f := range splitOperands(args) {
			v, err := a.immediate(f, lineNo)
			if err != nil {
				return err
			}
			if a.pass2 {
				for i := 0; i < size; i++ {
					a.data = append(a.data, byte(v))
					v >>= 8
				}
			}
			a.dataLen += size
		}
	case ".ascii", ".asciiz":
		if !a.inData {
			return &Error{lineNo, name + " outside .data"}
		}
		s, err := strconv.Unquote(strings.TrimSpace(args))
		if err != nil {
			return &Error{lineNo, "bad string literal: " + err.Error()}
		}
		if name == ".asciiz" {
			s += "\x00"
		}
		if a.pass2 {
			a.data = append(a.data, s...)
		}
		a.dataLen += len(s)
	case ".space":
		if !a.inData {
			return &Error{lineNo, ".space outside .data"}
		}
		n, err := a.immediate(args, lineNo)
		if err != nil {
			return err
		}
		if n < 0 || n > 1<<28 {
			return &Error{lineNo, "unreasonable .space size"}
		}
		if a.pass2 {
			a.data = append(a.data, make([]byte, n)...)
		}
		a.dataLen += int(n)
	case ".align":
		n, err := a.immediate(args, lineNo)
		if err != nil {
			return err
		}
		if n <= 0 || n&(n-1) != 0 {
			return &Error{lineNo, ".align requires a power of two"}
		}
		if a.inData {
			for uint64(a.dataLen)%uint64(n) != 0 {
				if a.pass2 {
					a.data = append(a.data, 0)
				}
				a.dataLen++
			}
		}
	default:
		return &Error{lineNo, fmt.Sprintf("unknown directive %q", name)}
	}
	return nil
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

var regAliases = map[string]isa.Reg{
	"zero": isa.ZeroReg, "fzero": isa.FZeroReg,
	"ra": isa.RA, "sp": isa.SP, "gp": isa.GP,
}

func parseReg(s string) (isa.Reg, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, false
	}
	switch s[0] {
	case 'r':
		return isa.R(n), true
	case 'f':
		return isa.F(n), true
	}
	return 0, false
}

// immediate evaluates a numeric/symbolic operand. During pass 1 undefined
// symbols evaluate to zero (their sizes do not depend on values); pass 2
// requires every symbol to be defined.
func (a *assembler) immediate(s string, lineNo int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, &Error{lineNo, "missing operand"}
	}
	// Character literal.
	if len(s) >= 3 && s[0] == '\'' {
		u, err := strconv.Unquote(s)
		if err != nil || len(u) != 1 {
			return 0, &Error{lineNo, "bad character literal " + s}
		}
		return int64(u[0]), nil
	}
	// symbol+off / symbol-off (but keep a leading '-' as part of a number).
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			base, err := a.immediate(s[:i], lineNo)
			if err != nil {
				return 0, err
			}
			off, err := a.immediate(s[i+1:], lineNo)
			if err != nil {
				return 0, err
			}
			if s[i] == '-' {
				return base - off, nil
			}
			return base + off, nil
		}
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	if !a.pass2 && isIdent(s) {
		return 0, nil // forward reference, resolved in pass 2
	}
	return 0, &Error{lineNo, fmt.Sprintf("undefined symbol or bad immediate %q", s)}
}

// parseMem parses "disp(reg)" or "(reg)".
func (a *assembler) parseMem(s string, lineNo int) (isa.Reg, int64, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, &Error{lineNo, fmt.Sprintf("bad memory operand %q", s)}
	}
	reg, ok := parseReg(s[open+1 : len(s)-1])
	if !ok {
		return 0, 0, &Error{lineNo, fmt.Sprintf("bad base register in %q", s)}
	}
	disp := int64(0)
	if open > 0 {
		var err error
		disp, err = a.immediate(s[:open], lineNo)
		if err != nil {
			return 0, 0, err
		}
	}
	return reg, disp, nil
}

func (a *assembler) emit(i isa.Inst) {
	if a.pass2 {
		a.text = append(a.text, i.Canon())
	}
	a.textLen++
}

func (a *assembler) instruction(mnemonic, args string, lineNo int) error {
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		// mov rc, ra pseudo-instruction.
		if mnemonic == "mov" {
			ops := splitOperands(args)
			if len(ops) != 2 {
				return &Error{lineNo, "mov needs 2 operands"}
			}
			rc, ok1 := parseReg(ops[0])
			ra, ok2 := parseReg(ops[1])
			if !ok1 || !ok2 {
				return &Error{lineNo, "bad mov operands"}
			}
			a.emit(isa.Inst{Op: isa.OR, Ra: ra, Rb: isa.ZeroReg, Rc: rc})
			return nil
		}
		return &Error{lineNo, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	ops := splitOperands(args)
	fail := func(msg string) error { return &Error{lineNo, msg + " for " + mnemonic} }

	switch op.Class() {
	case isa.ClassNop:
		a.emit(isa.Inst{Op: op})
	case isa.ClassHalt:
		if op == isa.OUT {
			if len(ops) != 1 {
				return fail("need 1 operand")
			}
			r, ok := parseReg(ops[0])
			if !ok {
				return fail("bad register")
			}
			a.emit(isa.Inst{Op: op, Ra: r})
			break
		}
		a.emit(isa.Inst{Op: op})
	case isa.ClassLoad, isa.ClassFPLoad:
		if len(ops) != 2 {
			return fail("need rc, disp(ra)")
		}
		rc, ok := parseReg(ops[0])
		if !ok {
			return fail("bad destination register")
		}
		ra, disp, err := a.parseMem(ops[1], lineNo)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Ra: ra, Rc: rc, Imm: disp, UseImm: true})
	case isa.ClassStore, isa.ClassFPStore:
		if len(ops) != 2 {
			return fail("need rb, disp(ra)")
		}
		rb, ok := parseReg(ops[0])
		if !ok {
			return fail("bad source register")
		}
		ra, disp, err := a.parseMem(ops[1], lineNo)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Imm: disp, UseImm: true})
	case isa.ClassBranch, isa.ClassFPBranch:
		if op == isa.BR {
			switch len(ops) {
			case 1:
				target, err := a.immediate(ops[0], lineNo)
				if err != nil {
					return err
				}
				a.emit(isa.Inst{Op: op, Rc: isa.ZeroReg, Imm: target, UseImm: true})
			case 2:
				rc, ok := parseReg(ops[0])
				if !ok {
					return fail("bad link register")
				}
				target, err := a.immediate(ops[1], lineNo)
				if err != nil {
					return err
				}
				a.emit(isa.Inst{Op: op, Rc: rc, Imm: target, UseImm: true})
			default:
				return fail("need [rc,] target")
			}
			break
		}
		if len(ops) != 2 {
			return fail("need ra, target")
		}
		ra, ok := parseReg(ops[0])
		if !ok {
			return fail("bad condition register")
		}
		target, err := a.immediate(ops[1], lineNo)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Ra: ra, Imm: target, UseImm: true})
	case isa.ClassJump:
		switch op {
		case isa.JSR:
			if len(ops) != 2 {
				return fail("need rc, (rb)")
			}
			rc, ok := parseReg(ops[0])
			if !ok {
				return fail("bad link register")
			}
			rb, _, err := a.parseMem(ops[1], lineNo)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rb: rb, Rc: rc})
		case isa.JMP:
			if len(ops) != 1 {
				return fail("need (rb)")
			}
			rb, _, err := a.parseMem(ops[0], lineNo)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rb: rb})
		case isa.RET:
			rb := isa.RA
			if len(ops) == 1 && ops[0] != "" {
				var err error
				rb, _, err = a.parseMem(ops[0], lineNo)
				if err != nil {
					return err
				}
			}
			a.emit(isa.Inst{Op: op, Rb: rb})
		}
	default: // operate formats
		if op == isa.MOVI {
			if len(ops) != 2 {
				return fail("need rc, imm")
			}
			rc, ok := parseReg(ops[0])
			if !ok {
				return fail("bad destination register")
			}
			imm, err := a.immediate(ops[1], lineNo)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rc: rc, Imm: imm, UseImm: true})
			break
		}
		if isUnaryMnemonic(op) {
			if len(ops) != 2 {
				return fail("need ra, rc")
			}
			ra, ok1 := parseReg(ops[0])
			rc, ok2 := parseReg(ops[1])
			if !ok1 || !ok2 {
				return fail("bad registers")
			}
			a.emit(isa.Inst{Op: op, Ra: ra, Rc: rc})
			break
		}
		if len(ops) != 3 {
			return fail("need ra, rb|imm, rc")
		}
		ra, ok := parseReg(ops[0])
		if !ok {
			return fail("bad first source register")
		}
		rc, ok := parseReg(ops[2])
		if !ok {
			return fail("bad destination register")
		}
		if rb, isReg := parseReg(ops[1]); isReg {
			a.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Rc: rc})
		} else {
			imm, err := a.immediate(ops[1], lineNo)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Ra: ra, Imm: imm, UseImm: true, Rc: rc})
		}
	}
	return nil
}

func isUnaryMnemonic(op isa.Op) bool {
	switch op {
	case isa.SEXTB, isa.SEXTW, isa.ITOF, isa.FTOI, isa.CVTQT, isa.CVTTQ, isa.SQRTT:
		return true
	}
	return false
}

// Disassemble renders a program listing with addresses and symbols.
func Disassemble(p *isa.Program) string {
	var sb strings.Builder
	addrSym := make(map[uint64]string)
	for _, name := range p.SortedSymbols() {
		addrSym[p.Symbols[name]] = name
	}
	for i, inst := range p.Text {
		addr := p.TextBase + uint64(i)*isa.PCStride
		if name, ok := addrSym[addr]; ok {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		fmt.Fprintf(&sb, "  %#08x  %s\n", addr, inst)
	}
	return sb.String()
}
