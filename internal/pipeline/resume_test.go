package pipeline

// Bit-exact resume: a pipeline snapshotted at a drained RunTo boundary and
// restored into a fresh process-equivalent pipeline must finish with Stats
// identical — every counter — to the same pipeline simply continuing in
// memory, and the segmented run itself must match the monolithic Run. This
// is the contract that makes on-disk checkpoints and sampled simulation
// trustworthy: there is no "approximately resumed" state.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

const resumeInsts = 12_000

// newSegPipe builds a machine + budget-limited stream + pipeline for
// segmented execution. The budget lives in an explicit LimitStream (not
// Config.MaxInsts, which Run would wrap internally) so the stream is
// snapshotable alongside the pipeline.
func newSegPipe(t *testing.T, bench string, k core.StrategyKind, budget uint64) (*emu.Machine, *Pipeline) {
	t.Helper()
	bm, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	m := emu.New(bm.ProgramFor(budget))
	cfg := DefaultConfig().WithStrategy(k, false)
	return m, New(&emu.LimitStream{S: m, Budget: budget}, cfg)
}

func resumeKernels() []string { return []string{"gzip", "mcf", "eon", "perlbmk"} }

// TestRunToMatchesRun: a single-segment RunTo(0)+Finish is byte-identical
// to the monolithic Run with the same budget.
func TestRunToMatchesRun(t *testing.T) {
	for _, k := range goldenStrategies() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			bm, _ := workload.ByName("gzip")
			cfg := DefaultConfig().WithStrategy(k, false)
			cfg.MaxInsts = resumeInsts
			full := RunProgram(bm.ProgramFor(resumeInsts), cfg)

			_, p := newSegPipe(t, "gzip", k, resumeInsts)
			if !p.RunTo(0) {
				t.Fatal("RunTo(0) did not exhaust the stream")
			}
			seg := p.Finish()
			if !reflect.DeepEqual(full, seg) {
				fj, _ := json.Marshal(full)
				sj, _ := json.Marshal(seg)
				t.Errorf("segmented run diverged from Run\n run   %s\n runTo %s", fj, sj)
			}
		})
	}
}

// TestSnapshotResumeBitExact: for every kernel and every strategy, snapshot
// at the halfway drained boundary, restore into a fresh machine+pipeline,
// finish both ways, and require identical Stats and identical final memory
// images.
func TestSnapshotResumeBitExact(t *testing.T) {
	for _, bench := range resumeKernels() {
		for _, k := range goldenStrategies() {
			bench, k := bench, k
			t.Run(bench+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				half := uint64(resumeInsts / 2)

				// Continuation A: one pipeline pauses at half, then keeps going.
				mA, pA := newSegPipe(t, bench, k, resumeInsts)
				if pA.RunTo(half) {
					t.Fatalf("stream exhausted before the halfway pause (consumed %d)", pA.Consumed())
				}

				// Snapshot the paused pipeline before continuing it.
				w := snap.NewWriter()
				pA.Snapshot(w)
				data, err := w.Finish()
				if err != nil {
					t.Fatalf("snapshot: %v", err)
				}

				pA.RunTo(0)
				sA := pA.Finish()

				// Continuation B: restore the snapshot into a fresh pipeline.
				mB, pB := newSegPipe(t, bench, k, resumeInsts)
				r, err := snap.NewReader(data)
				if err != nil {
					t.Fatalf("reader: %v", err)
				}
				pB.Restore(r)
				if err := r.Close(); err != nil {
					t.Fatalf("restore: %v", err)
				}
				if got := pB.Consumed(); got != half {
					t.Fatalf("restored pipeline consumed %d, want %d", got, half)
				}
				pB.RunTo(0)
				sB := pB.Finish()

				if !reflect.DeepEqual(sA, sB) {
					aj, _ := json.Marshal(sA)
					bj, _ := json.Marshal(sB)
					t.Errorf("restored continuation diverged\n continued %s\n restored  %s", aj, bj)
				}
				if ca, cb := mA.Mem.Checksum(), mB.Mem.Checksum(); ca != cb {
					t.Errorf("final memory checksums differ: %#x vs %#x", ca, cb)
				}
				if mA.OutHash != mB.OutHash {
					t.Errorf("final OUT hashes differ: %#x vs %#x", mA.OutHash, mB.OutHash)
				}
			})
		}
	}
}

// TestSnapshotDeterministic: the same paused pipeline always encodes to the
// same bytes, and a restore re-encodes to those bytes.
func TestSnapshotDeterministic(t *testing.T) {
	_, p := newSegPipe(t, "gzip", core.FDRT, resumeInsts)
	p.RunTo(resumeInsts / 2)

	enc := func(cp snap.Checkpointable) []byte {
		t.Helper()
		w := snap.NewWriter()
		cp.Snapshot(w)
		data, err := w.Finish()
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		return data
	}
	first := enc(p)
	if second := enc(p); !bytes.Equal(first, second) {
		t.Fatal("two snapshots of the same paused pipeline differ")
	}

	_, q := newSegPipe(t, "gzip", core.FDRT, resumeInsts)
	r, err := snap.NewReader(first)
	if err != nil {
		t.Fatal(err)
	}
	q.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if reenc := enc(q); !bytes.Equal(first, reenc) {
		t.Fatal("restored pipeline re-encodes differently")
	}
}

// TestSnapshotRejectsUndrained: snapshotting outside a drained boundary
// must fail loudly, never encode a half-consistent machine.
func TestSnapshotRejectsUndrained(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	m := emu.New(bm.ProgramFor(resumeInsts))
	cfg := DefaultConfig().WithStrategy(core.Base, false)
	p := New(&emu.LimitStream{S: m, Budget: resumeInsts}, cfg)
	// Hand-crank a few hundred cycles so instructions are in flight.
	for i := 0; i < 300; i++ {
		if p.cycle() {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
	}
	if p.rob.len() == 0 {
		t.Fatal("test setup: expected in-flight instructions after 300 cycles")
	}
	w := snap.NewWriter()
	p.Snapshot(w)
	if _, err := w.Finish(); err == nil {
		t.Fatal("Snapshot of an undrained pipeline succeeded")
	}
}

// TestResumeFreshProcess re-executes the test binary: the parent snapshots
// at the halfway boundary and writes the checkpoint to disk; a child
// process (same binary, helper test selected by environment) restores it,
// finishes the run, and reports its Stats as JSON; the parent requires them
// identical to its own in-memory continuation. This is the end-to-end
// property the experiment runner's -resume path depends on.
func TestResumeFreshProcess(t *testing.T) {
	if os.Getenv("CTCP_RESUME_CHILD") != "" {
		t.Skip("helper invocation")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "half.ckpt")
	out := filepath.Join(dir, "stats.json")

	_, p := newSegPipe(t, "mcf", core.FDRT, resumeInsts)
	if p.RunTo(resumeInsts / 2) {
		t.Fatal("stream exhausted before the halfway pause")
	}
	w := snap.NewWriter()
	p.Snapshot(w)
	if err := snap.WriteFile(ckpt, w); err != nil {
		t.Fatalf("writing checkpoint: %v", err)
	}
	p.RunTo(0)
	want := p.Finish()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestResumeChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CTCP_RESUME_CHILD=1",
		"CTCP_RESUME_CKPT="+ckpt,
		"CTCP_RESUME_OUT="+out,
	)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child process failed: %v\n%s", err, msg)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading child stats: %v", err)
	}
	var got Stats
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("parsing child stats: %v", err)
	}
	if !reflect.DeepEqual(*want, got) {
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		t.Errorf("fresh-process resume diverged\n parent %s\n child  %s", wj, gj)
	}
}

// TestResumeChild is the helper body for TestResumeFreshProcess; it only
// runs when re-executed with CTCP_RESUME_CHILD set.
func TestResumeChild(t *testing.T) {
	if os.Getenv("CTCP_RESUME_CHILD") == "" {
		t.Skip("helper: only runs under TestResumeFreshProcess")
	}
	_, p := newSegPipe(t, "mcf", core.FDRT, resumeInsts)
	r, err := snap.ReadFile(os.Getenv("CTCP_RESUME_CKPT"))
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	p.Restore(r)
	if err := r.Close(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	p.RunTo(0)
	buf, err := json.Marshal(p.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("CTCP_RESUME_OUT"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
