// Fixture for the goroleak analyzer: loaded by lint_test.go under the
// ctcp/internal/serve import path. Marked lines must diagnose; every other
// line must stay silent.
package fixture

import (
	"sync"
	"time"
)

type server struct {
	done chan struct{}
	jobs chan int
	wg   sync.WaitGroup
	n    int
}

// A fire-and-forget goroutine with no lifecycle signal leaks past Shutdown.
func (s *server) leak() {
	go func() { // want:goroleak
		s.n++
	}()
}

// WaitGroup join (the canonical defer form) passes.
func (s *server) okWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.n++
	}()
}

// Done-channel select passes.
func (s *server) okSelect() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case j := <-s.jobs:
				s.n += j
			}
		}
	}()
}

// Draining a channel until close passes.
func (s *server) okRange() {
	go func() {
		for j := range s.jobs {
			s.n += j
		}
	}()
}

// A named module function whose body has a join signal passes...
func (s *server) okNamed() {
	go s.run()
}

func (s *server) run() {
	<-s.done
}

// ...including transitively through module calls.
func (s *server) okDeep() {
	go s.outer()
}

func (s *server) outer() { s.inner() }

func (s *server) inner() {
	select {
	case <-s.done:
	case j := <-s.jobs:
		s.n += j
	}
}

// A named module function with no signal is a leak at the launch site.
func (s *server) leakNamed() {
	go s.spin() // want:goroleak
}

func (s *server) spin() { s.n++ }

// A dynamic target cannot be verified.
func (s *server) leakDynamic(fn func()) {
	go fn() // want:goroleak
}

// Neither can a target outside the module.
func (s *server) leakExternal() {
	go time.Sleep(time.Second) // want:goroleak
}

// The outer goroutine's select does not vouch for a nested launch.
func (s *server) leakNested() {
	go func() {
		go func() { // want:goroleak
			s.n++
		}()
		<-s.done
	}()
}

// Suppression works for a documented exception.
func (s *server) suppressedDynamic(fn func()) {
	go fn() //ctcp:lint-ok goroleak -- fixture: caller contract guarantees fn selects on done
}
