; conformance: AND/OR/XOR/ANDNOT bit manipulation with a short mixing loop.
        .entry main
main:   movi    r1, 0x1234
        movi    r2, 0xff00
        and     r1, r2, r3
        or      r1, r2, r4
        xor     r1, r2, r5
        andnot  r4, r3, r6
        movi    r7, 0           ; checksum
        movi    r8, 8           ; loop counter
mix:    xor     r7, r3, r7
        sll     r3, 1, r3
        or      r3, 1, r3
        and     r3, 0xffff, r3
        andnot  r7, r5, r9
        add     r7, r9, r7
        sub     r8, 1, r8
        bgt     r8, mix
        out     r7
        out     r4
        out     r6
        halt
