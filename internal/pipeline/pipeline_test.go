package pipeline

import (
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/prog"
)

// loopProgram builds a simple counted loop with a dependent chain and a few
// memory operations per iteration.
func loopProgram(iters int64) *isa.Program {
	b := prog.New()
	b.Space("buf", 4096)
	b.MoviAddr(isa.R(1), "buf")
	b.Movi(isa.R(2), iters)
	b.Movi(isa.R(3), 0) // accumulator
	b.Label("loop")
	b.Load(isa.LDQ, isa.R(4), isa.R(1), 0)
	b.Op3(isa.ADD, isa.R(4), isa.R(3), isa.R(5))
	b.OpI(isa.XOR, isa.R(5), 0x55, isa.R(6))
	b.OpI(isa.SLL, isa.R(6), 1, isa.R(7))
	b.Op3(isa.ADD, isa.R(7), isa.R(5), isa.R(3))
	b.Store(isa.STQ, isa.R(3), isa.R(1), 8)
	b.OpI(isa.ADD, isa.R(1), 16, isa.R(1))
	b.OpI(isa.AND, isa.R(1), 0xFFF|int64(isa.DefaultDataBase), isa.R(1))
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Out(isa.R(3))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func runStats(t *testing.T, cfg Config, iters int64) *Stats {
	t.Helper()
	return RunProgram(loopProgram(iters), cfg)
}

func TestRunAllStrategiesCompleteAndAgreeOnWork(t *testing.T) {
	var retired uint64
	for _, k := range []core.StrategyKind{core.Base, core.IssueTime, core.Friendly,
		core.FriendlyMiddle, core.FDRT, core.FDRTNoPin} {
		cfg := DefaultConfig().WithStrategy(k, false)
		s := runStats(t, cfg, 500)
		if s.Retired == 0 || s.Cycles == 0 {
			t.Fatalf("%v: no progress (retired=%d cycles=%d)", k, s.Retired, s.Cycles)
		}
		if retired == 0 {
			retired = s.Retired
		} else if s.Retired != retired {
			t.Errorf("%v retired %d instructions, others %d", k, s.Retired, retired)
		}
		if s.IPC() <= 0 || s.IPC() > float64(cfg.Geom.TotalWidth()) {
			t.Errorf("%v: implausible IPC %.2f", k, s.IPC())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	a := runStats(t, cfg, 300)
	b := runStats(t, cfg, 300)
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.CritForwarded != b.CritForwarded {
		t.Errorf("nondeterministic: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

func TestZeroForwardingIsFaster(t *testing.T) {
	base := runStats(t, DefaultConfig(), 800)
	zf := DefaultConfig()
	zf.ZeroAllFwdLat = true
	fast := runStats(t, zf, 800)
	if fast.Cycles >= base.Cycles {
		t.Errorf("zero forwarding latency not faster: %d vs %d cycles", fast.Cycles, base.Cycles)
	}
}

func TestZeroCritAtLeastAsFastAsBaseAndSlowerThanZeroAll(t *testing.T) {
	base := runStats(t, DefaultConfig(), 800)
	zc := DefaultConfig()
	zc.ZeroCritFwdLat = true
	crit := runStats(t, zc, 800)
	if crit.Cycles > base.Cycles {
		t.Errorf("zero-critical-forward slower than base: %d vs %d", crit.Cycles, base.Cycles)
	}
}

func TestTraceCacheSuppliesHotLoop(t *testing.T) {
	s := runStats(t, DefaultConfig(), 1000)
	if s.PctFromTC() < 0.8 {
		t.Errorf("hot loop %%TC = %.2f, want > 0.8", s.PctFromTC())
	}
	if s.AvgTraceSize() <= 4 {
		t.Errorf("avg trace size %.1f implausibly small", s.AvgTraceSize())
	}
}

func TestMaxInstsBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 100
	s := runStats(t, cfg, 100000)
	if s.Retired != 100 {
		t.Errorf("budgeted run retired %d, want 100", s.Retired)
	}
}

func TestStatConservation(t *testing.T) {
	s := runStats(t, DefaultConfig().WithStrategy(core.FDRT, false), 500)
	if s.RetiredFromTC > s.Retired {
		t.Error("TC-retired exceeds retired")
	}
	if s.CritFromRF+s.CritFromRS1+s.CritFromRS2 != s.WithInputs {
		t.Errorf("critical-source breakdown %d+%d+%d != %d",
			s.CritFromRF, s.CritFromRS1, s.CritFromRS2, s.WithInputs)
	}
	if s.CritForwarded != s.CritFromRS1+s.CritFromRS2 {
		t.Errorf("forwarded critical %d != RS1+RS2 %d",
			s.CritForwarded, s.CritFromRS1+s.CritFromRS2)
	}
	if s.CritIntraCluster > s.CritForwarded || s.CritInterTrace > s.CritForwarded {
		t.Error("critical forwarding subsets exceed total")
	}
	if s.Fill.InstsBuilt != s.Retired {
		t.Errorf("fill unit saw %d instructions, retired %d", s.Fill.InstsBuilt, s.Retired)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	// Data-dependent branch pattern the predictor cannot learn: branch on a
	// pseudo-random bit from an LCG.
	b := prog.New()
	b.Movi(isa.R(1), 12345) // lcg state
	b.Movi(isa.R(2), 2000)  // iterations
	b.Movi(isa.R(3), 0)
	b.Label("loop")
	b.OpI(isa.MUL, isa.R(1), 1103515245, isa.R(1))
	b.OpI(isa.ADD, isa.R(1), 12345, isa.R(1))
	b.OpI(isa.SRL, isa.R(1), 16, isa.R(4))
	b.OpI(isa.AND, isa.R(4), 1, isa.R(4))
	b.Branch(isa.BEQ, isa.R(4), "skip")
	b.OpI(isa.ADD, isa.R(3), 1, isa.R(3))
	b.Label("skip")
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := RunProgram(p, DefaultConfig())
	if s.MispredictRate() < 0.05 {
		t.Errorf("random branch mispredict rate %.3f suspiciously low", s.MispredictRate())
	}
	if s.IPC() > 4 {
		t.Errorf("IPC %.2f too high for mispredict-bound code", s.IPC())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	b := prog.New()
	b.Space("buf", 64)
	b.MoviAddr(isa.R(1), "buf")
	b.Movi(isa.R(2), 500)
	b.Label("loop")
	b.Store(isa.STQ, isa.R(2), isa.R(1), 0)
	b.Load(isa.LDQ, isa.R(3), isa.R(1), 0) // same address: must forward
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := RunProgram(p, DefaultConfig())
	if s.StoreForwards == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestIssueTimeLatencyHurtsRefill(t *testing.T) {
	// With a hard-to-predict branch stream, 4 steer stages must cost cycles
	// relative to 0 steer stages.
	mk := func(ideal bool) *Stats {
		b := prog.New()
		b.Movi(isa.R(1), 99991)
		b.Movi(isa.R(2), 1500)
		b.Label("loop")
		b.OpI(isa.MUL, isa.R(1), 6364136223846793005>>32, isa.R(1))
		b.OpI(isa.ADD, isa.R(1), 1442695040888963407>>32, isa.R(1))
		b.OpI(isa.SRL, isa.R(1), 13, isa.R(4))
		b.OpI(isa.AND, isa.R(4), 1, isa.R(4))
		b.Branch(isa.BEQ, isa.R(4), "even")
		b.OpI(isa.ADD, isa.R(3), 3, isa.R(3))
		b.Label("even")
		b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
		b.Branch(isa.BNE, isa.R(2), "loop")
		b.Halt()
		p, err := b.Build()
		if err != nil {
			panic(err)
		}
		return RunProgram(p, DefaultConfig().WithStrategy(core.IssueTime, ideal))
	}
	ideal, real := mk(true), mk(false)
	if real.Cycles <= ideal.Cycles {
		t.Errorf("4-cycle steering not slower: %d vs %d cycles", real.Cycles, ideal.Cycles)
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	// Long-latency loads back up the window; the ROB-full stall counter
	// must fire rather than the window growing.
	b := prog.New()
	b.Space("big", 1<<20)
	b.MoviAddr(isa.R(1), "big")
	b.Movi(isa.R(2), 3000)
	b.Movi(isa.R(5), 0)
	b.Label("loop")
	b.Load(isa.LDQ, isa.R(3), isa.R(1), 0)
	b.Op3(isa.ADD, isa.R(5), isa.R(3), isa.R(5))
	b.OpI(isa.ADD, isa.R(1), 64, isa.R(1))
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := RunProgram(p, DefaultConfig())
	if s.ROBFullStalls == 0 {
		t.Log("note: no ROB-full stalls observed (window never filled)")
	}
	if s.Retired != 3000*5+4 {
		t.Errorf("retired %d", s.Retired)
	}
}

func TestSliceStreamPipeline(t *testing.T) {
	// Direct stream injection: two independent adds then halt.
	recs := []emu.Committed{
		{Seq: 0, PC: 0x1000, Inst: isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 1}, NextPC: 0x1004},
		{Seq: 1, PC: 0x1004, Inst: isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 2}, NextPC: 0x1008},
		{Seq: 2, PC: 0x1008, Inst: isa.Inst{Op: isa.ADD, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)}, NextPC: 0x100c},
		{Seq: 3, PC: 0x100c, Inst: isa.Inst{Op: isa.HALT}, NextPC: 0x100c},
	}
	p := New(&emu.SliceStream{Recs: recs}, DefaultConfig())
	s := p.Run()
	if s.Retired != 4 {
		t.Errorf("retired %d, want 4", s.Retired)
	}
	if s.Cycles < int64(DefaultConfig().FetchStages) {
		t.Errorf("cycles %d below fetch depth", s.Cycles)
	}
}
