module ctcp

go 1.22
