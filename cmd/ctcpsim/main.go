// Command ctcpsim runs one benchmark through the clustered trace cache
// processor model and prints a statistics summary, or manages named
// save-state slots (mid-flight checkpoints that can be resumed bit-exactly
// or forked into what-if configurations).
//
// Usage:
//
//	ctcpsim -list
//	ctcpsim -bench gzip -strategy fdrt -insts 500000
//	ctcpsim -bench twolf -strategy issue-time -steer 4 -topology ring -hop 1
//	ctcpsim -save-slot warm -bench gzip -config fdrt -insts 500000 -save-at 250000
//	ctcpsim -list-slots
//	ctcpsim -inspect-slot warm
//	ctcpsim -resume-slot warm
//	ctcpsim -fork-slot warm -as warm-hop1 -fork-base fdrt -fork-hop 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/experiment"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// strategyNames renders the canonical strategy list for flag usage and error
// messages, so the tool cannot drift from core.Strategies.
func strategyNames() string {
	names := make([]string, 0, len(core.Strategies()))
	for _, k := range core.Strategies() {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctcpsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		bench    = flag.String("bench", "gzip", "benchmark name")
		strategy = flag.String("strategy", "base", "assignment strategy: "+strategyNames())
		steer    = flag.Int("steer", 4, "issue-time steering latency in cycles (issue-time only)")
		insts    = flag.Uint64("insts", 300_000, "committed instruction budget")
		topology = flag.String("topology", "chain", "inter-cluster interconnect: chain or ring")
		hop      = flag.Int("hop", 2, "inter-cluster forwarding latency per hop")
		clusters = flag.Int("clusters", 4, "number of clusters")
		ptrace   = flag.Int("pipetrace", 0, "print a per-cycle occupancy trace of the first N active cycles")

		slotDir  = flag.String("slot-dir", "slots", "directory holding named save-state slots")
		saveSlot = flag.String("save-slot", "", "run -bench under -config, pause at -save-at, and save into this slot")
		saveAt   = flag.Uint64("save-at", 0, "committed-instruction boundary to pause and save at (default budget/2)")
		config   = flag.String("config", "base", "named experiment config for -save-slot (see internal/experiment StrategyConfigs)")
		listSl   = flag.Bool("list-slots", false, "list saved slots and exit")
		inspect  = flag.String("inspect-slot", "", "print one slot's metadata and exit")
		resume   = flag.String("resume-slot", "", "restore this slot and run it to completion")
		forkSlot = flag.String("fork-slot", "", "fork this slot into -as under a what-if config delta")
		forkAs   = flag.String("as", "", "destination slot name for -fork-slot")

		forkBase  = flag.String("fork-base", "", "fork delta: base config name (default: source slot's base)")
		forkHop   = flag.Int("fork-hop", 0, "fork delta: override inter-cluster hop latency when > 0")
		forkZAll  = flag.Bool("fork-zero-all", false, "fork delta: zero all forwarding latency")
		forkZCrit = flag.Bool("fork-zero-crit", false, "fork delta: zero critical-input forwarding latency")
		forkZIn   = flag.Bool("fork-zero-intra", false, "fork delta: zero intra-trace forwarding latency")
		forkZOut  = flag.Bool("fork-zero-inter", false, "fork delta: zero inter-trace forwarding latency")
	)
	flag.Parse()

	if *list {
		fmt.Println("SPEC CPU2000 integer analogs:")
		for _, bm := range workload.SPECint() {
			sel := " "
			if bm.Selected {
				sel = "*"
			}
			fmt.Printf("  %s %-10s %s\n", sel, bm.Name, bm.Description)
		}
		fmt.Println("MediaBench analogs:")
		for _, bm := range workload.MediaBench() {
			fmt.Printf("    %-10s %s\n", bm.Name, bm.Description)
		}
		fmt.Println("(* = the six forwarding-sensitive benchmarks the paper selects)")
		return
	}

	switch {
	case *saveSlot != "":
		runSaveSlot(*slotDir, *saveSlot, *bench, *config, *insts, *saveAt)
		return
	case *listSl:
		runListSlots(*slotDir)
		return
	case *inspect != "":
		runInspectSlot(*slotDir, *inspect)
		return
	case *resume != "":
		runResumeSlot(*slotDir, *resume)
		return
	case *forkSlot != "":
		delta := experiment.SlotConfig{
			Base:           *forkBase,
			Hop:            *forkHop,
			ZeroAllFwd:     *forkZAll,
			ZeroCritFwd:    *forkZCrit,
			ZeroIntraTrace: *forkZIn,
			ZeroInterTrace: *forkZOut,
		}
		runForkSlot(*slotDir, *forkSlot, *forkAs, delta)
		return
	}

	bm, ok := workload.ByName(*bench)
	if !ok {
		fatalf("unknown benchmark %q (try -list)", *bench)
	}

	kinds := map[string]core.StrategyKind{}
	for _, k := range core.Strategies() {
		kinds[k.String()] = k
	}
	kind, ok := kinds[*strategy]
	if !ok {
		fatalf("unknown strategy %q (one of: %s)", *strategy, strategyNames())
	}

	cfg := pipeline.DefaultConfig().WithStrategy(kind, *steer == 0)
	if kind.SteersAtIssue() {
		cfg.SteerStages = *steer
	}
	switch *topology {
	case "chain":
		cfg.Geom.Topology = cluster.Chain
	case "ring":
		cfg.Geom.Topology = cluster.Ring
	default:
		fatalf("unknown topology %q", *topology)
	}
	cfg.Geom.HopLat = *hop
	cfg.Geom.Clusters = *clusters
	cfg.MaxInsts = *insts

	fmt.Printf("benchmark  %s (%s)\n", bm.Name, bm.Description)
	fmt.Printf("strategy   %v  topology=%v hop=%d clusters=%d budget=%d\n",
		kind, cfg.Geom.Topology, cfg.Geom.HopLat, cfg.Geom.Clusters, *insts)

	cfg.TraceCycles = *ptrace
	s := pipeline.RunProgram(bm.ProgramFor(*insts), cfg)

	for _, line := range s.PipeTrace {
		fmt.Println(line)
	}
	printStats(s, kind)
}

// printStats renders the summary block shared by plain runs and slot resumes.
func printStats(s *pipeline.Stats, kind core.StrategyKind) {
	fmt.Printf("\ncycles               %d\n", s.Cycles)
	fmt.Printf("retired              %d (IPC %.3f)\n", s.Retired, s.IPC())
	fmt.Printf("from trace cache     %.1f%%  (avg trace size %.1f, TC hit rate %.1f%%)\n",
		100*s.PctFromTC(), s.AvgTraceSize(), 100*s.TC.HitRate())
	fmt.Printf("cond branches        %d (mispredict %.2f%%)\n", s.CondBranches, 100*s.MispredictRate())
	fmt.Printf("indirect mispredicts %d\n", s.IndirectMiss)
	fmt.Printf("loads/stores         %d/%d (store->load forwards %d)\n", s.Loads, s.Stores, s.StoreForwards)
	fmt.Printf("critical inputs      %.1f%% forwarded, %.1f%% of those inter-trace\n",
		100*s.CritFwdFrac(), 100*s.CritInterTraceFrac())
	fmt.Printf("forwarding locality  %.1f%% intra-cluster, mean distance %.3f hops\n",
		100*s.IntraClusterFrac(), s.AvgFwdDistance())
	if kind.UsesChains() {
		fmt.Printf("cluster chains       %d leaders, %d followers; migration %.2f%% (chain %.2f%%)\n",
			s.Fill.LeadersCreated, s.Fill.FollowersCreated,
			100*s.Fill.MigrationRate(), 100*s.Fill.ChainMigrationRate())
		fmt.Printf("fdrt options         A=%d B=%d C=%d D=%d E=%d skipped=%d\n",
			s.Fill.OptionA, s.Fill.OptionB, s.Fill.OptionC, s.Fill.OptionD, s.Fill.OptionE, s.Fill.Skipped)
	}
}

func openSlots(dir string) *experiment.SlotStore {
	st, err := experiment.OpenSlots(dir)
	if err != nil {
		fatalf("%v", err)
	}
	return st
}

// runSaveSlot simulates bench under the named config, pauses at the
// requested drained boundary, and freezes the run into a named slot.
func runSaveSlot(dir, name, bench, config string, budget, at uint64) {
	if at == 0 {
		at = budget / 2
	}
	if at >= budget {
		fatalf("-save-at %d must be below the budget %d", at, budget)
	}
	sc := experiment.SlotConfig{Base: config}
	cfg, err := sc.Resolve()
	if err != nil {
		fatalf("%v", err)
	}
	bm, ok := workload.ByName(bench)
	if !ok {
		fatalf("unknown benchmark %q (try -list)", bench)
	}
	cfg.MaxInsts = 0
	m := emu.New(bm.ProgramFor(budget))
	p := pipeline.New(&emu.LimitStream{S: m, Budget: budget}, cfg)
	if p.RunTo(at) {
		fatalf("stream exhausted at %d committed instructions, before the save point %d", p.Consumed(), at)
	}
	st := openSlots(dir)
	meta, err := st.Save(experiment.SlotMeta{Name: name, Benchmark: bench, Config: sc, Budget: budget}, p)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("saved slot %q: %s/%s at %d/%d insts (cycle %d)\n",
		meta.Name, meta.Benchmark, meta.Config.Base, meta.Consumed, meta.Budget, meta.Cycle)
	fmt.Printf("fingerprints: run=%s config=%s\n", meta.RunFP, meta.CfgFP)
}

func slotLine(m experiment.SlotMeta) string {
	lineage := ""
	if m.Parent != "" {
		lineage = " parent=" + m.Parent
	}
	return fmt.Sprintf("%-20s %-8s %-12s %9d/%-9d cycle=%-9d seg=%d run=%s cfg=%s%s",
		m.Name, m.Benchmark, m.Config.Base, m.Consumed, m.Budget, m.Cycle, m.Segments, m.RunFP, m.CfgFP, lineage)
}

func runListSlots(dir string) {
	st := openSlots(dir)
	slots, err := st.List()
	if err != nil {
		fatalf("%v", err)
	}
	if len(slots) == 0 {
		fmt.Printf("no slots in %s\n", st.Dir())
		return
	}
	for _, m := range slots {
		fmt.Println(slotLine(m))
	}
}

func runInspectSlot(dir, name string) {
	st := openSlots(dir)
	m, err := st.Inspect(name)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("slot        %s\n", m.Name)
	fmt.Printf("benchmark   %s\n", m.Benchmark)
	fmt.Printf("config      base=%s hop=%d zeroAll=%v zeroCrit=%v zeroIntra=%v zeroInter=%v\n",
		m.Config.Base, m.Config.Hop, m.Config.ZeroAllFwd, m.Config.ZeroCritFwd, m.Config.ZeroIntraTrace, m.Config.ZeroInterTrace)
	fmt.Printf("progress    %d/%d insts at cycle %d (segment %d)\n", m.Consumed, m.Budget, m.Cycle, m.Segments)
	if m.Parent != "" {
		fmt.Printf("parent      %s\n", m.Parent)
	}
	fmt.Printf("run fp      %s\n", m.RunFP)
	fmt.Printf("config fp   %s\n", m.CfgFP)
}

func runResumeSlot(dir, name string) {
	st := openSlots(dir)
	meta, _, p, err := st.Restore(name)
	if err != nil {
		fatalf("%v", err)
	}
	cfg, err := meta.Config.Resolve()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("resuming slot %q: %s/%s from %d/%d insts (cycle %d)\n",
		meta.Name, meta.Benchmark, meta.Config.Base, meta.Consumed, meta.Budget, meta.Cycle)
	p.RunTo(0)
	printStats(p.Finish(), cfg.Strategy)
}

func runForkSlot(dir, src, dst string, delta experiment.SlotConfig) {
	if dst == "" {
		fatalf("-fork-slot requires -as DST")
	}
	st := openSlots(dir)
	if delta.Base == "" {
		srcMeta, err := st.Inspect(src)
		if err != nil {
			fatalf("%v", err)
		}
		delta.Base = srcMeta.Config.Base
	}
	meta, err := st.Fork(src, dst, delta)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("forked %q -> %q at %d/%d insts\n", src, meta.Name, meta.Consumed, meta.Budget)
	fmt.Println(slotLine(meta))
}
