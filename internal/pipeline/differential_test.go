package pipeline

// Differential test: the timing model must be a pure replay of the
// functional emulator. For every workload kernel we execute the program on a
// standalone emu.Machine and through the full pipeline (which drives its own
// emulator instance), then require
//
//   - the committed-instruction stream consumed by the pipeline to be
//     byte-identical to the standalone run,
//   - the pipeline to retire exactly that stream, in program order, with
//     contiguous sequence numbers (any reordering or dropped/duplicated
//     retirement in the hot path shows up here), and
//   - identical final architectural state: register file, OUT checksum, and
//     a full memory checksum.

import (
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/workload"
)

// recordingStream tees every committed record handed to the pipeline.
type recordingStream struct {
	src  emu.Stream
	recs []emu.Committed
}

func (r *recordingStream) Next() (emu.Committed, bool) {
	c, ok := r.src.Next()
	if ok {
		r.recs = append(r.recs, c)
	}
	return c, ok
}

// referenceRun executes p to architectural completion on a bare machine.
func referenceRun(t *testing.T, p *isa.Program) (*emu.Machine, []emu.Committed) {
	t.Helper()
	m := emu.New(p)
	var recs []emu.Committed
	for {
		c, ok := m.Next()
		if !ok {
			break
		}
		recs = append(recs, c)
		if len(recs) > 50_000_000 {
			t.Fatal("reference run did not halt")
		}
	}
	if err := m.Err(); err != nil {
		t.Fatalf("reference run faulted: %v", err)
	}
	return m, recs
}

func TestDifferentialAllKernels(t *testing.T) {
	cfgs := map[string]Config{
		"base":      DefaultConfig().WithStrategy(core.Base, false),
		"issuetime": DefaultConfig().WithStrategy(core.IssueTime, false),
		"fdrt":      DefaultConfig().WithStrategy(core.FDRT, false),
	}
	for _, bm := range workload.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			prog := bm.Build(1)
			ref, wantRecs := referenceRun(t, prog)
			for name, cfg := range cfgs {
				pm := emu.New(prog)
				tee := &recordingStream{src: pm}
				var retired []core.RetireInfo
				cfg.RetireHook = func(info core.RetireInfo) {
					retired = append(retired, info)
				}
				stats := New(tee, cfg).Run()

				if len(tee.recs) != len(wantRecs) {
					t.Fatalf("%s: pipeline consumed %d records, reference committed %d",
						name, len(tee.recs), len(wantRecs))
				}
				for i := range wantRecs {
					if tee.recs[i] != wantRecs[i] {
						t.Fatalf("%s: committed record %d diverged:\n pipeline  %+v\n reference %+v",
							name, i, tee.recs[i], wantRecs[i])
					}
				}
				if stats.Retired != uint64(len(wantRecs)) {
					t.Fatalf("%s: retired %d of %d committed instructions",
						name, stats.Retired, len(wantRecs))
				}
				if len(retired) != len(wantRecs) {
					t.Fatalf("%s: retire hook saw %d instructions, want %d",
						name, len(retired), len(wantRecs))
				}
				for i, info := range retired {
					if info.Rec.Seq != uint64(i) {
						t.Fatalf("%s: retirement %d has seq %d (out of order)", name, i, info.Rec.Seq)
					}
					if info.Rec.PC != wantRecs[i].PC {
						t.Fatalf("%s: retirement %d at pc %#x, reference %#x",
							name, i, info.Rec.PC, wantRecs[i].PC)
					}
				}
				if pm.Regs != ref.Regs {
					t.Fatalf("%s: final register files diverge", name)
				}
				if pm.OutHash != ref.OutHash {
					t.Fatalf("%s: OUT checksum %#x != reference %#x", name, pm.OutHash, ref.OutHash)
				}
				if got, want := pm.Mem.Checksum(), ref.Mem.Checksum(); got != want {
					t.Fatalf("%s: memory checksum %#x != reference %#x", name, got, want)
				}
			}
		})
	}
}
