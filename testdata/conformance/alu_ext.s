; conformance: SEXTB/SEXTW sign extension of byte and word patterns.
        .entry main
main:   movi    r1, 0x1ff
        sextb   r1, r2          ; 0xff -> -1
        movi    r3, 0x18000
        sextw   r3, r4          ; 0x8000 -> -32768
        movi    r5, 0x7f
        sextb   r5, r6          ; stays 127
        movi    r7, 0x17fff
        sextw   r7, r8          ; stays 32767
        sub     r2, r4, r9
        add     r9, r6, r9
        add     r9, r8, r9
        out     r9
        out     r2
        halt
