package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal import paths are resolved against the
// module root on disk, everything else is delegated to the source importer
// (which reads the standard library from GOROOT/src). There is no x/tools
// dependency and no invocation of the go command.
type Loader struct {
	Fset *token.FileSet

	module string // module path from go.mod
	root   string // module root directory
	std    types.Importer

	pkgs map[string]*Package // by import path
}

// NewLoader builds a Loader for the module rooted at dir (the directory
// containing go.mod). Pass "" to search upward from the working directory.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		module: module,
		root:   root,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
	}, nil
}

// Module returns the module path ("ctcp").
func (l *Loader) Module() string { return l.module }

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// findModule locates go.mod at or above dir and parses its module line.
func findModule(dir string) (root, module string, err error) {
	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
	}
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found")
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load from disk,
// "unsafe" maps to types.Unsafe, and everything else (the standard library)
// goes through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(importPath, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (memoized).
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle guard
	pkg, err := l.check(l.dirFor(importPath), importPath)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// check parses every non-test .go file in dir and type-checks the result
// under the given import path.
func (l *Loader) check(dir, importPath string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goSources lists the buildable non-test .go files in dir, sorted. Build
// constraints are honored with the default build context (so of a
// `//go:build race` / `//go:build !race` pair only the non-race file loads,
// matching what an unistrumented `go build` would compile).
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule walks the module tree and loads every package in it (any
// directory holding at least one non-test .go file), skipping testdata and
// hidden directories. Packages come back sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			rel, err := filepath.Rel(l.root, filepath.Dir(path))
			if err != nil {
				return err
			}
			importPath := l.module
			if rel != "." {
				importPath = l.module + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, importPath)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupe(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDirAs parses and type-checks a single directory under a caller-chosen
// import path. Analyzer tests use it to load fixture packages as if they
// lived at the paths the analyzers scope to.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	pkg, err := l.check(dir, importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
