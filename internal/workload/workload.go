package workload

import (
	"fmt"
	"sync"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/prog"
)

// Benchmark is one synthetic analog of a paper workload.
type Benchmark struct {
	Name  string
	Suite string // "spec" or "media"
	// Selected marks the six forwarding-sensitive SPECint programs the
	// paper studies in depth (§5.1).
	Selected    bool
	Description string
	// Build constructs the program with the given outer-iteration count;
	// larger scales run longer without changing steady-state behaviour.
	Build func(scale int64) *isa.Program
}

// bench assembles the common program skeleton: data preparation, register
// initialization, an outer loop emitting each kernel body once, and the
// final checksum.
func bench(seed uint64, data func(b *prog.Builder, r *rng), body func(b *prog.Builder)) func(int64) *isa.Program {
	return func(scale int64) *isa.Program {
		if scale < 1 {
			scale = 1
		}
		b := prog.New()
		r := newRNG(seed)
		data(b, r)
		b.Movi(isa.R(6), 0) // checksum
		b.Movi(isa.R(20), int64(seed&0x7FFFFFFF)|1)
		b.Movi(isa.R(1), scale)
		b.Label("outer")
		body(b)
		b.OpI(isa.SUB, isa.R(1), 1, isa.R(1))
		b.Branch(isa.BNE, isa.R(1), "outer")
		b.Out(isa.R(6))
		b.Halt()
		p, err := b.Build()
		if err != nil {
			panic(fmt.Sprintf("workload: building benchmark: %v", err))
		}
		return p
	}
}

// SPECint returns the 12 SPEC CPU2000 integer analogs.
func SPECint() []Benchmark {
	return []Benchmark{
		{
			Name: "bzip2", Suite: "spec", Selected: true,
			Description: "block compression: run coding, move-to-front, match search",
			Build: bench(0xB21B, func(b *prog.Builder, r *rng) {
				b.Bytes("buf", runnyBytes(r, 16384))
				tab := make([]byte, 64)
				for i := range tab {
					tab[i] = byte(i)
				}
				b.Bytes("mtftab", tab)
			}, func(b *prog.Builder) {
				emitRLE(b, "buf", 1024)
				emitMTF(b, "mtftab", "buf", 192)
				emitLZMatch(b, "buf", 48, 8191, 64, 24)
				emitFNV(b, "buf", 256, 1, 3)
			}),
		},
		{
			Name: "gzip", Suite: "spec", Selected: true,
			Description: "LZ77 compression: hash-chain match search and entropy coding",
			Build: bench(0x6219, func(b *prog.Builder, r *rng) {
				b.Bytes("win", runnyBytes(r, 32768))
				b.Bytes("bits", randBytes(r, 2048))
				b.Space("outbuf", 4096)
			}, func(b *prog.Builder) {
				emitLZMatch(b, "win", 128, 16383, 96, 32)
				emitFNV(b, "win", 256, 1, 3)
				emitBitUnpack(b, "bits", 48)
				emitMemcpy(b, "win", "outbuf", 512)
				emitRLE(b, "win", 512)
			}),
		},
		{
			Name: "gcc", Suite: "spec",
			Description: "compiler: symbol-table search, switch dispatch, list walks",
			Build: bench(0x6CC0, func(b *prog.Builder, r *rng) {
				b.Bytes("symtab", sortedQuads(r, 4096))
				b.Bytes("ops", smallBytes(r, 4096, 8))
				placeList(b, r, "nodes", 2048)
				b.Bytes("src", textBytes(r, 4096))
				b.Space("irbuf", 2048)
			}, func(b *prog.Builder) {
				emitTreeSearch(b, "symtab", 4096, 48)
				emitDispatch(b, "ops", 256)
				emitPointerChase(b, "nodes_head", "nodes_head2", 256)
				emitTokenize(b, "src", 512)
				emitMemcpy(b, "src", "irbuf", 256)
			}),
		},
		{
			Name: "mcf", Suite: "spec",
			Description: "network simplex: pointer chasing over a large arc set",
			Build: bench(0x3CF1, func(b *prog.Builder, r *rng) {
				placeList(b, r, "arcs", 16384) // 256 KB: misses the L1
				b.Bytes("costs", randQuads(r, 2048, 0xFFFF))
			}, func(b *prog.Builder) {
				emitPointerChase(b, "arcs_head", "arcs_head2", 512)
				emitSum(b, "costs", 512)
				emitWavelet(b, "costs", 256)
			}),
		},
		{
			Name: "crafty", Suite: "spec",
			Description: "chess: bitboard manipulation, popcount, evaluation tables",
			Build: bench(0xC4AF, func(b *prog.Builder, r *rng) {
				b.Bytes("boards", randQuads(r, 1024, ^uint64(0)))
				b.Bytes("evals", sortedQuads(r, 1024))
				b.Space("undo", 2048)
			}, func(b *prog.Builder) {
				emitBitMangle(b, 256, 3)
				emitPopcount(b, "boards", 96)
				emitTreeSearch(b, "evals", 1024, 32)
				emitSum(b, "boards", 256)
				emitMemcpy(b, "boards", "undo", 256)
			}),
		},
		{
			Name: "parser", Suite: "spec",
			Description: "link grammar parser: tokenizing and dictionary search",
			Build: bench(0xAA51, func(b *prog.Builder, r *rng) {
				b.Bytes("text", textBytes(r, 8192))
				b.Bytes("dict", sortedQuads(r, 2048))
				b.Space("tokbuf", 1024)
			}, func(b *prog.Builder) {
				emitTokenize(b, "text", 1024)
				emitTreeSearch(b, "dict", 2048, 48)
				emitFNV(b, "text", 128, 1, 3)
				emitCallLeaf(b, 96)
				emitMemcpy(b, "text", "tokbuf", 256)
			}),
		},
		{
			Name: "eon", Suite: "spec", Selected: true,
			Description: "probabilistic ray tracer: FP intersection and shading math",
			Build: bench(0xE0E0, func(b *prog.Builder, r *rng) {
				b.Bytes("spheres", randDoubles(r, 1024, 0.0, 2.2))
				b.Bytes("signal", randDoubles(r, 256, 1.0, 1.0))
				b.Bytes("coef", randDoubles(r, 16, 0.0, 0.25))
				b.Space("shade", 512)
				blk := randDoubles(r, 8, 1.0, 1.0)
				blk = append(blk, doubleBytes([]float64{0.49})...)
				b.Bytes("dctblk", blk)
			}, func(b *prog.Builder) {
				emitRaySphere(b, "spheres", 96, 511)
				emitFIR(b, "signal", "coef", "shade", 24, 8)
				emitDCT8(b, "dctblk", 12)
			}),
		},
		{
			Name: "perlbmk", Suite: "spec", Selected: true,
			Description: "perl interpreter: bytecode dispatch, hashing, subroutine calls",
			Build: bench(0x9E71, func(b *prog.Builder, r *rng) {
				b.Bytes("code", smallBytes(r, 8192, 8))
				b.Bytes("keys", textBytes(r, 2048))
				b.Bytes("srcbuf", randBytes(r, 1024))
				b.Space("dstbuf", 1024)
			}, func(b *prog.Builder) {
				emitDispatch(b, "code", 512)
				emitFNV(b, "keys", 128, 1, 3)
				emitCallLeaf(b, 128)
				emitMemcpy(b, "srcbuf", "dstbuf", 512)
			}),
		},
		{
			Name: "gap", Suite: "spec",
			Description: "computational group theory: multiprecision arithmetic",
			Build: bench(0x6A90, func(b *prog.Builder, r *rng) {
				b.Bytes("biga", randQuads(r, 512, ^uint64(0)))
				b.Bytes("bigb", randQuads(r, 512, ^uint64(0)))
				b.Bytes("vec", randQuads(r, 1024, 0xFFFFF))
			}, func(b *prog.Builder) {
				emitBignum(b, "biga", "bigb", 192)
				emitSum(b, "vec", 512)
				emitBitMangle(b, 128, 2)
			}),
		},
		{
			Name: "vortex", Suite: "spec",
			Description: "object database: hashing, index search, object copies",
			Build: bench(0x0B7E, func(b *prog.Builder, r *rng) {
				b.Bytes("objs", randBytes(r, 8192))
				b.Space("store", 8192)
				b.Bytes("index", sortedQuads(r, 4096))
			}, func(b *prog.Builder) {
				emitFNV(b, "objs", 192, 1, 4)
				emitMemcpy(b, "objs", "store", 1024)
				emitTreeSearch(b, "index", 4096, 64)
			}),
		},
		{
			Name: "twolf", Suite: "spec", Selected: true,
			Description: "standard-cell placement: simulated annealing swap evaluation",
			Build: bench(0x2701, func(b *prog.Builder, r *rng) {
				b.Bytes("cells", randQuads(r, 4096, 0xFFFF))
				b.Bytes("wires", randQuads(r, 1024, 0xFFF))
				b.Bytes("net", sortedQuads(r, 1024))
			}, func(b *prog.Builder) {
				emitAnneal(b, "cells", 160, 4095)
				emitSum(b, "wires", 256)
				emitTreeSearch(b, "net", 1024, 32)
			}),
		},
		{
			Name: "vpr", Suite: "spec", Selected: true,
			Description: "FPGA place & route: maze-router grid costs and placement swaps",
			Build: bench(0x0F9A, func(b *prog.Builder, r *rng) {
				b.Bytes("grid", randQuads(r, 64*64, 0xFFFF))
				b.Bytes("blocks", randQuads(r, 2048, 0xFFFF))
			}, func(b *prog.Builder) {
				emitGridCost(b, "grid", 256, 62)
				emitAnneal(b, "blocks", 128, 2047)
				emitSum(b, "grid", 256)
			}),
		},
	}
}

// MediaBench returns the 14 MediaBench analogs used in the paper's Figure 9
// (the four-cluster set of Parcerisa et al.).
func MediaBench() []Benchmark {
	mk := func(name, desc string, seed uint64, data func(*prog.Builder, *rng), body func(*prog.Builder)) Benchmark {
		return Benchmark{Name: name, Suite: "media", Description: desc, Build: bench(seed, data, body)}
	}
	audioData := func(b *prog.Builder, r *rng) {
		b.Bytes("pcm", sampleBytes(r, 8192))
		b.Bytes("steps", quadBytes(stepTable()))
		b.Bytes("vals", randQuads(r, 2048, 0xFFFF))
		b.Space("rec", 16384)
	}
	fpData := func(b *prog.Builder, r *rng) {
		b.Bytes("sig", randDoubles(r, 512, 1.0, 1.0))
		b.Bytes("coef", randDoubles(r, 16, 0.0, 0.25))
		blk := randDoubles(r, 8, 1.0, 1.0)
		blk = append(blk, doubleBytes([]float64{0.49})...)
		b.Bytes("dctblk", blk)
		b.Bytes("bits", randBytes(r, 4096))
		b.Bytes("img", randQuads(r, 4096, 0xFF))
	}
	return []Benchmark{
		mk("adpcm_enc", "IMA ADPCM speech encoder", 0xAD01, audioData, func(b *prog.Builder) {
			emitADPCM(b, "pcm", "steps", "rec", 768)
			emitSum(b, "vals", 128)
		}),
		mk("adpcm_dec", "IMA ADPCM speech decoder", 0xAD02, func(b *prog.Builder, r *rng) {
			b.Bytes("pcm", sampleBytes(r, 8192))
			b.Bytes("steps", quadBytes(stepTable()))
			b.Bytes("bits", randBytes(r, 2048))
			b.Space("rec", 16384)
		}, func(b *prog.Builder) {
			emitADPCM(b, "pcm", "steps", "rec", 512)
			emitBitUnpack(b, "bits", 96)
		}),
		mk("epic", "wavelet image compression", 0xE41C, fpData, func(b *prog.Builder) {
			emitWavelet(b, "img", 1024)
			emitQuantize(b, "img", 384)
			emitBitUnpack(b, "bits", 48)
		}),
		mk("unepic", "wavelet image decompression", 0xE41D, fpData, func(b *prog.Builder) {
			emitBitUnpack(b, "bits", 128)
			emitWavelet(b, "img", 768)
		}),
		mk("g721_enc", "G.721 voice encoder", 0x6721, func(b *prog.Builder, r *rng) {
			b.Bytes("pcm", sampleBytes(r, 4096))
			b.Bytes("steps", quadBytes(stepTable()))
			b.Bytes("lvls", randQuads(r, 2048, 0xFFFF))
			b.Bytes("sig", randDoubles(r, 256, 1.0, 1.0))
			b.Bytes("coef", randDoubles(r, 8, 0.0, 0.25))
			b.Space("firout", 512)
			b.Space("rec", 8192)
		}, func(b *prog.Builder) {
			emitQuantize(b, "lvls", 512)
			emitFIR(b, "sig", "coef", "firout", 24, 4)
			emitADPCM(b, "pcm", "steps", "rec", 192)
		}),
		mk("g721_dec", "G.721 voice decoder", 0x6722, func(b *prog.Builder, r *rng) {
			b.Bytes("lvls", randQuads(r, 2048, 0xFFFF))
			b.Bytes("sig", randDoubles(r, 256, 1.0, 1.0))
			b.Bytes("coef", randDoubles(r, 8, 0.0, 0.25))
			b.Bytes("bits", randBytes(r, 1024))
			b.Space("firout", 512)
		}, func(b *prog.Builder) {
			emitFIR(b, "sig", "coef", "firout", 32, 4)
			emitQuantize(b, "lvls", 384)
			emitBitUnpack(b, "bits", 48)
		}),
		mk("gsm_enc", "GSM full-rate speech encoder", 0x6511, func(b *prog.Builder, r *rng) {
			b.Bytes("sig", randDoubles(r, 512, 1.0, 1.0))
			b.Bytes("coef", randDoubles(r, 16, 0.0, 0.25))
			b.Bytes("frameA", randBytes(r, 2048))
			b.Bytes("frameB", randBytes(r, 2048))
			b.Bytes("acc", randQuads(r, 1024, 0xFFFF))
			b.Space("firout", 512)
		}, func(b *prog.Builder) {
			emitFIR(b, "sig", "coef", "firout", 48, 8)
			emitSAD(b, "frameA", "frameB", 512)
			emitSum(b, "acc", 256)
		}),
		mk("gsm_dec", "GSM full-rate speech decoder", 0x6512, func(b *prog.Builder, r *rng) {
			b.Bytes("sig", randDoubles(r, 512, 1.0, 1.0))
			b.Bytes("coef", randDoubles(r, 16, 0.0, 0.25))
			b.Bytes("hist", randQuads(r, 2048, 0xFFFF))
			b.Space("firout", 512)
		}, func(b *prog.Builder) {
			emitFIR(b, "sig", "coef", "firout", 48, 8)
			emitWavelet(b, "hist", 512)
		}),
		mk("jpeg_enc", "JPEG image encoder", 0x19E6, fpData, func(b *prog.Builder) {
			emitDCT8(b, "dctblk", 24)
			emitQuantize(b, "img", 384)
			emitFNV(b, "bits", 96, 1, 3)
		}),
		mk("jpeg_dec", "JPEG image decoder", 0x19E7, func(b *prog.Builder, r *rng) {
			blk := randDoubles(r, 8, 1.0, 1.0)
			blk = append(blk, doubleBytes([]float64{0.49})...)
			b.Bytes("dctblk", blk)
			b.Bytes("bits", randBytes(r, 4096))
			b.Bytes("row", randBytes(r, 2048))
			b.Space("frame", 2048)
		}, func(b *prog.Builder) {
			emitBitUnpack(b, "bits", 96)
			emitDCT8(b, "dctblk", 24)
			emitMemcpy(b, "row", "frame", 512)
		}),
		mk("mpeg2_enc", "MPEG-2 video encoder", 0x37E6, func(b *prog.Builder, r *rng) {
			b.Bytes("ref", randBytes(r, 8192))
			b.Bytes("cur", randBytes(r, 8192))
			blk := randDoubles(r, 8, 1.0, 1.0)
			blk = append(blk, doubleBytes([]float64{0.49})...)
			b.Bytes("dctblk", blk)
			b.Bytes("lvls", randQuads(r, 1024, 0xFFFF))
		}, func(b *prog.Builder) {
			emitSAD(b, "ref", "cur", 1024)
			emitDCT8(b, "dctblk", 8)
			emitQuantize(b, "lvls", 128)
		}),
		mk("mpeg2_dec", "MPEG-2 video decoder", 0x37E7, func(b *prog.Builder, r *rng) {
			blk := randDoubles(r, 8, 1.0, 1.0)
			blk = append(blk, doubleBytes([]float64{0.49})...)
			b.Bytes("dctblk", blk)
			b.Bytes("mv", randBytes(r, 4096))
			b.Space("frame", 4096)
			b.Bytes("bits", randBytes(r, 2048))
		}, func(b *prog.Builder) {
			emitDCT8(b, "dctblk", 16)
			emitMemcpy(b, "mv", "frame", 1024)
			emitBitUnpack(b, "bits", 48)
		}),
		mk("pegwit_enc", "elliptic-curve public-key encryption", 0x9E61, func(b *prog.Builder, r *rng) {
			b.Bytes("biga", randQuads(r, 512, ^uint64(0)))
			b.Bytes("bigb", randQuads(r, 512, ^uint64(0)))
			b.Bytes("msg", randBytes(r, 2048))
		}, func(b *prog.Builder) {
			emitBignum(b, "biga", "bigb", 256)
			emitBitMangle(b, 192, 3)
			emitFNV(b, "msg", 96, 1, 3)
		}),
		mk("pegwit_dec", "elliptic-curve public-key decryption", 0x9E62, func(b *prog.Builder, r *rng) {
			b.Bytes("biga", randQuads(r, 512, ^uint64(0)))
			b.Bytes("bigb", randQuads(r, 512, ^uint64(0)))
			b.Bytes("ctA", randBytes(r, 2048))
			b.Bytes("ctB", randBytes(r, 2048))
		}, func(b *prog.Builder) {
			emitBignum(b, "biga", "bigb", 256)
			emitSAD(b, "ctA", "ctB", 384)
		}),
	}
}

// All returns the full 26-program suite.
func All() []Benchmark {
	return append(SPECint(), MediaBench()...)
}

// Selected returns the six forwarding-sensitive SPECint programs analyzed
// in depth by the paper (bzip2, eon, gzip, perlbmk, twolf, vpr).
func Selected() []Benchmark {
	var out []Benchmark
	for _, bm := range SPECint() {
		if bm.Selected {
			out = append(out, bm)
		}
	}
	return out
}

// ByName looks up a benchmark across both suites.
func ByName(name string) (Benchmark, bool) {
	for _, bm := range All() {
		if bm.Name == name {
			return bm, true
		}
	}
	return Benchmark{}, false
}

// progCache memoizes ProgramFor results: experiment sweeps run the same
// benchmark under many configurations.
var progCache sync.Map // key string -> *isa.Program

// ProgramFor builds the benchmark scaled so that a full architectural run
// commits at least minInsts instructions. It calibrates the per-iteration
// instruction count with two short functional runs.
func (bm Benchmark) ProgramFor(minInsts uint64) *isa.Program {
	key := fmt.Sprintf("%s/%d", bm.Name, minInsts)
	if v, ok := progCache.Load(key); ok {
		return v.(*isa.Program)
	}
	one := instCount(bm.Build(1))
	three := instCount(bm.Build(3))
	perIter := (three - one) / 2
	if perIter == 0 {
		perIter = 1
	}
	init := int64(one) - int64(perIter)
	if init < 0 {
		init = 0
	}
	scale := int64(1)
	if minInsts > uint64(init) {
		scale = (int64(minInsts) - init + int64(perIter) - 1) / int64(perIter)
	}
	if scale < 1 {
		scale = 1
	}
	p := bm.Build(scale)
	progCache.Store(key, p)
	return p
}

func instCount(p *isa.Program) uint64 {
	m := emu.New(p)
	n, err := m.Run(0)
	if err != nil {
		panic(fmt.Sprintf("workload: calibration run faulted: %v", err))
	}
	return n
}

// Checksum runs the benchmark functionally at the given scale and returns
// its OUT checksum (self-check for tests and docs).
func (bm Benchmark) Checksum(scale int64) uint64 {
	m := emu.New(bm.Build(scale))
	if _, err := m.Run(0); err != nil {
		panic(fmt.Sprintf("workload: %s faulted: %v", bm.Name, err))
	}
	return m.OutHash
}
