// Command ctcpsim runs one benchmark through the clustered trace cache
// processor model and prints a statistics summary.
//
// Usage:
//
//	ctcpsim -list
//	ctcpsim -bench gzip -strategy fdrt -insts 500000
//	ctcpsim -bench twolf -strategy issue-time -steer 4 -topology ring -hop 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// strategyNames renders the canonical strategy list for flag usage and error
// messages, so the tool cannot drift from core.Strategies.
func strategyNames() string {
	names := make([]string, 0, len(core.Strategies()))
	for _, k := range core.Strategies() {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		bench    = flag.String("bench", "gzip", "benchmark name")
		strategy = flag.String("strategy", "base", "assignment strategy: "+strategyNames())
		steer    = flag.Int("steer", 4, "issue-time steering latency in cycles (issue-time only)")
		insts    = flag.Uint64("insts", 300_000, "committed instruction budget")
		topology = flag.String("topology", "chain", "inter-cluster interconnect: chain or ring")
		hop      = flag.Int("hop", 2, "inter-cluster forwarding latency per hop")
		clusters = flag.Int("clusters", 4, "number of clusters")
		ptrace   = flag.Int("pipetrace", 0, "print a per-cycle occupancy trace of the first N active cycles")
	)
	flag.Parse()

	if *list {
		fmt.Println("SPEC CPU2000 integer analogs:")
		for _, bm := range workload.SPECint() {
			sel := " "
			if bm.Selected {
				sel = "*"
			}
			fmt.Printf("  %s %-10s %s\n", sel, bm.Name, bm.Description)
		}
		fmt.Println("MediaBench analogs:")
		for _, bm := range workload.MediaBench() {
			fmt.Printf("    %-10s %s\n", bm.Name, bm.Description)
		}
		fmt.Println("(* = the six forwarding-sensitive benchmarks the paper selects)")
		return
	}

	bm, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "ctcpsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(1)
	}

	kinds := map[string]core.StrategyKind{}
	for _, k := range core.Strategies() {
		kinds[k.String()] = k
	}
	kind, ok := kinds[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "ctcpsim: unknown strategy %q (one of: %s)\n", *strategy, strategyNames())
		os.Exit(1)
	}

	cfg := pipeline.DefaultConfig().WithStrategy(kind, *steer == 0)
	if kind.SteersAtIssue() {
		cfg.SteerStages = *steer
	}
	switch *topology {
	case "chain":
		cfg.Geom.Topology = cluster.Chain
	case "ring":
		cfg.Geom.Topology = cluster.Ring
	default:
		fmt.Fprintf(os.Stderr, "ctcpsim: unknown topology %q\n", *topology)
		os.Exit(1)
	}
	cfg.Geom.HopLat = *hop
	cfg.Geom.Clusters = *clusters
	cfg.MaxInsts = *insts

	fmt.Printf("benchmark  %s (%s)\n", bm.Name, bm.Description)
	fmt.Printf("strategy   %v  topology=%v hop=%d clusters=%d budget=%d\n",
		kind, cfg.Geom.Topology, cfg.Geom.HopLat, cfg.Geom.Clusters, *insts)

	cfg.TraceCycles = *ptrace
	s := pipeline.RunProgram(bm.ProgramFor(*insts), cfg)

	for _, line := range s.PipeTrace {
		fmt.Println(line)
	}

	fmt.Printf("\ncycles               %d\n", s.Cycles)
	fmt.Printf("retired              %d (IPC %.3f)\n", s.Retired, s.IPC())
	fmt.Printf("from trace cache     %.1f%%  (avg trace size %.1f, TC hit rate %.1f%%)\n",
		100*s.PctFromTC(), s.AvgTraceSize(), 100*s.TC.HitRate())
	fmt.Printf("cond branches        %d (mispredict %.2f%%)\n", s.CondBranches, 100*s.MispredictRate())
	fmt.Printf("indirect mispredicts %d\n", s.IndirectMiss)
	fmt.Printf("loads/stores         %d/%d (store->load forwards %d)\n", s.Loads, s.Stores, s.StoreForwards)
	fmt.Printf("critical inputs      %.1f%% forwarded, %.1f%% of those inter-trace\n",
		100*s.CritFwdFrac(), 100*s.CritInterTraceFrac())
	fmt.Printf("forwarding locality  %.1f%% intra-cluster, mean distance %.3f hops\n",
		100*s.IntraClusterFrac(), s.AvgFwdDistance())
	if kind.UsesChains() {
		fmt.Printf("cluster chains       %d leaders, %d followers; migration %.2f%% (chain %.2f%%)\n",
			s.Fill.LeadersCreated, s.Fill.FollowersCreated,
			100*s.Fill.MigrationRate(), 100*s.Fill.ChainMigrationRate())
		fmt.Printf("fdrt options         A=%d B=%d C=%d D=%d E=%d skipped=%d\n",
			s.Fill.OptionA, s.Fill.OptionB, s.Fill.OptionC, s.Fill.OptionD, s.Fill.OptionE, s.Fill.Skipped)
	}
}
