// Fixture for the configvalidate analyzer: Config has a Validate method, so
// every exported field must be referenced in the Validate path — by a real
// check, an explicit `_ = c.Field` audit, or transitively through a helper.
package fixture

import "errors"

type Config struct {
	ROBSize    int   // validated directly
	FetchWidth int   // validated in a helper reached from Validate
	MaxInsts   int64 // audited explicitly: no invariant to enforce
	Forgotten  int   // want:configvalidate
	internal   int   // unexported fields are not the analyzer's business
}

func (c Config) Validate() error {
	if c.ROBSize <= 0 {
		return errors.New("ROBSize must be positive")
	}
	_ = c.MaxInsts
	return c.validateFetch()
}

func (c Config) validateFetch() error {
	if c.FetchWidth <= 0 {
		return errors.New("FetchWidth must be positive")
	}
	_ = c.internal
	return nil
}
