package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

const (
	ckptBudget = uint64(20_000)
	ckptEvery  = uint64(5_000)
)

// segmentedReference runs gzip/base in memory with the same segment
// schedule the checkpointed runner uses (pauses at every multiple of
// ckptEvery), which is the bit-exact baseline a resumed run must match.
func segmentedReference(t *testing.T) *pipeline.Stats {
	t.Helper()
	bm, _ := workload.ByName("gzip")
	cfg := BaseConfig()
	cfg.MaxInsts = 0
	p := pipeline.New(&emu.LimitStream{S: emu.New(bm.ProgramFor(ckptBudget)), Budget: ckptBudget}, cfg)
	for next := ckptEvery; ; next += ckptEvery {
		if next > ckptBudget {
			next = ckptBudget
		}
		if p.RunTo(next) || p.Consumed() >= ckptBudget {
			break
		}
	}
	return p.Finish()
}

// TestCheckpointedRunMatchesSegmented: a checkpointed run writes its
// journal, removes its checkpoint, matches the in-memory segmented
// reference exactly, and a second runner over the same directory returns
// the identical stats straight from the journal.
func TestCheckpointedRunMatchesSegmented(t *testing.T) {
	dir := t.TempDir()
	want := segmentedReference(t)
	bm, _ := workload.ByName("gzip")

	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		t.Errorf("checkpointed run diverged from segmented reference\n want %s\n got  %s", wj, gj)
	}

	donePath := filepath.Join(dir, "gzip_base.done.json")
	if _, err := os.Stat(donePath); err != nil {
		t.Fatalf("stats journal missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gzip_base.ckpt")); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion (err=%v)", err)
	}

	// A fresh runner resumes from the journal without resimulating: hook
	// the default path so any real simulation would be visible.
	r2 := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got2, err := r2.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Error("journal-resumed stats differ from the original run")
	}
}

// TestCheckpointedResumeFromPlantedCheckpoint simulates an interrupted
// sweep: the first segment's checkpoint is on disk (written through the
// public Snapshot path) with no journal, and the runner must pick it up
// and finish bit-identically to the uninterrupted segmented run.
func TestCheckpointedResumeFromPlantedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := segmentedReference(t)
	bm, _ := workload.ByName("gzip")

	cfg := BaseConfig()
	cfg.MaxInsts = 0
	p := pipeline.New(&emu.LimitStream{S: emu.New(bm.ProgramFor(ckptBudget)), Budget: ckptBudget}, cfg)
	if p.RunTo(ckptEvery) {
		t.Fatal("stream exhausted during the first segment")
	}
	w := snap.NewWriter()
	p.Snapshot(w)
	if err := snap.WriteFile(filepath.Join(dir, "gzip_base.ckpt"), w); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		t.Errorf("resumed run diverged from uninterrupted segmented run\n want %s\n got  %s", wj, gj)
	}
}

// TestCheckpointedCorruptCheckpointRestarts: an undecodable checkpoint is
// discarded and the run completes from scratch instead of failing.
func TestCheckpointedCorruptCheckpointRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gzip_base.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	bm, _ := workload.ByName("gzip")
	r := NewRunner(Options{Budget: ckptBudget, CheckpointDir: dir, CheckpointEvery: ckptEvery})
	got, err := r.RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := segmentedReference(t); !reflect.DeepEqual(want, got) {
		t.Error("restarted run diverged from segmented reference")
	}
}

// TestSampledRunnerDeterministic: the sampled runner path is reproducible
// and reports the estimate over the full budget.
func TestSampledRunnerDeterministic(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	opts := Options{Budget: ckptBudget, SampleInterval: 5_000, SampleDetail: 2_000, SampleWarmup: 1_000, SampleWorkers: 4}
	a, err := NewRunner(opts).RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(opts).RunErr(bm, "base", BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two sampled runner executions differ")
	}
	if a.Retired != ckptBudget {
		t.Errorf("sampled stats cover %d insts, want %d", a.Retired, ckptBudget)
	}
	if a.Cycles == 0 {
		t.Error("sampled estimate has zero cycles")
	}
}

// TestSampledAndCheckpointedExclusive: configuring both modes is a per-run
// error, not a silent precedence choice.
func TestSampledAndCheckpointedExclusive(t *testing.T) {
	bm, _ := workload.ByName("gzip")
	r := NewRunner(Options{Budget: 1_000, SampleInterval: 500, CheckpointDir: t.TempDir()})
	if _, err := r.RunErr(bm, "base", BaseConfig()); err == nil {
		t.Fatal("mutually exclusive modes accepted")
	}
}
