; conformance: FP load/store, raw-bit moves between the register files, and
; an FP constant preinitialized in .data.
        .entry main
main:   movi    r10, fbuf
        movi    r1, 5
        cvtqt   r1, f1          ; 5.0
        stt     f1, 0(r10)
        ldt     f2, 0(r10)
        addt    f2, f1, f3      ; 10.0
        stt     f3, 8(r10)
        ldt     f4, 8(r10)
        ftoi    f4, r2          ; raw bits of 10.0
        itof    r2, f5          ; and back
        cvttq   f5, r3          ; 10
        ldt     f6, 16(r10)     ; 25.0 constant from .data
        cvttq   f6, r4
        add     r3, r4, r3
        out     r3
        out     r2
        halt
        .data
fbuf:   .space  16
        .quad   0x4039000000000000
