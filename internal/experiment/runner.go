// Package experiment regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the index). Each experiment function
// returns a typed result with the measured values plus the paper's reported
// numbers for side-by-side comparison, and renders to a plain-text table.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// DefaultBudget is the committed-instruction budget per simulation. The
// paper runs 100M instructions per benchmark; these kernels reach steady
// state within a few hundred thousand (DESIGN.md substitution #4).
const DefaultBudget = 200_000

// Options configures a Runner.
type Options struct {
	// Budget is the committed-instruction count per run (0 = DefaultBudget).
	Budget uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Runner executes and memoizes benchmark/configuration simulations. All
// experiments share one Runner so configurations reused across tables (the
// base, Friendly and FDRT runs appear in many) are simulated once.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[string]*pipeline.Stats
	sem   chan struct{}
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:  opts,
		cache: make(map[string]*pipeline.Stats),
		sem:   make(chan struct{}, opts.Parallelism),
	}
}

// Budget returns the per-run instruction budget.
func (r *Runner) Budget() uint64 { return r.opts.Budget }

// Run simulates bm under cfg (cached by benchmark name + cfgKey).
func (r *Runner) Run(bm workload.Benchmark, cfgKey string, cfg pipeline.Config) *pipeline.Stats {
	key := bm.Name + "/" + cfgKey
	r.mu.Lock()
	if s, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return s
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	prog := bm.ProgramFor(r.opts.Budget)
	cfg.MaxInsts = r.opts.Budget
	s := pipeline.RunProgram(prog, cfg)
	<-r.sem

	r.mu.Lock()
	r.cache[key] = s
	r.mu.Unlock()
	return s
}

// Prefetch runs the given benchmark/config pairs concurrently so later
// cache hits are instant. Experiments call it with their full matrix.
func (r *Runner) Prefetch(bms []workload.Benchmark, cfgs map[string]pipeline.Config) {
	var wg sync.WaitGroup
	for _, bm := range bms {
		for key, cfg := range cfgs {
			wg.Add(1)
			go func(bm workload.Benchmark, key string, cfg pipeline.Config) {
				defer wg.Done()
				r.Run(bm, key, cfg)
			}(bm, key, cfg)
		}
	}
	wg.Wait()
}

// --- shared configurations ---

// BaseConfig returns the Table 7 baseline.
func BaseConfig() pipeline.Config { return pipeline.DefaultConfig() }

// StrategyConfigs returns the named strategy configurations used across the
// performance figures.
func StrategyConfigs() map[string]pipeline.Config {
	base := BaseConfig()
	return map[string]pipeline.Config{
		"base":         base,
		"friendly":     base.WithStrategy(core.Friendly, false),
		"friendly-mid": base.WithStrategy(core.FriendlyMiddle, false),
		"fdrt":         base.WithStrategy(core.FDRT, false),
		"fdrt-nopin":   base.WithStrategy(core.FDRTNoPin, false),
		"issue0":       base.WithStrategy(core.IssueTime, true),
		"issue4":       base.WithStrategy(core.IssueTime, false),
	}
}

// speedup returns baseCycles/cycles.
func speedup(base, s *pipeline.Stats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

func fmtBench(name string) string { return fmt.Sprintf("%-9s", name) }
