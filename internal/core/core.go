// Package core implements the paper's primary contribution: dynamic cluster
// assignment for a clustered trace cache processor, performed at retire time
// by the fill unit. It provides
//
//   - the assignment strategy families compared in the paper: baseline
//     slot-based issue, issue-time steering (executed by the pipeline, but
//     declared here), Friendly's intra-trace retire-time reordering (plus the
//     middle-cluster-biased variant), and the proposed feedback-directed
//     retire-time (FDRT) scheme with and without chain pinning;
//   - the cluster-chain profile (leader/follower designation and chain
//     cluster) that the trace cache stores per instruction; and
//   - the fill unit that consumes retiring instructions, updates chains,
//     reorders completed traces, and installs them into the trace cache.
package core

import (
	"ctcp/internal/emu"
	"ctcp/internal/trace"
)

// InvariantError is the value the simulator panics with when an internal
// invariant breaks (incomplete fill-unit assignment, a stalled pipeline).
// Panicking keeps the hot paths free of error plumbing; the run boundary
// (pipeline.RunProgramErr) recovers the panic into a typed error so a
// pathological configuration degrades to one failed run instead of killing
// the process.
type InvariantError struct{ Msg string }

// Error implements error.
func (e *InvariantError) Error() string { return e.Msg }

// StrategyKind selects the cluster assignment strategy.
type StrategyKind int

const (
	// Base is slot-based issue of unreordered traces: cluster = slot/width.
	Base StrategyKind = iota
	// IssueTime steers at issue based on in-flight producer locations. The
	// fill unit leaves traces unreordered; the pipeline performs steering,
	// optionally charging extra front-end stages (§2.3 "Issue Time").
	IssueTime
	// Friendly is the prior retire-time scheme (Friendly et al., MICRO-31):
	// slot scanning with static intra-trace dependency analysis.
	Friendly
	// FriendlyMiddle is Friendly with the slot scan biased so the majority
	// of instructions land in middle clusters (§5.3's "minor adjustment").
	FriendlyMiddle
	// FDRT is the paper's feedback-directed retire-time assignment with
	// chain pinning.
	FDRT
	// FDRTNoPin is FDRT without pinning chain members to a cluster
	// (Tables 9 and 10 ablation).
	FDRTNoPin
)

// Strategies returns every assignment strategy in definition order. Command-
// line tools derive their name tables and flag usage from this list so it
// cannot drift from the StrategyKind constants.
func Strategies() []StrategyKind {
	return []StrategyKind{Base, IssueTime, Friendly, FriendlyMiddle, FDRT, FDRTNoPin}
}

// String returns the strategy name used in tables and figures.
func (k StrategyKind) String() string {
	switch k {
	case Base:
		return "base"
	case IssueTime:
		return "issue-time"
	case Friendly:
		return "friendly"
	case FriendlyMiddle:
		return "friendly-middle"
	case FDRT:
		return "fdrt"
	case FDRTNoPin:
		return "fdrt-nopin"
	}
	return "unknown"
}

// ReordersAtRetire reports whether the fill unit physically reorders traces.
func (k StrategyKind) ReordersAtRetire() bool {
	switch k {
	case Friendly, FriendlyMiddle, FDRT, FDRTNoPin:
		return true
	}
	return false
}

// SteersAtIssue reports whether the pipeline steers instructions at issue.
func (k StrategyKind) SteersAtIssue() bool { return k == IssueTime }

// UsesChains reports whether the strategy maintains cluster-chain feedback.
func (k StrategyKind) UsesChains() bool { return k == FDRT || k == FDRTNoPin }

// Pins reports whether chain members keep their first cluster permanently.
func (k StrategyKind) Pins() bool { return k == FDRT }

// CritSrc identifies which register input of an instruction arrived last.
type CritSrc int

const (
	// CritNone means no input was dynamically forwarded last: the
	// instruction has no register inputs, or all inputs were ready in the
	// register file.
	CritNone CritSrc = iota
	// CritRS1 and CritRS2 name the critical (last-arriving) input operand.
	CritRS1
	CritRS2
)

// RetireInfo is the per-instruction dynamic record the pipeline hands the
// fill unit at retirement: the committed instruction plus everything the
// FDRT scheme feeds on — where it executed, which input was critical, who
// produced that input and from how far away.
type RetireInfo struct {
	Rec    emu.Committed
	FromTC bool // fetched from the trace cache (false: instruction cache)
	// Profile carries the chain fields the instruction was fetched with.
	Profile trace.Profile
	// Cluster is the execution cluster the instruction ran on.
	Cluster int
	// FetchGroup identifies the fetch unit (trace line instance or icache
	// fetch group) the instruction arrived in; differing groups for producer
	// and consumer make a dependence inter-trace.
	FetchGroup uint64

	// Critical-input description (the input whose data arrived last).
	CritSrc       CritSrc
	CritForwarded bool // critical input arrived via forwarding, not the RF
	// Producer of the critical input (valid when CritSrc != CritNone and the
	// producing instruction was identifiable in flight).
	CritProducerPC      uint64
	CritProducerSeq     uint64
	CritProducerCluster int
	CritInterTrace      bool // producer fetched in a different group
	// CritProducerProfile is the chain profile the producer instance was
	// fetched with (its trace-line bits at forward time).
	CritProducerProfile trace.Profile
}

// ChainProfile holds the fill unit's *pending* chain designations: profile
// bits assigned by the feedback logic that have not yet been written into a
// trace line. The authoritative storage for chain bits is the trace line
// itself (they travel with fetched instructions and are lost when lines are
// evicted or instructions arrive from the instruction cache); this table
// only bridges the gap between a designation being made at retirement and
// the designated instruction next passing through the fill unit. It is
// bounded and evicts in FIFO order. See DESIGN.md substitution #3.
//
// The table is consulted for every retired instruction (updateChains) and
// every slot of every built trace (assign), so entries live in a dense
// PC-indexed pcMap rather than a hash map; the FIFO order ring is unchanged.
type ChainProfile struct {
	capLimit int
	count    int // live (present) designations
	tab      pcMap[chainSlot]
	order    []uint64
	head     int
}

// chainSlot is one dense slot: a designation plus its presence bit (the
// zero slot means "no pending designation for this PC").
type chainSlot struct {
	prof    trace.Profile
	present bool
}

// NewChainProfile returns a table bounded to capLimit entries.
func NewChainProfile(capLimit int) *ChainProfile {
	if capLimit <= 0 {
		capLimit = 1
	}
	return &ChainProfile{capLimit: capLimit}
}

// peek returns the pending designation for pc without consuming it.
func (c *ChainProfile) peek(pc uint64) (trace.Profile, bool) {
	if e := c.tab.lookup(pc); e != nil && e.present {
		return e.prof, true
	}
	return trace.Profile{}, false
}

// Get returns the profile recorded for pc (zero Profile when absent).
func (c *ChainProfile) Get(pc uint64) trace.Profile {
	p, _ := c.peek(pc)
	return p
}

// Set records the profile for pc, evicting the oldest entry when full.
func (c *ChainProfile) Set(pc uint64, p trace.Profile) {
	e := c.tab.ensure(pc)
	if !e.present {
		if c.count >= c.capLimit {
			// FIFO eviction; skip order entries already deleted. Eviction
			// only reads existing slots, so e stays valid across it.
			for c.head < len(c.order) {
				victim := c.order[c.head]
				c.head++
				if ve := c.tab.lookup(victim); ve != nil && ve.present {
					*ve = chainSlot{}
					c.count--
					break
				}
			}
		}
		e.present = true
		c.count++
		c.order = append(c.order, pc)
		// Compact the order slice occasionally so it cannot grow without bound.
		if c.head > c.capLimit {
			c.order = append([]uint64(nil), c.order[c.head:]...)
			c.head = 0
		}
	}
	e.prof = p
}

// Has reports whether pc has a pending designation.
func (c *ChainProfile) Has(pc uint64) bool {
	_, ok := c.peek(pc)
	return ok
}

// Take removes and returns the pending designation for pc, if any.
func (c *ChainProfile) Take(pc uint64) (trace.Profile, bool) {
	e := c.tab.lookup(pc)
	if e == nil || !e.present {
		return trace.Profile{}, false
	}
	p := e.prof
	*e = chainSlot{}
	c.count--
	return p, true
}

// Len returns the number of live entries.
func (c *ChainProfile) Len() int { return c.count }

// Reset clears the table.
func (c *ChainProfile) Reset() {
	c.tab.reset()
	c.count = 0
	c.order = nil
	c.head = 0
}
