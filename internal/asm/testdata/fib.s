; Recursive Fibonacci: exercises the stack, calls and returns.
; Computes fib(18) = 2584 and OUTs it.
        .entry main

fib:    ; r1 = n, result in r2, clobbers r3; uses the stack for ra/r1
        cmple   r1, 1, r3
        beq     r3, recurse
        mov     r2, r1          ; fib(0)=0, fib(1)=1
        ret
recurse:
        sub     sp, 24, sp
        stq     ra, 0(sp)
        stq     r1, 8(sp)
        sub     r1, 1, r1
        movi    r9, fib
        jsr     ra, (r9)
        stq     r2, 16(sp)      ; fib(n-1)
        ldq     r1, 8(sp)
        sub     r1, 2, r1
        movi    r9, fib
        jsr     ra, (r9)
        ldq     r3, 16(sp)
        add     r2, r3, r2      ; fib(n-1) + fib(n-2)
        ldq     ra, 0(sp)
        add     sp, 24, sp
        ret

main:   movi    r1, 18
        movi    r9, fib
        jsr     ra, (r9)
        out     r2
        halt
