; conformance: simple integer add/sub, register and immediate operate forms.
; Self-check: accumulates a sum over a 40-iteration loop and OUTs it.
        .entry main
main:   movi    r1, 0           ; i
        movi    r2, 0           ; sum
        movi    r3, 97          ; decreasing seed
loop:   add     r2, r3, r2      ; sum += seed
        sub     r3, 3, r3       ; seed -= 3
        add     r1, 1, r1
        cmplt   r1, 40, r4
        bne     r4, loop
        sub     r2, r3, r5
        add     r5, 12345, r5
        out     r2
        out     r5
        halt
