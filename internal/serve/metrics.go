package serve

import (
	"fmt"
	"net/http"
	"strings"

	"ctcp/internal/experiment"
)

// metricsSnapshot is one consistent read of every counter /metrics exposes:
// the service-level job counters, the queue gauge, and the pooled runners'
// execution counters summed into one view. The runner sums are the
// exactly-once witness: after any number of duplicate submissions of one
// job, runner.started stays 1.
type metricsSnapshot struct {
	submitted, completed, failed, interrupted, rejected, storeHits uint64
	queueDepth, queueCap                                           int
	queueWaitSeconds, simSeconds                                   float64
	queueWaitN, simN                                               uint64
	runner                                                         experiment.RunnerStats
	storeRecords                                                   int
	storeHitsDisk, storeMisses, storePuts                          uint64
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	s.mu.Lock()
	m := metricsSnapshot{
		submitted:        s.submitted,
		completed:        s.completed,
		failed:           s.failed,
		interrupted:      s.interrupted,
		rejected:         s.rejected,
		storeHits:        s.storeHits,
		queueDepth:       len(s.queue),
		queueCap:         cap(s.queue),
		queueWaitSeconds: s.queueWait.Seconds(),
		queueWaitN:       s.queueWaitN,
		simSeconds:       s.simWall.Seconds(),
		simN:             s.simN,
	}
	runners := make([]*experiment.Runner, 0, len(s.runners))
	for _, r := range s.runners {
		runners = append(runners, r)
	}
	s.mu.Unlock()
	// Runner snapshots take each runner's own lock; do it outside ours.
	for _, r := range runners {
		rs := r.Stats()
		m.runner.Started += rs.Started
		m.runner.Completed += rs.Completed
		m.runner.Failed += rs.Failed
		m.runner.Deduped += rs.Deduped
		m.runner.CacheHits += rs.CacheHits
	}
	m.storeRecords = s.store.Len()
	m.storeHitsDisk = s.store.hits.Load()
	m.storeMisses = s.store.misses.Load()
	m.storePuts = s.store.puts.Load()
	return m
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled; the service is stdlib-only by design).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.snapshotMetrics()
	var b strings.Builder
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter("ctcpd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)
	counter("ctcpd_jobs_completed_total", "Jobs that finished successfully.", m.completed)
	counter("ctcpd_jobs_failed_total", "Jobs that failed with a simulation error.", m.failed)
	counter("ctcpd_jobs_interrupted_total", "Jobs cut short by shutdown.", m.interrupted)
	counter("ctcpd_jobs_rejected_total", "Submissions rejected because the queue was full.", m.rejected)
	counter("ctcpd_store_hits_total", "Submissions answered from the result store.", m.storeHits)
	gauge("ctcpd_queue_depth", "Jobs accepted but not yet running.", m.queueDepth)
	gauge("ctcpd_queue_capacity", "Configured queue bound.", m.queueCap)
	counter("ctcpd_queue_wait_seconds_total", "Total time jobs spent queued.", fmt.Sprintf("%g", m.queueWaitSeconds))
	counter("ctcpd_queue_wait_count_total", "Jobs that left the queue for a worker.", m.queueWaitN)
	counter("ctcpd_sim_seconds_total", "Total wall time spent in simulation calls.", fmt.Sprintf("%g", m.simSeconds))
	counter("ctcpd_sim_count_total", "Simulation calls issued to runners.", m.simN)
	counter("ctcpd_runner_started_total", "Distinct simulations begun by the pooled runners.", m.runner.Started)
	counter("ctcpd_runner_completed_total", "Runner simulations that finished successfully.", m.runner.Completed)
	counter("ctcpd_runner_failed_total", "Runner simulations that aborted.", m.runner.Failed)
	counter("ctcpd_runner_deduped_total", "Callers who joined an in-flight runner simulation.", m.runner.Deduped)
	counter("ctcpd_runner_cache_hits_total", "Callers satisfied from a runner's completed-run cache.", m.runner.CacheHits)
	gauge("ctcpd_store_records", "Result records currently persisted.", m.storeRecords)
	counter("ctcpd_store_reads_hit_total", "Store reads that returned a valid record.", m.storeHitsDisk)
	counter("ctcpd_store_reads_miss_total", "Store reads that found no valid record.", m.storeMisses)
	counter("ctcpd_store_writes_total", "Records persisted to the store.", m.storePuts)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck // client hangup; nothing to do
}
