// Fixture for the writecheck analyzer: discarded fmt.Fprint* errors to
// fallible destinations are flagged; the conventional infallible sinks and
// checked-error forms are not.
package fixture

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func report(f *os.File, w io.Writer) error {
	fmt.Fprintf(f, "result: %d\n", 1) // want:writecheck
	fmt.Fprintln(w, "note")           // want:writecheck

	fmt.Fprintf(os.Stdout, "ok\n")  // stdout is conventionally infallible
	fmt.Fprintln(os.Stderr, "warn") // so is stderr

	var sb strings.Builder
	fmt.Fprintf(&sb, "buffered") // strings.Builder never fails
	var buf bytes.Buffer
	fmt.Fprint(&buf, "buffered") // neither does bytes.Buffer

	if _, err := fmt.Fprintf(f, "checked\n"); err != nil { // error is handled
		return err
	}

	fmt.Fprintf(f, "best effort\n") //ctcp:lint-ok writecheck -- advisory trailer, exit code already set
	return nil
}
