// Package pipeline is the cycle-level timing model of the clustered trace
// cache processor. It consumes the committed instruction stream produced by
// the functional emulator (the paper's sim-fast interface), models the
// front end (trace cache + instruction cache fetch, hybrid branch
// prediction, decode/rename), slot-based or issue-time cluster steering,
// per-cluster reservation stations and special-purpose functional units,
// distance-dependent inter-cluster data forwarding, the data-memory system
// (store buffer with load forwarding, conservative load disambiguation,
// nonblocking caches), and in-order retirement feeding the fill unit.
package pipeline

import (
	"ctcp/internal/bpred"
	"ctcp/internal/cachesim"
	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/trace"
)

// Config collects every architectural parameter of Table 7 plus the latency
// experiment knobs of Figure 5.
type Config struct {
	Strategy core.StrategyKind
	// DisableChains ablates FDRT's inter-trace chain feedback (§5.3).
	DisableChains bool
	Geom          cluster.Geometry
	RS            cluster.RSConfig

	ROBSize     int
	FetchWidth  int // also decode/rename/retire width (Table 7: 16)
	RetireWidth int

	FetchStages  int // trace cache / icache access depth (3)
	DecodeStages int
	RenameStages int
	// SteerStages is the extra issue-time dependency-analysis/steering/
	// routing latency charged when Strategy.SteersAtIssue() (0 = ideal,
	// 4 = realistic; §2.3).
	SteerStages int
	RFLat       int // register file read latency (2)

	Trace trace.Config
	BP    bpred.Config
	Mem   cachesim.HierarchyConfig

	ICache        cachesim.Config
	ICacheMissLat int // extra fetch cycles on an L1I miss (unified L2 service)
	BTBMissBubble int // fetch bubble when a taken branch misses the BTB

	StoreBuffer int // entries (32)
	LoadQueue   int // entries (32)

	// Figure 5 latency-removal experiment knobs.
	ZeroAllFwdLat  bool // all data forwarding is same-cycle
	ZeroCritFwdLat bool // only the last-arriving (critical) forward is free
	ZeroIntraTrace bool // intra-trace (same fetch group) forwards are free
	ZeroInterTrace bool // inter-trace forwards are free
	// MaxInsts bounds the committed instructions consumed (0 = run the
	// stream dry).
	MaxInsts uint64
	// TraceCycles records a per-cycle occupancy snapshot for the first N
	// active cycles into Stats.PipeTrace (0 = disabled); a debugging and
	// teaching aid exposed through ctcpsim -pipetrace.
	TraceCycles int
	// RetireHook, when non-nil, observes every retired instruction in
	// program order with the same record the fill unit receives. It exists
	// for differential testing and external tracing; it must not retain the
	// RetireInfo's pointers beyond the call.
	RetireHook func(core.RetireInfo)
}

// DefaultConfig returns the paper's baseline CTCP (Table 7): 16-wide, four
// four-wide clusters on a chain interconnect with 2-cycle hops.
func DefaultConfig() Config {
	return Config{
		Strategy:     core.Base,
		Geom:         cluster.DefaultGeometry(),
		RS:           cluster.DefaultRSConfig(),
		ROBSize:      128,
		FetchWidth:   16,
		RetireWidth:  16,
		FetchStages:  3,
		DecodeStages: 1,
		RenameStages: 1,
		SteerStages:  0,
		RFLat:        2,
		Trace:        trace.DefaultConfig(),
		BP:           bpred.Default(),
		Mem:          cachesim.DefaultHierarchy(),
		ICache: cachesim.Config{
			Name: "L1I", Sets: 4 * cachesim.KB / 64 / 4, Ways: 4, LineSize: 64,
		},
		ICacheMissLat: 8,
		BTBMissBubble: 2,
		StoreBuffer:   32,
		LoadQueue:     32,
	}
}

// WithStrategy returns a copy configured for the given strategy, charging
// the realistic steering latency for issue-time steering unless idealLatency
// is requested.
func (c Config) WithStrategy(k core.StrategyKind, idealIssueLatency bool) Config {
	c.Strategy = k
	if k.SteersAtIssue() && !idealIssueLatency {
		// Four cycles of dependency analysis, steering and routing for a
		// 16-wide machine; halved for the 8-wide two-cluster variant.
		c.SteerStages = 4
		if c.Geom.TotalWidth() <= 8 {
			c.SteerStages = 2
		}
	} else {
		c.SteerStages = 0
	}
	return c
}
