package pipeline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/isa"
	"ctcp/internal/prog"
)

// indirectProgram builds a dispatch loop whose jump target changes every
// iteration (defeats the BTB) vs. one whose target is constant.
func indirectProgram(alternating bool) *isa.Program {
	b := prog.New()
	b.Br("start")
	b.Label("h0")
	b.OpI(isa.ADD, isa.R(3), 1, isa.R(3))
	b.Br("next")
	b.Nop()
	b.Nop()
	b.Label("h1")
	b.OpI(isa.ADD, isa.R(3), 2, isa.R(3))
	b.Br("next")
	b.Nop()
	b.Nop()
	b.Label("start")
	b.Movi(isa.R(1), 2000)
	b.Movi(isa.R(5), int64(0))
	b.Label("loop")
	// target = h0 or h1
	b.Movi(isa.R(6), 0)
	if alternating {
		b.OpI(isa.AND, isa.R(1), 1, isa.R(6))
	}
	b.OpI(isa.SLL, isa.R(6), 4, isa.R(6)) // 4 insts * 4 bytes
	b.Movi(isa.R(7), int64(b.LabelAddr("h0")))
	b.Op3(isa.ADD, isa.R(7), isa.R(6), isa.R(7))
	b.Jmp(isa.R(7))
	b.Label("next")
	b.OpI(isa.SUB, isa.R(1), 1, isa.R(1))
	b.Branch(isa.BNE, isa.R(1), "loop")
	b.Halt()
	b.Entry("start")
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestIndirectMispredictsCostCycles(t *testing.T) {
	stable := RunProgram(indirectProgram(false), DefaultConfig())
	flaky := RunProgram(indirectProgram(true), DefaultConfig())
	if flaky.IndirectMiss <= stable.IndirectMiss {
		t.Errorf("alternating target misses %d <= stable %d", flaky.IndirectMiss, stable.IndirectMiss)
	}
	if flaky.Cycles <= stable.Cycles {
		t.Errorf("indirect mispredicts cost nothing: %d vs %d cycles", flaky.Cycles, stable.Cycles)
	}
}

func TestLoadWaitsForOlderStoreAddresses(t *testing.T) {
	// A load to a *different* address than a just-computed store still waits
	// for the store's address under conservative disambiguation; removing
	// the store speeds the loop up.
	build := func(withStore bool) *isa.Program {
		b := prog.New()
		b.Space("a", 64)
		b.Space("bb", 64)
		b.MoviAddr(isa.R(1), "a")
		b.MoviAddr(isa.R(2), "bb")
		b.Movi(isa.R(3), 2000)
		b.Label("loop")
		// Long-latency address computation for the store.
		b.OpI(isa.MUL, isa.R(3), 1, isa.R(4))
		b.OpI(isa.MUL, isa.R(4), 1, isa.R(4))
		b.OpI(isa.AND, isa.R(4), 56, isa.R(4))
		b.Op3(isa.ADD, isa.R(1), isa.R(4), isa.R(5))
		if withStore {
			b.Store(isa.STQ, isa.R(3), isa.R(5), 0)
		} else {
			b.Op3(isa.ADD, isa.R(5), isa.R(3), isa.R(28)) // same work, no store
		}
		b.Load(isa.LDQ, isa.R(6), isa.R(2), 0) // independent address
		b.Op3(isa.ADD, isa.R(6), isa.R(7), isa.R(7))
		b.OpI(isa.SUB, isa.R(3), 1, isa.R(3))
		b.Branch(isa.BNE, isa.R(3), "loop")
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	with := RunProgram(build(true), DefaultConfig())
	without := RunProgram(build(false), DefaultConfig())
	if with.Cycles <= without.Cycles {
		t.Errorf("conservative disambiguation has no cost: %d vs %d", with.Cycles, without.Cycles)
	}
}

func TestRingTopologyHelpsEndToEndForwarding(t *testing.T) {
	// Force cross-machine dependencies: with zero steering the slot-based
	// base puts a chain across clusters; ring reduces worst-case distance.
	cfg := DefaultConfig()
	ring := cfg
	ring.Geom.Topology = cluster.Ring
	chain := runStats(t, cfg, 1500)
	ringS := runStats(t, ring, 1500)
	if ringS.AvgFwdDistance() > chain.AvgFwdDistance()+0.001 {
		t.Errorf("ring increased mean forwarding distance: %.3f vs %.3f",
			ringS.AvgFwdDistance(), chain.AvgFwdDistance())
	}
	if ringS.Cycles > chain.Cycles {
		t.Errorf("ring slower than chain: %d vs %d", ringS.Cycles, chain.Cycles)
	}
}

func TestTwoClusterConfigRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geom.Clusters = 2
	cfg.FetchWidth = 8
	cfg.RetireWidth = 8
	cfg.Trace.MaxLen = 8
	for _, k := range []core.StrategyKind{core.Base, core.Friendly, core.FDRT, core.IssueTime} {
		c := cfg.WithStrategy(k, false)
		s := runStats(t, c, 600)
		if s.Retired == 0 {
			t.Fatalf("%v: no retirement on 2-cluster config", k)
		}
		// Forwarding distance on a 2-cluster machine is at most 1 hop.
		if s.AvgFwdDistance() > 1 {
			t.Errorf("%v: distance %.3f > 1 on two clusters", k, s.AvgFwdDistance())
		}
	}
}

func TestZeroIntraAndInterKnobsCompose(t *testing.T) {
	base := runStats(t, DefaultConfig(), 800)
	intra := DefaultConfig()
	intra.ZeroIntraTrace = true
	inter := DefaultConfig()
	inter.ZeroInterTrace = true
	both := DefaultConfig()
	both.ZeroIntraTrace, both.ZeroInterTrace = true, true
	all := DefaultConfig()
	all.ZeroAllFwdLat = true
	si, se := runStats(t, intra, 800), runStats(t, inter, 800)
	sb, sa := runStats(t, both, 800), runStats(t, all, 800)
	if si.Cycles > base.Cycles || se.Cycles > base.Cycles {
		t.Error("partial latency removal slowed execution")
	}
	// Removing both classes equals removing everything.
	if sb.Cycles != sa.Cycles {
		t.Errorf("intra+inter (%d cycles) != all (%d cycles)", sb.Cycles, sa.Cycles)
	}
}

func TestRetiredNeverExceedsFetchBudget(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.MaxInsts = uint64(500 + r.Intn(2000))
		strategies := []core.StrategyKind{core.Base, core.Friendly, core.FDRT, core.IssueTime}
		cfg = cfg.WithStrategy(strategies[r.Intn(len(strategies))], r.Intn(2) == 0)
		if r.Intn(2) == 0 {
			cfg.Geom.Topology = cluster.Ring
		}
		cfg.Geom.HopLat = 1 + r.Intn(3)
		s := RunProgram(loopProgram(100000), cfg)
		if s.Retired != cfg.MaxInsts {
			return false
		}
		// Conservation invariants under any configuration.
		if s.CritFromRF+s.CritFromRS1+s.CritFromRS2 != s.WithInputs {
			return false
		}
		if s.Fill.InstsBuilt != s.Retired {
			return false
		}
		return s.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestHopLatencyMonotonic(t *testing.T) {
	var prev int64
	for _, hop := range []int{0, 1, 2, 4} {
		cfg := DefaultConfig()
		cfg.Geom.HopLat = hop
		s := runStats(t, cfg, 1000)
		if s.Cycles < prev {
			t.Errorf("hop=%d faster than smaller hop latency (%d < %d cycles)", hop, s.Cycles, prev)
		}
		prev = s.Cycles
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A store burst with cold cache misses must trip the SB-full stall
	// counter when the buffer is tiny.
	b := prog.New()
	b.Space("big", 1<<21)
	b.MoviAddr(isa.R(1), "big")
	b.Movi(isa.R(2), 4000)
	b.Label("loop")
	b.Store(isa.STQ, isa.R(2), isa.R(1), 0)
	b.OpI(isa.ADD, isa.R(1), 64, isa.R(1)) // new line every store: all miss
	b.OpI(isa.SUB, isa.R(2), 1, isa.R(2))
	b.Branch(isa.BNE, isa.R(2), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StoreBuffer = 2
	s := RunProgram(p, cfg)
	if s.SBFullStalls == 0 {
		t.Error("tiny store buffer never filled")
	}
	big := DefaultConfig()
	big.StoreBuffer = 64
	s2 := RunProgram(p, big)
	if s2.Cycles >= s.Cycles {
		t.Errorf("larger store buffer not faster: %d vs %d", s2.Cycles, s.Cycles)
	}
}

func TestCallReturnPredictedByRAS(t *testing.T) {
	b := prog.New()
	b.Br("main")
	b.Label("leaf")
	b.OpI(isa.ADD, isa.R(3), 1, isa.R(3))
	b.Ret()
	b.Label("main")
	b.Movi(isa.R(1), 1500)
	b.Label("loop")
	b.Call("leaf", isa.R(9))
	b.OpI(isa.SUB, isa.R(1), 1, isa.R(1))
	b.Branch(isa.BNE, isa.R(1), "loop")
	b.Halt()
	b.Entry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := RunProgram(p, DefaultConfig())
	// Well-nested call/return mispredicts only during warmup.
	if s.IndirectMiss > 20 {
		t.Errorf("RAS failed: %d indirect mispredicts on nested calls", s.IndirectMiss)
	}
}

func TestIssueTimeRespectsPerClusterWidth(t *testing.T) {
	// Independent instruction soup: steering must not starve; all retire.
	cfg := DefaultConfig().WithStrategy(core.IssueTime, true)
	s := runStats(t, cfg, 2000)
	if s.Retired == 0 || s.IPC() <= 0.1 {
		t.Fatalf("issue-time steering stalled: IPC %.3f", s.IPC())
	}
}

func TestTraceProfilesSurviveFetchRetireCycle(t *testing.T) {
	// Under FDRT, chain designations must appear in retired-trace installs
	// (leaders+followers created > 0 on a loop-carried workload).
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	s := runStats(t, cfg, 2000)
	if s.Fill.LeadersCreated == 0 {
		t.Error("no chain leaders on a loop-carried dependence workload")
	}
}

func TestPipeTraceSnapshotting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceCycles = 10
	s := runStats(t, cfg, 300)
	if len(s.PipeTrace) != 10 {
		t.Fatalf("recorded %d snapshots, want 10", len(s.PipeTrace))
	}
	for _, line := range s.PipeTrace {
		if !strings.Contains(line, "rob") || !strings.Contains(line, "retired") {
			t.Errorf("malformed snapshot %q", line)
		}
	}
	// Disabled by default.
	off := runStats(t, DefaultConfig(), 300)
	if len(off.PipeTrace) != 0 {
		t.Error("snapshots recorded without TraceCycles")
	}
}
