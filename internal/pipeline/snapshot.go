package pipeline

import (
	"sort"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/snap"
)

// snapReady reports why the pipeline is not at a snapshotable boundary, or
// "" when it is. Snapshot and Restore both demand an empty machine: nothing
// buffered, nothing in flight, no pending redirect. RunTo leaves the
// pipeline exactly here between segments (see pauseDrain); Snapshot at any
// other point would have to serialize the whole out-of-order window, which
// the drained-boundary contract deliberately avoids.
func (p *Pipeline) snapReady() string {
	switch {
	case p.havePeek:
		return "a committed record is buffered"
	case p.pendingRedirect != noID:
		return "a fetch redirect is pending"
	case p.rob.len() != 0:
		return "the ROB is not empty"
	case p.fetchQ.len() != 0:
		return "the fetch queue is not empty"
	case p.lastStore != noID:
		return "a store is still tracked for forwarding"
	case p.loadsInROB != 0:
		return "loads are still in flight"
	case p.storeWatermark != p.storeSeqNext:
		return "a store is still unissued in the disambiguation window"
	}
	for i := range p.steerQ {
		if p.steerQ[i] != noID {
			return "the steering queue is not empty"
		}
	}
	for c := range p.dispatchQ {
		if p.dispatchQ[c].len() != 0 {
			return "a dispatch queue is not empty"
		}
	}
	for c := range p.rsCount {
		for s := range p.rsCount[c] {
			if p.rsCount[c][s] != 0 {
				return "a reservation station is not empty"
			}
		}
	}
	for c := range p.rsLive {
		if p.rsLive[c] != 0 {
			return "a reservation station window has live entries"
		}
	}
	for c := range p.rsEntries {
		for s := range p.rsEntries[c] {
			if p.rsEntries[c][s] != noID {
				return "a reservation station entry is live"
			}
		}
	}
	for c := range p.readyMask {
		for _, w := range p.readyMask[c] {
			if w != 0 {
				return "a ready-mask bit is set"
			}
		}
	}
	for c := range p.readyHeap {
		if len(p.readyHeap[c]) != 0 {
			return "a ready heap holds pending entries"
		}
	}
	for _, n := range p.loadWaitHead {
		if n != 0 {
			return "a load is waiting on the store watermark"
		}
	}
	for r := range p.renameMap {
		if p.renameMap[r] != noID {
			return "the rename map has live producers"
		}
	}
	return ""
}

// Snapshot serializes the pipeline and every component it owns. It is only
// legal at a drained trace boundary — the state RunTo leaves between
// segments — where the out-of-order window is empty and all machine state
// lives in the timing tables, the profile structures, and the components.
// Restoring the encoding into a freshly constructed Pipeline with the same
// configuration and an equivalent stream continues bit-identically to this
// pipeline running on.
func (p *Pipeline) Snapshot(w *snap.Writer) {
	if why := p.snapReady(); why != "" {
		w.Failf("pipeline snapshot outside a drained boundary: %s", why)
		return
	}
	w.Begin("pipeline")
	// Configuration fingerprint. The full Config is not serialized (it can
	// carry a RetireHook closure); these five knobs determine every table
	// geometry the sections below assume.
	w.Int(int(p.cfg.Strategy))
	w.Int(p.cfg.Geom.Clusters)
	w.Int(p.cfg.Geom.Width)
	w.Int(p.cfg.FetchWidth)
	w.Int(p.cfg.ROBSize)
	_ = p.geom    // copy of cfg.Geom made by New
	_ = p.distTab // pure function of geom, rebuilt by New
	_ = p.fwdTab  // pure function of geom, rebuilt by New

	w.I64(p.now)
	w.I64(p.nextFetch)
	w.I64(p.btbBubble)
	w.I64(p.lastRetireCycle)
	w.I64(p.lastDrain)
	w.U64(p.groupSeq)
	w.U64(p.consumed)
	w.U64(p.fetchLimit)
	w.U64(p.renamed)
	w.Bool(p.streamDone)

	w.I64Slice(p.sbDrain)
	w.Int(len(p.fuFree))
	for c := range p.fuFree {
		w.I64Slice(p.fuFree[c])
	}
	p.ports.snapshot(w, p.now)
	p.pcHist.snapshot(w)
	snapshotStats(w, &p.S)

	// The buffered peek is empty at a drained boundary (asserted above);
	// predictCond is p.bp.PredictCond rebound by New; scr is pooled and
	// per-cycle scratch that a restored pipeline rebuilds empty. The inflight
	// store holds no live slot at a drained boundary (snapReady checks every
	// structure that could reference one), so it is equivalent to the fresh
	// store a restored pipeline starts with: residual slot contents are
	// don't-care either way (every field is written before its first read in
	// a new life — see infStore.alloc), and generations are never observable
	// across the boundary. The disambiguation ring's contents behind the watermark are
	// don't-care by construction (snapReady asserts the watermark has caught
	// up to the sequence counter, and both counters only ever appear in
	// relative comparisons, so a restored pipeline restarting them at 1
	// schedules identically).
	_ = p.peekedRec
	_ = p.predictCond
	_ = p.scr
	_ = p.st
	_ = p.storeRing
	_ = p.storeRingMask
	// The StreamInto cache is derived from the stream field (re-derived
	// lazily after restore).
	_ = p.streamInto
	_ = p.streamIntoKnown
	// The decode cache is a pure function of the immutable program text,
	// refilled lazily after restore.
	_ = p.dec
	// The ready heaps only hold entries while reservation stations do;
	// snapReady asserts they are empty at every snapshot boundary.
	_ = p.readyHeap

	if cs, ok := p.stream.(snap.Checkpointable); ok {
		cs.Snapshot(w)
	} else {
		w.Failf("pipeline stream %T is not snap.Checkpointable", p.stream)
	}
	p.bp.Snapshot(w)
	p.icache.Snapshot(w)
	p.mem.Snapshot(w)
	p.tc.Snapshot(w)
	p.fill.Snapshot(w)
	w.End()
}

// Restore rebuilds the pipeline from r. The receiver must be freshly
// constructed by New with the same configuration the snapshot was taken
// under and a stream of the same concrete type (its position is part of
// the encoding). After Restore the pipeline continues with RunTo / Finish
// exactly as the snapshotted one would have.
func (p *Pipeline) Restore(r *snap.Reader) {
	if why := p.snapReady(); why != "" {
		r.Failf("pipeline restore target is not freshly constructed: %s", why)
		return
	}
	r.Begin("pipeline")
	r.ExpectInt("pipeline strategy", int(p.cfg.Strategy))
	r.ExpectInt("pipeline clusters", p.cfg.Geom.Clusters)
	r.ExpectInt("pipeline cluster width", p.cfg.Geom.Width)
	r.ExpectInt("pipeline fetch width", p.cfg.FetchWidth)
	r.ExpectInt("pipeline ROB size", p.cfg.ROBSize)

	p.now = r.I64()
	p.nextFetch = r.I64()
	p.btbBubble = r.I64()
	p.lastRetireCycle = r.I64()
	p.lastDrain = r.I64()
	p.groupSeq = r.U64()
	p.consumed = r.U64()
	p.fetchLimit = r.U64()
	p.renamed = r.U64()
	p.streamDone = r.Bool()

	p.sbDrain = r.I64Slice()
	nc := r.Int()
	if r.Err() != nil {
		return
	}
	if nc != len(p.fuFree) {
		r.Failf("pipeline snapshot has %d clusters of FUs, this configuration has %d", nc, len(p.fuFree))
		return
	}
	for c := range p.fuFree {
		row := r.I64Slice()
		if r.Err() != nil {
			return
		}
		if len(row) != len(p.fuFree[c]) {
			r.Failf("pipeline cluster %d has %d FUs in the snapshot, %d in this configuration", c, len(row), len(p.fuFree[c]))
			return
		}
		copy(p.fuFree[c], row)
	}
	p.ports.restore(r)
	p.pcHist.restore(r)
	restoreStats(r, &p.S)

	p.havePeek = false
	p.peekedRec = emu.Committed{}
	p.pendingRedirect = noID

	if cs, ok := p.stream.(snap.Checkpointable); ok {
		cs.Restore(r)
	} else {
		r.Failf("pipeline stream %T is not snap.Checkpointable", p.stream)
	}
	p.bp.Restore(r)
	p.icache.Restore(r)
	p.mem.Restore(r)
	p.tc.Restore(r)
	p.fill.Restore(r)
	r.End()
}

// snapshot emits the port schedule's live bookings: ring slots whose
// absolute cycle is current (>= now) and booked. Lapped slots read as empty
// to book() and are dropped; emission is in ascending cycle order.
func (ps *portSched) snapshot(w *snap.Writer, now int64) {
	type booking struct {
		cycle int64
		used  int32
	}
	var live []booking
	for i := range ps.cycle {
		if ps.cycle[i] >= now && ps.used[i] > 0 {
			live = append(live, booking{ps.cycle[i], ps.used[i]})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].cycle < live[j].cycle })
	w.Int(len(live))
	for _, b := range live {
		w.I64(b.cycle)
		w.Int(int(b.used))
	}
}

// restore resets the ring and replays the live bookings.
func (ps *portSched) restore(r *snap.Reader) {
	for i := range ps.cycle {
		ps.cycle[i] = -1
		ps.used[i] = 0
	}
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 || n > portWindow {
		r.Failf("port schedule has %d bookings (window %d)", n, portWindow)
		return
	}
	for i := 0; i < n; i++ {
		cycle := r.I64()
		used := r.Int()
		if r.Err() != nil {
			return
		}
		idx := cycle & (portWindow - 1)
		ps.cycle[idx] = cycle
		ps.used[idx] = int32(used)
	}
}

// snapshot emits the per-static-PC producer history: every non-zero entry
// of the dense table (keyed back to its PC) followed by the sorted
// overflow entries. The dense table's base/length are layout, not state —
// restore regrows an equivalent table through statsFor.
func (t *pcTable) snapshot(w *snap.Writer) {
	zero := pcStats{}
	var pcs []uint64
	for i := range t.tab {
		if t.tab[i] != zero {
			pcs = append(pcs, (t.base+uint64(i))*isa.PCStride)
		}
	}
	for pc, e := range t.overflow { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		if *e != zero {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.Int(len(pcs))
	for _, pc := range pcs {
		e := t.statsFor(pc, isa.PCStride)
		w.U64(pc)
		w.U64(e.lastProd[0])
		w.U64(e.lastProd[1])
		w.U64(e.lastCritInter[0])
		w.U64(e.lastCritInter[1])
	}
}

// restore replays the entries through statsFor into the (fresh) table.
func (t *pcTable) restore(r *snap.Reader) {
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 {
		r.Failf("pc table has negative entry count %d", n)
		return
	}
	for i := 0; i < n; i++ {
		pc := r.U64()
		var e pcStats
		e.lastProd[0] = r.U64()
		e.lastProd[1] = r.U64()
		e.lastCritInter[0] = r.U64()
		e.lastCritInter[1] = r.U64()
		if r.Err() != nil {
			return
		}
		*t.statsFor(pc, isa.PCStride) = e
	}
}

// snapshotStats serializes the pipeline-local statistics. The BP/TC/Fill
// sub-structures are excluded: they are copies Finish takes from the live
// components (each serialized in its own section), and a segmented run
// only calls Finish once, after the last segment.
func snapshotStats(w *snap.Writer, s *Stats) {
	w.I64(s.Cycles)
	w.U64(s.Retired)
	w.U64(s.RetiredFromTC)
	w.U64(s.TCGroups)
	w.U64(s.TCGroupInsts)
	w.U64(s.ICGroups)
	w.U64(s.ICGroupInsts)
	w.U64(s.ICacheMisses)
	w.U64(s.FetchRedirects)
	w.U64(s.WithInputs)
	w.U64(s.CritFromRF)
	w.U64(s.CritFromRS1)
	w.U64(s.CritFromRS2)
	w.U64(s.CritForwarded)
	w.U64(s.CritInterTrace)
	w.U64(s.CritIntraCluster)
	w.U64(s.CritDistSum)
	w.U64(s.FwdInputs)
	w.U64(s.FwdIntraCluster)
	w.U64(s.FwdDistSum)
	w.U64(s.RS1Seen)
	w.U64(s.RS1Repeat)
	w.U64(s.RS2Seen)
	w.U64(s.RS2Repeat)
	w.U64(s.CritRS1InterSeen)
	w.U64(s.CritRS1InterRep)
	w.U64(s.CritRS2InterSeen)
	w.U64(s.CritRS2InterRep)
	w.U64(s.CondBranches)
	w.U64(s.Mispredicts)
	w.U64(s.IndirectMiss)
	w.U64(s.BTBBubbles)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.StoreForwards)
	w.U64(s.SBFullStalls)
	w.U64(s.LoadQFullStalls)
	w.U64(s.ROBFullStalls)
	w.Int(len(s.PipeTrace))
	for _, line := range s.PipeTrace {
		w.String(line)
	}
}

func restoreStats(r *snap.Reader, s *Stats) {
	s.Cycles = r.I64()
	s.Retired = r.U64()
	s.RetiredFromTC = r.U64()
	s.TCGroups = r.U64()
	s.TCGroupInsts = r.U64()
	s.ICGroups = r.U64()
	s.ICGroupInsts = r.U64()
	s.ICacheMisses = r.U64()
	s.FetchRedirects = r.U64()
	s.WithInputs = r.U64()
	s.CritFromRF = r.U64()
	s.CritFromRS1 = r.U64()
	s.CritFromRS2 = r.U64()
	s.CritForwarded = r.U64()
	s.CritInterTrace = r.U64()
	s.CritIntraCluster = r.U64()
	s.CritDistSum = r.U64()
	s.FwdInputs = r.U64()
	s.FwdIntraCluster = r.U64()
	s.FwdDistSum = r.U64()
	s.RS1Seen = r.U64()
	s.RS1Repeat = r.U64()
	s.RS2Seen = r.U64()
	s.RS2Repeat = r.U64()
	s.CritRS1InterSeen = r.U64()
	s.CritRS1InterRep = r.U64()
	s.CritRS2InterSeen = r.U64()
	s.CritRS2InterRep = r.U64()
	s.CondBranches = r.U64()
	s.Mispredicts = r.U64()
	s.IndirectMiss = r.U64()
	s.BTBBubbles = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.StoreForwards = r.U64()
	s.SBFullStalls = r.U64()
	s.LoadQFullStalls = r.U64()
	s.ROBFullStalls = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 {
		r.Failf("pipe trace has negative length %d", n)
		return
	}
	s.PipeTrace = nil
	for i := 0; i < n; i++ {
		s.PipeTrace = append(s.PipeTrace, r.String())
	}
}
