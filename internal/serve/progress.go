package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ctcp/internal/experiment"
)

// Event is one progress tick on a job's lifecycle, delivered in order over
// the streaming endpoint. Queued/running/terminal events come from the
// server's own state machine; segment and region events are plumbed up from
// the simulation itself (a checkpointed run's persisted segment boundaries,
// a sampled run's completed detail windows).
type Event struct {
	Type string `json:"type"` // queued, running, segment, region, done, failed, interrupted
	Job  string `json:"job"`
	// Done/Total report intra-run progress: instructions out of the budget
	// (segment) or completed regions out of the schedule (region).
	Done  uint64 `json:"done,omitempty"`
	Total uint64 `json:"total,omitempty"`
	Error string `json:"error,omitempty"`
}

// terminalEvent reports whether ev ends a job's stream.
func terminalEvent(ev Event) bool {
	switch ev.Type {
	case StatusDone, StatusFailed, StatusInterrupted:
		return true
	}
	return false
}

// eventHistoryCap bounds the per-job event history replayed to late
// subscribers. Segment/region ticks beyond the cap drop oldest-first; the
// terminal event always fits.
const eventHistoryCap = 64

// emitEventLocked appends ev to the job's history and fans it out to the
// job's live subscribers. Subscriber channels are buffered and lossy: a
// slow consumer misses ticks rather than stalling a simulation goroutine.
// Caller holds s.mu.
func (s *Server) emitEventLocked(j *Job, ev Event) {
	ev.Job = j.ID
	if len(j.events) >= eventHistoryCap {
		j.events = append(j.events[:0], j.events[1:]...)
	}
	j.events = append(j.events, ev)
	for ch := range j.subs { //ctcp:lint-ok maporder -- fan-out; each subscriber sees its own ordered stream
		select {
		case ch <- ev:
		default:
		}
	}
}

// emitEvent is emitEventLocked for callers not holding s.mu.
func (s *Server) emitEvent(j *Job, ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emitEventLocked(j, ev)
}

// subscribe registers a live event channel on j and returns it together
// with a replay of the history so far. The caller must unsubscribe.
func (s *Server) subscribe(j *Job) (<-chan Event, []Event) {
	ch := make(chan Event, 32)
	s.mu.Lock()
	defer s.mu.Unlock()
	history := make([]Event, len(j.events))
	copy(history, j.events)
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, history
}

func (s *Server) unsubscribe(j *Job, ch <-chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range j.subs { //ctcp:lint-ok maporder -- removing one identified element
		if sub == ch {
			delete(j.subs, sub)
			break
		}
	}
}

// routeProgress translates a pooled runner's progress event into a job
// event. The runner is shared by profile, so the (profile, run key) pair —
// registered by runJob for exactly the duration of its RunErr call —
// identifies the owning job.
func (s *Server) routeProgress(profile string, ev experiment.ProgressEvent) {
	var typ string
	switch ev.Kind {
	case experiment.RunSegment:
		typ = "segment"
	case experiment.RunRegion:
		typ = "region"
	default:
		return // lifecycle kinds are covered by the server's own events
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.progress[profile+"\x00"+ev.Key]
	if !ok {
		return
	}
	s.emitEventLocked(j, Event{Type: typ, Done: ev.Done, Total: ev.Total})
}

// handleEvents streams a job's progress as server-sent events: history
// first, then live ticks, ending after the terminal event. Each event is a
// `data:` line carrying the Event JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	ch, history := s.subscribe(j)
	defer s.unsubscribe(j, ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev Event) bool {
		buf, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, buf); err != nil {
			// The subscriber disconnected; stop streaming so the defer
			// unsubscribes instead of pumping a dead connection.
			return false
		}
		flusher.Flush()
		return !terminalEvent(ev)
	}
	for _, ev := range history {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if !send(ev) {
				return
			}
		case <-j.done:
			// The job is terminal. The lossy channel may have dropped the
			// final event under backpressure: drain what's buffered, then
			// synthesize the terminal event from the job itself.
			for drained := false; !drained; {
				select {
				case ev := <-ch:
					if !send(ev) {
						return
					}
				default:
					drained = true
				}
			}
			v := s.view(j)
			send(Event{Type: v.Status, Job: j.ID, Error: v.Error})
			return
		case <-r.Context().Done():
			return
		}
	}
}
