// Quickstart: assemble a TRISC-64 program from text, execute it
// functionally, then replay it through the clustered trace cache processor
// and compare cluster-assignment strategies on it.
package main

import (
	"fmt"
	"log"

	"ctcp"
)

const src = `
        ; dot product of two vectors with a running checksum
        .entry  main
main:   movi  r1, veca
        movi  r2, vecb
        movi  r3, 256        ; elements
        movi  r4, 0          ; accumulator
loop:   ldq   r5, 0(r1)
        ldq   r6, 0(r2)
        mul   r5, r6, r7
        add   r4, r7, r4
        add   r1, 8, r1
        add   r2, 8, r2
        sub   r3, 1, r3
        bne   r3, loop
        out   r4
        halt
        .data
veca:   .quad 1, 2, 3, 4, 5, 6, 7, 8
        .space 1984
vecb:   .quad 8, 7, 6, 5, 4, 3, 2, 1
        .space 1984
`

func main() {
	prog, err := ctcp.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions, %d data bytes\n", len(prog.Text), len(prog.Data))

	// 1. Functional execution: the architectural result.
	m := ctcp.NewMachine(prog)
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional result: dot product = %d (%d instructions)\n\n",
		m.OutValues[0], m.InstCount())

	// 2. Timing simulation under each cluster assignment strategy.
	fmt.Println("strategy          cycles    IPC   intra-cluster fwd")
	var baseCycles int64
	for _, s := range []ctcp.Strategy{ctcp.Base, ctcp.Friendly, ctcp.FDRT, ctcp.IssueTime} {
		cfg := ctcp.DefaultConfig().WithStrategy(s, false)
		st := ctcp.RunProgram(prog, cfg)
		if s == ctcp.Base {
			baseCycles = st.Cycles
		}
		fmt.Printf("%-15v %8d  %5.2f   %5.1f%%   (speedup %.3f)\n",
			s, st.Cycles, st.IPC(), 100*st.IntraClusterFrac(),
			float64(baseCycles)/float64(st.Cycles))
	}
}
