// Package conformance is the machine-checked contract that the functional
// emulator and the cycle-level timing model agree on every program, not just
// the curated benchmark kernels.
//
// The contract has two halves:
//
//   - Architectural conformance: every program in testdata/conformance/ is
//     self-checking (it computes values, OUTs a checksum, and HALTs) and has
//     a golden architectural result (final register file, OUT checksum,
//     memory checksum) committed in golden.json. The emulator must reproduce
//     the golden result exactly.
//
//   - Differential agreement: the timing model consumes the emulator's
//     committed stream and must retire byte-identical records in program
//     order (observed through pipeline.Config.RetireHook), leaving the
//     machine in the same architectural state, under every assignment
//     strategy. FuzzDifferential extends this check from the curated corpus
//     to mutated variants of it.
//
// The package is used by its own tests and by the differential fuzzer; the
// exported API (LoadCorpus, RunRef, RunPipeline, Diff, Mutations/Apply,
// WriteSource) is what a future user-submitted-program intake would reuse to
// validate untrusted programs before simulating them.
package conformance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ctcp/internal/asm"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
)

// DefaultBudget is the committed-instruction ceiling for corpus and fuzzer
// runs. Corpus programs halt within a few thousand instructions; a program
// that runs this long without halting is rejected, not failed.
const DefaultBudget = 100_000

// Program is one corpus entry: the source text and its assembled form.
type Program struct {
	Name   string // file basename without the .s extension
	Path   string
	Source string
	Prog   *isa.Program
}

// Dir returns the corpus directory. The package is always compiled from its
// module location, so the path is relative to internal/conformance.
func Dir() string { return filepath.Join("..", "..", "testdata", "conformance") }

// GoldenPath returns the committed golden-result file.
func GoldenPath() string { return filepath.Join(Dir(), "golden.json") }

// LoadCorpus reads and assembles every .s program in the corpus directory,
// sorted by name so iteration order is deterministic.
func LoadCorpus() ([]Program, error) {
	paths, err := filepath.Glob(filepath.Join(Dir(), "*.s"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("conformance: no corpus programs in %s", Dir())
	}
	out := make([]Program, 0, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("conformance: assembling %s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".s")
		out = append(out, Program{Name: name, Path: path, Source: string(src), Prog: prog})
	}
	return out, nil
}

// ArchResult is the architectural outcome of running a program to HALT: the
// state a conforming implementation must reproduce bit-for-bit.
type ArchResult struct {
	Insts       uint64
	Regs        [isa.NumRegs]uint64
	OutHash     uint64
	MemChecksum uint64
}

// ErrReject marks a program the harness refuses to judge: it faulted or did
// not halt within the budget. Rejection is not divergence — the fuzzer skips
// rejected mutants.
var ErrReject = errors.New("conformance: program rejected")

// RunRef executes prog on the functional emulator until HALT, returning the
// architectural result and the committed-instruction records (the reference
// stream the timing model must retire identically). A fault or a program
// that exceeds budget returns an error wrapping ErrReject.
func RunRef(prog *isa.Program, budget uint64) (ArchResult, []emu.Committed, error) {
	if budget == 0 {
		budget = DefaultBudget
	}
	m := emu.New(prog)
	recs := make([]emu.Committed, 0, 1024)
	for !m.Halted() {
		if m.InstCount() >= budget {
			return ArchResult{}, nil, fmt.Errorf("%w: no HALT within %d instructions", ErrReject, budget)
		}
		c, err := m.Step()
		if err != nil {
			return ArchResult{}, nil, fmt.Errorf("%w: fault: %v", ErrReject, err)
		}
		recs = append(recs, c)
	}
	res := ArchResult{
		Insts:       m.InstCount(),
		Regs:        m.Regs,
		OutHash:     m.OutHash,
		MemChecksum: m.Mem.Checksum(),
	}
	return res, recs, nil
}

// RunPipeline runs prog through the timing model under cfg and checks the
// retirement contract against the reference records: the pipeline must
// retire exactly the reference stream, in order, with byte-identical
// records (asserted via Config.RetireHook), and leave its emulator in the
// reference architectural state. Any violation is returned as an error; a
// configuration the model refuses (core.InvariantError) is returned as a
// plain error, never a panic.
func RunPipeline(prog *isa.Program, budget uint64, cfg pipeline.Config, want []emu.Committed) (res ArchResult, err error) {
	if budget == 0 {
		budget = DefaultBudget
	}
	defer func() {
		if r := recover(); r != nil {
			ie, ok := r.(*core.InvariantError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("conformance: pipeline invariant violated: %w", ie)
		}
	}()

	m := emu.New(prog)
	var (
		retired int
		hookErr error
	)
	cfg.MaxInsts = 0
	cfg.RetireHook = func(ri core.RetireInfo) {
		if hookErr != nil {
			return
		}
		if retired >= len(want) {
			hookErr = fmt.Errorf("retired more than the %d reference instructions", len(want))
			return
		}
		if ri.Rec != want[retired] {
			hookErr = fmt.Errorf("retire %d: pipeline record %+v != reference %+v", retired, ri.Rec, want[retired])
			return
		}
		retired++
	}
	p := pipeline.New(&emu.LimitStream{S: m, Budget: budget}, cfg)
	p.Run()
	if hookErr != nil {
		return ArchResult{}, fmt.Errorf("conformance: %w", hookErr)
	}
	if retired != len(want) {
		return ArchResult{}, fmt.Errorf("conformance: pipeline retired %d of %d reference instructions", retired, len(want))
	}
	res = ArchResult{
		Insts:       m.InstCount(),
		Regs:        m.Regs,
		OutHash:     m.OutHash,
		MemChecksum: m.Mem.Checksum(),
	}
	return res, nil
}

// Diff is the full differential check: run prog on the emulator, then replay
// it through the timing model under cfg, and compare retirement streams and
// final architectural state. It returns nil on agreement, an ErrReject-
// wrapped error for programs the emulator rejects, and a descriptive error
// on divergence.
func Diff(prog *isa.Program, budget uint64, cfg pipeline.Config) error {
	ref, recs, err := RunRef(prog, budget)
	if err != nil {
		return err
	}
	got, err := RunPipeline(prog, budget, cfg, recs)
	if err != nil {
		return err
	}
	return CompareArch(got, ref)
}

// CompareArch reports the first architectural difference between got and
// want, or nil if they are identical.
func CompareArch(got, want ArchResult) error {
	if got.Insts != want.Insts {
		return fmt.Errorf("conformance: committed %d instructions, want %d", got.Insts, want.Insts)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if got.Regs[r] != want.Regs[r] {
			return fmt.Errorf("conformance: register %v = %#x, want %#x", isa.Reg(r), got.Regs[r], want.Regs[r])
		}
	}
	if got.OutHash != want.OutHash {
		return fmt.Errorf("conformance: OUT checksum %#x, want %#x", got.OutHash, want.OutHash)
	}
	if got.MemChecksum != want.MemChecksum {
		return fmt.Errorf("conformance: memory checksum %#x, want %#x", got.MemChecksum, want.MemChecksum)
	}
	return nil
}

// WriteSource renders a program back to assemblable source: a listing of the
// text segment with absolute control targets, the entry point, and the data
// image as .byte rows. Reassembling the output reproduces Text, Data, and
// Entry exactly (see TestWriteSourceRoundtrip); it is how the fuzzer
// persists divergence repros, which have no symbol table to print.
func WriteSource(p *isa.Program) (string, error) {
	if p.TextBase != isa.DefaultTextBase || p.DataBase != isa.DefaultDataBase {
		return "", fmt.Errorf("conformance: cannot render program with non-default segment bases (text %#x, data %#x)", p.TextBase, p.DataBase)
	}
	entryIdx := -1
	if p.Entry != 0 && p.Entry != p.TextBase {
		off := p.Entry - p.TextBase
		if off%isa.PCStride != 0 || off/isa.PCStride >= uint64(len(p.Text)) {
			return "", fmt.Errorf("conformance: entry %#x outside text", p.Entry)
		}
		entryIdx = int(off / isa.PCStride)
	}
	var b strings.Builder
	if entryIdx >= 0 {
		fmt.Fprintf(&b, "        .entry e%d\n", entryIdx)
	}
	for i, in := range p.Text {
		label := "        "
		if i == entryIdx {
			label = fmt.Sprintf("%-8s", fmt.Sprintf("e%d:", entryIdx))
		}
		fmt.Fprintf(&b, "%s%s\n", label, in)
	}
	if len(p.Data) > 0 {
		b.WriteString("        .data\n")
		for off := 0; off < len(p.Data); off += 16 {
			end := off + 16
			if end > len(p.Data) {
				end = len(p.Data)
			}
			parts := make([]string, 0, 16)
			for _, v := range p.Data[off:end] {
				parts = append(parts, fmt.Sprintf("%d", v))
			}
			fmt.Fprintf(&b, "        .byte   %s\n", strings.Join(parts, ", "))
		}
	}
	return b.String(), nil
}
