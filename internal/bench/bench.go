// Package bench measures cycle-model simulation throughput programmatically
// (via testing.Benchmark) so tooling can emit machine-readable numbers
// without parsing `go test -bench` output. `ctcpbench -microbench` uses it
// to write BENCH_pipeline.json, which records the current measurement next
// to the pre-optimization baseline the allocation-free hot path is compared
// against.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/sample"
	"ctcp/internal/workload"
)

// DefaultInsts is the per-run committed-instruction budget; it matches the
// BenchmarkRunProgram budget in internal/pipeline so the JSON numbers and
// `go test -bench` agree.
const DefaultInsts = 30_000

// Kernels lists the workloads the throughput report tracks: two pointer- and
// branch-heavy integer codes, one cache-hostile pointer chaser, and one FP
// kernel. It matches benchKernels in internal/pipeline's bench_test.
var Kernels = []string{"gzip", "mcf", "eon", "perlbmk"}

// Metrics is one kernel's simulation-throughput measurement.
type Metrics struct {
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// Report is one full measurement of every kernel under one toolchain.
type Report struct {
	Label     string             `json:"label"`
	GoVersion string             `json:"go_version"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Insts     uint64             `json:"insts_per_run"`
	Strategy  string             `json:"strategy"`
	Kernels   map[string]Metrics `json:"kernels"`
}

// File is the BENCH_pipeline.json layout: the frozen pre-optimization
// baseline, the most recent measurement, the per-strategy scheduling cost,
// the recorded perf trajectory, and — once measured — the sampled-simulation
// speedup record.
type File struct {
	Baseline Report `json:"baseline"`
	Current  Report `json:"current"`
	// Strategies records the gzip cycle cost under each strategy family, so
	// strategy-specific scheduling overhead is visible in the artifact, not
	// just the FDRT default the kernel table uses.
	Strategies map[string]Metrics `json:"strategy_cycle,omitempty"`
	// Micro is the component-level measurement block (emu dispatch ns/inst,
	// fill-unit assignment ns/trace; see micro.go).
	Micro *MicroMetrics `json:"micro,omitempty"`
	// History is the in-repo perf trajectory: one entry per labeled `make
	// bench BENCH_LABEL=...` run, oldest first.
	History []HistoryEntry `json:"history,omitempty"`
	Sample  *SampleReport  `json:"sample,omitempty"`
}

// HistoryEntry is one recorded point on the perf trajectory. Date comes from
// the caller (a flag), not the clock, so regenerating an entry is
// reproducible and diffs stay quiet.
type HistoryEntry struct {
	Label      string             `json:"label"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	NsPerCycle map[string]float64 `json:"ns_per_cycle"`
	// Micro carries the component measurements taken with this point, when
	// the run recorded them (see micro.go).
	Micro *MicroMetrics `json:"micro,omitempty"`
}

// historyDedupTol is the relative ns/cycle tolerance within which a fresh
// labeled measurement counts as "the same tree, remeasured": re-running
// `make bench BENCH_LABEL=x` on an unchanged tree wobbles each kernel by
// scheduler noise only, and recording that wobble would churn the committed
// JSON (and its date) without carrying information.
const historyDedupTol = 0.02

// RecordHistory records an entry for rep on the file's trajectory and
// reports whether the file changed. A fresh measurement that matches the
// last entry — same label, every kernel's ns/cycle within historyDedupTol —
// is skipped outright, keeping the existing entry (date included) byte-for-
// byte stable. A same-labeled entry with materially different numbers is
// replaced in place so re-running a labeled measurement updates its point
// instead of duplicating it; anything else appends.
func (f *File) RecordHistory(rep Report, label, date string) bool {
	e := HistoryEntry{
		Label:      label,
		Date:       date,
		GoVersion:  rep.GoVersion,
		NsPerCycle: make(map[string]float64, len(rep.Kernels)),
		Micro:      f.Micro,
	}
	for name, m := range rep.Kernels {
		e.NsPerCycle[name] = m.NsPerCycle
	}
	// The dedup compares label and ns/cycle only: the micro block wobbles
	// with the same scheduler noise, and an unchanged tree should keep the
	// recorded point (micro included) untouched.
	if n := len(f.History); n > 0 && f.History[n-1].matches(&e) {
		return false
	}
	for i := range f.History {
		if f.History[i].Label == label {
			f.History[i] = e
			return true
		}
	}
	f.History = append(f.History, e)
	return true
}

// matches reports whether other is a remeasurement of the same point: the
// labels agree, the kernel sets agree, and every kernel's ns/cycle is within
// historyDedupTol relatively.
func (h *HistoryEntry) matches(other *HistoryEntry) bool {
	if h.Label != other.Label || len(h.NsPerCycle) != len(other.NsPerCycle) {
		return false
	}
	for name, ref := range h.NsPerCycle {
		got, ok := other.NsPerCycle[name]
		if !ok || ref <= 0 {
			return false
		}
		if d := math.Abs(got-ref) / ref; d > historyDedupTol {
			return false
		}
	}
	return true
}

// MaxAllocsPerCycle is the hard ceiling the gate holds every kernel's
// steady-state allocation rate to. The alloc-free hot path leaves only
// one-time construction cost (pipeline tables, memo slices, ready heaps),
// which amortizes to ~0.1 allocs/cycle at the default 30k-instruction
// budget; a change that reintroduces even one allocation per cycle lands at
// >= 1.0. The ceiling sits between those regimes with margin on both sides.
// Unlike the ns/cycle check this is absolute, not relative to the committed
// record: allocation counts are deterministic, so there is no noise to
// tolerate and no slow drift worth grandfathering.
const MaxAllocsPerCycle = 0.5

// Gate compares a fresh measurement against the committed record and
// returns an error naming every kernel whose ns/cycle regressed by more
// than tol (a fraction: 0.15 allows 15%) or whose allocs/cycle left the
// ~0 regime (MaxAllocsPerCycle). Kernels present on only one side are
// skipped by the ns check — the gate protects recorded numbers, it does not
// force the kernel sets to match — but the allocation ceiling applies to
// every fresh kernel unconditionally.
func Gate(committed, fresh Report, tol float64) error {
	names := make([]string, 0, len(fresh.Kernels))
	for name := range fresh.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		got := fresh.Kernels[name]
		if got.AllocsPerCycle > MaxAllocsPerCycle {
			bad = append(bad, fmt.Sprintf("%s %.4f allocs/cycle (ceiling %.2f: the hot path must stay allocation-free)",
				name, got.AllocsPerCycle, MaxAllocsPerCycle))
		}
		ref, ok := committed.Kernels[name]
		if !ok || ref.NsPerCycle <= 0 {
			continue
		}
		if got.NsPerCycle > ref.NsPerCycle*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s %.1f ns/cycle vs committed %.1f (+%.0f%%)",
				name, got.NsPerCycle, ref.NsPerCycle, 100*(got.NsPerCycle/ref.NsPerCycle-1)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("microbench gate (ns/cycle beyond %.0f%%, or allocs/cycle above %.2f): %v", 100*tol, MaxAllocsPerCycle, bad)
	}
	return nil
}

// SampleReport records one honest wall-clock comparison between a
// monolithic detailed run and region-parallel sampled simulation of the
// same kernel and budget. Workers and NumCPU are part of the record: the
// speedup is only meaningful relative to the parallelism that produced it.
type SampleReport struct {
	Kernel       string  `json:"kernel"`
	Insts        uint64  `json:"insts"`
	Workers      int     `json:"workers"`
	NumCPU       int     `json:"num_cpu"`
	MonolithicNs int64   `json:"monolithic_ns"`
	SampledNs    int64   `json:"sampled_ns"`
	Speedup      float64 `json:"speedup"`
	FullIPC      float64 `json:"full_ipc"`
	SampledIPC   float64 `json:"sampled_ipc"`
	IPCRelErr    float64 `json:"ipc_rel_err"`
}

// SampleInsts is the budget for the sampled-speedup measurement: large
// enough that region-parallel sampling amortizes its fast-forward pass.
const SampleInsts = 400_000

// RunSample measures the sampled-simulation speedup on the longest kernel
// (mcf) with the configuration the acceptance tests use: regions every
// budget/8 instructions, half of each region simulated in detail, half of
// that as warmup.
func RunSample(insts uint64, workers int) (*SampleReport, error) {
	if insts == 0 {
		insts = SampleInsts
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const kernel = "mcf"
	bm, ok := workload.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("bench: unknown kernel %q", kernel)
	}
	prog := bm.ProgramFor(insts)
	cfg := pipeline.DefaultConfig().WithStrategy(core.FDRT, false)

	monoCfg := cfg
	monoCfg.MaxInsts = insts
	t0 := time.Now()
	full := pipeline.RunProgram(prog, monoCfg)
	monoNs := time.Since(t0).Nanoseconds()

	t0 = time.Now()
	res, err := sample.Run(prog, cfg, sample.Options{
		Interval: insts / 8,
		Detail:   insts / 16,
		Warmup:   insts / 32,
		Workers:  workers,
		MaxInsts: insts,
	})
	if err != nil {
		return nil, err
	}
	sampNs := time.Since(t0).Nanoseconds()

	rep := &SampleReport{
		Kernel:       kernel,
		Insts:        insts,
		Workers:      workers,
		NumCPU:       runtime.NumCPU(),
		MonolithicNs: monoNs,
		SampledNs:    sampNs,
		FullIPC:      full.IPC(),
		SampledIPC:   res.IPC(),
	}
	if sampNs > 0 {
		rep.Speedup = float64(monoNs) / float64(sampNs)
	}
	if rep.FullIPC > 0 {
		rep.IPCRelErr = (rep.SampledIPC - rep.FullIPC) / rep.FullIPC
	}
	return rep, nil
}

// Run measures simulation throughput for every kernel with the FDRT
// strategy and an insts-instruction budget per op (0 selects DefaultInsts).
func Run(insts uint64) (Report, error) {
	if insts == 0 {
		insts = DefaultInsts
	}
	rep := Report{
		Label:     "current",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Insts:     insts,
		Strategy:  core.FDRT.String(),
		Kernels:   make(map[string]Metrics, len(Kernels)),
	}
	for _, name := range Kernels {
		m, err := runKernel(name, insts, core.FDRT)
		if err != nil {
			return rep, err
		}
		rep.Kernels[name] = m
	}
	return rep, nil
}

// StrategyFamilies are the four strategy families whose scheduling cost the
// bench artifact tracks (the FriendlyMiddle and FDRTNoPin variants share
// their parents' hot-path shape).
func StrategyFamilies() []core.StrategyKind {
	return []core.StrategyKind{core.Base, core.IssueTime, core.Friendly, core.FDRT}
}

// RunStrategies measures the gzip cycle cost under every strategy family,
// keyed by strategy name (0 insts selects DefaultInsts).
func RunStrategies(insts uint64) (map[string]Metrics, error) {
	if insts == 0 {
		insts = DefaultInsts
	}
	out := make(map[string]Metrics, 4)
	for _, k := range StrategyFamilies() {
		m, err := runKernel("gzip", insts, k)
		if err != nil {
			return nil, err
		}
		out[k.String()] = m
	}
	return out, nil
}

// benchReps is how often each kernel is measured; the recorded Metrics are
// the fastest repetition. Scheduler noise on a shared machine only ever adds
// time, so the minimum over repetitions is the best estimator of the true
// cost and is what keeps regenerated records stable run to run.
const benchReps = 5

func runKernel(name string, insts uint64, strat core.StrategyKind) (Metrics, error) {
	var best Metrics
	for rep := 0; rep < benchReps; rep++ {
		m, err := measureKernel(name, insts, strat)
		if err != nil {
			return Metrics{}, err
		}
		if rep == 0 || m.NsPerOp < best.NsPerOp {
			best = m
		}
	}
	return best, nil
}

// round1 and round4 fix the emitted precision: raw float64 ratios (e.g.
// 23554146.888888888) churn every diff of the regenerated JSON without
// carrying information.
func round1(x float64) float64 { return math.Round(x*10) / 10 }
func round4(x float64) float64 { return math.Round(x*10000) / 10000 }

func measureKernel(name string, insts uint64, strat core.StrategyKind) (Metrics, error) {
	bm, ok := workload.ByName(name)
	if !ok {
		return Metrics{}, fmt.Errorf("bench: unknown kernel %q", name)
	}
	prog := bm.ProgramFor(insts)
	cfg := pipeline.DefaultConfig().WithStrategy(strat, false)
	cfg.MaxInsts = insts
	var cycles int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			cycles += pipeline.RunProgram(prog, cfg).Cycles
		}
	})
	if cycles <= 0 {
		return Metrics{}, fmt.Errorf("bench: %s simulation made no progress", name)
	}
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	cyclesPerOp := float64(cycles) / float64(r.N)
	return Metrics{
		Iterations:     r.N,
		NsPerOp:        round1(nsPerOp),
		BytesPerOp:     r.AllocedBytesPerOp(),
		AllocsPerOp:    r.AllocsPerOp(),
		NsPerCycle:     round1(nsPerOp / cyclesPerOp),
		CyclesPerSec:   round1(float64(cycles) / r.T.Seconds()),
		AllocsPerCycle: round4(float64(r.AllocsPerOp()) / cyclesPerOp),
	}, nil
}

// Baseline returns the frozen pre-optimization measurement, taken at the
// commit immediately before the allocation-free hot-path rewrite (map-based
// port/producer bookkeeping, per-instruction inflight allocation,
// filtered-append queue drains) on the reference machine recorded in GOOS /
// GOARCH. It seeds BENCH_pipeline.json when no baseline is present.
func Baseline() Report {
	mk := func(iters int, nsPerOp, cyclesPerSec, nsPerCycle float64, bytesPerOp, allocsPerOp int64) Metrics {
		cyclesPerOp := nsPerOp / nsPerCycle
		return Metrics{
			Iterations:     iters,
			NsPerOp:        nsPerOp,
			BytesPerOp:     bytesPerOp,
			AllocsPerOp:    allocsPerOp,
			NsPerCycle:     nsPerCycle,
			CyclesPerSec:   cyclesPerSec,
			AllocsPerCycle: float64(allocsPerOp) / cyclesPerOp,
		}
	}
	return Report{
		Label:     "pre-optimization seed model",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Insts:     DefaultInsts,
		Strategy:  core.FDRT.String(),
		Kernels: map[string]Metrics{
			"gzip":    mk(25, 49253493, 305237, 3276, 37386276, 309651),
			"mcf":     mk(19, 66291668, 953710, 1049, 39430614, 362876),
			"eon":     mk(18, 61842860, 359379, 2783, 40872689, 340086),
			"perlbmk": mk(24, 48134019, 884468, 1131, 45760338, 466881),
		},
	}
}
