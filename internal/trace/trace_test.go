package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
)

func rec(pc uint64, inst isa.Inst, taken bool) emu.Committed {
	return emu.Committed{PC: pc, Inst: inst, Taken: taken}
}

func addInst(pc uint64) emu.Committed {
	return rec(pc, isa.Inst{Op: isa.ADD, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)}, false)
}

func brInst(pc uint64, taken bool) emu.Committed {
	c := rec(pc, isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: 0x900000, UseImm: true}, taken)
	if taken {
		c.NextPC = 0x900000 // forward target: does not trigger loop-closing termination
	} else {
		c.NextPC = pc + 4
	}
	return c
}

func TestBuilderBackwardTakenTermination(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x2000))
	back := rec(0x2004, isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: 0x2000, UseImm: true}, true)
	back.NextPC = 0x2000
	tr := b.Add(back)
	if tr == nil {
		t.Fatal("taken backward branch did not terminate the trace")
	}
	if tr.Len() != 2 {
		t.Errorf("trace length %d", tr.Len())
	}
	// A not-taken backward branch does not terminate.
	b2 := NewBuilder(DefaultConfig())
	nt := rec(0x2004, isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: 0x2000, UseImm: true}, false)
	nt.NextPC = 0x2008
	if b2.Add(nt) != nil {
		t.Error("not-taken backward branch terminated the trace")
	}
}

func TestBuilderCapacityTermination(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	var tr *Trace
	for i := 0; i < 16; i++ {
		if tr = b.Add(addInst(0x1000 + uint64(i*4))); tr != nil && i != 15 {
			t.Fatalf("trace terminated early at %d", i)
		}
	}
	if tr == nil {
		t.Fatal("trace did not terminate at MaxLen")
	}
	if tr.Len() != 16 || tr.Blocks != 1 || tr.EndsIndirect {
		t.Errorf("trace: len=%d blocks=%d indirect=%v", tr.Len(), tr.Blocks, tr.EndsIndirect)
	}
	if tr.StartPC != 0x1000 {
		t.Errorf("StartPC = %#x", tr.StartPC)
	}
}

func TestBuilderThreeBlockTermination(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	pc := uint64(0x1000)
	var tr *Trace
	adds := 0
	for i := 0; i < 3; i++ { // three blocks: add, add, branch
		if tr = b.Add(addInst(pc)); tr != nil {
			t.Fatal("premature termination")
		}
		pc += 4
		adds++
		tr = b.Add(brInst(pc, i%2 == 0))
		pc += 4
		if i < 2 && tr != nil {
			t.Fatalf("terminated after branch %d", i+1)
		}
	}
	if tr == nil {
		t.Fatal("third branch did not terminate the trace")
	}
	if tr.Blocks != 3 || tr.Len() != 6 {
		t.Errorf("blocks=%d len=%d", tr.Blocks, tr.Len())
	}
	pcs, dirs := tr.CondBranchPCs()
	if len(pcs) != 3 || dirs[0] != true || dirs[1] != false || dirs[2] != true {
		t.Errorf("branch flags: %v %v", pcs, dirs)
	}
}

func TestBuilderIndirectTermination(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x1000))
	tr := b.Add(rec(0x1004, isa.Inst{Op: isa.RET, Rb: isa.RA}, true))
	if tr == nil || !tr.EndsIndirect {
		t.Fatal("indirect control did not terminate trace")
	}
}

func TestBuilderHaltTermination(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	tr := b.Add(rec(0x1000, isa.Inst{Op: isa.HALT}, false))
	if tr == nil {
		t.Fatal("HALT did not terminate trace")
	}
}

func TestBuilderFlush(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x1000))
	b.Add(addInst(0x1004))
	tr := b.Flush()
	if tr == nil || tr.Len() != 2 {
		t.Fatal("Flush did not return partial trace")
	}
	if b.Pending() != 0 {
		t.Error("builder not empty after Flush")
	}
	if b.Flush() != nil {
		t.Error("empty Flush returned a trace")
	}
}

func TestCacheLookupPathAssociativity(t *testing.T) {
	c := NewCache(DefaultConfig())
	mk := func(taken bool) *Trace {
		b := NewBuilder(DefaultConfig())
		b.Add(addInst(0x1000))
		b.Add(brInst(0x1004, taken))
		b.Add(addInst(0x1008))
		return b.Flush()
	}
	c.Install(mk(true))
	c.Install(mk(false))
	predTaken := func(uint64) bool { return true }
	predNot := func(uint64) bool { return false }
	if tr := c.Lookup(0x1000, predTaken); tr == nil || !tr.Slots[1].Taken {
		t.Error("taken-path line not found")
	}
	if tr := c.Lookup(0x1000, predNot); tr == nil || tr.Slots[1].Taken {
		t.Error("not-taken-path line not found")
	}
	if c.S.Hits != 2 || c.S.Lookups != 2 {
		t.Errorf("stats %+v", c.S)
	}
}

func TestCacheMissOnWrongPath(t *testing.T) {
	c := NewCache(DefaultConfig())
	b := NewBuilder(DefaultConfig())
	b.Add(brInst(0x2000, true))
	c.Install(b.Flush())
	if c.Lookup(0x2000, func(uint64) bool { return false }) != nil {
		t.Error("hit despite prediction mismatch")
	}
	if c.Lookup(0x3000, func(uint64) bool { return true }) != nil {
		t.Error("hit on wrong start PC")
	}
}

func TestCacheSamePathUpdateKeepsFetchCount(t *testing.T) {
	c := NewCache(DefaultConfig())
	mk := func() *Trace {
		b := NewBuilder(DefaultConfig())
		b.Add(addInst(0x4000))
		b.Add(addInst(0x4004))
		return b.Flush()
	}
	c.Install(mk())
	tr := c.Lookup(0x4000, func(uint64) bool { return true })
	if tr == nil || tr.Fetches != 1 {
		t.Fatalf("fetches = %v", tr)
	}
	c.Install(mk())
	tr2 := c.Lookup(0x4000, func(uint64) bool { return true })
	if tr2.Fetches != 2 {
		t.Errorf("fetch count not preserved across update: %d", tr2.Fetches)
	}
	if c.S.Updated != 1 {
		t.Errorf("updated = %d", c.S.Updated)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lines = 2 // 1 set x 2 ways
	cfg.Ways = 2
	c := NewCache(cfg)
	mk := func(pc uint64) *Trace {
		b := NewBuilder(cfg)
		b.Add(addInst(pc))
		return b.Flush()
	}
	// Same set requires (pc>>2) & 0 == 0: all PCs map to set 0.
	c.Install(mk(0x1000))
	c.Install(mk(0x2000))
	c.Lookup(0x1000, func(uint64) bool { return true }) // refresh 0x1000
	c.Install(mk(0x3000))                               // evicts 0x2000
	if c.Lookup(0x2000, func(uint64) bool { return true }) != nil {
		t.Error("LRU line survived")
	}
	if c.Lookup(0x1000, func(uint64) bool { return true }) == nil {
		t.Error("MRU line evicted")
	}
	if c.S.Evictions != 1 {
		t.Errorf("evictions = %d", c.S.Evictions)
	}
}

func TestSlotIndexIdentityAfterBuild(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	for i := 0; i < 4; i++ {
		b.Add(addInst(0x1000 + uint64(i*4)))
	}
	tr := b.Flush()
	tr.CheckSlotIndices(DefaultConfig().MaxLen)
	for i, s := range tr.Slots {
		if s.SlotIndex != i {
			t.Fatalf("slot %d has index %d, want identity", i, s.SlotIndex)
		}
	}
	// A physical reorder that keeps injectivity is accepted.
	tr.Slots[0].SlotIndex, tr.Slots[3].SlotIndex = 3, 0
	tr.CheckSlotIndices(DefaultConfig().MaxLen)
}

func TestCheckSlotIndicesPanicsOnCorruption(t *testing.T) {
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x1000))
	b.Add(addInst(0x1004))
	tr := b.Flush()
	tr.Slots[1].SlotIndex = 0 // duplicate slot position
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on corrupt slot placement")
		}
	}()
	tr.CheckSlotIndices(DefaultConfig().MaxLen)
}

// Property: for random instruction streams, traces never exceed MaxLen
// instructions or MaxBlocks blocks, and concatenating the produced traces
// reproduces the input stream in order.
func TestBuilderInvariantsQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder(cfg)
		var stream []uint64
		var traces []*Trace
		pc := uint64(0x1000)
		for i := 0; i < 200; i++ {
			var c emu.Committed
			switch r.Intn(10) {
			case 0:
				c = brInst(pc, r.Intn(2) == 0)
			case 1:
				c = rec(pc, isa.Inst{Op: isa.JMP, Rb: isa.R(5)}, true)
			default:
				c = addInst(pc)
			}
			stream = append(stream, pc)
			pc += 4
			if tr := b.Add(c); tr != nil {
				traces = append(traces, tr)
			}
		}
		if tr := b.Flush(); tr != nil {
			traces = append(traces, tr)
		}
		var replay []uint64
		for _, tr := range traces {
			if tr.Len() > cfg.MaxLen || tr.Blocks > cfg.MaxBlocks {
				return false
			}
			tr.CheckSlotIndices(cfg.MaxLen)
			for _, s := range tr.Slots {
				replay = append(replay, s.PC)
			}
		}
		if len(replay) != len(stream) {
			return false
		}
		for i := range replay {
			if replay[i] != stream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(DefaultConfig())
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x1000))
	c.Install(b.Flush())
	c.Reset()
	if c.Lookup(0x1000, func(uint64) bool { return true }) != nil {
		t.Error("line survived Reset")
	}
	if c.S.Lookups != 1 {
		t.Error("stats not reset before lookup count")
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Lookups: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("idle HitRate != 0")
	}
}

func TestBadCacheConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewCache(Config{Lines: 10, Ways: 3})
}

func TestProfileIsMember(t *testing.T) {
	if (Profile{}).IsMember() {
		t.Error("zero profile is a member")
	}
	if !(Profile{Role: RoleLeader, ChainCluster: 2}).IsMember() {
		t.Error("leader not a member")
	}
}

func TestDumpExposesLines(t *testing.T) {
	c := NewCache(DefaultConfig())
	b := NewBuilder(DefaultConfig())
	b.Add(addInst(0x1000))
	c.Install(b.Flush())
	found := 0
	for _, set := range c.Dump() {
		for _, tr := range set {
			if tr != nil {
				found++
			}
		}
	}
	if found != 1 {
		t.Errorf("Dump shows %d lines, want 1", found)
	}
}
