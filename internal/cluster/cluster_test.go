package cluster

import (
	"testing"

	"ctcp/internal/isa"
)

func TestChainDistance(t *testing.T) {
	g := DefaultGeometry()
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {1, 3, 2}, {3, 0, 3},
	}
	for _, c := range cases {
		if got := g.Distance(c.a, c.b); got != c.want {
			t.Errorf("chain Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRingDistance(t *testing.T) {
	g := DefaultGeometry()
	g.Topology = Ring
	cases := []struct{ a, b, want int }{
		{0, 3, 1}, {0, 2, 2}, {1, 3, 2}, {0, 1, 1},
	}
	for _, c := range cases {
		if got := g.Distance(c.a, c.b); got != c.want {
			t.Errorf("ring Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestForwardLat(t *testing.T) {
	g := DefaultGeometry()
	if g.ForwardLat(1, 1) != 0 {
		t.Error("intra-cluster forwarding not free")
	}
	if g.ForwardLat(0, 1) != 2 {
		t.Error("adjacent forwarding != 2 cycles")
	}
	if g.ForwardLat(0, 3) != 6 {
		t.Error("end-to-end chain forwarding != 6 cycles")
	}
	g.HopLat = 1
	if g.ForwardLat(0, 3) != 3 {
		t.Error("1-cycle hop variant wrong")
	}
}

func TestDistancePanicsOnBadCluster(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid cluster")
		}
	}()
	DefaultGeometry().Distance(0, 7)
}

func TestNeighborsPreferMiddle(t *testing.T) {
	g := DefaultGeometry()
	n0 := g.Neighbors(0)
	if len(n0) != 1 || n0[0] != 1 {
		t.Errorf("Neighbors(0) = %v", n0)
	}
	n1 := g.Neighbors(1)
	if len(n1) != 2 || n1[0] != 2 {
		// cluster 2 is more central than cluster 0
		t.Errorf("Neighbors(1) = %v, want middle-first [2 0]", n1)
	}
	g.Topology = Ring
	n0r := g.Neighbors(0)
	if len(n0r) != 2 {
		t.Errorf("ring Neighbors(0) = %v", n0r)
	}
}

func TestMiddleClusters(t *testing.T) {
	g := DefaultGeometry()
	mc := g.MiddleClusters()
	if len(mc) != 4 {
		t.Fatalf("MiddleClusters = %v", mc)
	}
	if !(mc[0] == 1 || mc[0] == 2) || !(mc[1] == 1 || mc[1] == 2) {
		t.Errorf("middle clusters first: %v", mc)
	}
	if !(mc[2] == 0 || mc[2] == 3) || !(mc[3] == 0 || mc[3] == 3) {
		t.Errorf("end clusters last: %v", mc)
	}
	g2 := Geometry{Clusters: 2, Width: 4, HopLat: 2}
	if len(g2.MiddleClusters()) != 2 {
		t.Error("two-cluster middle set wrong")
	}
}

func TestSlotCluster(t *testing.T) {
	g := DefaultGeometry()
	for slot, want := range map[int]int{0: 0, 3: 0, 4: 1, 11: 2, 15: 3} {
		if got := g.SlotCluster(slot); got != want {
			t.Errorf("SlotCluster(%d) = %d, want %d", slot, got, want)
		}
	}
	if g.TotalWidth() != 16 {
		t.Errorf("TotalWidth = %d", g.TotalWidth())
	}
}

func TestStationsForCoverAllClasses(t *testing.T) {
	for class := isa.Class(0); class < isa.NumClasses; class++ {
		if len(StationsFor(class)) == 0 {
			t.Errorf("class %v has no reservation station", class)
		}
		if len(UnitsFor(class)) == 0 {
			t.Errorf("class %v has no functional unit", class)
		}
	}
}

func TestStationMapping(t *testing.T) {
	if s := StationsFor(isa.ClassIntALU); len(s) != 2 || s[0] != RSSimpleA || s[1] != RSSimpleB {
		t.Errorf("simple int stations = %v", s)
	}
	if s := StationsFor(isa.ClassFPLoad); len(s) != 1 || s[0] != RSMem {
		t.Errorf("fp load stations = %v", s)
	}
	if s := StationsFor(isa.ClassFPSqrt); len(s) != 1 || s[0] != RSCpx {
		t.Errorf("fp sqrt stations = %v", s)
	}
	if u := UnitsFor(isa.ClassFPAdd); len(u) != 1 || u[0] != FUFPSimple {
		t.Errorf("fp add units = %v", u)
	}
	if u := UnitsFor(isa.ClassJump); len(u) != 1 || u[0] != FUBr {
		t.Errorf("jump units = %v", u)
	}
}

func TestLatencyTable(t *testing.T) {
	cases := map[isa.Class]Latency{
		isa.ClassIntALU: {1, 1},
		isa.ClassIntMul: {3, 1},
		isa.ClassIntDiv: {20, 19},
		isa.ClassFPMul:  {3, 1},
		isa.ClassFPDiv:  {12, 12},
		isa.ClassFPSqrt: {24, 24},
		isa.ClassLoad:   {1, 1},
		isa.ClassBranch: {1, 1},
	}
	for class, want := range cases {
		if got := LatencyFor(class); got != want {
			t.Errorf("LatencyFor(%v) = %+v, want %+v", class, got, want)
		}
	}
}

func TestTopologyString(t *testing.T) {
	if Chain.String() != "chain" || Ring.String() != "ring" {
		t.Error("topology names wrong")
	}
}

func TestDefaultRSConfig(t *testing.T) {
	rs := DefaultRSConfig()
	if rs.Entries != 8 || rs.WritePorts != 2 {
		t.Errorf("RS config = %+v", rs)
	}
}
