// Fixture for the floateq analyzer: exact ==/!= with a floating operand is
// flagged; integer comparisons, orderings and constant folds are not.
package fixture

func compare(a, b float64, x int, f float32) bool {
	if a == b { // want:floateq
		return true
	}
	if a != 0 { // want:floateq
		return false
	}
	if f == 1.5 { // want:floateq
		return true
	}
	if x == 3 { // integers compare exactly: no diagnostic
		return true
	}
	const c = 1.5
	const folded = c == 1.5 // constant-folded at compile time: no diagnostic
	_ = folded
	return a < b // orderings are fine
}

func suppressed(got, want float64) bool {
	return got == want //ctcp:lint-ok floateq -- golden value assigned, never computed
}
