package pipeline

import (
	"fmt"
	"math"
	"reflect"
)

// Fingerprint returns a 64-bit FNV-64a hash over the canonical serialization
// of the full configuration. Two configs fingerprint equal exactly when every
// result-determining field is equal, so the hash is a safe identity for
// memoized results, on-disk journals, and checkpoint headers: anything keyed
// by it can never serve a result simulated under a different configuration.
//
// The serialization walks the struct by reflection in declaration order,
// hashing each field's path (so a renamed or moved field changes the
// fingerprint rather than silently colliding with the old layout) followed by
// its value in a fixed-width encoding. Function-typed fields (RetireHook) are
// observers, not configuration — they cannot change simulated state — and are
// excluded. Every other field kind must be explicitly supported:
// fingerprintValue panics on an unhandled kind, so adding a map or pointer
// field to Config forces a decision here instead of being hashed by accident
// as its address.
func (c Config) Fingerprint() uint64 {
	h := fnvOffset
	fingerprintValue(&h, "Config", reflect.ValueOf(c))
	return h
}

// FNV-64a, inlined rather than hash/fnv so the canonical constants are pinned
// in this file next to the format they define.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h *uint64, b byte) {
	*h = (*h ^ uint64(b)) * fnvPrime
}

func fnvU64(h *uint64, v uint64) {
	for i := 0; i < 64; i += 8 {
		fnvByte(h, byte(v>>i))
	}
}

func fnvString(h *uint64, s string) {
	fnvU64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		fnvByte(h, s[i])
	}
}

func fingerprintValue(h *uint64, path string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			fingerprintValue(h, path+"."+t.Field(i).Name, v.Field(i))
		}
	case reflect.Func:
		// Observers only; excluded from the identity.
	case reflect.Bool:
		fnvString(h, path)
		if v.Bool() {
			fnvU64(h, 1)
		} else {
			fnvU64(h, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fnvString(h, path)
		fnvU64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fnvString(h, path)
		fnvU64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		fnvString(h, path)
		fnvU64(h, math.Float64bits(v.Float()))
	case reflect.String:
		fnvString(h, path)
		fnvString(h, v.String())
	default:
		panic(fmt.Sprintf("pipeline: config field %s has unsupported kind %v for fingerprinting", path, v.Kind()))
	}
}
