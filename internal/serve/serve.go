// Package serve implements ctcpd, a stdlib-only HTTP/JSON simulation
// service over the experiment runner. Clients submit (benchmark, strategy,
// budget, mode) jobs; the service simulates each distinct job exactly once —
// concurrent duplicates join the in-flight job, repeats are answered from a
// content-addressed result store keyed by the canonical run fingerprint
// (experiment.RunFingerprint) — and exposes its counters in Prometheus text
// form on /metrics.
//
// The job lifecycle is crash-durable: every acceptance is journaled
// (append-on-accept, tombstone-on-terminal, compact-on-restart, all through
// internal/snap's torn-write-free disciplines), so a restarted server
// replays queued and interrupted jobs instead of losing them, while
// completed fingerprints answer from the store with zero resimulation.
// Intake is multi-tenant: per-tenant API keys, token-bucket rate limits and
// queue quotas, with fair-share (round-robin) dispatch across tenants'
// queues so one tenant's sweep cannot starve another. Progress streams:
// every job exposes an event feed (queued/running, per-segment and
// per-region ticks, terminal) over a server-sent-events endpoint.
//
// Shutdown drains in-flight simulations cooperatively: checkpoint-mode runs
// stop at the next segment boundary with their newest checkpoint already on
// disk, so a restarted server resumes them bit-exactly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"ctcp/internal/experiment"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// Config configures a Server.
type Config struct {
	// Store is the result-store directory (required).
	Store string
	// CheckpointDir, when set, lets jobs request checkpoint-segmented runs;
	// it is also what makes shutdown lossless for long simulations.
	CheckpointDir string
	// SlotDir, when set, exposes the named save-state slots in that
	// directory over /api/v1/slots (list, inspect, fork).
	SlotDir string
	// Journal is the durable queue journal path ("" = <Store>/queue.journal).
	// Every accepted job is journaled before the client sees 202; a restart
	// over the same journal replays outstanding jobs automatically.
	Journal string
	// Keys is a static API key file ("<key> <tenant> [quota=N] [rate=R]
	// [burst=B]" per line). When set, every /api request must present a
	// known key; when empty the server is open and all traffic shares the
	// default tenant.
	Keys string
	// TenantRate/TenantBurst are the default per-tenant token-bucket
	// submission limits (accepted submissions per second, bucket size).
	// Rate 0 = unlimited. The key file can override both per tenant.
	TenantRate  float64
	TenantBurst float64
	// TenantQuota bounds one tenant's queued+running jobs (0 = unbounded
	// beyond the global QueueDepth; overridable per tenant in the key file).
	TenantQuota int
	// QueueDepth bounds the number of accepted-but-not-running jobs
	// (0 = 64). A full queue rejects submissions with 429 rather than
	// accepting unbounded work.
	QueueDepth int
	// Workers is the number of concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// DefaultBudget is applied to requests that omit a budget
	// (0 = experiment.DefaultBudget).
	DefaultBudget uint64
	// RetainJobs bounds the terminal jobs kept in memory (0 = 512). Evicted
	// jobs disappear from /api/v1/jobs, but their results stay addressable
	// forever via /api/v1/results/{fp} — the store is the system of record.
	RetainJobs int
	// MaxRunners bounds the pooled runners (and their memo caches) kept
	// alive (0 = 8): idle runners beyond the cap are evicted LRU-first, so
	// sustained traffic over many option profiles cannot grow memory
	// without bound.
	MaxRunners int
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
}

// Request is the submission payload of POST /api/v1/jobs.
type Request struct {
	// Benchmark is a workload name (see workload.All).
	Benchmark string `json:"benchmark"`
	// Config is a strategy-configuration name (see experiment.StrategyConfigs).
	Config string `json:"config"`
	// Budget is the committed-instruction budget (0 = server default).
	Budget uint64 `json:"budget,omitempty"`

	// SampleInterval switches the run to region-parallel sampled simulation;
	// SampleDetail and SampleWarmup pass through. Mutually exclusive with
	// Checkpoint.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleDetail   uint64 `json:"sample_detail,omitempty"`
	SampleWarmup   uint64 `json:"sample_warmup,omitempty"`

	// Checkpoint requests a checkpoint-segmented run (requires the server to
	// be configured with a checkpoint directory).
	Checkpoint      bool   `json:"checkpoint,omitempty"`
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// mode names the request's simulation mode for records and logs.
func (req Request) mode() string {
	switch {
	case req.SampleInterval != 0:
		return "sampled"
	case req.Checkpoint:
		return "checkpointed"
	default:
		return "full"
	}
}

// Job statuses, in lifecycle order.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusFailed      = "failed"
	StatusInterrupted = "interrupted"
)

// Job tracks one submitted simulation from acceptance to result. All mutable
// fields are guarded by the owning Server's mutex; done is closed exactly
// once, when the job reaches a terminal status.
type Job struct {
	ID          string
	Fingerprint string
	Request     Request

	seq    int
	tenant *tenant
	bm     workload.Benchmark
	cfg    pipeline.Config
	opts   experiment.Options
	status string
	errMsg string
	stats  *pipeline.Stats
	cached bool // satisfied from the result store, no simulation
	queued time.Time
	begun  time.Time
	done   chan struct{}

	events []Event
	subs   map[chan Event]struct{}
}

// jobView is the JSON shape of a job in every API response.
type jobView struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	Tenant      string          `json:"tenant"`
	Benchmark   string          `json:"benchmark"`
	Config      string          `json:"config"`
	Budget      uint64          `json:"budget"`
	Mode        string          `json:"mode"`
	Status      string          `json:"status"`
	Cached      bool            `json:"cached"`
	Error       string          `json:"error,omitempty"`
	Stats       *pipeline.Stats `json:"stats,omitempty"`
}

// pooledRunner wraps one experiment.Runner in the server's pool with the
// bookkeeping the idle-eviction policy needs.
type pooledRunner struct {
	profile string
	r       *experiment.Runner
	active  int // jobs currently inside RunErr
	lastUse time.Time
}

// Server is the ctcpd HTTP handler plus its worker pool. Create with New,
// serve with net/http, stop with Shutdown.
type Server struct {
	cfg     Config
	store   *Store
	journal *jobJournal
	slots   *experiment.SlotStore // nil unless Config.SlotDir is set
	mux     *http.ServeMux

	interrupt chan struct{}
	wg        sync.WaitGroup

	mu           sync.Mutex
	cond         *sync.Cond // pending work / shutdown, guarded by mu
	closed       bool
	authRequired bool
	seq          int
	jobs         map[string]*Job // by ID
	byFP         map[string]*Job // by fingerprint: the service-level dedup index
	runners      map[string]*pooledRunner
	runnerBase   experiment.RunnerStats // counters of evicted runners (keeps /metrics monotonic)
	tenants      map[string]*tenant     // by name (always includes DefaultTenant)
	keys         map[string]*tenant     // by API key
	rr           []string               // fair-share round-robin order (sorted tenant names)
	rrNext       int
	pending      int             // reserved or queued, not yet running (the 429 bound)
	terminal     []*Job          // terminal jobs in completion order (retention ring)
	progress     map[string]*Job // (runner profile, run key) -> running job

	// testRunFn, when set before the first submission, replaces the
	// simulation call on every pooled runner (fault injection in tests).
	testRunFn func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error)

	submitted, completed, failed, interrupted, rejected uint64
	throttled, unauthorized, storeHits                  uint64
	queueWait, simWall                                  time.Duration
	queueWaitN, simN                                    uint64
	queueHist, simHist                                  histogram
}

// New builds a Server, opens (or creates) its result store, replays the
// queue journal, and starts its worker pool.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating checkpoint directory: %w", err)
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultBudget == 0 {
		cfg.DefaultBudget = experiment.DefaultBudget
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 512
	}
	if cfg.MaxRunners <= 0 {
		cfg.MaxRunners = 8
	}
	if cfg.Journal == "" {
		cfg.Journal = filepath.Join(cfg.Store, "queue.journal")
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		journal:   &jobJournal{path: cfg.Journal},
		interrupt: make(chan struct{}),
		jobs:      make(map[string]*Job),
		byFP:      make(map[string]*Job),
		runners:   make(map[string]*pooledRunner),
		tenants:   make(map[string]*tenant),
		keys:      make(map[string]*tenant),
		progress:  make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.SlotDir != "" {
		st, err := experiment.OpenSlots(cfg.SlotDir)
		if err != nil {
			return nil, fmt.Errorf("serve: opening slot directory: %w", err)
		}
		s.slots = st
	}
	s.tenants[DefaultTenant] = cfg.newTenant(DefaultTenant, "")
	if cfg.Keys != "" {
		byKey, byName, err := loadKeyFile(&cfg, cfg.Keys)
		if err != nil {
			return nil, err
		}
		s.keys = byKey
		for name, tn := range byName { //ctcp:lint-ok maporder -- map-to-map copy; order-insensitive
			s.tenants[name] = tn
		}
		s.authRequired = true
	}
	s.rr = tenantNames(s.tenants)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/batch", s.handleBatch)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/results/{fp}", s.handleResult)
	mux.HandleFunc("GET /api/v1/slots", s.handleSlots)
	mux.HandleFunc("GET /api/v1/slots/{name}", s.handleSlot)
	mux.HandleFunc("POST /api/v1/slots/{name}/fork", s.handleSlotFork)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// options translates a validated request into the runner options that
// simulate it. Everything here that affects results is covered by
// experiment.RunFingerprint; Parallelism is sized so a runner never throttles
// below the server's own worker pool.
func (s *Server) options(req Request) experiment.Options {
	opts := experiment.Options{
		Budget:         req.Budget,
		Parallelism:    s.cfg.Workers,
		SampleInterval: req.SampleInterval,
		SampleDetail:   req.SampleDetail,
		SampleWarmup:   req.SampleWarmup,
		Interrupt:      s.interrupt,
	}
	if req.Checkpoint {
		opts.CheckpointDir = s.cfg.CheckpointDir
		opts.CheckpointEvery = req.CheckpointEvery
	}
	return opts
}

// profileKey groups jobs that can share one experiment.Runner: the runner
// memoizes by benchmark/config name only, so every result-affecting option
// must be part of the pool key.
func profileKey(opts experiment.Options) string {
	return fmt.Sprintf("b%d|s%d,%d,%d|c%s,%d",
		opts.Budget,
		opts.SampleInterval, opts.SampleDetail, opts.SampleWarmup,
		opts.CheckpointDir, opts.CheckpointEvery)
}

// runnerForLocked returns the pooled runner for a job's options profile,
// creating it on first use, and marks it active. Caller holds s.mu.
func (s *Server) runnerForLocked(opts experiment.Options) *pooledRunner {
	profile := profileKey(opts)
	pr, ok := s.runners[profile]
	if !ok {
		ropts := opts
		ropts.Progress = func(ev experiment.ProgressEvent) { s.routeProgress(profile, ev) }
		ropts.RunFn = s.testRunFn
		pr = &pooledRunner{profile: profile, r: experiment.NewRunner(ropts)}
		s.runners[profile] = pr
	}
	pr.active++
	pr.lastUse = time.Now()
	return pr
}

// releaseRunnerLocked returns a runner to the idle pool and evicts
// least-recently-used idle runners beyond the configured cap. Evicted
// runners fold their counters into runnerBase so /metrics stays monotonic;
// their memo caches are dropped — the result store still answers repeats.
// Caller holds s.mu.
func (s *Server) releaseRunnerLocked(pr *pooledRunner) {
	pr.active--
	pr.lastUse = time.Now()
	for len(s.runners) > s.cfg.MaxRunners {
		var oldest *pooledRunner
		for _, cand := range s.runners { //ctcp:lint-ok maporder -- LRU min-scan; order-insensitive
			if cand.active == 0 && (oldest == nil || cand.lastUse.Before(oldest.lastUse)) {
				oldest = cand
			}
		}
		if oldest == nil {
			return // every runner is busy; try again on the next release
		}
		rs := oldest.r.Stats()
		s.runnerBase.Started += rs.Started
		s.runnerBase.Completed += rs.Completed
		s.runnerBase.Failed += rs.Failed
		s.runnerBase.Deduped += rs.Deduped
		s.runnerBase.CacheHits += rs.CacheHits
		delete(s.runners, oldest.profile)
	}
}

// validate resolves a request against the known benchmarks and strategy
// configurations and applies server defaults. It returns the resolved
// benchmark and config alongside the normalized request.
func (s *Server) validate(req Request) (Request, workload.Benchmark, pipeline.Config, error) {
	bm, ok := workload.ByName(req.Benchmark)
	if !ok {
		return req, bm, pipeline.Config{}, fmt.Errorf("unknown benchmark %q", req.Benchmark)
	}
	cfgs := experiment.StrategyConfigs()
	cfg, ok := cfgs[req.Config]
	if !ok {
		names := make([]string, 0, len(cfgs))
		for name := range cfgs { //ctcp:lint-ok maporder -- keys are collected and sorted before use
			names = append(names, name)
		}
		sort.Strings(names)
		return req, bm, cfg, fmt.Errorf("unknown config %q (have %v)", req.Config, names)
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.DefaultBudget
	}
	if req.SampleInterval != 0 && req.Checkpoint {
		return req, bm, cfg, fmt.Errorf("sampled and checkpointed modes are mutually exclusive")
	}
	if req.Checkpoint && s.cfg.CheckpointDir == "" {
		return req, bm, cfg, fmt.Errorf("checkpoint requested but the server has no checkpoint directory")
	}
	return req, bm, cfg, nil
}

// Submit accepts a job as the default tenant; HTTP handlers resolve tenants
// from API keys and go through SubmitAs directly.
func (s *Server) Submit(req Request) (*Job, int, error) {
	s.mu.Lock()
	tn := s.tenants[DefaultTenant]
	s.mu.Unlock()
	return s.SubmitAs(req, tn)
}

// SubmitAs accepts a job for a tenant (or joins/answers an equivalent one).
// The returned HTTP status tells the story: 202 for a newly accepted (and
// journaled) simulation, 200 when the request was satisfied by an existing
// job or the result store, 400 for an invalid request, 429 when throttled or
// over quota or queue depth, 503 when shutting down.
//
// The dedup index is checked-and-reserved under the server mutex, but the
// result-store read — a disk access — happens outside it: the reservation
// keeps concurrent duplicates joined to one job while every other handler
// proceeds unblocked.
func (s *Server) SubmitAs(req Request, tn *tenant) (*Job, int, error) {
	req, bm, cfg, err := s.validate(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	opts := s.options(req)
	fp := experiment.RunFingerprint(bm.Name, cfg, opts)
	hex := fpHex(fp)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	// Service-level dedup: an equivalent job (queued, running, or already
	// terminal) absorbs the submission — and is deliberately not charged
	// against the tenant's rate or quota, since it costs no new work.
	if j, ok := s.byFP[hex]; ok {
		s.mu.Unlock()
		return j, http.StatusOK, nil
	}
	// Admission control, all under one lock: token bucket, tenant quota,
	// global queue depth.
	if !tn.allow(time.Now()) {
		tn.throttled++
		s.throttled++
		s.mu.Unlock()
		return nil, http.StatusTooManyRequests, fmt.Errorf("tenant %s is rate-limited (%.3g/s)", tn.name, tn.rate)
	}
	if tn.quota > 0 && tn.active >= tn.quota {
		tn.rejected++
		s.rejected++
		s.mu.Unlock()
		return nil, http.StatusTooManyRequests, fmt.Errorf("tenant %s is at its quota (%d queued+running jobs)", tn.name, tn.quota)
	}
	if s.pending >= s.cfg.QueueDepth {
		tn.rejected++
		s.rejected++
		s.mu.Unlock()
		return nil, http.StatusTooManyRequests, fmt.Errorf("job queue is full (depth %d)", s.cfg.QueueDepth)
	}
	j := s.newJobLocked(req, hex, bm, cfg, opts, tn)
	s.mu.Unlock()

	// Durable dedup, off the lock: a previous process may already have
	// simulated this fingerprint.
	if rec, ok := s.store.Get(fp); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		j.status = StatusDone
		j.stats = rec.Stats
		j.cached = true
		s.pending--
		tn.active--
		tn.storeHits++
		s.storeHits++
		s.retireLocked(j)
		s.logf("job %s: %s/%s served from store (%s)", j.ID, req.Benchmark, req.Config, hex)
		return j, http.StatusOK, nil
	}

	// Make the acceptance durable before the client hears 202: a crash
	// after this line replays the job instead of losing it.
	if err := s.journal.append(journalEntry{Op: journalAccept, FP: hex, Tenant: tn.name, Request: &req}); err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		j.status = StatusFailed
		j.errMsg = err.Error()
		s.pending--
		tn.active--
		s.failed++
		tn.failed++
		s.retireLocked(j)
		return nil, http.StatusInternalServerError, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Shutdown won the race. The journal entry stays: the restart
		// replays this acceptance, so the work is delayed, not lost.
		j.status = StatusInterrupted
		j.errMsg = experiment.ErrInterrupted.Error()
		s.pending--
		tn.active--
		s.interrupted++
		tn.interrupted++
		s.retireLocked(j)
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down")
	}
	tn.pending = append(tn.pending, j)
	s.submitted++
	tn.submitted++
	s.emitEventLocked(j, Event{Type: StatusQueued})
	s.cond.Signal()
	s.logf("job %s: queued %s/%s budget=%d mode=%s fp=%s tenant=%s",
		j.ID, req.Benchmark, req.Config, req.Budget, req.mode(), hex, tn.name)
	return j, http.StatusAccepted, nil
}

// newJobLocked allocates, indexes, and reserves a job: it occupies a
// pending slot and a tenant-active slot from this moment. Caller holds s.mu.
func (s *Server) newJobLocked(req Request, hex string, bm workload.Benchmark, cfg pipeline.Config, opts experiment.Options, tn *tenant) *Job {
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("job-%d", s.seq),
		Fingerprint: hex,
		Request:     req,
		seq:         s.seq,
		tenant:      tn,
		bm:          bm,
		cfg:         cfg,
		opts:        opts,
		status:      StatusQueued,
		queued:      time.Now(),
		done:        make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.byFP[hex] = j
	s.pending++
	tn.active++
	return j
}

// replayJournal rebuilds the queue from the journal at startup: outstanding
// accepts whose fingerprints the store has already answered are compacted
// away, the rest re-enter their tenants' queues exactly as fresh
// submissions would, and the journal is rewritten to the surviving set.
func (s *Server) replayJournal() error {
	entries, err := s.journal.load()
	if err != nil {
		return err
	}
	// Phase 1, off-lock: everything that touches the disk or only reads
	// immutable server config — the store probe, validation, and the
	// fingerprint-drift check. Holding s.mu across store.Get is exactly the
	// I/O-under-lock shape lockheld exists to reject.
	type replayCand struct {
		e    journalEntry
		req  Request
		bm   workload.Benchmark
		cfg  pipeline.Config
		opts experiment.Options
	}
	cands := make([]replayCand, 0, len(entries))
	for _, e := range entries {
		var fp uint64
		if _, err := fmt.Sscanf(e.FP, "%016x", &fp); err != nil {
			continue
		}
		if _, ok := s.store.Get(fp); ok {
			continue // completed before the restart: the store answers it
		}
		req, bm, cfg, err := s.validate(*e.Request)
		if err != nil {
			s.logf("journal: dropping %s: %v", e.FP, err)
			continue
		}
		opts := s.options(req)
		if hex := fpHex(experiment.RunFingerprint(bm.Name, cfg, opts)); hex != e.FP {
			s.logf("journal: dropping %s: fingerprint drift (now %s)", e.FP, hex)
			continue
		}
		cands = append(cands, replayCand{e: e, req: req, bm: bm, cfg: cfg, opts: opts})
	}
	// Phase 2, one short lock region: index and queue the survivors.
	s.mu.Lock()
	kept := entries[:0]
	for _, c := range cands {
		if _, dup := s.byFP[c.e.FP]; dup {
			continue
		}
		tn, ok := s.tenants[c.e.Tenant]
		if !ok {
			tn = s.tenants[DefaultTenant]
		}
		j := s.newJobLocked(c.req, c.e.FP, c.bm, c.cfg, c.opts, tn)
		tn.pending = append(tn.pending, j)
		s.submitted++
		tn.submitted++
		s.emitEventLocked(j, Event{Type: StatusQueued})
		s.logf("job %s: replayed %s/%s fp=%s tenant=%s", j.ID, c.req.Benchmark, c.req.Config, c.e.FP, tn.name)
		e := c.e
		e.Request = &c.req
		kept = append(kept, e)
	}
	s.mu.Unlock()
	return s.journal.compact(kept)
}

// worker consumes the tenant queues until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks until a job is dispatchable (fair-share across tenants) or
// the server closes.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if j := s.dequeueLocked(); j != nil {
			return j
		}
		s.cond.Wait()
	}
}

// dequeueLocked pops the next job round-robin across tenants with pending
// work, so interleaved tenants get interleaved service regardless of how
// deep any one tenant's backlog is. Caller holds s.mu.
func (s *Server) dequeueLocked() *Job {
	n := len(s.rr)
	for i := 0; i < n; i++ {
		tn := s.tenants[s.rr[(s.rrNext+i)%n]]
		if len(tn.pending) == 0 {
			continue
		}
		j := tn.pending[0]
		tn.pending = tn.pending[1:]
		s.pending--
		s.rrNext = (s.rrNext + i + 1) % n
		return j
	}
	return nil
}

// runJob executes one dequeued job to a terminal status.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.begun = time.Now()
	wait := j.begun.Sub(j.queued)
	s.queueWait += wait
	s.queueWaitN++
	s.queueHist.observe(wait.Seconds())
	pr := s.runnerForLocked(j.opts)
	key := j.bm.Name + "/" + j.Request.Config
	s.progress[pr.profile+"\x00"+key] = j
	s.emitEventLocked(j, Event{Type: StatusRunning})
	s.mu.Unlock()

	stats, err := pr.r.RunErr(j.bm, j.Request.Config, j.cfg)
	wall := time.Since(j.begun)

	if err == nil {
		if perr := s.store.Put(&Record{
			Fingerprint: j.Fingerprint,
			Benchmark:   j.Request.Benchmark,
			Config:      j.Request.Config,
			Budget:      j.Request.Budget,
			Mode:        j.Request.mode(),
			Stats:       stats,
		}); perr != nil {
			// The result is valid even if persisting it failed; the job
			// succeeds and only durability is lost.
			s.logf("job %s: result store write failed: %v", j.ID, perr)
		}
	}
	wasInterrupted := errors.Is(err, experiment.ErrInterrupted)
	if !wasInterrupted {
		// Done and failed both settle the acceptance — the submitter got
		// its answer. Interrupted jobs stay journaled on purpose: their
		// acceptance is still owed a simulation, and the restart replays it.
		if jerr := s.journal.append(journalEntry{Op: journalSettle, FP: j.Fingerprint}); jerr != nil {
			s.logf("job %s: %v", j.ID, jerr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.progress, pr.profile+"\x00"+key)
	s.releaseRunnerLocked(pr)
	s.simWall += wall
	s.simN++
	s.simHist.observe(wall.Seconds())
	tn := j.tenant
	tn.active--
	switch {
	case err == nil:
		j.status = StatusDone
		j.stats = stats
		s.completed++
		tn.completed++
		s.logf("job %s: done in %v", j.ID, wall.Round(time.Millisecond))
	case wasInterrupted:
		j.status = StatusInterrupted
		j.errMsg = err.Error()
		s.interrupted++
		tn.interrupted++
		// Drop the memoized interruption so a retry (or the journal replay
		// on restart, which reuses this process's runner pool only in
		// tests) simulates fresh.
		pr.r.Forget(j.bm, j.Request.Config)
		s.logf("job %s: interrupted by shutdown", j.ID)
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		s.failed++
		tn.failed++
		// The runner memoizes failures per key; forget this one so a
		// resubmission of the fingerprint re-runs instead of replaying the
		// recorded failure.
		pr.r.Forget(j.bm, j.Request.Config)
		s.logf("job %s: failed: %v", j.ID, err)
	}
	s.retireLocked(j)
}

// retireLocked finishes a terminal job: it scrubs failed/interrupted
// fingerprints from the dedup index (the headline poisoning fix — a
// resubmitted failed fingerprint must re-run, not be answered with the
// stale terminal job forever), appends the job to the bounded retention
// ring, evicting the oldest terminal jobs beyond the cap, emits the
// terminal event, and unblocks waiters. Caller holds s.mu; the caller has
// already set status/errMsg/stats and bumped its counters.
func (s *Server) retireLocked(j *Job) {
	switch j.status {
	case StatusFailed, StatusInterrupted:
		if cur, ok := s.byFP[j.Fingerprint]; ok && cur == j {
			delete(s.byFP, j.Fingerprint)
		}
	}
	s.terminal = append(s.terminal, j)
	for len(s.terminal) > s.cfg.RetainJobs {
		old := s.terminal[0]
		s.terminal = s.terminal[1:]
		delete(s.jobs, old.ID)
		if cur, ok := s.byFP[old.Fingerprint]; ok && cur == old {
			delete(s.byFP, old.Fingerprint)
		}
	}
	s.emitEventLocked(j, Event{Type: j.status, Error: j.errMsg})
	close(j.done)
}

// Shutdown stops intake, interrupts queued and in-flight simulations, and
// waits (up to ctx) for the workers to drain. Checkpoint-mode runs stop at
// their next segment boundary with the newest checkpoint already persisted,
// so nothing beyond one segment of work is lost — and because queued and
// interrupted jobs stay in the journal, a restart replays them to
// completion rather than forgetting them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.interrupt)
		s.cond.Broadcast()
	}
	// Jobs still sitting in tenant queues will never be picked up (workers
	// exit on closed); resolve them so waiters unblock. Their journal
	// entries remain un-settled, so a restart replays them.
	for _, name := range s.rr {
		tn := s.tenants[name]
		for _, j := range tn.pending {
			j.status = StatusInterrupted
			j.errMsg = experiment.ErrInterrupted.Error()
			s.pending--
			tn.active--
			s.interrupted++
			tn.interrupted++
			s.retireLocked(j)
		}
		tn.pending = nil
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// view renders a job under s.mu.
func (s *Server) view(j *Job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobView{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Tenant:      j.tenant.name,
		Benchmark:   j.Request.Benchmark,
		Config:      j.Request.Config,
		Budget:      j.Request.Budget,
		Mode:        j.Request.mode(),
		Status:      j.status,
		Cached:      j.cached,
		Error:       j.errMsg,
		Stats:       j.stats,
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, status, err := s.SubmitAs(req, tn)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, s.view(j))
}

// batchItem is one row of a batch-submit response: the job view (when the
// row was accepted or joined) plus the per-row status code and error.
type batchItem struct {
	jobView
	Code  int    `json:"code"`
	Error string `json:"error,omitempty"`
}

// handleBatch accepts a whole sweep in one request: {"jobs": [Request...]}.
// Every row goes through the same admission, dedup (index + store), and
// journaling as a single submission; the response carries one item per row
// in order, each with its own status code, so partial acceptance is
// explicit rather than all-or-nothing.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		Jobs []Request `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no jobs"))
		return
	}
	items := make([]batchItem, len(req.Jobs))
	for i, jr := range req.Jobs {
		j, code, err := s.SubmitAs(jr, tn)
		items[i].Code = code
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].jobView = s.view(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": items})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration: %w", err))
			return
		}
		if d > 5*time.Minute {
			d = 5 * time.Minute
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleList lists this process's jobs in submission order. On a keyed
// server each tenant sees only its own jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	filter := s.authRequired
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs { //ctcp:lint-ok maporder -- collected then sorted by seq below
		if filter && j.tenant != tn {
			continue
		}
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = s.view(j)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	fp, err := strconv.ParseUint(r.PathValue("fp"), 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fingerprint must be a 64-bit hex value"))
		return
	}
	rec, ok := s.store.Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for fingerprint %s", fpHex(fp)))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
