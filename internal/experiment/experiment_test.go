package experiment

import (
	"strings"
	"testing"

	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// testRunner uses a small budget so the experiment matrix stays fast in CI.
func testRunner() *Runner { return NewRunner(Options{Budget: 30_000}) }

func TestRunnerCaches(t *testing.T) {
	r := testRunner()
	bm, _ := workload.ByName("gzip")
	a := r.Run(bm, "base", BaseConfig())
	b := r.Run(bm, "base", BaseConfig())
	if a != b {
		t.Error("Run did not cache")
	}
}

func TestRunnerBudgetRespected(t *testing.T) {
	r := testRunner()
	bm, _ := workload.ByName("gzip")
	s := r.Run(bm, "base", BaseConfig())
	if s.Retired != r.Budget() {
		t.Errorf("retired %d, want budget %d", s.Retired, r.Budget())
	}
}

func TestTable1ShapesAndRender(t *testing.T) {
	r := testRunner()
	res := Table1(r)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values[0] < 0.5 {
			t.Errorf("%s: %%TC %.2f implausibly low", row.Bench, row.Values[0])
		}
		if row.Values[1] < 3 || row.Values[1] > 16 {
			t.Errorf("%s: trace size %.2f out of range", row.Bench, row.Values[1])
		}
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "bzip2", "vpr", "Avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure4SumsToOne(t *testing.T) {
	r := testRunner()
	res := Figure4(r)
	for _, row := range res.Rows {
		sum := row.Values[0] + row.Values[1] + row.Values[2]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: critical sources sum to %.4f", row.Bench, sum)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	r := testRunner()
	res := Table2(r)
	for _, row := range res.Rows {
		if row.Values[0] <= 0 || row.Values[0] > 1 || row.Values[1] <= 0 || row.Values[1] > 1 {
			t.Errorf("%s: fractions out of range: %v", row.Bench, row.Values)
		}
	}
	if len(res.Paper) != 6 {
		t.Error("paper reference values missing")
	}
}

func TestTable3HighRepeatRates(t *testing.T) {
	r := testRunner()
	res := Table3(r)
	for _, row := range res.Rows {
		// The paper's key observation: producers repeat for the overwhelming
		// majority of forwarded inputs (this justifies chain prediction).
		if row.Values[0] < 0.7 {
			t.Errorf("%s: RS1 repeat rate %.2f too low to support chaining", row.Bench, row.Values[0])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	r := testRunner()
	res := Figure5(r)
	hm := res.HM()
	noFwd, noCrit, noIntra, noInter, noRF := hm[0], hm[1], hm[2], hm[3], hm[4]
	if noFwd < 1.05 {
		t.Errorf("removing all forwarding latency speeds up only %.3f", noFwd)
	}
	if noCrit > noFwd+0.02 {
		t.Errorf("no-crit (%.3f) exceeds no-fwd (%.3f)", noCrit, noFwd)
	}
	// Most of the benefit comes from the critical input alone (paper: 37.2
	// of 41.8 points).
	if (noCrit - 1) < 0.6*(noFwd-1) {
		t.Errorf("critical-only benefit %.3f too small vs all-forwarding %.3f", noCrit, noFwd)
	}
	if noIntra < 1.0 || noInter < 1.0 {
		t.Errorf("partial removals slowed down: intra %.3f inter %.3f", noIntra, noInter)
	}
	// Register file latency must be essentially irrelevant (paper Fig. 5).
	if noRF < 0.99 || noRF > 1.05 {
		t.Errorf("RF latency removal speedup %.3f, want ~1.0", noRF)
	}
	_ = res.Render()
}

func TestFigure6Shape(t *testing.T) {
	r := testRunner()
	res := Figure6(r)
	hm := res.HM()
	for i, v := range hm {
		if v < 0.85 || v > 1.6 {
			t.Errorf("strategy column %d HM %.3f implausible", i, v)
		}
	}
	fdrt := hm[2]
	if fdrt < 1.0 {
		t.Errorf("FDRT mean speedup %.3f below 1.0", fdrt)
	}
	_ = res.Render()
}

func TestTable8RetireTimeImprovesLocality(t *testing.T) {
	r := testRunner()
	res := Table8(r)
	var base, friendly, fdrt []float64
	for _, row := range res.IntraRows {
		base = append(base, row.Values[0])
		friendly = append(friendly, row.Values[1])
		fdrt = append(fdrt, row.Values[2])
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(friendly) <= mean(base) {
		t.Errorf("Friendly intra-cluster %.3f not above base %.3f", mean(friendly), mean(base))
	}
	if mean(fdrt) <= mean(base) {
		t.Errorf("FDRT intra-cluster %.3f not above base %.3f", mean(fdrt), mean(base))
	}
	_ = res.Render()
}

func TestFigure7OptionsSumToOne(t *testing.T) {
	r := testRunner()
	res := Figure7(r)
	for _, row := range res.Rows {
		sum := 0.0
		for k := 0; k < 5; k++ { // A..E (skipped overlaps A-D)
			sum += row.Values[k]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: option fractions sum to %.4f", row.Bench, sum)
		}
	}
	_ = res.Render()
}

func TestTable9PinningReducesChainMigration(t *testing.T) {
	r := testRunner()
	res := Table9(r)
	reduced := 0
	for _, row := range res.Rows {
		if row.Values[3] > 0 {
			reduced++
		}
	}
	// The paper's central Table 9 claim: pinning reduces chain migration for
	// the large majority of programs (perlbmk is its own noted anomaly).
	if reduced < 4 {
		t.Errorf("pinning reduced chain migration for only %d/6 benchmarks", reduced)
	}
	_ = res.Render()
}

func TestTable10Render(t *testing.T) {
	r := testRunner()
	res := Table10(r)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "Pinning") {
		t.Error("render missing header")
	}
}

func TestFigure8VariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 8 sweeps 3 architectures")
	}
	r := testRunner()
	res := Figure8(r)
	for _, name := range []string{"ring", "hop1", "2x4"} {
		rows := res.Configs[name]
		if len(rows) != 6 {
			t.Fatalf("%s: rows = %d", name, len(rows))
		}
		hm := res.HM(name)
		if hm[0] < 0.8 || hm[0] > 1.6 {
			t.Errorf("%s: FDRT HM %.3f implausible", name, hm[0])
		}
	}
	_ = res.Render()
}

func TestFigure9SuitesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 9 sweeps all 26 benchmarks")
	}
	r := NewRunner(Options{Budget: 20_000})
	res := Figure9(r)
	for _, suite := range []string{"SPECint2000", "MediaBench"} {
		if len(res.Suites[suite]) != 4 {
			t.Fatalf("%s: missing strategy means", suite)
		}
		if n := len(res.Rows[suite]); n != 12 && n != 14 {
			t.Errorf("%s: %d rows", suite, n)
		}
	}
	_ = res.Render()
}

func TestFig8VariantConfigs(t *testing.T) {
	ring := fig8Variant("ring")
	if ring.Geom.Topology.String() != "ring" {
		t.Error("ring variant wrong")
	}
	hop1 := fig8Variant("hop1")
	if hop1.Geom.HopLat != 1 {
		t.Error("hop1 variant wrong")
	}
	two := fig8Variant("2x4")
	if two.Geom.Clusters != 2 || two.FetchWidth != 8 || two.Trace.MaxLen != 8 {
		t.Error("2x4 variant wrong")
	}
	// The variants leave the baseline untouched.
	if BaseConfig().Geom.HopLat != 2 || BaseConfig().Geom.Clusters != 4 {
		t.Error("baseline mutated by variant construction")
	}
}

func TestStrategyConfigsComplete(t *testing.T) {
	cfgs := StrategyConfigs()
	for _, key := range []string{"base", "friendly", "fdrt", "fdrt-nopin", "issue0", "issue4"} {
		if _, ok := cfgs[key]; !ok {
			t.Errorf("missing strategy config %q", key)
		}
	}
	if cfgs["issue4"].SteerStages != 4 {
		t.Errorf("issue4 steer stages = %d", cfgs["issue4"].SteerStages)
	}
	if cfgs["issue0"].SteerStages != 0 {
		t.Errorf("issue0 steer stages = %d", cfgs["issue0"].SteerStages)
	}
}

var _ = pipeline.Config{} // keep the import when shapes change

func TestAblationRuns(t *testing.T) {
	r := testRunner()
	res := Ablation(r)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	hm := res.HM()
	if len(hm) != 5 {
		t.Fatalf("hm = %v", hm)
	}
	for i, v := range hm {
		if v < 0.8 || v > 1.5 {
			t.Errorf("variant %d HM %.3f implausible", i, v)
		}
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps run many configurations")
	}
	r := NewRunner(Options{Budget: 20_000})
	hop := SweepHopLatency(r)
	if len(hop.Points) != 3 {
		t.Fatalf("hop sweep points = %d", len(hop.Points))
	}
	// FDRT's value grows with hop cost: the speedup at 4-cycle hops must be
	// at least that at 1-cycle hops.
	if hop.Points[2].FDRTSpeedup < hop.Points[0].FDRTSpeedup-0.02 {
		t.Errorf("FDRT speedup not increasing with hop latency: %v", hop.Points)
	}
	rob := SweepROB(r)
	// A bigger window never reduces base IPC.
	if rob.Points[2].BaseIPC < rob.Points[0].BaseIPC-0.05 {
		t.Errorf("base IPC fell with larger ROB: %v", rob.Points)
	}
	tc := SweepTraceCache(r)
	if !strings.Contains(tc.Render(), "trace-cache-lines") {
		t.Error("render missing param name")
	}
}
