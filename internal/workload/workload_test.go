package workload

import (
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/prog"
)

func TestSuiteSizes(t *testing.T) {
	if n := len(SPECint()); n != 12 {
		t.Errorf("SPECint has %d programs, want 12", n)
	}
	if n := len(MediaBench()); n != 14 {
		t.Errorf("MediaBench has %d programs, want 14", n)
	}
	if n := len(Selected()); n != 6 {
		t.Errorf("Selected has %d programs, want 6", n)
	}
	want := map[string]bool{"bzip2": true, "eon": true, "gzip": true,
		"perlbmk": true, "twolf": true, "vpr": true}
	for _, bm := range Selected() {
		if !want[bm.Name] {
			t.Errorf("unexpected selected benchmark %q", bm.Name)
		}
	}
	seen := map[string]bool{}
	for _, bm := range All() {
		if seen[bm.Name] {
			t.Errorf("duplicate benchmark name %q", bm.Name)
		}
		seen[bm.Name] = true
		if bm.Description == "" {
			t.Errorf("%s has no description", bm.Name)
		}
	}
}

func TestAllBenchmarksRunToCompletion(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			m := emu.New(bm.Build(1))
			n, err := m.Run(5_000_000)
			if err != nil {
				t.Fatalf("faulted after %d insts: %v", n, err)
			}
			if !m.Halted() {
				t.Fatalf("did not halt within budget (%d insts)", n)
			}
			if n < 1000 {
				t.Errorf("only %d instructions at scale 1: too small to be meaningful", n)
			}
			if m.OutHash == 0 {
				t.Error("checksum is zero; kernels may be dead code")
			}
		})
	}
}

func TestChecksumsDeterministic(t *testing.T) {
	for _, bm := range []string{"bzip2", "eon", "adpcm_enc"} {
		b, ok := ByName(bm)
		if !ok {
			t.Fatalf("benchmark %q missing", bm)
		}
		if b.Checksum(1) != b.Checksum(1) {
			t.Errorf("%s checksum not deterministic", bm)
		}
	}
}

func TestScaleExtendsRun(t *testing.T) {
	bm, _ := ByName("gzip")
	m1 := emu.New(bm.Build(1))
	n1, _ := m1.Run(0)
	m3 := emu.New(bm.Build(3))
	n3, _ := m3.Run(0)
	if n3 <= n1 {
		t.Errorf("scale 3 ran %d insts, scale 1 ran %d", n3, n1)
	}
	perIter := (n3 - n1) / 2
	if perIter < 500 {
		t.Errorf("per-iteration instruction count %d too small", perIter)
	}
}

func TestProgramForMeetsBudget(t *testing.T) {
	bm, _ := ByName("twolf")
	p := bm.ProgramFor(200_000)
	m := emu.New(p)
	n, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 200_000 {
		t.Errorf("ProgramFor(200k) only ran %d instructions", n)
	}
	// Memoized: same pointer on second call.
	if bm.ProgramFor(200_000) != p {
		t.Error("ProgramFor not memoized")
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("does-not-exist"); ok {
		t.Error("ByName returned ok for unknown benchmark")
	}
}

func TestInstructionMixes(t *testing.T) {
	// The suite must collectively exercise every functional-unit class the
	// cluster provides; per benchmark, check the expected flavor.
	type mix struct {
		loads, stores, branches, fp, mulDiv, indirect uint64
		total                                         uint64
	}
	measure := func(p *isa.Program) mix {
		m := emu.New(p)
		var mx mix
		for {
			c, ok := m.Next()
			if !ok {
				break
			}
			mx.total++
			cl := c.Inst.Op.Class()
			switch {
			case cl.IsLoad():
				mx.loads++
			case cl.IsStore():
				mx.stores++
			case cl == isa.ClassBranch || cl == isa.ClassFPBranch:
				mx.branches++
			case cl == isa.ClassJump:
				mx.indirect++
			case cl == isa.ClassIntMul || cl == isa.ClassIntDiv:
				mx.mulDiv++
			case cl == isa.ClassFPAdd || cl == isa.ClassFPMul || cl == isa.ClassFPDiv || cl == isa.ClassFPSqrt:
				mx.fp++
			}
		}
		return mx
	}
	eon, _ := ByName("eon")
	if mx := measure(eon.Build(1)); mx.fp*20 < mx.total {
		t.Errorf("eon FP fraction too small: %d/%d", mx.fp, mx.total)
	}
	mcf, _ := ByName("mcf")
	if mx := measure(mcf.Build(1)); mx.loads*6 < mx.total {
		t.Errorf("mcf load fraction too small: %d/%d", mx.loads, mx.total)
	}
	perl, _ := ByName("perlbmk")
	if mx := measure(perl.Build(1)); mx.indirect == 0 {
		t.Error("perlbmk has no indirect control flow")
	}
	gap, _ := ByName("gap")
	if mx := measure(gap.Build(1)); mx.mulDiv == 0 {
		t.Error("gap has no multiplies")
	}
	for _, bm := range All() {
		mx := measure(bm.Build(1))
		if mx.branches*50 < mx.total {
			t.Errorf("%s: branch fraction %d/%d below 2%%", bm.Name, mx.branches, mx.total)
		}
		if mx.loads == 0 || mx.stores == 0 {
			t.Errorf("%s: missing loads or stores (%d/%d)", bm.Name, mx.loads, mx.stores)
		}
	}
}

func TestFNVKernelMatchesReference(t *testing.T) {
	// Cross-check emitFNV against a host FNV-1a (32-bit folding) on the
	// same data.
	b := prog.New()
	r := newRNG(77)
	data := randBytes(r, 64)
	b.Bytes("d", data)
	b.Movi(isa.R(6), 0)
	emitFNV(b, "d", 64, 1, 1)
	b.Out(isa.R(6))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var h uint64 = 0x811C9DC5
	for _, c := range data {
		h ^= uint64(c)
		h *= 16777619
	}
	if m.OutValues[0] != h {
		t.Errorf("FNV kernel = %#x, reference = %#x", m.OutValues[0], h)
	}
}

func TestSumKernelMatchesReference(t *testing.T) {
	b := prog.New()
	vals := []uint64{5, 10, 15, 20, 1, 2, 3, 4}
	b.Quads("v", vals...)
	b.Movi(isa.R(6), 0)
	emitSum(b, "v", int64(len(vals)))
	b.Out(isa.R(6))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range vals {
		want += v
	}
	if m.OutValues[0] != want {
		t.Errorf("sum kernel = %d, want %d", m.OutValues[0], want)
	}
}

func TestMTFKernelPreservesPermutation(t *testing.T) {
	// After any number of MTF steps the table must remain a permutation of
	// 0..63.
	bm, _ := ByName("bzip2")
	p := bm.Build(2)
	m := emu.New(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	addr := p.Symbols["mtftab"]
	seen := make([]bool, 64)
	for i := 0; i < 64; i++ {
		v := m.Mem.LoadByte(addr + uint64(i))
		if v >= 64 || seen[v] {
			t.Fatalf("MTF table corrupt at %d: value %d", i, v)
		}
		seen[v] = true
	}
}

func TestPointerChaseListIsCycle(t *testing.T) {
	b := prog.New()
	r := newRNG(123)
	placeList(b, r, "L", 64)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	head := m.Mem.Read(p.Symbols["L_head"], 8)
	cur := head
	for i := 0; i < 64; i++ {
		cur = m.Mem.Read(cur, 8)
	}
	if cur != head {
		t.Error("list does not close into a 64-node cycle")
	}
}
