// Package isa defines TRISC-64, the 64-bit RISC instruction set executed by the
// CTCP simulator. The ISA is Alpha-flavored: 32 integer registers (R31 reads as
// zero), 32 floating-point registers (F31 reads as zero), fixed-width
// instructions at 4-byte PC stride, three-operand integer/FP operate formats,
// base+displacement memory addressing, and compare-against-zero conditional
// branches.
//
// The package is pure data definition: opcodes, operand roles, functional-unit
// classes, register naming, and a binary encoding (see encoding.go). Execution
// semantics live in internal/emu; timing lives in internal/pipeline.
package isa

import "fmt"

// Reg names one architectural register. Integer registers occupy 0–31 and
// floating-point registers 32–63, so a single dependence-tracking namespace
// covers both files. R31 and F31 are hardwired zero sources and discard writes.
type Reg uint8

// Register-space constants.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// ZeroReg is the hardwired-zero integer register (R31).
	ZeroReg Reg = 31
	// FZeroReg is the hardwired-zero floating-point register (F31 = reg 63).
	FZeroReg Reg = 63
	// NoReg marks an absent operand.
	NoReg Reg = 255

	// RA is the conventional link (return-address) register, R26.
	RA Reg = 26
	// SP is the conventional stack pointer, R30.
	SP Reg = 30
	// GP is the conventional global/data pointer, R29.
	GP Reg = 29
)

// R returns the i'th integer register.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// IsZero reports whether r is one of the hardwired zero registers.
func (r Reg) IsZero() bool { return r == ZeroReg || r == FZeroReg }

// String renders the architectural register name (r0…r31, f0…f31).
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", r)
	case r < NumRegs:
		return fmt.Sprintf("f%d", r-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Op enumerates TRISC-64 opcodes.
type Op uint8

// Opcodes. The groups mirror the special-purpose functional units of the
// clustered core (Bhargava & John, Fig. 3): simple integer, complex integer,
// integer memory, branch, basic FP, complex FP, and FP memory.
const (
	NOP Op = iota

	// Simple integer operate: Rc = Ra op (Rb | Imm).
	ADD
	SUB
	AND
	OR
	XOR
	ANDNOT
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT
	CMPLE
	CMPULT
	CMPULE
	SEXTB
	SEXTW
	// MOVI: Rc = Imm (32-bit signed immediate materialization).
	MOVI

	// Complex integer: multiply/divide/remainder.
	MUL
	DIV
	REM

	// Integer memory: loads Rc = MEM[Ra+Imm], stores MEM[Ra+Imm] = Rb.
	LDQ
	LDL
	LDW
	LDBU
	STQ
	STL
	STW
	STB

	// Control: conditional branches test Ra against zero; BR is unconditional
	// (optionally linking Rc); JSR/JMP/RET are register-indirect.
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE
	BR
	JSR
	JMP
	RET

	// Basic floating point: Fc = Fa op Fb; compares write 0.0/2.0 like Alpha.
	ADDT
	SUBT
	CMPTEQ
	CMPTLT
	CMPTLE
	CVTQT
	CVTTQ
	ITOF
	FTOI

	// Complex floating point.
	MULT
	DIVT
	SQRTT

	// FP memory.
	LDT
	STT

	// FP branches test Fa against zero.
	FBEQ
	FBNE

	// Machine control.
	HALT
	OUT

	numOps
)

// NumOps is the number of defined opcodes (useful for table sizing and fuzzing).
const NumOps = int(numOps)

// Class groups opcodes by the functional unit that executes them and by the
// reservation station that buffers them.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional + unconditional direct branches
	ClassJump   // register-indirect control flow (JSR/JMP/RET)
	ClassFPAdd  // basic FP (add/sub/compare/convert)
	ClassFPMul
	ClassFPDiv
	ClassFPSqrt
	ClassFPLoad
	ClassFPStore
	ClassFPBranch
	ClassHalt
	NumClasses
)

// String returns a short class mnemonic.
func (c Class) String() string {
	names := [...]string{"nop", "ialu", "imul", "idiv", "load", "store", "br",
		"jmp", "fpadd", "fpmul", "fpdiv", "fpsqrt", "fpload", "fpstore", "fbr", "halt"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool {
	return c == ClassLoad || c == ClassStore || c == ClassFPLoad || c == ClassFPStore
}

// IsLoad reports whether the class reads data memory.
func (c Class) IsLoad() bool { return c == ClassLoad || c == ClassFPLoad }

// IsStore reports whether the class writes data memory.
func (c Class) IsStore() bool { return c == ClassStore || c == ClassFPStore }

// IsControl reports whether the class can redirect the PC.
func (c Class) IsControl() bool {
	return c == ClassBranch || c == ClassJump || c == ClassFPBranch
}

// OpInfo is the static description of one opcode.
type OpInfo struct {
	Name  string
	Class Class
	// HasDest reports whether the op writes a destination register (Rc).
	HasDest bool
	// Conditional marks conditional control flow.
	Conditional bool
}

var opTable = [NumOps]OpInfo{
	NOP:    {"nop", ClassNop, false, false},
	ADD:    {"add", ClassIntALU, true, false},
	SUB:    {"sub", ClassIntALU, true, false},
	AND:    {"and", ClassIntALU, true, false},
	OR:     {"or", ClassIntALU, true, false},
	XOR:    {"xor", ClassIntALU, true, false},
	ANDNOT: {"andnot", ClassIntALU, true, false},
	SLL:    {"sll", ClassIntALU, true, false},
	SRL:    {"srl", ClassIntALU, true, false},
	SRA:    {"sra", ClassIntALU, true, false},
	CMPEQ:  {"cmpeq", ClassIntALU, true, false},
	CMPLT:  {"cmplt", ClassIntALU, true, false},
	CMPLE:  {"cmple", ClassIntALU, true, false},
	CMPULT: {"cmpult", ClassIntALU, true, false},
	CMPULE: {"cmpule", ClassIntALU, true, false},
	SEXTB:  {"sextb", ClassIntALU, true, false},
	SEXTW:  {"sextw", ClassIntALU, true, false},
	MOVI:   {"movi", ClassIntALU, true, false},
	MUL:    {"mul", ClassIntMul, true, false},
	DIV:    {"div", ClassIntDiv, true, false},
	REM:    {"rem", ClassIntDiv, true, false},
	LDQ:    {"ldq", ClassLoad, true, false},
	LDL:    {"ldl", ClassLoad, true, false},
	LDW:    {"ldw", ClassLoad, true, false},
	LDBU:   {"ldbu", ClassLoad, true, false},
	STQ:    {"stq", ClassStore, false, false},
	STL:    {"stl", ClassStore, false, false},
	STW:    {"stw", ClassStore, false, false},
	STB:    {"stb", ClassStore, false, false},
	BEQ:    {"beq", ClassBranch, false, true},
	BNE:    {"bne", ClassBranch, false, true},
	BLT:    {"blt", ClassBranch, false, true},
	BLE:    {"ble", ClassBranch, false, true},
	BGT:    {"bgt", ClassBranch, false, true},
	BGE:    {"bge", ClassBranch, false, true},
	BR:     {"br", ClassBranch, true, false},
	JSR:    {"jsr", ClassJump, true, false},
	JMP:    {"jmp", ClassJump, false, false},
	RET:    {"ret", ClassJump, false, false},
	ADDT:   {"addt", ClassFPAdd, true, false},
	SUBT:   {"subt", ClassFPAdd, true, false},
	CMPTEQ: {"cmpteq", ClassFPAdd, true, false},
	CMPTLT: {"cmptlt", ClassFPAdd, true, false},
	CMPTLE: {"cmptle", ClassFPAdd, true, false},
	CVTQT:  {"cvtqt", ClassFPAdd, true, false},
	CVTTQ:  {"cvttq", ClassFPAdd, true, false},
	ITOF:   {"itof", ClassFPAdd, true, false},
	FTOI:   {"ftoi", ClassFPAdd, true, false},
	MULT:   {"mult", ClassFPMul, true, false},
	DIVT:   {"divt", ClassFPDiv, true, false},
	SQRTT:  {"sqrtt", ClassFPSqrt, true, false},
	LDT:    {"ldt", ClassFPLoad, true, false},
	STT:    {"stt", ClassFPStore, false, false},
	FBEQ:   {"fbeq", ClassFPBranch, false, true},
	FBNE:   {"fbne", ClassFPBranch, false, true},
	HALT:   {"halt", ClassHalt, false, false},
	OUT:    {"out", ClassHalt, false, false},
}

// Info returns the static description of op.
func (op Op) Info() OpInfo {
	if int(op) >= NumOps {
		return OpInfo{Name: fmt.Sprintf("op?%d", uint8(op)), Class: ClassNop}
	}
	return opTable[op]
}

// Class returns the functional-unit class of op.
func (op Op) Class() Class { return op.Info().Class }

// String returns the opcode mnemonic.
func (op Op) String() string { return op.Info().Name }

// OpByName looks up an opcode by mnemonic; ok is false if unknown.
func OpByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); int(op) < NumOps; op++ {
		m[opTable[op].Name] = op
	}
	return m
}()

// Inst is one decoded TRISC-64 instruction.
//
// Operand roles by format:
//
//	operate:   Rc = Ra op Rb        (UseImm: Rc = Ra op Imm)
//	movi:      Rc = Imm
//	load:      Rc = MEM[Ra + Imm]
//	store:     MEM[Ra + Imm] = Rb
//	branch:    if cond(Ra) goto Imm (Imm holds the absolute target address)
//	br:        goto Imm, Rc = return address if Rc != zero
//	jsr:       Rc = return address; goto [Rb]
//	jmp/ret:   goto [Rb]
//	out:       emit Ra to the output channel (debug/checksum sink)
type Inst struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Imm    int64
	UseImm bool
}

// Dest returns the destination register, or NoReg if the instruction does not
// write one (stores, branches without link, halt). Writes to the zero
// registers are reported as NoReg: they create no dependence.
func (i Inst) Dest() Reg {
	info := i.Op.Info()
	if !info.HasDest || i.Rc.IsZero() || i.Rc == NoReg {
		return NoReg
	}
	return i.Rc
}

// Srcs returns the register sources in (RS1, RS2) order, using NoReg for
// absent operands. Zero registers never appear: reading them creates no
// dependence. The RS1/RS2 naming matches the paper's critical-input analysis:
// RS1 is the first (address/left) operand, RS2 the second (data/right).
func (i Inst) Srcs() (s1, s2 Reg) {
	s1, s2 = NoReg, NoReg
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		if i.Op == OUT {
			s1 = i.Ra
		}
	case ClassLoad, ClassFPLoad:
		s1 = i.Ra
	case ClassStore, ClassFPStore:
		s1, s2 = i.Ra, i.Rb
	case ClassBranch, ClassFPBranch:
		if i.Op != BR {
			s1 = i.Ra
		}
	case ClassJump:
		s1 = i.Rb
	default: // operate formats
		if i.Op == MOVI {
			break
		}
		s1 = i.Ra
		if !i.UseImm && !isUnary(i.Op) {
			s2 = i.Rb
		}
	}
	if s1 != NoReg && s1.IsZero() {
		s1 = NoReg
	}
	if s2 != NoReg && s2.IsZero() {
		s2 = NoReg
	}
	return s1, s2
}

// NumSrcs returns how many register sources the instruction has.
func (i Inst) NumSrcs() int {
	s1, s2 := i.Srcs()
	n := 0
	if s1 != NoReg {
		n++
	}
	if s2 != NoReg {
		n++
	}
	return n
}

// IsCond reports whether the instruction is a conditional branch.
func (i Inst) IsCond() bool { return i.Op.Info().Conditional }

// IsControl reports whether the instruction can redirect the PC.
func (i Inst) IsControl() bool { return i.Op.Class().IsControl() }

// IsIndirect reports whether the control target comes from a register.
func (i Inst) IsIndirect() bool { return i.Op.Class() == ClassJump }

// String disassembles the instruction.
func (i Inst) String() string {
	name := i.Op.String()
	switch i.Op.Class() {
	case ClassNop:
		return name
	case ClassHalt:
		if i.Op == OUT {
			return fmt.Sprintf("%s %s", name, i.Ra)
		}
		return name
	case ClassLoad, ClassFPLoad:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rc, i.Imm, i.Ra)
	case ClassStore, ClassFPStore:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rb, i.Imm, i.Ra)
	case ClassBranch:
		if i.Op == BR {
			if i.Rc != NoReg && !i.Rc.IsZero() {
				return fmt.Sprintf("%s %s, 0x%x", name, i.Rc, uint64(i.Imm))
			}
			return fmt.Sprintf("%s 0x%x", name, uint64(i.Imm))
		}
		return fmt.Sprintf("%s %s, 0x%x", name, i.Ra, uint64(i.Imm))
	case ClassFPBranch:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Ra, uint64(i.Imm))
	case ClassJump:
		switch i.Op {
		case JSR:
			return fmt.Sprintf("%s %s, (%s)", name, i.Rc, i.Rb)
		default:
			return fmt.Sprintf("%s (%s)", name, i.Rb)
		}
	default:
		if i.Op == MOVI {
			return fmt.Sprintf("%s %s, %d", name, i.Rc, i.Imm)
		}
		if i.Op == SEXTB || i.Op == SEXTW || i.Op == ITOF || i.Op == FTOI ||
			i.Op == CVTQT || i.Op == CVTTQ || i.Op == SQRTT {
			return fmt.Sprintf("%s %s, %s", name, i.Ra, i.Rc)
		}
		if i.UseImm {
			return fmt.Sprintf("%s %s, %d, %s", name, i.Ra, i.Imm, i.Rc)
		}
		return fmt.Sprintf("%s %s, %s, %s", name, i.Ra, i.Rb, i.Rc)
	}
}

// PCStride is the architectural distance between consecutive instructions.
const PCStride = 4
