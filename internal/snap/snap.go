// Package snap is the simulator's checkpoint codec: a versioned,
// endianness-fixed, deterministic binary encoding with per-section
// checksums, built only on the standard library.
//
// The format is a flat byte stream opened by an 8-byte magic ("CTCPSNP1")
// and a little-endian uint16 format version. After the header the stream is
// a sequence of nested named sections. Each section is encoded as
//
//	0xA5 | u16 name length | name bytes | u32 payload length | payload | u64 FNV-64a(payload)
//
// with all integers little-endian and fixed width. Sections nest: a child
// section's full encoding (marker through checksum) is part of its parent's
// payload, so parent checksums cover children. Scalars inside a payload are
// raw fixed-width little-endian values with no per-value tags; the schema
// is the Snapshot/Restore code itself, which is why Reader.End is strict
// (the payload must be consumed exactly) and why component codecs start by
// checking a configuration fingerprint with Reader.Expect.
//
// Writer and Reader both carry a sticky error: after the first failure every
// subsequent call is a no-op (getters return zero values), so Snapshot and
// Restore implementations can be written straight-line and check Err once.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Format identification.
const (
	magic = "CTCPSNP1"
	// Version is the current checkpoint format version. Readers reject
	// snapshots written under any other version.
	Version uint16 = 1

	sectionMarker = 0xA5
)

// Checkpointable is the contract every stateful simulator component
// implements: Snapshot serializes the component's architectural and profile
// state into w, and Restore rebuilds exactly that state from r into a
// freshly constructed component with the same configuration. Transient
// scratch state (pools, per-cycle buffers) is deliberately excluded and is
// rebuilt empty on restore.
type Checkpointable interface {
	Snapshot(w *Writer)
	Restore(r *Reader)
}

// fnv64a is the FNV-64a hash used for per-section checksums.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Writer builds a snapshot in memory. All methods are no-ops after the
// first error. Writers are single-use: create with NewWriter, emit
// sections, then call Bytes or WriteFile.
type Writer struct {
	buf   []byte
	open  []int    // payload start offsets of open sections
	names []string // names of open sections (for error messages)
	err   error
}

// NewWriter returns a Writer with the format header already emitted.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, magic...)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, Version)
	return w
}

// Failf records an error; all subsequent calls become no-ops.
func (w *Writer) Failf(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Err returns the first error recorded on the writer.
func (w *Writer) Err() error { return w.err }

// Begin opens a named section. Every Begin must be matched by End.
func (w *Writer) Begin(name string) {
	if w.err != nil {
		return
	}
	if len(name) > 0xFFFF {
		w.Failf("section name too long (%d bytes)", len(name))
		return
	}
	w.buf = append(w.buf, sectionMarker)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(name)))
	w.buf = append(w.buf, name...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, 0) // payload length, backpatched by End
	w.open = append(w.open, len(w.buf))
	w.names = append(w.names, name)
}

// End closes the innermost open section, backpatching its payload length
// and appending the payload checksum.
func (w *Writer) End() {
	if w.err != nil {
		return
	}
	if len(w.open) == 0 {
		w.Failf("End without matching Begin")
		return
	}
	start := w.open[len(w.open)-1]
	w.open = w.open[:len(w.open)-1]
	w.names = w.names[:len(w.names)-1]
	payload := w.buf[start:]
	if len(payload) > 0x7FFFFFFF {
		w.Failf("section payload too large (%d bytes)", len(payload))
		return
	}
	binary.LittleEndian.PutUint32(w.buf[start-4:], uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, fnv64a(payload))
}

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a fixed-width little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a fixed-width int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// Bool appends one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Int(len(b))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, s...)
}

// U64Slice appends a length-prefixed []uint64.
func (w *Writer) U64Slice(s []uint64) {
	w.Int(len(s))
	for _, v := range s {
		w.U64(v)
	}
}

// I64Slice appends a length-prefixed []int64.
func (w *Writer) I64Slice(s []int64) {
	w.Int(len(s))
	for _, v := range s {
		w.I64(v)
	}
}

// BoolSlice appends a length-prefixed []bool, one byte per element.
func (w *Writer) BoolSlice(s []bool) {
	w.Int(len(s))
	for _, v := range s {
		w.Bool(v)
	}
}

// Finish returns the encoded snapshot. It fails if any section is still
// open or an error was recorded.
func (w *Writer) Finish() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	if len(w.open) != 0 {
		return nil, fmt.Errorf("snap: section %q not closed", w.names[len(w.names)-1])
	}
	return w.buf, nil
}

// Reader decodes a snapshot produced by Writer. All getters return zero
// values after the first error; check Err (or use Close) once at the end.
type Reader struct {
	buf   []byte
	off   int
	ends  []int    // payload end offsets of open sections
	names []string // names of open sections (for error messages)
	err   error
}

// NewReader validates the format header and returns a Reader positioned at
// the first section.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic)+2 {
		return nil, errors.New("snap: truncated header")
	}
	if string(data[:len(magic)]) != magic {
		return nil, errors.New("snap: bad magic (not a CTCP snapshot)")
	}
	v := binary.LittleEndian.Uint16(data[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("snap: format version %d (this build reads version %d)", v, Version)
	}
	return &Reader{buf: data, off: len(magic) + 2}, nil
}

// Failf records an error; all subsequent calls become no-ops.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Err returns the first error recorded on the reader.
func (r *Reader) Err() error { return r.err }

// limit returns the end offset of the innermost open section (or the whole
// buffer when no section is open).
func (r *Reader) limit() int {
	if len(r.ends) == 0 {
		return len(r.buf)
	}
	return r.ends[len(r.ends)-1]
}

// need checks that n more bytes are available inside the current section.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > r.limit() {
		r.Failf("truncated data in section %q", r.current())
		return false
	}
	return true
}

func (r *Reader) current() string {
	if len(r.names) == 0 {
		return "<top>"
	}
	return r.names[len(r.names)-1]
}

// Begin opens the named section, verifying the marker, the name, the
// payload bounds, and the payload checksum.
func (r *Reader) Begin(name string) {
	if !r.need(1 + 2) {
		return
	}
	if r.buf[r.off] != sectionMarker {
		r.Failf("expected section %q, found no section marker", name)
		return
	}
	nameLen := int(binary.LittleEndian.Uint16(r.buf[r.off+1:]))
	r.off += 3
	if !r.need(nameLen + 4) {
		return
	}
	got := string(r.buf[r.off : r.off+nameLen])
	r.off += nameLen
	if got != name {
		r.Failf("expected section %q, found %q", name, got)
		return
	}
	payloadLen := int(binary.LittleEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	if !r.need(payloadLen + 8) {
		return
	}
	payload := r.buf[r.off : r.off+payloadLen]
	want := binary.LittleEndian.Uint64(r.buf[r.off+payloadLen:])
	if sum := fnv64a(payload); sum != want {
		r.Failf("section %q checksum mismatch (corrupt snapshot)", name)
		return
	}
	r.ends = append(r.ends, r.off+payloadLen)
	r.names = append(r.names, name)
}

// End closes the innermost open section. The payload must be fully
// consumed: leftover bytes mean the reader and writer disagree about the
// schema, which is an error.
func (r *Reader) End() {
	if r.err != nil {
		return
	}
	if len(r.ends) == 0 {
		r.Failf("End without matching Begin")
		return
	}
	end := r.ends[len(r.ends)-1]
	if r.off != end {
		r.Failf("section %q has %d unread bytes", r.current(), end-r.off)
		return
	}
	r.ends = r.ends[:len(r.ends)-1]
	r.names = r.names[:len(r.names)-1]
	r.off += 8 // skip the payload checksum
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a fixed-width little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads one byte written by Writer.Bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// sliceLen reads and sanity-checks a length prefix, where elemSize bounds
// the remaining bytes each element must occupy.
func (r *Reader) sliceLen(elemSize int) int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > (r.limit()-r.off)/elemSize) {
		r.Failf("invalid length %d in section %q", n, r.current())
		return 0
	}
	return n
}

// Bytes reads a length-prefixed byte slice (a fresh copy).
func (r *Reader) Bytes() []byte {
	n := r.sliceLen(1)
	if r.err != nil || !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	if r.err != nil || !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// U64Slice reads a length-prefixed []uint64.
func (r *Reader) U64Slice() []uint64 {
	n := r.sliceLen(8)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// I64Slice reads a length-prefixed []int64.
func (r *Reader) I64Slice() []int64 {
	n := r.sliceLen(8)
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// BoolSlice reads a length-prefixed []bool.
func (r *Reader) BoolSlice() []bool {
	n := r.sliceLen(1)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

// Expect reads a uint64 and fails unless it equals want. Component codecs
// use it to fingerprint configuration: a snapshot can only be restored into
// a component constructed with the same configuration.
func (r *Reader) Expect(label string, want uint64) {
	got := r.U64()
	if r.err == nil && got != want {
		r.Failf("%s mismatch: snapshot has %d, this configuration has %d", label, got, want)
	}
}

// ExpectInt is Expect for int-typed configuration values.
func (r *Reader) ExpectInt(label string, want int) {
	got := r.Int()
	if r.err == nil && got != want {
		r.Failf("%s mismatch: snapshot has %d, this configuration has %d", label, got, want)
	}
}

// DiscardRest consumes the remainder of the snapshot without decoding it
// and reports any error accumulated so far. It exists for readers that only
// need a leading section out of a larger container — e.g. inspecting slot
// metadata without restoring the pipeline image behind it. Close demands
// exact consumption; DiscardRest makes the early stop explicit. All open
// sections must be closed before calling it.
func (r *Reader) DiscardRest() error {
	if r.err != nil {
		return r.err
	}
	if len(r.ends) != 0 {
		return fmt.Errorf("snap: section %q not closed", r.current())
	}
	r.off = len(r.buf)
	return nil
}

// Close verifies the snapshot was consumed exactly: no recorded error, no
// open section, no trailing bytes.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.ends) != 0 {
		return fmt.Errorf("snap: section %q not closed", r.current())
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after last section", len(r.buf)-r.off)
	}
	return nil
}

// WriteFile atomically writes the finished snapshot to path: the bytes go
// to a temporary file in the same directory which is then renamed over
// path, so a crash mid-write never leaves a truncated checkpoint behind.
func WriteFile(path string, w *Writer) error {
	data, err := w.Finish()
	if err != nil {
		return err
	}
	return WriteFileBytes(path, data)
}

// WriteFileBytes is the atomic temp+rename write underneath WriteFile,
// exposed for the sibling durable files a checkpoint run maintains (stats
// journals, result-store records): everything that can be read back after a
// crash goes through the same torn-write-free path.
func WriteFileBytes(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// ReadFile reads a snapshot file and validates its header.
func ReadFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewReader(data)
}

// --- checksummed line journals ---
//
// A line journal is the append-only sibling of the atomic snapshot write:
// where WriteFileBytes replaces a whole file in one rename, a journal grows
// one record at a time (accept/tombstone logs, job queues). Each record is
// one text line, `%016x <payload>\n`, where the prefix is the FNV-64a of the
// payload bytes. Appends are single write(2) calls on an O_APPEND descriptor,
// so concurrent appenders interleave at record granularity and a crash can
// only tear the final line — which the reader detects by its checksum and
// drops. Payloads must not contain newlines (JSON objects qualify).

// EncodeJournalLine renders one journal record, checksum prefix included.
func EncodeJournalLine(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+18)
	out = append(out, fmt.Sprintf("%016x ", fnv64a(payload))...)
	out = append(out, payload...)
	return append(out, '\n')
}

// EncodeJournal renders a whole journal image from payloads — the rewrite
// half of a compaction, paired with WriteFileBytes for atomic replacement.
func EncodeJournal(payloads [][]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = append(out, EncodeJournalLine(p)...)
	}
	return out
}

// AppendFileLine appends one checksummed record to the journal at path,
// creating the file if needed. The record is written with a single write
// call so a crash mid-append leaves at most one torn trailing line.
func AppendFileLine(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(EncodeJournalLine(payload))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadFileLines returns the payload of every intact record in the journal
// at path, in append order. Reading stops at the first record that is torn
// or fails its checksum: under the single-write append discipline only the
// final line can be damaged, so everything before it is trustworthy. A
// missing journal reads as empty.
func ReadFileLines(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out [][]byte
	for len(data) > 0 {
		nl := -1
		for i, c := range data {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) < 17 || line[16] != ' ' {
			break
		}
		var sum uint64
		if _, err := fmt.Sscanf(string(line[:16]), "%016x", &sum); err != nil {
			break
		}
		payload := line[17:]
		if fnv64a(payload) != sum {
			break
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, cp)
	}
	return out, nil
}
