; conformance: every integer compare (signed and unsigned), folded into a
; bitmask so each result is visible in the golden registers.
        .entry main
main:   movi    r1, -5
        movi    r2, 5
        movi    r3, 0
        cmpeq   r1, r2, r4
        add     r3, r4, r3
        sll     r3, 1, r3
        cmpeq   r1, -5, r4
        add     r3, r4, r3
        sll     r3, 1, r3
        cmplt   r1, r2, r4
        add     r3, r4, r3
        sll     r3, 1, r3
        cmple   r2, 5, r4
        add     r3, r4, r3
        sll     r3, 1, r3
        cmpult  r1, r2, r4      ; unsigned: -5 is huge, so 0
        add     r3, r4, r3
        sll     r3, 1, r3
        cmpule  r2, r1, r4      ; unsigned: 5 <= huge, so 1
        add     r3, r4, r3
        out     r3
        halt
