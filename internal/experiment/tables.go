package experiment

import (
	"ctcp/internal/pipeline"
	"ctcp/internal/stats"
	"ctcp/internal/workload"
)

// BenchRow pairs one benchmark with measured values (and optionally the
// paper's reported value for the same cell).
type BenchRow struct {
	Bench  string
	Values []float64
}

// Table1Result reproduces Table 1: trace cache characteristics.
type Table1Result struct {
	Rows []BenchRow // values: pctTC (0..1), avg trace size
}

// Table1 measures %TC-instructions and mean trace size on the six selected
// benchmarks under the baseline configuration.
func Table1(r *Runner) *Table1Result {
	base := BaseConfig()
	res := &Table1Result{}
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{"base": base})
	for _, bm := range workload.Selected() {
		s := r.Run(bm, "base", base)
		if !statsOK(s) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{s.PctFromTC(), s.AvgTraceSize()}})
	}
	return res
}

// Render formats the result.
func (t *Table1Result) Render() string {
	tab := &stats.Table{
		Title:  "Table 1: Trace Cache Characteristics",
		Header: []string{"bench", "% TC Instr", "Trace Size"},
		Notes: []string{
			"paper reports high %TC for all six and trace sizes of ~11-14;",
			"synthetic kernels have shorter basic blocks, so traces are shorter.",
		},
	}
	var tc, sz []float64
	for _, row := range t.Rows {
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.F2(row.Values[1]))
		tc = append(tc, row.Values[0])
		sz = append(sz, row.Values[1])
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(tc)), stats.F2(stats.Mean(sz)))
	return tab.Render()
}

// Figure4Result reproduces Figure 4: source of the most critical input.
type Figure4Result struct {
	Rows []BenchRow // values: fromRF, fromRS1, fromRS2 (fractions of WithInputs)
}

// Figure4 measures the critical-input source breakdown.
func Figure4(r *Runner) *Figure4Result {
	base := BaseConfig()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{"base": base})
	res := &Figure4Result{}
	for _, bm := range workload.Selected() {
		s := r.Run(bm, "base", base)
		if !statsOK(s) {
			continue
		}
		// Guard the denominator while it is still an integer; comparing the
		// float64 against zero exactly is a floateq trap.
		n := s.WithInputs
		if n == 0 {
			n = 1
		}
		wi := float64(n)
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			float64(s.CritFromRF) / wi,
			float64(s.CritFromRS1) / wi,
			float64(s.CritFromRS2) / wi,
		}})
	}
	return res
}

// Render formats the result.
func (f *Figure4Result) Render() string {
	tab := &stats.Table{
		Title:  "Figure 4: Source of Most Critical Input Dependency",
		Header: []string{"bench", "From RF", "From RS1", "From RS2"},
		Notes: []string{
			"paper averages: RF 44%, RS1 31%, RS2 25%; the synthetic kernels'",
			"shorter dependence distances shift weight from the RF to forwarding.",
		},
	}
	var a, b, c []float64
	for _, row := range f.Rows {
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(row.Values[1]), stats.Pct(row.Values[2]))
		a, b, c = append(a, row.Values[0]), append(b, row.Values[1]), append(c, row.Values[2])
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(a)), stats.Pct(stats.Mean(b)), stats.Pct(stats.Mean(c)))
	return tab.Render()
}

// Table2Result reproduces Table 2: critical data forwarding dependencies.
type Table2Result struct {
	Rows  []BenchRow // values: critFwdFrac, critInterTraceFrac
	Paper map[string][2]float64
}

// Table2 measures the share of critical inputs satisfied by forwarding and,
// of those, the share whose producer was in another trace.
func Table2(r *Runner) *Table2Result {
	base := BaseConfig()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{"base": base})
	res := &Table2Result{Paper: map[string][2]float64{
		"bzip2": {0.8563, 0.2969}, "eon": {0.8658, 0.3540}, "gzip": {0.8094, 0.2438},
		"perlbmk": {0.8611, 0.2776}, "twolf": {0.7858, 0.2395}, "vpr": {0.8232, 0.2584},
	}}
	for _, bm := range workload.Selected() {
		s := r.Run(bm, "base", base)
		if !statsOK(s) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name,
			[]float64{s.CritFwdFrac(), s.CritInterTraceFrac()}})
	}
	return res
}

// Render formats the result.
func (t *Table2Result) Render() string {
	tab := &stats.Table{
		Title:  "Table 2: Critical Data Forwarding Dependencies",
		Header: []string{"bench", "% crit fwd", "paper", "% inter-trace", "paper"},
	}
	var a, b []float64
	for _, row := range t.Rows {
		p := t.Paper[row.Bench]
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(p[0]),
			stats.Pct(row.Values[1]), stats.Pct(p[1]))
		a, b = append(a, row.Values[0]), append(b, row.Values[1])
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(a)), "83.36%", stats.Pct(stats.Mean(b)), "27.84%")
	return tab.Render()
}

// Table3Result reproduces Table 3: frequency of repeated forwarding
// producers.
type Table3Result struct {
	Rows  []BenchRow // values: RS1, RS2, critInterRS1, critInterRS2 repeat rates
	Paper map[string][4]float64
}

// Table3 measures producer repeatability.
func Table3(r *Runner) *Table3Result {
	base := BaseConfig()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{"base": base})
	res := &Table3Result{Paper: map[string][4]float64{
		"bzip2": {0.9745, 0.9766, 0.8930, 0.9117}, "eon": {0.9383, 0.8984, 0.8579, 0.7334},
		"gzip": {0.9814, 0.9902, 0.9293, 0.9604}, "perlbmk": {0.9778, 0.9379, 0.9083, 0.7927},
		"twolf": {0.9669, 0.9078, 0.8709, 0.7640}, "vpr": {0.9853, 0.9606, 0.9564, 0.9167},
	}}
	for _, bm := range workload.Selected() {
		s := r.Run(bm, "base", base)
		if !statsOK(s) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			s.RepeatRateRS1(), s.RepeatRateRS2(),
			s.RepeatRateCritRS1Inter(), s.RepeatRateCritRS2Inter(),
		}})
	}
	return res
}

// Render formats the result.
func (t *Table3Result) Render() string {
	tab := &stats.Table{
		Title:  "Table 3: Frequency of Repeated Forwarding Producers",
		Header: []string{"bench", "RS1", "RS2", "crit-inter RS1", "crit-inter RS2"},
		Notes:  []string{"paper averages: 97.07% / 94.52% / 90.26% / 84.65%"},
	}
	var cols [4][]float64
	for _, row := range t.Rows {
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(row.Values[1]),
			stats.Pct(row.Values[2]), stats.Pct(row.Values[3]))
		for k := 0; k < 4; k++ {
			cols[k] = append(cols[k], row.Values[k])
		}
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(cols[0])), stats.Pct(stats.Mean(cols[1])),
		stats.Pct(stats.Mean(cols[2])), stats.Pct(stats.Mean(cols[3])))
	return tab.Render()
}

// Figure5Result reproduces Figure 5: speedups from removing latencies.
type Figure5Result struct {
	// Rows hold speedups: NoFwd, NoCritFwd, NoIntraTrace, NoInterTrace, NoRF
	Rows []BenchRow
}

// Figure5 sweeps the latency-removal knobs against the baseline.
func Figure5(r *Runner) *Figure5Result {
	base := BaseConfig()
	mk := func(mod func(*pipeline.Config)) pipeline.Config {
		cfg := base
		mod(&cfg)
		return cfg
	}
	cfgs := map[string]pipeline.Config{
		"base":    base,
		"noFwd":   mk(func(c *pipeline.Config) { c.ZeroAllFwdLat = true }),
		"noCrit":  mk(func(c *pipeline.Config) { c.ZeroCritFwdLat = true }),
		"noIntra": mk(func(c *pipeline.Config) { c.ZeroIntraTrace = true }),
		"noInter": mk(func(c *pipeline.Config) { c.ZeroInterTrace = true }),
		"noRF":    mk(func(c *pipeline.Config) { c.RFLat = 0 }),
	}
	r.Prefetch(workload.Selected(), cfgs)
	res := &Figure5Result{}
	for _, bm := range workload.Selected() {
		b := r.Run(bm, "base", cfgs["base"])
		ok := statsOK(b)
		var vals []float64
		for _, key := range []string{"noFwd", "noCrit", "noIntra", "noInter", "noRF"} {
			s := r.Run(bm, key, cfgs[key])
			ok = ok && statsOK(s)
			vals = append(vals, speedup(b, s))
		}
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, vals})
	}
	return res
}

// HM returns the harmonic means of each column.
func (f *Figure5Result) HM() []float64 {
	out := make([]float64, 5)
	for k := 0; k < 5; k++ {
		var col []float64
		for _, row := range f.Rows {
			col = append(col, row.Values[k])
		}
		out[k] = stats.HarmonicMean(col)
	}
	return out
}

// Render formats the result.
func (f *Figure5Result) Render() string {
	tab := &stats.Table{
		Title:  "Figure 5: Expected Speedup Removing Certain Latencies",
		Header: []string{"bench", "No Fwd", "No Crit Fwd", "No Intra-Trace", "No Inter-Trace", "No RF"},
		Notes: []string{
			"paper harmonic means: 1.418 / 1.372 / 1.177 / 1.155 / ~1.00",
			"expected shape: NoFwd >= NoCrit >> NoIntra ~ NoInter >> NoRF ~ 1.0",
		},
	}
	for _, row := range f.Rows {
		cells := []string{row.Bench}
		for _, v := range row.Values {
			cells = append(cells, stats.F3(v))
		}
		tab.AddRow(cells...)
	}
	hm := f.HM()
	cells := []string{"HM"}
	for _, v := range hm {
		cells = append(cells, stats.F3(v))
	}
	tab.AddRow(cells...)
	return tab.Render()
}
