package core

import "ctcp/internal/trace"

// This file implements the fill unit's assignment memo. Trace reuse is
// dominated by a small set of recurring hot lines, so the full Table-5 walk
// (dynamic criticality classification, chain arbitration, per-cluster
// capacity scan, Friendly fallback) usually recomputes exactly what it
// computed the last time the same line was built. The memo keys each built
// line by its StartPC in a dense pcMap and fingerprints every input the
// assignment pass actually reads; when a rebuilt line's fingerprint matches,
// the cached per-slot cluster vector, (possibly decayed) profiles, and
// option-histogram deltas are replayed instead of re-running the walk.
//
// The fingerprint covers, per slot: the PC and decoded instruction, the
// overlay profile the assignment would see (the pending chain designation if
// one exists — read with peek, without consuming it — else the profile the
// retiring instance carried), and, for the FDRT strategies, the relative
// index of the dynamic critical producer when it lies inside the trace.
// Given those inputs the walk is deterministic, so a fingerprint match means
// replaying the cached outputs is exact — including the chain-table side
// effect, which replay reproduces by consuming the same pending
// designations the fresh walk would have consumed. A designation set,
// changed, or consumed on one of the line's PCs between builds changes the
// peeked overlay and therefore misses; chain activity on unrelated PCs
// leaves the fingerprint (and the cached result's validity) untouched.
// This per-line fingerprint plays the role of the global profile epoch: it
// is "bumped" by exactly those updateChains writes that the line can
// observe.
//
// The memo is scratch, never serialized: Snapshot skips it, and Restore and
// Flush clear it (hygiene, not correctness — a stale entry can only be
// replayed after its fingerprint matches the restored state's inputs).
// Base and IssueTime use identity placement, which is already cheaper than
// a fingerprint probe, so only the four assignment strategies memoize.

// assignMemoEntry is one cached assignment result. The zero value is an
// absent entry (pcMap contract); present distinguishes a stored result.
type assignMemoEntry struct {
	present bool
	n       uint16 // slot count, bounds-checks the cached vectors
	fp      uint64 // fingerprint of every input the walk reads
	// Per-slot outputs, logical order.
	clusters []int8
	profiles []trace.Profile
	// Option-histogram deltas (FillStats) the fresh walk produced.
	dA, dB, dC, dD, dE, dSkip uint32
}

// memoizable reports whether the configured strategy runs an assignment walk
// worth memoizing.
func (f *FillUnit) memoizable() bool {
	switch f.cfg.Strategy {
	case Friendly, FriendlyMiddle, FDRT, FDRTNoPin:
		return true
	}
	return false
}

// assignFP fingerprints every input of the assignment walk for tr (FNV-1a
// over the per-slot identity, overlay profile, and critical-producer shape).
func (f *FillUnit) assignFP(tr *trace.Trace, infos []RetireInfo) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	n := len(tr.Slots)
	lenMatch := len(infos) == n
	fdrt := f.cfg.Strategy == FDRT || f.cfg.Strategy == FDRTNoPin
	var seqBase uint64
	if lenMatch && n > 0 {
		seqBase = infos[0].Rec.Seq
	}
	h := uint64(fnvOffset)
	h = (h ^ uint64(n)) * fnvPrime
	if lenMatch {
		h = (h ^ 1) * fnvPrime
	}
	for i := range tr.Slots {
		s := &tr.Slots[i]
		h = (h ^ s.PC) * fnvPrime
		inst := &s.Inst
		w := uint64(uint8(inst.Op)) |
			uint64(uint8(inst.Ra))<<8 |
			uint64(uint8(inst.Rb))<<16 |
			uint64(uint8(inst.Rc))<<24
		if inst.UseImm {
			w |= 1 << 32
		}
		h = (h ^ w) * fnvPrime
		h = (h ^ uint64(inst.Imm)) * fnvPrime
		// The overlay profile the assignment pass would start from.
		var prof trace.Profile
		if pend, ok := f.chains.peek(s.PC); ok {
			prof = pend
		} else if lenMatch {
			prof = infos[i].Profile
		}
		h = (h ^ (uint64(prof.Role)<<8 | uint64(prof.ChainCluster))) * fnvPrime
		if fdrt && lenMatch {
			// Relative index of the dynamic critical producer when it lies
			// inside this trace (the only shape fdrtAssign distinguishes);
			// all-ones marks "none / outside".
			rel := ^uint64(0)
			inf := &infos[i]
			if inf.CritSrc != CritNone {
				if seq := inf.CritProducerSeq; seq >= seqBase && seq < seqBase+uint64(n) {
					if j := seq - seqBase; infos[j].Rec.Seq == seq && j < uint64(i) {
						rel = j
					}
				}
			}
			h = (h ^ rel) * fnvPrime
		}
	}
	return h
}

// replayAssign applies a cached assignment result to tr, reproducing the
// fresh walk's outputs and side effects: pending designations on the line's
// PCs are consumed (their values are part of the matched fingerprint), the
// cached cluster vector and profiles are written back, slot indices are
// re-derived with the same per-cluster counters materialize uses, and the
// option-histogram deltas are re-applied.
func (f *FillUnit) replayAssign(tr *trace.Trace, e *assignMemoEntry) {
	g := f.cfg.Geom
	for c := range f.nextSlot {
		f.nextSlot[c] = 0
	}
	for i := range tr.Slots {
		s := &tr.Slots[i]
		f.chains.Take(s.PC)
		c := int(e.clusters[i])
		s.Profile = e.profiles[i]
		s.Cluster = c
		s.SlotIndex = c*g.Width + f.nextSlot[c]
		f.nextSlot[c]++
	}
	f.S.OptionA += uint64(e.dA)
	f.S.OptionB += uint64(e.dB)
	f.S.OptionC += uint64(e.dC)
	f.S.OptionD += uint64(e.dD)
	f.S.OptionE += uint64(e.dE)
	f.S.Skipped += uint64(e.dSkip)
}

// storeAssign records the outputs of a fresh assignment walk into e. The
// entry's slices are reused across stores, so steady-state rebuilds of a
// line allocate nothing.
func (f *FillUnit) storeAssign(tr *trace.Trace, e *assignMemoEntry, fp uint64, before *FillStats) {
	e.present = true
	e.n = uint16(len(tr.Slots))
	e.fp = fp
	e.clusters = e.clusters[:0]
	e.profiles = e.profiles[:0]
	for i := range tr.Slots {
		e.clusters = append(e.clusters, int8(tr.Slots[i].Cluster))
		e.profiles = append(e.profiles, tr.Slots[i].Profile)
	}
	e.dA = uint32(f.S.OptionA - before.OptionA)
	e.dB = uint32(f.S.OptionB - before.OptionB)
	e.dC = uint32(f.S.OptionC - before.OptionC)
	e.dD = uint32(f.S.OptionD - before.OptionD)
	e.dE = uint32(f.S.OptionE - before.OptionE)
	e.dSkip = uint32(f.S.Skipped - before.Skipped)
}

// MemoStats reports the assignment memo's hit/miss counters (diagnostics;
// not part of FillStats, whose encoding is pinned by checkpoint fixtures).
func (f *FillUnit) MemoStats() (hits, misses uint64) {
	return f.memoHits, f.memoMisses
}
