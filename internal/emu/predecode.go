package emu

import "ctcp/internal/isa"

// This file implements the predecoded micro-op layer of the interpreter. At
// construction the machine lowers every static instruction of the program
// into a dispatch-ready uop record in a dense PC-indexed table: the operand
// kind is resolved (register vs. immediate variants are distinct uop kinds),
// immediates are pre-extended (and pre-masked for shifts), direct control
// targets are pre-validated, zero-register and absent operands are resolved
// away, and the invariant part of the instruction's Committed record (PC,
// decoded Inst, fall-through NextPC, memory access size) is stored as a
// template. StepInto then collapses to: one bounds-checked index, one struct
// copy, one switch on a small dense tag.
//
// The table is derived state. It is a pure function of the immutable program
// image, so Reset keeps it, Snapshot never serializes it, and Restore never
// rebuilds it — checkpoints stay bit-compatible with the pre-predecode
// encoding (DESIGN.md §14).
//
// Rare shapes the fast path does not model (misaligned direct control
// targets, undefined opcodes) lower to uGeneric, which defers to
// stepGeneric — the original switch interpreter, kept both as the slow path
// and as the oracle the predecode differential test cross-checks against.

// uopKind is the dense dispatch tag of one predecoded micro-op.
type uopKind uint8

const (
	// uGeneric defers to stepGeneric (original interpreter): undefined
	// opcodes and direct control with a misaligned target, whose fault
	// semantics depend on the dynamic branch outcome.
	uGeneric uopKind = iota
	// uNop covers NOP and every operate-format instruction whose destination
	// is a hardwired-zero register or absent: architecturally side-effect
	// free.
	uNop

	// Integer operate, register/immediate variants. rc is always a real
	// (writable) register: discarded-destination forms lower to uNop.
	uAddRR
	uAddRI
	uSubRR
	uSubRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uAndNotRR
	uAndNotRI
	uSllRR
	uSllRI // imm pre-masked to 0..63
	uSrlRR
	uSrlRI
	uSraRR
	uSraRI
	uCmpEqRR
	uCmpEqRI
	uCmpLtRR
	uCmpLtRI
	uCmpLeRR
	uCmpLeRI
	uCmpUltRR
	uCmpUltRI
	uCmpUleRR
	uCmpUleRI
	uMulRR
	uMulRI
	uDivRR
	uDivRI
	uRemRR
	uRemRI
	uSextB
	uSextW
	uMovi

	// Loads: EA = Regs[ra] + imm; tmpl.Size carries the width. uLd8 covers
	// LDQ and LDT (both move 8 raw bytes; the destination index encodes the
	// register space). uLdDiscard performs the access but discards the value
	// (zero-register destination) — the timing model still needs EA/Size.
	uLd8
	uLd4S // LDL: 4 bytes, sign-extended
	uLd2
	uLd1
	uLdDiscard

	// Stores: width in the kind, value from Regs[rb].
	uSt8
	uSt4
	uSt2
	uSt1

	// Conditional branches test Regs[ra] (as int64) or its FP bit pattern;
	// imm is the pre-validated absolute target.
	uBeq
	uBne
	uBlt
	uBle
	uBgt
	uBge
	uFbeq
	uFbne

	// Unconditional direct control; uBrLink also writes the return address.
	uBr
	uBrLink
	// Register-indirect control; uJsr writes the return address, uJmp covers
	// JMP/RET and linkless JSR. Target alignment is checked at run time.
	uJsr
	uJmp

	// Floating point (always register operands).
	uAddT
	uSubT
	uMulT
	uDivT
	uSqrtT
	uCmpTEq
	uCmpTLt
	uCmpTLe
	uCvtQT
	uCvtTQ
	uMove // ITOF/FTOI: raw 64-bit move across register spaces

	// Machine control.
	uHalt
	uOut
)

// uop is one predecoded micro-op.
type uop struct {
	// tmpl is the invariant part of the instruction's Committed record: PC
	// and decoded Inst always, NextPC preset to the fall-through address,
	// Size preset for memory ops. The dispatch copies it wholesale and only
	// touches the fields the op actually produces.
	tmpl Committed
	// imm is the operand-kind-resolved immediate: sign-extended for
	// arithmetic, pre-masked for shifts, the absolute target for direct
	// control, the raw displacement for memory.
	imm  uint64
	kind uopKind
	// ra, rb are resolved source-register indices: hardwired-zero and absent
	// operands point at the always-zero slot, so reads never branch. rc is a
	// resolved destination index and only present on kinds that write.
	ra, rb, rc uint8
}

// zeroSrc is the register index absent/zero sources resolve to. Regs[31]
// (R31) is hardwired zero: Reset clears it and no interpreter path ever
// writes it, so reading it always yields 0 for both register spaces.
const zeroSrc = uint8(isa.ZeroReg)

// srcIdx resolves a source operand to a register index.
func srcIdx(r isa.Reg) uint8 {
	if r == isa.NoReg || r.IsZero() {
		return zeroSrc
	}
	return uint8(r)
}

// realDest reports whether the instruction writes an architecturally visible
// destination register.
func realDest(inst isa.Inst) bool {
	return inst.Dest() != isa.NoReg
}

// aligned reports whether a static control target can be taken without
// faulting.
func aligned(target uint64) bool { return target%isa.PCStride == 0 }

// predecode builds the dense uop table for the loaded program. It runs once
// per Machine construction (the program image is immutable), so its cost and
// allocations are amortized over the whole run.
//
//ctcp:coldpath
func (m *Machine) predecode() {
	text := m.prog.Text
	m.predBase = m.prog.TextBase
	m.pred = make([]uop, len(text))
	for i := range text {
		inst := text[i]
		pc := m.predBase + uint64(i)*isa.PCStride
		u := &m.pred[i]
		u.tmpl = Committed{PC: pc, Inst: inst, NextPC: pc + isa.PCStride}
		u.ra = srcIdx(inst.Ra)
		u.rb = srcIdx(inst.Rb)
		u.rc = uint8(inst.Rc)
		u.imm = uint64(inst.Imm)
		u.kind = lowerKind(inst, u)
	}
}

// opRR/opRI pairs for the binary integer operate ops, indexed by opcode.
type aluKinds struct{ rr, ri uopKind }

var aluTable = map[isa.Op]aluKinds{
	isa.ADD:    {uAddRR, uAddRI},
	isa.SUB:    {uSubRR, uSubRI},
	isa.AND:    {uAndRR, uAndRI},
	isa.OR:     {uOrRR, uOrRI},
	isa.XOR:    {uXorRR, uXorRI},
	isa.ANDNOT: {uAndNotRR, uAndNotRI},
	isa.SLL:    {uSllRR, uSllRI},
	isa.SRL:    {uSrlRR, uSrlRI},
	isa.SRA:    {uSraRR, uSraRI},
	isa.CMPEQ:  {uCmpEqRR, uCmpEqRI},
	isa.CMPLT:  {uCmpLtRR, uCmpLtRI},
	isa.CMPLE:  {uCmpLeRR, uCmpLeRI},
	isa.CMPULT: {uCmpUltRR, uCmpUltRI},
	isa.CMPULE: {uCmpUleRR, uCmpUleRI},
	isa.MUL:    {uMulRR, uMulRI},
	isa.DIV:    {uDivRR, uDivRI},
	isa.REM:    {uRemRR, uRemRI},
}

var condKind = map[isa.Op]uopKind{
	isa.BEQ:  uBeq,
	isa.BNE:  uBne,
	isa.BLT:  uBlt,
	isa.BLE:  uBle,
	isa.BGT:  uBgt,
	isa.BGE:  uBge,
	isa.FBEQ: uFbeq,
	isa.FBNE: uFbne,
}

var fpKind = map[isa.Op]uopKind{
	isa.ADDT:   uAddT,
	isa.SUBT:   uSubT,
	isa.MULT:   uMulT,
	isa.DIVT:   uDivT,
	isa.SQRTT:  uSqrtT,
	isa.CMPTEQ: uCmpTEq,
	isa.CMPTLT: uCmpTLt,
	isa.CMPTLE: uCmpTLe,
	isa.CVTQT:  uCvtQT,
	isa.CVTTQ:  uCvtTQ,
	isa.ITOF:   uMove,
	isa.FTOI:   uMove,
}

// lowerKind classifies one instruction, refining u's resolved operands where
// the kind calls for it (shift masking, access sizes).
//
//ctcp:coldpath
func lowerKind(inst isa.Inst, u *uop) uopKind {
	switch inst.Op {
	case isa.NOP:
		return uNop

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.ANDNOT,
		isa.SLL, isa.SRL, isa.SRA,
		isa.CMPEQ, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE,
		isa.MUL, isa.DIV, isa.REM:
		if !realDest(inst) {
			return uNop
		}
		k := aluTable[inst.Op]
		if !inst.UseImm {
			return k.rr
		}
		if inst.Op == isa.SLL || inst.Op == isa.SRL || inst.Op == isa.SRA {
			u.imm &= 63
		}
		return k.ri

	case isa.SEXTB:
		if !realDest(inst) {
			return uNop
		}
		return uSextB
	case isa.SEXTW:
		if !realDest(inst) {
			return uNop
		}
		return uSextW
	case isa.MOVI:
		if !realDest(inst) {
			return uNop
		}
		return uMovi

	case isa.LDQ, isa.LDT:
		u.tmpl.Size = 8
		if !realDest(inst) {
			return uLdDiscard
		}
		return uLd8
	case isa.LDL:
		u.tmpl.Size = 4
		if !realDest(inst) {
			return uLdDiscard
		}
		return uLd4S
	case isa.LDW:
		u.tmpl.Size = 2
		if !realDest(inst) {
			return uLdDiscard
		}
		return uLd2
	case isa.LDBU:
		u.tmpl.Size = 1
		if !realDest(inst) {
			return uLdDiscard
		}
		return uLd1

	case isa.STQ, isa.STT:
		u.tmpl.Size = 8
		return uSt8
	case isa.STL:
		u.tmpl.Size = 4
		return uSt4
	case isa.STW:
		u.tmpl.Size = 2
		return uSt2
	case isa.STB:
		u.tmpl.Size = 1
		return uSt1

	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE, isa.FBEQ, isa.FBNE:
		if !aligned(u.imm) {
			// Faults only when taken: the generic path reproduces that.
			return uGeneric
		}
		return condKind[inst.Op]
	case isa.BR:
		if !aligned(u.imm) {
			return uGeneric
		}
		if realDest(inst) {
			return uBrLink
		}
		return uBr
	case isa.JSR:
		if realDest(inst) {
			return uJsr
		}
		return uJmp
	case isa.JMP, isa.RET:
		return uJmp

	case isa.ADDT, isa.SUBT, isa.MULT, isa.DIVT, isa.SQRTT,
		isa.CMPTEQ, isa.CMPTLT, isa.CMPTLE, isa.CVTQT, isa.CVTTQ,
		isa.ITOF, isa.FTOI:
		if !realDest(inst) {
			return uNop
		}
		return fpKind[inst.Op]

	case isa.HALT:
		return uHalt
	case isa.OUT:
		return uOut
	}
	return uGeneric
}
