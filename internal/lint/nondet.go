package lint

import (
	"go/ast"
	"go/types"
)

// NonDet bans the three classic sources of run-to-run variation from the
// simulation core: wall-clock reads (time.Now), ambient randomness
// (math/rand package-level functions — an explicitly seeded *rand.Rand is
// fine, so the constructors New/NewSource stay legal), and goroutine
// spawns (the cycle model is single-threaded by design; concurrency lives
// in the experiment runner, which is outside this scope). The determinism
// test in internal/pipeline proves the property dynamically; this rule keeps
// the ingredients for breaking it out of the core packages entirely.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc:  "wall clock, ambient randomness and goroutines are banned in the simulation core",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"internal/pipeline", "internal/core", "internal/emu",
			"internal/trace", "internal/cluster", "internal/bpred",
			"internal/cachesim", "internal/isa")
	},
	Run: runNonDet,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator rather than consume the ambient one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewChaCha8": true, "NewPCG": true}

func runNonDet(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Go, "goroutine spawn in the simulation core; the cycle model must stay single-threaded and deterministic")
			case *ast.SelectorExpr:
				obj, ok := p.Pkg.Info.Uses[n.Sel]
				if !ok || obj.Pkg() == nil {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch obj.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" {
						p.Reportf(n.Pos(), "time.Now in the simulation core makes results depend on the wall clock")
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						p.Reportf(n.Pos(), "%s.%s consumes the ambient random source; use an explicitly seeded *rand.Rand", obj.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
}
