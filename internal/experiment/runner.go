// Package experiment regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the index). Each experiment function
// returns a typed result with the measured values plus the paper's reported
// numbers for side-by-side comparison, and renders to a plain-text table.
package experiment

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/sample"
	"ctcp/internal/snap"
	"ctcp/internal/workload"
)

// DefaultBudget is the committed-instruction budget per simulation. The
// paper runs 100M instructions per benchmark; these kernels reach steady
// state within a few hundred thousand (DESIGN.md substitution #4).
const DefaultBudget = 200_000

// ProgressKind classifies a Runner progress event.
type ProgressKind int

const (
	// RunStarted: a new (benchmark, config) key began simulating.
	RunStarted ProgressKind = iota
	// RunCompleted: the simulation finished successfully.
	RunCompleted
	// RunFailed: the simulation aborted with a pipeline.SimError.
	RunFailed
	// RunDeduped: a caller joined a simulation already in flight for the
	// same key instead of starting a duplicate.
	RunDeduped
	// RunCached: a caller was satisfied from the completed-run cache.
	RunCached
	// RunSegment: a checkpointed run finished one segment and persisted its
	// checkpoint; Done/Total carry committed instructions out of the budget.
	RunSegment
	// RunRegion: a sampled run completed one detailed region window;
	// Done/Total count regions.
	RunRegion
)

// String returns the event name used in -v logs.
func (k ProgressKind) String() string {
	switch k {
	case RunStarted:
		return "start"
	case RunCompleted:
		return "done"
	case RunFailed:
		return "fail"
	case RunDeduped:
		return "dedup"
	case RunCached:
		return "hit"
	case RunSegment:
		return "segment"
	case RunRegion:
		return "region"
	}
	return "unknown"
}

// ProgressEvent is one observable runner action, delivered to
// Options.Progress.
type ProgressEvent struct {
	Kind ProgressKind
	Key  string        // "benchmark/config"
	Wall time.Duration // simulation wall time (RunCompleted, RunFailed)
	Err  error         // the failure (RunFailed)
	// Done/Total report intra-run progress: instructions out of the budget
	// (RunSegment) or completed regions out of the schedule (RunRegion).
	Done, Total uint64
}

// Options configures a Runner.
type Options struct {
	// Budget is the committed-instruction count per run (0 = DefaultBudget).
	Budget uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, receives one event per runner action. It is
	// called from simulation goroutines and must be safe for concurrent use.
	Progress func(ProgressEvent)

	// SampleInterval, when non-zero, switches every run to region-parallel
	// sampled simulation (internal/sample) with checkpoints every this many
	// instructions. SampleDetail, SampleWarmup and SampleWorkers pass
	// through to sample.Options. Mutually exclusive with CheckpointDir.
	SampleInterval uint64
	SampleDetail   uint64
	SampleWarmup   uint64
	SampleWorkers  int

	// CheckpointDir, when non-empty, makes every run segmented and
	// resumable: the runner writes an on-disk checkpoint of the full
	// simulator state every CheckpointEvery instructions (default
	// Budget/4), and a journal of the final stats when a run completes. A
	// rerun over the same directory resumes each key from its newest
	// checkpoint — or returns instantly from the journal — so a killed
	// sweep loses at most one segment per key. Resumed runs are bit-exact:
	// the segment schedule is derived from the checkpoint spacing, so a
	// resumed run retires the same instructions in the same cycles as an
	// uninterrupted segmented run.
	CheckpointDir   string
	CheckpointEvery uint64

	// RunFn, when non-nil, replaces the cycle-accurate simulation call for
	// full-detail (monolithic) runs. It exists for tests and fault-injection
	// drills — a service can stand in a failing or blocking simulation
	// without touching the model — and is excluded from RunFingerprint, so
	// production servers must leave it nil.
	RunFn func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error)

	// Interrupt, when non-nil, requests cooperative cancellation: a run that
	// has not started yet, or a checkpointed run between two segments,
	// observes the closed channel and returns ErrInterrupted instead of
	// simulating on. A checkpointed run's newest segment checkpoint is
	// already on disk at every observation point, so an interrupted sweep
	// loses at most one segment per key and a rerun resumes bit-exactly.
	// Long-lived services use this to drain in-flight work on shutdown.
	Interrupt <-chan struct{}
}

// ErrInterrupted is returned by Run/RunErr for runs cut short by
// Options.Interrupt. It is an operational signal (shutdown), not a
// simulation failure: the run can be retried — and, in checkpointed mode,
// resumed — by a fresh runner.
var ErrInterrupted = errors.New("experiment: run interrupted by shutdown")

// RunnerStats is a point-in-time snapshot of a Runner's execution counters.
type RunnerStats struct {
	Started   uint64 // simulations begun
	Completed uint64 // ...that finished successfully
	Failed    uint64 // ...that aborted with a SimError
	Deduped   uint64 // callers who joined an in-flight simulation
	CacheHits uint64 // callers satisfied from the completed-run cache
	// Wall holds per-key simulation wall time for every finished run.
	Wall map[string]time.Duration
}

// String renders the counters on one line (the Wall map is omitted).
func (s RunnerStats) String() string {
	return fmt.Sprintf("%d simulated (%d failed), %d cache hits, %d deduped",
		s.Started, s.Failed, s.CacheHits, s.Deduped)
}

// runEntry is the singleflight cell for one (benchmark, config) key: the
// first caller becomes the leader and simulates; everyone else blocks on
// done and shares the result. Exactly one simulation runs per key.
type runEntry struct {
	done  chan struct{} // closed when stats/err/wall are final
	stats *pipeline.Stats
	err   error
	wall  time.Duration
}

// Runner executes and memoizes benchmark/configuration simulations. All
// experiments share one Runner so configurations reused across tables (the
// base, Friendly and FDRT runs appear in many) are simulated once — even
// when requested concurrently. A failed simulation is recorded per key
// (see Errors, FailureSummary) and does not poison other keys.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[string]*runEntry

	started, completed, failed, deduped, cacheHits uint64

	sem chan struct{}

	// runFn executes one prepared simulation; tests hook it to count runs
	// and inject failures.
	runFn func(prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error)
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		opts:  opts,
		cache: make(map[string]*runEntry),
		sem:   make(chan struct{}, opts.Parallelism),
		runFn: pipeline.RunProgramErr,
	}
	if opts.RunFn != nil {
		r.runFn = opts.RunFn
	}
	return r
}

// Budget returns the per-run instruction budget.
func (r *Runner) Budget() uint64 { return r.opts.Budget }

// Fingerprint returns the canonical identity of the result Run(bm, _, cfg)
// would produce under this runner's options. See RunFingerprint.
func (r *Runner) Fingerprint(bm workload.Benchmark, cfg pipeline.Config) uint64 {
	return RunFingerprint(bm.Name, cfg, r.opts)
}

// RunFingerprint hashes everything that determines a run's stats — the
// benchmark name, the full serialized configuration (pipeline.Config's
// canonical fingerprint), the instruction budget, and the result-affecting
// mode options — into one FNV-64a value. Results persisted under this
// fingerprint (stats journals, checkpoint headers, the ctcpd result store)
// can never be served back for a run that would compute something else:
// changing the budget, any config field, or the segmentation/sampling
// schedule changes the fingerprint. Concurrency knobs (Parallelism,
// SampleWorkers) are excluded because the runner and sampler are
// deterministic under them; so is CheckpointDir, which relocates files
// without affecting the simulated schedule.
func RunFingerprint(bmName string, cfg pipeline.Config, opts Options) uint64 {
	budget := opts.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	// The budget is hashed explicitly below; the config's MaxInsts field is
	// zeroed so callers that pre-set it agree with the runner, which owns
	// the budget in every mode.
	cfg.MaxInsts = 0
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	io.WriteString(h, bmName)
	h.Write([]byte{0})
	put(cfg.Fingerprint())
	put(budget)
	switch {
	case opts.SampleInterval != 0:
		put(2) // mode: sampled
		put(opts.SampleInterval)
		put(opts.SampleDetail)
		put(opts.SampleWarmup)
	case opts.CheckpointDir != "":
		put(1) // mode: checkpoint-segmented (RunTo drain points shift cycles)
		put(effectiveEvery(budget, opts.CheckpointEvery))
	default:
		put(0) // mode: monolithic
	}
	return h.Sum64()
}

// effectiveEvery resolves the checkpoint spacing actually used for a budget:
// it determines the segment schedule, so it is part of the run fingerprint.
func effectiveEvery(budget, every uint64) uint64 {
	if every == 0 {
		every = budget / 4
	}
	if every == 0 {
		every = 1
	}
	return every
}

// interrupted reports whether Options.Interrupt has fired (nil = never).
func (r *Runner) interrupted() bool {
	select {
	case <-r.opts.Interrupt:
		return true
	default:
		return false
	}
}

func (r *Runner) emit(ev ProgressEvent) {
	if r.opts.Progress != nil {
		r.opts.Progress(ev)
	}
}

// Run simulates bm under cfg (cached by benchmark name + cfgKey). It
// returns nil when the simulation failed; the error stays recorded in the
// Runner (Errors, FailureSummary) so artifact builders can skip the row and
// keep going. Use RunErr to observe the error directly.
func (r *Runner) Run(bm workload.Benchmark, cfgKey string, cfg pipeline.Config) *pipeline.Stats {
	s, _ := r.RunErr(bm, cfgKey, cfg)
	return s
}

// RunErr simulates bm under cfg and returns the stats or the recorded
// per-key error. Concurrent callers with the same key share one underlying
// simulation (singleflight); later callers get cache hits.
func (r *Runner) RunErr(bm workload.Benchmark, cfgKey string, cfg pipeline.Config) (*pipeline.Stats, error) {
	key := bm.Name + "/" + cfgKey
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		// Someone already owns this key: either the run is finished (cache
		// hit) or in flight (join it instead of simulating a duplicate).
		select {
		case <-e.done:
			r.cacheHits++
			r.mu.Unlock()
			r.emit(ProgressEvent{Kind: RunCached, Key: key, Wall: e.wall, Err: e.err})
		default:
			r.deduped++
			r.mu.Unlock()
			r.emit(ProgressEvent{Kind: RunDeduped, Key: key})
			<-e.done
		}
		return e.stats, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.started++
	r.mu.Unlock()
	r.emit(ProgressEvent{Kind: RunStarted, Key: key})

	func() {
		// The leader must always publish, or waiters deadlock; simulate
		// recovers panics (including from hooked run functions) into errors.
		defer close(e.done)
		start := time.Now()
		e.stats, e.err = r.simulate(key, bm, cfg)
		e.wall = time.Since(start)
	}()

	r.mu.Lock()
	if e.err != nil {
		r.failed++
	} else {
		r.completed++
	}
	r.mu.Unlock()
	if e.err != nil {
		r.emit(ProgressEvent{Kind: RunFailed, Key: key, Wall: e.wall, Err: e.err})
	} else {
		r.emit(ProgressEvent{Kind: RunCompleted, Key: key, Wall: e.wall})
	}
	return e.stats, e.err
}

// Forget drops the memoized entry for bm/cfgKey if its run has finished. A
// run that failed (or was interrupted) stays recorded per key forever
// otherwise, which is right for one-shot sweeps — the failure belongs in
// the report — but wrong for a long-lived service retrying a transiently
// failed fingerprint: without Forget, the retry would be answered with the
// recorded failure instead of a fresh simulation. In-flight entries are
// left alone (their leader still owns the cell).
func (r *Runner) Forget(bm workload.Benchmark, cfgKey string) {
	key := bm.Name + "/" + cfgKey
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[key]; ok {
		select {
		case <-e.done:
			delete(r.cache, key)
		default:
		}
	}
}

// simulate executes one run, holding a semaphore slot only around the
// cycle-level model: program generation is memoized and cheap, so it must
// not occupy a simulation slot. The key names the run's checkpoint files
// when checkpointing is enabled.
func (r *Runner) simulate(key string, bm workload.Benchmark, cfg pipeline.Config) (s *pipeline.Stats, err error) {
	defer func() {
		// Safety net for panics escaping runFn itself (RunProgramErr already
		// recovers model panics; this catches hooked or future run paths).
		if rec := recover(); rec != nil {
			s, err = nil, &pipeline.SimError{Reason: fmt.Sprint(rec)}
		}
	}()
	if r.opts.CheckpointDir != "" && r.opts.SampleInterval != 0 {
		return nil, fmt.Errorf("experiment: sampled and checkpointed modes are mutually exclusive")
	}
	prog := bm.ProgramFor(r.opts.Budget)
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	if r.interrupted() {
		// Shutdown arrived while this run waited for a simulation slot;
		// returning before any model work lets a drain finish promptly.
		return nil, ErrInterrupted
	}
	switch {
	case r.opts.CheckpointDir != "":
		return r.runCheckpointed(key, r.Fingerprint(bm, cfg), prog, cfg)
	case r.opts.SampleInterval != 0:
		return r.runSampled(key, prog, cfg)
	default:
		cfg.MaxInsts = r.opts.Budget
		return r.runFn(prog, cfg)
	}
}

// runSampled estimates the run with region-parallel sampled simulation.
// The returned Stats carries the whole-run estimate in Cycles/Retired
// (so IPC and speedup math work unchanged); the remaining counters sum
// over the instructions simulated in detail only.
func (r *Runner) runSampled(key string, prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
	res, err := sample.Run(prog, cfg, sample.Options{
		Interval: r.opts.SampleInterval,
		Detail:   r.opts.SampleDetail,
		Warmup:   r.opts.SampleWarmup,
		Workers:  r.opts.SampleWorkers,
		MaxInsts: r.opts.Budget,
		OnRegion: func(done, total int) {
			r.emit(ProgressEvent{Kind: RunRegion, Key: key,
				Done: uint64(done), Total: uint64(total)})
		},
	})
	if err != nil {
		return nil, err
	}
	s := res.Stats
	s.Cycles = int64(res.EstimatedCycles + 0.5)
	s.Retired = res.TotalInsts
	return &s, nil
}

// sanitizeKey maps a run key to a filesystem-safe checkpoint file stem. The
// character mapping alone is lossy — "a/b-x" and "a_b/x" both map to
// "a_b-x", which would let two distinct runs clobber each other's files — so
// the stem also carries a short hash of the raw key: distinct keys always
// get distinct stems, while the readable prefix keeps the directory
// browsable.
func sanitizeKey(key string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	sum := h.Sum64()
	mapped := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			return c
		default:
			return '_'
		}
	}, key)
	return fmt.Sprintf("%s-%08x", mapped, uint32(sum^(sum>>32)))
}

// journal is the on-disk schema of a completed run's .done.json. The
// fingerprint ties the stats to the exact budget + config + schedule that
// produced them; a journal whose fingerprint does not match the requested
// run is stale (for example, the sweep was rerun with a different -insts)
// and is ignored rather than served.
type journal struct {
	Fingerprint string          `json:"fingerprint"`
	Key         string          `json:"key"`
	Budget      uint64          `json:"budget"`
	Stats       *pipeline.Stats `json:"stats"`
}

// runCheckpointed executes one run as a sequence of RunTo segments,
// persisting the full simulator state after each one. A completed run
// leaves a stats journal and removes its checkpoint; a rerun finds the
// journal and returns instantly. A killed run leaves its newest checkpoint
// behind, and the rerun resumes from it bit-exactly. Both durable files are
// bound to the run fingerprint (budget + config + schedule): a journal or
// checkpoint written under different options — the classic stale case is a
// rerun with a changed -insts budget over the same directory — is detected
// on load and discarded, restarting from scratch, exactly as a checkpoint
// that fails to decode (truncated write, version skew) is.
func (r *Runner) runCheckpointed(key string, fp uint64, prog *isa.Program, cfg pipeline.Config) (*pipeline.Stats, error) {
	stem := filepath.Join(r.opts.CheckpointDir, sanitizeKey(key))
	ckptPath := stem + ".ckpt"
	donePath := stem + ".done.json"
	fpHex := fmt.Sprintf("%016x", fp)

	if buf, err := os.ReadFile(donePath); err == nil {
		var j journal
		if json.Unmarshal(buf, &j) == nil && j.Stats != nil && j.Fingerprint == fpHex {
			return j.Stats, nil
		}
		// Stale (written under a different budget/config), pre-fingerprint,
		// or corrupt journal: fall through, resimulate, and overwrite.
	}

	budget := r.opts.Budget
	every := effectiveEvery(budget, r.opts.CheckpointEvery)
	cfg.MaxInsts = 0 // the budget lives in the (snapshotable) LimitStream
	newPipe := func() *pipeline.Pipeline {
		return pipeline.New(&emu.LimitStream{S: emu.New(prog), Budget: budget}, cfg)
	}
	p := newPipe()
	if rd, err := snap.ReadFile(ckptPath); err == nil {
		rd.Begin("run")
		rd.Expect("run fingerprint", fp)
		rd.End()
		if rd.Err() == nil {
			p.Restore(rd)
		}
		if rd.Err() != nil || rd.Close() != nil {
			// Stale (old budget/config still baked into the snapshotted
			// LimitStream) or unusable checkpoint: restart clean.
			p = newPipe()
		}
	}
	for {
		if r.interrupted() {
			// The newest segment checkpoint is already on disk; a rerun
			// resumes from it bit-exactly.
			return nil, ErrInterrupted
		}
		next := (p.Consumed()/every + 1) * every
		if next > budget {
			next = budget
		}
		if p.RunTo(next) || p.Consumed() >= budget {
			break
		}
		w := snap.NewWriter()
		w.Begin("run")
		w.U64(fp)
		w.End()
		p.Snapshot(w)
		if err := snap.WriteFile(ckptPath, w); err != nil {
			return nil, fmt.Errorf("writing checkpoint %s: %w", ckptPath, err)
		}
		// The segment's checkpoint is durable: announce the boundary so
		// services can stream intra-run progress to their clients.
		r.emit(ProgressEvent{Kind: RunSegment, Key: key, Done: p.Consumed(), Total: budget})
	}
	s := p.Finish()
	buf, err := json.Marshal(journal{Fingerprint: fpHex, Key: key, Budget: budget, Stats: s})
	if err != nil {
		return nil, err
	}
	// The journal takes the same atomic temp+rename path as checkpoints: a
	// kill mid-write must never leave a torn .done.json that a rerun would
	// half-parse.
	if err := snap.WriteFileBytes(donePath, buf); err != nil {
		return nil, fmt.Errorf("writing stats journal %s: %w", donePath, err)
	}
	os.Remove(ckptPath) // superseded by the journal
	return s, nil
}

// Prefetch runs the given benchmark/config pairs concurrently so later
// cache hits are instant. Experiments call it with their full matrix. The
// fan-out is a fixed worker pool (Options.Parallelism workers over a job
// channel), not one goroutine per pair, so arbitrarily large matrices run
// with bounded concurrency.
func (r *Runner) Prefetch(bms []workload.Benchmark, cfgs map[string]pipeline.Config) {
	type job struct {
		bm  workload.Benchmark
		key string
		cfg pipeline.Config
	}
	n := len(bms) * len(cfgs)
	if n == 0 {
		return
	}
	workers := r.opts.Parallelism
	if workers > n {
		workers = n
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r.RunErr(j.bm, j.key, j.cfg)
			}
		}()
	}
	// Submit in sorted key order: results are cached by key either way, but
	// a deterministic submission order keeps run scheduling (and therefore
	// any timing-derived diagnostics) reproducible across processes.
	keys := make([]string, 0, len(cfgs))
	for key := range cfgs { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, bm := range bms {
		for _, key := range keys {
			jobs <- job{bm, key, cfgs[key]}
		}
	}
	close(jobs)
	wg.Wait()
}

// Stats returns a snapshot of the runner's execution counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RunnerStats{
		Started:   r.started,
		Completed: r.completed,
		Failed:    r.failed,
		Deduped:   r.deduped,
		CacheHits: r.cacheHits,
		Wall:      make(map[string]time.Duration, len(r.cache)),
	}
	for k, e := range r.cache { //ctcp:lint-ok maporder -- map-to-map copy; result is order-insensitive
		select {
		case <-e.done:
			out.Wall[k] = e.wall
		default:
		}
	}
	return out
}

// Errors returns the recorded failures, keyed by "benchmark/config".
// In-flight runs are not included.
func (r *Runner) Errors() map[string]error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]error)
	for k, e := range r.cache { //ctcp:lint-ok maporder -- map-to-map copy; result is order-insensitive
		select {
		case <-e.done:
			if e.err != nil {
				out[k] = e.err
			}
		default:
		}
	}
	return out
}

// FailureSummary renders the recorded failures one per line, sorted by key;
// it returns "" when every run succeeded.
func (r *Runner) FailureSummary() string {
	errs := r.Errors()
	if len(errs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(errs))
	for k := range errs { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%d simulation(s) failed:\n", len(keys))
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-28s %v\n", k, errs[k])
	}
	return b.String()
}

// statsOK reports whether every run in ss succeeded. Artifact builders use
// it to drop a benchmark's row instead of rendering garbage when one of its
// runs failed (the failure itself stays recorded in the Runner).
func statsOK(ss ...*pipeline.Stats) bool {
	for _, s := range ss {
		if s == nil {
			return false
		}
	}
	return true
}

// --- shared configurations ---

// BaseConfig returns the Table 7 baseline.
func BaseConfig() pipeline.Config { return pipeline.DefaultConfig() }

// StrategyConfigs returns the named strategy configurations used across the
// performance figures.
func StrategyConfigs() map[string]pipeline.Config {
	base := BaseConfig()
	return map[string]pipeline.Config{
		"base":         base,
		"friendly":     base.WithStrategy(core.Friendly, false),
		"friendly-mid": base.WithStrategy(core.FriendlyMiddle, false),
		"fdrt":         base.WithStrategy(core.FDRT, false),
		"fdrt-nopin":   base.WithStrategy(core.FDRTNoPin, false),
		"issue0":       base.WithStrategy(core.IssueTime, true),
		"issue4":       base.WithStrategy(core.IssueTime, false),
	}
}

// speedup returns baseCycles/cycles; it reports 0 (which HarmonicMean
// rejects visibly) when either run is missing or degenerate, so a failed
// base run cannot divide garbage once errors are non-fatal.
func speedup(base, s *pipeline.Stats) float64 {
	if base == nil || s == nil || base.Cycles == 0 || s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

func fmtBench(name string) string { return fmt.Sprintf("%-9s", name) }
