package cachesim

// HierarchyConfig collects the data-side memory system of Table 7.
type HierarchyConfig struct {
	L1         Config
	L2         Config
	TLB        Config // "line size" is the page size
	L1HitLat   int    // cycles for an L1 hit (includes DC access + return)
	TLBHitLat  int
	TLBMissLat int
	L2Lat      int // added cycles for an L1 miss that hits L2
	MemLat     int // added cycles for an L2 miss
	MSHRs      int // max outstanding misses
	Ports      int // cache ports per cycle (enforced by the pipeline)
}

// DefaultHierarchy returns the paper's Table 7 data-memory configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:         Config{Name: "L1D", Sets: 32 * KB / 64 / 4, Ways: 4, LineSize: 64},
		L2:         Config{Name: "L2", Sets: 1024 * KB / 64 / 4, Ways: 4, LineSize: 64},
		TLB:        Config{Name: "DTLB", Sets: 128 / 4, Ways: 4, LineSize: 4096},
		L1HitLat:   2,
		TLBHitLat:  1,
		TLBMissLat: 30,
		L2Lat:      8,
		MemLat:     65,
		MSHRs:      16,
		Ports:      4,
	}
}

// Hierarchy composes TLB + L1 + L2 + memory with nonblocking misses. The
// pipeline asks for the completion time of each data access; MSHR occupancy
// both merges misses to the same line and bounds miss-level parallelism.
type Hierarchy struct {
	cfg HierarchyConfig
	L1  *Cache
	L2  *Cache
	TLB *Cache

	// Outstanding misses: line address and the cycle its fill completes.
	// Bounded by cfg.MSHRs (16 in the Table 7 configuration), so linear
	// scans beat hashing and keep eviction tie-breaks deterministic.
	mshr []mshrEntry

	// Stats
	TLBMisses  uint64
	L1Misses   uint64
	L2Misses   uint64
	Accesses   uint64
	MSHRMerges uint64
	MSHRStalls uint64
}

// mshrEntry is one outstanding miss.
type mshrEntry struct {
	line  uint64
	ready int64
}

// NewHierarchy builds the data-memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1:  New(cfg.L1),
		L2:  New(cfg.L2),
		TLB: New(cfg.TLB),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

func (h *Hierarchy) reapMSHR(now int64) {
	keep := h.mshr[:0]
	for _, e := range h.mshr {
		if e.ready > now {
			keep = append(keep, e)
		}
	}
	h.mshr = keep
}

// findMSHR returns the outstanding entry for line, or nil.
func (h *Hierarchy) findMSHR(line uint64) *mshrEntry {
	for i := range h.mshr {
		if h.mshr[i].line == line {
			return &h.mshr[i]
		}
	}
	return nil
}

// Access computes the completion cycle of a data reference issued at cycle
// now. Cache and TLB state update immediately (the reference wins the arrays
// at issue); the returned cycle accounts for TLB, L1, L2 and memory
// latencies, MSHR merging, and MSHR-full back-pressure.
func (h *Hierarchy) Access(now int64, addr uint64) int64 {
	h.Accesses++
	lat := int64(h.cfg.TLBHitLat)
	if !h.TLB.Access(addr) {
		h.TLBMisses++
		lat += int64(h.cfg.TLBMissLat)
	}
	line := h.L1.LineAddr(addr)
	if h.L1.Access(addr) {
		// The tag array fills at miss issue, so a "hit" may reference a line
		// whose fill is still in flight; such hits merge into the MSHR and
		// complete no earlier than the fill returns.
		if e := h.findMSHR(line); e != nil && e.ready > now {
			h.MSHRMerges++
			return max64(e.ready, now+lat+int64(h.cfg.L1HitLat))
		}
		return now + lat + int64(h.cfg.L1HitLat)
	}
	h.L1Misses++
	h.reapMSHR(now)
	start := now
	if len(h.mshr) >= h.cfg.MSHRs {
		// All MSHRs busy: the miss waits for the earliest fill to retire
		// (oldest entry on a tie).
		h.MSHRStalls++
		min := 0
		for i := 1; i < len(h.mshr); i++ {
			if h.mshr[i].ready < h.mshr[min].ready {
				min = i
			}
		}
		earliest := h.mshr[min].ready
		h.mshr = append(h.mshr[:min], h.mshr[min+1:]...)
		if earliest > start {
			start = earliest
		}
	}
	missLat := int64(h.cfg.L2Lat)
	if !h.L2.Access(addr) {
		h.L2Misses++
		missLat += int64(h.cfg.MemLat)
	}
	done := start + lat + int64(h.cfg.L1HitLat) + missLat
	if e := h.findMSHR(line); e != nil {
		// The line's tag was evicted and re-missed while its first fill was
		// still in flight: the newer fill supersedes it.
		e.ready = done
	} else {
		h.mshr = append(h.mshr, mshrEntry{line, done})
	}
	return done
}

// Reset clears arrays, MSHRs and statistics.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.TLB.Reset()
	h.mshr = h.mshr[:0]
	h.TLBMisses, h.L1Misses, h.L2Misses, h.Accesses = 0, 0, 0, 0
	h.MSHRMerges, h.MSHRStalls = 0, 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
