// interconnect studies how the inter-cluster network shapes the value of
// retire-time cluster assignment: the chain baseline, the ring ("mesh")
// variant, and a one-cycle-hop network, as in the paper's Figure 8.
package main

import (
	"flag"
	"fmt"
	"log"

	"ctcp"
	"ctcp/internal/cluster"
)

func main() {
	bench := flag.String("bench", "vpr", "benchmark name")
	insts := flag.Uint64("insts", 200_000, "instruction budget")
	flag.Parse()

	bm, ok := ctcp.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	fmt.Printf("%s under three interconnects (speedups relative to each network's own base)\n\n", bm.Name)

	variants := []struct {
		name string
		mod  func(*ctcp.Config)
	}{
		{"chain, 2-cycle hops (paper base)", func(c *ctcp.Config) {}},
		{"ring ('mesh'), 2-cycle hops", func(c *ctcp.Config) { c.Geom.Topology = cluster.Ring }},
		{"chain, 1-cycle hops", func(c *ctcp.Config) { c.Geom.HopLat = 1 }},
	}
	for _, v := range variants {
		base := ctcp.DefaultConfig()
		v.mod(&base)
		b := ctcp.Run(bm, base, *insts)
		fmt.Printf("%s:\n", v.name)
		fmt.Printf("  base        %8d cycles (IPC %.3f, mean fwd distance %.3f)\n",
			b.Cycles, b.IPC(), b.AvgFwdDistance())
		for _, strat := range []ctcp.Strategy{ctcp.Friendly, ctcp.FDRT, ctcp.IssueTime} {
			cfg := base.WithStrategy(strat, false)
			s := ctcp.Run(bm, cfg, *insts)
			fmt.Printf("  %-10v  %8d cycles  speedup %.3f\n", strat, s.Cycles,
				float64(b.Cycles)/float64(s.Cycles))
		}
		fmt.Println()
	}
}
