// Command ctcpd runs (and talks to) the fingerprint-keyed simulation
// service.
//
// Usage:
//
//	ctcpd -serve -addr :8321 -store results/          # start the service
//	ctcpd -serve ... -ckpt-dir ckpts/                 # allow checkpointed jobs;
//	                                                  # shutdown drains losslessly
//	ctcpd -serve ... -keys keys.txt -rate 10 -quota 8 # multi-tenant intake
//	ctcpd -submit -bm gzip -config fdrt               # submit one job
//	ctcpd -submit ... -timeout 2m                     # ...and wait for the result
//	ctcpd -batch sweep.json                           # submit a whole sweep
//	ctcpd -wait job-3                                 # wait for an earlier job
//	ctcpd -watch job-3                                # stream its progress events
//	ctcpd -serve ... -slot-dir slots/                 # expose named save-state slots
//	ctcpd -slots                                      # list the server's slots
//	ctcpd -slot warm                                  # inspect one slot
//	ctcpd -fork warm -as warm-hop1 -fork-hop 1        # fork it into a what-if config
//
// A submitted job is identified by its run fingerprint (benchmark + full
// config + budget + mode): duplicates join the in-flight job, repeats are
// answered from the server's result store — across restarts — without
// resimulating. Acceptances are journaled, so jobs queued (or interrupted)
// at shutdown are replayed by the next start on the same -store/-journal.
// SIGINT/SIGTERM drain the server: in-flight checkpointed runs stop at the
// next segment boundary and resume bit-exactly on restart. Against a keyed
// server, pass -key (sent as X-API-Key) with every client verb.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctcp/internal/serve"
)

// cliOptions collects every parsed flag.
type cliOptions struct {
	serveMode bool
	submit    bool
	batchPath string
	waitID    string
	watchID   string
	listSlots bool
	slotName  string
	forkSlot  string
	addr      string

	// -serve
	storeDir string
	ckptDir  string
	slotDir  string
	journal  string
	keysPath string
	rate     float64
	burst    float64
	quota    int
	retain   int
	workers  int
	queue    int
	drain    time.Duration

	// client verbs
	key string

	// -submit
	bm             string
	config         string
	insts          uint64
	sampleInterval uint64
	sampleDetail   uint64
	sampleWarmup   uint64
	checkpoint     bool
	ckptEvery      uint64

	// -submit / -wait
	timeout time.Duration

	// -fork
	forkAs    string
	forkBase  string
	forkHop   int
	forkZAll  bool
	forkZCrit bool
	forkZIn   bool
	forkZOut  bool
}

func (o *cliOptions) validate() error {
	modes := 0
	for _, on := range []bool{o.serveMode, o.submit, o.batchPath != "", o.waitID != "", o.watchID != "", o.listSlots, o.slotName != "", o.forkSlot != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -serve, -submit, -batch, -wait, -watch, -slots, -slot, -fork is required")
	}
	if o.serveMode && o.storeDir == "" {
		return fmt.Errorf("-serve requires -store <dir>")
	}
	if o.submit && (o.bm == "" || o.config == "") {
		return fmt.Errorf("-submit requires -bm and -config")
	}
	if o.forkSlot != "" && o.forkAs == "" {
		return fmt.Errorf("-fork requires -as <dst>")
	}
	return nil
}

func main() {
	var o cliOptions
	flag.BoolVar(&o.serveMode, "serve", false, "run the simulation service")
	flag.BoolVar(&o.submit, "submit", false, "submit one job to a running service")
	flag.StringVar(&o.batchPath, "batch", "", "submit a batch: JSON file of requests (\"-\" = stdin)")
	flag.StringVar(&o.waitID, "wait", "", "wait for the given job ID to finish and print its result")
	flag.StringVar(&o.watchID, "watch", "", "stream the given job's progress events until it finishes")
	flag.BoolVar(&o.listSlots, "slots", false, "list the server's named save-state slots")
	flag.StringVar(&o.slotName, "slot", "", "inspect one named save-state slot")
	flag.StringVar(&o.forkSlot, "fork", "", "fork the given slot into -as under a what-if config delta")
	flag.StringVar(&o.forkAs, "as", "", "destination slot name for -fork")
	flag.StringVar(&o.forkBase, "fork-base", "", "fork delta: base config name (default: source slot's base)")
	flag.IntVar(&o.forkHop, "fork-hop", 0, "fork delta: override inter-cluster hop latency when > 0")
	flag.BoolVar(&o.forkZAll, "fork-zero-all", false, "fork delta: zero all forwarding latency")
	flag.BoolVar(&o.forkZCrit, "fork-zero-crit", false, "fork delta: zero critical-input forwarding latency")
	flag.BoolVar(&o.forkZIn, "fork-zero-intra", false, "fork delta: zero intra-trace forwarding latency")
	flag.BoolVar(&o.forkZOut, "fork-zero-inter", false, "fork delta: zero inter-trace forwarding latency")
	flag.StringVar(&o.addr, "addr", "localhost:8321", "listen address (-serve) or server address (client verbs)")
	flag.StringVar(&o.storeDir, "store", "", "result-store directory (required with -serve)")
	flag.StringVar(&o.ckptDir, "ckpt-dir", "", "checkpoint directory: enables checkpointed jobs and lossless shutdown")
	flag.StringVar(&o.slotDir, "slot-dir", "", "named save-state slot directory: enables /api/v1/slots (list, inspect, fork)")
	flag.StringVar(&o.journal, "journal", "", "durable queue journal path (default <store>/queue.journal)")
	flag.StringVar(&o.keysPath, "keys", "", "API key file: \"<key> <tenant> [quota=N] [rate=R] [burst=B]\" per line; enables auth")
	flag.Float64Var(&o.rate, "rate", 0, "default per-tenant submissions/second (0 = unlimited)")
	flag.Float64Var(&o.burst, "burst", 0, "default per-tenant token-bucket burst (0 = max(rate,1))")
	flag.IntVar(&o.quota, "quota", 0, "default per-tenant queued+running job bound (0 = unbounded)")
	flag.IntVar(&o.retain, "retain", 0, "terminal jobs kept listable in memory (0 = 512); results persist in the store")
	flag.IntVar(&o.workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "accepted-but-not-running job bound; overflow is rejected with 429 (0 = 64)")
	flag.DurationVar(&o.drain, "drain", 60*time.Second, "shutdown drain budget for in-flight simulations")
	flag.StringVar(&o.key, "key", "", "API key sent with client verbs (X-API-Key)")
	flag.StringVar(&o.bm, "bm", "", "benchmark name to submit")
	flag.StringVar(&o.config, "config", "", "strategy configuration name to submit")
	flag.Uint64Var(&o.insts, "insts", 0, "committed instruction budget (0 = server default)")
	flag.Uint64Var(&o.sampleInterval, "sample", 0, "sampled simulation: region interval (0 = full detail)")
	flag.Uint64Var(&o.sampleDetail, "sample-detail", 0, "instructions simulated in detail per region")
	flag.Uint64Var(&o.sampleWarmup, "sample-warmup", 0, "warmup instructions per region")
	flag.BoolVar(&o.checkpoint, "checkpoint", false, "request a checkpoint-segmented (resumable) run")
	flag.Uint64Var(&o.ckptEvery, "checkpoint-every", 0, "instructions between checkpoints (0 = budget/4)")
	flag.DurationVar(&o.timeout, "timeout", 0, "how long -submit/-wait block for the result (0: -submit returns immediately, -wait blocks forever)")
	flag.Parse()
	os.Exit(run(&o))
}

func run(o *cliOptions) int {
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 2
	}
	switch {
	case o.serveMode:
		return runServe(o)
	case o.submit:
		return runSubmit(o)
	case o.batchPath != "":
		return runBatch(o)
	case o.watchID != "":
		return runWatch(o, o.watchID)
	case o.listSlots:
		return runSlots(o)
	case o.slotName != "":
		return runSlot(o)
	case o.forkSlot != "":
		return runFork(o)
	default:
		return runWait(o, o.waitID)
	}
}

// runServe hosts the service until SIGINT/SIGTERM, then drains: the HTTP
// front end stops accepting, queued jobs resolve as interrupted (their
// journal entries survive for the next start to replay), and in-flight
// checkpointed runs stop at their next segment boundary with the newest
// checkpoint on disk.
func runServe(o *cliOptions) int {
	logger := log.New(os.Stderr, "ctcpd: ", log.LstdFlags)
	s, err := serve.New(serve.Config{
		Store:         o.storeDir,
		CheckpointDir: o.ckptDir,
		SlotDir:       o.slotDir,
		Journal:       o.journal,
		Keys:          o.keysPath,
		TenantRate:    o.rate,
		TenantBurst:   o.burst,
		TenantQuota:   o.quota,
		RetainJobs:    o.retain,
		QueueDepth:    o.queue,
		Workers:       o.workers,
		DefaultBudget: o.insts,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	srv := &http.Server{Addr: o.addr, Handler: s}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (store %s)", o.addr, o.storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		logger.Printf("http server: %v", err)
		return 1
	case got := <-sig:
		logger.Printf("%v: draining (budget %v)", got, o.drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	logger.Printf("drained")
	return 0
}

// jobResp mirrors the service's job JSON; Stats stays raw so the client
// reprints exactly what the server sent.
type jobResp struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	Status      string          `json:"status"`
	Cached      bool            `json:"cached"`
	Error       string          `json:"error"`
	Stats       json.RawMessage `json:"stats"`
}

func terminal(status string) bool {
	switch status {
	case serve.StatusDone, serve.StatusFailed, serve.StatusInterrupted:
		return true
	}
	return false
}

// baseURL normalizes -addr into an http URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// do issues one API call, attaching -key when set.
func do(o *cliOptions, method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if o.key != "" {
		req.Header.Set("X-API-Key", o.key)
	}
	return http.DefaultClient.Do(req)
}

func runSubmit(o *cliOptions) int {
	body, err := json.Marshal(serve.Request{
		Benchmark:       o.bm,
		Config:          o.config,
		Budget:          o.insts,
		SampleInterval:  o.sampleInterval,
		SampleDetail:    o.sampleDetail,
		SampleWarmup:    o.sampleWarmup,
		Checkpoint:      o.checkpoint,
		CheckpointEvery: o.ckptEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 1
	}
	resp, err := do(o, http.MethodPost, baseURL(o.addr)+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: submit: %v\n", err)
		return 1
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
		return 1
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "ctcpd: submit rejected (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	var j jobResp
	if err := json.Unmarshal(raw, &j); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: decoding response: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ctcpd: job %s fingerprint %s status %s\n", j.ID, j.Fingerprint, j.Status)
	if terminal(j.Status) || o.timeout == 0 {
		fmt.Printf("%s\n", raw)
		return exitFor(j)
	}
	return runWait(o, j.ID)
}

// runBatch submits a whole sweep in one request. The input file (or stdin
// with "-") is a JSON array of request objects — the same shape -submit
// builds — and the per-row outcomes print as JSON on stdout. The exit code
// is 0 only if every row was accepted or answered.
func runBatch(o *cliOptions) int {
	var raw []byte
	var err error
	if o.batchPath == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(o.batchPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: batch: %v\n", err)
		return 1
	}
	var reqs []serve.Request
	if err := json.Unmarshal(raw, &reqs); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: batch: decoding %s: %v\n", o.batchPath, err)
		return 1
	}
	body, err := json.Marshal(map[string]any{"jobs": reqs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: batch: %v\n", err)
		return 1
	}
	resp, err := do(o, http.MethodPost, baseURL(o.addr)+"/api/v1/batch", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: batch: %v\n", err)
		return 1
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ctcpd: batch rejected (%s): %s\n", resp.Status, strings.TrimSpace(string(out)))
		return 1
	}
	fmt.Printf("%s\n", out)
	var parsed struct {
		Jobs []struct {
			ID    string `json:"id"`
			Code  int    `json:"code"`
			Error string `json:"error"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: decoding response: %v\n", err)
		return 1
	}
	code := 0
	for i, item := range parsed.Jobs {
		if item.Error != "" {
			fmt.Fprintf(os.Stderr, "ctcpd: batch row %d rejected (%d): %s\n", i, item.Code, item.Error)
			code = 1
		}
	}
	return code
}

// runWatch streams a job's server-sent events to stdout, one JSON object
// per line, until the job reaches a terminal status.
func runWatch(o *cliOptions, id string) int {
	resp, err := do(o, http.MethodGet, baseURL(o.addr)+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: watch: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "ctcpd: watch (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	code := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // "event:" lines and blank separators
		}
		fmt.Println(data)
		var ev struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && terminal(ev.Type) {
			if ev.Type != serve.StatusDone {
				code = 1
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: watch: %v\n", err)
		return 1
	}
	return code
}

// runWait long-polls a job until it reaches a terminal status (or -timeout
// elapses) and prints the final job JSON on stdout.
func runWait(o *cliOptions, id string) int {
	var deadline time.Time
	if o.timeout > 0 {
		deadline = time.Now().Add(o.timeout)
	}
	url := baseURL(o.addr) + "/api/v1/jobs/" + id + "?wait=10s"
	for {
		resp, err := do(o, http.MethodGet, url, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: wait: %v\n", err)
			return 1
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "ctcpd: wait (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
			return 1
		}
		var j jobResp
		if err := json.Unmarshal(raw, &j); err != nil {
			fmt.Fprintf(os.Stderr, "ctcpd: decoding response: %v\n", err)
			return 1
		}
		if terminal(j.Status) {
			fmt.Printf("%s\n", raw)
			return exitFor(j)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "ctcpd: job %s still %s after %v\n", id, j.Status, o.timeout)
			return 1
		}
	}
}

// getJSON GETs one API path and prints the body on stdout (pretty-printed by
// the server already); non-200 responses go to stderr with exit 1.
func getJSON(o *cliOptions, path string) int {
	resp, err := do(o, http.MethodGet, baseURL(o.addr)+path, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 1
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ctcpd: %s (%s): %s\n", path, resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	fmt.Printf("%s\n", raw)
	return 0
}

// runSlots lists the server's named save-state slots.
func runSlots(o *cliOptions) int {
	return getJSON(o, "/api/v1/slots")
}

// runSlot prints one slot's metadata.
func runSlot(o *cliOptions) int {
	return getJSON(o, "/api/v1/slots/"+o.slotName)
}

// runFork forks a server-side slot into a what-if configuration delta and
// prints the new slot's metadata.
func runFork(o *cliOptions) int {
	body, err := json.Marshal(map[string]any{
		"as":               o.forkAs,
		"base":             o.forkBase,
		"hop":              o.forkHop,
		"zero_all_fwd":     o.forkZAll,
		"zero_crit_fwd":    o.forkZCrit,
		"zero_intra_trace": o.forkZIn,
		"zero_inter_trace": o.forkZOut,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: %v\n", err)
		return 1
	}
	resp, err := do(o, http.MethodPost, baseURL(o.addr)+"/api/v1/slots/"+o.forkSlot+"/fork", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: fork: %v\n", err)
		return 1
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcpd: reading response: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusCreated {
		fmt.Fprintf(os.Stderr, "ctcpd: fork rejected (%s): %s\n", resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	fmt.Printf("%s\n", raw)
	return 0
}

// exitFor maps a terminal job status to the process exit code.
func exitFor(j jobResp) int {
	switch j.Status {
	case serve.StatusFailed, serve.StatusInterrupted:
		fmt.Fprintf(os.Stderr, "ctcpd: job %s %s: %s\n", j.ID, j.Status, j.Error)
		return 1
	}
	return 0
}
