package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WriteCheck flags fmt.Fprint/Fprintf/Fprintln calls (in the cmd/ tools and
// internal/serve) whose error result is discarded while writing to a
// destination that can actually fail — an *os.File opened for output, or any
// io.Writer that is not one of the conventionally infallible sinks
// (os.Stdout, os.Stderr, strings.Builder, bytes.Buffer). A full disk or
// closed pipe must surface as a non-zero exit, not a silently truncated
// artifact file. In internal/serve it additionally flags discarded errors on
// http.ResponseWriter.Write: on the SSE/metrics paths a failed write means
// the client is gone, and ignoring it keeps streaming into a dead
// connection instead of tearing the subscriber down.
var WriteCheck = &Analyzer{
	Name: "writecheck",
	Doc:  "discarded error writing to a fallible destination (cmd/, serve handlers, SSE flush paths)",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/cmd/") || strings.HasPrefix(pkgPath, "cmd/") ||
			pathIn(pkgPath, "internal/serve")
	},
	Run: runWriteCheck,
}

func runWriteCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Uses[sel.Sel]
			if !ok || obj.Pkg() == nil {
				return true
			}
			// http.ResponseWriter.Write (and any other net/http Write method)
			// with the error discarded: the client may be gone.
			if fn, isFn := obj.(*types.Func); isFn && obj.Pkg().Path() == "net/http" && fn.Name() == "Write" {
				if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
					p.Reportf(call.Pos(), "ResponseWriter.Write error discarded; a failed write means the client disconnected — check it and stop the response/stream")
					return true
				}
			}
			if obj.Pkg().Path() != "fmt" {
				return true
			}
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln":
			default:
				return true
			}
			if infallibleWriter(p, call.Args[0]) {
				return true
			}
			p.Reportf(call.Pos(), "fmt.%s error discarded while writing to a fallible destination; check the error (or write to a buffer and flush once)", obj.Name())
			return true
		})
	}
}

// infallibleWriter reports whether the writer expression is one of the sinks
// whose write errors are conventionally ignorable.
func infallibleWriter(p *Pass, w ast.Expr) bool {
	// os.Stdout / os.Stderr by identity.
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj, ok := p.Pkg.Info.Uses[sel.Sel]; ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	// strings.Builder / bytes.Buffer (possibly behind & or a pointer) by type.
	t := p.TypeOf(w)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		return full == "strings.Builder" || full == "bytes.Buffer"
	}
	return false
}
