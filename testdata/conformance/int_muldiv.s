; conformance: MUL/DIV/REM with mixed signs, plus the architectural
; divide-by-zero-yields-zero rule.
        .entry main
main:   movi    r1, 7
        movi    r2, -3
        movi    r3, 0
        movi    r4, 12          ; iterations
md:     mul     r1, r2, r5
        div     r5, r1, r6
        rem     r5, 5, r7
        add     r3, r5, r3
        sub     r3, r6, r3
        add     r3, r7, r3
        add     r1, 3, r1
        sub     r2, 1, r2
        sub     r4, 1, r4
        bne     r4, md
        movi    r8, 0
        div     r1, r8, r9      ; divide by zero -> 0
        rem     r1, r8, r10     ; remainder by zero -> 0
        add     r9, r10, r9
        out     r3
        out     r9
        halt
