package experiment

import (
	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/stats"
	"ctcp/internal/workload"
)

// Figure6Result reproduces Figure 6: speedup by cluster assignment strategy
// on the six selected benchmarks.
type Figure6Result struct {
	// Rows: No-lat issue-time, Issue-time(4), FDRT, Friendly speedups.
	Rows []BenchRow
}

// Figure6 compares the assignment strategies against the baseline.
func Figure6(r *Runner) *Figure6Result {
	cfgs := StrategyConfigs()
	r.Prefetch(workload.Selected(), cfgs)
	res := &Figure6Result{}
	for _, bm := range workload.Selected() {
		b := r.Run(bm, "base", cfgs["base"])
		i0 := r.Run(bm, "issue0", cfgs["issue0"])
		i4 := r.Run(bm, "issue4", cfgs["issue4"])
		fd := r.Run(bm, "fdrt", cfgs["fdrt"])
		fr := r.Run(bm, "friendly", cfgs["friendly"])
		if !statsOK(b, i0, i4, fd, fr) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			speedup(b, i0), speedup(b, i4), speedup(b, fd), speedup(b, fr),
		}})
	}
	return res
}

// HM returns per-strategy harmonic means.
func (f *Figure6Result) HM() []float64 { return columnHM(f.Rows, 4) }

// Render formats the result.
func (f *Figure6Result) Render() string {
	tab := &stats.Table{
		Title:  "Figure 6: Speedup Due to Cluster Assignment Strategy",
		Header: []string{"bench", "No-lat Issue", "Issue-time", "FDRT", "Friendly"},
		Notes: []string{
			"paper harmonic means: 1.172 / ~1.11 / 1.115 / 1.031",
		},
	}
	appendRowsWithHM(tab, f.Rows, f.HM())
	return tab.Render()
}

// Table8Result reproduces Table 8: critical-input forwarding locality for
// Base / Friendly / FDRT.
type Table8Result struct {
	IntraRows  []BenchRow // fractions intra-cluster
	DistRows   []BenchRow // average forwarding distance (hops)
	PaperIntra map[string][3]float64
}

// Table8 measures intra-cluster forwarding share and mean distance.
func Table8(r *Runner) *Table8Result {
	cfgs := StrategyConfigs()
	r.Prefetch(workload.Selected(), cfgs)
	res := &Table8Result{PaperIntra: map[string][3]float64{
		"bzip2": {0.3978, 0.6084, 0.7954}, "eon": {0.3373, 0.5283, 0.5135},
		"gzip": {0.3294, 0.5391, 0.5825}, "perlbmk": {0.4495, 0.5836, 0.6201},
		"twolf": {0.4783, 0.5691, 0.5892}, "vpr": {0.3867, 0.5870, 0.5958},
	}}
	for _, bm := range workload.Selected() {
		var intra, dist []float64
		ok := true
		for _, key := range []string{"base", "friendly", "fdrt"} {
			s := r.Run(bm, key, cfgs[key])
			if !statsOK(s) {
				ok = false
				break
			}
			intra = append(intra, s.IntraClusterFrac())
			dist = append(dist, s.AvgFwdDistance())
		}
		if !ok {
			continue
		}
		res.IntraRows = append(res.IntraRows, BenchRow{bm.Name, intra})
		res.DistRows = append(res.DistRows, BenchRow{bm.Name, dist})
	}
	return res
}

// Render formats the result.
func (t *Table8Result) Render() string {
	a := &stats.Table{
		Title:  "Table 8a: Percentage of Intra-Cluster Forwarding (critical inputs)",
		Header: []string{"bench", "Base", "Friendly", "FDRT", "paper(B/F/FDRT)"},
		Notes:  []string{"paper averages: 39.65% / 56.93% / 61.61%"},
	}
	var cols [3][]float64
	for _, row := range t.IntraRows {
		p := t.PaperIntra[row.Bench]
		a.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(row.Values[1]), stats.Pct(row.Values[2]),
			stats.Pct(p[0])+"/"+stats.Pct(p[1])+"/"+stats.Pct(p[2]))
		for k := 0; k < 3; k++ {
			cols[k] = append(cols[k], row.Values[k])
		}
	}
	a.AddRow("Avg", stats.Pct(stats.Mean(cols[0])), stats.Pct(stats.Mean(cols[1])),
		stats.Pct(stats.Mean(cols[2])), "")
	b := &stats.Table{
		Title:  "Table 8b: Average Data Forwarding Distance (hops)",
		Header: []string{"bench", "Base", "Friendly", "FDRT"},
		Notes:  []string{"paper: FDRT reduces average distance ~40% below base and always below Friendly"},
	}
	var dcols [3][]float64
	for _, row := range t.DistRows {
		b.AddRow(row.Bench, stats.F3(row.Values[0]), stats.F3(row.Values[1]), stats.F3(row.Values[2]))
		for k := 0; k < 3; k++ {
			dcols[k] = append(dcols[k], row.Values[k])
		}
	}
	b.AddRow("Avg", stats.F3(stats.Mean(dcols[0])), stats.F3(stats.Mean(dcols[1])), stats.F3(stats.Mean(dcols[2])))
	return a.Render() + "\n" + b.Render()
}

// Figure7Result reproduces Figure 7: distribution of FDRT options A-E.
type Figure7Result struct {
	Rows []BenchRow // A,B,C,D,E fractions + skipped fraction
}

// Figure7 histograms the FDRT assignment options.
func Figure7(r *Runner) *Figure7Result {
	cfgs := StrategyConfigs()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{"fdrt": cfgs["fdrt"]})
	res := &Figure7Result{}
	for _, bm := range workload.Selected() {
		s := r.Run(bm, "fdrt", cfgs["fdrt"])
		if !statsOK(s) {
			continue
		}
		f := s.Fill
		// Guard the denominator while it is still an integer; comparing the
		// float64 against zero exactly is a floateq trap.
		n := f.OptionA + f.OptionB + f.OptionC + f.OptionD + f.OptionE
		if n == 0 {
			n = 1
		}
		tot := float64(n)
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			float64(f.OptionA) / tot, float64(f.OptionB) / tot, float64(f.OptionC) / tot,
			float64(f.OptionD) / tot, float64(f.OptionE) / tot, float64(f.Skipped) / tot,
		}})
	}
	return res
}

// Render formats the result.
func (f *Figure7Result) Render() string {
	tab := &stats.Table{
		Title:  "Figure 7: FDRT Critical Input Distribution (options of Table 5)",
		Header: []string{"bench", "A intra", "B chain", "C both", "D consumer", "E none", "skipped"},
		Notes: []string{
			"paper averages: A 37%, B 18%, C 9%, D 11%, E 24%, skipped <1%;",
			"loop-carried dependences make chains more common in the synthetic suite.",
		},
	}
	var cols [6][]float64
	for _, row := range f.Rows {
		cells := []string{row.Bench}
		for k, v := range row.Values {
			cells = append(cells, stats.Pct(v))
			cols[k] = append(cols[k], v)
		}
		tab.AddRow(cells...)
	}
	avg := []string{"Avg"}
	for k := 0; k < 6; k++ {
		avg = append(avg, stats.Pct(stats.Mean(cols[k])))
	}
	tab.AddRow(avg...)
	return tab.Render()
}

// Table9Result reproduces Table 9: instruction cluster migration with and
// without pinning.
type Table9Result struct {
	Rows  []BenchRow // pin rate, nopin rate, all reduction, chain reduction
	Paper map[string][2]float64
}

// Table9 compares migration under FDRT and FDRT-NoPin.
func Table9(r *Runner) *Table9Result {
	cfgs := StrategyConfigs()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{
		"fdrt": cfgs["fdrt"], "fdrt-nopin": cfgs["fdrt-nopin"],
	})
	res := &Table9Result{Paper: map[string][2]float64{
		"bzip2": {0.0035, 0.0098}, "eon": {0.0594, 0.0827}, "gzip": {0.0597, 0.0826},
		"perlbmk": {0.0377, 0.0359}, "twolf": {0.0508, 0.0892}, "vpr": {0.0436, 0.0477},
	}}
	for _, bm := range workload.Selected() {
		pinS := r.Run(bm, "fdrt", cfgs["fdrt"])
		nopS := r.Run(bm, "fdrt-nopin", cfgs["fdrt-nopin"])
		if !statsOK(pinS, nopS) {
			continue
		}
		pin, nop := pinS.Fill, nopS.Fill
		allRed, chainRed := 0.0, 0.0
		if nop.MigrationRate() > 0 {
			allRed = 1 - pin.MigrationRate()/nop.MigrationRate()
		}
		if nop.ChainMigrationRate() > 0 {
			chainRed = 1 - pin.ChainMigrationRate()/nop.ChainMigrationRate()
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			pin.MigrationRate(), nop.MigrationRate(), allRed, chainRed,
		}})
	}
	return res
}

// Render formats the result.
func (t *Table9Result) Render() string {
	tab := &stats.Table{
		Title:  "Table 9: Instruction Cluster Migration",
		Header: []string{"bench", "Pinning", "No Pinning", "All reduction", "Chain reduction", "paper(P/NP)"},
		Notes:  []string{"paper averages: 4.25% / 5.80% / 27.71% / 40.98%"},
	}
	var cols [4][]float64
	for _, row := range t.Rows {
		p := t.Paper[row.Bench]
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(row.Values[1]),
			stats.Pct(row.Values[2]), stats.Pct(row.Values[3]),
			stats.Pct(p[0])+"/"+stats.Pct(p[1]))
		for k := 0; k < 4; k++ {
			cols[k] = append(cols[k], row.Values[k])
		}
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(cols[0])), stats.Pct(stats.Mean(cols[1])),
		stats.Pct(stats.Mean(cols[2])), stats.Pct(stats.Mean(cols[3])), "")
	return tab.Render()
}

// Table10Result reproduces Table 10: intra-cluster critical forwarding with
// and without pinning.
type Table10Result struct {
	Rows  []BenchRow // pin, nopin intra-cluster fractions
	Paper map[string][2]float64
}

// Table10 compares forwarding locality under pinning.
func Table10(r *Runner) *Table10Result {
	cfgs := StrategyConfigs()
	r.Prefetch(workload.Selected(), map[string]pipeline.Config{
		"fdrt": cfgs["fdrt"], "fdrt-nopin": cfgs["fdrt-nopin"],
	})
	res := &Table10Result{Paper: map[string][2]float64{
		"bzip2": {0.7747, 0.6669}, "eon": {0.4972, 0.5088}, "gzip": {0.5603, 0.5503},
		"perlbmk": {0.6532, 0.6536}, "twolf": {0.5751, 0.5713}, "vpr": {0.5701, 0.5634},
	}}
	for _, bm := range workload.Selected() {
		pin := r.Run(bm, "fdrt", cfgs["fdrt"])
		nop := r.Run(bm, "fdrt-nopin", cfgs["fdrt-nopin"])
		if !statsOK(pin, nop) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name,
			[]float64{pin.IntraClusterFrac(), nop.IntraClusterFrac()}})
	}
	return res
}

// Render formats the result.
func (t *Table10Result) Render() string {
	tab := &stats.Table{
		Title:  "Table 10: Intra-Cluster Critical Data Forwarding vs. Pinning",
		Header: []string{"bench", "With Pinning", "No Pinning", "paper(P/NP)"},
		Notes:  []string{"paper averages: 60.51% / 58.57%"},
	}
	var a, b []float64
	for _, row := range t.Rows {
		p := t.Paper[row.Bench]
		tab.AddRow(row.Bench, stats.Pct(row.Values[0]), stats.Pct(row.Values[1]),
			stats.Pct(p[0])+"/"+stats.Pct(p[1]))
		a, b = append(a, row.Values[0]), append(b, row.Values[1])
	}
	tab.AddRow("Avg", stats.Pct(stats.Mean(a)), stats.Pct(stats.Mean(b)), "")
	return tab.Render()
}

// Figure8Result reproduces Figure 8: strategy speedups under alternate
// cluster configurations, each relative to its own baseline.
type Figure8Result struct {
	// Configs are "ring", "hop1", "2x4"; per config, rows of
	// (FDRT, Friendly, IssueTime) speedups.
	Configs map[string][]BenchRow
}

// fig8Variant derives an alternate-architecture config from the baseline.
func fig8Variant(name string) pipeline.Config {
	cfg := BaseConfig()
	switch name {
	case "ring":
		cfg.Geom.Topology = cluster.Ring
	case "hop1":
		cfg.Geom.HopLat = 1
	case "2x4":
		cfg.Geom.Clusters = 2
		cfg.FetchWidth = 8
		cfg.RetireWidth = 8
		cfg.Trace.MaxLen = 8
	}
	return cfg
}

// Figure8 sweeps the three architecture variants.
func Figure8(r *Runner) *Figure8Result {
	res := &Figure8Result{Configs: map[string][]BenchRow{}}
	for _, name := range []string{"ring", "hop1", "2x4"} {
		base := fig8Variant(name)
		cfgs := map[string]pipeline.Config{
			name + "/base":     base,
			name + "/fdrt":     base.WithStrategy(core.FDRT, false),
			name + "/friendly": base.WithStrategy(core.Friendly, false),
			name + "/issue":    base.WithStrategy(core.IssueTime, false),
		}
		r.Prefetch(workload.Selected(), cfgs)
		for _, bm := range workload.Selected() {
			b := r.Run(bm, name+"/base", cfgs[name+"/base"])
			fd := r.Run(bm, name+"/fdrt", cfgs[name+"/fdrt"])
			fr := r.Run(bm, name+"/friendly", cfgs[name+"/friendly"])
			is := r.Run(bm, name+"/issue", cfgs[name+"/issue"])
			if !statsOK(b, fd, fr, is) {
				continue
			}
			res.Configs[name] = append(res.Configs[name], BenchRow{bm.Name, []float64{
				speedup(b, fd), speedup(b, fr), speedup(b, is),
			}})
		}
	}
	return res
}

// HM returns the per-strategy harmonic means for one variant.
func (f *Figure8Result) HM(name string) []float64 { return columnHM(f.Configs[name], 3) }

// Render formats the result.
func (f *Figure8Result) Render() string {
	out := ""
	titles := map[string]string{
		"ring": "Mesh (ring) interconnect", "hop1": "One-cycle forwarding hop",
		"2x4": "Eight-wide, two clusters",
	}
	for _, name := range []string{"ring", "hop1", "2x4"} {
		tab := &stats.Table{
			Title:  "Figure 8 (" + titles[name] + "): speedup over this configuration's base",
			Header: []string{"bench", "FDRT", "Friendly", "Issue-time"},
		}
		appendRowsWithHM(tab, f.Configs[name], f.HM(name))
		out += tab.Render() + "\n"
	}
	return out
}

// Figure9Result reproduces Figure 9: suite-wide mean speedups.
type Figure9Result struct {
	// Suites: "SPECint2000", "MediaBench" -> HM speedups for
	// No-lat issue, Issue-time, FDRT, Friendly.
	Suites map[string][]float64
	Rows   map[string][]BenchRow
}

// Figure9 runs the full suites.
func Figure9(r *Runner) *Figure9Result {
	cfgs := StrategyConfigs()
	res := &Figure9Result{Suites: map[string][]float64{}, Rows: map[string][]BenchRow{}}
	// Fixed iteration order: suite order decides run submission and row
	// grouping, so it must not depend on map iteration.
	suites := []struct {
		name string
		bms  []workload.Benchmark
	}{
		{"SPECint2000", workload.SPECint()},
		{"MediaBench", workload.MediaBench()},
	}
	for _, suite := range suites {
		name, bms := suite.name, suite.bms
		r.Prefetch(bms, cfgs)
		for _, bm := range bms {
			b := r.Run(bm, "base", cfgs["base"])
			i0 := r.Run(bm, "issue0", cfgs["issue0"])
			i4 := r.Run(bm, "issue4", cfgs["issue4"])
			fd := r.Run(bm, "fdrt", cfgs["fdrt"])
			fr := r.Run(bm, "friendly", cfgs["friendly"])
			if !statsOK(b, i0, i4, fd, fr) {
				continue
			}
			res.Rows[name] = append(res.Rows[name], BenchRow{bm.Name, []float64{
				speedup(b, i0), speedup(b, i4), speedup(b, fd), speedup(b, fr),
			}})
		}
		res.Suites[name] = columnHM(res.Rows[name], 4)
	}
	return res
}

// Render formats the result.
func (f *Figure9Result) Render() string {
	out := ""
	for _, name := range []string{"SPECint2000", "MediaBench"} {
		tab := &stats.Table{
			Title:  "Figure 9 (" + name + "): speedup over base",
			Header: []string{"bench", "No-lat Issue", "Issue-time", "FDRT", "Friendly"},
		}
		appendRowsWithHM(tab, f.Rows[name], f.Suites[name])
		if name == "SPECint2000" {
			tab.Notes = []string{"paper harmonic means: n/a / 1.038 / 1.071 / 1.019"}
		} else {
			tab.Notes = []string{"paper harmonic means: 1.042 / 1.017 / 1.082 / 1.037"}
		}
		out += tab.Render() + "\n"
	}
	return out
}

// --- shared helpers ---

func columnHM(rows []BenchRow, n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var col []float64
		for _, row := range rows {
			col = append(col, row.Values[k])
		}
		out[k] = stats.HarmonicMean(col)
	}
	return out
}

func appendRowsWithHM(tab *stats.Table, rows []BenchRow, hm []float64) {
	for _, row := range rows {
		cells := []string{row.Bench}
		for _, v := range row.Values {
			cells = append(cells, stats.F3(v))
		}
		tab.AddRow(cells...)
	}
	cells := []string{"HM"}
	for _, v := range hm {
		cells = append(cells, stats.F3(v))
	}
	tab.AddRow(cells...)
}
