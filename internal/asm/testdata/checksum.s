; Rolling checksum over a string: byte loads, shifts, mixed FP average.
; OUTs the final 32-bit checksum of the message.
        .entry main
main:   movi    r1, msg
        movi    r2, msgend
        movi    r3, 0           ; checksum
loop:   cmpult  r1, r2, r4
        beq     r4, finish
        ldbu    r5, 0(r1)
        sll     r3, 5, r6
        add     r6, r3, r6      ; h*33
        add     r6, r5, r3
        movi    r7, 0xFFFFFFFF
        and     r3, r7, r3
        add     r1, 1, r1
        br      loop
finish:
        ; fold through FP: sqrt(h) truncated back, xor-ed in
        cvtqt   r3, f1
        sqrtt   f1, f2
        cvttq   f2, r8
        xor     r3, r8, r3
        out     r3
        halt

        .data
msg:    .ascii  "the quick brown fox jumps over the lazy dog"
msgend:
