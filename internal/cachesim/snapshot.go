package cachesim

import (
	"sort"

	"ctcp/internal/snap"
)

// Snapshot serializes the cache's tag/LRU state and access counters. The
// lineShift and setMask fields are derived from the configuration in New
// and are not serialized.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.Begin("cache")
	w.String(c.cfg.Name)
	w.Int(c.cfg.Sets)
	w.Int(c.cfg.Ways)
	w.Int(c.cfg.LineSize)
	_ = c.lineShift // derived from cfg.LineSize in New
	_ = c.setMask   // derived from cfg.Sets in New
	w.U64Slice(c.tags)
	w.BoolSlice(c.present)
	w.U64Slice(c.lruStamp)
	w.U64(c.nextStamp)
	w.U64(c.S.Accesses)
	w.U64(c.S.Misses)
	w.End()
}

// Restore rebuilds the tag/LRU state from r into a cache constructed with
// the same configuration.
func (c *Cache) Restore(r *snap.Reader) {
	r.Begin("cache")
	if got := r.String(); r.Err() == nil && got != c.cfg.Name {
		r.Failf("cache name mismatch: snapshot has %q, this configuration has %q", got, c.cfg.Name)
	}
	r.ExpectInt("cache sets", c.cfg.Sets)
	r.ExpectInt("cache ways", c.cfg.Ways)
	r.ExpectInt("cache line size", c.cfg.LineSize)
	c.tags = r.U64Slice()
	c.present = r.BoolSlice()
	c.lruStamp = r.U64Slice()
	c.nextStamp = r.U64()
	c.S.Accesses = r.U64()
	c.S.Misses = r.U64()
	if r.Err() == nil && (len(c.tags) != c.cfg.Sets*c.cfg.Ways ||
		len(c.present) != len(c.tags) || len(c.lruStamp) != len(c.tags)) {
		r.Failf("cache %s: restored table sizes do not match geometry", c.cfg.Name)
	}
	r.End()
}

// Snapshot serializes the full data-memory system: the three cache arrays,
// the outstanding-miss (MSHR) table, and the hierarchy counters. MSHR
// entries are emitted in ascending line-address order so the encoding is
// deterministic.
func (h *Hierarchy) Snapshot(w *snap.Writer) {
	w.Begin("hierarchy")
	_ = h.cfg // latencies/geometry only; the per-cache sections fingerprint it
	h.L1.Snapshot(w)
	h.L2.Snapshot(w)
	h.TLB.Snapshot(w)
	// Emission stays sorted by line address: the encoding predates the
	// slice-backed MSHR and restored checkpoints from the map-backed build
	// must read back identically.
	entries := append([]mshrEntry(nil), h.mshr...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].line < entries[j].line })
	w.Int(len(entries))
	for _, e := range entries {
		w.U64(e.line)
		w.I64(e.ready)
	}
	w.U64(h.TLBMisses)
	w.U64(h.L1Misses)
	w.U64(h.L2Misses)
	w.U64(h.Accesses)
	w.U64(h.MSHRMerges)
	w.U64(h.MSHRStalls)
	w.End()
}

// Restore rebuilds the data-memory system state from r.
func (h *Hierarchy) Restore(r *snap.Reader) {
	r.Begin("hierarchy")
	h.L1.Restore(r)
	h.L2.Restore(r)
	h.TLB.Restore(r)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	h.mshr = h.mshr[:0]
	for i := 0; i < n; i++ {
		line := r.U64()
		h.mshr = append(h.mshr, mshrEntry{line, r.I64()})
	}
	h.TLBMisses = r.U64()
	h.L1Misses = r.U64()
	h.L2Misses = r.U64()
	h.Accesses = r.U64()
	h.MSHRMerges = r.U64()
	h.MSHRStalls = r.U64()
	r.End()
}
