; conformance: FP multiply/divide/square root on exact powers and squares.
        .entry main
main:   movi    r1, 2
        cvtqt   r1, f1          ; 2.0
        movi    r2, 9
        cvtqt   r2, f2          ; 9.0
        mult    f1, f2, f3      ; 18.0
        sqrtt   f2, f4          ; 3.0 (exact)
        divt    f3, f4, f5      ; 6.0
        movi    r4, 5
        movi    r3, 0
ml:     mult    f5, f1, f5      ; doubles each iteration
        divt    f5, f4, f6
        cvttq   f6, r5
        add     r3, r5, r3
        sub     r4, 1, r4
        bne     r4, ml
        cvttq   f5, r6
        add     r3, r6, r3
        movi    r7, 16
        cvtqt   r7, f7
        sqrtt   f7, f8          ; 4.0
        cvttq   f8, r8
        add     r3, r8, r3
        out     r3
        halt
