; conformance: strided quadword fill, strided partial-word reads.
        .entry main
main:   movi    r10, arr
        movi    r1, 0           ; i
        movi    r2, 17
fill:   mul     r1, r2, r3
        add     r3, 5, r3
        sll     r1, 3, r4
        add     r10, r4, r5
        stq     r3, 0(r5)
        add     r1, 1, r1
        cmplt   r1, 16, r6
        bne     r6, fill
        movi    r1, 0
        movi    r7, 0           ; quad sum, stride 2
qs:     sll     r1, 3, r4
        add     r10, r4, r5
        ldq     r3, 0(r5)
        add     r7, r3, r7
        add     r1, 2, r1
        cmplt   r1, 16, r6
        bne     r6, qs
        movi    r1, 1
        movi    r8, 0           ; word xor, stride 3 halfwords
ws:     sll     r1, 1, r4
        add     r10, r4, r5
        ldw     r9, 0(r5)
        xor     r8, r9, r8
        add     r1, 3, r1
        cmplt   r1, 60, r6
        bne     r6, ws
        out     r7
        out     r8
        halt
        .data
arr:    .space  128
