// Package prog provides a type-checked builder for TRISC-64 programs. The
// workload suite uses it to construct the SPECint and MediaBench analog
// benchmarks: it handles label resolution, data-segment layout, and the
// common instruction idioms so benchmark code reads close to assembly while
// staying checked by the compiler.
package prog

import (
	"encoding/binary"
	"fmt"

	"ctcp/internal/isa"
)

// Builder accumulates text and data and resolves labels at Build time.
type Builder struct {
	textBase uint64
	dataBase uint64

	insts  []isa.Inst
	labels map[string]int // label -> instruction index
	fixups []fixup

	data       []byte
	dataSyms   map[string]uint64 // name -> absolute address
	entryLabel string

	nextAuto int
	errs     []error
}

type fixup struct {
	inst  int // index of instruction whose Imm needs the label address
	label string
}

// New returns a Builder using the default segment layout.
func New() *Builder {
	return &Builder{
		textBase: isa.DefaultTextBase,
		dataBase: isa.DefaultDataBase,
		labels:   make(map[string]int),
		dataSyms: make(map[string]uint64),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// emit appends one instruction.
func (b *Builder) emit(i isa.Inst) {
	b.insts = append(b.insts, i)
}

// Label defines name at the current text position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("prog: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// AutoLabel returns a fresh unique label with the given prefix.
func (b *Builder) AutoLabel(prefix string) string {
	b.nextAuto++
	return fmt.Sprintf(".%s%d", prefix, b.nextAuto)
}

// Entry marks the label where execution begins (default: first instruction).
func (b *Builder) Entry(label string) { b.entryLabel = label }

// --- data segment ---

// Bytes places raw bytes in the data segment under name (name may be empty
// for anonymous data) and returns their absolute address.
func (b *Builder) Bytes(name string, bs []byte) uint64 {
	// Keep every object 8-byte aligned so quad accesses stay natural.
	for len(b.data)%8 != 0 {
		b.data = append(b.data, 0)
	}
	addr := b.dataBase + uint64(len(b.data))
	b.data = append(b.data, bs...)
	if name != "" {
		if _, dup := b.dataSyms[name]; dup {
			b.errf("prog: duplicate data symbol %q", name)
		}
		b.dataSyms[name] = addr
	}
	return addr
}

// Quads places 64-bit little-endian values and returns their address.
func (b *Builder) Quads(name string, vals ...uint64) uint64 {
	bs := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(bs[8*i:], v)
	}
	return b.Bytes(name, bs)
}

// Space reserves n zero bytes and returns their address.
func (b *Builder) Space(name string, n int) uint64 {
	return b.Bytes(name, make([]byte, n))
}

// Patch overwrites previously placed data bytes starting at absolute
// address addr. It is used for pointer-bearing structures (linked lists)
// whose contents depend on their own placement address.
func (b *Builder) Patch(addr uint64, bs []byte) {
	off := int64(addr) - int64(b.dataBase)
	if off < 0 || off+int64(len(bs)) > int64(len(b.data)) {
		b.errf("prog: Patch range [%#x,+%d) outside placed data", addr, len(bs))
		return
	}
	copy(b.data[off:], bs)
}

// DataAddr returns the address of a previously placed data symbol.
func (b *Builder) DataAddr(name string) uint64 {
	addr, ok := b.dataSyms[name]
	if !ok {
		b.errf("prog: unknown data symbol %q", name)
	}
	return addr
}

// --- instruction emitters ---

// Movi materializes a 32-bit signed immediate: rc = imm.
func (b *Builder) Movi(rc isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.MOVI, Rc: rc, Imm: imm, UseImm: true})
}

// MoviAddr materializes the address of a data symbol.
func (b *Builder) MoviAddr(rc isa.Reg, name string) {
	b.Movi(rc, int64(b.DataAddr(name)))
}

// Op3 emits a three-register operate instruction: rc = ra op rb.
func (b *Builder) Op3(op isa.Op, ra, rb, rc isa.Reg) {
	b.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Rc: rc})
}

// OpI emits an operate instruction with immediate: rc = ra op imm.
func (b *Builder) OpI(op isa.Op, ra isa.Reg, imm int64, rc isa.Reg) {
	b.emit(isa.Inst{Op: op, Ra: ra, Imm: imm, UseImm: true, Rc: rc})
}

// Unary emits a one-source operate (sextb/itof/cvtqt/sqrtt/...): rc = op(ra).
func (b *Builder) Unary(op isa.Op, ra, rc isa.Reg) {
	b.emit(isa.Inst{Op: op, Ra: ra, Rc: rc})
}

// Mov copies ra into rc.
func (b *Builder) Mov(rc, ra isa.Reg) { b.Op3(isa.OR, ra, isa.ZeroReg, rc) }

// Load emits rc = MEM[ra+off] using the given load opcode.
func (b *Builder) Load(op isa.Op, rc, ra isa.Reg, off int64) {
	b.emit(isa.Inst{Op: op, Ra: ra, Rc: rc, Imm: off, UseImm: true})
}

// Store emits MEM[ra+off] = rb using the given store opcode.
func (b *Builder) Store(op isa.Op, rb, ra isa.Reg, off int64) {
	b.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Imm: off, UseImm: true})
}

// Branch emits a conditional branch on ra to label.
func (b *Builder) Branch(op isa.Op, ra isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.emit(isa.Inst{Op: op, Ra: ra, Imm: 0, UseImm: true})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.emit(isa.Inst{Op: isa.BR, Rc: isa.ZeroReg, Imm: 0, UseImm: true})
}

// Call emits a linked call to label: materialize target into scratch, JSR.
// The conventional link register RA receives the return address.
func (b *Builder) Call(label string, scratch isa.Reg) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.emit(isa.Inst{Op: isa.MOVI, Rc: scratch, Imm: 0, UseImm: true})
	b.emit(isa.Inst{Op: isa.JSR, Rb: scratch, Rc: isa.RA})
}

// Jsr emits an indirect call through rb, linking into rc.
func (b *Builder) Jsr(rc, rb isa.Reg) { b.emit(isa.Inst{Op: isa.JSR, Rb: rb, Rc: rc}) }

// Jmp emits an indirect jump through rb.
func (b *Builder) Jmp(rb isa.Reg) { b.emit(isa.Inst{Op: isa.JMP, Rb: rb}) }

// Ret returns through the conventional link register.
func (b *Builder) Ret() { b.emit(isa.Inst{Op: isa.RET, Rb: isa.RA}) }

// RetVia returns through rb.
func (b *Builder) RetVia(rb isa.Reg) { b.emit(isa.Inst{Op: isa.RET, Rb: rb}) }

// Out emits the debug/checksum output of ra.
func (b *Builder) Out(ra isa.Reg) { b.emit(isa.Inst{Op: isa.OUT, Ra: ra}) }

// Halt stops the machine.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.HALT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.NOP}) }

// LabelAddr returns the absolute address a label will have after Build.
// It may only be called for labels that are already defined.
func (b *Builder) LabelAddr(label string) uint64 {
	idx, ok := b.labels[label]
	if !ok {
		b.errf("prog: LabelAddr of undefined label %q", label)
		return 0
	}
	return b.textBase + uint64(idx)*isa.PCStride
}

// Build resolves all labels and returns the finished program.
func (b *Builder) Build() (*isa.Program, error) {
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			b.errf("prog: undefined label %q", f.label)
			continue
		}
		b.insts[f.inst].Imm = int64(b.textBase + uint64(idx)*isa.PCStride)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	entry := b.textBase
	if b.entryLabel != "" {
		idx, ok := b.labels[b.entryLabel]
		if !ok {
			return nil, fmt.Errorf("prog: undefined entry label %q", b.entryLabel)
		}
		entry = b.textBase + uint64(idx)*isa.PCStride
	}
	syms := make(map[string]uint64, len(b.labels)+len(b.dataSyms))
	for name, idx := range b.labels {
		syms[name] = b.textBase + uint64(idx)*isa.PCStride
	}
	for name, addr := range b.dataSyms {
		syms[name] = addr
	}
	text := make([]isa.Inst, len(b.insts))
	copy(text, b.insts)
	data := make([]byte, len(b.data))
	copy(data, b.data)
	return &isa.Program{
		TextBase: b.textBase,
		Text:     text,
		DataBase: b.dataBase,
		Data:     data,
		Entry:    entry,
		Symbols:  syms,
	}, nil
}
